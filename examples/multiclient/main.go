// multiclient reproduces the flavour of the paper's Fig 6 experiment as
// a runnable program: sixteen closed-loop clients on separate simulated
// nodes hammer one Memcached server with 4-byte Gets, first over UCR,
// then over SDP, and the aggregate transactions-per-second are compared
// (§VI-D: "many clients access the same Memcached server
// simultaneously").
package main

import (
	"fmt"
	"log"
	"sync"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/simnet"
)

const (
	clients      = 16
	opsPerClient = 300
)

func main() {
	fmt.Printf("%d clients x %d four-byte Gets against one server (cluster B)\n\n", clients, opsPerClient)
	ucr := run("UCR-IB")
	sdp := run("SDP")
	fmt.Printf("\nUCR-IB delivers %.1fx the aggregate throughput of SDP (paper: ~6x on QDR)\n", ucr/sdp)
}

func run(transport string) (tps float64) {
	sys, err := core.NewSystem(core.Config{Cluster: "B"})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	// One client populates; all clients read the shared keyspace.
	pool := make([]*clientHandle, clients)
	for i := range pool {
		c, err := sys.AddClient(transport)
		if err != nil {
			log.Fatal(err)
		}
		pool[i] = &clientHandle{c: c}
	}
	keys := make([]string, 64)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%03d", i)
		if err := pool[0].c.MC.Set(keys[i], []byte("abcd"), 0, 0); err != nil {
			log.Fatal(err)
		}
	}

	// Align every clock, then run all clients concurrently.
	var start simnet.Time
	for _, h := range pool {
		if h.c.Clock.Now() > start {
			start = h.c.Clock.Now()
		}
	}
	var wg sync.WaitGroup
	for i, h := range pool {
		h.c.Clock.AdvanceTo(start)
		wg.Add(1)
		go func(i int, h *clientHandle) {
			defer wg.Done()
			for n := 0; n < opsPerClient; n++ {
				if _, _, _, err := h.c.MC.Get(keys[(i+n)%len(keys)]); err != nil {
					log.Fatal(err)
				}
			}
			h.end = h.c.Clock.Now()
		}(i, h)
	}
	wg.Wait()

	var makespan simnet.Duration
	for _, h := range pool {
		if d := h.end - start; d > makespan {
			makespan = d
		}
	}
	tps = float64(clients*opsPerClient) / makespan.Seconds()
	fmt.Printf("%-8s %10.0f TPS aggregate (makespan %v)\n", transport, tps, makespan)

	stats := sys.ServerStats()
	fmt.Printf("         server saw %d gets, %d hits\n", stats["cmd_get"], stats["get_hits"])
	return tps
}

type clientHandle struct {
	c   *cluster.Client
	end simnet.Time
}

// sharding shows the architecture the paper's §II-C calls inherently
// scalable: many Memcached servers, no central directory — every client
// locates a key's owner with a hash. Four RDMA-capable servers pool
// their memory; a client shards 10,000 items across them with
// consistent (ketama) hashing; one server dies and is auto-ejected,
// and the pool keeps serving with only that server's arc of the
// keyspace remapped.
package main

import (
	"fmt"
	"log"

	"repro/internal/cluster"
	"repro/internal/mcclient"
	"repro/internal/simnet"
)

func main() {
	behaviors := mcclient.DefaultBehaviors()
	behaviors.Distribution = mcclient.DistKetama
	behaviors.AutoEject = true
	behaviors.OpTimeout = 300 * simnet.Microsecond

	d := cluster.New(cluster.ClusterB(), cluster.Options{Servers: 4})
	defer d.Close()
	client, err := d.NewClient(cluster.UCRIB, behaviors)
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	// Shard a keyspace across the pool.
	const items = 10_000
	for i := 0; i < items; i++ {
		key := fmt.Sprintf("object:%d", i)
		if err := client.MC.Set(key, []byte(key), 0, 0); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("distribution across the pool (no central directory, §II-C):")
	for i, srv := range d.Servers {
		st := srv.Store().Stats()
		fmt.Printf("  server%d: %5d items, %7d bytes\n", i, st.CurrItems, st.Bytes)
	}

	// Record each key's owner, then kill one server.
	owners := make([]int, items)
	for i := range owners {
		owners[i] = client.MC.ServerFor(fmt.Sprintf("object:%d", i))
	}
	dead := 2
	fmt.Printf("\nserver%d dies...\n", dead)
	d.ServerNodes[dead].Fail()

	// The next operation against the dead shard ejects it.
	probe := 0
	for owners[probe] != dead {
		probe++
	}
	if _, _, _, err := client.MC.Get(fmt.Sprintf("object:%d", probe)); err != nil {
		// The op timed out against the dead server, which was ejected;
		// the transparent retry landed on the key's new owner, where the
		// item is (correctly) a miss until re-populated.
		fmt.Printf("first access after death: %v (server auto-ejected, key remapped)\n", err)
	}

	// Count how many keys moved: with ketama, only the dead server's
	// share remaps; everyone else keeps their owner.
	moved, deadShare := 0, 0
	for i := range owners {
		now := client.MC.ServerFor(fmt.Sprintf("object:%d", i))
		if owners[i] == dead {
			deadShare++
			continue
		}
		if now != owners[i] {
			moved++
		}
	}
	fmt.Printf("after ejection: %d live servers; %d keys owned by the dead server remapped;\n",
		client.MC.LiveServers(), deadShare)
	fmt.Printf("only %d of %d other keys moved (consistent hashing, vs ~%d%% under modula)\n",
		moved, items-deadShare, 100*3/4)

	// The pool still serves reads and writes.
	if err := client.MC.Set("post-failure", []byte("still-working"), 0, 0); err != nil {
		log.Fatal(err)
	}
	v, _, _, err := client.MC.Get("post-failure")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pool still serving after failure: %q\n", v)
}

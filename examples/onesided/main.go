// onesided exercises UCR's second API surface (§IV: "interfaces for
// Active Messages as well as one-sided put/get operations") together
// with the verbs atomics that the paper's related work (§III) builds
// data-center services on: the program runs a tiny *distributed
// sequencer and shared log* with no software at all on the memory
// host's critical path.
//
//   - The host exposes a Window: an 8-byte ticket counter followed by a
//     ring of fixed-size log slots.
//   - Each writer claims a slot with an RDMA fetch-and-add on the
//     ticket (no host CPU), then lands its record in the slot with a
//     one-sided Put (no host CPU).
//   - A reader reconstructs the log with one-sided Gets.
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/simnet"
	"repro/internal/ucr"
	"repro/internal/verbs"
)

const (
	slotSize = 64
	slots    = 32
)

func main() {
	p := cluster.ClusterB()
	nw := simnet.NewNetwork()
	fab := nw.AddFabric(p.IB)
	cm := verbs.NewCM(fab)

	// The memory host: owns the window, then does nothing but accept
	// endpoints — every data-path operation bypasses its CPU.
	hostNode := nw.AddNode("host")
	hostRT := ucr.New(verbs.NewHCA(hostNode, fab, p.HCA), cm, p.UCR)
	hostMem := make([]byte, 8+slots*slotSize)
	win, err := hostRT.CreateWindow(hostMem, nil)
	if err != nil {
		log.Fatal(err)
	}
	desc := win.Desc()

	lis, err := hostRT.Listen("seqlog")
	if err != nil {
		log.Fatal(err)
	}
	hostCtx := hostRT.NewContext()
	hostClk := simnet.NewVClock(0)
	go func() {
		for {
			if _, ok := lis.AcceptTimeout(hostCtx, hostClk, 100*time.Millisecond); !ok {
				return
			}
		}
	}()
	defer lis.Close()

	// Writers on separate nodes, racing for tickets.
	const writers = 4
	const recordsPerWriter = 6
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			node := nw.AddNode(fmt.Sprintf("writer%d", w))
			rt := ucr.New(verbs.NewHCA(node, fab, p.HCA), cm, p.UCR)
			ctx := rt.NewContext()
			defer ctx.Destroy()
			clk := simnet.NewVClock(0)
			ep, err := rt.Dial(ctx, hostNode, "seqlog", ucr.Reliable, clk, 5*time.Second)
			if err != nil {
				log.Fatal(err)
			}
			for r := 0; r < recordsPerWriter; r++ {
				// Claim a slot: fetch-and-add on the ticket word, served
				// entirely by the host's HCA.
				ticket, err := ep.FetchAdd(clk, desc, 0, 1)
				if err != nil {
					log.Fatal(err)
				}
				slot := int(ticket) % slots
				rec := make([]byte, slotSize)
				copy(rec, fmt.Sprintf("ticket=%02d writer=%d rec=%d", ticket, w, r))
				ctr := rt.NewCounter()
				if err := ep.Put(clk, rec, desc, 8+slot*slotSize, ctr); err != nil {
					log.Fatal(err)
				}
				if err := ctx.WaitCounter(clk, ctr, 1, 0); err != nil {
					log.Fatal(err)
				}
				rt.FreeCounter(ctr)
			}
		}(w)
	}
	wg.Wait()

	// A reader pulls the state with one-sided Gets.
	readerNode := nw.AddNode("reader")
	rt := ucr.New(verbs.NewHCA(readerNode, fab, p.HCA), cm, p.UCR)
	ctx := rt.NewContext()
	defer ctx.Destroy()
	clk := simnet.NewVClock(0)
	ep, err := rt.Dial(ctx, hostNode, "seqlog", ucr.Reliable, clk, 5*time.Second)
	if err != nil {
		log.Fatal(err)
	}
	head := make([]byte, 8)
	ctr := rt.NewCounter()
	if err := ep.Get(clk, head, desc, 0, ctr); err != nil {
		log.Fatal(err)
	}
	if err := ctx.WaitCounter(clk, ctr, 1, 0); err != nil {
		log.Fatal(err)
	}
	total := binary.LittleEndian.Uint64(head)
	fmt.Printf("sequencer issued %d tickets to %d writers — every increment via HCA atomics, zero host CPU\n",
		total, writers)
	if total != writers*recordsPerWriter {
		log.Fatalf("lost tickets: %d != %d", total, writers*recordsPerWriter)
	}

	ring := make([]byte, slots*slotSize)
	if err := ep.Get(clk, ring, desc, 8, ctr); err != nil {
		log.Fatal(err)
	}
	if err := ctx.WaitCounter(clk, ctr, 2, 0); err != nil {
		log.Fatal(err)
	}
	fmt.Println("last records in the shared log (read with one-sided Gets):")
	shown := 0
	for s := 0; s < slots && shown < 6; s++ {
		rec := ring[s*slotSize : (s+1)*slotSize]
		if rec[0] == 0 {
			continue
		}
		end := 0
		for end < len(rec) && rec[end] != 0 {
			end++
		}
		fmt.Printf("  slot %2d: %s\n", s, rec[:end])
		shown++
	}
}

// faulttolerance demonstrates the §IV-A requirements the paper imposed
// on UCR for the data-center setting, which distinguish it from MPI
// runtimes:
//
//  1. One failing process must not take others down: a client node
//     dies mid-conversation and every other client keeps working.
//  2. Synchronization carries timeouts: when the *server* dies, a
//     blocked client gets a timeout instead of hanging, and can take
//     corrective action ("a client may decide that a server has gone
//     down").
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/mcclient"
	"repro/internal/simnet"
)

func main() {
	behaviors := mcclient.DefaultBehaviors()
	behaviors.OpTimeout = 200 * simnet.Microsecond // §IV-A: waits carry deadlines

	sys, err := core.NewSystem(core.Config{Cluster: "B", Behaviors: behaviors})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	alice, err := sys.AddClient("UCR-IB")
	if err != nil {
		log.Fatal(err)
	}
	bob, err := sys.AddClient("UCR-IB")
	if err != nil {
		log.Fatal(err)
	}

	// Both clients converse with the shared server.
	must(alice.MC.Set("owner:42", []byte("alice"), 0, 0))
	must(bob.MC.Set("owner:43", []byte("bob"), 0, 0))
	fmt.Println("phase 1: both clients serving traffic")

	// Bob's machine dies mid-flight.
	bob.Node.Fail()
	if err := bob.MC.Set("owner:44", []byte("bob"), 0, 0); err != nil {
		fmt.Printf("phase 2: bob's node failed; bob's op returns: %v\n", err)
	} else {
		log.Fatal("phase 2: op from a dead node unexpectedly succeeded")
	}

	// Alice is completely unaffected — the failure is isolated to
	// bob's endpoint; the server and alice's endpoint keep working.
	v, _, _, err := alice.MC.Get("owner:42")
	must(err)
	fmt.Printf("phase 3: alice still served after bob died: owner:42=%q\n", v)
	must(alice.MC.Set("owner:45", []byte("alice"), 0, 0))

	// Now the server itself goes down. Alice's next operation blocks on
	// counter C, hits her configured timeout, and returns an error she
	// can act on instead of hanging forever.
	sys.Deployment.ServerNode.Fail()
	if _, _, _, err := alice.MC.Get("owner:42"); err != nil {
		fmt.Printf("phase 4: server died; alice's op timed out: %v\n", err)
		fmt.Println("phase 5: corrective action: alice marks the server dead and would re-hash to a surviving pool")
	} else {
		log.Fatal("phase 4: op against a dead server unexpectedly succeeded")
	}

	// Phase 6: not a dead machine but a lossy fabric — 20% of messages
	// dropped by a seeded injector. RC retransmission under UCR absorbs
	// every loss; all operations complete, just a little later.
	lossyBehaviors := behaviors
	lossyBehaviors.OpTimeout = 2 * simnet.Millisecond
	lossyBehaviors.Retries = 3
	lossy, err := core.NewSystem(core.Config{Cluster: "B", Behaviors: lossyBehaviors})
	if err != nil {
		log.Fatal(err)
	}
	defer lossy.Close()
	faults := simnet.NewFaultInjector(simnet.FaultConfig{Seed: 7, DropRate: 0.2})
	lossy.Deployment.IB.SetFaults(faults)

	carol, err := lossy.AddClient("UCR-IB")
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		key := fmt.Sprintf("lossy:%d", i)
		must(carol.MC.Set(key, []byte("v"), 0, 0))
		if _, _, _, err := carol.MC.Get(key); err != nil {
			log.Fatalf("phase 6: get %s over lossy fabric: %v", key, err)
		}
	}
	delivered, dropped, _ := faults.Stats()
	retrans := carol.Runtime().HCA().Retransmits()
	for _, hca := range lossy.Deployment.ServerHCAs {
		retrans += hca.Retransmits()
	}
	fmt.Printf("phase 6: 40 ops over a 20%%-loss fabric all completed: %d delivered, %d dropped, %d RC retransmissions\n",
		delivered, dropped, retrans)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

// Quickstart: boot the RDMA-capable Memcached on the simulated QDR
// cluster (the paper's cluster B), connect one UCR client, and run the
// basic operation set. Latency is read straight off the client's
// virtual clock — the number the paper's figures plot.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
)

func main() {
	sys, err := core.NewSystem(core.Config{Cluster: "B"})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	client, err := sys.AddClient("UCR-IB")
	if err != nil {
		log.Fatal(err)
	}

	// Set, get, and verify a small item.
	if err := client.MC.Set("greeting", []byte("hello, RDMA world"), 0, 0); err != nil {
		log.Fatal(err)
	}
	value, flags, cas, err := client.MC.Get("greeting")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("get greeting -> %q (flags=%d cas=%d)\n", value, flags, cas)

	// Measure the paper's headline: a 4 KB Get over UCR on QDR.
	payload := make([]byte, 4096)
	if err := client.MC.Set("item-4k", payload, 0, 0); err != nil {
		log.Fatal(err)
	}
	start := client.Clock.Now()
	const ops = 100
	for i := 0; i < ops; i++ {
		if _, _, _, err := client.MC.Get("item-4k"); err != nil {
			log.Fatal(err)
		}
	}
	mean := (client.Clock.Now() - start) / ops
	fmt.Printf("4 KB Get over UCR on ConnectX QDR: %.2f us mean (paper: ~12 us)\n", mean.Micros())

	// Counters and deletion.
	if err := client.MC.Set("hits", []byte("0"), 0, 0); err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := client.MC.Incr("hits", 7); err != nil {
			log.Fatal(err)
		}
	}
	n, err := client.MC.Decr("hits", 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("hits counter after 3x incr 7 and decr 1: %d\n", n)
	if err := client.MC.Delete("hits"); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("server stats: %v\n", sys.ServerStats())
}

// dbcache plays out the paper's motivating deployment (Fig 1b): proxy
// servers answer read-heavy traffic by consulting Memcached before
// falling back to a (slow) database tier, caching each query result.
//
// A simulated database charges a few milliseconds of virtual time per
// query — the "expensive database queries in the critical path" the
// paper's introduction describes. The example runs the same skewed
// read-mostly workload through a UCR-connected cache and an IPoIB
// sockets cache and reports the end-to-end mean per request, showing
// how the cache transport's latency translates into page-level time
// once the database is mostly out of the way.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/mcclient"
	"repro/internal/simnet"
)

// database is the slow backing store.
type database struct {
	queryCost simnet.Duration
	queries   int
}

// query charges the cost and fabricates a row for the key.
func (db *database) query(clk *simnet.VClock, key string) []byte {
	db.queries++
	clk.Advance(db.queryCost)
	return []byte("row-data-for-" + key)
}

func main() {
	for _, transport := range []string{"UCR-IB", "IPoIB"} {
		mean, hits, misses, dbQueries := runWorkload(transport)
		fmt.Printf("%-8s mean request %8.2f us  (cache hits %d, misses %d, db queries %d)\n",
			transport, mean.Micros(), hits, misses, dbQueries)
	}
}

// runWorkload serves 2000 proxy requests over a Zipf-ish keyspace.
func runWorkload(transport string) (mean simnet.Duration, hits, misses, dbQueries int) {
	sys, err := core.NewSystem(core.Config{Cluster: "A"})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()
	proxy, err := sys.AddClient(transport)
	if err != nil {
		log.Fatal(err)
	}

	db := &database{queryCost: 2 * simnet.Millisecond}
	rng := simnet.NewRand(2026)

	const requests = 2000
	start := proxy.Clock.Now()
	for i := 0; i < requests; i++ {
		// Skewed popularity: most requests hit a hot set of 32 keys,
		// the tail spreads over 4096 keys.
		var key string
		if rng.Intn(10) < 8 {
			key = fmt.Sprintf("hot-%d", rng.Intn(32))
		} else {
			key = fmt.Sprintf("cold-%d", rng.Intn(4096))
		}
		// Cache-aside: get, fall back to the database, then set.
		if _, _, _, err := proxy.MC.Get(key); err == nil {
			hits++
			continue
		} else if err != mcclient.ErrCacheMiss {
			log.Fatal(err)
		}
		misses++
		row := db.query(proxy.Clock, key)
		if err := proxy.MC.Set(key, row, 0, 300); err != nil {
			log.Fatal(err)
		}
	}
	elapsed := proxy.Clock.Now() - start
	return elapsed / requests, hits, misses, db.queries
}

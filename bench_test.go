package repro

// One benchmark per evaluation panel (Figs 3-6 of the paper) plus the
// design-choice ablations from DESIGN.md. Each sub-benchmark drives the
// real client/server stack over the simulated fabric and reports the
// *virtual-time* metric the paper plots — "vus/op" (virtual microseconds
// per operation) for latency panels and "ktps" (thousands of virtual
// transactions per second) for the multi-client panels — alongside Go's
// usual wall-clock numbers, which measure only the simulator itself.
//
// cmd/mcbench prints the full tables (all sizes, all transports); the
// benchmarks here sweep each panel's representative sizes so the whole
// suite stays runnable in minutes.

import (
	"fmt"
	"testing"

	"repro/internal/bench"
	"repro/internal/cluster"
	"repro/internal/mcclient"
)

// latencyPanel runs sub-benchmarks per transport × size for one panel.
func latencyPanel(b *testing.B, clusterName string, mix bench.Mix, sizes []int) {
	b.Helper()
	p := cluster.ProfileByName(clusterName)
	for _, tr := range p.Transports {
		for _, size := range sizes {
			name := fmt.Sprintf("%s/%s", tr, bench.SizeLabel(size))
			b.Run(name, func(b *testing.B) {
				d := cluster.New(p, cluster.Options{})
				defer d.Close()
				c, err := d.NewClient(tr, mcclient.DefaultBehaviors())
				if err != nil {
					b.Fatal(err)
				}
				defer c.Close()
				w := bench.NewWorkload(42, 8, size)
				for _, k := range w.Keys() {
					if err := c.MC.Set(k, w.Value(), 0, 0); err != nil {
						b.Fatal(err)
					}
				}
				cycle := mixOps(mix)
				b.ResetTimer()
				start := c.Clock.Now()
				for i := 0; i < b.N; i++ {
					key := w.Key()
					if cycle[i%len(cycle)] {
						if err := c.MC.Set(key, w.Value(), 0, 0); err != nil {
							b.Fatal(err)
						}
					} else {
						if _, _, _, err := c.MC.Get(key); err != nil {
							b.Fatal(err)
						}
					}
				}
				elapsed := c.Clock.Now() - start
				b.StopTimer()
				b.ReportMetric(float64(elapsed)/float64(b.N)/1e3, "vus/op")
			})
		}
	}
}

// mixOps mirrors the bench package's instruction cycles.
func mixOps(m bench.Mix) []bool {
	switch m {
	case bench.MixSet:
		return []bool{true}
	case bench.MixGet:
		return []bool{false}
	case bench.MixNonInterleaved:
		cycle := make([]bool, 100)
		for i := 0; i < 10; i++ {
			cycle[i] = true
		}
		return cycle
	default:
		return []bool{true, false}
	}
}

// tpsPanel runs sub-benchmarks per transport × client count.
func tpsPanel(b *testing.B, clusterName string, size int, counts []int) {
	b.Helper()
	p := cluster.ProfileByName(clusterName)
	for _, tr := range p.Transports {
		for _, n := range counts {
			name := fmt.Sprintf("%s/%dclients", tr, n)
			b.Run(name, func(b *testing.B) {
				cfg := bench.RunConfig{OpsPerPoint: 50, KeySpace: 16}
				var last float64
				for i := 0; i < b.N; i++ {
					tps, err := bench.TPSPoint(p, tr, n, size, cfg)
					if err != nil {
						b.Fatal(err)
					}
					last = tps
				}
				b.ReportMetric(last/1e3, "ktps")
			})
		}
	}
}

// benchSmall / benchLarge are each panel's representative sweep points.
var (
	benchSmall = []int{4, 4096}
	benchLarge = []int{65536, 524288}
)

// Figure 3: Set and Get latency on Cluster A (ConnectX DDR, 10GigE TOE,
// 1GigE).
func BenchmarkFig3aSetSmallClusterA(b *testing.B) { latencyPanel(b, "A", bench.MixSet, benchSmall) }
func BenchmarkFig3bSetLargeClusterA(b *testing.B) { latencyPanel(b, "A", bench.MixSet, benchLarge) }
func BenchmarkFig3cGetSmallClusterA(b *testing.B) { latencyPanel(b, "A", bench.MixGet, benchSmall) }
func BenchmarkFig3dGetLargeClusterA(b *testing.B) { latencyPanel(b, "A", bench.MixGet, benchLarge) }

// Figure 4: Set and Get latency on Cluster B (ConnectX QDR).
func BenchmarkFig4aSetSmallClusterB(b *testing.B) { latencyPanel(b, "B", bench.MixSet, benchSmall) }
func BenchmarkFig4bSetLargeClusterB(b *testing.B) { latencyPanel(b, "B", bench.MixSet, benchLarge) }
func BenchmarkFig4cGetSmallClusterB(b *testing.B) { latencyPanel(b, "B", bench.MixGet, benchSmall) }
func BenchmarkFig4dGetLargeClusterB(b *testing.B) { latencyPanel(b, "B", bench.MixGet, benchLarge) }

// Figure 5: mixed instruction streams, small messages.
func BenchmarkFig5aNonInterleavedClusterA(b *testing.B) {
	latencyPanel(b, "A", bench.MixNonInterleaved, benchSmall)
}
func BenchmarkFig5bNonInterleavedClusterB(b *testing.B) {
	latencyPanel(b, "B", bench.MixNonInterleaved, benchSmall)
}
func BenchmarkFig5cInterleavedClusterA(b *testing.B) {
	latencyPanel(b, "A", bench.MixInterleaved, benchSmall)
}
func BenchmarkFig5dInterleavedClusterB(b *testing.B) {
	latencyPanel(b, "B", bench.MixInterleaved, benchSmall)
}

// Figure 6: aggregate Get throughput vs client count.
func BenchmarkFig6aTPS4BClusterA(b *testing.B)  { tpsPanel(b, "A", 4, []int{8, 16}) }
func BenchmarkFig6bTPS4KBClusterA(b *testing.B) { tpsPanel(b, "A", 4096, []int{8, 16}) }
func BenchmarkFig6cTPS4BClusterB(b *testing.B)  { tpsPanel(b, "B", 4, []int{8, 16}) }
func BenchmarkFig6dTPS4KBClusterB(b *testing.B) { tpsPanel(b, "B", 4096, []int{8, 16}) }

// Ablations: the design choices DESIGN.md calls out.

// BenchmarkAblationEagerThreshold sweeps the §V one-transaction
// cut-over for 16 KB gets (below: client RDMA-reads; above: packed).
func BenchmarkAblationEagerThreshold(b *testing.B) {
	for _, th := range []int{1024, 8192, 65536} {
		b.Run(fmt.Sprintf("threshold-%s", bench.SizeLabel(th)), func(b *testing.B) {
			var mean float64
			for i := 0; i < b.N; i++ {
				res, err := bench.AblationEagerThreshold(16*1024, []int{th}, bench.RunConfig{OpsPerPoint: 20})
				if err != nil {
					b.Fatal(err)
				}
				mean = res[th]
			}
			b.ReportMetric(mean, "vus/op")
		})
	}
}

// BenchmarkAblationWorkerCount sweeps the §V-A worker pool width.
func BenchmarkAblationWorkerCount(b *testing.B) {
	for _, wc := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers-%d", wc), func(b *testing.B) {
			var ktps float64
			for i := 0; i < b.N; i++ {
				res, err := bench.AblationWorkerCount([]int{wc}, 16, bench.RunConfig{OpsPerPoint: 40})
				if err != nil {
					b.Fatal(err)
				}
				ktps = res[wc]
			}
			b.ReportMetric(ktps, "ktps")
		})
	}
}

// BenchmarkAblationPollingVsEvent compares CQ polling with interrupt-
// driven completion (§II-A1: polling is the low-latency choice).
func BenchmarkAblationPollingVsEvent(b *testing.B) {
	for _, mode := range []string{"polling", "events"} {
		b.Run(mode, func(b *testing.B) {
			var us float64
			for i := 0; i < b.N; i++ {
				poll, ev, err := bench.AblationPollingVsEvents(bench.RunConfig{OpsPerPoint: 20})
				if err != nil {
					b.Fatal(err)
				}
				if mode == "polling" {
					us = poll
				} else {
					us = ev
				}
			}
			b.ReportMetric(us, "vus/op")
		})
	}
}

// BenchmarkAblationCounterAcks measures the §IV-C internal-message cost
// of a completion counter versus NULL counters.
func BenchmarkAblationCounterAcks(b *testing.B) {
	for _, mode := range []string{"null-counters", "completion-counter"} {
		b.Run(mode, func(b *testing.B) {
			var us float64
			for i := 0; i < b.N; i++ {
				nullUs, complUs, _, _, err := bench.AblationCounterAcks(20)
				if err != nil {
					b.Fatal(err)
				}
				if mode == "null-counters" {
					us = nullUs
				} else {
					us = complUs
				}
			}
			b.ReportMetric(us, "vus/op")
		})
	}
}

// BenchmarkAblationRCvsUD compares reliable and unreliable endpoints
// (§VII future work).
func BenchmarkAblationRCvsUD(b *testing.B) {
	for _, mode := range []string{"RC", "UD"} {
		b.Run(mode, func(b *testing.B) {
			var us float64
			for i := 0; i < b.N; i++ {
				rc, ud, err := bench.AblationRCvsUD(bench.RunConfig{OpsPerPoint: 20})
				if err != nil {
					b.Fatal(err)
				}
				if mode == "RC" {
					us = rc
				} else {
					us = ud
				}
			}
			b.ReportMetric(us, "vus/op")
		})
	}
}

// BenchmarkAblationSRQFootprint reports the server's receive-buffer
// memory with per-endpoint windows vs a shared receive queue at 32
// clients (§VII; the pool is flat, the windows grow linearly).
func BenchmarkAblationSRQFootprint(b *testing.B) {
	for _, mode := range []string{"per-endpoint", "srq"} {
		b.Run(mode, func(b *testing.B) {
			var bytes int64
			for i := 0; i < b.N; i++ {
				perEP, srq, err := bench.SRQFootprint(cluster.ClusterB(), 32, bench.RunConfig{OpsPerPoint: 1})
				if err != nil {
					b.Fatal(err)
				}
				if mode == "per-endpoint" {
					bytes = perEP
				} else {
					bytes = srq
				}
			}
			b.ReportMetric(float64(bytes)/1024, "recvbuf-KB")
		})
	}
}

# Test tiers. tier1 is the gate every change must keep green; tier2
# adds vet and the race detector (the mcclient ejection path is
# exercised concurrently).

.PHONY: tier1 tier2 test

tier1:
	go build ./...
	go test ./...

tier2:
	go vet ./...
	go test -race ./...

test: tier1 tier2

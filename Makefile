# Test tiers. tier1 is the gate every change must keep green; tier2
# adds vet and the race detector (the mcclient ejection path is
# exercised concurrently).

.PHONY: tier1 tier2 test perfgate memcheck memcheck-lossy memcheck-onesided memcheck-onesided-lossy \
        memcheck-srq memcheck-srq-lossy memcheck-ud memcheck-ud-lossy \
        memcheck-wrreply memcheck-wrreply-lossy memcheck-fleet memcheck-fleet-lossy \
        mutations fuzz-smoke

tier1:
	go build ./...
	go test ./...

tier2:
	go vet ./...
	go test -race ./...

test: tier1 tier2

# Model-checking sweeps (see EXPERIMENTS.md "Model checking the cache").
MEMCHECK_SEEDS ?= 50

memcheck:
	go run ./cmd/mccheck -transport both -seeds $(MEMCHECK_SEEDS)
	go run ./cmd/mccheck -transport both -seeds $(MEMCHECK_SEEDS) -nobursts
	go run ./cmd/mccheck -transport both -seeds $(MEMCHECK_SEEDS) -pressure

memcheck-lossy:
	go run ./cmd/mccheck -transport both -seeds $(MEMCHECK_SEEDS) -faults

# One-sided GET sweeps (UCR-IB only: the path rides RDMA reads).
memcheck-onesided:
	go run ./cmd/mccheck -transport UCR-IB -seeds $(MEMCHECK_SEEDS) -onesided

memcheck-onesided-lossy:
	go run ./cmd/mccheck -transport UCR-IB -seeds $(MEMCHECK_SEEDS) -onesided -faults

# Connection-scalability sweeps (UCR-IB only): shared-SRQ serving and
# the hybrid UD small-get mode. Each sweep fails if it never actually
# drove the armed datapath (vacuity guard — see cmd/mccheck).
memcheck-srq:
	go run ./cmd/mccheck -transport UCR-IB -seeds $(MEMCHECK_SEEDS) -srq

memcheck-srq-lossy:
	go run ./cmd/mccheck -transport UCR-IB -seeds $(MEMCHECK_SEEDS) -srq -faults

memcheck-ud:
	go run ./cmd/mccheck -transport UCR-IB -seeds $(MEMCHECK_SEEDS) -ud

memcheck-ud-lossy:
	go run ./cmd/mccheck -transport UCR-IB -seeds $(MEMCHECK_SEEDS) -ud -faults

# Write-based reply sweeps (UCR-IB only): RDMA-write replies into the
# client's slot arena. Fails on vacuity if no reply rode the write path.
memcheck-wrreply:
	go run ./cmd/mccheck -transport UCR-IB -seeds $(MEMCHECK_SEEDS) -wrreply

memcheck-wrreply-lossy:
	go run ./cmd/mccheck -transport UCR-IB -seeds $(MEMCHECK_SEEDS) -wrreply -faults

# Fleet sweeps (both transports): replicated churn-capable cluster
# checked against the per-server ownership model. The vacuity guards
# fail a sweep where read repair never ran or churn moved no keyspace.
memcheck-fleet:
	go run ./cmd/mccheck -fleet -transport both -seeds $(MEMCHECK_SEEDS)

memcheck-fleet-lossy:
	go run ./cmd/mccheck -fleet -transport both -seeds $(MEMCHECK_SEEDS) -faults

# Checker validation: every seeded store mutation must be caught.
MUTATIONS = mut_append_nocas mut_get_skip_expiry mut_cas_ignore_id \
            mut_delete_noop mut_add_clobbers mut_proto_drop_flags \
            mut_onesided_stale mut_srq_misroute mut_ud_dup_ack \
            mut_wrreply_stale mut_ring_stale mut_replica_skip

mutations:
	@for m in $(MUTATIONS); do \
		echo "== $$m"; \
		go run -tags $$m ./cmd/mccheck -transport both -seeds 10 -expect-violation || exit 1; \
	done

FUZZTIME ?= 30s

fuzz-smoke:
	go test -run '^$$' -fuzz '^FuzzTextProtocol$$' -fuzztime $(FUZZTIME) ./internal/memcached
	go test -run '^$$' -fuzz '^FuzzAMCodecs$$' -fuzztime $(FUZZTIME) ./internal/memcached

# Perf-regression gate: a quick mcbench run (trimmed pipeline +
# connection-scaling sweeps) compared against the checked-in BENCH_*
# trajectory. Tolerances (see cmd/mcgate flags for the full semantics):
#   throughput  -ktps-tol 0.10  — fail if fresh KTPS < baseline x 0.90
#   allocations -alloc-tol 0.9  — fail if fresh allocs/op > baseline + 0.9
#                                 (any ADDED per-op allocation is +1.0 and fails;
#                                 amortized pool-growth noise stays under ~0.8)
#   memory      -mem-tol  0.10  — fail if fresh bytes > baseline x 1.10
# BENCH_4/BENCH_7 pin the pre-batching trajectory (so the gate also
# proves the event-loop server never dips below the old serving path);
# BENCH_8 pins the batched loop's own throughput AND its allocs/op, the
# baseline that catches a quiet return of per-op allocation; BENCH_9
# pins the write-based reply path (gated by the wrreply quick sweep);
# BENCH_10 pins the fleet cell (the quick suite runs the N=10 fleet
# sweep, so a regression in the replicated path fails here alongside
# the BENCH_8/BENCH_9 single-server gates).
perfgate:
	go run ./cmd/mcbench -quick -json | \
	go run ./cmd/mcgate -baseline BENCH_4.json -baseline BENCH_7.json -baseline BENCH_8.json -baseline BENCH_10.json
	go run ./cmd/mcbench -wrreply -quick -ops 300 -json | \
	go run ./cmd/mcgate -baseline BENCH_9.json

# Test tiers. tier1 is the gate every change must keep green; tier2
# adds vet and the race detector (the mcclient ejection path is
# exercised concurrently).

.PHONY: tier1 tier2 test memcheck memcheck-lossy memcheck-onesided memcheck-onesided-lossy \
        memcheck-srq memcheck-srq-lossy memcheck-ud memcheck-ud-lossy mutations fuzz-smoke

tier1:
	go build ./...
	go test ./...

tier2:
	go vet ./...
	go test -race ./...

test: tier1 tier2

# Model-checking sweeps (see EXPERIMENTS.md "Model checking the cache").
MEMCHECK_SEEDS ?= 50

memcheck:
	go run ./cmd/mccheck -transport both -seeds $(MEMCHECK_SEEDS)
	go run ./cmd/mccheck -transport both -seeds $(MEMCHECK_SEEDS) -nobursts
	go run ./cmd/mccheck -transport both -seeds $(MEMCHECK_SEEDS) -pressure

memcheck-lossy:
	go run ./cmd/mccheck -transport both -seeds $(MEMCHECK_SEEDS) -faults

# One-sided GET sweeps (UCR-IB only: the path rides RDMA reads).
memcheck-onesided:
	go run ./cmd/mccheck -transport UCR-IB -seeds $(MEMCHECK_SEEDS) -onesided

memcheck-onesided-lossy:
	go run ./cmd/mccheck -transport UCR-IB -seeds $(MEMCHECK_SEEDS) -onesided -faults

# Connection-scalability sweeps (UCR-IB only): shared-SRQ serving and
# the hybrid UD small-get mode. Each sweep fails if it never actually
# drove the armed datapath (vacuity guard — see cmd/mccheck).
memcheck-srq:
	go run ./cmd/mccheck -transport UCR-IB -seeds $(MEMCHECK_SEEDS) -srq

memcheck-srq-lossy:
	go run ./cmd/mccheck -transport UCR-IB -seeds $(MEMCHECK_SEEDS) -srq -faults

memcheck-ud:
	go run ./cmd/mccheck -transport UCR-IB -seeds $(MEMCHECK_SEEDS) -ud

memcheck-ud-lossy:
	go run ./cmd/mccheck -transport UCR-IB -seeds $(MEMCHECK_SEEDS) -ud -faults

# Checker validation: every seeded store mutation must be caught.
MUTATIONS = mut_append_nocas mut_get_skip_expiry mut_cas_ignore_id \
            mut_delete_noop mut_add_clobbers mut_proto_drop_flags \
            mut_onesided_stale mut_srq_misroute mut_ud_dup_ack

mutations:
	@for m in $(MUTATIONS); do \
		echo "== $$m"; \
		go run -tags $$m ./cmd/mccheck -transport both -seeds 10 -expect-violation || exit 1; \
	done

FUZZTIME ?= 30s

fuzz-smoke:
	go test -run '^$$' -fuzz '^FuzzTextProtocol$$' -fuzztime $(FUZZTIME) ./internal/memcached
	go test -run '^$$' -fuzz '^FuzzAMCodecs$$' -fuzztime $(FUZZTIME) ./internal/memcached

// Command mcgate is the CI perf-regression gate: it reads a fresh
// mcbench -json report (stdin by default) and compares it against one
// or more checked-in BENCH_*.json baselines, failing the run when a
// metric silently regressed past its tolerance.
//
// Usage:
//
//	mcbench -quick -json | mcgate -baseline BENCH_4.json -baseline BENCH_8.json
//	mcgate -fresh run.json -baseline BENCH_4.json -ktps-tol 0.15
//
// Only cells present in BOTH the fresh report and a baseline are
// compared (a -quick run covers a subset of the full sweep axes; the
// rest of the baseline is simply not exercised). Comparisons are
// direction-aware:
//
//   - pipeline ktps (and connscale tps): higher is better; fail when
//     fresh < baseline x (1 - ktps-tol).
//   - pipeline allocs_per_op: lower is better and absolute; fail when
//     fresh > baseline + alloc-tol. Baselines written before the field
//     existed (BENCH_4) skip this check.
//   - scaling ktps: lower bound, as above.
//   - connscale model fixed_bytes / slope_bytes_per_client and measured
//     point server_recv_bytes: lower is better; fail when
//     fresh > baseline x (1 + mem-tol).
//   - fleet ktps (cells keyed by servers/clients): lower bound, as
//     pipeline ktps.
//
// Figure panels are not compared here: the depth-1 golden tables are
// guarded bit-exactly by TestFigureTablesBitIdentical, which is a far
// tighter gate than any tolerance.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
)

// The decode types mirror the mcbench report but keep every compared
// metric a pointer, so a field a baseline predates (e.g. BENCH_4 has
// no allocs_per_op) is skipped rather than read as a hard zero.

type pipelineCell struct {
	Transport   string   `json:"transport"`
	Depth       int      `json:"depth"`
	ValueSize   int      `json:"value_size"`
	KTPS        *float64 `json:"ktps"`
	AllocsPerOp *float64 `json:"allocs_per_op"`
}

type scalingCell struct {
	Workers int      `json:"workers"`
	Stripes int      `json:"stripes"`
	Clients int      `json:"clients"`
	Mix     string   `json:"mix"`
	KTPS    *float64 `json:"ktps"`
}

type connScaleModel struct {
	Mode                string   `json:"mode"`
	FixedBytes          *float64 `json:"fixed_bytes"`
	SlopeBytesPerClient *float64 `json:"slope_bytes_per_client"`
}

type connScalePoint struct {
	Mode            string   `json:"mode"`
	Clients         int      `json:"clients"`
	ServerRecvBytes *float64 `json:"server_recv_bytes"`
	Measured        bool     `json:"measured"`
}

type connScale struct {
	Models     []connScaleModel   `json:"models"`
	Points     []connScalePoint   `json:"points"`
	TPSClients int                `json:"tps_clients"`
	TPS        map[string]float64 `json:"tps"`
}

type fleetCell struct {
	Servers int      `json:"servers"`
	Clients int      `json:"clients"`
	KTPS    *float64 `json:"ktps"`
}

type report struct {
	OpsPerPoint int            `json:"ops_per_point"`
	Pipeline    []pipelineCell `json:"pipeline"`
	Scaling     []scalingCell  `json:"scaling"`
	ConnScale   *connScale     `json:"connscale"`
	Fleet       []fleetCell    `json:"fleet"`
}

// baselineList collects repeated -baseline flags.
type baselineList []string

func (b *baselineList) String() string     { return fmt.Sprint(*b) }
func (b *baselineList) Set(s string) error { *b = append(*b, s); return nil }

type gate struct {
	ktpsTol  float64 // relative throughput slack (lower bound)
	allocTol float64 // absolute allocs/op slack (upper bound)
	memTol   float64 // relative memory-footprint slack (upper bound)
	compared int
	failed   int
}

func (g *gate) lowerBound(what string, fresh, base float64) {
	g.compared++
	floor := base * (1 - g.ktpsTol)
	if fresh < floor {
		g.failed++
		fmt.Printf("FAIL %-52s fresh %.2f < floor %.2f (baseline %.2f, -%.0f%%)\n",
			what, fresh, floor, base, g.ktpsTol*100)
		return
	}
	fmt.Printf("ok   %-52s fresh %.2f >= floor %.2f (baseline %.2f)\n", what, fresh, floor, base)
}

func (g *gate) upperBoundAbs(what string, fresh, base, slack float64) {
	g.compared++
	ceil := base + slack
	if fresh > ceil {
		g.failed++
		fmt.Printf("FAIL %-52s fresh %.3f > ceil %.3f (baseline %.3f, +%.2f)\n",
			what, fresh, ceil, base, slack)
		return
	}
	fmt.Printf("ok   %-52s fresh %.3f <= ceil %.3f (baseline %.3f)\n", what, fresh, ceil, base)
}

func (g *gate) upperBoundRel(what string, fresh, base float64) {
	g.compared++
	ceil := base * (1 + g.memTol)
	if fresh > ceil {
		g.failed++
		fmt.Printf("FAIL %-52s fresh %.0f > ceil %.0f (baseline %.0f, +%.0f%%)\n",
			what, fresh, ceil, base, g.memTol*100)
		return
	}
	fmt.Printf("ok   %-52s fresh %.0f <= ceil %.0f (baseline %.0f)\n", what, fresh, ceil, base)
}

func (g *gate) comparePipeline(name string, fresh, base []pipelineCell) {
	type key struct {
		t    string
		d, s int
	}
	idx := make(map[key]pipelineCell, len(fresh))
	for _, c := range fresh {
		idx[key{c.Transport, c.Depth, c.ValueSize}] = c
	}
	for _, b := range base {
		f, ok := idx[key{b.Transport, b.Depth, b.ValueSize}]
		if !ok {
			continue
		}
		cell := fmt.Sprintf("%s pipeline %s d=%d %dB", name, b.Transport, b.Depth, b.ValueSize)
		if f.KTPS != nil && b.KTPS != nil {
			g.lowerBound(cell+" ktps", *f.KTPS, *b.KTPS)
		}
		if f.AllocsPerOp != nil && b.AllocsPerOp != nil {
			g.upperBoundAbs(cell+" allocs/op", *f.AllocsPerOp, *b.AllocsPerOp, g.allocTol)
		}
	}
}

func (g *gate) compareScaling(name string, fresh, base []scalingCell) {
	type key struct {
		w, s, c int
		mix     string
	}
	idx := make(map[key]scalingCell, len(fresh))
	for _, c := range fresh {
		idx[key{c.Workers, c.Stripes, c.Clients, c.Mix}] = c
	}
	for _, b := range base {
		f, ok := idx[key{b.Workers, b.Stripes, b.Clients, b.Mix}]
		if !ok || f.KTPS == nil || b.KTPS == nil {
			continue
		}
		g.lowerBound(fmt.Sprintf("%s scaling w=%d s=%d %s ktps", name, b.Workers, b.Stripes, b.Mix),
			*f.KTPS, *b.KTPS)
	}
}

func (g *gate) compareConnScale(name string, fresh, base *connScale) {
	fm := make(map[string]connScaleModel, len(fresh.Models))
	for _, m := range fresh.Models {
		fm[m.Mode] = m
	}
	for _, b := range base.Models {
		f, ok := fm[b.Mode]
		if !ok {
			continue
		}
		cell := fmt.Sprintf("%s connscale %s", name, b.Mode)
		if f.FixedBytes != nil && b.FixedBytes != nil {
			g.upperBoundRel(cell+" fixed_bytes", *f.FixedBytes, *b.FixedBytes)
		}
		if f.SlopeBytesPerClient != nil && b.SlopeBytesPerClient != nil {
			g.upperBoundRel(cell+" slope_bytes", *f.SlopeBytesPerClient, *b.SlopeBytesPerClient)
		}
	}
	type pkey struct {
		mode string
		n    int
	}
	fp := make(map[pkey]connScalePoint, len(fresh.Points))
	for _, p := range fresh.Points {
		if p.Measured {
			fp[pkey{p.Mode, p.Clients}] = p
		}
	}
	for _, b := range base.Points {
		f, ok := fp[pkey{b.Mode, b.Clients}]
		if !ok || !b.Measured || f.ServerRecvBytes == nil || b.ServerRecvBytes == nil {
			continue
		}
		g.upperBoundRel(fmt.Sprintf("%s connscale %s n=%d recv_bytes", name, b.Mode, b.Clients),
			*f.ServerRecvBytes, *b.ServerRecvBytes)
	}
	if fresh.TPSClients == base.TPSClients && fresh.TPSClients > 0 {
		for mode, bv := range base.TPS {
			if fv, ok := fresh.TPS[mode]; ok {
				g.lowerBound(fmt.Sprintf("%s connscale %s tps@%d", name, mode, base.TPSClients), fv, bv)
			}
		}
	}
}

func (g *gate) compareFleet(name string, fresh, base []fleetCell) {
	type key struct{ s, c int }
	idx := make(map[key]fleetCell, len(fresh))
	for _, c := range fresh {
		idx[key{c.Servers, c.Clients}] = c
	}
	for _, b := range base {
		f, ok := idx[key{b.Servers, b.Clients}]
		if !ok || f.KTPS == nil || b.KTPS == nil {
			continue
		}
		g.lowerBound(fmt.Sprintf("%s fleet n=%d clients=%d ktps", name, b.Servers, b.Clients),
			*f.KTPS, *b.KTPS)
	}
}

func main() {
	var (
		baselines baselineList
		freshPath = flag.String("fresh", "-", "fresh mcbench -json report ('-' = stdin)")
		ktpsTol   = flag.Float64("ktps-tol", 0.10, "relative throughput tolerance: fail when fresh ktps < baseline*(1-tol)")
		allocTol  = flag.Float64("alloc-tol", 0.9, "absolute allocs/op tolerance: fail when fresh > baseline+tol (sub-1 so one added per-op allocation always fails; amortized pool-growth noise between -ops settings stays under ~0.8)")
		memTol    = flag.Float64("mem-tol", 0.10, "relative memory tolerance: fail when fresh bytes > baseline*(1+tol)")
	)
	flag.Var(&baselines, "baseline", "baseline BENCH_*.json to gate against (repeatable)")
	flag.Parse()

	if len(baselines) == 0 {
		fmt.Fprintln(os.Stderr, "mcgate: at least one -baseline required")
		os.Exit(2)
	}

	var freshData []byte
	var err error
	if *freshPath == "-" {
		freshData, err = io.ReadAll(os.Stdin)
	} else {
		freshData, err = os.ReadFile(*freshPath)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "mcgate: fresh report: %v\n", err)
		os.Exit(2)
	}
	var fresh report
	if err := json.Unmarshal(freshData, &fresh); err != nil {
		fmt.Fprintf(os.Stderr, "mcgate: fresh report: %v\n", err)
		os.Exit(2)
	}

	g := &gate{ktpsTol: *ktpsTol, allocTol: *allocTol, memTol: *memTol}
	for _, path := range baselines {
		data, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mcgate: %v\n", err)
			os.Exit(2)
		}
		var base report
		if err := json.Unmarshal(data, &base); err != nil {
			fmt.Fprintf(os.Stderr, "mcgate: %s: %v\n", path, err)
			os.Exit(2)
		}
		if len(base.Pipeline) > 0 {
			g.comparePipeline(path, fresh.Pipeline, base.Pipeline)
		}
		if len(base.Scaling) > 0 {
			g.compareScaling(path, fresh.Scaling, base.Scaling)
		}
		if base.ConnScale != nil && fresh.ConnScale != nil {
			g.compareConnScale(path, fresh.ConnScale, base.ConnScale)
		}
		if len(base.Fleet) > 0 {
			g.compareFleet(path, fresh.Fleet, base.Fleet)
		}
	}

	if g.compared == 0 {
		// A gate that matched nothing gates nothing: fail loudly instead
		// of rubber-stamping a run whose axes drifted off the baselines.
		fmt.Fprintln(os.Stderr, "mcgate: no comparable cells between fresh report and baselines")
		os.Exit(1)
	}
	fmt.Printf("mcgate: %d comparisons, %d failed\n", g.compared, g.failed)
	if g.failed > 0 {
		os.Exit(1)
	}
}

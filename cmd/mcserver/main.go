// Command mcserver runs the Memcached engine from this repository over
// the real operating-system network stack: the same slab allocator,
// hash table, LRU, expiry and text protocol that the simulated
// benchmarks exercise, served on a TCP port. It is wire-compatible with
// standard memcached clients for the implemented command set (get,
// gets, set, add, replace, append, prepend, cas, delete, incr, decr,
// touch, stats, flush_all, version, verbosity, quit).
//
// Usage:
//
//	mcserver [-addr :11211] [-m 64] [-M] [-v]
//
// Virtual time for expiry maps to wall-clock seconds since start.
package main

import (
	"flag"
	"log"
	"net"
	"time"

	"repro/internal/memcached"
	"repro/internal/simnet"
)

func main() {
	var (
		addr      = flag.String("addr", ":11211", "listen address")
		memMB     = flag.Int64("m", 64, "memory limit in megabytes")
		noEvict   = flag.Bool("M", false, "return errors instead of evicting")
		verbose   = flag.Bool("v", false, "log connections")
		maxItemKB = flag.Int("I", 1024, "maximum item size in kilobytes")
		stripes   = flag.Int("stripes", 8, "cache-engine lock stripes (1 = global lock)")
	)
	flag.Parse()

	store := memcached.NewStore(memcached.StoreConfig{
		MemoryLimit:      *memMB << 20,
		MaxItemSize:      *maxItemKB << 10,
		DisableEvictions: *noEvict,
		Stripes:          *stripes,
	})

	lis, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("mcserver: %v", err)
	}
	log.Printf("mcserver: engine %s listening on %s (%d MB)", memcached.Version, lis.Addr(), *memMB)

	start := time.Now()
	for {
		conn, err := lis.Accept()
		if err != nil {
			log.Fatalf("mcserver: accept: %v", err)
		}
		if *verbose {
			log.Printf("mcserver: connection from %s", conn.RemoteAddr())
		}
		go serve(conn, store, start, *verbose)
	}
}

// serve drives one connection. The wall clock stands in for virtual
// time so relative expiry behaves like stock memcached. The clock is
// re-synced on every socket read, not once per loop: setting it only
// before ServeOne stamps a command with the time the PREVIOUS reply was
// sent, so a key could outlive its TTL across an idle gap on a blocked
// read.
func serve(conn net.Conn, store *memcached.Store, start time.Time, verbose bool) {
	defer conn.Close()
	clk := simnet.NewVClock(0)
	pc := memcached.NewProtoConn(wallSync{conn, clk, start}, store)
	for {
		clk.Set(simnet.Time(time.Since(start)))
		quit, err := pc.ServeOne(clk)
		if err != nil {
			if verbose {
				log.Printf("mcserver: %s: %v", conn.RemoteAddr(), err)
			}
			return
		}
		if quit {
			return
		}
	}
}

// wallSync forwards the connection's bytes and moves the virtual clock
// up to wall time whenever data arrives, so command execution (which
// happens after the full request is read) sees the current time even
// after the connection sat idle in a blocking read.
type wallSync struct {
	net.Conn
	clk   *simnet.VClock
	start time.Time
}

func (w wallSync) Read(p []byte) (int, error) {
	n, err := w.Conn.Read(p)
	if t := simnet.Time(time.Since(w.start)); t > w.clk.Now() {
		w.clk.Set(t)
	}
	return n, err
}

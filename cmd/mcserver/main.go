// Command mcserver runs the Memcached engine from this repository over
// the real operating-system network stack: the same slab allocator,
// hash table, LRU, expiry and text protocol that the simulated
// benchmarks exercise, served on a TCP port. It is wire-compatible with
// standard memcached clients for the implemented command set (get,
// gets, set, add, replace, append, prepend, cas, delete, incr, decr,
// touch, stats, flush_all, version, verbosity, quit).
//
// Usage:
//
//	mcserver [-addr :11211] [-m 64] [-M] [-v]
//
// Virtual time for expiry maps to wall-clock seconds since start.
package main

import (
	"flag"
	"log"
	"net"
	"time"

	"repro/internal/memcached"
	"repro/internal/simnet"
)

func main() {
	var (
		addr      = flag.String("addr", ":11211", "listen address")
		memMB     = flag.Int64("m", 64, "memory limit in megabytes")
		noEvict   = flag.Bool("M", false, "return errors instead of evicting")
		verbose   = flag.Bool("v", false, "log connections")
		maxItemKB = flag.Int("I", 1024, "maximum item size in kilobytes")
		stripes   = flag.Int("stripes", 8, "cache-engine lock stripes (1 = global lock)")
	)
	flag.Parse()

	store := memcached.NewStore(memcached.StoreConfig{
		MemoryLimit:      *memMB << 20,
		MaxItemSize:      *maxItemKB << 10,
		DisableEvictions: *noEvict,
		Stripes:          *stripes,
	})

	lis, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("mcserver: %v", err)
	}
	log.Printf("mcserver: engine %s listening on %s (%d MB)", memcached.Version, lis.Addr(), *memMB)

	start := time.Now()
	for {
		conn, err := lis.Accept()
		if err != nil {
			log.Fatalf("mcserver: accept: %v", err)
		}
		if *verbose {
			log.Printf("mcserver: connection from %s", conn.RemoteAddr())
		}
		go serve(conn, store, start, *verbose)
	}
}

// serve drives one connection. The wall clock stands in for virtual
// time so relative expiry behaves like stock memcached.
func serve(conn net.Conn, store *memcached.Store, start time.Time, verbose bool) {
	defer conn.Close()
	pc := memcached.NewProtoConn(conn, store)
	clk := simnet.NewVClock(0)
	for {
		clk.Set(simnet.Time(time.Since(start)))
		quit, err := pc.ServeOne(clk)
		if err != nil {
			if verbose {
				log.Printf("mcserver: %s: %v", conn.RemoteAddr(), err)
			}
			return
		}
		if quit {
			return
		}
	}
}

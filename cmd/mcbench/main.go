// Command mcbench regenerates the paper's evaluation figures (Figs 3–6)
// on the simulated clusters and prints each panel as a table or CSV.
//
// Usage:
//
//	mcbench [-figure fig3a] [-csv] [-ops N] [-list] [-speedups]
//	        [-stripes N] [-scaling] [-pipeline [-quick]] [-json[=out.json]]
//
// With no -figure, every panel is produced. -scaling appends the
// multi-core workers x stripes sweep; -pipeline runs the windowed
// in-flight depth sweep instead of the figures (-quick trims it for
// CI); -json additionally writes every panel (and the sweep) as one
// machine-readable report — bare -json streams it to stdout (tables
// move to stderr), -json=path writes a file.
//
// -quick with no sweep selector runs the perf-gate suite: the trimmed
// pipeline and connection-scaling sweeps in one report, the shape
// cmd/mcgate consumes:
//
//	mcbench -quick -json | mcgate -baseline BENCH_4.json -baseline BENCH_7.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
	"repro/internal/cluster"
)

// report is the -json payload: everything the run produced, in order.
type report struct {
	OpsPerPoint int                   `json:"ops_per_point"`
	Stripes     int                   `json:"stripes,omitempty"`
	Figures     []*bench.Figure       `json:"figures,omitempty"`
	Scaling     []bench.ScalingPoint  `json:"scaling,omitempty"`
	Pipeline    []bench.PipelinePoint  `json:"pipeline,omitempty"`
	OneSided    *bench.OneSidedReport  `json:"onesided,omitempty"`
	ConnScale   *bench.ConnScaleReport `json:"connscale,omitempty"`
	Fleet       []bench.FleetPoint     `json:"fleet,omitempty"`
}

// runFleet produces the fleet-scale sweep (N servers, 10N replicated
// pipelined clients, one join per cell). -quick trims to the smoke cell.
func runFleet(cfg bench.RunConfig, quick bool) []bench.FleetPoint {
	pts, err := bench.FleetSweep(clusterProfile("B"), bench.FleetCounts(quick), cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mcbench: fleet: %v\n", err)
		os.Exit(1)
	}
	return pts
}

// runPipeline produces the window-depth sweep (single connection,
// closed loop, cluster B). -quick trims the axes for CI smoke runs.
func runPipeline(cfg bench.RunConfig, quick bool) []bench.PipelinePoint {
	p := clusterProfile("B")
	pts, err := bench.PipelineSweep(p,
		[]cluster.Transport{cluster.UCRIB, cluster.IPoIB},
		bench.PipelineDepths(quick), bench.PipelineSizes(quick), cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mcbench: pipeline: %v\n", err)
		os.Exit(1)
	}
	return pts
}

// runWriteReply produces the write-reply crossover sweep: the pipelined
// GET matrix on UCR-IB, each cell measured with the write-based reply
// path off and on (BENCH_9).
func runWriteReply(cfg bench.RunConfig, quick bool) []bench.PipelinePoint {
	pts, err := bench.WriteReplySweep(clusterProfile("B"),
		bench.PipelineDepths(quick), bench.WriteReplySizes(quick), cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mcbench: wrreply: %v\n", err)
		os.Exit(1)
	}
	return pts
}

// runScaling produces the workers x stripes grid (small gets and the
// interleaved mix, 16 closed-loop clients on UCR-IB, cluster B).
func runScaling(cfg bench.RunConfig) []bench.ScalingPoint {
	p := clusterProfile("B")
	pts, err := bench.ScalingSweep(p, cluster.UCRIB,
		[]int{1, 2, 4, 8}, []int{1, 2, 4, 8}, 16,
		[]bench.Mix{bench.MixGet, bench.MixInterleaved}, cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mcbench: scaling: %v\n", err)
		os.Exit(1)
	}
	return pts
}

// writeJSON dumps the report, indented, to path ("-" = stdout).
func writeJSON(path string, rep report) {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err == nil {
		data = append(data, '\n')
		if path == "-" {
			_, err = os.Stdout.Write(data)
		} else {
			err = os.WriteFile(path, data, 0o644)
		}
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "mcbench: json: %v\n", err)
		os.Exit(1)
	}
}

// jsonFlag is the optional-value -json flag: bare -json means "stream
// the report to stdout" (so mcbench can feed mcgate over a pipe),
// -json=path writes a file.
type jsonFlag struct {
	set  bool
	path string
}

func (f *jsonFlag) String() string { return f.path }
func (f *jsonFlag) IsBoolFlag() bool { return true }
func (f *jsonFlag) Set(s string) error {
	f.set = true
	if s == "" || s == "true" || s == "-" {
		f.path = "-"
	} else {
		f.path = s
	}
	return nil
}

// runAblations prints the design-choice studies from DESIGN.md.
func runAblations(cfg bench.RunConfig) {
	fail := func(err error) {
		fmt.Fprintf(os.Stderr, "mcbench: %v\n", err)
		os.Exit(1)
	}

	eager, err := bench.AblationEagerThreshold(16*1024, []int{1024, 4096, 8192, 16384, 65536}, cfg)
	if err != nil {
		fail(err)
	}
	fmt.Print(bench.AblationResultString("eager threshold sweep: 16KB gets, cluster B (mean latency)", eager, "us"))

	workers, err := bench.AblationWorkerCount([]int{1, 2, 4, 8}, 16, cfg)
	if err != nil {
		fail(err)
	}
	fmt.Print(bench.AblationResultString("worker threads: 16 clients, 4B gets, cluster B (aggregate)", workers, "KTPS"))

	poll, ev, err := bench.AblationPollingVsEvents(cfg)
	if err != nil {
		fail(err)
	}
	fmt.Printf("# CQ polling vs events (64B gets, cluster B)\npolling  %.2f us\nevents   %.2f us\n", poll, ev)

	rc, ud, err := bench.AblationRCvsUD(cfg)
	if err != nil {
		fail(err)
	}
	fmt.Printf("# RC vs UD endpoints (64B gets, cluster B)\nRC       %.2f us\nUD       %.2f us\n", rc, ud)

	nullUs, complUs, _, acks, err := bench.AblationCounterAcks(cfg.OpsPerPoint)
	if err != nil {
		fail(err)
	}
	fmt.Printf("# counter acks (UCR eager echo)\nNULL counters        %.2f us, 0 acks\ncompletion counter   %.2f us, %d acks\n", nullUs, complUs, acks)

	p := clusterProfile("B")
	mg, err := bench.MGetSweep(p, p.Transports, 16, 64, cfg)
	if err != nil {
		fail(err)
	}
	fmt.Println("# mget batching: 16 keys x 64B, cluster B")
	for _, r := range mg {
		fmt.Printf("%-8s 16 singles %8.2f us   one mget %8.2f us   (%.1fx)\n", r.Transport, r.SinglesUs, r.BatchedUs, r.Improvement)
	}

	scale, err := bench.ClientScaling(p, "UCR-IB", []int{4, 8, 16, 32}, cfg)
	if err != nil {
		fail(err)
	}
	fmt.Print(bench.AblationResultString("client scaling: UCR-IB 4B gets, cluster B (aggregate)", scale, "KTPS"))

	perEP, srq, err := bench.SRQFootprint(p, 32, cfg)
	if err != nil {
		fail(err)
	}
	fmt.Printf("# receive-buffer footprint at 32 clients (server total, cluster B)\nper-endpoint windows  %8d KB\nshared receive queue  %8d KB\n",
		perEP/1024, srq/1024)

	fmt.Println("# latency jitter: 64B gets, 500 samples, cluster B (us)")
	for _, tr := range p.Transports {
		rec, err := bench.JitterPoint(p, tr, 64, 500, cfg)
		if err != nil {
			fail(err)
		}
		fmt.Printf("%-8s min %7.2f  mean %7.2f  p99 %7.2f  max %7.2f  spread %7.2f\n",
			tr, rec.Min(), rec.Mean(), rec.Percentile(99), rec.Max(), rec.Jitter())
	}
}

// runFaultSweep prints the drop% x transport resilience table: every
// recovery layer (RC retransmission, socket RTO, client retry+backoff)
// active over a seeded lossy fabric.
func runFaultSweep(cfg bench.RunConfig) {
	p := clusterProfile("B")
	cells, err := bench.FaultSweep(p, p.Transports, []float64{0, 1, 5, 10}, 64, cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mcbench: fault sweep: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("# fault sweep: 64B gets, cluster B, seeded per-pair drop streams")
	fmt.Print(bench.FaultSweepString(cells))
}

func main() {
	var (
		figID     = flag.String("figure", "", "panel id to run (e.g. fig3a); empty = all")
		csv       = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		ops       = flag.Int("ops", 50, "measured operations per point")
		list      = flag.Bool("list", false, "list available panels and exit")
		speedups  = flag.Bool("speedups", false, "append UCR-vs-baseline speedup factors")
		ablations = flag.Bool("ablations", false, "run the design-choice ablations instead of the figures")
		faults    = flag.Bool("faults", false, "run the fault-injection sweep instead of the figures")
		stripes   = flag.Int("stripes", 0, "cache-engine lock stripes for figure runs (0 = deployment default)")
		scaling   = flag.Bool("scaling", false, "append the multi-core workers x stripes sweep")
		pipeline  = flag.Bool("pipeline", false, "run the pipelined window-depth sweep instead of the figures")
		wrreply   = flag.Bool("wrreply", false, "run the write-reply crossover sweep (pipelined GETs, write-based replies off vs on) instead of the figures")
		onesided  = flag.Bool("onesided", false, "run the one-sided GET vs AM GET sweep instead of the figures")
		connscale = flag.Bool("connscale", false, "run the connection-scalability sweep (rc/srq/ud/mux) instead of the figures")
		fleet     = flag.Bool("fleet", false, "run the fleet-scale sweep (N servers, 10N replicated clients, churn) instead of the figures")
		quick     = flag.Bool("quick", false, "with -pipeline/-onesided/-connscale/-fleet: trimmed axes for a CI smoke run; alone: the perf-gate suite")
	)
	var jf jsonFlag
	flag.Var(&jf, "json", "also write the run as a JSON report: bare -json = stdout, -json=path = file")
	flag.Parse()

	// With JSON streaming to stdout, the human tables move to stderr so
	// a pipe into mcgate sees only the report.
	tables := os.Stdout
	if jf.set && jf.path == "-" {
		tables = os.Stderr
	}

	if *quick && !*pipeline && !*wrreply && !*onesided && !*connscale && !*fleet && !*ablations && !*faults && !*list && *figID == "" {
		// Perf-gate suite: the trimmed pipeline, connection-scaling, and
		// fleet sweeps in one report (cmd/mcgate compares the cells it
		// shares with each -baseline file).
		rep := report{OpsPerPoint: *ops}
		rep.Pipeline = runPipeline(bench.RunConfig{OpsPerPoint: *ops}, true)
		fmt.Fprint(tables, bench.PipelineTable(rep.Pipeline))
		csRep, err := bench.ConnScaleSweep(clusterProfile("B"), 24, bench.RunConfig{OpsPerPoint: *ops})
		if err != nil {
			fmt.Fprintf(os.Stderr, "mcbench: connscale: %v\n", err)
			os.Exit(1)
		}
		rep.ConnScale = csRep
		fmt.Fprint(tables, bench.ConnScaleTable(csRep))
		rep.Fleet = runFleet(bench.RunConfig{OpsPerPoint: *ops}, true)
		fmt.Fprint(tables, bench.FleetTable(rep.Fleet))
		if jf.set {
			writeJSON(jf.path, rep)
		}
		return
	}

	if *fleet {
		rep := report{OpsPerPoint: *ops}
		rep.Fleet = runFleet(bench.RunConfig{OpsPerPoint: *ops}, *quick)
		fmt.Fprint(tables, bench.FleetTable(rep.Fleet))
		if jf.set {
			writeJSON(jf.path, rep)
		}
		return
	}

	if *pipeline {
		rep := report{OpsPerPoint: *ops}
		rep.Pipeline = runPipeline(bench.RunConfig{OpsPerPoint: *ops}, *quick)
		fmt.Fprint(tables, bench.PipelineTable(rep.Pipeline))
		if jf.set {
			writeJSON(jf.path, rep)
		}
		return
	}

	if *wrreply {
		rep := report{OpsPerPoint: *ops}
		rep.Pipeline = runWriteReply(bench.RunConfig{OpsPerPoint: *ops}, *quick)
		fmt.Fprint(tables, bench.PipelineTable(rep.Pipeline))
		if jf.set {
			writeJSON(jf.path, rep)
		}
		return
	}

	if *onesided {
		sizes := bench.OneSidedSizes()
		if *quick {
			sizes = []int{64, 4096, 65536}
		}
		osRep, err := bench.OneSidedSweep(sizes, bench.RunConfig{OpsPerPoint: *ops})
		if err != nil {
			fmt.Fprintf(os.Stderr, "mcbench: onesided: %v\n", err)
			os.Exit(1)
		}
		rep := report{OpsPerPoint: *ops, OneSided: osRep}
		fmt.Fprint(tables, bench.OneSidedTable(osRep))
		if jf.set {
			writeJSON(jf.path, rep)
		}
		return
	}

	if *connscale {
		tpsClients := 100
		if *quick {
			tpsClients = 24
		}
		csRep, err := bench.ConnScaleSweep(clusterProfile("B"), tpsClients, bench.RunConfig{OpsPerPoint: *ops})
		if err != nil {
			fmt.Fprintf(os.Stderr, "mcbench: connscale: %v\n", err)
			os.Exit(1)
		}
		rep := report{OpsPerPoint: *ops, ConnScale: csRep}
		fmt.Fprint(tables, bench.ConnScaleTable(csRep))
		if jf.set {
			writeJSON(jf.path, rep)
		}
		return
	}

	if *ablations {
		runAblations(bench.RunConfig{OpsPerPoint: *ops})
		return
	}

	if *faults {
		runFaultSweep(bench.RunConfig{OpsPerPoint: *ops})
		return
	}

	if *list {
		for _, spec := range bench.Figures {
			fmt.Printf("%-7s cluster %s  %s\n", spec.ID, spec.Cluster, spec.Title)
		}
		return
	}

	cfg := bench.RunConfig{OpsPerPoint: *ops}
	cfg.Deploy.Stripes = *stripes
	specs := bench.Figures
	if *figID != "" {
		spec, ok := bench.FigureByID(*figID)
		if !ok {
			fmt.Fprintf(os.Stderr, "mcbench: unknown figure %q (try -list)\n", *figID)
			os.Exit(1)
		}
		specs = []bench.FigureSpec{spec}
	}

	rep := report{OpsPerPoint: *ops, Stripes: *stripes}
	for _, spec := range specs {
		fig, err := spec.Run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mcbench: %s: %v\n", spec.ID, err)
			os.Exit(1)
		}
		rep.Figures = append(rep.Figures, fig)
		var werr error
		if *csv {
			werr = bench.WriteCSV(os.Stdout, fig)
		} else {
			werr = bench.WriteTable(os.Stdout, fig)
		}
		if werr != nil {
			fmt.Fprintf(os.Stderr, "mcbench: write: %v\n", werr)
			os.Exit(1)
		}
		if *speedups {
			for _, base := range fig.SeriesOrder {
				if base == "UCR-IB" {
					continue
				}
				factors := fig.SpeedupOver("UCR-IB", base)
				fmt.Printf("speedup UCR-IB vs %s:", base)
				for _, f := range factors {
					if fig.Unit == "KTPS" && f > 0 {
						// Throughput: higher is better, so invert.
						f = 1 / f
					}
					fmt.Printf(" %.1fx", f)
				}
				fmt.Println()
			}
		}
		fmt.Println()
	}

	if *scaling {
		// The scaling sweep sets its own stripe axis; the -stripes flag
		// only shapes the figure runs above.
		rep.Scaling = runScaling(bench.RunConfig{OpsPerPoint: *ops})
		fmt.Fprint(tables, bench.ScalingTable(rep.Scaling))
		fmt.Println()
	}

	if jf.set {
		writeJSON(jf.path, rep)
	}
}

// clusterProfile resolves a profile by name for the ablations.
func clusterProfile(name string) *cluster.Profile { return cluster.ProfileByName(name) }

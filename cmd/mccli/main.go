// Command mccli is a minimal interactive client for a memcached text-
// protocol server (this repository's mcserver or stock memcached): it
// forwards one command per line and prints the reply.
//
// Usage:
//
//	mccli [-addr localhost:11211] [command...]
//
// With arguments, runs a single command and exits:
//
//	mccli set greeting hello
//	mccli get greeting
//	mccli stats
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"strings"
)

func main() {
	addr := flag.String("addr", "localhost:11211", "server address")
	flag.Parse()

	conn, err := net.Dial("tcp", *addr)
	if err != nil {
		log.Fatalf("mccli: %v", err)
	}
	defer conn.Close()
	r := bufio.NewReader(conn)

	if args := flag.Args(); len(args) > 0 {
		if err := runOne(conn, r, args); err != nil {
			log.Fatalf("mccli: %v", err)
		}
		return
	}

	in := bufio.NewScanner(os.Stdin)
	fmt.Println("mccli: connected; type commands ('set k v', 'get k', raw protocol otherwise)")
	for in.Scan() {
		fields := strings.Fields(in.Text())
		if len(fields) == 0 {
			continue
		}
		if err := runOne(conn, r, fields); err != nil {
			log.Fatalf("mccli: %v", err)
		}
		if fields[0] == "quit" {
			return
		}
	}
}

// runOne sends one command, with a convenience form for set/get.
func runOne(conn net.Conn, r *bufio.Reader, fields []string) error {
	switch {
	case fields[0] == "set" && len(fields) == 3:
		// Convenience: set <key> <value>.
		value := fields[2]
		fmt.Fprintf(conn, "set %s 0 0 %d\r\n%s\r\n", fields[1], len(value), value)
		return printUntil(r, oneLine)
	case fields[0] == "get" || fields[0] == "gets":
		fmt.Fprintf(conn, "%s\r\n", strings.Join(fields, " "))
		return printUntil(r, untilEnd)
	case fields[0] == "stats":
		fmt.Fprintf(conn, "stats\r\n")
		return printUntil(r, untilEnd)
	case fields[0] == "quit":
		fmt.Fprintf(conn, "quit\r\n")
		return nil
	default:
		fmt.Fprintf(conn, "%s\r\n", strings.Join(fields, " "))
		return printUntil(r, oneLine)
	}
}

type stopFn func(line string) bool

func oneLine(string) bool { return true }

func untilEnd(line string) bool { return line == "END" }

func printUntil(r *bufio.Reader, done stopFn) error {
	for {
		line, err := r.ReadString('\n')
		if err != nil {
			return err
		}
		line = strings.TrimRight(line, "\r\n")
		fmt.Println(line)
		if done(line) {
			return nil
		}
	}
}

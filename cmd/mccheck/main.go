// mccheck sweeps the memcheck model checker over seeds and transports:
// randomized workloads run against the real server stack in virtual
// time, the recorded history is checked against a reference model, and
// any violation is shrunk to a minimal replayable script.
//
// Typical uses:
//
//	go run ./cmd/mccheck -transport both -seeds 50            # CI sweep
//	go run ./cmd/mccheck -transport UCR-IB -seed 17 -faults   # replay one seed
//	go run ./cmd/mccheck -transport IPoIB -script repro.txt   # replay a shrunk script
//	go run -tags mut_delete_noop ./cmd/mccheck -seeds 10 -expect-violation
//	go run ./cmd/mccheck -fleet -seeds 50                     # fleet-mode sweep
//
// -fleet switches to the fleet checker: a churn-capable replicated
// cluster (joins, graceful leaves, crashes mid-traffic) checked against
// a per-server ownership model instead of the single-server history
// checker. -servers sets the initial member count; -faults, -seeds,
// -seed, -clients, -ops, -script, and -expect-violation compose as
// usual. Fleet sweeps have their own vacuity guards: across a sweep,
// read repair must have run and churn must have moved keyspace.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cluster"
	"repro/internal/memcached"
	"repro/internal/memcheck"
)

func main() {
	var (
		transport = flag.String("transport", "both", "UCR-IB, IPoIB, or both")
		seeds     = flag.Int("seeds", 0, "sweep seeds 1..N (mutually exclusive with -seed)")
		seed      = flag.Uint64("seed", 1, "single seed to run")
		faults    = flag.Bool("faults", false, "lossy fabric (1% drop) with client retries")
		pressure  = flag.Bool("pressure", false, "small cache, large values: constant LRU eviction")
		nobursts  = flag.Bool("nobursts", false, "blocking ops only, TTL mix enabled")
		onesided  = flag.Bool("onesided", false, "arm the one-sided GET path (UCR transport)")
		srq       = flag.Bool("srq", false, "serve from shared receive queues (UCR transport)")
		ud        = flag.Bool("ud", false, "arm the hybrid UD small-get mode (UCR transport)")
		wrreply   = flag.Bool("wrreply", false, "arm the write-based reply path (UCR transport)")
		fleet     = flag.Bool("fleet", false, "fleet mode: replicated churn-capable cluster against the ownership model")
		servers   = flag.Int("servers", 0, "fleet mode: initial member count (default 4)")
		clients   = flag.Int("clients", 0, "client count (default 3)")
		ops       = flag.Int("ops", 0, "ops per script (default 400)")
		script    = flag.String("script", "", "replay a script file instead of generating from the seed")
		expect    = flag.Bool("expect-violation", false, "invert exit status: fail unless a violation is found (mutation builds)")
		verbose   = flag.Bool("v", false, "print a line per run")
	)
	flag.Parse()

	var trs []cluster.Transport
	switch *transport {
	case "both":
		trs = []cluster.Transport{cluster.UCRIB, cluster.IPoIB}
	case string(cluster.UCRIB):
		trs = []cluster.Transport{cluster.UCRIB}
	case string(cluster.IPoIB):
		trs = []cluster.Transport{cluster.IPoIB}
	default:
		fmt.Fprintf(os.Stderr, "mccheck: unknown transport %q\n", *transport)
		os.Exit(2)
	}

	if muts := memcached.ActiveMutations(); muts != nil {
		fmt.Printf("mccheck: store mutations active: %v\n", muts)
		for _, m := range muts {
			if m == "mut_ring_stale" || m == "mut_replica_skip" {
				// Both fleet mutations only fire on the replicated routing
				// path; arm fleet mode so -expect-violation can catch them.
				if !*fleet {
					*fleet = true
					fmt.Printf("mccheck: -fleet implied by %s\n", m)
				}
			}
			if m == "mut_onesided_stale" && !*onesided {
				// The mutation only fires on the one-sided path; arm it so
				// the -expect-violation build can catch it.
				*onesided = true
				fmt.Println("mccheck: -onesided implied by mut_onesided_stale")
			}
			if m == "mut_srq_misroute" && !*srq {
				*srq = true
				fmt.Println("mccheck: -srq implied by mut_srq_misroute")
			}
			if m == "mut_wrreply_stale" && !*wrreply {
				// The stale-window mutation only fires on the write-based
				// reply path; arm it so -expect-violation can catch it.
				*wrreply = true
				fmt.Println("mccheck: -wrreply implied by mut_wrreply_stale")
			}
			if m == "mut_ud_dup_ack" {
				// The dup-accept only fires when late duplicate replies
				// exist, which takes UD traffic plus timeouts from a lossy
				// fabric.
				if !*ud {
					*ud = true
					fmt.Println("mccheck: -ud implied by mut_ud_dup_ack")
				}
				if !*faults {
					*faults = true
					fmt.Println("mccheck: -faults implied by mut_ud_dup_ack")
				}
			}
		}
	}

	seedList := []uint64{*seed}
	if *seeds > 0 {
		seedList = seedList[:0]
		for s := uint64(1); s <= uint64(*seeds); s++ {
			seedList = append(seedList, s)
		}
	}

	if *fleet {
		runFleetMode(trs, seedList, *servers, *clients, *ops, *faults, *script, *expect, *verbose)
		return
	}

	runs := 0
	ucrRuns := 0
	var srqDemux, udGets, udRetx, batchedDrains, writeReplies uint64
	for _, tr := range trs {
		for _, s := range seedList {
			cfg := memcheck.Config{
				Transport: tr, Seed: s, Faults: *faults, Pressure: *pressure,
				NoBursts: *nobursts, Clients: *clients, Ops: *ops,
				OneSided:     *onesided && tr == cluster.UCRIB,
				SRQ:          *srq && tr == cluster.UCRIB,
				UD:           *ud && tr == cluster.UCRIB,
				WriteReplies: *wrreply && tr == cluster.UCRIB,
			}
			var res *memcheck.Result
			if *script != "" {
				text, err := os.ReadFile(*script)
				if err != nil {
					fmt.Fprintf(os.Stderr, "mccheck: %v\n", err)
					os.Exit(2)
				}
				sc, err := memcheck.ParseScript(string(text))
				if err != nil {
					fmt.Fprintf(os.Stderr, "mccheck: %s: %v\n", *script, err)
					os.Exit(2)
				}
				res = memcheck.RunScript(sc, cfg)
			} else {
				res = memcheck.Run(cfg)
			}
			runs++
			srqDemux += res.SRQDemux
			udGets += res.UDGets
			udRetx += res.UDRetransmits
			batchedDrains += res.BatchedDrains
			writeReplies += res.WriteReplies
			if tr == cluster.UCRIB {
				ucrRuns++
			}
			if res.Violation != nil {
				fmt.Print(res.Report)
				if *expect {
					// One confirmed detection is enough for a mutation build.
					fmt.Printf("mccheck: violation found as expected (transport=%s seed=%d)\n", tr, s)
					os.Exit(0)
				}
				os.Exit(1)
			}
			if *verbose {
				fmt.Printf("mccheck: PASS transport=%s seed=%d records=%d\n", tr, s, len(res.History))
			}
		}
	}
	if *expect {
		fmt.Printf("mccheck: FAIL: expected a violation, %d runs all passed\n", runs)
		os.Exit(1)
	}
	// Vacuity guards: a sweep that armed a datapath but never drove it
	// validated nothing — fail loudly rather than report a hollow PASS.
	if *srq && srqDemux == 0 {
		fmt.Println("mccheck: FAIL: -srq armed but no SRQ demux decisions recorded (vacuous sweep)")
		os.Exit(1)
	}
	if *ud && udGets == 0 {
		fmt.Println("mccheck: FAIL: -ud armed but no requests rode the UD endpoint (vacuous sweep)")
		os.Exit(1)
	}
	if *ud && *faults && udRetx == 0 {
		fmt.Println("mccheck: FAIL: -ud -faults armed but no UD retransmissions happened (vacuous sweep)")
		os.Exit(1)
	}
	if *wrreply && writeReplies == 0 {
		fmt.Println("mccheck: FAIL: -wrreply armed but no reply was posted as an RDMA write (vacuous sweep)")
		os.Exit(1)
	}
	// The batch-scheduled serving loop must actually engage on UCR runs
	// with pipelined bursts: the generator emits concurrent windows
	// (unless -nobursts), so across a sweep at least one worker drain
	// must have harvested ≥2 completions. Zero would mean the checker
	// was exercising a request-at-a-time loop, not the batched one.
	if ucrRuns > 0 && !*nobursts && *script == "" && batchedDrains == 0 {
		fmt.Println("mccheck: FAIL: UCR sweep with bursts but no batched CQ drains recorded (batch path vacuous)")
		os.Exit(1)
	}
	fmt.Printf("mccheck: PASS %d runs (%s, seeds=%d, faults=%v, pressure=%v, srq=%v, ud=%v, wrreply=%v; srqDemux=%d udGets=%d udRetx=%d batchedDrains=%d writeReplies=%d)\n",
		runs, *transport, len(seedList), *faults, *pressure, *srq, *ud, *wrreply, srqDemux, udGets, udRetx, batchedDrains, writeReplies)
}

// runFleetMode sweeps the fleet checker and applies its vacuity guards.
func runFleetMode(trs []cluster.Transport, seedList []uint64, servers, clients, ops int, faults bool, script string, expect, verbose bool) {
	runs := 0
	var repairs uint64
	var moved float64
	var churn int
	for _, tr := range trs {
		for _, s := range seedList {
			cfg := memcheck.FleetConfig{
				Transport: tr, Seed: s, Faults: faults,
				Servers: servers, Clients: clients, Ops: ops,
			}
			var res *memcheck.FleetResult
			if script != "" {
				text, err := os.ReadFile(script)
				if err != nil {
					fmt.Fprintf(os.Stderr, "mccheck: %v\n", err)
					os.Exit(2)
				}
				sc, err := memcheck.ParseScript(string(text))
				if err != nil {
					fmt.Fprintf(os.Stderr, "mccheck: %s: %v\n", script, err)
					os.Exit(2)
				}
				res = memcheck.RunFleetScript(sc, cfg)
			} else {
				res = memcheck.RunFleet(cfg)
			}
			runs++
			repairs += res.Stats.Repairs
			moved += res.Moved
			churn += res.Joins + res.Leaves + res.Crashes
			if res.Violation != nil {
				fmt.Print(res.Report)
				if expect {
					fmt.Printf("mccheck: fleet violation found as expected (transport=%s seed=%d)\n", tr, s)
					os.Exit(0)
				}
				os.Exit(1)
			}
			if verbose {
				fmt.Printf("mccheck: PASS fleet transport=%s seed=%d churn=%d repairs=%d moved=%.4f\n",
					tr, s, res.Joins+res.Leaves+res.Crashes, res.Stats.Repairs, res.Moved)
			}
		}
	}
	if expect {
		fmt.Printf("mccheck: FAIL: expected a fleet violation, %d runs all passed\n", runs)
		os.Exit(1)
	}
	// Vacuity guards: a fleet sweep where replication or churn never ran
	// validated nothing.
	if repairs == 0 {
		fmt.Println("mccheck: FAIL: fleet sweep drove no read repair (vacuous sweep)")
		os.Exit(1)
	}
	if moved <= 0 || churn == 0 {
		fmt.Printf("mccheck: FAIL: fleet sweep churn moved no keyspace (churn=%d moved=%.4f, vacuous sweep)\n", churn, moved)
		os.Exit(1)
	}
	fmt.Printf("mccheck: PASS %d fleet runs (seeds=%d, faults=%v; churn=%d moved=%.4f repairs=%d)\n",
		runs, len(seedList), faults, churn, moved, repairs)
}

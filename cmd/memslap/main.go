// Command memslap is the load-generation tool of this repository —
// the role memslap plays in the memcached distribution, except that
// (like the paper's §VI benchmark suite, and unlike stock memslap,
// which bypasses libmemcached and writes raw sockets) it drives the
// standard client API.
//
// Usage:
//
//	memslap [-cluster B] [-transport UCR-IB] [-concurrency 8]
//	        [-ops 200] [-size 4096] [-mix get] [-servers 1] [-ketama]
//	        [-zipf 0.99]
//
// Mixes: set, get, set10-get90 (the paper's non-interleaved workload),
// set50-get50 (interleaved). Reports aggregate TPS and the latency
// distribution in virtual time.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"sync"

	"repro/internal/bench"
	"repro/internal/cluster"
	"repro/internal/mcclient"
	"repro/internal/simnet"
)

func main() {
	var (
		clusterName = flag.String("cluster", "B", "cluster profile: A or B")
		transport   = flag.String("transport", "UCR-IB", "UCR-IB | IPoIB | SDP | 10GigE-TOE | 1GigE")
		concurrency = flag.Int("concurrency", 8, "number of client nodes")
		ops         = flag.Int("ops", 200, "operations per client")
		size        = flag.Int("size", 4096, "value size in bytes")
		mixName     = flag.String("mix", "get", "set | get | set10-get90 | set50-get50")
		servers     = flag.Int("servers", 1, "number of memcached servers")
		ketama      = flag.Bool("ketama", false, "use consistent hashing")
		workers     = flag.Int("workers", 4, "server worker threads")
		keys        = flag.Int("keys", 64, "distinct keys in the workload")
		zipf        = flag.Float64("zipf", 0, "Zipf exponent for key popularity (0 = uniform round-robin; 0.99 = classic web skew)")
	)
	flag.Parse()

	mix, ok := parseMix(*mixName)
	if !ok {
		fmt.Fprintf(os.Stderr, "memslap: unknown mix %q\n", *mixName)
		os.Exit(1)
	}
	p := cluster.ProfileByName(*clusterName)
	if !p.HasTransport(cluster.Transport(*transport)) {
		fmt.Fprintf(os.Stderr, "memslap: cluster %s has no transport %q\n", p.Name, *transport)
		os.Exit(1)
	}

	d := cluster.New(p, cluster.Options{Servers: *servers, ServerWorkers: *workers})
	defer d.Close()
	behaviors := mcclient.DefaultBehaviors()
	if *ketama {
		behaviors.Distribution = mcclient.DistKetama
	}

	clients := make([]*cluster.Client, *concurrency)
	for i := range clients {
		c, err := d.NewClient(cluster.Transport(*transport), behaviors)
		if err != nil {
			log.Fatalf("memslap: %v", err)
		}
		defer c.Close()
		clients[i] = c
	}

	// Populate once so gets hit.
	w0 := bench.NewWorkload(42, *keys, *size)
	for _, k := range w0.Keys() {
		if err := clients[0].MC.Set(k, w0.Value(), 0, 0); err != nil {
			log.Fatalf("memslap: populate: %v", err)
		}
	}
	var start simnet.Time
	for _, c := range clients {
		if c.Clock.Now() > start {
			start = c.Clock.Now()
		}
	}
	for _, c := range clients {
		c.Clock.AdvanceTo(start)
	}

	type result struct {
		samples []simnet.Duration
		end     simnet.Time
		err     error
	}
	results := make([]result, len(clients))
	var wg sync.WaitGroup
	for i, c := range clients {
		wg.Add(1)
		go func(i int, c *cluster.Client) {
			defer wg.Done()
			var nextKey func() string
			w := bench.NewWorkload(42, *keys, *size)
			if *zipf > 0 {
				zw := bench.NewZipfWorkload(42, uint64(i)+1, *keys, *size, *zipf)
				nextKey = zw.Key
			} else {
				nextKey = w.Key
			}
			cycle := mixCycle(mix)
			samples := make([]simnet.Duration, 0, *ops)
			for n := 0; n < *ops; n++ {
				key := nextKey()
				opStart := c.Clock.Now()
				var err error
				if cycle[n%len(cycle)] {
					err = c.MC.Set(key, w.Value(), 0, 0)
				} else {
					_, _, _, err = c.MC.Get(key)
				}
				if err != nil {
					results[i] = result{err: err}
					return
				}
				samples = append(samples, c.Clock.Now()-opStart)
			}
			results[i] = result{samples: samples, end: c.Clock.Now()}
		}(i, c)
	}
	wg.Wait()

	var all []simnet.Duration
	var makespan simnet.Duration
	for _, r := range results {
		if r.err != nil {
			log.Fatalf("memslap: %v", r.err)
		}
		all = append(all, r.samples...)
		if d := r.end - start; d > makespan {
			makespan = d
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	pct := func(p float64) simnet.Duration {
		idx := int(p / 100 * float64(len(all)))
		if idx >= len(all) {
			idx = len(all) - 1
		}
		return all[idx]
	}
	var sum simnet.Duration
	for _, s := range all {
		sum += s
	}
	totalOps := len(all)
	fmt.Printf("memslap: cluster %s, %s, %d clients x %d ops, %d B values, mix %s, %d server(s), zipf=%.2f\n",
		p.Name, *transport, *concurrency, *ops, *size, mix, *servers, *zipf)
	fmt.Printf("  throughput  %12.0f TPS aggregate (virtual makespan %v)\n",
		float64(totalOps)/makespan.Seconds(), makespan)
	fmt.Printf("  latency     mean %8.2f us   min %8.2f us\n",
		(sum / simnet.Duration(totalOps)).Micros(), all[0].Micros())
	fmt.Printf("              p50  %8.2f us   p95 %8.2f us\n", pct(50).Micros(), pct(95).Micros())
	fmt.Printf("              p99  %8.2f us   max %8.2f us\n", pct(99).Micros(), all[len(all)-1].Micros())
}

func parseMix(name string) (bench.Mix, bool) {
	switch name {
	case "set":
		return bench.MixSet, true
	case "get":
		return bench.MixGet, true
	case "set10-get90":
		return bench.MixNonInterleaved, true
	case "set50-get50":
		return bench.MixInterleaved, true
	default:
		return 0, false
	}
}

func mixCycle(m bench.Mix) []bool {
	switch m {
	case bench.MixSet:
		return []bool{true}
	case bench.MixGet:
		return []bool{false}
	case bench.MixNonInterleaved:
		cycle := make([]bool, 100)
		for i := 0; i < 10; i++ {
			cycle[i] = true
		}
		return cycle
	default:
		return []bool{true, false}
	}
}

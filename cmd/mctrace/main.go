// Command mctrace generates and replays memcached traces against the
// simulated clusters. The paper's production workloads (Facebook's
// memcached traffic, §I/§III) are not public; mctrace produces
// synthetic traces with the published shape — Zipfian popularity,
// read-mostly mixes — and replays any trace in its simple text format.
//
// Generate:
//
//	mctrace -generate -ops 20000 -keys 2048 -zipf 0.99 -gets 0.9 > t.trace
//
// Replay:
//
//	mctrace -replay t.trace -cluster B -transport UCR-IB
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/bench"
	"repro/internal/cluster"
)

func main() {
	var (
		generate = flag.Bool("generate", false, "emit a synthetic trace on stdout")
		replay   = flag.String("replay", "", "trace file to replay")
		ops      = flag.Int("ops", 20000, "generate: operation count")
		keys     = flag.Int("keys", 2048, "generate: keyspace size")
		zipfS    = flag.Float64("zipf", 0.99, "generate: popularity exponent (0 = uniform)")
		gets     = flag.Float64("gets", 0.9, "generate: fraction of gets")
		size     = flag.Int("size", 128, "generate: set value size")
		seed     = flag.Uint64("seed", 42, "generate: PRNG seed")

		clusterName = flag.String("cluster", "B", "replay: cluster profile A or B")
		transport   = flag.String("transport", "UCR-IB", "replay: transport")
		memMB       = flag.Int64("m", 64, "replay: server cache megabytes")
	)
	flag.Parse()

	switch {
	case *generate:
		err := bench.GenerateTrace(os.Stdout, bench.TraceSpec{
			Ops: *ops, Keys: *keys, ZipfS: *zipfS,
			GetFraction: *gets, ValueSize: *size, Seed: *seed,
		})
		if err != nil {
			log.Fatalf("mctrace: %v", err)
		}
	case *replay != "":
		f, err := os.Open(*replay)
		if err != nil {
			log.Fatalf("mctrace: %v", err)
		}
		defer f.Close()
		trace, err := bench.ParseTrace(f)
		if err != nil {
			log.Fatalf("mctrace: %v", err)
		}
		p := cluster.ProfileByName(*clusterName)
		res, err := bench.ReplayTrace(p, cluster.Transport(*transport), trace,
			cluster.Options{MemoryLimit: *memMB << 20})
		if err != nil {
			log.Fatalf("mctrace: %v", err)
		}
		fmt.Printf("mctrace: %d ops over %s on cluster %s (%d MB cache)\n",
			res.Ops, *transport, p.Name, *memMB)
		fmt.Printf("  mix        %d gets / %d sets / %d deletes\n", res.Gets, res.Sets, res.Dels)
		hitRate := 0.0
		if res.Gets > 0 {
			hitRate = float64(res.Hits) / float64(res.Gets) * 100
		}
		fmt.Printf("  cache      %d hits, %d misses (%.1f%% hit rate)\n", res.Hits, res.Misses, hitRate)
		fmt.Printf("  latency    mean %.2f us, p99 %.2f us\n", res.MeanUs, res.P99Us)
		fmt.Printf("  throughput %.0f TPS (virtual makespan %v)\n", res.TPS, res.Makespan)
		fmt.Printf("  server     %d items, %d bytes, %d evictions\n",
			res.ServerCurrItems, res.ServerBytesStored, res.ServerEvictions)
	default:
		fmt.Fprintln(os.Stderr, "mctrace: need -generate or -replay <file> (see -h)")
		os.Exit(1)
	}
}

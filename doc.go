// Package repro reproduces "Memcached Design on High Performance RDMA
// Capable Interconnects" (Jose et al., ICPP 2011) as a pure-Go system:
// a software InfiniBand verbs layer and socket stacks over a
// virtual-time network, the UCR active-message runtime, a Memcached
// engine with both sockets and UCR frontends, a libmemcached-style
// client, and a benchmark suite regenerating every figure of the
// paper's evaluation.
//
// Start with internal/core for the assembled system, DESIGN.md for the
// architecture and the hardware-substitution rationale, and
// EXPERIMENTS.md for paper-vs-measured results. The benchmarks in
// bench_test.go regenerate each figure panel (see also cmd/mcbench).
package repro

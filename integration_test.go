package repro

// End-to-end integration tests across the whole stack, driving the same
// flows the examples narrate: the assembled system (core), mixed
// transports on one cache, the motivating cache-aside workload, pool
// sharding with failover, and a smoke re-run of one evaluation panel.

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/bench"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/mcclient"
	"repro/internal/simnet"
)

func TestEndToEndSystemLifecycle(t *testing.T) {
	sys, err := core.NewSystem(core.Config{Cluster: "B", Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()

	ucrCli, err := sys.AddClient("UCR-IB")
	if err != nil {
		t.Fatal(err)
	}
	sdpCli, err := sys.AddClient("SDP")
	if err != nil {
		t.Fatal(err)
	}

	// The full value-size spectrum through both frontends of one cache.
	for _, size := range []int{1, 100, 8192, 262144} {
		key := fmt.Sprintf("e2e-%d", size)
		val := bytes.Repeat([]byte{byte(size % 251)}, size)
		if err := ucrCli.MC.Set(key, val, 0, 0); err != nil {
			t.Fatalf("set %d: %v", size, err)
		}
		got, _, _, err := sdpCli.MC.Get(key)
		if err != nil || !bytes.Equal(got, val) {
			t.Fatalf("cross-transport read %d: %d bytes, %v", size, len(got), err)
		}
	}

	// The UCR path must be faster, end to end, through the facade.
	probe := func(c *cluster.Client) simnet.Duration {
		start := c.Clock.Now()
		for i := 0; i < 20; i++ {
			if _, _, _, err := c.MC.Get("e2e-100"); err != nil {
				t.Fatal(err)
			}
		}
		return (c.Clock.Now() - start) / 20
	}
	ucrLat, sdpLat := probe(ucrCli), probe(sdpCli)
	if ucrLat >= sdpLat {
		t.Fatalf("UCR (%v) not faster than SDP (%v) through the facade", ucrLat, sdpLat)
	}

	stats := sys.ServerStats()
	if stats["get_hits"] == 0 || stats["cmd_set"] == 0 {
		t.Fatalf("stats = %v", stats)
	}
}

func TestEndToEndCacheAsideWorkload(t *testing.T) {
	// The dbcache example's flow, asserted: a read-mostly workload with
	// cache-aside fills ends up dominated by hits.
	sys, err := core.NewSystem(core.Config{Cluster: "A"})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	proxy, err := sys.AddClient("UCR-IB")
	if err != nil {
		t.Fatal(err)
	}
	rng := simnet.NewRand(7)
	hits, misses := 0, 0
	for i := 0; i < 800; i++ {
		key := fmt.Sprintf("hot-%d", rng.Intn(24))
		if _, _, _, err := proxy.MC.Get(key); err == nil {
			hits++
			continue
		} else if err != mcclient.ErrCacheMiss {
			t.Fatal(err)
		}
		misses++
		proxy.Clock.Advance(2 * simnet.Millisecond) // the "database"
		if err := proxy.MC.Set(key, []byte("row"), 0, 300); err != nil {
			t.Fatal(err)
		}
	}
	if misses != 24 {
		t.Fatalf("misses = %d, want one per hot key", misses)
	}
	if hits != 800-24 {
		t.Fatalf("hits = %d", hits)
	}
}

func TestEndToEndShardingWithFailover(t *testing.T) {
	b := mcclient.DefaultBehaviors()
	b.Distribution = mcclient.DistKetama
	b.AutoEject = true
	b.OpTimeout = 200 * simnet.Microsecond
	d := cluster.New(cluster.ClusterB(), cluster.Options{Servers: 3})
	defer d.Close()
	c, err := d.NewClient(cluster.UCRIB, b)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	for i := 0; i < 120; i++ {
		if err := c.MC.Set(fmt.Sprintf("s-%d", i), []byte("v"), 0, 0); err != nil {
			t.Fatal(err)
		}
	}
	for _, srv := range d.Servers {
		if srv.Store().CurrItems() == 0 {
			t.Fatal("a shard received no items")
		}
	}
	d.ServerNodes[0].Fail()
	for i := 0; i < 120; i++ {
		if err := c.MC.Set(fmt.Sprintf("s-%d", i), []byte("v2"), 0, 0); err != nil {
			t.Fatalf("post-failure set: %v", err)
		}
	}
	if c.MC.LiveServers() != 2 {
		t.Fatalf("LiveServers = %d", c.MC.LiveServers())
	}
}

func TestEndToEndFigureSmoke(t *testing.T) {
	// One full evaluation panel end to end, asserting the paper's
	// ordering on every point: UCR < every sockets path.
	spec, ok := bench.FigureByID("fig4c")
	if !ok {
		t.Fatal("fig4c missing")
	}
	fig, err := spec.Run(bench.RunConfig{OpsPerPoint: 8, KeySpace: 4})
	if err != nil {
		t.Fatal(err)
	}
	ucr := fig.Series["UCR-IB"]
	for _, base := range []string{"IPoIB", "SDP"} {
		vals := fig.Series[base]
		for i := range ucr {
			if ucr[i] >= vals[i] {
				t.Errorf("%s @%s: UCR %.2f >= %s %.2f", fig.ID, fig.XTicks[i], ucr[i], base, vals[i])
			}
		}
	}
}

func TestEndToEndMemslapStyleDistribution(t *testing.T) {
	// The memslap flow: concurrent clients, mixed workload, and a sane
	// latency distribution (p99 >= p50 >= min; SDP shows spread).
	rec, err := bench.JitterPoint(cluster.ClusterB(), cluster.SDP, 64, 200, bench.RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Percentile(99) < rec.Percentile(50) || rec.Percentile(50) < rec.Min() {
		t.Fatalf("distribution not ordered: min %v p50 %v p99 %v", rec.Min(), rec.Percentile(50), rec.Percentile(99))
	}
	if rec.Jitter() < 10 {
		t.Fatalf("SDP-on-QDR spread = %v us, expected visible jitter", rec.Jitter())
	}
}

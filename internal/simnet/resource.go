package simnet

import "sync"

// Resource is a shared serialization point in the simulated system: one
// direction of a link, a NIC DMA engine, a TOE processing pipeline, a
// lock stripe. Work offered to a Resource is serialized in virtual time —
// a request that finds the resource busy is queued behind the in-flight
// work, which is how contention turns into measured latency.
//
// Actors book work in *physical* call order, which with many concurrent
// virtual clocks is not virtual-time order: a request carrying an early
// virtual timestamp may be offered after the frontier has been pushed
// far past it by an actor the OS scheduler happened to run first. The
// resource therefore remembers a bounded list of idle gaps below its
// frontier and backfills such requests into capacity that was genuinely
// free at their time — otherwise the simulated contention would depend
// on goroutine scheduling instead of modeled load (one actor racing
// ahead would teleport the frontier and serialize everyone else behind
// its wall-clock, a pure artifact). An actor whose offered times are
// nondecreasing and at or past the frontier never hits the gap path, so
// single-flow runs are bit-for-bit what the plain frontier model gives.
//
// Resource is safe for concurrent use by many actors.
type Resource struct {
	name string

	mu       sync.Mutex
	nextFree Time
	gaps     []gap    // idle intervals below nextFree, sorted, bounded
	busy     Duration // total occupied time, for utilization stats
	uses     int64
}

// gap is a half-open idle interval [from, to) below the frontier.
type gap struct{ from, to Time }

// maxGaps bounds the remembered idle intervals; when exceeded the oldest
// (earliest) gap is forgotten — forfeiting capacity, never inventing it.
const maxGaps = 64

// NewResource returns an idle resource with the given diagnostic name.
func NewResource(name string) *Resource { return &Resource{name: name} }

// Name reports the diagnostic name given at construction.
func (r *Resource) Name() string { return r.name }

// Acquire reserves the resource for dur starting no earlier than at.
// It returns the actual start time: at if the resource was free (or had
// a remembered idle gap fitting the work), or the end of the queued work
// ahead of the caller otherwise.
func (r *Resource) Acquire(at Time, dur Duration) (start Time) {
	if dur < 0 {
		dur = 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.busy += dur
	r.uses++
	// Backfill: a request whose virtual time lands below the frontier
	// takes the earliest remembered idle interval that can hold it.
	if at < r.nextFree && dur > 0 {
		for i := range r.gaps {
			g := r.gaps[i]
			s := MaxTime(at, g.from)
			if s+dur > g.to {
				continue
			}
			switch {
			case s == g.from && s+dur == g.to: // exact fit: drop the gap
				r.gaps = append(r.gaps[:i], r.gaps[i+1:]...)
			case s == g.from: // booked at the front: shrink
				r.gaps[i].from = s + dur
			case s+dur == g.to: // booked at the back: shrink
				r.gaps[i].to = s
			default: // booked inside: split
				r.gaps[i].to = s
				rest := gap{from: s + dur, to: g.to}
				r.gaps = append(r.gaps, gap{})
				copy(r.gaps[i+2:], r.gaps[i+1:])
				r.gaps[i+1] = rest
			}
			return s
		}
	}
	start = MaxTime(at, r.nextFree)
	if start > r.nextFree {
		// The stretch between the old frontier and this booking was idle:
		// remember it for latecomers with earlier virtual times.
		if len(r.gaps) == maxGaps {
			copy(r.gaps, r.gaps[1:])
			r.gaps = r.gaps[:maxGaps-1]
		}
		r.gaps = append(r.gaps, gap{from: r.nextFree, to: start})
	}
	r.nextFree = start + dur
	return start
}

// NextFree reports the earliest time new work could start.
func (r *Resource) NextFree() Time {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.nextFree
}

// Stats reports total busy time and number of acquisitions.
func (r *Resource) Stats() (busy Duration, uses int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.busy, r.uses
}

// Reset returns the resource to the idle state at time zero.
func (r *Resource) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.nextFree = 0
	r.gaps = r.gaps[:0]
	r.busy = 0
	r.uses = 0
}

package simnet

import "sync"

// Resource is a shared serialization point in the simulated system: one
// direction of a link, a NIC DMA engine, a TOE processing pipeline. Work
// offered to a Resource is serialized in virtual time — a request that
// finds the resource busy is queued behind the in-flight work, which is
// how contention turns into measured latency.
//
// Resource is safe for concurrent use by many actors.
type Resource struct {
	name string

	mu       sync.Mutex
	nextFree Time
	busy     Duration // total occupied time, for utilization stats
	uses     int64
}

// NewResource returns an idle resource with the given diagnostic name.
func NewResource(name string) *Resource { return &Resource{name: name} }

// Name reports the diagnostic name given at construction.
func (r *Resource) Name() string { return r.name }

// Acquire reserves the resource for dur starting no earlier than at.
// It returns the actual start time: at if the resource was free, or the
// end of the queued work ahead of the caller otherwise.
func (r *Resource) Acquire(at Time, dur Duration) (start Time) {
	if dur < 0 {
		dur = 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	start = MaxTime(at, r.nextFree)
	r.nextFree = start + dur
	r.busy += dur
	r.uses++
	return start
}

// NextFree reports the earliest time new work could start.
func (r *Resource) NextFree() Time {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.nextFree
}

// Stats reports total busy time and number of acquisitions.
func (r *Resource) Stats() (busy Duration, uses int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.busy, r.uses
}

// Reset returns the resource to the idle state at time zero.
func (r *Resource) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.nextFree = 0
	r.busy = 0
	r.uses = 0
}

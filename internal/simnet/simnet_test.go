package simnet

import (
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestTimeUnits(t *testing.T) {
	if Microsecond != 1000 {
		t.Fatalf("Microsecond = %d, want 1000", Microsecond)
	}
	if Second != 1e9 {
		t.Fatalf("Second = %d, want 1e9", Second)
	}
	if got := Time(2500).Micros(); got != 2.5 {
		t.Fatalf("Micros = %v, want 2.5", got)
	}
	if got := Time(2 * Second).Seconds(); got != 2 {
		t.Fatalf("Seconds = %v, want 2", got)
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		in   Time
		want string
	}{
		{500, "500ns"},
		{12 * Microsecond, "12.00us"},
		{3 * Millisecond, "3.000ms"},
		{15 * Second, "15.000s"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("Time(%d).String() = %q, want %q", int64(c.in), got, c.want)
		}
	}
}

func TestBytesDuration(t *testing.T) {
	// 1000 bytes at 1 GB/s = 1000 ns.
	if got := BytesDuration(1000, 1e9); got != 1000 {
		t.Fatalf("BytesDuration = %v, want 1000", got)
	}
	if got := BytesDuration(0, 1e9); got != 0 {
		t.Fatalf("zero bytes should cost 0, got %v", got)
	}
	if got := BytesDuration(100, 0); got != 0 {
		t.Fatalf("zero rate should cost 0, got %v", got)
	}
	if got := BytesDuration(-5, 1e9); got != 0 {
		t.Fatalf("negative bytes should cost 0, got %v", got)
	}
}

func TestVClockMonotone(t *testing.T) {
	c := NewVClock(100)
	if c.Now() != 100 {
		t.Fatalf("Now = %v", c.Now())
	}
	c.Advance(50)
	if c.Now() != 150 {
		t.Fatalf("after Advance, Now = %v", c.Now())
	}
	c.Advance(-10) // ignored
	if c.Now() != 150 {
		t.Fatalf("negative Advance moved clock: %v", c.Now())
	}
	c.AdvanceTo(120) // earlier: ignored
	if c.Now() != 150 {
		t.Fatalf("AdvanceTo(earlier) moved clock back: %v", c.Now())
	}
	c.AdvanceTo(300)
	if c.Now() != 300 {
		t.Fatalf("AdvanceTo(later) = %v, want 300", c.Now())
	}
}

func TestVClockMonotoneProperty(t *testing.T) {
	// Property: any sequence of Advance/AdvanceTo never decreases Now.
	f := func(steps []int64) bool {
		c := NewVClock(0)
		prev := c.Now()
		for i, s := range steps {
			if i%2 == 0 {
				c.Advance(Duration(s % 1e6))
			} else {
				c.AdvanceTo(Time(s % 1e6))
			}
			if c.Now() < prev {
				return false
			}
			prev = c.Now()
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestResourceSerialization(t *testing.T) {
	r := NewResource("link")
	// First job: starts at its offered time.
	if start := r.Acquire(100, 50); start != 100 {
		t.Fatalf("first Acquire start = %v, want 100", start)
	}
	// Overlapping job queues behind the first.
	if start := r.Acquire(120, 30); start != 150 {
		t.Fatalf("second Acquire start = %v, want 150", start)
	}
	// A job after the horizon starts on time.
	if start := r.Acquire(500, 10); start != 500 {
		t.Fatalf("third Acquire start = %v, want 500", start)
	}
	busy, uses := r.Stats()
	if busy != 90 || uses != 3 {
		t.Fatalf("Stats = (%v, %v), want (90, 3)", busy, uses)
	}
	r.Reset()
	if nf := r.NextFree(); nf != 0 {
		t.Fatalf("after Reset NextFree = %v", nf)
	}
}

func TestResourceConcurrentNoOverlap(t *testing.T) {
	// Property: concurrent acquisitions never overlap in virtual time.
	r := NewResource("x")
	const n = 200
	type span struct{ s, e Time }
	spans := make([]span, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			start := r.Acquire(Time(i), 10)
			spans[i] = span{start, start + 10}
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			a, b := spans[i], spans[j]
			if a.s < b.e && b.s < a.e {
				t.Fatalf("overlap: [%v,%v) and [%v,%v)", a.s, a.e, b.s, b.e)
			}
		}
	}
}

func TestRandDeterminism(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRand(43)
	same := true
	for i := 0; i < 10; i++ {
		if a.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestRandRanges(t *testing.T) {
	r := NewRand(7)
	for i := 0; i < 1000; i++ {
		if v := r.Intn(17); v < 0 || v >= 17 {
			t.Fatalf("Intn out of range: %d", v)
		}
		if f := r.Float64(); f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
		if d := r.Duration(100); d < 0 || d >= 100 {
			t.Fatalf("Duration out of range: %v", d)
		}
	}
	if d := r.Duration(0); d != 0 {
		t.Fatalf("Duration(0) = %v", d)
	}
}

func newTestFabric(t *testing.T) (*Network, *Fabric, *Node, *Node) {
	t.Helper()
	nw := NewNetwork()
	a := nw.AddNode("a")
	b := nw.AddNode("b")
	f := nw.AddFabric(FabricSpec{
		Name:            "ib",
		LinkBytesPerSec: 1e9, // 1 GB/s: 1 byte = 1 ns
		Propagation:     100,
		SwitchDelay:     50,
	})
	f.Attach(a)
	f.Attach(b)
	return nw, f, a, b
}

func TestFabricDeliverLatency(t *testing.T) {
	_, f, a, b := newTestFabric(t)
	// 1000 bytes: uplink 1000 + prop/2 50 + switch 50 + downlink 1000 + prop/2 50.
	arrive, err := f.Deliver(a, b, 0, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if arrive != 2150 {
		t.Fatalf("arrive = %v, want 2150", arrive)
	}
}

func TestFabricLoopback(t *testing.T) {
	_, f, a, _ := newTestFabric(t)
	arrive, err := f.Deliver(a, a, 10, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if arrive != 1010 {
		t.Fatalf("loopback arrive = %v, want 1010", arrive)
	}
}

func TestFabricContention(t *testing.T) {
	// Two back-to-back sends from the same node serialize on the uplink.
	_, f, a, b := newTestFabric(t)
	first, err := f.Deliver(a, b, 0, 1000)
	if err != nil {
		t.Fatal(err)
	}
	second, err := f.Deliver(a, b, 0, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if second <= first {
		t.Fatalf("second send did not queue: first=%v second=%v", first, second)
	}
	if second-first < 1000 {
		t.Fatalf("queueing delay %v, want >= one serialization (1000)", second-first)
	}
}

func TestFabricDownlinkContention(t *testing.T) {
	// Many senders to one receiver serialize on the receiver's downlink.
	nw := NewNetwork()
	server := nw.AddNode("server")
	f := nw.AddFabric(FabricSpec{Name: "ib", LinkBytesPerSec: 1e9})
	f.Attach(server)
	var last Time
	for i := 0; i < 8; i++ {
		c := nw.AddNode("client")
		f.Attach(c)
		arrive, err := f.Deliver(c, server, 0, 1000)
		if err != nil {
			t.Fatal(err)
		}
		if arrive < last {
			t.Fatalf("downlink did not serialize: %v then %v", last, arrive)
		}
		last = arrive
	}
	// Eight 1000-byte frames on a 1 byte/ns downlink need >= 8000 ns.
	if last < 8000 {
		t.Fatalf("final arrival %v, want >= 8000 (8 serialized frames)", last)
	}
}

func TestFabricFailures(t *testing.T) {
	_, f, a, b := newTestFabric(t)
	b.Fail()
	if !b.Failed() {
		t.Fatal("Failed() should be true")
	}
	if _, err := f.Deliver(a, b, 0, 10); err == nil {
		t.Fatal("Deliver to failed node should error")
	}
	if _, err := f.Deliver(b, a, 0, 10); err == nil {
		t.Fatal("Deliver from failed node should error")
	}
	b.Recover()
	if _, err := f.Deliver(a, b, 0, 10); err != nil {
		t.Fatalf("after Recover: %v", err)
	}
}

func TestFabricUnattached(t *testing.T) {
	nw, f, a, _ := newTestFabric(t)
	c := nw.AddNode("c") // never attached
	if _, err := f.Deliver(a, c, 0, 10); err == nil {
		t.Fatal("Deliver to unattached node should error")
	}
	var ue *ErrUnreachable
	_, err := f.Deliver(a, c, 0, 10)
	if !asErr(err, &ue) {
		t.Fatalf("error type = %T, want *ErrUnreachable", err)
	}
}

// asErr is a tiny errors.As for the one type we need (keeps the test
// independent of wrapping conventions).
func asErr(err error, target **ErrUnreachable) bool {
	if e, ok := err.(*ErrUnreachable); ok {
		*target = e
		return true
	}
	return false
}

func TestNetworkTopology(t *testing.T) {
	nw, f, a, b := newTestFabric(t)
	if nw.Fabric("ib") != f {
		t.Fatal("Fabric lookup failed")
	}
	if nw.Fabric("nope") != nil {
		t.Fatal("unknown fabric should be nil")
	}
	nodes := nw.Nodes()
	if len(nodes) != 2 || nodes[0] != a || nodes[1] != b {
		t.Fatalf("Nodes() = %v", nodes)
	}
	if a.ID() != 0 || b.ID() != 1 {
		t.Fatalf("IDs = %d, %d", a.ID(), b.ID())
	}
	if !f.Attached(a) {
		t.Fatal("a should be attached")
	}
	util := f.Utilization()
	if len(util) != 4 {
		t.Fatalf("Utilization entries = %d, want 4", len(util))
	}
}

func TestDuplicateFabricPanics(t *testing.T) {
	nw := NewNetwork()
	nw.AddFabric(FabricSpec{Name: "x"})
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate fabric should panic")
		}
	}()
	nw.AddFabric(FabricSpec{Name: "x"})
}

func TestMailboxFIFO(t *testing.T) {
	m := NewMailbox[int]()
	for i := 0; i < 10; i++ {
		m.Put(i)
	}
	if m.Len() != 10 {
		t.Fatalf("Len = %d", m.Len())
	}
	for i := 0; i < 10; i++ {
		v, ok := m.Recv()
		if !ok || v != i {
			t.Fatalf("Recv = (%d, %v), want (%d, true)", v, ok, i)
		}
	}
}

func TestMailboxBlockingRecv(t *testing.T) {
	m := NewMailbox[string]()
	done := make(chan string)
	go func() {
		v, _ := m.Recv()
		done <- v
	}()
	time.Sleep(5 * time.Millisecond)
	m.Put("hello")
	select {
	case v := <-done:
		if v != "hello" {
			t.Fatalf("got %q", v)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Recv never woke")
	}
}

func TestMailboxClose(t *testing.T) {
	m := NewMailbox[int]()
	m.Put(1)
	m.Close()
	m.Put(2) // dropped
	if v, ok := m.Recv(); !ok || v != 1 {
		t.Fatalf("queued message lost: (%d, %v)", v, ok)
	}
	if _, ok := m.Recv(); ok {
		t.Fatal("Recv on closed+empty should report !ok")
	}
	if !m.Closed() {
		t.Fatal("Closed() should be true")
	}
	m.Close() // idempotent
}

func TestMailboxCloseWakesReceiver(t *testing.T) {
	m := NewMailbox[int]()
	done := make(chan bool)
	go func() {
		_, ok := m.Recv()
		done <- ok
	}()
	time.Sleep(5 * time.Millisecond)
	m.Close()
	select {
	case ok := <-done:
		if ok {
			t.Fatal("Recv on closed mailbox returned ok")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Close did not wake receiver")
	}
}

func TestMailboxRecvTimeout(t *testing.T) {
	m := NewMailbox[int]()
	if _, ok, timedOut := m.RecvTimeout(10 * time.Millisecond); ok || !timedOut {
		t.Fatal("expected timeout")
	}
	m.Put(5)
	if v, ok, timedOut := m.RecvTimeout(time.Second); !ok || timedOut || v != 5 {
		t.Fatalf("got (%d, %v, %v)", v, ok, timedOut)
	}
	m.Close()
	if _, ok, timedOut := m.RecvTimeout(time.Second); ok || timedOut {
		t.Fatal("closed mailbox should return !ok, !timedOut")
	}
}

package simnet

import "sync"

// Fault injection: a deterministic lossy-wire model that can be
// installed on a Fabric. Every message crossing the wire draws a
// verdict — delivered, dropped, or corrupted — from a seeded stream, so
// the transport layers above (verbs RC retransmission, TCP RTO
// emulation) can be exercised honestly and reproducibly.
//
// Determinism guarantee: each *directed node pair* owns an independent
// verdict stream derived from (seed, fromID, toID, per-pair message
// counter). As long as each directed pair's traffic is emitted by a
// single actor — true for every closed-loop benchmark in this repo —
// the verdict sequence is independent of goroutine interleaving across
// pairs, so a seeded run reproduces bit-identically.

// DeliveryOutcome is the wire's verdict on one message.
type DeliveryOutcome uint8

// Delivery outcomes.
const (
	// Delivered means the message arrived intact.
	Delivered DeliveryOutcome = iota
	// Dropped means the message was lost in the fabric: it consumed the
	// sender's uplink but never reached the receiver.
	Dropped
	// Corrupted means the message arrived but fails its checksum: it
	// consumed both links and is discarded at the receiver.
	Corrupted
)

func (o DeliveryOutcome) String() string {
	switch o {
	case Dropped:
		return "dropped"
	case Corrupted:
		return "corrupted"
	default:
		return "delivered"
	}
}

// FaultConfig parameterizes a FaultInjector.
type FaultConfig struct {
	// Seed keys every per-pair verdict stream. Zero is a valid seed.
	Seed uint64
	// DropRate is the per-message loss probability in [0, 1].
	DropRate float64
	// CorruptRate is the per-message corruption probability in [0, 1].
	// Drop is judged first; corruption applies to the remainder.
	CorruptRate float64
}

// pairKey names one directed node pair.
type pairKey struct{ from, to int }

// pairState is the per-directed-pair stream position plus any one-shot
// scheduled drops.
type pairState struct {
	n        uint64 // messages judged so far on this pair
	dropNext int    // one-shot: drop this many upcoming messages
}

// FaultInjector draws deterministic delivery verdicts. Install one on a
// Fabric with SetFaults; a nil injector (the default) keeps the fabric
// lossless and adds zero cost.
type FaultInjector struct {
	cfg FaultConfig

	mu          sync.Mutex
	pairs       map[pairKey]*pairState
	partitioned map[pairKey]bool

	delivered uint64
	dropped   uint64
	corrupted uint64
}

// NewFaultInjector builds an injector for the given config.
func NewFaultInjector(cfg FaultConfig) *FaultInjector {
	return &FaultInjector{
		cfg:         cfg,
		pairs:       make(map[pairKey]*pairState),
		partitioned: make(map[pairKey]bool),
	}
}

// Config reports the injector's parameters.
func (fi *FaultInjector) Config() FaultConfig { return fi.cfg }

// DropNext schedules a one-shot fault: the next n messages from→to are
// dropped regardless of the probabilistic rates.
func (fi *FaultInjector) DropNext(from, to *Node, n int) {
	fi.mu.Lock()
	fi.pair(pairKey{from.ID(), to.ID()}).dropNext += n
	fi.mu.Unlock()
}

// Partition cuts both directions between a and b until Heal.
func (fi *FaultInjector) Partition(a, b *Node) {
	fi.mu.Lock()
	fi.partitioned[pairKey{a.ID(), b.ID()}] = true
	fi.partitioned[pairKey{b.ID(), a.ID()}] = true
	fi.mu.Unlock()
}

// Heal removes a partition between a and b.
func (fi *FaultInjector) Heal(a, b *Node) {
	fi.mu.Lock()
	delete(fi.partitioned, pairKey{a.ID(), b.ID()})
	delete(fi.partitioned, pairKey{b.ID(), a.ID()})
	fi.mu.Unlock()
}

// Stats reports verdict totals since construction.
func (fi *FaultInjector) Stats() (delivered, dropped, corrupted uint64) {
	fi.mu.Lock()
	defer fi.mu.Unlock()
	return fi.delivered, fi.dropped, fi.corrupted
}

func (fi *FaultInjector) pair(k pairKey) *pairState {
	ps := fi.pairs[k]
	if ps == nil {
		ps = &pairState{}
		fi.pairs[k] = ps
	}
	return ps
}

// mix64 is the SplitMix64 finalizer, used as a hash.
func mix64(x uint64) uint64 {
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// judge draws the verdict for the next message from→to.
func (fi *FaultInjector) judge(from, to *Node) DeliveryOutcome {
	k := pairKey{from.ID(), to.ID()}
	fi.mu.Lock()
	defer fi.mu.Unlock()
	ps := fi.pair(k)
	ps.n++
	if fi.partitioned[k] {
		fi.dropped++
		return Dropped
	}
	if ps.dropNext > 0 {
		ps.dropNext--
		fi.dropped++
		return Dropped
	}
	if fi.cfg.DropRate <= 0 && fi.cfg.CorruptRate <= 0 {
		fi.delivered++
		return Delivered
	}
	// Per-pair stream: hash of (seed, pair, position). Independent of
	// goroutine interleaving across pairs.
	h := mix64(fi.cfg.Seed ^ mix64(uint64(k.from)<<32|uint64(uint32(k.to))) + ps.n*0x9e3779b97f4a7c15)
	u := float64(h>>11) / (1 << 53)
	switch {
	case u < fi.cfg.DropRate:
		fi.dropped++
		return Dropped
	case u < fi.cfg.DropRate+fi.cfg.CorruptRate:
		fi.corrupted++
		return Corrupted
	default:
		fi.delivered++
		return Delivered
	}
}

package simnet

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Node is one host in the simulated cluster. A node can be attached to
// several fabrics (e.g. cluster A nodes carry both a ConnectX DDR HCA and
// a Chelsio 10GigE NIC, like the paper's Intel Clovertown machines).
type Node struct {
	name string
	net  *Network
	id   int

	failed atomic.Bool
}

// Name reports the node's name.
func (n *Node) Name() string { return n.name }

// ID reports the node's index within its Network.
func (n *Node) ID() int { return n.id }

// Fail marks the node dead: fabrics stop delivering to or from it.
// Used by the fault-tolerance tests and example (paper §IV-A: one failing
// process must not take the others down).
func (n *Node) Fail() { n.failed.Store(true) }

// Recover clears the failed state.
func (n *Node) Recover() { n.failed.Store(false) }

// Failed reports whether the node is marked dead.
func (n *Node) Failed() bool { return n.failed.Load() }

// Network is the cluster: a set of nodes and the fabrics joining them.
type Network struct {
	mu      sync.Mutex
	nodes   []*Node
	fabrics map[string]*Fabric
}

// NewNetwork returns an empty cluster.
func NewNetwork() *Network {
	return &Network{fabrics: make(map[string]*Fabric)}
}

// AddNode creates a node with the given name.
func (nw *Network) AddNode(name string) *Node {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	n := &Node{name: name, net: nw, id: len(nw.nodes)}
	nw.nodes = append(nw.nodes, n)
	return n
}

// Nodes returns the nodes in creation order.
func (nw *Network) Nodes() []*Node {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	out := make([]*Node, len(nw.nodes))
	copy(out, nw.nodes)
	return out
}

// Fabric looks up a fabric by name, or nil.
func (nw *Network) Fabric(name string) *Fabric {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	return nw.fabrics[name]
}

// FabricSpec describes a switched fabric's physical characteristics.
type FabricSpec struct {
	// Name identifies the fabric ("ib", "eth10g", "eth1g").
	Name string
	// LinkBytesPerSec is the per-link signalling rate after encoding
	// overhead (e.g. IB QDR: 32 Gb/s data rate = 4e9 bytes/s).
	LinkBytesPerSec float64
	// Propagation is the one-way wire delay node→switch→node.
	Propagation Duration
	// SwitchDelay is the forwarding latency of the switch.
	SwitchDelay Duration
	// MTU is the largest frame the fabric carries in one unit; larger
	// transfers are serialized as multiple frames back-to-back (only
	// the per-frame pipeline effect is modelled, not per-frame cost —
	// protocol per-segment costs live in the transport layers).
	MTU int
}

// Fabric is one switched network: a single switch with a full-duplex link
// to every attached node. Each direction of each link is a Resource, so
// many clients hammering one server serialize on the server's downlink
// (requests) and uplink (responses) — the first-order contention effect
// in the paper's multi-client experiments (Fig 6).
type Fabric struct {
	spec FabricSpec
	net  *Network

	mu   sync.Mutex
	up   map[*Node]*Resource // node → switch
	down map[*Node]*Resource // switch → node

	// faults, when non-nil, makes DeliverFaulty lossy. Plain Deliver
	// (used by connection setup paths) is never affected.
	faults atomic.Pointer[FaultInjector]
}

// AddFabric creates a fabric in the network. The name must be unique.
func (nw *Network) AddFabric(spec FabricSpec) *Fabric {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	if _, dup := nw.fabrics[spec.Name]; dup {
		panic(fmt.Sprintf("simnet: duplicate fabric %q", spec.Name))
	}
	if spec.MTU <= 0 {
		spec.MTU = 1 << 30
	}
	f := &Fabric{
		spec: spec,
		net:  nw,
		up:   make(map[*Node]*Resource),
		down: make(map[*Node]*Resource),
	}
	nw.fabrics[spec.Name] = f
	return f
}

// Spec returns the fabric's physical characteristics.
func (f *Fabric) Spec() FabricSpec { return f.spec }

// Attach connects a node to the fabric (plugs in a NIC/HCA).
func (f *Fabric) Attach(n *Node) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, ok := f.up[n]; ok {
		return
	}
	f.up[n] = NewResource(f.spec.Name + "/" + n.name + "/up")
	f.down[n] = NewResource(f.spec.Name + "/" + n.name + "/down")
}

// Attached reports whether the node has a port on this fabric.
func (f *Fabric) Attached(n *Node) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	_, ok := f.up[n]
	return ok
}

// links returns the two resources for a node, or nil if unattached.
func (f *Fabric) links(n *Node) (up, down *Resource) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.up[n], f.down[n]
}

// ErrUnreachable is returned by Deliver when either end is unattached or
// has failed.
type ErrUnreachable struct {
	Fabric string
	From   string
	To     string
	Reason string
}

func (e *ErrUnreachable) Error() string {
	return fmt.Sprintf("simnet: %s: %s -> %s unreachable: %s", e.Fabric, e.From, e.To, e.Reason)
}

// Deliver computes the arrival time of a message of the given size sent
// from one node to another at virtual time sendAt. The message occupies
// the sender's uplink and the receiver's downlink for its serialization
// time; cut-through pipelining across frames is approximated by charging
// full serialization on each of the two links plus propagation once.
//
// Deliver models only the wire; per-message software/NIC costs belong to
// the transport layers (verbs, sockstream) that call it.
func (f *Fabric) Deliver(from, to *Node, sendAt Time, bytes int) (arrive Time, err error) {
	if from.Failed() {
		return 0, &ErrUnreachable{f.spec.Name, from.name, to.name, "sender failed"}
	}
	if to.Failed() {
		return 0, &ErrUnreachable{f.spec.Name, from.name, to.name, "receiver failed"}
	}
	upRes, _ := f.links(from)
	_, downRes := f.links(to)
	if upRes == nil || downRes == nil {
		return 0, &ErrUnreachable{f.spec.Name, from.name, to.name, "not attached"}
	}
	if bytes < 0 {
		bytes = 0
	}
	tx := BytesDuration(bytes, f.spec.LinkBytesPerSec)
	if from == to {
		// Loopback: no wire, just local copy time.
		return sendAt + tx, nil
	}
	// Sender uplink serialization.
	upStart := upRes.Acquire(sendAt, tx)
	atSwitch := upStart + tx + f.spec.Propagation/2 + f.spec.SwitchDelay
	// Receiver downlink serialization (store-and-forward at the switch for
	// the first frame, pipelined thereafter — approximated as one more
	// full serialization on the downlink).
	downStart := downRes.Acquire(atSwitch, tx)
	return downStart + tx + f.spec.Propagation/2, nil
}

// SetFaults installs (or, with nil, removes) a fault injector on the
// fabric. Only DeliverFaulty consults it; control-plane paths that use
// plain Deliver (CM handshakes, socket dials) stay lossless, matching
// real deployments where connection setup is retried at a higher layer.
func (f *Fabric) SetFaults(fi *FaultInjector) { f.faults.Store(fi) }

// Faults returns the installed fault injector, or nil.
func (f *Fabric) Faults() *FaultInjector { return f.faults.Load() }

// DeliverFaulty is Deliver plus the fabric's fault model. With no
// injector installed (or on loopback) it is exactly Deliver — same
// arithmetic, same resource charges — so a lossless run is bit-identical
// to one that never heard of faults.
//
// A Dropped message charges the sender's uplink (the bytes left the
// NIC) but never touches the receiver's downlink; the returned time is
// when the fabric discarded it. A Corrupted message traverses the full
// path — both links are charged — and the returned time is when the
// receiver's NIC discards the bad frame. In both cases err is nil: the
// wire worked, the payload just didn't survive. Callers decide whether
// to retransmit.
func (f *Fabric) DeliverFaulty(from, to *Node, sendAt Time, bytes int) (arrive Time, outcome DeliveryOutcome, err error) {
	fi := f.faults.Load()
	if fi == nil || from == to {
		arrive, err = f.Deliver(from, to, sendAt, bytes)
		return arrive, Delivered, err
	}
	if from.Failed() {
		return 0, Delivered, &ErrUnreachable{f.spec.Name, from.name, to.name, "sender failed"}
	}
	if to.Failed() {
		return 0, Delivered, &ErrUnreachable{f.spec.Name, from.name, to.name, "receiver failed"}
	}
	upRes, _ := f.links(from)
	_, downRes := f.links(to)
	if upRes == nil || downRes == nil {
		return 0, Delivered, &ErrUnreachable{f.spec.Name, from.name, to.name, "not attached"}
	}
	if bytes < 0 {
		bytes = 0
	}
	outcome = fi.judge(from, to)
	tx := BytesDuration(bytes, f.spec.LinkBytesPerSec)
	upStart := upRes.Acquire(sendAt, tx)
	atSwitch := upStart + tx + f.spec.Propagation/2 + f.spec.SwitchDelay
	if outcome == Dropped {
		// Lost in the fabric: uplink was consumed, receiver never sees it.
		return atSwitch, Dropped, nil
	}
	downStart := downRes.Acquire(atSwitch, tx)
	return downStart + tx + f.spec.Propagation/2, outcome, nil
}

// Utilization reports busy time per link resource, keyed by resource name.
func (f *Fabric) Utilization() map[string]Duration {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make(map[string]Duration, len(f.up)*2)
	for _, r := range f.up {
		busy, _ := r.Stats()
		out[r.Name()] = busy
	}
	for _, r := range f.down {
		busy, _ := r.Stats()
		out[r.Name()] = busy
	}
	return out
}

package simnet_test

import (
	"fmt"

	"repro/internal/simnet"
)

// A two-node fabric: delivery time is uplink serialization + switch +
// downlink serialization + propagation, all in virtual time.
func ExampleFabric_Deliver() {
	nw := simnet.NewNetwork()
	a := nw.AddNode("a")
	b := nw.AddNode("b")
	fab := nw.AddFabric(simnet.FabricSpec{
		Name:            "ib",
		LinkBytesPerSec: 1e9, // 1 byte per nanosecond
		Propagation:     100,
		SwitchDelay:     50,
	})
	fab.Attach(a)
	fab.Attach(b)

	arrive, err := fab.Deliver(a, b, 0, 1000)
	if err != nil {
		panic(err)
	}
	fmt.Printf("1000 bytes arrive at t=%v\n", arrive)

	// A second message queued immediately serializes behind the first
	// on the shared links.
	arrive2, _ := fab.Deliver(a, b, 0, 1000)
	fmt.Printf("the next one queues until t=%v\n", arrive2)
	// Output:
	// 1000 bytes arrive at t=2150ns
	// the next one queues until t=3150ns
}

// Virtual clocks advance analytically: cost models add time, message
// stamps synchronize receivers.
func ExampleVClock() {
	clk := simnet.NewVClock(0)
	clk.Advance(3 * simnet.Microsecond) // a syscall's worth of work
	clk.AdvanceTo(10 * simnet.Microsecond)
	clk.AdvanceTo(5 * simnet.Microsecond) // earlier stamps never rewind
	fmt.Println(clk.Now())
	// Output:
	// 10.00us
}

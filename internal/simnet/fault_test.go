package simnet

import "testing"

func faultFabric(t *testing.T) (*Fabric, *Node, *Node) {
	t.Helper()
	nw := NewNetwork()
	a := nw.AddNode("a")
	b := nw.AddNode("b")
	f := nw.AddFabric(FabricSpec{
		Name:            "test",
		LinkBytesPerSec: 1e9,
		Propagation:     200,
		SwitchDelay:     100,
	})
	f.Attach(a)
	f.Attach(b)
	return f, a, b
}

// With no injector installed, DeliverFaulty must be exactly Deliver.
func TestDeliverFaultyNilInjectorMatchesDeliver(t *testing.T) {
	f, a, b := faultFabric(t)
	f2, a2, b2 := faultFabric(t)
	var at Time
	for i := 0; i < 10; i++ {
		want, err := f.Deliver(a, b, at, 1000+i*100)
		if err != nil {
			t.Fatal(err)
		}
		got, outcome, err := f2.DeliverFaulty(a2, b2, at, 1000+i*100)
		if err != nil {
			t.Fatal(err)
		}
		if outcome != Delivered {
			t.Fatalf("outcome = %v, want Delivered", outcome)
		}
		if got != want {
			t.Fatalf("msg %d: DeliverFaulty arrive %d != Deliver arrive %d", i, got, want)
		}
		at = want
	}
}

// With an injector whose rates are zero, timings must still match Deliver.
func TestDeliverFaultyZeroRatesMatchesDeliver(t *testing.T) {
	f, a, b := faultFabric(t)
	f2, a2, b2 := faultFabric(t)
	f2.SetFaults(NewFaultInjector(FaultConfig{Seed: 1}))
	var at Time
	for i := 0; i < 10; i++ {
		want, _ := f.Deliver(a, b, at, 4096)
		got, outcome, err := f2.DeliverFaulty(a2, b2, at, 4096)
		if err != nil || outcome != Delivered || got != want {
			t.Fatalf("msg %d: got (%d,%v,%v), want (%d,Delivered,nil)", i, got, outcome, err, want)
		}
		at = want
	}
}

// Two injectors with the same seed must produce identical verdict
// sequences per directed pair.
func TestFaultDeterminism(t *testing.T) {
	cfg := FaultConfig{Seed: 42, DropRate: 0.2, CorruptRate: 0.05}
	_, a, b := faultFabric(t)
	run := func() []DeliveryOutcome {
		fi := NewFaultInjector(cfg)
		out := make([]DeliveryOutcome, 200)
		for i := range out {
			out[i] = fi.judge(a, b)
		}
		return out
	}
	first := run()
	second := run()
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("verdict %d differs between identically-seeded runs: %v vs %v", i, first[i], second[i])
		}
	}
	var drops, corrupts int
	for _, o := range first {
		switch o {
		case Dropped:
			drops++
		case Corrupted:
			corrupts++
		}
	}
	if drops == 0 {
		t.Fatal("DropRate 0.2 over 200 messages produced zero drops")
	}
	if corrupts == 0 {
		t.Fatal("CorruptRate 0.05 over 200 messages produced zero corruptions")
	}
}

// Directed pairs draw from independent streams: a→b and b→a must not
// share a verdict sequence position.
func TestFaultPairIndependence(t *testing.T) {
	cfg := FaultConfig{Seed: 7, DropRate: 0.3}
	_, a, b := faultFabric(t)

	// Interleaved judging must give each pair the same stream it gets
	// when judged alone.
	solo := NewFaultInjector(cfg)
	var ab []DeliveryOutcome
	for i := 0; i < 50; i++ {
		ab = append(ab, solo.judge(a, b))
	}
	mixed := NewFaultInjector(cfg)
	for i := 0; i < 50; i++ {
		got := mixed.judge(a, b)
		if got != ab[i] {
			t.Fatalf("a→b verdict %d changed when b→a traffic interleaved", i)
		}
		mixed.judge(b, a) // interleave reverse-direction traffic
	}
}

func TestFaultDropNextAndStats(t *testing.T) {
	f, a, b := faultFabric(t)
	fi := NewFaultInjector(FaultConfig{Seed: 3})
	f.SetFaults(fi)
	fi.DropNext(a, b, 2)

	for i := 0; i < 2; i++ {
		_, outcome, err := f.DeliverFaulty(a, b, 0, 100)
		if err != nil || outcome != Dropped {
			t.Fatalf("msg %d: outcome = %v err = %v, want Dropped", i, outcome, err)
		}
	}
	_, outcome, err := f.DeliverFaulty(a, b, 0, 100)
	if err != nil || outcome != Delivered {
		t.Fatalf("after DropNext exhausted: outcome = %v err = %v, want Delivered", outcome, err)
	}
	// Reverse direction unaffected by DropNext(a, b).
	_, outcome, _ = f.DeliverFaulty(b, a, 0, 100)
	if outcome != Delivered {
		t.Fatalf("b→a outcome = %v, want Delivered", outcome)
	}
	delivered, dropped, corrupted := fi.Stats()
	if delivered != 2 || dropped != 2 || corrupted != 0 {
		t.Fatalf("Stats() = (%d,%d,%d), want (2,2,0)", delivered, dropped, corrupted)
	}
}

func TestFaultPartitionHeal(t *testing.T) {
	f, a, b := faultFabric(t)
	fi := NewFaultInjector(FaultConfig{})
	f.SetFaults(fi)

	fi.Partition(a, b)
	if _, outcome, _ := f.DeliverFaulty(a, b, 0, 10); outcome != Dropped {
		t.Fatalf("partitioned a→b outcome = %v, want Dropped", outcome)
	}
	if _, outcome, _ := f.DeliverFaulty(b, a, 0, 10); outcome != Dropped {
		t.Fatalf("partitioned b→a outcome = %v, want Dropped", outcome)
	}
	fi.Heal(a, b)
	if _, outcome, _ := f.DeliverFaulty(a, b, 0, 10); outcome != Delivered {
		t.Fatalf("healed a→b outcome = %v, want Delivered", outcome)
	}
}

// A dropped message consumes the uplink but not the receiver's downlink.
func TestFaultDropChargesUplinkOnly(t *testing.T) {
	f, a, b := faultFabric(t)
	fi := NewFaultInjector(FaultConfig{})
	f.SetFaults(fi)
	fi.DropNext(a, b, 1)

	if _, outcome, _ := f.DeliverFaulty(a, b, 0, 1000); outcome != Dropped {
		t.Fatal("expected drop")
	}
	util := f.Utilization()
	if util["test/a/up"] == 0 {
		t.Fatal("dropped message did not charge sender uplink")
	}
	if util["test/b/down"] != 0 {
		t.Fatal("dropped message charged receiver downlink")
	}
}

package simnet

// Rand is a small deterministic PRNG (SplitMix64) used for modelled
// jitter and for workload generation. It is deliberately not math/rand:
// benchmark runs must be reproducible from a seed with no global state.
//
// Rand is not safe for concurrent use; give each actor its own.
type Rand struct {
	state uint64
}

// NewRand returns a generator seeded with seed.
func NewRand(seed uint64) *Rand { return &Rand{state: seed + 0x9e3779b97f4a7c15} }

// Uint64 returns the next 64 pseudo-random bits.
func (r *Rand) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a value in [0, n). n must be positive.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("simnet: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a value in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Duration returns a uniform duration in [0, max).
func (r *Rand) Duration(max Duration) Duration {
	if max <= 0 {
		return 0
	}
	return Duration(r.Uint64() % uint64(max))
}

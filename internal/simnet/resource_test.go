package simnet

import "testing"

// TestResourceSerializes: back-to-back offers queue behind each other,
// and the frontier model is exactly start = max(at, nextFree).
func TestResourceSerializes(t *testing.T) {
	r := NewResource("r")
	if got := r.Acquire(100, 50); got != 100 {
		t.Fatalf("idle acquire start = %d, want 100", got)
	}
	if got := r.Acquire(120, 50); got != 150 {
		t.Fatalf("contended acquire start = %d, want 150", got)
	}
	if got := r.Acquire(300, 50); got != 300 {
		t.Fatalf("post-idle acquire start = %d, want 300", got)
	}
	busy, uses := r.Stats()
	if busy != 150 || uses != 3 {
		t.Fatalf("stats = (%d, %d), want (150, 3)", busy, uses)
	}
}

// TestResourceBackfill: a request offered physically late but carrying
// an early virtual time books into capacity that was genuinely idle,
// instead of queueing behind a frontier another actor teleported ahead.
// This is what keeps simulated contention a function of modeled load
// rather than goroutine scheduling order.
func TestResourceBackfill(t *testing.T) {
	r := NewResource("r")
	// Actor A runs first physically: three ops at t=1000, 2000, 3000.
	for _, at := range []Time{1000, 2000, 3000} {
		if got := r.Acquire(at, 100); got != at {
			t.Fatalf("A acquire(%d) = %d, want %d", at, got, at)
		}
	}
	// Actor B arrives physically later with an earlier virtual time.
	// The resource was idle in [1100, 2000): B starts at its own time.
	if got := r.Acquire(1200, 100); got != 1200 {
		t.Fatalf("backfill acquire = %d, want 1200", got)
	}
	// A second backfill into the same gap queues within the gap's
	// remaining room ([1300, 2000) after B's booking).
	if got := r.Acquire(1250, 100); got != 1300 {
		t.Fatalf("second backfill acquire = %d, want 1300", got)
	}
	// A request too large for the first remaining fragment ([1400,2000),
	// 600 of room) takes the next gap with room: [2100,3000).
	if got := r.Acquire(1200, 700); got != 2100 {
		t.Fatalf("oversized acquire = %d, want 2100", got)
	}
	// One that fits no gap queues at the frontier.
	if got := r.Acquire(1200, 900); got != 3100 {
		t.Fatalf("unfittable acquire = %d, want frontier 3100", got)
	}
}

// TestResourceBackfillExactAndSplit covers gap bookkeeping: exact-fit
// consumption, front/back shrinking, and mid-gap splits.
func TestResourceBackfillExactAndSplit(t *testing.T) {
	r := NewResource("r")
	r.Acquire(0, 100)    // busy [0,100)
	r.Acquire(1000, 100) // busy [1000,1100), gap [100,1000)
	// Split the middle: busy [400,500), gaps [100,400) and [500,1000).
	if got := r.Acquire(400, 100); got != 400 {
		t.Fatalf("mid-gap acquire = %d, want 400", got)
	}
	// Front of the first fragment.
	if got := r.Acquire(50, 100); got != 100 {
		t.Fatalf("front-of-gap acquire = %d, want 100", got)
	}
	// Exact fit of what is left of the first fragment [200,400).
	if got := r.Acquire(200, 200); got != 200 {
		t.Fatalf("exact-fit acquire = %d, want 200", got)
	}
	// First fragment is gone; the next early offer lands in [500,1000).
	if got := r.Acquire(0, 300); got != 500 {
		t.Fatalf("next-gap acquire = %d, want 500", got)
	}
}

// TestResourceMonotoneCallerUnchanged: an actor whose offered times are
// nondecreasing and never below the frontier sees bit-identical results
// to the plain frontier model — single-flow runs are unaffected by the
// gap machinery.
func TestResourceMonotoneCallerUnchanged(t *testing.T) {
	r := NewResource("r")
	var frontier Time
	at := Time(0)
	for i := 0; i < 1000; i++ {
		at += Time(7 + i%13)
		dur := Duration(3 + i%5)
		want := MaxTime(at, frontier)
		if got := r.Acquire(at, dur); got != want {
			t.Fatalf("step %d: acquire(%d) = %d, want %d", i, at, got, want)
		}
		frontier = want + dur
	}
	if got := r.NextFree(); got != frontier {
		t.Fatalf("NextFree = %d, want %d", got, frontier)
	}
}

// TestResourceReset clears frontier, gaps, and stats.
func TestResourceReset(t *testing.T) {
	r := NewResource("r")
	r.Acquire(1000, 100)
	r.Reset()
	if got := r.NextFree(); got != 0 {
		t.Fatalf("NextFree after reset = %d, want 0", got)
	}
	if got := r.Acquire(500, 10); got != 500 {
		t.Fatalf("acquire after reset = %d, want 500", got)
	}
	// The pre-reset gap [0,1000) must be gone: an early offer queues at
	// the live frontier, not into forgotten capacity... unless it is
	// genuinely idle. [0,500) is a fresh post-reset gap; use a duration
	// that cannot fit it.
	if got := r.Acquire(0, 600); got != 510 {
		t.Fatalf("post-reset acquire = %d, want 510", got)
	}
}

// Package simnet provides the virtual-time network fabric on which every
// transport in this repository runs.
//
// Nothing in simnet sleeps or consults the wall clock: time is a virtual
// quantity (nanoseconds) carried by actors and advanced analytically from
// cost models. Data still moves for real between in-process nodes — the
// layers above (verbs, sockstream) exchange actual bytes — but the *when*
// is computed, which is what lets a laptop reproduce the latency and
// throughput shapes of the paper's InfiniBand/10GigE testbeds.
//
// The central primitives are:
//
//   - Time / Duration: virtual nanoseconds.
//   - VClock: a single-owner virtual clock (one per client goroutine,
//     server worker, ...).
//   - Resource: a shared serialization point (a link direction, a NIC DMA
//     engine) with a mutex-protected "next free" horizon. Contention on a
//     Resource is how queueing shows up in measured latency.
//   - Fabric: a switched network (one switch, a full-duplex link per node)
//     with a bandwidth/propagation cost model.
//   - Network / Node: the cluster topology.
package simnet

import (
	"fmt"
	"sync/atomic"
)

// Time is a point in virtual time, in nanoseconds since the start of the
// simulation. Virtual time has no relation to the wall clock.
type Time int64

// Duration is a span of virtual time in nanoseconds.
type Duration = Time

// Convenient units for building cost models.
const (
	Nanosecond  Duration = 1
	Microsecond Duration = 1000 * Nanosecond
	Millisecond Duration = 1000 * Microsecond
	Second      Duration = 1000 * Millisecond
)

// Micros reports t as fractional microseconds. It is the unit the paper's
// figures use.
func (t Time) Micros() float64 { return float64(t) / 1e3 }

// Seconds reports t as fractional seconds.
func (t Time) Seconds() float64 { return float64(t) / 1e9 }

// String formats the time with an adaptive unit.
func (t Time) String() string {
	switch {
	case t < 10*Microsecond:
		return fmt.Sprintf("%dns", int64(t))
	case t < Millisecond:
		return fmt.Sprintf("%.2fus", t.Micros())
	case t < 10*Second:
		return fmt.Sprintf("%.3fms", float64(t)/1e6)
	default:
		return fmt.Sprintf("%.3fs", t.Seconds())
	}
}

// MaxTime returns the later of a and b.
func MaxTime(a, b Time) Time {
	if a > b {
		return a
	}
	return b
}

// BytesDuration returns the time to move n bytes at rate bytes/second.
// A non-positive rate means "infinitely fast" and costs nothing.
func BytesDuration(n int, bytesPerSec float64) Duration {
	if bytesPerSec <= 0 || n <= 0 {
		return 0
	}
	return Duration(float64(n) / bytesPerSec * 1e9)
}

// VClock is a virtual clock owned by exactly one goroutine (an "actor"):
// a benchmark client, a memcached worker thread, and so on. Only the
// owner may advance it; cross-actor ordering happens through message
// timestamps and Resource serialization, never by sharing a VClock.
// Reads (Now) are safe from any goroutine, so a harness can observe
// worker clocks while they run.
type VClock struct {
	now atomic.Int64
}

// NewVClock returns a clock set to the given start time.
func NewVClock(start Time) *VClock {
	c := &VClock{}
	c.now.Store(int64(start))
	return c
}

// Now reports the current virtual time.
func (c *VClock) Now() Time { return Time(c.now.Load()) }

// Advance moves the clock forward by d. Negative d is ignored: virtual
// time is monotone.
func (c *VClock) Advance(d Duration) Time {
	t := Time(c.now.Load())
	if d > 0 {
		t += d
		c.now.Store(int64(t))
	}
	return t
}

// AdvanceTo moves the clock to t if t is later than the current time.
// This is how a receiver synchronizes with a message's arrival stamp.
func (c *VClock) AdvanceTo(t Time) Time {
	cur := Time(c.now.Load())
	if t > cur {
		c.now.Store(int64(t))
		return t
	}
	return cur
}

// Set forces the clock to t (used when re-seating a clock between runs).
func (c *VClock) Set(t Time) { c.now.Store(int64(t)) }

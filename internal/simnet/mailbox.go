package simnet

import (
	"sync"
	"time"
)

// Mailbox is an unbounded, closeable queue of timestamped messages. It is
// the delivery mechanism shared by the transport layers: the sender
// computes an arrival stamp with Fabric.Deliver and posts the real payload
// here; the receiver blocks until something is present and then advances
// its virtual clock to the stamp.
//
// The queue is unbounded on purpose: back-pressure in the simulated
// system is modelled explicitly (verbs receive queues, UCR credits,
// socket windows), not by accidental blocking of the in-process plumbing.
type Mailbox[T any] struct {
	mu     sync.Mutex
	queue  []T
	closed bool
	notify chan struct{} // capacity 1, poked on every state change
}

// NewMailbox returns an empty open mailbox.
func NewMailbox[T any]() *Mailbox[T] {
	return &Mailbox[T]{notify: make(chan struct{}, 1)}
}

func (m *Mailbox[T]) poke() {
	select {
	case m.notify <- struct{}{}:
	default:
	}
}

// Put appends a message. Putting to a closed mailbox is a silent no-op
// (the peer went away; the bytes fall on the floor, as on a real wire).
func (m *Mailbox[T]) Put(msg T) {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.queue = append(m.queue, msg)
	m.mu.Unlock()
	m.poke()
}

// PutFront pushes a message back to the head of the queue. Receivers use
// it to undo a TryRecv/Recv they were not yet entitled to (e.g. a segment
// whose virtual arrival lies beyond the reader's deadline) without
// scrambling FIFO order. Putting to a closed mailbox is a no-op.
func (m *Mailbox[T]) PutFront(msg T) {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.queue = append([]T{msg}, m.queue...)
	m.mu.Unlock()
	m.poke()
}

// TryRecv removes the head message if one is present.
// ok=false means empty; closed reports whether the mailbox is closed.
func (m *Mailbox[T]) TryRecv() (msg T, ok, closed bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.queue) > 0 {
		msg = m.queue[0]
		// Avoid retaining the element.
		var zero T
		m.queue[0] = zero
		m.queue = m.queue[1:]
		return msg, true, m.closed
	}
	return msg, false, m.closed
}

// Recv blocks until a message is available or the mailbox is closed and
// drained. ok=false means closed-and-empty.
func (m *Mailbox[T]) Recv() (msg T, ok bool) {
	for {
		msg, got, closed := m.TryRecv()
		if got {
			return msg, true
		}
		if closed {
			return msg, false
		}
		<-m.notify
	}
}

// RecvTimeout is Recv with a real-time cap, used only on failure paths:
// if the peer is dead nothing will ever arrive, and virtual time cannot
// advance by itself. ok=false with timedOut=true reports the cap fired.
func (m *Mailbox[T]) RecvTimeout(d time.Duration) (msg T, ok, timedOut bool) {
	deadline := time.NewTimer(d)
	defer deadline.Stop()
	for {
		msg, got, closed := m.TryRecv()
		if got {
			return msg, true, false
		}
		if closed {
			return msg, false, false
		}
		select {
		case <-m.notify:
		case <-deadline.C:
			return msg, false, true
		}
	}
}

// Len reports the number of queued messages.
func (m *Mailbox[T]) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.queue)
}

// Close marks the mailbox closed and wakes all waiters. Queued messages
// remain receivable.
func (m *Mailbox[T]) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	m.mu.Unlock()
	// The notify channel is never closed (a racing Put's poke must stay
	// safe); a single poke wakes the receiver, which observes the closed
	// flag through TryRecv. Mailboxes have exactly one receiver.
	m.poke()
}

// Closed reports whether Close has been called.
func (m *Mailbox[T]) Closed() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.closed
}

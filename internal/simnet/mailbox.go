package simnet

import (
	"sync"
	"sync/atomic"
	"time"
)

// Mailbox is an unbounded, closeable queue of timestamped messages. It is
// the delivery mechanism shared by the transport layers: the sender
// computes an arrival stamp with Fabric.Deliver and posts the real payload
// here; the receiver blocks until something is present and then advances
// its virtual clock to the stamp.
//
// The queue is unbounded on purpose: back-pressure in the simulated
// system is modelled explicitly (verbs receive queues, UCR credits,
// socket windows), not by accidental blocking of the in-process plumbing.
//
// Storage is a head-indexed ring so a steady-state producer/consumer pair
// never reallocates: the hot serving paths (CQ drains, socket segments)
// cycle through the same backing array instead of re-growing an
// append-and-reslice queue.
type Mailbox[T any] struct {
	mu     sync.Mutex
	buf    []T // ring storage; len(buf) is the capacity
	head   int // index of the oldest queued message
	n      int // queued message count
	closed bool
	notify chan struct{}          // capacity 1, poked on every state change
	hook   atomic.Pointer[func()] // optional, invoked after every poke (see SetNotifyHook)
	timer  *time.Timer            // pooled deadline timer for RecvTimeout (receiver-owned)
}

// NewMailbox returns an empty open mailbox.
func NewMailbox[T any]() *Mailbox[T] {
	return &Mailbox[T]{notify: make(chan struct{}, 1)}
}

func (m *Mailbox[T]) poke() {
	select {
	case m.notify <- struct{}{}:
	default:
	}
	if h := m.hook.Load(); h != nil {
		(*h)()
	}
}

// NotifyC exposes the mailbox's readiness channel so a receiver can park
// on several event sources at once (select over many mailboxes). The
// channel holds at most one token; a token means "state changed since you
// last looked", so after receiving one the owner must drain with TryRecv
// until empty. Spurious tokens are possible and harmless. Only the single
// receiver may take from this channel.
func (m *Mailbox[T]) NotifyC() <-chan struct{} { return m.notify }

// SetNotifyHook installs fn to be called after every poke (Put, PutFront,
// Close), from the goroutine that caused the state change and outside the
// mailbox lock. Event-loop owners use it to enqueue "this source is ready"
// onto their own run queue without dedicating a waker goroutine per
// source. The installer must immediately re-check the mailbox itself:
// pokes that happened before installation did not run the hook. fn must
// be cheap and must not call back into the mailbox.
func (m *Mailbox[T]) SetNotifyHook(fn func()) {
	if fn == nil {
		m.hook.Store(nil)
		return
	}
	m.hook.Store(&fn)
}

// grow doubles the ring (called with mu held, when full).
func (m *Mailbox[T]) grow() {
	newCap := len(m.buf) * 2
	if newCap < 8 {
		newCap = 8
	}
	nb := make([]T, newCap)
	for i := 0; i < m.n; i++ {
		nb[i] = m.buf[(m.head+i)%len(m.buf)]
	}
	m.buf = nb
	m.head = 0
}

// Put appends a message. Putting to a closed mailbox is a silent no-op
// (the peer went away; the bytes fall on the floor, as on a real wire).
func (m *Mailbox[T]) Put(msg T) {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	if m.n == len(m.buf) {
		m.grow()
	}
	m.buf[(m.head+m.n)%len(m.buf)] = msg
	m.n++
	m.mu.Unlock()
	m.poke()
}

// PutFront pushes a message back to the head of the queue. Receivers use
// it to undo a TryRecv/Recv they were not yet entitled to (e.g. a segment
// whose virtual arrival lies beyond the reader's deadline) without
// scrambling FIFO order. Putting to a closed mailbox is a no-op.
func (m *Mailbox[T]) PutFront(msg T) {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	if m.n == len(m.buf) {
		m.grow()
	}
	m.head--
	if m.head < 0 {
		m.head = len(m.buf) - 1
	}
	m.buf[m.head] = msg
	m.n++
	m.mu.Unlock()
	m.poke()
}

// TryRecv removes the head message if one is present.
// ok=false means empty; closed reports whether the mailbox is closed.
func (m *Mailbox[T]) TryRecv() (msg T, ok, closed bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.n > 0 {
		msg = m.buf[m.head]
		// Avoid retaining the element.
		var zero T
		m.buf[m.head] = zero
		m.head = (m.head + 1) % len(m.buf)
		m.n--
		return msg, true, m.closed
	}
	return msg, false, m.closed
}

// Recv blocks until a message is available or the mailbox is closed and
// drained. ok=false means closed-and-empty.
func (m *Mailbox[T]) Recv() (msg T, ok bool) {
	for {
		msg, got, closed := m.TryRecv()
		if got {
			return msg, true
		}
		if closed {
			return msg, false
		}
		<-m.notify
	}
}

// RecvTimeout is Recv with a real-time cap, used only on failure paths:
// if the peer is dead nothing will ever arrive, and virtual time cannot
// advance by itself. ok=false with timedOut=true reports the cap fired.
// The deadline timer is pooled on the mailbox (there is exactly one
// receiver), so steady-state timed waits do not allocate.
func (m *Mailbox[T]) RecvTimeout(d time.Duration) (msg T, ok, timedOut bool) {
	// Fast path: something is already queued (or the box is closed) — no
	// timer needed at all.
	msg, got, closed := m.TryRecv()
	if got {
		return msg, true, false
	}
	if closed {
		return msg, false, false
	}
	deadline := m.armTimer(d)
	defer m.disarmTimer()
	for {
		msg, got, closed = m.TryRecv()
		if got {
			return msg, true, false
		}
		if closed {
			return msg, false, false
		}
		select {
		case <-m.notify:
		case <-deadline:
			return msg, false, true
		}
	}
}

// armTimer readies the pooled receiver-side timer for one RecvTimeout
// call and returns its channel.
func (m *Mailbox[T]) armTimer(d time.Duration) <-chan time.Time {
	if m.timer == nil {
		m.timer = time.NewTimer(d)
		return m.timer.C
	}
	m.timer.Reset(d)
	return m.timer.C
}

// disarmTimer stops the pooled timer and drains a stale expiry so the
// next arm starts clean.
func (m *Mailbox[T]) disarmTimer() {
	if !m.timer.Stop() {
		select {
		case <-m.timer.C:
		default:
		}
	}
}

// Len reports the number of queued messages.
func (m *Mailbox[T]) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.n
}

// Close marks the mailbox closed and wakes all waiters. Queued messages
// remain receivable.
func (m *Mailbox[T]) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	m.mu.Unlock()
	// The notify channel is never closed (a racing Put's poke must stay
	// safe); a single poke wakes the receiver, which observes the closed
	// flag through TryRecv. Mailboxes have exactly one receiver.
	m.poke()
}

// Closed reports whether Close has been called.
func (m *Mailbox[T]) Closed() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.closed
}

// Package ucr implements the Unified Communication Runtime — the
// paper's §IV contribution: an active-message communication library over
// InfiniBand verbs designed to serve data-center middleware (Memcached)
// with the same buffer-management and flow-control machinery as HPC
// runtimes (MVAPICH).
//
// The programming model follows the paper exactly:
//
//   - Endpoints, not ranks: a client establishes a bidirectional
//     end-point with a server before communication; one failing process
//     never takes down others (§IV-A).
//   - Active messages: a message has a header and data. At the target a
//     registered *header handler* runs first and identifies the
//     destination buffer; the data then lands there — packed in the same
//     network transaction for small messages (§IV, Fig 2b), or pulled by
//     the target with RDMA Read for large ones (Fig 2a) — after which an
//     optional *completion handler* runs.
//   - Counters: monotonically increasing objects tracking progress.
//     origin_counter bumps at the origin when the send buffers are
//     reusable; target_counter bumps at the target when data has arrived
//     and the completion handler ran; completion_counter bumps at the
//     origin when the target's completion handler finished. NULL
//     (zero/nil) counters suppress the corresponding internal ack
//     messages (§IV-C).
//   - Synchronization with timeouts: waits carry deadlines so a dead
//     peer is detected and survivable (§IV-A).
package ucr

import (
	"errors"
	"sync/atomic"
	"time"

	"repro/internal/simnet"
)

// Errors returned by UCR operations.
var (
	ErrTimeout      = errors.New("ucr: wait timed out")
	ErrEndpointDown = errors.New("ucr: endpoint down")
	ErrTooLarge     = errors.New("ucr: message too large for endpoint type")
	// ErrNeedReliable rejects one-sided and atomic operations on a UD
	// endpoint: RDMA read/write/atomics exist only on the RC transport.
	// Distinct from ErrTooLarge so callers can tell "switch to an RC
	// endpoint" from "shrink the message".
	ErrNeedReliable = errors.New("ucr: one-sided operation requires a reliable endpoint")
	ErrNoHandler    = errors.New("ucr: no handler registered for message id")
	ErrBadHandler   = errors.New("ucr: handler returned undersized buffer")
	ErrClosed       = errors.New("ucr: runtime closed")
	ErrWindowBounds = errors.New("ucr: one-sided access outside window")
)

// Reliability selects the endpoint type, mirroring the paper's choice of
// reliable (RC-backed) vs unreliable (UD-backed) end-points.
type Reliability uint8

// Endpoint reliability classes.
const (
	Reliable   Reliability = iota // InfiniBand RC transport
	Unreliable                    // InfiniBand UD transport (§VII extension)
)

func (r Reliability) String() string {
	if r == Unreliable {
		return "unreliable"
	}
	return "reliable"
}

// CounterID names a counter across the network: an origin can ask the
// target to bump a specific counter on the target's side (this is how
// Memcached's client passes "counter C" inside its request so the
// server's reply targets it; paper §V-B/V-C).
type CounterID uint64

// Counter is a monotonically increasing progress object (§IV-C).
// Reads are safe from any goroutine; increments happen during progress.
// Counter structs are pooled by the runtime (ids are never reused, the
// structs are), so progress paths that cached a *Counter across a
// possible free must bump through bumpIf with the id they were issued.
type Counter struct {
	id  atomic.Uint64 // CounterID; rewritten when the struct is reissued
	val atomic.Uint64
}

// ID reports the network-visible identifier.
func (c *Counter) ID() CounterID {
	if c == nil {
		return 0
	}
	return CounterID(c.id.Load())
}

// Value reports the current count.
func (c *Counter) Value() uint64 { return c.val.Load() }

func (c *Counter) bump() {
	if c != nil {
		c.val.Add(1)
	}
}

// bumpIf bumps only if the struct still represents the counter the
// caller was issued: a cached pointer whose counter was freed (and the
// struct reissued under a new id) must not fire the new owner's counter.
func (c *Counter) bumpIf(id CounterID) {
	if c != nil && CounterID(c.id.Load()) == id {
		c.val.Add(1)
	}
}

// MutBump increments the counter from outside the delivery path. It
// exists only for seeded-mutation builds — mut_ud_dup_ack routes a
// duplicate reply's completion event into a live slot, which means
// firing that slot's counter as if its own reply had arrived. Normal
// code never calls it.
func (c *Counter) MutBump() { c.bump() }

// HeaderHandler runs at the target when a message header arrives. It may
// perform limited logic and must return the destination buffer for the
// data — at least dataLen bytes (a zero dataLen may return nil). clk is
// the progressing actor's virtual clock; processing the handler does in
// the real system should be charged to it. tag is the message's target
// counter id as carried on the wire — for request/reply protocols it
// doubles as the request tag, letting a receiver with several requests
// in flight route the reply to the right slot (and recognize a late
// duplicate from an AM retry, whose tag no longer matches any slot).
type HeaderHandler func(clk *simnet.VClock, ep *Endpoint, hdr []byte, dataLen int, tag CounterID) []byte

// CompletionHandler runs at the target after the data has fully landed
// in the buffer the header handler chose. It may itself send messages
// (this is how the Memcached server issues its reply AM, §V-B). tag is
// the same target-counter id the header handler saw.
type CompletionHandler func(clk *simnet.VClock, ep *Endpoint, hdr, data []byte, tag CounterID)

// Handler couples the two stages for one message id. Completion may be
// nil (the paper notes running it is optional, decided by handler
// registration).
type Handler struct {
	Header     HeaderHandler
	Completion CompletionHandler
}

// Config tunes the runtime. Zero values get paper-faithful defaults.
type Config struct {
	// EagerThreshold is the largest header+data that travels packed in
	// one network transaction (paper §V: one 8 KB network buffer).
	EagerThreshold int
	// Credits is the number of pre-posted receive buffers per endpoint
	// (the flow-control window).
	Credits int
	// PackBytesPerSec is memcpy bandwidth for packing eager payloads
	// into registered buffers at the origin and out at the target.
	PackBytesPerSec float64
	// HandlerOverhead is the fixed cost of dispatching one active
	// message into its header handler.
	HandlerOverhead simnet.Duration
	// CoalescedHandlerOverhead is the AM-dispatch cost for messages a
	// batched CQ drain processes while hot — the 2nd..Nth of one sweep,
	// and any message arriving within the drain's spin window (default
	// HandlerOverhead/4): the dispatch tables and handler code are hot
	// in cache when messages are processed back to back, mirroring the
	// verbs layer's CoalescedPollOverhead. A lone message always pays
	// the full cost, so depth-1 timing is unchanged.
	CoalescedHandlerOverhead simnet.Duration
	// PollSpin is the short busy-poll window a batched CQ drain keeps
	// open after harvesting work: a completion landing within PollSpin
	// of the drain's clock is harvested at the coalesced cost — the
	// poller is still spinning in its loop, so there is no wakeup to
	// pay — with the clock advanced to the completion's arrival (the
	// time spent spinning). Only the 2nd..Nth steps of a drain that
	// already harvested a completion spin; a lone completion (depth-1
	// traffic, where the next arrival is a full round trip away) always
	// pays the full poll cost, keeping the figure tables bit-identical.
	// Default 2.5µs (well under any depth-1 inter-arrival gap, which is
	// a full round trip of ≥ 3.8µs past the op just served); negative
	// disables spinning entirely.
	PollSpin simnet.Duration
	// RealSilenceCap bounds, in *real* time, how long a wait may sit on
	// a completely silent channel before concluding the peer is dead.
	// Virtual time cannot advance by itself on silence, so this backstop
	// is what turns a dead peer into ErrTimeout (§IV-A).
	RealSilenceCap time.Duration
	// UseSRQ makes every RC endpoint in a context draw receives from
	// one shared receive queue instead of a per-endpoint window — the
	// MVAPICH scalability design the paper cites ([11]) and the basis
	// of §VII's plan to scale client counts: buffer memory stays flat
	// as endpoints grow. Credit-based flow control is disabled in this
	// mode (the shared pool absorbs bursts, sized by SRQBuffers).
	UseSRQ bool
	// SRQBuffers sizes the shared pool (default 4 × Credits).
	SRQBuffers int
	// DisableRegCache turns off the registration cache for rendezvous
	// sends, charging full pin/unpin cost on every large message (the
	// MVAPICH-style cache is on by default; ablation knob).
	DisableRegCache bool
	// RegCacheEntries caps the registration cache (default 128).
	RegCacheEntries int
	// AMRetries is how many times a request-level helper (e.g. the
	// Memcached client transport) may re-send an active message after a
	// timeout before declaring the endpoint dead. Zero keeps the legacy
	// single-attempt behaviour. The runtime only records the knob; the
	// retry loop lives in the caller, which owns request framing and
	// knows whether a duplicate is safe (§IV-A corrective action).
	AMRetries int
}

func (c Config) withDefaults() Config {
	if c.EagerThreshold <= 0 {
		c.EagerThreshold = 8192
	}
	if c.Credits <= 0 {
		c.Credits = 64
	}
	if c.PackBytesPerSec <= 0 {
		c.PackBytesPerSec = 5e9
	}
	if c.RealSilenceCap <= 0 {
		c.RealSilenceCap = 500 * time.Millisecond
	}
	if c.PollSpin == 0 {
		c.PollSpin = 2500
	}
	if c.CoalescedHandlerOverhead <= 0 {
		c.CoalescedHandlerOverhead = c.HandlerOverhead / 4
	}
	if c.RegCacheEntries <= 0 {
		c.RegCacheEntries = 128
	}
	if c.SRQBuffers <= 0 {
		c.SRQBuffers = 4 * c.Credits
	}
	return c
}

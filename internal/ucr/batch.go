package ucr

import (
	"repro/internal/simnet"
	"repro/internal/verbs"
)

// This file is the batching face of the runtime: doorbell-coalesced
// posting for pipelined senders and batched CQ draining for pipelined
// waiters. Both leave the one-at-a-time paths (sendPacket via PostSend,
// WaitCounter via ProgressDeadline) charging exactly what they always
// did — a batch of one is the old code.

// postBatch accumulates the work requests of packets sent between
// BeginPostBatch and FlushPosts so one doorbell ring covers them all.
type postBatch struct {
	qp   *verbs.QP
	wrs  []verbs.SendWR
	undo []func() // per-WR cleanup, run if the burst fails to post
}

// BeginPostBatch opens a doorbell batch on the context: packets sent
// until FlushPosts are encoded and charged as usual, but their work
// requests are held back and posted as one PostSendN burst. Only sends
// on one QP coalesce — a packet for a different endpoint (e.g. an ack
// emitted while progressing) posts immediately, keeping the batch a
// pure same-endpoint doorbell optimization.
func (c *Context) BeginPostBatch() {
	if c.batch == nil {
		c.batch = &postBatch{}
	}
}

// queuePost absorbs a WR into the open batch. false means no batch is
// open (or the WR is for another QP) and the caller must post directly.
func (c *Context) queuePost(qp *verbs.QP, wr verbs.SendWR, undo func()) bool {
	b := c.batch
	if b == nil {
		return false
	}
	if b.qp == nil {
		b.qp = qp
	}
	if b.qp != qp {
		return false
	}
	b.wrs = append(b.wrs, wr)
	b.undo = append(b.undo, undo)
	return true
}

// FlushPosts closes the batch and rings the doorbell once for every
// held-back WR. On error the per-WR cleanups run (the endpoint is
// failing; the packets never reached the wire).
func (c *Context) FlushPosts(clk *simnet.VClock) error {
	b := c.batch
	c.batch = nil
	if b == nil || len(b.wrs) == 0 {
		return nil
	}
	if err := b.qp.PostSendN(clk, b.wrs); err != nil {
		for _, undo := range b.undo {
			undo()
		}
		return ErrEndpointDown
	}
	return nil
}

// TryProgressN processes up to max completions in one batched drain: the
// first is harvested at the full poll/interrupt cost (synchronizing the
// clock to its arrival), the rest — only those already visible at the
// advanced clock — at the coalesced cost. max <= 1 degenerates to
// TryProgress. Returns how many completions were processed.
func (c *Context) TryProgressN(clk *simnet.VClock, max int) int {
	wc, ok := c.cq.TryPollWith(clk)
	if !ok {
		return 0
	}
	c.dispatch(clk, wc)
	n := 1
	for n < max {
		wc, ok := c.cq.TryPollReady(clk)
		if !ok {
			break
		}
		c.dispatch(clk, wc)
		n++
	}
	return n
}

// WaitCounterBatch is WaitCounter with batched CQ draining: after every
// full-cost harvest it sweeps up to batch-1 further already-visible
// completions at the coalesced cost, so a pipelined waiter pays one
// wakeup for a burst of replies instead of one per reply. batch <= 1 is
// WaitCounter exactly.
func (c *Context) WaitCounterBatch(clk *simnet.VClock, ctr *Counter, target uint64, timeout simnet.Duration, batch int) error {
	realCap := c.rt.cfg.RealSilenceCap
	if timeout <= 0 {
		timeout = simnet.Time(1) << 50
	}
	deadline := clk.Now() + timeout
	for ctr.Value() < target {
		ok, timedOut := c.ProgressDeadline(clk, deadline, realCap)
		if timedOut {
			return ErrTimeout
		}
		if !ok {
			return ErrClosed
		}
		for extra := 1; extra < batch; extra++ {
			wc, ok := c.cq.TryPollReady(clk)
			if !ok {
				break
			}
			c.dispatch(clk, wc)
		}
	}
	return nil
}

package ucr

import (
	"repro/internal/simnet"
	"repro/internal/verbs"
)

// This file is the batching face of the runtime: doorbell-coalesced
// posting for pipelined senders and batched CQ draining for pipelined
// waiters. Both leave the one-at-a-time paths (sendPacket via PostSend,
// WaitCounter via ProgressDeadline) charging exactly what they always
// did — a batch of one is the old code.

// postBatch accumulates the work requests of packets sent between
// BeginPostBatch and FlushPosts so one doorbell ring covers them all.
// One batch value lives embedded in the Context and is reused across
// open/flush cycles, so the steady-state serving loop opens a batch per
// drain without allocating.
type postBatch struct {
	qp   *verbs.QP
	wrs  []verbs.SendWR
	undo []postUndo // per-WR cleanup, run if the burst fails to post
}

// postUndo is the cleanup record for one queued send: drop its pending
// completion, return the pool buffer, and fail the endpoint. A plain
// struct instead of a closure keeps the hot send path alloc-free.
type postUndo struct {
	ep  *Endpoint
	id  uint64
	buf []byte
}

func (u postUndo) run() {
	delete(u.ep.ctx.pendingSends, u.id)
	if st, ok := u.ep.ctx.pendingWrites[u.id]; ok {
		// A write reply that never reached the wire still settles its
		// counter: the caller's pin lifecycle keys off it.
		delete(u.ep.ctx.pendingWrites, u.id)
		st.originCtr.bumpIf(st.originCtrID)
	}
	u.ep.releaseSendBuf(u.buf)
	u.ep.markFailed()
}

// BeginPostBatch opens a doorbell batch on the context: packets sent
// until FlushPosts are encoded and charged as usual, but their work
// requests are held back and posted as one PostSendN burst. Only sends
// on one QP coalesce — a packet for a different endpoint (e.g. an ack
// emitted while progressing) posts immediately, keeping the batch a
// pure same-endpoint doorbell optimization.
func (c *Context) BeginPostBatch() {
	if c.batch == nil {
		b := &c.batchStore
		b.qp = nil
		b.wrs = b.wrs[:0]
		b.undo = b.undo[:0]
		c.batch = b
	}
}

// queuePost absorbs a WR into the open batch. false means no batch is
// open (or the WR is for another QP) and the caller must post directly.
func (c *Context) queuePost(qp *verbs.QP, wr verbs.SendWR, undo postUndo) bool {
	b := c.batch
	if b == nil {
		return false
	}
	if b.qp == nil {
		b.qp = qp
	}
	if b.qp != qp {
		return false
	}
	b.wrs = append(b.wrs, wr)
	b.undo = append(b.undo, undo)
	return true
}

// FlushPosts closes the batch and rings the doorbell once for every
// held-back WR. On error the per-WR cleanups run (the endpoint is
// failing; the packets never reached the wire). PostSendN dispatches
// synchronously, so the batch's backing slices are free for reuse the
// moment it returns.
func (c *Context) FlushPosts(clk *simnet.VClock) error {
	b := c.batch
	c.batch = nil
	if b == nil || len(b.wrs) == 0 {
		return nil
	}
	if err := b.qp.PostSendN(clk, b.wrs); err != nil {
		for _, undo := range b.undo {
			undo.run()
		}
		return ErrEndpointDown
	}
	return nil
}

// TryProgressN processes up to max completions in one batched drain.
// The drain models a poller that, after doing work, busy-polls for the
// runtime's PollSpin before parking: a completion arriving while the
// poller is still in its loop — already visible, or within PollSpin of
// the previous drain running dry — is harvested at the coalesced cost;
// one arriving later finds the poller parked and pays the full
// poll/interrupt wakeup. The spin decision is made in virtual time
// (against the recorded end of the previous productive drain), so it is
// independent of when the completion was physically delivered. A lone
// completion in depth-1 traffic arrives a full round trip after the
// previous drain and always pays the full cost, keeping the figure
// tables bit-identical. Returns how many completions were processed.
func (c *Context) TryProgressN(clk *simnet.VClock, max int) int {
	spin := c.rt.cfg.PollSpin
	if spin < 0 {
		spin = 0
	}
	wc, ok := c.cq.TryPoll()
	if !ok {
		return 0
	}
	clk.AdvanceTo(wc.Time)
	if wc.Time <= c.drainEnd+spin {
		clk.Advance(c.cq.CoalescedCost())
		c.coalesced = true
	} else {
		clk.Advance(c.cq.Cost())
	}
	c.dispatch(clk, wc)
	c.coalesced = false
	n := 1
	for n < max {
		wc, ok := c.cq.TryPollReady(clk)
		if !ok && spin > 0 {
			// Out of visible work and about to busy-poll: ring the
			// doorbell on any replies queued so far first — the spinner
			// has nothing else to do, and holding them through the spin
			// would delay the peer for no gain.
			if b := c.batch; b != nil && len(b.wrs) > 0 {
				_ = c.FlushPosts(clk) // failures ran their undos
				c.BeginPostBatch()
			}
			wc, ok = c.cq.TryPollSpin(clk, spin)
		}
		if !ok {
			break
		}
		c.coalesced = true
		c.dispatch(clk, wc)
		c.coalesced = false
		n++
	}
	if n > 1 {
		c.batchedDrains++
	}
	c.drainEnd = clk.Now()
	return n
}

// WaitCounterBatch is WaitCounter with batched CQ draining: after every
// full-cost harvest it sweeps up to batch-1 further already-visible
// completions at the coalesced cost, so a pipelined waiter pays one
// wakeup for a burst of replies instead of one per reply. batch <= 1 is
// WaitCounter exactly.
func (c *Context) WaitCounterBatch(clk *simnet.VClock, ctr *Counter, target uint64, timeout simnet.Duration, batch int) error {
	realCap := c.rt.cfg.RealSilenceCap
	if timeout <= 0 {
		timeout = simnet.Time(1) << 50
	}
	deadline := clk.Now() + timeout
	for ctr.Value() < target {
		ok, timedOut := c.ProgressDeadline(clk, deadline, realCap)
		if timedOut {
			return ErrTimeout
		}
		if !ok {
			return ErrClosed
		}
		// Extras never spin: a client waiter that has met its target has
		// new requests to issue, and idling here for future replies would
		// serialize the pipe. Only already-visible replies sweep cheaply.
		extras := 0
		for extra := 1; extra < batch; extra++ {
			wc, ok := c.cq.TryPollReady(clk)
			if !ok {
				break
			}
			c.coalesced = true
			c.dispatch(clk, wc)
			c.coalesced = false
			extras++
		}
		if extras > 0 {
			c.batchedDrains++
		}
	}
	return nil
}

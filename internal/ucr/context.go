package ucr

import (
	"time"

	"repro/internal/simnet"
	"repro/internal/verbs"
)

// Context is a progress context: the unit of single-threaded progress in
// UCR. Each actor (benchmark client, Memcached worker thread) owns one
// Context; all endpoints created under it share one completion queue, so
// the owner drives every endpoint by calling Progress / WaitCounter.
// A Context and its endpoints must only be touched by their owner.
type Context struct {
	rt *Runtime
	cq *verbs.CQ

	eps             map[uint32]*Endpoint // local QPN → endpoint
	srq             *verbs.SRQ           // shared receive pool (Config.UseSRQ)
	srqBytes        int64                // receive-buffer bytes posted (footprint stat)
	pendingSends    map[uint64]pendingSend
	pendingRecvs    map[uint64][]byte // posted receive buffers by WR id
	pendingReads    map[uint64]pendingRead
	pendingOneSided map[uint64]oneSidedState
	pendingWrites   map[uint64]writeReplyState
	rndzOrigin      map[uint64]rndzOriginState
	nextWR          uint64
	nextSeq         uint64
	batch           *postBatch // open doorbell batch (BeginPostBatch)
	batchStore      postBatch  // its reused backing storage (alloc-free reopen)

	// coalesced marks the 2nd..Nth dispatches of one batched CQ drain:
	// AM dispatch then charges the coalesced handler cost (set/cleared by
	// TryProgressN and WaitCounterBatch around each coalesced dispatch).
	coalesced bool
	// drainEnd is the virtual time the last productive TryProgressN ran
	// dry: the owner busy-polls for cfg.PollSpin past it, so a completion
	// arriving inside that window is harvested at the coalesced cost even
	// though the owner goroutine has physically parked by the time the
	// completion is delivered. Initialized far in the past so the very
	// first harvest of a context always pays the full cost.
	drainEnd simnet.Time

	// stats
	amsIn, amsOut, acksIn, acksOut, rdmaReads uint64
	srqDemux                                  uint64
	batchedDrains                             uint64
	writeReplies                              uint64
}

// MutSRQMisroute, when set (mutation builds only — see the memcached
// package's mut_srq_misroute build tag), makes the shared-completion
// demux deliver every third SRQ-fed arrival to a different endpoint in
// the context: the wrong-connection bug class the memcheck srq mode
// exists to catch.
var MutSRQMisroute bool

type pendingSend struct {
	ep          *Endpoint
	buf         []byte    // pool buffer to release at local completion
	originCtr   *Counter  // bumped at local completion (eager fast path, §IV-C)
	originCtrID CounterID // issued id: guards the bump across struct reuse
}

type pendingRead struct {
	ep          *Endpoint
	hdr         []byte // copied out of the receive buffer
	dst         []byte
	msgID       uint8
	targetCtrID CounterID
	originCtrID CounterID
	complCtrID  CounterID
	seq         uint64
}

type rndzOriginState struct {
	mr          *verbs.MR
	cached      bool // owned by the registration cache: do not deregister
	originCtr   *Counter
	complCtr    *Counter
	originCtrID CounterID
	complCtrID  CounterID
}

// NewContext creates a progress context for one actor.
func (rt *Runtime) NewContext() *Context {
	return &Context{
		rt:              rt,
		cq:              rt.hca.CreateCQ(),
		drainEnd:        simnet.Time(-1) << 50,
		eps:             make(map[uint32]*Endpoint),
		pendingSends:    make(map[uint64]pendingSend),
		pendingRecvs:    make(map[uint64][]byte),
		pendingReads:    make(map[uint64]pendingRead),
		pendingOneSided: make(map[uint64]oneSidedState),
		pendingWrites:   make(map[uint64]writeReplyState),
		rndzOrigin:      make(map[uint64]rndzOriginState),
	}
}

// Runtime reports the owning runtime.
func (c *Context) Runtime() *Runtime { return c.rt }

// Stats reports message counts for this context.
func (c *Context) Stats() (amsIn, amsOut, acksIn, acksOut, rdmaReads uint64) {
	return c.amsIn, c.amsOut, c.acksIn, c.acksOut, c.rdmaReads
}

// SRQDemux reports how many arrivals this context demultiplexed off the
// shared receive queue (zero unless Config.UseSRQ). Tests use it as a
// vacuity guard: a "shared-SRQ" run that never demuxed proved nothing.
func (c *Context) SRQDemux() uint64 { return c.srqDemux }

// BatchedDrains reports how many TryProgressN calls harvested two or
// more completions in one sweep — i.e. how often the batched-drain path
// actually amortized its poll/handler costs. Tests use it as a vacuity
// guard: a "batch-scheduled" run that never coalesced proved nothing.
func (c *Context) BatchedDrains() uint64 { return c.batchedDrains }

// InCoalescedDrain reports whether the context is currently dispatching
// a 2nd..Nth completion of one batched CQ drain. Completion handlers use
// it to charge batch-amortized processing costs (e.g. the Memcached
// server's CoalescedOpCost) without threading a flag through every
// handler signature.
func (c *Context) InCoalescedDrain() bool { return c.coalesced }

// IncomingC exposes the context's completion-readiness channel: one
// token means completions may be pending (or the context was destroyed)
// since the owner last drained. Event-loop owners park on it in a select
// instead of dedicating a WaitIncoming waker goroutine, then drain with
// TryProgress/TryProgressN until empty. Spurious tokens are harmless.
func (c *Context) IncomingC() <-chan struct{} { return c.cq.ReadyC() }

// UseEvents switches this context's completion detection from polling to
// interrupt-driven events (ablation: §II-A1 notes polling is fastest).
func (c *Context) UseEvents(on bool) { c.cq.UseEvents = on }

// bufSize is the receive/send buffer size for an endpoint.
func (c *Context) bufSize(rel Reliability) int {
	n := packetHdrSize + c.rt.cfg.EagerThreshold
	if rel == Unreliable && n > c.rt.hca.Config().MTU {
		n = c.rt.hca.Config().MTU
	}
	return n
}

// newEndpoint builds the local half of an endpoint. With per-endpoint
// flow control each endpoint pre-posts its own credit window; in SRQ
// mode all RC endpoints share one receive pool whose size is fixed
// regardless of how many endpoints exist (§VII scalability).
func (c *Context) newEndpoint(rel Reliability) (*Endpoint, error) {
	typ := verbs.RC
	if rel == Unreliable {
		typ = verbs.UD
	}
	useSRQ := c.rt.cfg.UseSRQ && typ == verbs.RC
	var qp *verbs.QP
	if useSRQ {
		if c.srq == nil {
			// Ring capacity equals the pool size: the post/repost loop is
			// a tight credit cycle, so a repost can never find the ring
			// full unless a buffer was double-posted.
			c.srq = c.rt.hca.CreateSRQSized(c.rt.cfg.SRQBuffers)
			bufSize := c.bufSize(Reliable)
			for i := 0; i < c.rt.cfg.SRQBuffers; i++ {
				id := c.wrID()
				buf := make([]byte, bufSize)
				c.pendingRecvs[id] = buf
				if err := c.srq.Post(verbs.RecvWR{ID: id, Buf: buf}); err != nil {
					delete(c.pendingRecvs, id)
					return nil, err
				}
				c.srqBytes += int64(bufSize)
			}
		}
		qp = c.rt.hca.NewQPWithSRQ(typ, c.cq, c.cq, c.srq)
	} else {
		qp = c.rt.hca.NewQP(typ, c.cq, c.cq)
	}
	if err := qp.Modify(verbs.StateInit); err != nil {
		return nil, err
	}
	ep := &Endpoint{
		ctx:         c,
		qp:          qp,
		rel:         rel,
		sendCredits: c.rt.cfg.Credits,
		bufSize:     c.bufSize(rel),
		noCredits:   useSRQ,
	}
	if !useSRQ {
		for i := 0; i < c.rt.cfg.Credits; i++ {
			id := c.wrID()
			buf := make([]byte, ep.bufSize)
			c.pendingRecvs[id] = buf
			if err := qp.PostRecv(verbs.RecvWR{ID: id, Buf: buf}); err != nil {
				delete(c.pendingRecvs, id)
				return nil, err
			}
			c.srqBytes += int64(ep.bufSize)
		}
	}
	c.eps[qp.QPN()] = ep
	return ep, nil
}

// RecvBufferBytes reports the receive-buffer memory this context has
// posted — the footprint §VII's SRQ/UD direction keeps flat as client
// counts grow.
func (c *Context) RecvBufferBytes() int64 { return c.srqBytes }

func (c *Context) wrID() uint64 {
	c.nextWR++
	return c.nextWR
}

// Dial establishes an endpoint with a remote service (paper §IV-A: the
// end-point model replacing MPI-style destination ranks). The handshake
// round trip is charged to clk; realCap bounds the wait in real time.
func (rt *Runtime) Dial(ctx *Context, remote *simnet.Node, service string, rel Reliability, clk *simnet.VClock, realCap time.Duration) (*Endpoint, error) {
	if rt.closed.Load() {
		return nil, ErrClosed
	}
	ep, err := ctx.newEndpoint(rel)
	if err != nil {
		return nil, err
	}
	peer, err := rt.cm.Connect(ep.qp, remote, service, clk, realCap)
	if err != nil {
		ep.teardown()
		return nil, err
	}
	ep.finishSetup(peer)
	return ep, nil
}

// Accept completes an inbound endpoint request within this context.
// Servers that dispatch accepts to worker threads (the paper's round-
// robin worker assignment, §V-A) obtain the request on the dispatcher
// via Listener.Next and complete it on the worker with this method.
func (c *Context) Accept(req *verbs.ConnRequest, clk *simnet.VClock) (*Endpoint, error) {
	rel := Reliable
	if req.RemoteQP().Type() == verbs.UD {
		rel = Unreliable
	}
	ep, err := c.newEndpoint(rel)
	if err != nil {
		return nil, err
	}
	if err := req.Accept(ep.qp, clk); err != nil {
		ep.teardown()
		return nil, err
	}
	ep.finishSetup(req.RemoteQP())
	return ep, nil
}

// Progress blocks until one completion is processed, running handlers
// and bumping counters as the protocol dictates. ok=false means the
// context was destroyed.
func (c *Context) Progress(clk *simnet.VClock) bool {
	wc, ok := c.cq.Wait(clk)
	if !ok {
		return false
	}
	c.dispatch(clk, wc)
	return true
}

// ProgressDeadline is Progress bounded by a virtual deadline, with a
// real-time cap that fires only when the peer is genuinely silent.
func (c *Context) ProgressDeadline(clk *simnet.VClock, deadline simnet.Time, realCap time.Duration) (ok, timedOut bool) {
	wc, ok, timedOut := c.cq.WaitDeadline(clk, deadline, realCap)
	if !ok {
		return false, timedOut
	}
	c.dispatch(clk, wc)
	return true, false
}

// WaitIncoming blocks (charging no time) until the context has at least
// one completion pending, or the context is destroyed (false). It is the
// waker half of a server event loop; the owning worker then drains with
// TryProgress. Waker and owner must be sequenced, never concurrent.
func (c *Context) WaitIncoming() bool { return c.cq.WaitAvailable() }

// TryProgress processes one completion if immediately available,
// charging the harvest cost (poll or interrupt per the context's mode).
func (c *Context) TryProgress(clk *simnet.VClock) bool {
	wc, ok := c.cq.TryPollWith(clk)
	if !ok {
		return false
	}
	c.dispatch(clk, wc)
	return true
}

// WaitCounter drives progress until ctr reaches at least target, or the
// virtual timeout expires (§IV-A: synchronization with timeouts so a
// dead server is survivable). timeout <= 0 waits with a generous bound.
func (c *Context) WaitCounter(clk *simnet.VClock, ctr *Counter, target uint64, timeout simnet.Duration) error {
	realCap := c.rt.cfg.RealSilenceCap
	if timeout <= 0 {
		timeout = simnet.Time(1) << 50
	}
	deadline := clk.Now() + timeout
	for ctr.Value() < target {
		ok, timedOut := c.ProgressDeadline(clk, deadline, realCap)
		if timedOut {
			return ErrTimeout
		}
		if !ok {
			return ErrClosed
		}
	}
	return nil
}

// dispatch routes one work completion.
func (c *Context) dispatch(clk *simnet.VClock, wc verbs.WC) {
	switch wc.Op {
	case verbs.OpSend:
		c.onSendComplete(wc)
	case verbs.OpRecv:
		c.onPacket(clk, wc)
	case verbs.OpRDMARead:
		// A read is either a rendezvous pull or a one-sided Get.
		if !c.onOneSidedComplete(wc) {
			c.onReadComplete(clk, wc)
		}
	case verbs.OpRDMAWrite:
		// A write is either a one-sided Put or a write-based reply.
		if !c.onOneSidedComplete(wc) {
			c.onWriteReplyComplete(wc)
		}
	case verbs.OpAtomicFetchAdd, verbs.OpAtomicCmpSwap:
		c.onOneSidedComplete(wc)
	}
}

// onSendComplete releases the send buffer and bumps the origin counter
// for eager sends (local completion means the application buffer is
// reusable — §IV-C "Origin counter").
func (c *Context) onSendComplete(wc verbs.WC) {
	st, ok := c.pendingSends[wc.ID]
	if !ok {
		return
	}
	delete(c.pendingSends, wc.ID)
	if st.buf != nil {
		st.ep.releaseSendBuf(st.buf)
	}
	if wc.Status != verbs.StatusSuccess {
		st.ep.markFailed()
		return
	}
	st.originCtr.bumpIf(st.originCtrID)
}

// demuxEndpoint resolves an arrived packet to its endpoint. With
// per-endpoint receive rings the mapping is trivial (each QP has its own
// ring); with a shared SRQ every RC endpoint's arrivals surface through
// one buffer pool onto one CQ and the completion envelope is the only
// routing key — this is the demultiplex step the shared-serving
// datapath depends on, counted so tests can prove the path actually ran.
func (c *Context) demuxEndpoint(wc verbs.WC) *Endpoint {
	ep := c.eps[wc.QPN]
	if ep == nil || !ep.noCredits {
		return ep
	}
	c.srqDemux++
	if MutSRQMisroute && c.srqDemux%3 == 0 {
		if wrong := c.neighborEndpoint(ep); wrong != nil {
			return wrong
		}
	}
	return ep
}

// neighborEndpoint deterministically picks a different endpoint from the
// same context (the next-higher QPN, wrapping to the lowest), or nil if
// ep is the only one. Mutation-build helper: map iteration order would
// make the misroute non-replayable.
func (c *Context) neighborEndpoint(ep *Endpoint) *Endpoint {
	self := ep.qp.QPN()
	var next, lowest *Endpoint
	for qpn, cand := range c.eps {
		if qpn == self {
			continue
		}
		if lowest == nil || qpn < lowest.qp.QPN() {
			lowest = cand
		}
		if qpn > self && (next == nil || qpn < next.qp.QPN()) {
			next = cand
		}
	}
	if next != nil {
		return next
	}
	return lowest
}

// onPacket handles an arrived UCR packet.
func (c *Context) onPacket(clk *simnet.VClock, wc verbs.WC) {
	buf, posted := c.pendingRecvs[wc.ID]
	if posted {
		delete(c.pendingRecvs, wc.ID)
	}
	ep := c.demuxEndpoint(wc)
	if ep == nil {
		return
	}
	if wc.Status != verbs.StatusSuccess {
		if wc.Status != verbs.StatusFlushed {
			ep.markFailed()
		}
		return
	}
	if !posted {
		return
	}
	pkt, err := decodePacket(buf, wc.ByteLen)
	if err != nil {
		ep.markFailed()
		return
	}
	ep.sendCredits += int(pkt.credits)

	switch pkt.typ {
	case ptEager:
		c.amsIn++
		c.handleEager(clk, ep, pkt)
	case ptRndzHdr:
		c.amsIn++
		c.handleRndzHdr(clk, ep, pkt)
	case ptAck:
		c.acksIn++
		c.handleAck(pkt)
	}
	// The packet content has been consumed (copied or acted upon):
	// recycle the buffer into the credit window.
	ep.repostRecv(buf)
}

// handlerCost is the AM-dispatch charge: the full HandlerOverhead for a
// message harvested on its own, the coalesced cost for the 2nd..Nth
// messages of one batched drain (cache-hot dispatch).
func (c *Context) handlerCost() simnet.Duration {
	if c.coalesced {
		return c.rt.cfg.CoalescedHandlerOverhead
	}
	return c.rt.cfg.HandlerOverhead
}

// handleEager runs the short-message path of Fig 2b: header handler,
// memcpy into the chosen buffer, completion handler, target counter.
func (c *Context) handleEager(clk *simnet.VClock, ep *Endpoint, pkt packet) {
	h := c.rt.handler(pkt.msgID)
	if h == nil || h.Header == nil {
		return // no consumer: drop, as an unhandled AM would be
	}
	clk.Advance(c.handlerCost())
	dst := h.Header(clk, ep, pkt.hdr, pkt.dataLen, pkt.targetCtr)
	var data []byte
	if pkt.dataLen > 0 {
		if len(dst) < pkt.dataLen {
			ep.markFailed()
			return
		}
		// The landing buffer may be remotely-readable registered memory
		// (the Memcached one-sided index points into slab pages); honor
		// the adapter's memory guard so the unpack never tears under a
		// concurrent remote read.
		if g := c.rt.hca.MemGuard(); g != nil {
			g.Lock()
			copy(dst, pkt.data)
			g.Unlock()
		} else {
			copy(dst, pkt.data)
		}
		clk.Advance(simnet.BytesDuration(pkt.dataLen, c.rt.cfg.PackBytesPerSec))
		data = dst[:pkt.dataLen]
	}
	if h.Completion != nil {
		h.Completion(clk, ep, pkt.hdr, data, pkt.targetCtr)
	}
	c.rt.lookupCounter(pkt.targetCtr).bump()
	if pkt.complCtr != 0 {
		// §IV-C: the optional internal message telling the origin that
		// the completion handler has run.
		ep.sendAck(clk, 0, pkt.complCtr, 0)
	}
}

// handleRndzHdr runs the large-message path of Fig 2a: header handler
// chooses the buffer, then the target pulls the data with RDMA Read.
func (c *Context) handleRndzHdr(clk *simnet.VClock, ep *Endpoint, pkt packet) {
	h := c.rt.handler(pkt.msgID)
	if h == nil || h.Header == nil {
		return
	}
	clk.Advance(c.handlerCost())
	dst := h.Header(clk, ep, pkt.hdr, pkt.dataLen, pkt.targetCtr)
	if len(dst) < pkt.dataLen {
		ep.markFailed()
		return
	}
	hdrCopy := append([]byte(nil), pkt.hdr...)
	id := c.wrID()
	c.pendingReads[id] = pendingRead{
		ep:          ep,
		hdr:         hdrCopy,
		dst:         dst[:pkt.dataLen],
		msgID:       pkt.msgID,
		targetCtrID: pkt.targetCtr,
		originCtrID: pkt.originCtr,
		complCtrID:  pkt.complCtr,
		seq:         pkt.seq,
	}
	c.rdmaReads++
	err := ep.qp.PostSend(clk, verbs.SendWR{
		ID:         id,
		Op:         verbs.OpRDMARead,
		Local:      dst[:pkt.dataLen],
		RemoteAddr: pkt.rndzAddr,
		RKey:       pkt.rkey,
	})
	if err != nil {
		delete(c.pendingReads, id)
		ep.markFailed()
	}
}

// onReadComplete finishes a rendezvous receive: completion handler,
// target counter, and the internal ack releasing the origin buffer.
func (c *Context) onReadComplete(clk *simnet.VClock, wc verbs.WC) {
	rd, ok := c.pendingReads[wc.ID]
	if !ok {
		return
	}
	delete(c.pendingReads, wc.ID)
	if wc.Status != verbs.StatusSuccess {
		rd.ep.markFailed()
		return
	}
	h := c.rt.handler(rd.msgID)
	if h != nil && h.Completion != nil {
		h.Completion(clk, rd.ep, rd.hdr, rd.dst, rd.targetCtrID)
	}
	c.rt.lookupCounter(rd.targetCtrID).bump()
	// One internal message carries both the origin-counter update (the
	// RDMA of the data is complete; §IV-C Fig 2a) and, if requested, the
	// completion-counter update — they coincide here because the
	// completion handler runs as soon as the read lands.
	if rd.originCtrID != 0 || rd.complCtrID != 0 || rd.seq != 0 {
		rd.ep.sendAck(clk, rd.originCtrID, rd.complCtrID, rd.seq)
	}
}

// handleAck applies counter updates from an internal message.
func (c *Context) handleAck(pkt packet) {
	if pkt.seq != 0 {
		if st, ok := c.rndzOrigin[pkt.seq]; ok {
			delete(c.rndzOrigin, pkt.seq)
			c.rt.releaseRndzMR(st.mr, st.cached)
			st.originCtr.bumpIf(st.originCtrID)
			st.complCtr.bumpIf(st.complCtrID)
			return
		}
	}
	c.rt.lookupCounter(pkt.originCtr).bump()
	c.rt.lookupCounter(pkt.complCtr).bump()
}

// Destroy tears down every endpoint and the completion queue.
func (c *Context) Destroy() {
	for _, ep := range c.eps {
		ep.teardown()
	}
	c.eps = map[uint32]*Endpoint{}
	c.cq.Destroy()
}

package ucr

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"repro/internal/simnet"
	"repro/internal/verbs"
)

// On a lossy fabric, UCR's RC transport retransmits transparently: every
// request completes and the payloads are intact, the only trace being
// the HCA's retransmission counter.
func TestLossyFabricAllRequestsComplete(t *testing.T) {
	w := newWorld(t, Config{})
	rc := w.installClientReply()
	ep := w.dial(t, Reliable) // CM handshake is lossless by design
	w.fab.SetFaults(simnet.NewFaultInjector(simnet.FaultConfig{Seed: 11, DropRate: 0.15}))

	for i := 0; i < 30; i++ {
		payload := []byte(fmt.Sprintf("payload-%02d", i))
		if err := w.request(t, ep, "lossy", payload, 0); err != nil {
			t.Fatalf("request %d over 15%% loss: %v", i, err)
		}
		if !bytes.Equal(rc.data, payload) {
			t.Fatalf("request %d: data corrupted: %q", i, rc.data)
		}
	}
	if w.cliRT.HCA().Retransmits()+w.srvRT.HCA().Retransmits() == 0 {
		t.Fatal("15% loss over 30 round trips caused zero retransmissions")
	}
}

// A partition makes the request time out; the endpoint is isolated
// (Failed, rejects sends) while the runtime itself stays alive: a fresh
// endpoint dialed after healing works.
func TestAMTimeoutIsolatesEndpointNotRuntime(t *testing.T) {
	w := newWorld(t, Config{})
	w.installClientReply()
	ep := w.dial(t, Reliable)

	// Warm exchange proves the path works.
	if err := w.request(t, ep, "warm", []byte("w"), 0); err != nil {
		t.Fatal(err)
	}

	fi := simnet.NewFaultInjector(simnet.FaultConfig{Seed: 3})
	w.fab.SetFaults(fi)
	fi.Partition(w.cliNode, w.srvNode)

	err := w.request(t, ep, "cut", []byte("c"), 50*simnet.Microsecond)
	if err != ErrTimeout && err != ErrEndpointDown {
		t.Fatalf("request across partition = %v, want timeout or endpoint-down", err)
	}
	// Retry exhaustion surfaced as a send-completion error, which the
	// progress engine turns into endpoint isolation.
	if !ep.Failed() {
		t.Fatal("endpoint not isolated after partition")
	}
	if err := ep.Send(w.cliClk, midRequest, make([]byte, 16), []byte("x"), nil, 0, nil); err != ErrEndpointDown {
		t.Fatalf("send on isolated endpoint = %v, want ErrEndpointDown", err)
	}

	// The runtime survived: heal and dial a fresh endpoint.
	fi.Heal(w.cliNode, w.srvNode)
	ep2, err := w.cliRT.Dial(w.cliCtx, w.srvNode, "echo", Reliable, w.cliClk, 5*time.Second)
	if err != nil {
		t.Fatalf("runtime cannot dial after endpoint isolation: %v", err)
	}
	if err := w.request(t, ep2, "healed", []byte("h"), 0); err != nil {
		t.Fatalf("request on fresh endpoint after heal: %v", err)
	}
}

// MarkFailed lets an upper layer isolate an endpoint directly.
func TestMarkFailedIsolatesEndpoint(t *testing.T) {
	w := newWorld(t, Config{})
	w.installClientReply()
	ep := w.dial(t, Reliable)
	ep.MarkFailed()
	if !ep.Failed() {
		t.Fatal("MarkFailed did not stick")
	}
	if err := ep.Send(w.cliClk, midRequest, make([]byte, 16), nil, nil, 0, nil); err != ErrEndpointDown {
		t.Fatalf("send on marked endpoint = %v, want ErrEndpointDown", err)
	}
}

// Rendezvous transfers (header + RDMA read + ack, three lossy crossings)
// also survive loss intact.
func TestRendezvousUnderLoss(t *testing.T) {
	w := newWorld(t, Config{EagerThreshold: 1024})
	rc := w.installClientReply()
	ep := w.dial(t, Reliable)
	w.fab.SetFaults(simnet.NewFaultInjector(simnet.FaultConfig{Seed: 21, DropRate: 0.1}))

	payload := make([]byte, 32*1024)
	for i := range payload {
		payload[i] = byte(i * 13)
	}
	if err := w.request(t, ep, "big", payload, 0); err != nil {
		t.Fatalf("rendezvous over loss: %v", err)
	}
	if !bytes.Equal(rc.data, payload) {
		t.Fatal("rendezvous payload corrupted over lossy fabric")
	}
}

// The AMRetries knob is carried by the runtime config for upper layers.
func TestAMRetriesConfig(t *testing.T) {
	w := newWorld(t, Config{AMRetries: 3})
	if got := w.cliRT.Config().AMRetries; got != 3 {
		t.Fatalf("Config().AMRetries = %d, want 3", got)
	}
	// Default stays zero (single attempt).
	if got := New(verbs.NewHCA(w.nw.AddNode("x"), w.fab, hcaConfig()), w.cm, Config{}).Config().AMRetries; got != 0 {
		t.Fatalf("default AMRetries = %d, want 0", got)
	}
}

package ucr

import (
	"testing"

	"repro/internal/simnet"
)

// TestOneSidedZeroLengthAtEdge issues zero-length Get/Put exactly at the
// window boundary: offset == Len with no bytes is in bounds and must
// complete (bump the counter) rather than error or hang.
func TestOneSidedZeroLengthAtEdge(t *testing.T) {
	w := newWorld(t, Config{})
	w.installClientReply()
	ep := w.dial(t, Reliable)
	win, err := w.srvRT.CreateWindow(make([]byte, 64), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer win.Close()
	desc := win.Desc()

	ctr := w.cliRT.NewCounter()
	if err := ep.Get(w.cliClk, nil, desc, 64, ctr); err != nil {
		t.Fatalf("zero-length Get at edge: %v", err)
	}
	if err := w.cliCtx.WaitCounter(w.cliClk, ctr, 1, 0); err != nil {
		t.Fatalf("zero-length Get did not complete: %v", err)
	}
	if err := ep.Put(w.cliClk, []byte{}, desc, 64, ctr); err != nil {
		t.Fatalf("zero-length Put at edge: %v", err)
	}
	if err := w.cliCtx.WaitCounter(w.cliClk, ctr, 2, 0); err != nil {
		t.Fatalf("zero-length Put did not complete: %v", err)
	}
	// One byte past the edge is out of bounds.
	if err := ep.Get(w.cliClk, make([]byte, 1), desc, 64, nil); err != ErrWindowBounds {
		t.Fatalf("one past edge err = %v, want ErrWindowBounds", err)
	}
}

// TestOneSidedWindowClosedMidSequence closes the window between two
// reads of a multi-read sequence: the first completes, the second fails
// cleanly (endpoint marked down, no pending-op leak) instead of
// returning stale data.
func TestOneSidedWindowClosedMidSequence(t *testing.T) {
	w := newWorld(t, Config{})
	w.installClientReply()
	ep := w.dial(t, Reliable)
	buf := make([]byte, 64)
	copy(buf, "live")
	win, err := w.srvRT.CreateWindow(buf, nil)
	if err != nil {
		t.Fatal(err)
	}
	desc := win.Desc()

	local := make([]byte, 4)
	ctr := w.cliRT.NewCounter()
	if err := ep.Get(w.cliClk, local, desc, 0, ctr); err != nil {
		t.Fatal(err)
	}
	if err := w.cliCtx.WaitCounter(w.cliClk, ctr, 1, 0); err != nil {
		t.Fatal(err)
	}
	if string(local) != "live" {
		t.Fatalf("first read = %q", local)
	}

	win.Close() // revoked mid-sequence
	if err := ep.Get(w.cliClk, local, desc, 0, ctr); err != nil {
		t.Fatal(err)
	}
	if err := w.cliCtx.WaitCounter(w.cliClk, ctr, 2, 100*simnet.Microsecond); err == nil {
		t.Fatal("read after close should not complete")
	}
	if !ep.Failed() {
		t.Fatal("endpoint should be marked failed")
	}
	if n := len(w.cliCtx.pendingOneSided); n != 0 {
		t.Fatalf("leaked %d pendingOneSided entries", n)
	}
}

// TestOneSidedFailureLeavesNoPending drives several one-sided ops into
// a dead window and checks the pending-op table is empty afterwards —
// the map must not grow forever under fault injection.
func TestOneSidedFailureLeavesNoPending(t *testing.T) {
	w := newWorld(t, Config{})
	w.installClientReply()
	ep := w.dial(t, Reliable)
	win, err := w.srvRT.CreateWindow(make([]byte, 64), nil)
	if err != nil {
		t.Fatal(err)
	}
	desc := win.Desc()
	win.Close()

	ctr := w.cliRT.NewCounter()
	for i := 0; i < 4; i++ {
		if ep.Failed() {
			break
		}
		if err := ep.Get(w.cliClk, make([]byte, 8), desc, 0, ctr); err != nil {
			break
		}
		_ = w.cliCtx.WaitCounter(w.cliClk, ctr, uint64(i+1), 100*simnet.Microsecond)
	}
	// Atomics against the dead window: the wait-side cleanup must remove
	// the entry even though no success completion ever bumps the counter.
	if _, err := ep.FetchAdd(w.cliClk, desc, 0, 1); err == nil {
		t.Fatal("atomic against closed window should fail")
	}
	if n := len(w.cliCtx.pendingOneSided); n != 0 {
		t.Fatalf("leaked %d pendingOneSided entries", n)
	}
}

// TestAtomicOnFailedEndpointIsPrompt checks the atomic wait notices the
// endpoint failing (error-status completion, which bumps no counter)
// promptly and cleans up, rather than spinning to the silence cap.
func TestAtomicOnFailedEndpointIsPrompt(t *testing.T) {
	w := newWorld(t, Config{})
	w.installClientReply()
	ep := w.dial(t, Reliable)
	win, err := w.srvRT.CreateWindow(make([]byte, 16), nil)
	if err != nil {
		t.Fatal(err)
	}
	desc := win.Desc()
	win.Close()

	if _, err := ep.FetchAdd(w.cliClk, desc, 0, 1); err != ErrEndpointDown {
		t.Fatalf("err = %v, want ErrEndpointDown", err)
	}
	if n := len(w.cliCtx.pendingOneSided); n != 0 {
		t.Fatalf("leaked %d pendingOneSided entries", n)
	}
	// Further atomics fail fast on the downed endpoint.
	if _, err := ep.FetchAdd(w.cliClk, desc, 0, 1); err != ErrEndpointDown {
		t.Fatalf("second err = %v, want ErrEndpointDown", err)
	}
}

// TestRegCacheEvictionDefersDereg pins the refcounting behaviour: a
// FIFO-evicted entry with an operation still in flight keeps its MR
// registered until the last reference is released.
func TestRegCacheEvictionDefersDereg(t *testing.T) {
	w := newWorld(t, Config{EagerThreshold: 512, RegCacheEntries: 1})
	bufA := make([]byte, 4096)
	bufB := make([]byte, 4096)

	mrA, cachedA, err := w.cliRT.registerCached(bufA, w.cliClk)
	if err != nil || !cachedA {
		t.Fatalf("registerCached A = (%v, %v)", cachedA, err)
	}
	// B evicts A from the FIFO while A still holds a reference.
	if _, _, err := w.cliRT.registerCached(bufB, w.cliClk); err != nil {
		t.Fatal(err)
	}
	rc := w.cliRT.regs
	rc.mu.Lock()
	eA := rc.byMR[mrA]
	deferred := rc.deferredDeregs
	rc.mu.Unlock()
	if eA == nil || !eA.evicted || eA.refs != 1 {
		t.Fatalf("evicted-but-busy entry = %+v", eA)
	}
	if deferred != 1 {
		t.Fatalf("deferredDeregs = %d, want 1", deferred)
	}
	// The last release performs the deferred deregistration.
	w.cliRT.releaseCached(mrA)
	rc.mu.Lock()
	gone := rc.byMR[mrA] == nil
	rc.mu.Unlock()
	if !gone {
		t.Fatal("released evicted entry should be deregistered and dropped")
	}
}

// TestRegCacheInFlightEviction is the end-to-end version: two
// back-to-back rendezvous sends with a one-entry cache, so the second
// send evicts the first's MR while the target may still be reading it.
// Both transfers must complete intact.
func TestRegCacheInFlightEviction(t *testing.T) {
	w := newWorld(t, Config{EagerThreshold: 512, RegCacheEntries: 1})
	w.installClientReply()
	ep := w.dial(t, Reliable)
	bufA := make([]byte, 8192)
	bufB := make([]byte, 8192)
	for i := range bufA {
		bufA[i] = byte(i)
		bufB[i] = byte(i * 7)
	}
	origin := w.cliRT.NewCounter()
	if err := ep.Send(w.cliClk, midRequest, make([]byte, 16), bufA, origin, 0, nil); err != nil {
		t.Fatal(err)
	}
	if err := ep.Send(w.cliClk, midRequest, make([]byte, 16), bufB, origin, 0, nil); err != nil {
		t.Fatal(err)
	}
	if err := w.cliCtx.WaitCounter(w.cliClk, origin, 2, 0); err != nil {
		t.Fatalf("in-flight-evicted rendezvous failed: %v", err)
	}
	if n := len(w.cliCtx.rndzOrigin); n != 0 {
		t.Fatalf("leaked %d rndzOrigin entries", n)
	}
}

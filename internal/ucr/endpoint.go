package ucr

import (
	"repro/internal/simnet"
	"repro/internal/verbs"
)

// Endpoint is a bidirectional UCR communication endpoint (§IV-A). It is
// owned by the Context that created it and must only be used by that
// context's owner.
type Endpoint struct {
	ctx *Context
	qp  *verbs.QP
	rel Reliability

	peerNode *simnet.Node
	ah       *verbs.AddressHandle // UD addressing

	bufSize       int
	sendCredits   int
	returnCredits int
	noCredits     bool // SRQ mode: no per-endpoint flow-control window
	freeSendBufs  [][]byte
	failed        bool

	// UserData lets upper layers (the Memcached server) attach
	// per-endpoint state without a side table.
	UserData any
}

// finishSetup records peer addressing after the CM exchange.
func (ep *Endpoint) finishSetup(peer *verbs.QP) {
	ep.peerNode = peer.HCA().Node()
	if ep.rel == Unreliable {
		ep.ah = &verbs.AddressHandle{Target: peer.HCA(), QPN: peer.QPN()}
	}
}

// Reliability reports the endpoint class.
func (ep *Endpoint) Reliability() Reliability { return ep.rel }

// PeerNode reports the remote host.
func (ep *Endpoint) PeerNode() *simnet.Node { return ep.peerNode }

// Context reports the owning progress context.
func (ep *Endpoint) Context() *Context { return ep.ctx }

// Failed reports whether the endpoint has observed a transport failure.
// A failed endpoint rejects sends but leaves every other endpoint in the
// runtime untouched (§IV-A fault isolation).
func (ep *Endpoint) Failed() bool { return ep.failed }

func (ep *Endpoint) markFailed() { ep.failed = true }

// MarkFailed lets an upper layer that has independently concluded the
// peer is dead (e.g. an AM-level retry loop exhausting its budget)
// isolate this endpoint: sends are rejected from now on, while the
// runtime and every other endpoint keep working (§IV-A: "a client may
// decide that a server has gone down").
func (ep *Endpoint) MarkFailed() { ep.markFailed() }

// Credits reports the current send window.
func (ep *Endpoint) Credits() int { return ep.sendCredits }

// MaxEager reports the largest header+data that travels in one
// transaction on this endpoint.
func (ep *Endpoint) MaxEager() int { return ep.bufSize - packetHdrSize }

// acquireSendBuf takes a pooled registered send buffer.
func (ep *Endpoint) acquireSendBuf() []byte {
	if n := len(ep.freeSendBufs); n > 0 {
		buf := ep.freeSendBufs[n-1]
		ep.freeSendBufs = ep.freeSendBufs[:n-1]
		return buf
	}
	return make([]byte, ep.bufSize)
}

func (ep *Endpoint) releaseSendBuf(buf []byte) {
	ep.freeSendBufs = append(ep.freeSendBufs, buf[:cap(buf)])
}

// repostRecv recycles a consumed receive buffer into the credit window.
func (ep *Endpoint) repostRecv(buf []byte) {
	id := ep.ctx.wrID()
	ep.ctx.pendingRecvs[id] = buf
	if err := ep.qp.PostRecv(verbs.RecvWR{ID: id, Buf: buf}); err != nil {
		delete(ep.ctx.pendingRecvs, id)
		return
	}
	ep.returnCredits++
}

// takeReturnCredits drains the credits to piggyback on an outgoing
// packet (flow control, one of the "performance critical" mechanisms
// UCR shares with MPI runtimes per §I-B).
func (ep *Endpoint) takeReturnCredits() uint16 {
	n := ep.returnCredits
	if n > 0xffff {
		n = 0xffff
	}
	ep.returnCredits -= n
	return uint16(n)
}

// waitCredit drives progress until the send window opens.
func (ep *Endpoint) waitCredit(clk *simnet.VClock) error {
	if ep.noCredits {
		return nil
	}
	deadline := clk.Now() + simnet.Second
	for ep.sendCredits <= 0 {
		if ep.failed {
			return ErrEndpointDown
		}
		ok, timedOut := ep.ctx.ProgressDeadline(clk, deadline, ep.ctx.rt.cfg.RealSilenceCap)
		if timedOut {
			return ErrTimeout
		}
		if !ok {
			return ErrClosed
		}
	}
	return nil
}

// sendPacket encodes and posts one packet, tracking its completion.
func (ep *Endpoint) sendPacket(clk *simnet.VClock, pkt *packet, originCtr *Counter, packCost int) error {
	if ep.failed {
		return ErrEndpointDown
	}
	if err := ep.waitCredit(clk); err != nil {
		return err
	}
	pkt.credits = ep.takeReturnCredits()
	buf := ep.acquireSendBuf()
	if packCost > 0 {
		clk.Advance(simnet.BytesDuration(packCost, ep.ctx.rt.cfg.PackBytesPerSec))
	}
	n := pkt.encode(buf)
	id := ep.ctx.wrID()
	ep.ctx.pendingSends[id] = pendingSend{ep: ep, buf: buf, originCtr: originCtr, originCtrID: originCtr.ID()}
	wr := verbs.SendWR{ID: id, Op: verbs.OpSend, Local: buf[:n], Dest: ep.ah}
	if ep.ctx.queuePost(ep.qp, wr, postUndo{ep: ep, id: id, buf: buf}) {
		if !ep.noCredits {
			ep.sendCredits--
		}
		return nil
	}
	if err := ep.qp.PostSend(clk, wr); err != nil {
		delete(ep.ctx.pendingSends, id)
		ep.releaseSendBuf(buf)
		ep.markFailed()
		return ErrEndpointDown
	}
	if !ep.noCredits {
		ep.sendCredits--
	}
	return nil
}

// sendAck emits an internal counter/credit message (§IV-C).
func (ep *Endpoint) sendAck(clk *simnet.VClock, originCtr, complCtr CounterID, seq uint64) {
	pkt := &packet{typ: ptAck, originCtr: originCtr, complCtr: complCtr, seq: seq}
	if err := ep.sendPacket(clk, pkt, nil, 0); err == nil {
		ep.ctx.acksOut++
	}
}

// Send issues an active message: hdr and data go to the peer, where the
// header handler registered for msgID picks the destination buffer.
// This is the Go form of the paper's ucr_send_message (§IV-B):
//
//	originCtr   bumps here when hdr/data are reusable (nil: never).
//	targetCtrID names a counter at the *target* to bump when the data
//	            has landed and the completion handler ran (0: none).
//	complCtr    bumps here when the target's completion handler has
//	            finished; non-nil requests the extra internal message.
//
// Messages with hdr+data within the eager threshold travel packed in one
// transaction; larger data is exposed via a registered region and pulled
// by the target with RDMA Read.
func (ep *Endpoint) Send(clk *simnet.VClock, msgID uint8, hdr, data []byte, originCtr *Counter, targetCtrID CounterID, complCtr *Counter) error {
	if ep.failed {
		return ErrEndpointDown
	}
	total := len(hdr) + len(data)
	if total <= ep.MaxEager() {
		pkt := &packet{
			typ:       ptEager,
			msgID:     msgID,
			hdr:       hdr,
			dataLen:   len(data),
			data:      data,
			targetCtr: targetCtrID,
			complCtr:  complCtr.ID(),
		}
		if err := ep.sendPacket(clk, pkt, originCtr, total); err != nil {
			return err
		}
		ep.ctx.amsOut++
		return nil
	}
	if ep.rel == Unreliable {
		// Rendezvous needs reliable delivery of the header and ack.
		return ErrTooLarge
	}
	if len(hdr) > ep.MaxEager() {
		return ErrTooLarge
	}
	// Rendezvous: expose data for the target's RDMA Read (Fig 2a). The
	// registration cache makes repeat sends of the same buffer free.
	mr, cached, err := ep.ctx.rt.registerCached(data, clk)
	if err != nil {
		return err
	}
	ep.ctx.nextSeq++
	seq := ep.ctx.nextSeq
	ep.ctx.rndzOrigin[seq] = rndzOriginState{
		mr: mr, cached: cached,
		originCtr: originCtr, complCtr: complCtr,
		originCtrID: originCtr.ID(), complCtrID: complCtr.ID(),
	}
	pkt := &packet{
		typ:       ptRndzHdr,
		msgID:     msgID,
		hdr:       hdr,
		dataLen:   len(data),
		targetCtr: targetCtrID,
		originCtr: originCtr.ID(),
		complCtr:  complCtr.ID(),
		rndzAddr:  mr.VA(),
		rkey:      mr.RKey(),
		seq:       seq,
	}
	if err := ep.sendPacket(clk, pkt, nil, len(hdr)); err != nil {
		delete(ep.ctx.rndzOrigin, seq)
		ep.ctx.rt.releaseRndzMR(mr, cached)
		return err
	}
	ep.ctx.amsOut++
	return nil
}

// teardown destroys the endpoint's verbs resources.
func (ep *Endpoint) teardown() {
	ep.failed = true
	delete(ep.ctx.eps, ep.qp.QPN())
	ep.qp.Destroy()
}

// Close releases the endpoint. Other endpoints in the same context and
// runtime are unaffected.
func (ep *Endpoint) Close() { ep.teardown() }

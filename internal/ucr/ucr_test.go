package ucr

import (
	"bytes"
	"encoding/binary"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/simnet"
	"repro/internal/verbs"
)

func hcaConfig() verbs.Config {
	return verbs.Config{
		PostOverhead: 50,
		SendProc:     200,
		RecvProc:     200,
		RDMAProc:     300,
		PollOverhead: 50,
		RegBase:      2000,
		RegPerByte:   0.2,
		MTU:          2048,
	}
}

// world is a two-node UCR test environment with an echo server.
type world struct {
	srvCtx *Context
	nw     *simnet.Network
	fab    *simnet.Fabric
	cm     *verbs.CM
	cliRT  *Runtime
	srvRT  *Runtime
	cliCtx *Context
	cliClk *simnet.VClock
	srvClk *simnet.VClock

	srvNode *simnet.Node
	cliNode *simnet.Node

	stop func()
}

const (
	midRequest = 1
	midReply   = 2
)

// newWorld builds client and server runtimes. The server goroutine
// accepts endpoints forever and progresses its context; its handlers for
// midRequest echo the data back via midReply, reading the reply counter
// id from the first 8 bytes of the request header.
func newWorld(t *testing.T, cfg Config) *world {
	t.Helper()
	w := &world{}
	w.nw = simnet.NewNetwork()
	w.cliNode = w.nw.AddNode("client")
	w.srvNode = w.nw.AddNode("server")
	w.fab = w.nw.AddFabric(simnet.FabricSpec{
		Name:            "ib",
		LinkBytesPerSec: 2e9,
		Propagation:     300,
		SwitchDelay:     100,
	})
	w.cm = verbs.NewCM(w.fab)
	cliHCA := verbs.NewHCA(w.cliNode, w.fab, hcaConfig())
	srvHCA := verbs.NewHCA(w.srvNode, w.fab, hcaConfig())
	w.cliRT = New(cliHCA, w.cm, cfg)
	w.srvRT = New(srvHCA, w.cm, cfg)
	w.cliCtx = w.cliRT.NewContext()
	w.cliClk = simnet.NewVClock(0)
	w.srvClk = simnet.NewVClock(0)

	// Server: echo handler. Request header = [replyCtr(8)] [tag...].
	srvCtx := w.srvRT.NewContext()
	w.srvCtx = srvCtx
	pool := make(map[*Endpoint][]byte)
	w.srvRT.RegisterHandler(midRequest, Handler{
		Header: func(clk *simnet.VClock, ep *Endpoint, hdr []byte, dataLen int, _ CounterID) []byte {
			buf := pool[ep]
			if len(buf) < dataLen {
				buf = make([]byte, dataLen)
				pool[ep] = buf
			}
			return buf
		},
		Completion: func(clk *simnet.VClock, ep *Endpoint, hdr, data []byte, _ CounterID) {
			replyCtr := CounterID(binary.LittleEndian.Uint64(hdr))
			if err := ep.Send(clk, midReply, hdr[8:], data, nil, replyCtr, nil); err != nil {
				t.Errorf("server reply failed: %v", err)
			}
		},
	})

	w.stop = serveLoop(t, w.srvRT, srvCtx, w.srvClk, "echo")
	t.Cleanup(w.stop)
	return w
}

// srvBufBytes reports the server context's receive-buffer footprint.
func (w *world) srvBufBytes() int64 { return w.srvCtx.RecvBufferBytes() }

// serveLoop runs a single-owner server actor for ctx: a listener waker
// and a CQ waker feed one goroutine that alone touches ctx — the same
// dispatcher/worker shape the Memcached server uses. It returns a stop
// function.
func serveLoop(t *testing.T, rt *Runtime, ctx *Context, clk *simnet.VClock, service string) (stop func()) {
	t.Helper()
	lis, err := rt.Listen(service)
	if err != nil {
		t.Fatal(err)
	}
	type event struct {
		req *verbs.ConnRequest
		ack chan struct{}
	}
	events := simnet.NewMailbox[event]()
	stopCh := make(chan struct{})

	// Listener waker.
	acceptDone := make(chan struct{})
	go func() {
		defer close(acceptDone)
		dispClk := simnet.NewVClock(0)
		for {
			req, ok := lis.Next(dispClk, 50*time.Millisecond)
			if !ok {
				select {
				case <-stopCh:
					return
				default:
					continue
				}
			}
			events.Put(event{req: req})
		}
	}()
	// CQ waker.
	cqDone := make(chan struct{})
	go func() {
		defer close(cqDone)
		ack := make(chan struct{})
		for ctx.WaitIncoming() {
			events.Put(event{ack: ack})
			select {
			case <-ack:
			case <-stopCh:
				return
			}
		}
	}()
	// The worker: sole owner of ctx.
	workerDone := make(chan struct{})
	go func() {
		defer close(workerDone)
		for {
			ev, ok := events.Recv()
			if !ok {
				return
			}
			if ev.req != nil {
				if _, err := ctx.Accept(ev.req, clk); err != nil {
					ev.req.Reject(err)
				}
				continue
			}
			for ctx.TryProgress(clk) {
			}
			select {
			case ev.ack <- struct{}{}:
			case <-stopCh:
				return
			}
		}
	}()
	return func() {
		close(stopCh)
		lis.Close()
		<-acceptDone
		events.Close()
		<-workerDone
		ctx.Destroy()
		<-cqDone
	}
}

// dial connects a reliable client endpoint with a fresh reply buffer.
func (w *world) dial(t *testing.T, rel Reliability) *Endpoint {
	t.Helper()
	ep, err := w.cliRT.Dial(w.cliCtx, w.srvNode, "echo", rel, w.cliClk, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	return ep
}

// installClientReply registers the midReply handler on the client,
// capturing replies into the returned buffer holder.
type replyCapture struct {
	hdr  []byte
	data []byte
	buf  []byte
	runs int
}

func (w *world) installClientReply() *replyCapture {
	rc := &replyCapture{buf: make([]byte, 1<<20)}
	w.cliRT.RegisterHandler(midReply, Handler{
		Header: func(clk *simnet.VClock, ep *Endpoint, hdr []byte, dataLen int, _ CounterID) []byte {
			return rc.buf
		},
		Completion: func(clk *simnet.VClock, ep *Endpoint, hdr, data []byte, _ CounterID) {
			rc.hdr = append([]byte(nil), hdr...)
			rc.data = append([]byte(nil), data...)
			rc.runs++
		},
	})
	return rc
}

// request sends one echo request and waits for the reply.
func (w *world) request(t *testing.T, ep *Endpoint, tag string, data []byte, timeout simnet.Duration) error {
	t.Helper()
	replyCtr := w.cliRT.NewCounter()
	defer w.cliRT.FreeCounter(replyCtr)
	hdr := make([]byte, 8+len(tag))
	binary.LittleEndian.PutUint64(hdr, uint64(replyCtr.ID()))
	copy(hdr[8:], tag)
	if err := ep.Send(w.cliClk, midRequest, hdr, data, nil, 0, nil); err != nil {
		return err
	}
	return w.cliCtx.WaitCounter(w.cliClk, replyCtr, 1, timeout)
}

func TestEagerRoundtrip(t *testing.T) {
	w := newWorld(t, Config{})
	rc := w.installClientReply()
	ep := w.dial(t, Reliable)
	payload := []byte("small eager payload")
	if err := w.request(t, ep, "tag1", payload, 0); err != nil {
		t.Fatal(err)
	}
	if string(rc.hdr) != "tag1" || !bytes.Equal(rc.data, payload) {
		t.Fatalf("reply = hdr %q data %q", rc.hdr, rc.data)
	}
	// Entire exchange stayed on the eager path: no RDMA reads anywhere.
	if _, _, _, _, reads := w.cliCtx.Stats(); reads != 0 {
		t.Fatalf("client did %d RDMA reads on eager path", reads)
	}
	if w.cliClk.Now() == 0 {
		t.Fatal("client clock did not advance")
	}
}

func TestRendezvousRoundtrip(t *testing.T) {
	w := newWorld(t, Config{EagerThreshold: 1024})
	rc := w.installClientReply()
	ep := w.dial(t, Reliable)
	payload := make([]byte, 64*1024)
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	if err := w.request(t, ep, "big", payload, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rc.data, payload) {
		t.Fatal("large payload corrupted in flight")
	}
	// The reply (64 KB > threshold) came back via rendezvous: the
	// client as target issued an RDMA read.
	if _, _, _, _, reads := w.cliCtx.Stats(); reads == 0 {
		t.Fatal("client never used RDMA read for large reply")
	}
}

func TestOriginCounterEagerLocalCompletion(t *testing.T) {
	w := newWorld(t, Config{})
	w.installClientReply()
	ep := w.dial(t, Reliable)
	origin := w.cliRT.NewCounter()
	if err := ep.Send(w.cliClk, midRequest, make([]byte, 16), []byte("x"), origin, 0, nil); err != nil {
		t.Fatal(err)
	}
	if err := w.cliCtx.WaitCounter(w.cliClk, origin, 1, 0); err != nil {
		t.Fatal(err)
	}
	// Eager origin counters come from local completion, not an ack.
	if _, _, acksIn, _, _ := w.cliCtx.Stats(); acksIn != 0 {
		t.Fatalf("eager origin counter used %d acks, want 0", acksIn)
	}
}

func TestOriginCounterRendezvousAck(t *testing.T) {
	w := newWorld(t, Config{EagerThreshold: 512})
	w.installClientReply()
	ep := w.dial(t, Reliable)
	origin := w.cliRT.NewCounter()
	hdr := make([]byte, 16) // replyCtr 0: server still echoes, reply ctr ignored
	big := make([]byte, 8192)
	if err := ep.Send(w.cliClk, midRequest, hdr, big, origin, 0, nil); err != nil {
		t.Fatal(err)
	}
	if err := w.cliCtx.WaitCounter(w.cliClk, origin, 1, 0); err != nil {
		t.Fatal(err)
	}
	if _, _, acksIn, _, _ := w.cliCtx.Stats(); acksIn == 0 {
		t.Fatal("rendezvous origin counter should arrive via internal ack")
	}
	// The origin-side registration was released.
	if len(w.cliCtx.rndzOrigin) != 0 {
		t.Fatalf("%d rendezvous origin states leaked", len(w.cliCtx.rndzOrigin))
	}
}

func TestCompletionCounter(t *testing.T) {
	w := newWorld(t, Config{})
	w.installClientReply()
	ep := w.dial(t, Reliable)
	compl := w.cliRT.NewCounter()
	if err := ep.Send(w.cliClk, midRequest, make([]byte, 16), []byte("y"), nil, 0, compl); err != nil {
		t.Fatal(err)
	}
	if err := w.cliCtx.WaitCounter(w.cliClk, compl, 1, 0); err != nil {
		t.Fatal(err)
	}
	if _, _, acksIn, _, _ := w.cliCtx.Stats(); acksIn == 0 {
		t.Fatal("completion counter requires the optional internal message")
	}
}

func TestNullCountersSuppressAcks(t *testing.T) {
	// §IV-C: NULL counters mean no internal messages for eager sends.
	w := newWorld(t, Config{})
	rc := w.installClientReply()
	ep := w.dial(t, Reliable)
	for i := 0; i < 5; i++ {
		if err := w.request(t, ep, "t", []byte("data"), 0); err != nil {
			t.Fatal(err)
		}
	}
	if rc.runs != 5 {
		t.Fatalf("runs = %d", rc.runs)
	}
	if _, _, acksIn, acksOut, _ := w.cliCtx.Stats(); acksIn != 0 || acksOut != 0 {
		t.Fatalf("eager exchange with NULL counters produced acks: in=%d out=%d", acksIn, acksOut)
	}
}

func TestTargetCounterSemantics(t *testing.T) {
	// The reply's target counter (client side) bumps exactly once per
	// reply and the counter is monotone.
	w := newWorld(t, Config{})
	w.installClientReply()
	ep := w.dial(t, Reliable)
	ctr := w.cliRT.NewCounter()
	hdr := make([]byte, 8)
	binary.LittleEndian.PutUint64(hdr, uint64(ctr.ID()))
	for i := 1; i <= 4; i++ {
		if err := ep.Send(w.cliClk, midRequest, hdr, []byte("z"), nil, 0, nil); err != nil {
			t.Fatal(err)
		}
		if err := w.cliCtx.WaitCounter(w.cliClk, ctr, uint64(i), 0); err != nil {
			t.Fatal(err)
		}
		if ctr.Value() != uint64(i) {
			t.Fatalf("counter = %d, want %d", ctr.Value(), i)
		}
	}
}

func TestWaitTimeoutOnDeadServer(t *testing.T) {
	w := newWorld(t, Config{})
	w.installClientReply()
	ep := w.dial(t, Reliable)
	// Warm one exchange, then kill the server node.
	if err := w.request(t, ep, "warm", []byte("w"), 0); err != nil {
		t.Fatal(err)
	}
	w.srvNode.Fail()
	err := w.request(t, ep, "dead", []byte("d"), 50*simnet.Microsecond)
	if err != ErrTimeout && err != ErrEndpointDown {
		t.Fatalf("err = %v, want timeout or endpoint-down", err)
	}
}

func TestFaultIsolation(t *testing.T) {
	// One failing endpoint must not affect another (§IV-A). Two servers;
	// one dies; traffic to the other keeps flowing.
	w := newWorld(t, Config{})
	rc := w.installClientReply()

	// Second server on its own node.
	srv2Node := w.nw.AddNode("server2")
	srv2HCA := verbs.NewHCA(srv2Node, w.fab, hcaConfig())
	srv2RT := New(srv2HCA, w.cm, Config{})
	srv2Ctx := srv2RT.NewContext()
	srv2Clk := simnet.NewVClock(0)
	srv2RT.RegisterHandler(midRequest, Handler{
		Header: func(clk *simnet.VClock, ep *Endpoint, hdr []byte, dataLen int, _ CounterID) []byte {
			return make([]byte, dataLen)
		},
		Completion: func(clk *simnet.VClock, ep *Endpoint, hdr, data []byte, _ CounterID) {
			replyCtr := CounterID(binary.LittleEndian.Uint64(hdr))
			_ = ep.Send(clk, midReply, hdr[8:], data, nil, replyCtr, nil)
		},
	})
	stop2 := serveLoop(t, srv2RT, srv2Ctx, srv2Clk, "echo2")
	defer stop2()

	ep1 := w.dial(t, Reliable)
	ep2, err := w.cliRT.Dial(w.cliCtx, srv2Node, "echo2", Reliable, w.cliClk, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}

	if err := w.request(t, ep1, "a", []byte("1"), 0); err != nil {
		t.Fatal(err)
	}
	w.srvNode.Fail() // first server dies
	if err := w.request(t, ep1, "b", []byte("2"), 50*simnet.Microsecond); err == nil {
		t.Fatal("request to dead server should fail")
	}
	// The second endpoint still works.
	before := rc.runs
	if err := w.request(t, ep2, "c", []byte("3"), 0); err != nil {
		t.Fatalf("healthy endpoint affected by peer failure: %v", err)
	}
	if rc.runs != before+1 {
		t.Fatal("no reply via healthy endpoint")
	}
}

func TestFlowControlCredits(t *testing.T) {
	// With a tiny window, a burst of one-way sends forces the sender to
	// wait for piggybacked credit returns — and still completes.
	w := newWorld(t, Config{Credits: 2})
	w.installClientReply()
	ep := w.dial(t, Reliable)
	for i := 0; i < 20; i++ {
		if err := w.request(t, ep, "fc", []byte("x"), 0); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	if ep.Credits() < 0 {
		t.Fatalf("credits went negative: %d", ep.Credits())
	}
}

func TestUnreliableEndpoint(t *testing.T) {
	w := newWorld(t, Config{})
	rc := w.installClientReply()
	ep := w.dial(t, Unreliable)
	if ep.Reliability() != Unreliable {
		t.Fatal("wrong reliability")
	}
	if err := w.request(t, ep, "ud", []byte("datagram"), 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rc.data, []byte("datagram")) {
		t.Fatalf("data = %q", rc.data)
	}
	// Over-MTU payloads cannot use UD (no rendezvous on datagrams).
	big := make([]byte, 64*1024)
	if err := ep.Send(w.cliClk, midRequest, make([]byte, 16), big, nil, 0, nil); err != ErrTooLarge {
		t.Fatalf("err = %v, want ErrTooLarge", err)
	}
}

func TestHugeHeaderRejected(t *testing.T) {
	w := newWorld(t, Config{EagerThreshold: 256})
	w.installClientReply()
	ep := w.dial(t, Reliable)
	hdr := make([]byte, 1024) // exceeds eager capacity, header can't rendezvous
	data := make([]byte, 64*1024)
	if err := ep.Send(w.cliClk, midRequest, hdr, data, nil, 0, nil); err != ErrTooLarge {
		t.Fatalf("err = %v, want ErrTooLarge", err)
	}
}

func TestUnhandledMessageDropped(t *testing.T) {
	w := newWorld(t, Config{})
	w.installClientReply()
	ep := w.dial(t, Reliable)
	// msgID 99 has no handler on the server: silently dropped.
	if err := ep.Send(w.cliClk, 99, []byte("hdr"), []byte("data"), nil, 0, nil); err != nil {
		t.Fatal(err)
	}
	// The endpoint still works for handled messages afterwards.
	if err := w.request(t, ep, "after", []byte("ok"), 0); err != nil {
		t.Fatal(err)
	}
}

func TestDialUnknownService(t *testing.T) {
	w := newWorld(t, Config{})
	if _, err := w.cliRT.Dial(w.cliCtx, w.srvNode, "nope", Reliable, w.cliClk, time.Second); err != verbs.ErrRefused {
		t.Fatalf("err = %v, want ErrRefused", err)
	}
}

func TestRuntimeClose(t *testing.T) {
	w := newWorld(t, Config{})
	w.cliRT.Close()
	if _, err := w.cliRT.Dial(w.cliCtx, w.srvNode, "echo", Reliable, w.cliClk, time.Second); err != ErrClosed {
		t.Fatalf("Dial after Close = %v, want ErrClosed", err)
	}
	if _, err := w.cliRT.Listen("x"); err != ErrClosed {
		t.Fatalf("Listen after Close = %v, want ErrClosed", err)
	}
}

func TestCounterRegistry(t *testing.T) {
	w := newWorld(t, Config{})
	c := w.cliRT.NewCounter()
	if c.ID() == 0 {
		t.Fatal("counter id should be nonzero")
	}
	if got := w.cliRT.lookupCounter(c.ID()); got != c {
		t.Fatal("lookup failed")
	}
	if got := w.cliRT.lookupCounter(0); got != nil {
		t.Fatal("id 0 must resolve to nil")
	}
	w.cliRT.FreeCounter(c)
	if got := w.cliRT.lookupCounter(c.ID()); got != nil {
		t.Fatal("freed counter still resolvable")
	}
	var nilCtr *Counter
	if nilCtr.ID() != 0 {
		t.Fatal("nil counter id should be 0")
	}
	nilCtr.bump() // must not panic
}

func TestPacketRoundtripProperty(t *testing.T) {
	f := func(typ8 uint8, msgID uint8, hdr, data []byte, oc, tc, cc uint64, addr uint64, rkey uint32, seq uint64) bool {
		typ := uint8(1 + typ8%3)
		p := packet{
			typ: typ, msgID: msgID, hdr: hdr,
			dataLen:   len(data),
			originCtr: CounterID(oc), targetCtr: CounterID(tc), complCtr: CounterID(cc),
			rndzAddr: addr, rkey: rkey, seq: seq,
		}
		if typ == ptEager {
			p.data = data
		}
		buf := make([]byte, p.encodedLen())
		n := p.encode(buf)
		got, err := decodePacket(buf, n)
		if err != nil {
			return false
		}
		if got.typ != p.typ || got.msgID != p.msgID || !bytes.Equal(got.hdr, hdr) {
			return false
		}
		if got.originCtr != p.originCtr || got.targetCtr != p.targetCtr || got.complCtr != p.complCtr {
			return false
		}
		if got.rndzAddr != addr || got.rkey != rkey || got.seq != seq || got.dataLen != len(data) {
			return false
		}
		if typ == ptEager && !bytes.Equal(got.data, data) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPacketDecodeErrors(t *testing.T) {
	if _, err := decodePacket(make([]byte, 10), 10); err == nil {
		t.Fatal("short packet should error")
	}
	// Header length overrunning the packet.
	p := packet{typ: ptEager, hdr: make([]byte, 100)}
	buf := make([]byte, p.encodedLen())
	n := p.encode(buf)
	if _, err := decodePacket(buf, n-50); err == nil {
		t.Fatal("truncated header should error")
	}
	// Data overrun.
	p2 := packet{typ: ptEager, data: make([]byte, 100), dataLen: 100}
	buf2 := make([]byte, p2.encodedLen())
	n2 := p2.encode(buf2)
	if _, err := decodePacket(buf2, n2-10); err == nil {
		t.Fatal("truncated data should error")
	}
}

func TestEagerThresholdBoundary(t *testing.T) {
	w := newWorld(t, Config{EagerThreshold: 1000})
	w.installClientReply()
	ep := w.dial(t, Reliable)
	hdr := make([]byte, 16)
	binary.LittleEndian.PutUint64(hdr, 0)
	// Exactly at capacity: eager.
	atCap := make([]byte, ep.MaxEager()-len(hdr))
	if err := ep.Send(w.cliClk, midRequest, hdr, atCap, nil, 0, nil); err != nil {
		t.Fatal(err)
	}
	// One past capacity: rendezvous (server pulls it — verify via server
	// side being unobservable here, just assert the send works and the
	// registration path got used).
	over := make([]byte, ep.MaxEager()-len(hdr)+1)
	origin := w.cliRT.NewCounter()
	if err := ep.Send(w.cliClk, midRequest, hdr, over, origin, 0, nil); err != nil {
		t.Fatal(err)
	}
	if err := w.cliCtx.WaitCounter(w.cliClk, origin, 1, 0); err != nil {
		t.Fatal(err)
	}
	if _, _, acksIn, _, _ := w.cliCtx.Stats(); acksIn == 0 {
		t.Fatal("over-threshold send did not take the rendezvous path")
	}
}

package ucr

import (
	"repro/internal/simnet"
	"repro/internal/verbs"
)

// Write-based replies: the responder-side half of the eager/rendezvous
// crossover for GET-class replies. Instead of packing the value into an
// eager AM (one copy at each end) or exposing it for the client to pull
// with RDMA Read (an extra half round trip), the server pushes
// [reply header ‖ value] straight into a reply window the client
// advertised with its request, as ONE gather RDMA WRITE sourced from the
// pinned slab chunk. A small notify AM (sent by the caller afterwards on
// the same QP, so RC ordering guarantees the data precedes it) completes
// the client's future.

// writeReplyState tracks one in-flight write reply. buf is the pooled
// send buffer holding the header copy; originCtr settles at WC time —
// success or failure alike, because the caller keys resource release
// (item unpin, counter free) off the counter and a failed write must not
// leak the pin.
type writeReplyState struct {
	ep          *Endpoint
	buf         []byte
	originCtr   *Counter
	originCtrID CounterID
}

// WriteReplies reports how many write-based replies this context has
// posted. Tests and memcheck use it as a vacuity guard: a "write
// replies" run that never posted one proved nothing.
func (c *Context) WriteReplies() uint64 { return c.writeReplies }

// WriteReply gather-posts hdr followed by data into the peer's window at
// offset — the zero-copy reply path. hdr is copied into a pooled
// registered send buffer (it is tiny and the caller's header scratch
// must be immediately reusable); data is referenced in place, so the
// caller MUST keep it pinned until originCtr bumps. The post rides any
// open doorbell batch (BeginPostBatch), falling back to an immediate
// PostSend outside one.
//
// Unlike Put, originCtr settles when the write completion lands whether
// or not it succeeded (the endpoint is additionally marked failed on
// error): the caller's pin-sweep logic releases the slab item on the
// counter, and a transport failure must not pin it forever.
func (ep *Endpoint) WriteReply(clk *simnet.VClock, hdr, data []byte, dst WindowDesc, offset int, originCtr *Counter) error {
	if ep.failed {
		return ErrEndpointDown
	}
	if ep.rel != Reliable {
		return ErrNeedReliable
	}
	total := len(hdr) + len(data)
	if offset < 0 || offset+total > dst.Len {
		return ErrWindowBounds
	}
	buf := ep.acquireSendBuf()
	if len(buf) < len(hdr) {
		ep.releaseSendBuf(buf)
		return ErrTooLarge // reply header larger than an endpoint buffer: caller bug
	}
	// The header is staged through registered pool memory like an eager
	// pack (the value is not — that is the point).
	clk.Advance(simnet.BytesDuration(len(hdr), ep.ctx.rt.cfg.PackBytesPerSec))
	n := copy(buf, hdr)
	id := ep.ctx.wrID()
	ep.ctx.pendingWrites[id] = writeReplyState{
		ep: ep, buf: buf, originCtr: originCtr, originCtrID: originCtr.ID(),
	}
	wr := verbs.SendWR{
		ID:         id,
		Op:         verbs.OpRDMAWrite,
		Local:      buf[:n],
		Local2:     data,
		RemoteAddr: dst.Addr + uint64(offset),
		RKey:       dst.RKey,
	}
	if !ep.ctx.queuePost(ep.qp, wr, postUndo{ep: ep, id: id, buf: buf}) {
		if err := ep.qp.PostSend(clk, wr); err != nil {
			delete(ep.ctx.pendingWrites, id)
			ep.releaseSendBuf(buf)
			ep.markFailed()
			return ErrEndpointDown
		}
	}
	ep.ctx.writeReplies++
	return nil
}

// onWriteReplyComplete finishes a write reply: release the header
// buffer, reflect failure onto the endpoint, and settle the counter
// unconditionally so the caller's pin lifecycle always completes.
func (c *Context) onWriteReplyComplete(wc verbs.WC) bool {
	st, ok := c.pendingWrites[wc.ID]
	if !ok {
		return false
	}
	delete(c.pendingWrites, wc.ID)
	st.ep.releaseSendBuf(st.buf)
	if wc.Status != verbs.StatusSuccess {
		st.ep.markFailed()
	}
	st.originCtr.bumpIf(st.originCtrID)
	return true
}

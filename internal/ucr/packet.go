package ucr

import (
	"encoding/binary"
	"fmt"
)

// Packet types on the wire.
const (
	ptEager   = 1 // header + data packed in one transaction (Fig 2b)
	ptRndzHdr = 2 // header + (addr, rkey) of origin data to RDMA-read (Fig 2a)
	ptAck     = 3 // internal counter/credit message
)

// packetHdrSize is the fixed wire header:
//
//	type(1) msgID(1) credits(2) hdrLen(4) dataLen(4)
//	originCtr(8) targetCtr(8) complCtr(8) rndzAddr(8) rkey(4) seq(8)
const packetHdrSize = 1 + 1 + 2 + 4 + 4 + 8 + 8 + 8 + 8 + 4 + 8

// packet is the decoded form.
type packet struct {
	typ       uint8
	msgID     uint8
	credits   uint16
	hdr       []byte
	dataLen   int
	originCtr CounterID
	targetCtr CounterID
	complCtr  CounterID
	rndzAddr  uint64
	rkey      uint32
	seq       uint64
	data      []byte // eager only
}

// encodedLen reports the wire size of the packet.
func (p *packet) encodedLen() int {
	n := packetHdrSize + len(p.hdr)
	if p.typ == ptEager {
		n += len(p.data)
	}
	return n
}

// encode packs the packet into dst, which must have room.
func (p *packet) encode(dst []byte) int {
	le := binary.LittleEndian
	dst[0] = p.typ
	dst[1] = p.msgID
	le.PutUint16(dst[2:], p.credits)
	le.PutUint32(dst[4:], uint32(len(p.hdr)))
	le.PutUint32(dst[8:], uint32(p.dataLen))
	le.PutUint64(dst[12:], uint64(p.originCtr))
	le.PutUint64(dst[20:], uint64(p.targetCtr))
	le.PutUint64(dst[28:], uint64(p.complCtr))
	le.PutUint64(dst[36:], p.rndzAddr)
	le.PutUint32(dst[44:], p.rkey)
	le.PutUint64(dst[48:], p.seq)
	off := packetHdrSize
	off += copy(dst[off:], p.hdr)
	if p.typ == ptEager {
		off += copy(dst[off:], p.data)
	}
	return off
}

// decodePacket parses a wire buffer of n valid bytes. The returned
// packet's hdr and data alias buf.
func decodePacket(buf []byte, n int) (packet, error) {
	if n < packetHdrSize || n > len(buf) {
		return packet{}, fmt.Errorf("ucr: short packet (%d bytes)", n)
	}
	le := binary.LittleEndian
	p := packet{
		typ:       buf[0],
		msgID:     buf[1],
		credits:   le.Uint16(buf[2:]),
		dataLen:   int(le.Uint32(buf[8:])),
		originCtr: CounterID(le.Uint64(buf[12:])),
		targetCtr: CounterID(le.Uint64(buf[20:])),
		complCtr:  CounterID(le.Uint64(buf[28:])),
		rndzAddr:  le.Uint64(buf[36:]),
		rkey:      le.Uint32(buf[44:]),
		seq:       le.Uint64(buf[48:]),
	}
	hdrLen := int(le.Uint32(buf[4:]))
	off := packetHdrSize
	if off+hdrLen > n {
		return packet{}, fmt.Errorf("ucr: header overruns packet (%d+%d > %d)", off, hdrLen, n)
	}
	p.hdr = buf[off : off+hdrLen]
	off += hdrLen
	if p.typ == ptEager {
		if off+p.dataLen > n {
			return packet{}, fmt.Errorf("ucr: data overruns packet (%d+%d > %d)", off, p.dataLen, n)
		}
		p.data = buf[off : off+p.dataLen]
	}
	return p, nil
}

package ucr

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/simnet"
	"repro/internal/verbs"
)

// Runtime is one process's UCR instance: the handler table, the counter
// registry, and the verbs resources shared by that process's progress
// contexts (a Memcached server creates one Runtime and one Context per
// worker thread; a client creates one of each).
type Runtime struct {
	hca *verbs.HCA
	cm  *verbs.CM
	cfg Config
	pd  *verbs.PD

	handlers [256]atomic.Pointer[Handler]

	ctrMu    sync.Mutex
	counters map[CounterID]*Counter
	nextCtr  uint64
	freeCtrs []*Counter // struct pool; ids are never reused, structs are

	regs *regCache

	closed atomic.Bool
}

// New creates a runtime on the given adapter, using cm for endpoint
// establishment.
func New(hca *verbs.HCA, cm *verbs.CM, cfg Config) *Runtime {
	cfg = cfg.withDefaults()
	return &Runtime{
		hca:      hca,
		cm:       cm,
		cfg:      cfg,
		pd:       hca.AllocPD(),
		counters: make(map[CounterID]*Counter),
		regs:     newRegCache(cfg.RegCacheEntries),
	}
}

// Config reports the runtime's effective configuration.
func (rt *Runtime) Config() Config { return rt.cfg }

// HCA reports the underlying adapter.
func (rt *Runtime) HCA() *verbs.HCA { return rt.hca }

// Node reports the host node.
func (rt *Runtime) Node() *simnet.Node { return rt.hca.Node() }

// RegisterHandler installs the handler pair for a message id. Handlers
// are normally registered once at start-up, before traffic flows.
func (rt *Runtime) RegisterHandler(msgID uint8, h Handler) {
	hh := h
	rt.handlers[msgID].Store(&hh)
}

func (rt *Runtime) handler(msgID uint8) *Handler {
	return rt.handlers[msgID].Load()
}

// maxCtrPool bounds the retained counter-struct pool.
const maxCtrPool = 1024

// NewCounter issues a counter with a fresh network-visible id. The
// struct comes from the free pool when one is available, so steady-state
// request loops do not allocate; the id is always new (ids are the
// late-duplicate defense and are never reused).
func (rt *Runtime) NewCounter() *Counter {
	rt.ctrMu.Lock()
	defer rt.ctrMu.Unlock()
	rt.nextCtr++
	var c *Counter
	if k := len(rt.freeCtrs); k > 0 {
		c = rt.freeCtrs[k-1]
		rt.freeCtrs[k-1] = nil
		rt.freeCtrs = rt.freeCtrs[:k-1]
		c.val.Store(0)
	} else {
		c = &Counter{}
	}
	c.id.Store(uint64(rt.nextCtr))
	rt.counters[CounterID(rt.nextCtr)] = c
	return c
}

// lookupCounter resolves a counter id (0 → nil).
func (rt *Runtime) lookupCounter(id CounterID) *Counter {
	if id == 0 {
		return nil
	}
	rt.ctrMu.Lock()
	defer rt.ctrMu.Unlock()
	return rt.counters[id]
}

// FreeCounter removes a counter from the registry and recycles the
// struct. Freeing a counter that is not registered (double free) leaves
// the pool untouched, so a struct can never be pooled twice.
func (rt *Runtime) FreeCounter(c *Counter) {
	if c == nil {
		return
	}
	rt.ctrMu.Lock()
	id := CounterID(c.id.Load())
	if rt.counters[id] == c {
		delete(rt.counters, id)
		if len(rt.freeCtrs) < maxCtrPool {
			rt.freeCtrs = append(rt.freeCtrs, c)
		}
	}
	rt.ctrMu.Unlock()
}

// Close marks the runtime closed. Contexts and endpoints created from it
// keep working until individually closed; Close only blocks new Listen
// and Dial calls.
func (rt *Runtime) Close() { rt.closed.Store(true) }

// Listener accepts UCR endpoint requests for a service.
type Listener struct {
	rt  *Runtime
	lis *verbs.Listener
}

// Listen binds a UCR service name on this runtime's node.
func (rt *Runtime) Listen(service string) (*Listener, error) {
	if rt.closed.Load() {
		return nil, ErrClosed
	}
	vl, err := rt.cm.Listen(service)
	if err != nil {
		return nil, err
	}
	return &Listener{rt: rt, lis: vl}, nil
}

// Accept blocks for the next endpoint request and completes it within
// ctx (the accepting worker's progress context). ok=false means the
// listener was closed.
func (l *Listener) Accept(ctx *Context, clk *simnet.VClock) (*Endpoint, bool) {
	req, ok := l.lis.Accept(clk)
	if !ok {
		return nil, false
	}
	ep, err := ctx.Accept(req, clk)
	if err != nil {
		req.Reject(err)
		return nil, ok
	}
	return ep, true
}

// AcceptTimeout is Accept with a real-time cap for shutdown paths.
func (l *Listener) AcceptTimeout(ctx *Context, clk *simnet.VClock, realCap time.Duration) (*Endpoint, bool) {
	req, ok := l.lis.AcceptTimeout(clk, realCap)
	if !ok {
		return nil, false
	}
	ep, err := ctx.Accept(req, clk)
	if err != nil {
		req.Reject(err)
		return nil, ok
	}
	return ep, true
}

// Next returns the next raw endpoint request without completing it, so
// a dispatcher thread can hand it to a worker thread's context (the
// worker then calls Context.Accept). ok=false means closed or the real-
// time cap fired with nothing pending.
func (l *Listener) Next(clk *simnet.VClock, realCap time.Duration) (*verbs.ConnRequest, bool) {
	return l.lis.AcceptTimeout(clk, realCap)
}

// Close stops accepting.
func (l *Listener) Close() { l.lis.Close() }

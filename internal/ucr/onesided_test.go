package ucr

import (
	"bytes"
	"encoding/binary"
	"testing"

	"repro/internal/simnet"
)

func TestWindowDescRoundtrip(t *testing.T) {
	d := WindowDesc{Addr: 0xdeadbeef, RKey: 42, Len: 4096}
	got, ok := DecodeWindowDesc(d.Encode())
	if !ok || got != d {
		t.Fatalf("roundtrip = %+v ok=%v", got, ok)
	}
	if _, ok := DecodeWindowDesc(make([]byte, 4)); ok {
		t.Fatal("short descriptor decoded")
	}
}

func TestWindowDescRejectsHugeLen(t *testing.T) {
	// A 64-bit length off the wire must not truncate into an int.
	b := WindowDesc{Addr: 0x1000, RKey: 7}.Encode()
	for _, n := range []uint64{1 << 63, ^uint64(0), MaxWindowLen + 1} {
		binary.LittleEndian.PutUint64(b[12:], n)
		if _, ok := DecodeWindowDesc(b); ok {
			t.Fatalf("length %#x decoded", n)
		}
	}
	binary.LittleEndian.PutUint64(b[12:], MaxWindowLen)
	if d, ok := DecodeWindowDesc(b); !ok || d.Len != MaxWindowLen {
		t.Fatalf("boundary length rejected: %+v ok=%v", d, ok)
	}
}

func TestOneSidedPutGet(t *testing.T) {
	w := newWorld(t, Config{})
	w.installClientReply()
	ep := w.dial(t, Reliable)

	// The server side exposes a window; in a real application its
	// descriptor would travel in an AM header. Here we grab it directly.
	winBuf := make([]byte, 1024)
	copy(winBuf[100:], []byte("server-resident"))
	win, err := w.srvRT.CreateWindow(winBuf, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer win.Close()
	desc := win.Desc()

	// Get: pull remote bytes with no server software involvement.
	local := make([]byte, 15)
	ctr := w.cliRT.NewCounter()
	if err := ep.Get(w.cliClk, local, desc, 100, ctr); err != nil {
		t.Fatal(err)
	}
	if err := w.cliCtx.WaitCounter(w.cliClk, ctr, 1, 0); err != nil {
		t.Fatal(err)
	}
	if string(local) != "server-resident" {
		t.Fatalf("got %q", local)
	}

	// Put: push local bytes into the window.
	payload := []byte("pushed-by-put")
	if err := ep.Put(w.cliClk, payload, desc, 500, ctr); err != nil {
		t.Fatal(err)
	}
	if err := w.cliCtx.WaitCounter(w.cliClk, ctr, 2, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(winBuf[500:500+len(payload)], payload) {
		t.Fatalf("window = %q", winBuf[500:500+len(payload)])
	}
}

func TestOneSidedBounds(t *testing.T) {
	w := newWorld(t, Config{})
	w.installClientReply()
	ep := w.dial(t, Reliable)
	win, err := w.srvRT.CreateWindow(make([]byte, 64), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer win.Close()
	desc := win.Desc()
	if err := ep.Put(w.cliClk, make([]byte, 32), desc, 40, nil); err != ErrWindowBounds {
		t.Fatalf("overflow err = %v", err)
	}
	if err := ep.Get(w.cliClk, make([]byte, 8), desc, -1, nil); err != ErrWindowBounds {
		t.Fatalf("negative offset err = %v", err)
	}
}

func TestOneSidedRequiresReliable(t *testing.T) {
	w := newWorld(t, Config{})
	w.installClientReply()
	ep := w.dial(t, Unreliable)
	win, err := w.srvRT.CreateWindow(make([]byte, 64), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer win.Close()
	if err := ep.Put(w.cliClk, make([]byte, 8), win.Desc(), 0, nil); err != ErrNeedReliable {
		t.Fatalf("UD Put err = %v, want ErrNeedReliable", err)
	}
	if err := ep.Get(w.cliClk, make([]byte, 8), win.Desc(), 0, nil); err != ErrNeedReliable {
		t.Fatalf("UD Get err = %v, want ErrNeedReliable", err)
	}
}

func TestOneSidedClosedWindow(t *testing.T) {
	w := newWorld(t, Config{})
	w.installClientReply()
	ep := w.dial(t, Reliable)
	win, err := w.srvRT.CreateWindow(make([]byte, 64), nil)
	if err != nil {
		t.Fatal(err)
	}
	desc := win.Desc()
	win.Close() // revoked
	ctr := w.cliRT.NewCounter()
	if err := ep.Get(w.cliClk, make([]byte, 8), desc, 0, ctr); err != nil {
		t.Fatal(err)
	}
	// The remote error surfaces as endpoint failure, not a hang.
	err = w.cliCtx.WaitCounter(w.cliClk, ctr, 1, 100*simnet.Microsecond)
	if err == nil {
		t.Fatal("get from closed window should not complete")
	}
	if !ep.Failed() {
		t.Fatal("endpoint should be marked failed after remote error")
	}
}

func TestRegCacheReuse(t *testing.T) {
	// Repeat rendezvous sends of the same buffer register once.
	w := newWorld(t, Config{EagerThreshold: 512})
	w.installClientReply()
	ep := w.dial(t, Reliable)
	data := make([]byte, 16*1024)
	origin := w.cliRT.NewCounter()
	for i := 1; i <= 5; i++ {
		if err := ep.Send(w.cliClk, midRequest, make([]byte, 16), data, origin, 0, nil); err != nil {
			t.Fatal(err)
		}
		if err := w.cliCtx.WaitCounter(w.cliClk, origin, uint64(i), 0); err != nil {
			t.Fatal(err)
		}
	}
	hits, misses := w.cliRT.RegCacheStats()
	if misses != 1 || hits != 4 {
		t.Fatalf("reg cache hits=%d misses=%d, want 4/1", hits, misses)
	}
}

func TestRegCacheDisabled(t *testing.T) {
	w := newWorld(t, Config{EagerThreshold: 512, DisableRegCache: true})
	w.installClientReply()
	ep := w.dial(t, Reliable)
	data := make([]byte, 16*1024)
	origin := w.cliRT.NewCounter()

	costs := make([]simnet.Duration, 0, 3)
	for i := 1; i <= 3; i++ {
		start := w.cliClk.Now()
		if err := ep.Send(w.cliClk, midRequest, make([]byte, 16), data, origin, 0, nil); err != nil {
			t.Fatal(err)
		}
		if err := w.cliCtx.WaitCounter(w.cliClk, origin, uint64(i), 0); err != nil {
			t.Fatal(err)
		}
		costs = append(costs, w.cliClk.Now()-start)
	}
	hits, _ := w.cliRT.RegCacheStats()
	if hits != 0 {
		t.Fatalf("cache disabled but scored %d hits", hits)
	}
	// With the cache on, later sends are cheaper than the first; with
	// it off they all pay registration. Verify via a cached twin.
	w2 := newWorld(t, Config{EagerThreshold: 512})
	w2.installClientReply()
	ep2 := w2.dial(t, Reliable)
	origin2 := w2.cliRT.NewCounter()
	var warm simnet.Duration
	for i := 1; i <= 3; i++ {
		start := w2.cliClk.Now()
		if err := ep2.Send(w2.cliClk, midRequest, make([]byte, 16), data, origin2, 0, nil); err != nil {
			t.Fatal(err)
		}
		if err := w2.cliCtx.WaitCounter(w2.cliClk, origin2, uint64(i), 0); err != nil {
			t.Fatal(err)
		}
		warm = w2.cliClk.Now() - start
	}
	if warm >= costs[2] {
		t.Fatalf("cached rendezvous (%v) not cheaper than uncached (%v)", warm, costs[2])
	}
}

func TestRegCacheEviction(t *testing.T) {
	w := newWorld(t, Config{EagerThreshold: 512, RegCacheEntries: 2})
	w.installClientReply()
	ep := w.dial(t, Reliable)
	bufs := [][]byte{
		make([]byte, 4096), make([]byte, 4096), make([]byte, 4096),
	}
	origin := w.cliRT.NewCounter()
	n := uint64(0)
	send := func(b []byte) {
		n++
		if err := ep.Send(w.cliClk, midRequest, make([]byte, 16), b, origin, 0, nil); err != nil {
			t.Fatal(err)
		}
		if err := w.cliCtx.WaitCounter(w.cliClk, origin, n, 0); err != nil {
			t.Fatal(err)
		}
	}
	send(bufs[0])
	send(bufs[1])
	send(bufs[2]) // evicts bufs[0]
	send(bufs[0]) // must re-register: a miss, not a stale hit
	hits, misses := w.cliRT.RegCacheStats()
	if misses != 4 {
		t.Fatalf("misses = %d, want 4 (eviction forced re-registration)", misses)
	}
	if hits != 0 {
		t.Fatalf("hits = %d, want 0", hits)
	}
}

func TestAtomicFetchAddOverEndpoint(t *testing.T) {
	w := newWorld(t, Config{})
	w.installClientReply()
	ep := w.dial(t, Reliable)
	buf := make([]byte, 16)
	win, err := w.srvRT.CreateWindow(buf, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer win.Close()
	desc := win.Desc()

	for i := uint64(0); i < 5; i++ {
		prior, err := ep.FetchAdd(w.cliClk, desc, 8, 10)
		if err != nil {
			t.Fatal(err)
		}
		if prior != i*10 {
			t.Fatalf("prior = %d, want %d", prior, i*10)
		}
	}
	if got := binary.LittleEndian.Uint64(buf[8:]); got != 50 {
		t.Fatalf("cell = %d, want 50", got)
	}
}

func TestAtomicCompareSwapOverEndpoint(t *testing.T) {
	w := newWorld(t, Config{})
	w.installClientReply()
	ep := w.dial(t, Reliable)
	buf := make([]byte, 8)
	binary.LittleEndian.PutUint64(buf, 1)
	win, err := w.srvRT.CreateWindow(buf, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer win.Close()
	desc := win.Desc()

	// Lock acquire: 1 -> 2 succeeds.
	if prior, err := ep.CompareSwap(w.cliClk, desc, 0, 1, 2); err != nil || prior != 1 {
		t.Fatalf("CAS = (%d, %v)", prior, err)
	}
	// Second acquire fails: prior shows the holder.
	if prior, err := ep.CompareSwap(w.cliClk, desc, 0, 1, 3); err != nil || prior != 2 {
		t.Fatalf("contended CAS = (%d, %v)", prior, err)
	}
	if got := binary.LittleEndian.Uint64(buf); got != 2 {
		t.Fatalf("cell = %d", got)
	}
	// Bounds check.
	if _, err := ep.FetchAdd(w.cliClk, desc, 4, 1); err != ErrWindowBounds {
		t.Fatalf("overflow = %v", err)
	}
	// UD endpoints cannot issue atomics.
	ud := w.dial(t, Unreliable)
	if _, err := ud.FetchAdd(w.cliClk, desc, 0, 1); err != ErrNeedReliable {
		t.Fatalf("UD atomic err = %v, want ErrNeedReliable", err)
	}
}

func TestSRQSharedPoolFlatFootprint(t *testing.T) {
	// §VII scalability: with SRQ the server's receive-buffer memory is
	// fixed, however many endpoints connect; per-endpoint windows grow
	// linearly.
	perEndpoint := func(cfg Config, clients int) int64 {
		w := newWorld(t, cfg)
		rc := w.installClientReply()
		_ = rc
		for i := 0; i < clients; i++ {
			ep := w.dial(t, Reliable)
			// Exercise each endpoint once.
			if err := w.request(t, ep, "srq", []byte("x"), 0); err != nil {
				t.Fatal(err)
			}
		}
		return w.srvBufBytes()
	}
	growA := perEndpoint(Config{Credits: 16}, 2)
	growB := perEndpoint(Config{Credits: 16}, 8)
	if growB <= growA {
		t.Fatalf("per-endpoint windows should grow with clients: %d then %d", growA, growB)
	}
	flatA := perEndpoint(Config{Credits: 16, UseSRQ: true}, 2)
	flatB := perEndpoint(Config{Credits: 16, UseSRQ: true}, 8)
	if flatA != flatB {
		t.Fatalf("SRQ footprint should be flat: %d then %d", flatA, flatB)
	}
	if flatB >= growB {
		t.Fatalf("SRQ footprint (%d) should undercut 8 windows (%d)", flatB, growB)
	}
}

func TestSRQTrafficIntegrity(t *testing.T) {
	w := newWorld(t, Config{UseSRQ: true, Credits: 8})
	rc := w.installClientReply()
	ep := w.dial(t, Reliable)
	for i := 0; i < 40; i++ {
		payload := []byte{byte(i), byte(i * 3)}
		if err := w.request(t, ep, "t", payload, 0); err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
		if !bytes.Equal(rc.data, payload) {
			t.Fatalf("op %d corrupted", i)
		}
	}
	// Large messages still rendezvous correctly through the SRQ path.
	big := make([]byte, 64*1024)
	for i := range big {
		big[i] = byte(i)
	}
	if err := w.request(t, ep, "big", big, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rc.data, big) {
		t.Fatal("large payload corrupted over SRQ")
	}
}

package ucr

import (
	"sync"

	"repro/internal/simnet"
	"repro/internal/verbs"
)

// regCache is the MVAPICH-style registration cache the paper's UCR
// inherits (§I-B cites the buffer-management research UCR reuses):
// pinning memory is expensive, and large-message workloads resend the
// same buffers, so registrations are kept and reused instead of being
// torn down after every rendezvous. A bounded FIFO keeps the pinned
// footprint in check.
//
// Like real registration caches, correctness relies on cached buffers
// not being freed and reallocated elsewhere while cached (production
// implementations hook the allocator for invalidation; here the cache
// key is the buffer's first-element address plus its length).
type regCache struct {
	mu      sync.Mutex
	entries map[regKey]*verbs.MR
	order   []regKey
	cap     int

	hits, misses uint64
}

type regKey struct {
	ptr *byte
	len int
}

func newRegCache(capEntries int) *regCache {
	return &regCache{entries: make(map[regKey]*verbs.MR), cap: capEntries}
}

func keyOf(buf []byte) regKey {
	return regKey{ptr: &buf[0], len: len(buf)}
}

// registerCached resolves an MR for buf: from the cache (free) or by
// registering (cost charged to clk) and caching, evicting FIFO-oldest
// entries beyond capacity. cached=true means the ack path must not
// deregister the MR.
func (rt *Runtime) registerCached(buf []byte, clk *simnet.VClock) (mr *verbs.MR, cached bool, err error) {
	if rt.cfg.DisableRegCache || len(buf) == 0 {
		mr, err = rt.hca.RegisterMR(rt.pd, buf, clk)
		return mr, false, err
	}
	rc := rt.regs
	k := keyOf(buf)
	rc.mu.Lock()
	if mr, ok := rc.entries[k]; ok {
		rc.hits++
		rc.mu.Unlock()
		return mr, true, nil
	}
	rc.misses++
	rc.mu.Unlock()

	mr, err = rt.hca.RegisterMR(rt.pd, buf, clk)
	if err != nil {
		return nil, false, err
	}
	rc.mu.Lock()
	rc.entries[k] = mr
	rc.order = append(rc.order, k)
	var evicted []*verbs.MR
	for len(rc.order) > rc.cap {
		old := rc.order[0]
		rc.order = rc.order[1:]
		if victim, ok := rc.entries[old]; ok {
			delete(rc.entries, old)
			evicted = append(evicted, victim)
		}
	}
	rc.mu.Unlock()
	for _, victim := range evicted {
		rt.hca.DeregisterMR(victim)
	}
	return mr, true, nil
}

// RegCacheStats reports cache effectiveness.
func (rt *Runtime) RegCacheStats() (hits, misses uint64) {
	rt.regs.mu.Lock()
	defer rt.regs.mu.Unlock()
	return rt.regs.hits, rt.regs.misses
}

package ucr

import (
	"sync"

	"repro/internal/simnet"
	"repro/internal/verbs"
)

// regCache is the MVAPICH-style registration cache the paper's UCR
// inherits (§I-B cites the buffer-management research UCR reuses):
// pinning memory is expensive, and large-message workloads resend the
// same buffers, so registrations are kept and reused instead of being
// torn down after every rendezvous. A bounded FIFO keeps the pinned
// footprint in check.
//
// Entries are refcounted: every in-flight rendezvous send holds a
// reference on its MR, so FIFO eviction of a busy entry only drops it
// from the lookup table — deregistration is deferred until the last
// in-flight operation releases it. Without this, evicting a hot entry
// mid-transfer would invalidate the rkey under a peer's RDMA read.
//
// Like real registration caches, correctness relies on cached buffers
// not being freed and reallocated elsewhere while cached (production
// implementations hook the allocator for invalidation; here the cache
// key is the buffer's first-element address plus its length).
type regCache struct {
	mu      sync.Mutex
	entries map[regKey]*regEntry
	byMR    map[*verbs.MR]*regEntry
	order   []regKey
	cap     int

	hits, misses   uint64
	deferredDeregs uint64
}

type regKey struct {
	ptr *byte
	len int
}

type regEntry struct {
	mr      *verbs.MR
	refs    int  // in-flight operations using this MR
	evicted bool // dropped from the FIFO; deregister once refs hit 0
}

func newRegCache(capEntries int) *regCache {
	return &regCache{
		entries: make(map[regKey]*regEntry),
		byMR:    make(map[*verbs.MR]*regEntry),
		cap:     capEntries,
	}
}

func keyOf(buf []byte) regKey {
	return regKey{ptr: &buf[0], len: len(buf)}
}

// registerCached resolves an MR for buf: from the cache (free) or by
// registering (cost charged to clk) and caching, evicting FIFO-oldest
// entries beyond capacity. cached=true means the caller must release
// the reference with releaseCached when its operation completes,
// instead of deregistering the MR itself.
func (rt *Runtime) registerCached(buf []byte, clk *simnet.VClock) (mr *verbs.MR, cached bool, err error) {
	if rt.cfg.DisableRegCache || len(buf) == 0 {
		mr, err = rt.hca.RegisterMR(rt.pd, buf, clk)
		return mr, false, err
	}
	rc := rt.regs
	k := keyOf(buf)
	rc.mu.Lock()
	if e, ok := rc.entries[k]; ok {
		rc.hits++
		e.refs++
		rc.mu.Unlock()
		return e.mr, true, nil
	}
	rc.misses++
	rc.mu.Unlock()

	mr, err = rt.hca.RegisterMR(rt.pd, buf, clk)
	if err != nil {
		return nil, false, err
	}
	rc.mu.Lock()
	e := &regEntry{mr: mr, refs: 1}
	rc.entries[k] = e
	rc.byMR[mr] = e
	rc.order = append(rc.order, k)
	var evicted []*verbs.MR
	for len(rc.order) > rc.cap {
		old := rc.order[0]
		rc.order = rc.order[1:]
		victim, ok := rc.entries[old]
		if !ok {
			continue
		}
		delete(rc.entries, old)
		victim.evicted = true
		if victim.refs == 0 {
			delete(rc.byMR, victim.mr)
			evicted = append(evicted, victim.mr)
		} else {
			rc.deferredDeregs++
		}
	}
	rc.mu.Unlock()
	for _, v := range evicted {
		rt.hca.DeregisterMR(v)
	}
	return mr, true, nil
}

// releaseCached drops one in-flight reference on a cache-owned MR. If
// the entry was FIFO-evicted while busy, the last release performs the
// deferred deregistration.
func (rt *Runtime) releaseCached(mr *verbs.MR) {
	rc := rt.regs
	rc.mu.Lock()
	e := rc.byMR[mr]
	if e == nil {
		rc.mu.Unlock()
		return
	}
	if e.refs > 0 {
		e.refs--
	}
	dereg := e.evicted && e.refs == 0
	if dereg {
		delete(rc.byMR, mr)
	}
	rc.mu.Unlock()
	if dereg {
		rt.hca.DeregisterMR(mr)
	}
}

// releaseRndzMR retires the MR behind one rendezvous send: cache-owned
// registrations drop their reference, one-shot registrations are
// deregistered outright.
func (rt *Runtime) releaseRndzMR(mr *verbs.MR, cached bool) {
	if cached {
		rt.releaseCached(mr)
		return
	}
	rt.hca.DeregisterMR(mr)
}

// RegCacheStats reports cache effectiveness.
func (rt *Runtime) RegCacheStats() (hits, misses uint64) {
	rt.regs.mu.Lock()
	defer rt.regs.mu.Unlock()
	return rt.regs.hits, rt.regs.misses
}

package ucr

import (
	"encoding/binary"

	"repro/internal/simnet"
	"repro/internal/verbs"
)

// One-sided put/get — the second half of UCR's API surface (§IV:
// "[UCR] provides interfaces for Active Messages as well as one-sided
// put/get operations"). A process exposes a Window over a buffer; peers
// holding the window's descriptor move data in or out with RDMA,
// without any software running at the window's owner.

// Window is a remote-accessible memory region.
type Window struct {
	rt  *Runtime
	mr  *verbs.MR
	buf []byte
}

// WindowDesc names a window across the network. It is fixed-size and
// serializable, so it can ride in an active-message header.
type WindowDesc struct {
	Addr uint64
	RKey uint32
	Len  int
}

// windowDescSize is the encoded size of a WindowDesc.
const windowDescSize = 8 + 4 + 8

// MaxWindowLen bounds a decoded window length. Descriptors arrive off
// the wire; a 64-bit length must not truncate into a negative int or
// admit a bound so large that offset+len arithmetic overflows.
const MaxWindowLen = 1 << 40

// Encode packs the descriptor.
func (d WindowDesc) Encode() []byte {
	b := make([]byte, windowDescSize)
	le := binary.LittleEndian
	le.PutUint64(b, d.Addr)
	le.PutUint32(b[8:], d.RKey)
	le.PutUint64(b[12:], uint64(d.Len))
	return b
}

// DecodeWindowDesc unpacks a descriptor. It rejects (rather than
// silently truncates) lengths that do not fit in an int or exceed
// MaxWindowLen.
func DecodeWindowDesc(b []byte) (WindowDesc, bool) {
	if len(b) < windowDescSize {
		return WindowDesc{}, false
	}
	le := binary.LittleEndian
	n := le.Uint64(b[12:])
	if n > MaxWindowLen {
		return WindowDesc{}, false
	}
	return WindowDesc{
		Addr: le.Uint64(b),
		RKey: le.Uint32(b[8:]),
		Len:  int(n),
	}, true
}

// CreateWindow registers buf for remote access. Registration cost is
// charged to clk (nil: setup time, free).
func (rt *Runtime) CreateWindow(buf []byte, clk *simnet.VClock) (*Window, error) {
	mr, err := rt.hca.RegisterMR(rt.pd, buf, clk)
	if err != nil {
		return nil, err
	}
	return &Window{rt: rt, mr: mr, buf: buf}, nil
}

// Desc returns the network-visible descriptor.
func (w *Window) Desc() WindowDesc {
	return WindowDesc{Addr: w.mr.VA(), RKey: w.mr.RKey(), Len: len(w.buf)}
}

// Bytes exposes the window's memory (owner side).
func (w *Window) Bytes() []byte { return w.buf }

// Close revokes remote access.
func (w *Window) Close() { w.rt.hca.DeregisterMR(w.mr) }

// Put writes local into the peer's window at offset. originCtr bumps
// when the transfer is complete and local is reusable.
func (ep *Endpoint) Put(clk *simnet.VClock, local []byte, dst WindowDesc, offset int, originCtr *Counter) error {
	return ep.oneSided(clk, verbs.OpRDMAWrite, local, dst, offset, originCtr)
}

// Get reads from the peer's window at offset into local. originCtr
// bumps when the data has arrived.
func (ep *Endpoint) Get(clk *simnet.VClock, local []byte, src WindowDesc, offset int, originCtr *Counter) error {
	return ep.oneSided(clk, verbs.OpRDMARead, local, src, offset, originCtr)
}

func (ep *Endpoint) oneSided(clk *simnet.VClock, op verbs.Opcode, local []byte, win WindowDesc, offset int, originCtr *Counter) error {
	if ep.failed {
		return ErrEndpointDown
	}
	if ep.rel != Reliable {
		return ErrNeedReliable
	}
	if offset < 0 || offset+len(local) > win.Len {
		return ErrWindowBounds
	}
	id := ep.ctx.wrID()
	ep.ctx.pendingOneSided[id] = oneSidedState{ep: ep, originCtr: originCtr, originCtrID: originCtr.ID()}
	err := ep.qp.PostSend(clk, verbs.SendWR{
		ID:         id,
		Op:         op,
		Local:      local,
		RemoteAddr: win.Addr + uint64(offset),
		RKey:       win.RKey,
	})
	if err != nil {
		delete(ep.ctx.pendingOneSided, id)
		ep.markFailed()
		return ErrEndpointDown
	}
	return nil
}

// FetchAdd atomically adds delta to the 8-byte word at offset in the
// peer's window and returns the prior value. The update is executed by
// the window owner's HCA — no remote software (the §III related-work
// services, lock managers among them, are built on exactly this).
// The call blocks, driving progress until the atomic completes.
func (ep *Endpoint) FetchAdd(clk *simnet.VClock, win WindowDesc, offset int, delta uint64) (uint64, error) {
	return ep.atomic(clk, verbs.AtomicWR{
		Op:  verbs.OpAtomicFetchAdd,
		Add: delta,
	}, win, offset)
}

// CompareSwap atomically replaces the 8-byte word at offset with swap
// if it equals compare, returning the prior value either way.
func (ep *Endpoint) CompareSwap(clk *simnet.VClock, win WindowDesc, offset int, compare, swap uint64) (uint64, error) {
	return ep.atomic(clk, verbs.AtomicWR{
		Op:      verbs.OpAtomicCmpSwap,
		Compare: compare,
		Swap:    swap,
	}, win, offset)
}

func (ep *Endpoint) atomic(clk *simnet.VClock, wr verbs.AtomicWR, win WindowDesc, offset int) (uint64, error) {
	if ep.failed {
		return 0, ErrEndpointDown
	}
	if ep.rel != Reliable {
		return 0, ErrNeedReliable
	}
	if offset < 0 || offset+8 > win.Len {
		return 0, ErrWindowBounds
	}
	var result uint64
	done := &Counter{} // local-only progress counter; never leaves this host
	id := ep.ctx.wrID()
	ep.ctx.pendingOneSided[id] = oneSidedState{ep: ep, originCtr: done, originCtrID: done.ID()}
	wr.ID = id
	wr.RemoteAddr = win.Addr + uint64(offset)
	wr.RKey = win.RKey
	wr.Result = &result
	if err := ep.qp.PostAtomic(clk, wr); err != nil {
		delete(ep.ctx.pendingOneSided, id)
		ep.markFailed()
		return 0, ErrEndpointDown
	}
	// Wait by hand rather than via WaitCounter: an error-status WC marks
	// the endpoint failed without bumping done, and on any exit without a
	// completion the pending entry must be removed, or a late completion
	// would bump a dead counter and the map would grow without bound.
	deadline := clk.Now() + simnet.Second
	for done.Value() < 1 {
		if ep.failed {
			delete(ep.ctx.pendingOneSided, id)
			return 0, ErrEndpointDown
		}
		ok, timedOut := ep.ctx.ProgressDeadline(clk, deadline, ep.ctx.rt.cfg.RealSilenceCap)
		if timedOut {
			delete(ep.ctx.pendingOneSided, id)
			return 0, ErrTimeout
		}
		if !ok {
			delete(ep.ctx.pendingOneSided, id)
			return 0, ErrClosed
		}
	}
	if ep.failed {
		return 0, ErrEndpointDown
	}
	return result, nil
}

// oneSidedState tracks an in-flight one-sided operation. originCtrID
// snapshots the counter's id at post time so a completion harvested
// after the counter was freed (and the struct reissued from the pool)
// cannot bump the new owner.
type oneSidedState struct {
	ep          *Endpoint
	originCtr   *Counter
	originCtrID CounterID
}

// onOneSidedComplete finishes a put/get.
func (c *Context) onOneSidedComplete(wc verbs.WC) bool {
	st, ok := c.pendingOneSided[wc.ID]
	if !ok {
		return false
	}
	delete(c.pendingOneSided, wc.ID)
	if wc.Status != verbs.StatusSuccess {
		st.ep.markFailed()
		return true
	}
	st.originCtr.bumpIf(st.originCtrID)
	return true
}

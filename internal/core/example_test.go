package core_test

import (
	"fmt"
	"log"

	"repro/internal/core"
)

// The smallest end-to-end flow: boot the QDR cluster, connect the
// paper's RDMA-capable client, cache and retrieve an item.
func ExampleNewSystem() {
	sys, err := core.NewSystem(core.Config{Cluster: "B"})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	client, err := sys.AddClient("UCR-IB")
	if err != nil {
		log.Fatal(err)
	}
	if err := client.MC.Set("user:42", []byte("profile-blob"), 0, 0); err != nil {
		log.Fatal(err)
	}
	value, _, _, err := client.MC.Get("user:42")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("user:42 -> %s\n", value)
	fmt.Printf("server items: %d\n", sys.ServerStats()["curr_items"])
	// Output:
	// user:42 -> profile-blob
	// server items: 1
}

// Sockets clients and UCR clients share one cache (§V-A compatibility).
func ExampleSystem_AddClient() {
	sys, err := core.NewSystem(core.Config{Cluster: "A"})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	rdma, _ := sys.AddClient("UCR-IB")
	sockets, _ := sys.AddClient("10GigE-TOE")

	if err := rdma.MC.Set("shared", []byte("one-cache"), 0, 0); err != nil {
		log.Fatal(err)
	}
	v, _, _, err := sockets.MC.Get("shared")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sockets client reads: %s\n", v)
	// Output:
	// sockets client reads: one-cache
}

// Package core is the assembled system — the paper's contribution in
// one handle: Memcached made RDMA-capable through UCR, deployable on
// either of the simulated testbeds next to the unmodified sockets
// baselines it is evaluated against.
//
// A System is one server process plus any number of clients:
//
//	sys, err := core.NewSystem(core.Config{Cluster: "B"})
//	defer sys.Close()
//	c, err := sys.AddClient("UCR-IB")
//	err = c.MC.Set("key", []byte("value"), 0, 0)
//	v, _, _, err := c.MC.Get("key")
//
// Every client runs on its own simulated node with its own virtual
// clock (c.Clock), so latency is read directly off the clock around an
// operation. Transports: "UCR-IB" (the paper's design), "IPoIB", "SDP",
// "10GigE-TOE", "1GigE" (availability depends on the cluster profile).
package core

import (
	"fmt"
	"sync"

	"repro/internal/cluster"
	"repro/internal/mcclient"
)

// Config selects the testbed and server shape.
type Config struct {
	// Cluster is "A" (DDR + 10GigE TOE + 1GigE) or "B" (QDR). Default "A".
	Cluster string
	// Workers is the server worker-thread count (default 4).
	Workers int
	// MemoryBytes is the cache size (default 512 MB).
	MemoryBytes int64
	// EagerThreshold overrides UCR's one-transaction cut-over (default
	// 8 KB, §V).
	EagerThreshold int
	// Behaviors is applied to every client this System creates.
	Behaviors mcclient.Behaviors
}

// System is a running deployment: one server, N clients.
type System struct {
	// Deployment exposes the underlying testbed for advanced use
	// (direct access to fabrics, the verbs CM, the server process).
	Deployment *cluster.Deployment

	cfg Config

	mu      sync.Mutex
	clients []*cluster.Client
}

// NewSystem boots a server on the chosen cluster, serving all of the
// profile's transports at once (§V-A compatibility: sockets clients and
// UCR clients share one process and one cache).
func NewSystem(cfg Config) (*System, error) {
	if cfg.Cluster == "" {
		cfg.Cluster = "A"
	}
	if cfg.Cluster != "A" && cfg.Cluster != "B" {
		return nil, fmt.Errorf("core: unknown cluster %q (want A or B)", cfg.Cluster)
	}
	if cfg.Behaviors == (mcclient.Behaviors{}) {
		cfg.Behaviors = mcclient.DefaultBehaviors()
	}
	p := cluster.ProfileByName(cfg.Cluster)
	d := cluster.New(p, cluster.Options{
		ServerWorkers:  cfg.Workers,
		MemoryLimit:    cfg.MemoryBytes,
		EagerThreshold: cfg.EagerThreshold,
	})
	return &System{Deployment: d, cfg: cfg}, nil
}

// Transports lists the transports this system's cluster offers.
func (s *System) Transports() []string {
	out := make([]string, 0, len(s.Deployment.Profile.Transports))
	for _, t := range s.Deployment.Profile.Transports {
		out = append(out, string(t))
	}
	return out
}

// AddClient connects a new client node over the named transport.
func (s *System) AddClient(transport string) (*cluster.Client, error) {
	c, err := s.Deployment.NewClient(cluster.Transport(transport), s.cfg.Behaviors)
	if err != nil {
		return nil, err
	}
	s.track(c)
	return c, nil
}

// AddClientUD connects a UCR client over an unreliable (UD) endpoint —
// the paper's §VII scaling extension.
func (s *System) AddClientUD() (*cluster.Client, error) {
	c, err := s.Deployment.NewClientUD(s.cfg.Behaviors)
	if err != nil {
		return nil, err
	}
	s.track(c)
	return c, nil
}

func (s *System) track(c *cluster.Client) {
	s.mu.Lock()
	s.clients = append(s.clients, c)
	s.mu.Unlock()
}

// ServerStats snapshots the server engine's counters.
func (s *System) ServerStats() map[string]uint64 {
	st := s.Deployment.Server.Store().Stats()
	return map[string]uint64{
		"cmd_get":     st.CmdGet,
		"cmd_set":     st.CmdSet,
		"get_hits":    st.GetHits,
		"get_misses":  st.GetMisses,
		"evictions":   st.Evictions,
		"expired":     st.Expired,
		"curr_items":  st.CurrItems,
		"total_items": st.TotalItems,
		"bytes":       st.Bytes,
	}
}

// Close tears down every client and the server.
func (s *System) Close() {
	s.mu.Lock()
	clients := s.clients
	s.clients = nil
	s.mu.Unlock()
	for _, c := range clients {
		c.Close()
	}
	s.Deployment.Close()
}

package core

import (
	"bytes"
	"testing"

	"repro/internal/mcclient"
)

func TestSystemLifecycle(t *testing.T) {
	sys, err := NewSystem(Config{Cluster: "B"})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()

	c, err := sys.AddClient("UCR-IB")
	if err != nil {
		t.Fatal(err)
	}
	val := bytes.Repeat([]byte("x"), 1000)
	if err := c.MC.Set("hello", val, 1, 0); err != nil {
		t.Fatal(err)
	}
	got, flags, _, err := c.MC.Get("hello")
	if err != nil || !bytes.Equal(got, val) || flags != 1 {
		t.Fatalf("Get = (%d bytes, %d, %v)", len(got), flags, err)
	}

	stats := sys.ServerStats()
	if stats["cmd_set"] != 1 || stats["get_hits"] != 1 || stats["curr_items"] != 1 {
		t.Fatalf("stats = %v", stats)
	}
}

func TestSystemDefaultsAndValidation(t *testing.T) {
	if _, err := NewSystem(Config{Cluster: "Z"}); err == nil {
		t.Fatal("bad cluster accepted")
	}
	sys, err := NewSystem(Config{}) // defaults to A
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	trs := sys.Transports()
	if len(trs) != 5 {
		t.Fatalf("cluster A transports = %v", trs)
	}
	if _, err := sys.AddClient("no-such-transport"); err == nil {
		t.Fatal("unknown transport accepted")
	}
}

func TestSystemMixedClients(t *testing.T) {
	sys, err := NewSystem(Config{Cluster: "A", Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	writer, err := sys.AddClient("UCR-IB")
	if err != nil {
		t.Fatal(err)
	}
	reader, err := sys.AddClient("SDP")
	if err != nil {
		t.Fatal(err)
	}
	if err := writer.MC.Set("shared", []byte("one-cache"), 0, 0); err != nil {
		t.Fatal(err)
	}
	v, _, _, err := reader.MC.Get("shared")
	if err != nil || string(v) != "one-cache" {
		t.Fatalf("cross-transport read = (%q, %v)", v, err)
	}
}

func TestSystemUDClient(t *testing.T) {
	sys, err := NewSystem(Config{Cluster: "B"})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	c, err := sys.AddClientUD()
	if err != nil {
		t.Fatal(err)
	}
	if err := c.MC.Set("dg", []byte("datagram"), 0, 0); err != nil {
		t.Fatal(err)
	}
	v, _, _, err := c.MC.Get("dg")
	if err != nil || string(v) != "datagram" {
		t.Fatalf("UD get = (%q, %v)", v, err)
	}
	// UD cannot carry values beyond one MTU.
	if err := c.MC.Set("big", make([]byte, 64*1024), 0, 0); err == nil {
		t.Fatal("oversized UD set should fail")
	}
}

func TestSystemBehaviorsApplied(t *testing.T) {
	b := mcclient.DefaultBehaviors()
	b.Distribution = mcclient.DistKetama
	sys, err := NewSystem(Config{Cluster: "A", Behaviors: b})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	c, err := sys.AddClient("10GigE-TOE")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.MC.Set("k", []byte("v"), 0, 0); err != nil {
		t.Fatal(err)
	}
}

package sockstream

import (
	"bytes"
	"fmt"
	"io"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/simnet"
)

type env struct {
	nw   *simnet.Network
	fab  *simnet.Fabric
	prov *Provider
	a, b *simnet.Node
}

func newEnv(t *testing.T) *env {
	t.Helper()
	e := &env{}
	e.nw = simnet.NewNetwork()
	e.a = e.nw.AddNode("a")
	e.b = e.nw.AddNode("b")
	e.fab = e.nw.AddFabric(simnet.FabricSpec{
		Name:            "eth",
		LinkBytesPerSec: 1e9,
		Propagation:     500,
		SwitchDelay:     200,
	})
	e.fab.Attach(e.a)
	e.fab.Attach(e.b)
	e.prov = &Provider{
		Name:            "test-tcp",
		Fabric:          e.fab,
		SendSyscall:     1000,
		RecvSyscall:     1500,
		SendCopies:      1,
		RecvCopies:      1,
		CopyBytesPerSec: 2e9,
		SegmentSize:     1460,
		PerSegment:      100,
		WireHeader:      66,
		ConnSetup:       2000,
		NagleDelay:      40 * simnet.Microsecond,
	}
	return e
}

// connPair dials a→b and returns both conns with fresh clocks.
func connPair(t *testing.T, e *env) (cli, srv *Conn) {
	t.Helper()
	lis, err := e.prov.Listen(e.b, "svc")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	srvClk := simnet.NewVClock(0)
	done := make(chan *Conn, 1)
	go func() {
		c, ok := lis.Accept(srvClk)
		if !ok {
			done <- nil
			return
		}
		done <- c
	}()
	cliClk := simnet.NewVClock(0)
	cli, err = e.prov.Dial(e.a, e.b, "svc", cliClk, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	srv = <-done
	if srv == nil {
		t.Fatal("accept failed")
	}
	cli.NoDelay = true
	srv.NoDelay = true
	return cli, srv
}

func TestDialRefused(t *testing.T) {
	e := newEnv(t)
	clk := simnet.NewVClock(0)
	if _, err := e.prov.Dial(e.a, e.b, "nobody", clk, time.Second); err != ErrRefusedConn {
		t.Fatalf("err = %v, want ErrRefusedConn", err)
	}
}

func TestDialTimeout(t *testing.T) {
	e := newEnv(t)
	lis, err := e.prov.Listen(e.b, "svc")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	clk := simnet.NewVClock(0)
	if _, err := e.prov.Dial(e.a, e.b, "svc", clk, 20*time.Millisecond); err != ErrDialTimeout {
		t.Fatalf("err = %v, want ErrDialTimeout", err)
	}
}

func TestDialChargesHandshake(t *testing.T) {
	e := newEnv(t)
	lis, _ := e.prov.Listen(e.b, "svc")
	defer lis.Close()
	go func() {
		clk := simnet.NewVClock(0)
		lis.Accept(clk)
	}()
	clk := simnet.NewVClock(0)
	if _, err := e.prov.Dial(e.a, e.b, "svc", clk, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	// At minimum: one RTT (2×(prop+switch) = 1400) + ConnSetup 2000.
	if clk.Now() < 3400 {
		t.Fatalf("handshake charged only %v", clk.Now())
	}
}

func TestDuplicateListen(t *testing.T) {
	e := newEnv(t)
	lis, err := e.prov.Listen(e.b, "svc")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	if _, err := e.prov.Listen(e.b, "svc"); err == nil {
		t.Fatal("duplicate Listen should fail")
	}
	// Same service on a different node is fine.
	l2, err := e.prov.Listen(e.a, "svc")
	if err != nil {
		t.Fatal(err)
	}
	l2.Close()
}

func TestWriteReadRoundtrip(t *testing.T) {
	e := newEnv(t)
	cli, srv := connPair(t, e)
	msg := []byte("GET foo\r\n")
	if n, err := cli.Write(msg); err != nil || n != len(msg) {
		t.Fatalf("Write = (%d, %v)", n, err)
	}
	buf := make([]byte, 64)
	n, err := srv.Read(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf[:n], msg) {
		t.Fatalf("read %q", buf[:n])
	}
	// The receiver's clock advanced past the arrival time.
	if srv.Clock().Now() <= cli.Clock().Now()-2000 {
		t.Fatalf("clocks implausible: cli=%v srv=%v", cli.Clock().Now(), srv.Clock().Now())
	}
}

func TestLargeWriteSegmentsAndReassembles(t *testing.T) {
	e := newEnv(t)
	cli, srv := connPair(t, e)
	data := make([]byte, 100_000)
	for i := range data {
		data[i] = byte(i * 31)
	}
	if _, err := cli.Write(data); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 0, len(data))
	buf := make([]byte, 8192)
	for len(got) < len(data) {
		n, err := srv.Read(buf)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, buf[:n]...)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("reassembled data differs")
	}
}

func TestStreamIntegrityProperty(t *testing.T) {
	e := newEnv(t)
	cli, srv := connPair(t, e)
	f := func(chunks [][]byte) bool {
		var want []byte
		for _, ch := range chunks {
			if len(ch) > 4000 {
				ch = ch[:4000]
			}
			want = append(want, ch...)
			if len(ch) == 0 {
				continue
			}
			if _, err := cli.Write(ch); err != nil {
				return false
			}
		}
		got := make([]byte, 0, len(want))
		buf := make([]byte, 1024)
		for len(got) < len(want) {
			n, err := srv.Read(buf)
			if err != nil {
				return false
			}
			got = append(got, buf[:n]...)
		}
		return bytes.Equal(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestNagleDelaysSmallSegments(t *testing.T) {
	e := newEnv(t)

	lat := func(noDelay bool) simnet.Time {
		cli, srv := connPair(t, e)
		cli.NoDelay = noDelay
		start := cli.Clock().Now()
		if _, err := cli.Write([]byte("tiny")); err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, 16)
		if _, err := srv.Read(buf); err != nil {
			t.Fatal(err)
		}
		_ = start
		return srv.Clock().Now() - start
	}
	withNagle := lat(false)
	withoutNagle := lat(true)
	if withNagle < withoutNagle+30*simnet.Microsecond {
		t.Fatalf("Nagle did not delay: nagle=%v nodelay=%v", withNagle, withoutNagle)
	}
}

func TestCopyAndSyscallCosts(t *testing.T) {
	e := newEnv(t)
	cli, srv := connPair(t, e)
	base := cli.Clock().Now()
	payload := make([]byte, 1000)
	if _, err := cli.Write(payload); err != nil {
		t.Fatal(err)
	}
	// Send side: syscall 1000 + copy 1000B@2GB/s=500 + PerSegment 100.
	sendCost := cli.Clock().Now() - base
	if sendCost != 1600 {
		t.Fatalf("send cost = %v, want 1600", sendCost)
	}
	srvBase := srv.Clock().Now()
	buf := make([]byte, 2000)
	if _, err := srv.Read(buf); err != nil {
		t.Fatal(err)
	}
	// Receive side: arrival sync (dominates) + recv syscall + copy.
	if srv.Clock().Now()-srvBase < 1500+500 {
		t.Fatalf("recv side charged too little: %v", srv.Clock().Now()-srvBase)
	}
}

func TestJitterApplied(t *testing.T) {
	e := newEnv(t)
	e.prov.Jitter = func(r *simnet.Rand) simnet.Duration {
		return 10 * simnet.Millisecond // huge, unmistakable
	}
	cli, srv := connPair(t, e)
	if _, err := cli.Write([]byte("j")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4)
	if _, err := srv.Read(buf); err != nil {
		t.Fatal(err)
	}
	if srv.Clock().Now() < 10*simnet.Millisecond {
		t.Fatalf("jitter missing: srv clock %v", srv.Clock().Now())
	}
}

func TestCloseEOF(t *testing.T) {
	e := newEnv(t)
	cli, srv := connPair(t, e)
	if _, err := cli.Write([]byte("last words")); err != nil {
		t.Fatal(err)
	}
	if err := cli.Close(); err != nil {
		t.Fatal(err)
	}
	// Pending data still readable...
	buf := make([]byte, 64)
	n, err := srv.Read(buf)
	if err != nil || string(buf[:n]) != "last words" {
		t.Fatalf("Read = (%q, %v)", buf[:n], err)
	}
	// ...then EOF.
	if _, err := srv.Read(buf); err != io.EOF {
		t.Fatalf("err = %v, want io.EOF", err)
	}
	// Writing on a closed conn errors.
	if _, err := cli.Write([]byte("x")); err != ErrClosed {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
	if _, err := srv.Write([]byte("x")); err != ErrClosed {
		t.Fatalf("peer write err = %v, want ErrClosed", err)
	}
	cli.Close() // idempotent
}

func TestWriteToFailedPeer(t *testing.T) {
	e := newEnv(t)
	cli, _ := connPair(t, e)
	e.b.Fail()
	if _, err := cli.Write([]byte("x")); err != ErrUnreachable {
		t.Fatalf("err = %v, want ErrUnreachable", err)
	}
}

func TestReadDeadline(t *testing.T) {
	e := newEnv(t)
	cli, srv := connPair(t, e)
	clk := srv.Clock()
	buf := make([]byte, 16)
	// Nothing coming: virtual deadline fires via real cap.
	deadline := clk.Now() + 100*simnet.Microsecond
	if _, err := srv.ReadDeadline(buf, deadline, 20*time.Millisecond); err != ErrReadTimeout {
		t.Fatalf("err = %v, want ErrReadTimeout", err)
	}
	if clk.Now() != deadline {
		t.Fatalf("clock = %v, want advanced to deadline %v", clk.Now(), deadline)
	}
	// Data already buffered: no timeout.
	if _, err := cli.Write([]byte("hi")); err != nil {
		t.Fatal(err)
	}
	n, err := srv.ReadDeadline(buf, clk.Now()+simnet.Second, time.Second)
	if err != nil || string(buf[:n]) != "hi" {
		t.Fatalf("ReadDeadline = (%q, %v)", buf[:n], err)
	}
}

func TestSetClock(t *testing.T) {
	e := newEnv(t)
	cli, srv := connPair(t, e)
	worker := simnet.NewVClock(12345)
	srv.SetClock(worker)
	if srv.Clock() != worker {
		t.Fatal("SetClock did not take")
	}
	if _, err := cli.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4)
	if _, err := srv.Read(buf); err != nil {
		t.Fatal(err)
	}
	if worker.Now() <= 12345 {
		t.Fatal("read did not charge the new clock")
	}
}

func TestBuffered(t *testing.T) {
	e := newEnv(t)
	cli, srv := connPair(t, e)
	if srv.Buffered() != 0 {
		t.Fatalf("Buffered = %d, want 0", srv.Buffered())
	}
	if _, err := cli.Write(make([]byte, 3000)); err != nil {
		t.Fatal(err)
	}
	if srv.Buffered() == 0 {
		t.Fatal("Buffered should see in-flight segments")
	}
	buf := make([]byte, 1000)
	if _, err := srv.Read(buf); err != nil {
		t.Fatal(err)
	}
	if srv.Buffered() == 0 {
		t.Fatal("carry-over should remain buffered")
	}
}

func TestZeroLengthRead(t *testing.T) {
	e := newEnv(t)
	_, srv := connPair(t, e)
	if n, err := srv.Read(nil); n != 0 || err != nil {
		t.Fatalf("Read(nil) = (%d, %v)", n, err)
	}
}

func TestAggregateBoundedByWire(t *testing.T) {
	// Physics check: many senders into one receiver cannot exceed the
	// receiver's downlink bandwidth — their transfers serialize.
	nw := simnet.NewNetwork()
	server := nw.AddNode("server")
	fab := nw.AddFabric(simnet.FabricSpec{
		Name:            "eth",
		LinkBytesPerSec: 1e8, // 100 MB/s
		Propagation:     500,
	})
	fab.Attach(server)
	prov := &Provider{Name: "wire", Fabric: fab, SegmentSize: 8192}
	lis, err := prov.Listen(server, "svc")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()

	const senders = 4
	const perSender = 1 << 20 // 1 MB each
	srvConns := make(chan *Conn, senders)
	go func() {
		clk := simnet.NewVClock(0)
		for i := 0; i < senders; i++ {
			c, ok := lis.Accept(clk)
			if !ok {
				return
			}
			srvConns <- c
		}
	}()

	var conns []*Conn
	for i := 0; i < senders; i++ {
		node := nw.AddNode(fmt.Sprintf("sender%d", i))
		fab.Attach(node)
		c, err := prov.Dial(node, server, "svc", simnet.NewVClock(0), 5*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		c.NoDelay = true
		conns = append(conns, c)
	}
	payload := make([]byte, perSender)
	for _, c := range conns {
		if _, err := c.Write(payload); err != nil {
			t.Fatal(err)
		}
	}
	// Drain everything server-side; the last byte's arrival bounds the
	// aggregate rate.
	var maxArrive simnet.Time
	for i := 0; i < senders; i++ {
		sc := <-srvConns
		clk := simnet.NewVClock(0)
		sc.SetClock(clk)
		buf := make([]byte, 64*1024)
		got := 0
		for got < perSender {
			n, err := sc.Read(buf)
			if err != nil {
				t.Fatal(err)
			}
			got += n
		}
		if clk.Now() > maxArrive {
			maxArrive = clk.Now()
		}
	}
	total := float64(senders * perSender)
	rate := total / maxArrive.Seconds()
	if rate > 1.05e8 {
		t.Fatalf("aggregate rate %.0f B/s exceeds the 1e8 B/s downlink", rate)
	}
	// And it should be near the wire limit, not far below.
	if rate < 0.5e8 {
		t.Fatalf("aggregate rate %.0f B/s implausibly low", rate)
	}
}

// Package sockstream implements byte-stream sockets over the simulated
// fabrics — the transports the paper runs *unmodified* Memcached on:
// kernel TCP/IP over 1GigE, hardware-offloaded TCP (TOE) over 10GigE,
// IP-over-InfiniBand (IPoIB), and the Sockets Direct Protocol (SDP).
//
// Each provider is a cost model for the same stream machinery. The
// knobs capture the effects the paper attributes the sockets penalty to:
// per-call syscall/interrupt overheads (no OS bypass), intermediate
// memory copies (byte-stream vs memory semantics), per-segment protocol
// processing, and — for SDP on QDR — the jitter the authors observed
// and could not eliminate (§VI-B).
package sockstream

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/simnet"
)

// Provider is one socket stack: a fabric plus the software cost model
// layered over it.
type Provider struct {
	// Name identifies the stack ("1GigE", "10GigE-TOE", "IPoIB", "SDP").
	Name string
	// Fabric carries the bytes.
	Fabric *simnet.Fabric

	// SendSyscall is charged once per Write call (send(2) entry, or the
	// lighter doorbell for offloaded stacks). It occupies the calling
	// thread.
	SendSyscall simnet.Duration
	// SendDeferred is transmit-path kernel work that happens after the
	// syscall returns (softirq / NIC queueing on another core): it delays
	// the segment but does not occupy the caller.
	SendDeferred simnet.Duration
	// RecvSyscall is charged once per Read call that has to take data
	// from the network (recv(2) entry and wakeup). It occupies the
	// reading thread.
	RecvSyscall simnet.Duration
	// RecvDeferred is receive-path kernel work done in interrupt context
	// on arrival (protocol processing in softirq): it delays delivery but
	// does not occupy the reader — which is why a kernel stack's latency
	// penalty is bigger than its throughput penalty.
	RecvDeferred simnet.Duration
	// SendCopies / RecvCopies count intermediate memory copies per byte
	// on each side (kernel TCP: user→skb and skb→NIC, etc.).
	SendCopies int
	RecvCopies int
	// CopyBytesPerSec is memcpy bandwidth for those copies.
	CopyBytesPerSec float64
	// SegmentSize is the MSS / SDP private-buffer size.
	SegmentSize int
	// PerSegment is protocol processing per emitted segment.
	PerSegment simnet.Duration
	// WireHeader is per-segment on-wire framing overhead in bytes.
	WireHeader int
	// ConnSetup is extra handshake cost charged to the dialer.
	ConnSetup simnet.Duration
	// NagleDelay delays small segments when TCP_NODELAY is off
	// (the paper sets MEMCACHED_BEHAVIOR_TCP_NODELAY=1 to avoid it).
	NagleDelay simnet.Duration
	// Jitter, if set, returns an extra per-segment delay (SDP on QDR).
	Jitter func(*simnet.Rand) simnet.Duration
	// RTOMin is the stack's minimum retransmission timeout: how long a
	// lost segment waits before its first retransmission (Linux TCP
	// floors this at 200 ms, which is why loss devastates kernel-stack
	// tail latency). Doubles per retry (exponential backoff).
	RTOMin simnet.Duration
	// RTORetries bounds retransmission attempts per segment before the
	// connection is declared unreachable.
	RTORetries int

	retransmits atomic.Uint64

	mu        sync.Mutex
	listeners map[string]*simnet.Mailbox[*dialReq]
}

// Stream errors.
var (
	ErrClosed      = errors.New("sockstream: connection closed")
	ErrRefusedConn = errors.New("sockstream: connection refused")
	ErrDialTimeout = errors.New("sockstream: dial timed out")
	ErrReadTimeout = errors.New("sockstream: read timed out")
	ErrUnreachable = errors.New("sockstream: peer unreachable")
)

func (p *Provider) init() {
	if p.SegmentSize <= 0 {
		p.SegmentSize = 1460
	}
	if p.CopyBytesPerSec <= 0 {
		p.CopyBytesPerSec = 4e9
	}
	if p.RTOMin <= 0 {
		p.RTOMin = 200 * simnet.Millisecond // Linux TCP_RTO_MIN
	}
	if p.RTORetries <= 0 {
		p.RTORetries = 8
	}
	if p.listeners == nil {
		p.listeners = make(map[string]*simnet.Mailbox[*dialReq])
	}
}

// Retransmits reports how many segments this provider's connections
// have retransmitted (both directions share the provider's counter).
func (p *Provider) Retransmits() uint64 { return p.retransmits.Load() }

func (p *Provider) String() string { return fmt.Sprintf("Provider(%s)", p.Name) }

// Clone returns a fresh provider with the same cost model, seated on
// fab, with its own (empty) listener table. Profiles are shared
// templates; deployments clone them.
func (p *Provider) Clone(fab *simnet.Fabric) *Provider {
	return &Provider{
		Name:            p.Name,
		Fabric:          fab,
		SendSyscall:     p.SendSyscall,
		SendDeferred:    p.SendDeferred,
		RecvSyscall:     p.RecvSyscall,
		RecvDeferred:    p.RecvDeferred,
		SendCopies:      p.SendCopies,
		RecvCopies:      p.RecvCopies,
		CopyBytesPerSec: p.CopyBytesPerSec,
		SegmentSize:     p.SegmentSize,
		PerSegment:      p.PerSegment,
		WireHeader:      p.WireHeader,
		ConnSetup:       p.ConnSetup,
		NagleDelay:      p.NagleDelay,
		Jitter:          p.Jitter,
		RTOMin:          p.RTOMin,
		RTORetries:      p.RTORetries,
	}
}

// segment is one unit in flight.
type segment struct {
	data   []byte
	arrive simnet.Time
}

type dialReq struct {
	remote *endpoint // dialer's endpoint
	arrive simnet.Time
	reply  *simnet.Mailbox[dialReply]
}

type dialReply struct {
	remote *endpoint
	sentAt simnet.Time
	err    error
}

// Listener accepts stream connections for a service.
type Listener struct {
	p       *Provider
	node    *simnet.Node
	service string
	queue   *simnet.Mailbox[*dialReq]
}

// Listen binds a service name on a node.
func (p *Provider) Listen(node *simnet.Node, service string) (*Listener, error) {
	p.init()
	key := node.Name() + "/" + service
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, dup := p.listeners[key]; dup {
		return nil, fmt.Errorf("sockstream: %s already bound on %s", service, node.Name())
	}
	q := simnet.NewMailbox[*dialReq]()
	p.listeners[key] = q
	return &Listener{p: p, node: node, service: service, queue: q}, nil
}

// Accept blocks for the next connection; clk is synchronized with the
// SYN's arrival. ok=false means the listener is closed.
func (l *Listener) Accept(clk *simnet.VClock) (*Conn, bool) {
	req, ok := l.queue.Recv()
	if !ok {
		return nil, false
	}
	return l.complete(req, clk), true
}

// AcceptTimeout is Accept with a real-time cap for shutdown paths.
func (l *Listener) AcceptTimeout(clk *simnet.VClock, realCap time.Duration) (*Conn, bool) {
	req, ok, _ := l.queue.RecvTimeout(realCap)
	if !ok {
		return nil, false
	}
	return l.complete(req, clk), true
}

func (l *Listener) complete(req *dialReq, clk *simnet.VClock) *Conn {
	clk.AdvanceTo(req.arrive)
	local := newEndpoint(l.p, l.node)
	local.peer = req.remote
	req.remote.peer = local
	req.reply.Put(dialReply{remote: local, sentAt: clk.Now()})
	return &Conn{ep: local, clk: clk}
}

// Close unbinds the service and wakes pending Accepts.
func (l *Listener) Close() {
	key := l.node.Name() + "/" + l.service
	l.p.mu.Lock()
	delete(l.p.listeners, key)
	l.p.mu.Unlock()
	l.queue.Close()
}

// Dial connects from a node to a service on a remote node. The SYN/ACK
// round trip plus ConnSetup is charged to clk. realCap bounds the wait
// in real time (it fires only if the acceptor never comes).
func (p *Provider) Dial(from, to *simnet.Node, service string, clk *simnet.VClock, realCap time.Duration) (*Conn, error) {
	p.init()
	key := to.Name() + "/" + service
	p.mu.Lock()
	q := p.listeners[key]
	p.mu.Unlock()
	if q == nil {
		return nil, ErrRefusedConn
	}
	arrive, err := p.Fabric.Deliver(from, to, clk.Now(), 64+p.WireHeader)
	if err != nil {
		return nil, ErrUnreachable
	}
	local := newEndpoint(p, from)
	req := &dialReq{remote: local, arrive: arrive, reply: simnet.NewMailbox[dialReply]()}
	q.Put(req)
	rep, ok, timedOut := req.reply.RecvTimeout(realCap)
	if timedOut {
		return nil, ErrDialTimeout
	}
	if !ok {
		return nil, ErrRefusedConn
	}
	if rep.err != nil {
		return nil, rep.err
	}
	back, err := p.Fabric.Deliver(to, from, rep.sentAt, 64+p.WireHeader)
	if err != nil {
		return nil, ErrUnreachable
	}
	clk.AdvanceTo(back)
	clk.Advance(p.ConnSetup)
	return &Conn{ep: local, clk: clk}, nil
}

// endpoint is one half of a connection.
type endpoint struct {
	p    *Provider
	node *simnet.Node
	in   *simnet.Mailbox[segment]
	rng  *simnet.Rand

	mu     sync.Mutex
	peer   *endpoint
	closed bool
}

var endpointSeed struct {
	sync.Mutex
	n uint64
}

func newEndpoint(p *Provider, node *simnet.Node) *endpoint {
	endpointSeed.Lock()
	endpointSeed.n++
	seed := endpointSeed.n
	endpointSeed.Unlock()
	return &endpoint{p: p, node: node, in: simnet.NewMailbox[segment](), rng: simnet.NewRand(seed)}
}

// Conn is the user-visible stream handle. It satisfies io.ReadWriteCloser
// so protocol codecs (bufio, etc.) can sit on top unchanged. A Conn is
// owned by one actor; SetClock re-seats it (a server hands an accepted
// conn to a worker thread, which then charges its own virtual clock).
type Conn struct {
	ep  *endpoint
	clk *simnet.VClock

	rbuf []byte // carry-over from a partially consumed segment

	// NoDelay disables Nagle (the paper's client sets this behaviour).
	NoDelay bool
}

var _ io.ReadWriteCloser = (*Conn)(nil)

// SetClock re-seats the connection onto a different actor's clock.
func (c *Conn) SetClock(clk *simnet.VClock) { c.clk = clk }

// Clock reports the owning clock.
func (c *Conn) Clock() *simnet.VClock { return c.clk }

// LocalNode reports the node this end lives on.
func (c *Conn) LocalNode() *simnet.Node { return c.ep.node }

// Provider reports the socket stack.
func (c *Conn) Provider() *Provider { return c.ep.p }

// Write sends len(b) bytes, charging syscall, copy and per-segment
// costs, and stamping each segment with its computed arrival time.
// It never blocks for window space (closed-loop request/response
// workloads keep streams shallow; see package docs).
func (c *Conn) Write(b []byte) (int, error) {
	ep := c.ep
	ep.mu.Lock()
	peer := ep.peer
	closed := ep.closed
	ep.mu.Unlock()
	if closed {
		return 0, ErrClosed
	}
	if peer == nil {
		return 0, ErrClosed
	}
	p := ep.p
	c.clk.Advance(p.SendSyscall)
	if p.SendCopies > 0 {
		c.clk.Advance(simnet.BytesDuration(len(b)*p.SendCopies, p.CopyBytesPerSec))
	}
	written := 0
	for written < len(b) {
		n := len(b) - written
		if n > p.SegmentSize {
			n = p.SegmentSize
		}
		chunk := make([]byte, n)
		copy(chunk, b[written:written+n])
		c.clk.Advance(p.PerSegment)
		sendAt := c.clk.Now()
		if !c.NoDelay && n < p.SegmentSize && p.NagleDelay > 0 {
			// Nagle: a small trailing segment waits for the delayed ACK.
			sendAt += p.NagleDelay
		}
		if p.Jitter != nil {
			sendAt += p.Jitter(ep.rng)
		}
		arrive, outcome, err := p.Fabric.DeliverFaulty(ep.node, peer.node, sendAt+p.SendDeferred, n+p.WireHeader)
		if err != nil {
			return written, ErrUnreachable
		}
		if outcome != simnet.Delivered {
			// Kernel TCP retransmission: the caller's thread is NOT
			// blocked (the stack retransmits asynchronously), but the
			// segment's arrival is pushed out by the RTO, which starts at
			// RTOMin and doubles per attempt — the 200 ms floor is why
			// loss collapses sockets tail latency while verbs-level
			// retransmission (µs ack timeouts) barely registers.
			rto := p.RTOMin
			txAt := sendAt + p.SendDeferred
			ok := false
			for r := 0; r < p.RTORetries; r++ {
				p.retransmits.Add(1)
				txAt += rto
				rto *= 2
				arrive, outcome, err = p.Fabric.DeliverFaulty(ep.node, peer.node, txAt, n+p.WireHeader)
				if err != nil {
					return written, ErrUnreachable
				}
				if outcome == simnet.Delivered {
					ok = true
					break
				}
			}
			if !ok {
				return written, ErrUnreachable
			}
		}
		peer.in.Put(segment{data: chunk, arrive: arrive + p.RecvDeferred})
		written += n
	}
	return written, nil
}

// Read fills b with at least one byte, blocking until data arrives.
// The receive syscall cost is charged when the read actually takes data
// off the network (not when draining buffered carry-over).
func (c *Conn) Read(b []byte) (int, error) {
	if len(b) == 0 {
		return 0, nil
	}
	if len(c.rbuf) == 0 {
		seg, ok := c.ep.in.Recv()
		if !ok {
			return 0, io.EOF
		}
		c.arrived(seg)
	}
	return c.consume(b), nil
}

// ReadDeadline is Read bounded by a virtual deadline (with a real-time
// cap for genuinely dead peers). On timeout the clock advances to the
// deadline and ErrReadTimeout is returned.
func (c *Conn) ReadDeadline(b []byte, deadline simnet.Time, realCap time.Duration) (int, error) {
	if len(c.rbuf) > 0 {
		return c.consume(b), nil
	}
	seg, ok, timedOut := c.ep.in.RecvTimeout(realCap)
	if timedOut || (ok && seg.arrive > deadline) {
		if ok {
			c.ep.in.PutFront(seg) // not ours yet; requeue
		}
		c.clk.AdvanceTo(deadline)
		return 0, ErrReadTimeout
	}
	if !ok {
		return 0, io.EOF
	}
	c.arrived(seg)
	return c.consume(b), nil
}

// arrived charges arrival costs for a segment and buffers its bytes,
// then opportunistically drains whatever else already arrived (one
// wakeup can harvest several segments, as with real epoll).
func (c *Conn) arrived(seg segment) {
	p := c.ep.p
	c.clk.AdvanceTo(seg.arrive)
	c.clk.Advance(p.RecvSyscall)
	c.chargeRecvCopy(len(seg.data))
	c.rbuf = append(c.rbuf, seg.data...)
	for {
		more, ok, _ := c.ep.in.TryRecv()
		if !ok {
			break
		}
		if more.arrive > c.clk.Now() {
			c.ep.in.PutFront(more)
			break
		}
		c.chargeRecvCopy(len(more.data))
		c.rbuf = append(c.rbuf, more.data...)
	}
}

func (c *Conn) chargeRecvCopy(n int) {
	p := c.ep.p
	if p.RecvCopies > 0 {
		c.clk.Advance(simnet.BytesDuration(n*p.RecvCopies, p.CopyBytesPerSec))
	}
}

func (c *Conn) consume(b []byte) int {
	n := copy(b, c.rbuf)
	// Slide the remainder to the front instead of re-slicing so the
	// carry-over buffer keeps its full capacity: a long-lived connection
	// reaches a steady state where arrivals append into existing backing
	// memory and the read path stops allocating.
	rem := copy(c.rbuf, c.rbuf[n:])
	c.rbuf = c.rbuf[:rem]
	return n
}

// Buffered reports bytes already delivered but not yet consumed.
func (c *Conn) Buffered() int { return len(c.rbuf) + c.ep.in.Len() }

// WaitReadable blocks until at least one byte is available to Read, or
// the stream is closed (false). It consumes nothing and charges no
// virtual time: it is the "libevent" half of a server's event loop —
// a waker goroutine parks here, then hands the connection to the worker
// thread that does the actual (cost-charged) Read. The waker and the
// reader must be sequenced, never concurrent.
func (c *Conn) WaitReadable() bool {
	if len(c.rbuf) > 0 {
		return true
	}
	seg, ok := c.ep.in.Recv()
	if !ok {
		return false
	}
	c.ep.in.PutFront(seg)
	return true
}

// SetReadyHook installs fn to run — on the delivering goroutine —
// whenever a segment lands on this end's incoming stream, and once when
// the stream closes. It is the edge-triggered alternative to parking a
// waker goroutine in WaitReadable: an event-loop worker registers a hook
// that marks the connection runnable and pokes the loop. fn must not
// block and must not touch the Conn itself (it runs concurrently with
// the owner); after installing, re-check Buffered()/StreamClosed, since
// arrivals that preceded the install fire no hook.
func (c *Conn) SetReadyHook(fn func()) { c.ep.in.SetNotifyHook(fn) }

// StreamClosed reports whether the incoming stream has been shut; with
// Buffered()==0 it means reads would return io.EOF.
func (c *Conn) StreamClosed() bool { return c.ep.in.Closed() }

// Close shuts both directions: the peer's pending data stays readable,
// after which its reads return io.EOF.
func (c *Conn) Close() error {
	ep := c.ep
	ep.mu.Lock()
	if ep.closed {
		ep.mu.Unlock()
		return nil
	}
	ep.closed = true
	peer := ep.peer
	ep.mu.Unlock()
	ep.in.Close()
	if peer != nil {
		peer.mu.Lock()
		peer.closed = true
		peer.mu.Unlock()
		peer.in.Close()
	}
	return nil
}

package sockstream

import (
	"bytes"
	"testing"

	"repro/internal/simnet"
)

// A lost segment is retransmitted after RTOMin: the bytes still arrive
// in order, but the reader's observed latency jumps by (at least) the
// RTO — the kernel-stack tail-latency collapse under loss.
func TestWriteRetransmitsAfterRTO(t *testing.T) {
	e := newEnv(t)
	cli, srv := connPair(t, e)

	// Lossless baseline round: measures the clean arrival stamp.
	if _, err := cli.Write([]byte("warm")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 16)
	if _, err := srv.Read(buf); err != nil {
		t.Fatal(err)
	}
	cleanArrival := srv.Clock().Now()

	fi := simnet.NewFaultInjector(simnet.FaultConfig{Seed: 9})
	e.fab.SetFaults(fi)
	fi.DropNext(e.a, e.b, 1)

	sendStart := cli.Clock().Now()
	if _, err := cli.Write([]byte("lost-once")); err != nil {
		t.Fatal(err)
	}
	// The writer is NOT delayed by the retransmission (kernel does it
	// asynchronously): only syscall/copy/segment costs hit the caller.
	if writerDelay := cli.Clock().Now() - sendStart; writerDelay >= e.prov.RTOMin {
		t.Fatalf("writer blocked %d ns, kernel retransmit must not block the caller", writerDelay)
	}
	n, err := srv.Read(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf[:n], []byte("lost-once")) {
		t.Fatalf("retransmitted payload = %q", buf[:n])
	}
	// The reader ate the RTO.
	if delay := srv.Clock().Now() - cleanArrival; delay < e.prov.RTOMin {
		t.Fatalf("reader delay %d ns under loss, want >= RTOMin %d ns", delay, e.prov.RTOMin)
	}
	if e.prov.Retransmits() != 1 {
		t.Fatalf("Retransmits() = %d, want 1", e.prov.Retransmits())
	}
}

// Persistent loss exhausts RTORetries and surfaces ErrUnreachable.
func TestWriteUnreachableAfterRetryExhaustion(t *testing.T) {
	e := newEnv(t)
	cli, _ := connPair(t, e)
	e.fab.SetFaults(simnet.NewFaultInjector(simnet.FaultConfig{Seed: 1, DropRate: 1.0}))

	if _, err := cli.Write([]byte("doomed")); err != ErrUnreachable {
		t.Fatalf("Write under 100%% loss = %v, want ErrUnreachable", err)
	}
	if got := e.prov.Retransmits(); got != uint64(e.prov.RTORetries) {
		t.Fatalf("Retransmits() = %d, want RTORetries = %d", got, e.prov.RTORetries)
	}
}

// Multi-segment writes stay in order even when only the head segment is
// lost: the stream respects byte order, so the late head blocks the
// segments behind it (head-of-line blocking).
func TestLossPreservesByteOrder(t *testing.T) {
	e := newEnv(t)
	cli, srv := connPair(t, e)

	fi := simnet.NewFaultInjector(simnet.FaultConfig{Seed: 2})
	e.fab.SetFaults(fi)
	fi.DropNext(e.a, e.b, 1) // lose the first of several segments

	payload := make([]byte, 4*e.prov.SegmentSize)
	for i := range payload {
		payload[i] = byte(i)
	}
	if _, err := cli.Write(payload); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 0, len(payload))
	buf := make([]byte, 4096)
	for len(got) < len(payload) {
		n, err := srv.Read(buf)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, buf[:n]...)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("byte stream reordered or corrupted under loss")
	}
}

// Clone carries the retransmission knobs.
func TestCloneCopiesRTOKnobs(t *testing.T) {
	e := newEnv(t)
	e.prov.RTOMin = 5 * simnet.Millisecond
	e.prov.RTORetries = 3
	c := e.prov.Clone(e.fab)
	if c.RTOMin != e.prov.RTOMin || c.RTORetries != e.prov.RTORetries {
		t.Fatalf("Clone RTO knobs = (%d,%d), want (%d,%d)", c.RTOMin, c.RTORetries, e.prov.RTOMin, e.prov.RTORetries)
	}
}

package memcached

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/simnet"
)

// Version is the engine's version string, derived from the memcached
// release the paper extended (server 1.4.5, §V).
const Version = "1.4.5-ucr-go"

// ProtoConn drives the memcached *text protocol* over any byte stream —
// a simulated socket (internal/sockstream) or a real net.Conn. This is
// the unmodified-memcached path the paper benchmarks over 1GigE,
// 10GigE-TOE, IPoIB and SDP.
type ProtoConn struct {
	r     *bufio.Reader
	w     io.Writer
	store *Store

	// opCost/copyRate describe the serving thread's critical section for
	// the virtual-time lock model (SetCostModel). Zero opCost disables
	// lock accounting — the default for raw uses of ProtoConn.
	opCost   simnet.Duration
	copyRate float64

	// Per-connection staging buffers, reused across commands so a burst
	// of pipelined requests re-grows nothing. Both the stream writer and
	// the store copy out of them before the next command runs, so reuse
	// is safe; retention is capped at scratchMax (one oversized request
	// must not pin a large buffer for the connection's lifetime).
	replyBuf []byte // reply line / multi-get response staging
	valBuf   []byte // inbound store-value staging
}

// NewProtoConn wraps a stream.
func NewProtoConn(rw io.ReadWriter, store *Store) *ProtoConn {
	return &ProtoConn{r: bufio.NewReaderSize(rw, 16*1024), w: rw, store: store}
}

// SetCostModel arms per-command lock accounting: each command's shard
// lock is held for opCost plus the value bytes it copies while locked
// (at copyRate bytes/sec), and any queueing delay behind other serving
// threads is added to the connection's clock.
func (pc *ProtoConn) SetCostModel(opCost simnet.Duration, copyRate float64) {
	pc.opCost = opCost
	pc.copyRate = copyRate
}

// chargeLock queues the just-executed command behind key's shard lock.
// Only the wait advances the clock: the hold itself is covered by the
// OpCost and stream copy charges the server already pays per op.
func (pc *ProtoConn) chargeLock(clk *simnet.VClock, key string, copied int) {
	pc.chargeLockAt(clk, clk.Now(), key, copied)
}

// chargeLockAt is chargeLock for one key of a multi-key command: the
// shard is acquired at cursor — where this command's previous hold
// ended — so a burst of same-shard keys extends one backlog that other
// workers queue behind, instead of queueing this worker behind its own
// holds. Returns the cursor for the command's next key.
func (pc *ProtoConn) chargeLockAt(clk *simnet.VClock, cursor simnet.Time, key string, copied int) simnet.Time {
	if pc.opCost <= 0 {
		return cursor
	}
	hold := pc.opCost
	if pc.copyRate > 0 {
		hold += simnet.BytesDuration(copied, pc.copyRate)
	}
	if wait := pc.store.LockWait(key, cursor, hold); wait > 0 {
		clk.Advance(wait)
		cursor += wait
	}
	return cursor + hold
}

// Buffered reports bytes already read off the stream but not yet
// consumed by the codec. A server's burst loop must drain these before
// parking the connection: they will never raise another readability
// event.
func (pc *ProtoConn) Buffered() int { return pc.r.Buffered() }

// ServeOne reads one command, executes it against the store at the
// clock's current virtual time, and writes the reply. quit=true means
// the client sent quit; a non-nil error means the connection is
// unusable (EOF, protocol desync) and should be dropped.
//
// clk is the serving thread's clock; the underlying stream charges its
// I/O costs to whatever clock it is seated on (the same one, when the
// server set it up), and command execution is timestamped after the
// request has fully arrived.
func (pc *ProtoConn) ServeOne(clk *simnet.VClock) (quit bool, err error) {
	line, err := pc.readLine()
	if err != nil {
		return false, err
	}
	fields := strings.Fields(line)
	if len(fields) == 0 {
		return false, pc.reply("ERROR\r\n")
	}
	switch fields[0] {
	case "get", "gets":
		return false, pc.cmdGet(fields, clk)
	case "set", "add", "replace", "append", "prepend", "cas":
		return false, pc.cmdStore(fields, clk)
	case "delete":
		return false, pc.cmdDelete(fields, clk)
	case "incr", "decr":
		return false, pc.cmdIncrDecr(fields, clk)
	case "touch":
		return false, pc.cmdTouch(fields, clk)
	case "stats":
		return false, pc.cmdStats(fields)
	case "flush_all":
		pc.store.FlushAll(clk.Now())
		return false, pc.reply("OK\r\n")
	case "version":
		return false, pc.reply("VERSION " + Version + "\r\n")
	case "verbosity":
		return false, pc.reply("OK\r\n")
	case "quit":
		return true, nil
	default:
		return false, pc.reply("ERROR\r\n")
	}
}

func (pc *ProtoConn) readLine() (string, error) {
	line, err := pc.r.ReadString('\n')
	if err != nil {
		return "", err
	}
	return strings.TrimRight(line, "\r\n"), nil
}

func (pc *ProtoConn) reply(s string) error {
	_, err := io.WriteString(pc.w, s)
	return err
}

func (pc *ProtoConn) cmdGet(fields []string, clk *simnet.VClock) error {
	withCAS := fields[0] == "gets"
	if len(fields) < 2 {
		return pc.reply("ERROR\r\n")
	}
	for _, key := range fields[1:] {
		if len(key) > 250 {
			return pc.reply("CLIENT_ERROR bad command line format\r\n")
		}
	}
	sb := pc.replyBuf[:0]
	cursor := clk.Now()
	for _, key := range fields[1:] {
		value, flags, cas, ok := pc.store.Get(key, clk.Now())
		// The sockets engine copies the value out while holding the lock.
		cursor = pc.chargeLockAt(clk, cursor, key, len(value))
		if !ok {
			continue
		}
		sb = append(sb, "VALUE "...)
		sb = append(sb, key...)
		sb = append(sb, ' ')
		sb = strconv.AppendUint(sb, uint64(flags), 10)
		sb = append(sb, ' ')
		sb = strconv.AppendInt(sb, int64(len(value)), 10)
		if withCAS {
			sb = append(sb, ' ')
			sb = strconv.AppendUint(sb, cas, 10)
		}
		sb = append(sb, '\r', '\n')
		sb = append(sb, value...)
		sb = append(sb, '\r', '\n')
	}
	sb = append(sb, "END\r\n"...)
	_, err := pc.w.Write(sb)
	pc.retainReply(sb)
	return err
}

// retainReply keeps sb as the connection's reply staging buffer for the
// next command, unless a large response grew it past scratchMax — the
// writer has copied the bytes out, so only the capacity matters.
func (pc *ProtoConn) retainReply(sb []byte) {
	if cap(sb) <= scratchMax {
		pc.replyBuf = sb[:0]
	} else {
		pc.replyBuf = nil
	}
}

func (pc *ProtoConn) cmdStore(fields []string, clk *simnet.VClock) error {
	op := fields[0]
	want := 5
	if op == "cas" {
		want = 6
	}
	noreply := len(fields) == want+1 && fields[want] == "noreply"
	if len(fields) < want || (len(fields) > want && !noreply) {
		return pc.reply("ERROR\r\n")
	}
	key := fields[1]
	flags64, err1 := strconv.ParseUint(fields[2], 10, 32)
	exptime, err2 := strconv.ParseInt(fields[3], 10, 64)
	nbytes, err3 := strconv.Atoi(fields[4])
	var casID uint64
	var err4 error
	if op == "cas" {
		casID, err4 = strconv.ParseUint(fields[5], 10, 64)
	}
	if err1 != nil || err2 != nil || err3 != nil || err4 != nil || nbytes < 0 || len(key) > 250 {
		// Protocol rule: the data block still follows; consume it to
		// stay in sync, then report.
		if err3 == nil && nbytes >= 0 {
			pc.discard(int64(nbytes) + 2)
		}
		return pc.reply("CLIENT_ERROR bad command line format\r\n")
	}
	if nbytes > pc.store.MaxItemSize() {
		// Reject before allocating: a declared size in the gigabytes must
		// not size a buffer (found by FuzzTextProtocol). The data block is
		// drained to keep the stream in sync, like memcached's
		// swallow-then-error path.
		pc.discard(int64(nbytes) + 2)
		pc.chargeLock(clk, key, 0)
		if noreply {
			return nil
		}
		return pc.reply(TooLarge.String() + "\r\n")
	}
	// Stage the inbound value in the connection's reusable buffer: the
	// store copies it into slab memory before the next command runs. An
	// oversized value gets a one-off buffer that is not retained.
	value := pooledBuf(&pc.valBuf, nbytes)
	if _, err := io.ReadFull(pc.r, value); err != nil {
		return err
	}
	var crlf [2]byte
	if _, err := io.ReadFull(pc.r, crlf[:]); err != nil {
		return err
	}
	if crlf[0] != '\r' || crlf[1] != '\n' {
		return pc.reply("CLIENT_ERROR bad data chunk\r\n")
	}

	var res StoreResult
	flags := uint32(flags64)
	if mutProtoDropFlags {
		flags = 0
	}
	now := clk.Now()
	switch op {
	case "set":
		res = pc.store.Set(key, flags, exptime, value, now)
	case "add":
		res = pc.store.Add(key, flags, exptime, value, now)
	case "replace":
		res = pc.store.Replace(key, flags, exptime, value, now)
	case "append":
		res = pc.store.Append(key, value, now)
	case "prepend":
		res = pc.store.Prepend(key, value, now)
	case "cas":
		res = pc.store.Cas(key, flags, exptime, value, casID, now)
	}
	// The sockets engine copies the inbound value into slab memory while
	// holding the lock (unlike the UCR path, where RDMA lands the value
	// before the commit takes it).
	pc.chargeLock(clk, key, nbytes)
	if noreply {
		return nil
	}
	return pc.reply(res.String() + "\r\n")
}

func (pc *ProtoConn) discard(n int64) {
	if n > 0 {
		io.CopyN(io.Discard, pc.r, n)
	}
}

func (pc *ProtoConn) cmdDelete(fields []string, clk *simnet.VClock) error {
	if len(fields) < 2 {
		return pc.reply("ERROR\r\n")
	}
	noreply := len(fields) == 3 && fields[2] == "noreply"
	ok := pc.store.Delete(fields[1], clk.Now())
	pc.chargeLock(clk, fields[1], 0)
	if noreply {
		return nil
	}
	if ok {
		return pc.reply("DELETED\r\n")
	}
	return pc.reply("NOT_FOUND\r\n")
}

func (pc *ProtoConn) cmdIncrDecr(fields []string, clk *simnet.VClock) error {
	if len(fields) < 3 {
		return pc.reply("ERROR\r\n")
	}
	noreply := len(fields) == 4 && fields[3] == "noreply"
	delta, err := strconv.ParseUint(fields[2], 10, 64)
	if err != nil {
		return pc.reply("CLIENT_ERROR invalid numeric delta argument\r\n")
	}
	val, found, bad, oom := pc.store.IncrDecr(fields[1], delta, fields[0] == "incr", clk.Now())
	pc.chargeLock(clk, fields[1], 0)
	if noreply {
		return nil
	}
	switch {
	case !found:
		return pc.reply("NOT_FOUND\r\n")
	case bad:
		return pc.reply("CLIENT_ERROR cannot increment or decrement non-numeric value\r\n")
	case oom:
		return pc.reply("SERVER_ERROR out of memory storing object\r\n")
	default:
		return pc.reply(strconv.FormatUint(val, 10) + "\r\n")
	}
}

func (pc *ProtoConn) cmdTouch(fields []string, clk *simnet.VClock) error {
	if len(fields) < 3 {
		return pc.reply("ERROR\r\n")
	}
	noreply := len(fields) == 4 && fields[3] == "noreply"
	exptime, err := strconv.ParseInt(fields[2], 10, 64)
	if err != nil {
		return pc.reply("CLIENT_ERROR bad command line format\r\n")
	}
	now := clk.Now()
	pc.chargeLock(clk, fields[1], 0)
	ok := pc.store.Touch(fields[1], exptime, now)
	if noreply {
		return nil
	}
	if ok {
		return pc.reply("TOUCHED\r\n")
	}
	return pc.reply("NOT_FOUND\r\n")
}

func (pc *ProtoConn) cmdStats(fields []string) error {
	if len(fields) > 1 {
		switch fields[1] {
		case "slabs":
			return pc.cmdStatsSlabs()
		case "items":
			return pc.cmdStatsItems()
		case "settings":
			return pc.cmdStatsSettings()
		default:
			return pc.reply("ERROR\r\n")
		}
	}
	st := pc.store.Stats()
	lines := []struct {
		name string
		val  uint64
	}{
		{"cmd_get", st.CmdGet},
		{"cmd_set", st.CmdSet},
		{"get_hits", st.GetHits},
		{"get_misses", st.GetMisses},
		{"delete_hits", st.DeleteHits},
		{"delete_misses", st.DeleteMisses},
		{"incr_hits", st.IncrHits},
		{"incr_misses", st.IncrMisses},
		{"decr_hits", st.DecrHits},
		{"decr_misses", st.DecrMisses},
		{"cas_hits", st.CasHits},
		{"cas_misses", st.CasMisses},
		{"cas_badval", st.CasBadval},
		{"evictions", st.Evictions},
		{"expired", st.Expired},
		{"curr_items", st.CurrItems},
		{"total_items", st.TotalItems},
		{"bytes", st.Bytes},
		{"limit_maxbytes", st.LimitMaxBytes},
	}
	var sb strings.Builder
	for _, l := range lines {
		fmt.Fprintf(&sb, "STAT %s %d\r\n", l.name, l.val)
	}
	sb.WriteString("END\r\n")
	return pc.reply(sb.String())
}

// cmdStatsSlabs reports per-class slab occupancy (memcached's
// `stats slabs`: only classes with pages appear).
func (pc *ProtoConn) cmdStatsSlabs() error {
	a := pc.store.Arena()
	var sb strings.Builder
	totalPages := 0
	for i := 0; i < a.NumClasses(); i++ {
		pages := a.ClassPages(i)
		if pages == 0 {
			continue
		}
		totalPages += pages
		perPage := slabPageSize / a.ClassSize(i)
		total := pages * perPage
		free := a.FreeChunks(i)
		fmt.Fprintf(&sb, "STAT %d:chunk_size %d\r\n", i+1, a.ClassSize(i))
		fmt.Fprintf(&sb, "STAT %d:chunks_per_page %d\r\n", i+1, perPage)
		fmt.Fprintf(&sb, "STAT %d:total_pages %d\r\n", i+1, pages)
		fmt.Fprintf(&sb, "STAT %d:total_chunks %d\r\n", i+1, total)
		fmt.Fprintf(&sb, "STAT %d:used_chunks %d\r\n", i+1, total-free)
		fmt.Fprintf(&sb, "STAT %d:free_chunks %d\r\n", i+1, free)
	}
	fmt.Fprintf(&sb, "STAT active_slabs %d\r\n", totalPages)
	fmt.Fprintf(&sb, "STAT total_malloced %d\r\n", a.UsedBytes())
	sb.WriteString("END\r\n")
	return pc.reply(sb.String())
}

// cmdStatsItems reports per-class item counts (`stats items`).
func (pc *ProtoConn) cmdStatsItems() error {
	var sb strings.Builder
	for i, n := range pc.store.ItemsPerClass() {
		if n == 0 {
			continue
		}
		fmt.Fprintf(&sb, "STAT items:%d:number %d\r\n", i+1, n)
	}
	sb.WriteString("END\r\n")
	return pc.reply(sb.String())
}

// cmdStatsSettings reports the engine's effective limits.
func (pc *ProtoConn) cmdStatsSettings() error {
	var sb strings.Builder
	fmt.Fprintf(&sb, "STAT maxbytes %d\r\n", pc.store.Stats().LimitMaxBytes)
	fmt.Fprintf(&sb, "STAT evictions %s\r\n", onOff(pc.store.evictions))
	fmt.Fprintf(&sb, "STAT item_size_max %d\r\n", pc.store.Arena().ClassSize(pc.store.Arena().NumClasses()-1))
	sb.WriteString("END\r\n")
	return pc.reply(sb.String())
}

func onOff(b bool) string {
	if b {
		return "on"
	}
	return "off"
}

package memcached

import (
	"repro/internal/simnet"
	"repro/internal/ucr"
)

// This file is the server half of the paper's §V design: Memcached
// operations carried as UCR active messages.
//
// Set (§V-B): the client's AM 1 carries the set header plus the item
// value. For large items the UCR rendezvous path has the *server* issue
// an RDMA Read — and because the Set header handler allocates the item
// first, the read lands the value directly in slab memory, no staging
// copy. AM 2 returns the status, targeting the client's counter C.
//
// Get (§V-C): AM 1 carries the key and counter C. The item length is
// unknown to the client beforehand; the server's AM 2 reply announces it,
// the client's header handler allocates (from its buffer pool), and the
// value travels eagerly (≤ 8 KB) or is RDMA-read by the client directly
// from the pinned item's slab memory.

// setPending carries state between the Set header and completion
// handlers on one endpoint (FIFO; UCR delivers in order per endpoint).
type setPending struct {
	item     *Item
	res      StoreResult
	replyCtr ucr.CounterID
}

// workerFor resolves the worker owning an endpoint's progress context.
func (s *Server) workerFor(ep *ucr.Endpoint) *worker {
	return s.ctxOwner[ep.Context()]
}

// scratchMax caps the landing buffer a worker keeps between requests;
// one oversized rejected set must not pin a max-item-size buffer per
// worker for the server's lifetime.
const scratchMax = 64 << 10

// scratchBuf returns a throwaway landing buffer used when item
// allocation failed but the transfer must still complete. Requests
// beyond scratchMax get a one-off buffer that is not retained.
func (w *worker) scratchBuf(n int) []byte {
	if n > scratchMax {
		return make([]byte, n)
	}
	if cap(w.scratch) < n {
		w.scratch = make([]byte, n, scratchMax)
	}
	return w.scratch[:n]
}

// chargeLock queues an AM completion handler behind the key's shard
// lock: the hold is the engine critical section (OpCost plus bytes
// copied while locked), and only the queueing wait advances the worker
// clock — the hold itself is covered by the per-op charges the worker
// already pays. Uncontended acquisitions cost nothing.
func (s *Server) chargeLock(clk *simnet.VClock, key string, copied int) {
	hold := s.cfg.OpCost + simnet.BytesDuration(copied, s.cfg.CopyBytesPerSec)
	if wait := s.store.LockWait(key, clk.Now(), hold); wait > 0 {
		clk.Advance(wait)
	}
}

// registerAMHandlers installs the §V protocol on the runtime.
func (s *Server) registerAMHandlers(rt *ucr.Runtime) {
	rt.RegisterHandler(AMSet, ucr.Handler{
		Header:     s.amSetHeader,
		Completion: s.amSetComplete,
	})
	rt.RegisterHandler(AMGet, ucr.Handler{
		Header:     func(*simnet.VClock, *ucr.Endpoint, []byte, int, ucr.CounterID) []byte { return nil },
		Completion: s.amGetComplete,
	})
	rt.RegisterHandler(AMMGet, ucr.Handler{
		Header:     func(*simnet.VClock, *ucr.Endpoint, []byte, int, ucr.CounterID) []byte { return nil },
		Completion: s.amMGetComplete,
	})
	rt.RegisterHandler(AMStore, ucr.Handler{
		Header: func(_ *simnet.VClock, _ *ucr.Endpoint, _ []byte, dataLen int, _ ucr.CounterID) []byte {
			// The value lands in a plain buffer, not slab memory: whether
			// a conditional store allocates at all is decided under the
			// shard lock in the completion handler.
			return make([]byte, dataLen)
		},
		Completion: s.amStoreComplete,
	})
	rt.RegisterHandler(AMDelete, ucr.Handler{
		Header:     func(*simnet.VClock, *ucr.Endpoint, []byte, int, ucr.CounterID) []byte { return nil },
		Completion: s.amDeleteComplete,
	})
	rt.RegisterHandler(AMOSDesc, ucr.Handler{
		Header:     func(*simnet.VClock, *ucr.Endpoint, []byte, int, ucr.CounterID) []byte { return nil },
		Completion: s.amOSDescComplete,
	})
	rt.RegisterHandler(AMIncr, ucr.Handler{
		Header:     func(*simnet.VClock, *ucr.Endpoint, []byte, int, ucr.CounterID) []byte { return nil },
		Completion: s.amNumComplete(true),
	})
	rt.RegisterHandler(AMDecr, ucr.Handler{
		Header:     func(*simnet.VClock, *ucr.Endpoint, []byte, int, ucr.CounterID) []byte { return nil },
		Completion: s.amNumComplete(false),
	})
}

// amSetHeader identifies where the item will be stored — the paper's
// "identifies where it wants to store the item. Then, it issues an RDMA
// Read to that destination memory location" (§V-B).
func (s *Server) amSetHeader(clk *simnet.VClock, ep *ucr.Endpoint, hdr []byte, dataLen int, _ ucr.CounterID) []byte {
	w := s.workerFor(ep)
	req, err := DecodeSetReq(hdr)
	if err != nil {
		w.pendingSets[ep] = append(w.pendingSets[ep], setPending{res: NotStored})
		return w.scratchBuf(dataLen)
	}
	it, res := s.store.AllocateItem(req.Key, req.Flags, req.Exptime, dataLen, clk.Now())
	if res != Stored {
		w.pendingSets[ep] = append(w.pendingSets[ep], setPending{res: res, replyCtr: req.ReplyCtr})
		return w.scratchBuf(dataLen)
	}
	w.pendingSets[ep] = append(w.pendingSets[ep], setPending{item: it, res: Stored, replyCtr: req.ReplyCtr})
	return it.Value()
}

// amSetComplete commits the item and answers with AM 2 (§V-B).
func (s *Server) amSetComplete(clk *simnet.VClock, ep *ucr.Endpoint, hdr, data []byte, _ ucr.CounterID) {
	w := s.workerFor(ep)
	pend := w.pendingSets[ep]
	if len(pend) == 0 {
		return
	}
	p := pend[0]
	if len(pend) == 1 {
		delete(w.pendingSets, ep)
	} else {
		w.pendingSets[ep] = pend[1:]
	}
	clk.Advance(s.cfg.OpCost)
	status := AMOK
	if p.item != nil {
		// No copy extends the hold: the value already landed in slab
		// memory via RDMA before the commit takes the lock (§V-B).
		s.chargeLock(clk, p.item.Key(), 0)
		s.store.CommitItem(p.item, clk.Now())
	} else {
		status = AMError
	}
	s.OpsServed.Add(1)
	if p.replyCtr == 0 {
		return
	}
	reply := EncodeStatusReply(StatusReply{Status: status, Result: p.res})
	_ = ep.Send(clk, AMSetReply, reply, nil, nil, p.replyCtr, nil)
}

// amGetComplete looks the item up and answers with AM 2 carrying the
// value (§V-C). Large values stay pinned in slab memory until the
// client's RDMA read completes (tracked by the reply's origin counter).
func (s *Server) amGetComplete(clk *simnet.VClock, ep *ucr.Endpoint, hdr, data []byte, _ ucr.CounterID) {
	w := s.workerFor(ep)
	req, err := DecodeKeyReq(hdr)
	if err != nil {
		return
	}
	clk.Advance(s.cfg.OpCost)
	s.OpsServed.Add(1)
	// The reply is served from the pinned item's slab memory, so no
	// copy extends the hold (§V-C).
	s.chargeLock(clk, req.Key, 0)
	it, ok := s.store.GetPinned(req.Key, clk.Now())
	if !ok {
		reply := EncodeGetReply(GetReply{Status: AMMiss})
		_ = ep.Send(clk, AMGetReply, reply, nil, nil, req.ReplyCtr, nil)
		return
	}
	reply := EncodeGetReply(GetReply{Status: AMOK, Flags: it.Flags(), CAS: it.CAS()})
	if len(reply)+len(it.Value()) <= ep.MaxEager() {
		// Eager: the value is packed into the reply transaction; the
		// send path copies it out of slab memory, so unpin immediately.
		_ = ep.Send(clk, AMGetReply, reply, it.Value(), nil, req.ReplyCtr, nil)
		s.store.Unpin(it)
		return
	}
	if ep.Reliability() == ucr.Unreliable {
		// UD small-get mode: a value that outgrows the datagram cannot
		// ride this endpoint (no rendezvous on UD) — tell the client to
		// re-issue over its RC endpoint rather than failing the op.
		s.store.Unpin(it)
		_ = ep.Send(clk, AMGetReply, EncodeGetReply(GetReply{Status: AMTooBig}), nil, nil, req.ReplyCtr, nil)
		return
	}
	// Rendezvous: the client will RDMA-read straight from the item's
	// chunk. Keep it pinned until the transfer's origin counter fires
	// (directly addressing the corruption hazard the paper raises for
	// designs that let clients read server memory unsupervised, §III).
	ctr := s.ucrRT.NewCounter()
	if err := ep.Send(clk, AMGetReply, reply, it.Value(), ctr, req.ReplyCtr, nil); err != nil {
		s.store.Unpin(it)
		s.ucrRT.FreeCounter(ctr)
		return
	}
	w.pendingPins = append(w.pendingPins, pendingPin{ctr: ctr, item: it})
}

// amMGetComplete serves a whole key batch with one reply AM: per-item
// metadata in the header, the values concatenated as the data block
// (eager in one transaction when small, one client RDMA read when
// large).
func (s *Server) amMGetComplete(clk *simnet.VClock, ep *ucr.Endpoint, hdr, data []byte, _ ucr.CounterID) {
	req, err := DecodeMGetReq(hdr)
	if err != nil {
		return
	}
	reply := MGetReply{}
	items := make([]*Item, 0, len(req.Keys))
	total := 0
	for _, key := range req.Keys {
		clk.Advance(s.cfg.OpCost)
		s.OpsServed.Add(1)
		s.chargeLock(clk, key, 0)
		it, ok := s.store.GetPinned(key, clk.Now())
		if !ok {
			continue
		}
		reply.Items = append(reply.Items, MGetItem{
			Key: key, Flags: it.Flags(), CAS: it.CAS(), ValueLen: len(it.Value()),
		})
		items = append(items, it)
		total += len(it.Value())
	}
	encoded := EncodeMGetReply(reply)
	if ep.Reliability() == ucr.Unreliable && len(encoded)+total > ep.MaxEager() {
		// UD small-get mode: the batch outgrew the datagram. Release the
		// pins and send the payload-free retry marker; the client
		// re-issues the whole batch over RC.
		for _, it := range items {
			s.store.Unpin(it)
		}
		_ = ep.Send(clk, AMMGetRetry, nil, nil, nil, req.ReplyCtr, nil)
		return
	}
	// Assemble the concatenated block in one pre-sized copy straight out
	// of the pinned slab chunks; the pins also keep eviction from
	// recycling a chunk between lookup and copy.
	values := make([]byte, 0, total)
	for _, it := range items {
		values = append(values, it.Value()...)
		s.store.Unpin(it)
	}
	clk.Advance(simnet.BytesDuration(len(values), s.ucrRT.Config().PackBytesPerSec))
	_ = ep.Send(clk, AMMGetReply, encoded, values, nil, req.ReplyCtr, nil)
}

// amStoreComplete serves the conditional storage commands. The value
// copy into the slab happens under the lock (like the sockets path, and
// unlike AMSet's RDMA-lands-first fast path), so it extends the hold.
func (s *Server) amStoreComplete(clk *simnet.VClock, ep *ucr.Endpoint, hdr, data []byte, _ ucr.CounterID) {
	req, err := DecodeStoreReq(hdr)
	if err != nil {
		return
	}
	clk.Advance(s.cfg.OpCost)
	s.OpsServed.Add(1)
	s.chargeLock(clk, req.Key, len(data))
	now := clk.Now()
	var res StoreResult
	switch req.Op {
	case StoreOpAdd:
		res = s.store.Add(req.Key, req.Flags, req.Exptime, data, now)
	case StoreOpReplace:
		res = s.store.Replace(req.Key, req.Flags, req.Exptime, data, now)
	case StoreOpAppend:
		res = s.store.Append(req.Key, data, now)
	case StoreOpPrepend:
		res = s.store.Prepend(req.Key, data, now)
	case StoreOpCas:
		res = s.store.Cas(req.Key, req.Flags, req.Exptime, data, req.CAS, now)
	default:
		res = NotStored
	}
	if req.ReplyCtr == 0 {
		return
	}
	status := AMOK
	if res != Stored {
		status = AMError
	}
	reply := EncodeStatusReply(StatusReply{Status: status, Result: res})
	_ = ep.Send(clk, AMSetReply, reply, nil, nil, req.ReplyCtr, nil)
}

// amOSDescComplete answers the one-sided descriptor query: whether the
// index is armed and, if so, the directory's geometry and window.
func (s *Server) amOSDescComplete(clk *simnet.VClock, ep *ucr.Endpoint, hdr, data []byte, _ ucr.CounterID) {
	req, err := DecodeKeyReq(hdr)
	if err != nil {
		return
	}
	var rep OSDescReply
	if x := s.store.OneSidedIndex(); x != nil {
		rep = OSDescReply{Enabled: true, Buckets: x.Buckets(), Slots: x.Slots(), Dir: x.DirDesc()}
	}
	_ = ep.Send(clk, AMOSDescReply, EncodeOSDescReply(rep), nil, nil, req.ReplyCtr, nil)
}

// amDeleteComplete serves delete.
func (s *Server) amDeleteComplete(clk *simnet.VClock, ep *ucr.Endpoint, hdr, data []byte, _ ucr.CounterID) {
	req, err := DecodeKeyReq(hdr)
	if err != nil {
		return
	}
	clk.Advance(s.cfg.OpCost)
	s.OpsServed.Add(1)
	s.chargeLock(clk, req.Key, 0)
	status := AMMiss
	if s.store.Delete(req.Key, clk.Now()) {
		status = AMOK
	}
	reply := EncodeStatusReply(StatusReply{Status: status})
	_ = ep.Send(clk, AMDeleteReply, reply, nil, nil, req.ReplyCtr, nil)
}

// amNumComplete serves incr/decr.
func (s *Server) amNumComplete(incr bool) ucr.CompletionHandler {
	return func(clk *simnet.VClock, ep *ucr.Endpoint, hdr, data []byte, _ ucr.CounterID) {
		req, err := DecodeNumReq(hdr)
		if err != nil {
			return
		}
		clk.Advance(s.cfg.OpCost)
		s.OpsServed.Add(1)
		s.chargeLock(clk, req.Key, 0)
		val, found, bad, oom := s.store.IncrDecr(req.Key, req.Delta, incr, clk.Now())
		status := AMOK
		switch {
		case !found:
			status = AMMiss
		case bad:
			status = AMBadValue
		case oom:
			status = AMError
		}
		reply := EncodeNumReply(NumReply{Status: status, Value: val})
		_ = ep.Send(clk, AMNumReply, reply, nil, nil, req.ReplyCtr, nil)
	}
}

package memcached

import (
	"repro/internal/simnet"
	"repro/internal/ucr"
)

// This file is the server half of the paper's §V design: Memcached
// operations carried as UCR active messages.
//
// Set (§V-B): the client's AM 1 carries the set header plus the item
// value. For large items the UCR rendezvous path has the *server* issue
// an RDMA Read — and because the Set header handler allocates the item
// first, the read lands the value directly in slab memory, no staging
// copy. AM 2 returns the status, targeting the client's counter C.
//
// Get (§V-C): AM 1 carries the key and counter C. The item length is
// unknown to the client beforehand; the server's AM 2 reply announces it,
// the client's header handler allocates (from its buffer pool), and the
// value travels eagerly (≤ 8 KB) or is RDMA-read by the client directly
// from the pinned item's slab memory.
//
// The steady-state GET/SET/MGET paths allocate nothing: request headers
// are decoded in place (the *View decoders), keys are hashed and
// compared as []byte straight out of the receive buffer, items come
// from per-shard free lists, and replies are built in per-worker arenas
// whose reuse rules are documented on the worker struct.

// setPending carries state between the Set header and completion
// handlers on one endpoint (FIFO; UCR delivers in order per endpoint).
type setPending struct {
	item     *Item
	res      StoreResult
	replyCtr ucr.CounterID
}

// workerFor resolves the worker owning an endpoint's progress context.
func (s *Server) workerFor(ep *ucr.Endpoint) *worker {
	return s.ctxOwner[ep.Context()]
}

// pendSet queues an in-flight Set state for ep on its worker.
func (w *worker) pendSet(ep *ucr.Endpoint, p setPending) {
	q := w.pendingSets[ep]
	if q == nil {
		q = &setPendQ{}
		w.pendingSets[ep] = q
	}
	q.push(p)
}

// scratchMax caps the landing and staging buffers a worker keeps
// between requests; one oversized request must not pin a max-item-size
// buffer per worker for the server's lifetime.
const scratchMax = 64 << 10

// pooledBuf returns buf resized to n, growing it up to scratchMax;
// requests beyond the cap get a one-off buffer that is not retained.
func pooledBuf(buf *[]byte, n int) []byte {
	if n > scratchMax {
		return make([]byte, n)
	}
	if cap(*buf) < n {
		*buf = make([]byte, n, scratchMax)
	}
	return (*buf)[:n]
}

// scratchBuf returns a throwaway landing buffer used when item
// allocation failed but the transfer must still complete.
func (w *worker) scratchBuf(n int) []byte { return pooledBuf(&w.scratch, n) }

// storeBuf returns the eager conditional-store staging buffer. It is
// only safe for eager transfers: handleEager copies the value in and
// runs the completion handler synchronously, so the buffer is consumed
// before the worker touches another request. Rendezvous stores land via
// an asynchronous RDMA read and must use a fresh buffer.
func (w *worker) storeBuf(n int) []byte { return pooledBuf(&w.storeScratch, n) }

// opCharge charges the per-op command-processing cost. The 2nd..Nth
// completions harvested by one batched CQ drain pay the coalesced cost:
// their fixed per-op overheads (dispatch branch, cache warmup) amortize
// across the sweep. A lone completion always pays full OpCost.
func (s *Server) opCharge(clk *simnet.VClock, ep *ucr.Endpoint) {
	if ep.Context().InCoalescedDrain() {
		clk.Advance(s.cfg.CoalescedOpCost)
	} else {
		clk.Advance(s.cfg.OpCost)
	}
}

// chargeLock queues an AM completion handler behind the key's shard
// lock: the hold is the engine critical section (OpCost plus bytes
// copied while locked), and only the queueing wait advances the worker
// clock — the hold itself is covered by the per-op charges the worker
// already pays. Uncontended acquisitions cost nothing. The hold stays
// at full OpCost even in a coalesced drain: batching amortizes the
// worker's fixed costs, not the engine's critical section.
func (s *Server) chargeLock(clk *simnet.VClock, key string, copied int) {
	hold := s.cfg.OpCost + simnet.BytesDuration(copied, s.cfg.CopyBytesPerSec)
	if wait := s.store.LockWait(key, clk.Now(), hold); wait > 0 {
		clk.Advance(wait)
	}
}

// chargeLockBytes is chargeLock for wire-decoded keys.
func (s *Server) chargeLockBytes(clk *simnet.VClock, key []byte, copied int) {
	hold := s.cfg.OpCost + simnet.BytesDuration(copied, s.cfg.CopyBytesPerSec)
	if wait := s.store.LockWaitBytes(key, clk.Now(), hold); wait > 0 {
		clk.Advance(wait)
	}
}

// nilHeader is the header handler for AMs whose data block is empty.
func nilHeader(*simnet.VClock, *ucr.Endpoint, []byte, int, ucr.CounterID) []byte { return nil }

// registerAMHandlers installs the §V protocol on the runtime.
func (s *Server) registerAMHandlers(rt *ucr.Runtime) {
	rt.RegisterHandler(AMSet, ucr.Handler{
		Header:     s.amSetHeader,
		Completion: s.amSetComplete,
	})
	rt.RegisterHandler(AMGet, ucr.Handler{
		Header:     nilHeader,
		Completion: s.amGetComplete,
	})
	rt.RegisterHandler(AMGetW, ucr.Handler{
		Header:     nilHeader,
		Completion: s.amGetWComplete,
	})
	rt.RegisterHandler(AMMGet, ucr.Handler{
		Header:     nilHeader,
		Completion: s.amMGetComplete,
	})
	rt.RegisterHandler(AMMGetW, ucr.Handler{
		Header:     nilHeader,
		Completion: s.amMGetWComplete,
	})
	rt.RegisterHandler(AMWrArm, ucr.Handler{
		Header:     nilHeader,
		Completion: s.amWrArmComplete,
	})
	rt.RegisterHandler(AMStore, ucr.Handler{
		Header:     s.amStoreHeader,
		Completion: s.amStoreComplete,
	})
	rt.RegisterHandler(AMDelete, ucr.Handler{
		Header:     nilHeader,
		Completion: s.amDeleteComplete,
	})
	rt.RegisterHandler(AMOSDesc, ucr.Handler{
		Header:     nilHeader,
		Completion: s.amOSDescComplete,
	})
	rt.RegisterHandler(AMIncr, ucr.Handler{
		Header:     nilHeader,
		Completion: s.amNumComplete(true),
	})
	rt.RegisterHandler(AMDecr, ucr.Handler{
		Header:     nilHeader,
		Completion: s.amNumComplete(false),
	})
}

// amSetHeader identifies where the item will be stored — the paper's
// "identifies where it wants to store the item. Then, it issues an RDMA
// Read to that destination memory location" (§V-B).
func (s *Server) amSetHeader(clk *simnet.VClock, ep *ucr.Endpoint, hdr []byte, dataLen int, _ ucr.CounterID) []byte {
	w := s.workerFor(ep)
	req, err := DecodeSetReqView(hdr)
	if err != nil {
		w.pendSet(ep, setPending{res: NotStored})
		return w.scratchBuf(dataLen)
	}
	it, res := s.store.AllocateItemBytes(req.Key, req.Flags, req.Exptime, dataLen, clk.Now())
	if res != Stored {
		w.pendSet(ep, setPending{res: res, replyCtr: req.ReplyCtr})
		return w.scratchBuf(dataLen)
	}
	w.pendSet(ep, setPending{item: it, res: Stored, replyCtr: req.ReplyCtr})
	return it.Value()
}

// amSetComplete commits the item and answers with AM 2 (§V-B).
func (s *Server) amSetComplete(clk *simnet.VClock, ep *ucr.Endpoint, hdr, data []byte, _ ucr.CounterID) {
	w := s.workerFor(ep)
	q := w.pendingSets[ep]
	if q == nil {
		return
	}
	p, ok := q.pop()
	if !ok {
		return
	}
	s.opCharge(clk, ep)
	status := AMOK
	if p.item != nil {
		// No copy extends the hold: the value already landed in slab
		// memory via RDMA before the commit takes the lock (§V-B).
		s.chargeLock(clk, p.item.Key(), 0)
		s.store.CommitItem(p.item, clk.Now())
	} else {
		status = AMError
	}
	s.OpsServed.Add(1)
	if p.replyCtr == 0 {
		return
	}
	w.reply = AppendStatusReply(w.reply[:0], StatusReply{Status: status, Result: p.res})
	_ = ep.Send(clk, AMSetReply, w.reply, nil, nil, p.replyCtr, nil)
}

// amGetComplete looks the item up and answers with AM 2 carrying the
// value (§V-C). Large values stay pinned in slab memory until the
// client's RDMA read completes (tracked by the reply's origin counter).
func (s *Server) amGetComplete(clk *simnet.VClock, ep *ucr.Endpoint, hdr, data []byte, _ ucr.CounterID) {
	w := s.workerFor(ep)
	req, err := DecodeKeyReqView(hdr)
	if err != nil {
		return
	}
	s.opCharge(clk, ep)
	s.OpsServed.Add(1)
	// The reply is served from the pinned item's slab memory, so no
	// copy extends the hold (§V-C).
	s.chargeLockBytes(clk, req.Key, 0)
	it, ok := s.store.GetPinnedBytes(req.Key, clk.Now())
	if !ok {
		w.reply = AppendGetReply(w.reply[:0], GetReply{Status: AMMiss})
		_ = ep.Send(clk, AMGetReply, w.reply, nil, nil, req.ReplyCtr, nil)
		return
	}
	w.reply = AppendGetReply(w.reply[:0], GetReply{Status: AMOK, Flags: it.Flags(), CAS: it.CAS()})
	if len(w.reply)+len(it.Value()) <= ep.MaxEager() {
		// Eager: the value is packed into the reply transaction; the
		// send path copies it out of slab memory, so unpin immediately.
		_ = ep.Send(clk, AMGetReply, w.reply, it.Value(), nil, req.ReplyCtr, nil)
		s.store.Unpin(it)
		return
	}
	if ep.Reliability() == ucr.Unreliable {
		// UD small-get mode: a value that outgrows the datagram cannot
		// ride this endpoint (no rendezvous on UD) — tell the client to
		// re-issue over its RC endpoint rather than failing the op.
		s.store.Unpin(it)
		w.reply = AppendGetReply(w.reply[:0], GetReply{Status: AMTooBig})
		_ = ep.Send(clk, AMGetReply, w.reply, nil, nil, req.ReplyCtr, nil)
		return
	}
	// Rendezvous: the client will RDMA-read straight from the item's
	// chunk. Keep it pinned until the transfer's origin counter fires
	// (directly addressing the corruption hazard the paper raises for
	// designs that let clients read server memory unsupervised, §III).
	ctr := s.ucrRT.NewCounter()
	if err := ep.Send(clk, AMGetReply, w.reply, it.Value(), ctr, req.ReplyCtr, nil); err != nil {
		s.store.Unpin(it)
		s.ucrRT.FreeCounter(ctr)
		return
	}
	w.pendingPins = append(w.pendingPins, pendingPin{ctr: ctr, item: it})
}

// amMGetComplete serves a whole key batch with one reply AM: per-item
// metadata in the header, the values concatenated as the data block
// (eager in one transaction when small, one client RDMA read when
// large). Keys are walked straight out of the receive buffer and the
// reply header is built in the worker's arena in the same pass.
func (s *Server) amMGetComplete(clk *simnet.VClock, ep *ucr.Endpoint, hdr, data []byte, _ ucr.CounterID) {
	w := s.workerFor(ep)
	replyCtr, cur, err := NewMGetKeyCursor(hdr)
	if err != nil {
		return
	}
	items := w.mgetItems[:0]
	w.reply = BeginMGetReply(w.reply[:0])
	total, found := 0, 0
	for {
		key, ok := cur.Next()
		if !ok {
			break
		}
		s.opCharge(clk, ep)
		s.OpsServed.Add(1)
		s.chargeLockBytes(clk, key, 0)
		it, hit := s.store.GetPinnedBytes(key, clk.Now())
		if !hit {
			continue
		}
		w.reply = AppendMGetReplyItem(w.reply, key, it.Flags(), it.CAS(), len(it.Value()))
		items = append(items, it)
		total += len(it.Value())
		found++
	}
	FinishMGetReply(w.reply, 0, found)
	release := func() {
		for i, it := range items {
			s.store.Unpin(it)
			items[i] = nil
		}
		w.mgetItems = items[:0]
	}
	if ep.Reliability() == ucr.Unreliable && len(w.reply)+total > ep.MaxEager() {
		// UD small-get mode: the batch outgrew the datagram. Release the
		// pins and send the payload-free retry marker; the client
		// re-issues the whole batch over RC.
		release()
		_ = ep.Send(clk, AMMGetRetry, nil, nil, nil, replyCtr, nil)
		return
	}
	// Assemble the concatenated block in one pre-sized copy straight out
	// of the pinned slab chunks; the pins also keep eviction from
	// recycling a chunk between lookup and copy. An eager reply is
	// packed into the send buffer synchronously, so the worker's value
	// arena can stage it; a rendezvous reply is RDMA-read by the client
	// later and needs a buffer of its own.
	var values []byte
	if len(w.reply)+total <= ep.MaxEager() {
		if cap(w.vals) < total {
			w.vals = make([]byte, 0, total)
		}
		values = w.vals[:0]
	} else {
		values = make([]byte, 0, total)
	}
	for _, it := range items {
		values = append(values, it.Value()...)
	}
	release()
	clk.Advance(simnet.BytesDuration(len(values), s.ucrRT.Config().PackBytesPerSec))
	_ = ep.Send(clk, AMMGetReply, w.reply, values, nil, replyCtr, nil)
}

// amStoreHeader stages the incoming value for a conditional store. The
// value lands in a plain buffer, not slab memory: whether a conditional
// store allocates at all is decided under the shard lock in the
// completion handler. Eager transfers reuse the worker's staging arena;
// rendezvous transfers get a fresh buffer (the RDMA read that fills it
// completes asynchronously).
func (s *Server) amStoreHeader(clk *simnet.VClock, ep *ucr.Endpoint, hdr []byte, dataLen int, _ ucr.CounterID) []byte {
	if len(hdr)+dataLen <= ep.MaxEager() {
		return s.workerFor(ep).storeBuf(dataLen)
	}
	return make([]byte, dataLen)
}

// amStoreComplete serves the conditional storage commands. The value
// copy into the slab happens under the lock (like the sockets path, and
// unlike AMSet's RDMA-lands-first fast path), so it extends the hold.
func (s *Server) amStoreComplete(clk *simnet.VClock, ep *ucr.Endpoint, hdr, data []byte, _ ucr.CounterID) {
	w := s.workerFor(ep)
	req, err := DecodeStoreReqView(hdr)
	if err != nil {
		return
	}
	s.opCharge(clk, ep)
	s.OpsServed.Add(1)
	s.chargeLockBytes(clk, req.Key, len(data))
	now := clk.Now()
	key := string(req.Key)
	var res StoreResult
	switch req.Op {
	case StoreOpAdd:
		res = s.store.Add(key, req.Flags, req.Exptime, data, now)
	case StoreOpReplace:
		res = s.store.Replace(key, req.Flags, req.Exptime, data, now)
	case StoreOpAppend:
		res = s.store.Append(key, data, now)
	case StoreOpPrepend:
		res = s.store.Prepend(key, data, now)
	case StoreOpCas:
		res = s.store.Cas(key, req.Flags, req.Exptime, data, req.CAS, now)
	default:
		res = NotStored
	}
	if req.ReplyCtr == 0 {
		return
	}
	status := AMOK
	if res != Stored {
		status = AMError
	}
	w.reply = AppendStatusReply(w.reply[:0], StatusReply{Status: status, Result: res})
	_ = ep.Send(clk, AMSetReply, w.reply, nil, nil, req.ReplyCtr, nil)
}

// amOSDescComplete answers the one-sided descriptor query: whether the
// index is armed and, if so, the directory's geometry and window.
func (s *Server) amOSDescComplete(clk *simnet.VClock, ep *ucr.Endpoint, hdr, data []byte, _ ucr.CounterID) {
	req, err := DecodeKeyReq(hdr)
	if err != nil {
		return
	}
	var rep OSDescReply
	if x := s.store.OneSidedIndex(); x != nil {
		rep = OSDescReply{Enabled: true, Buckets: x.Buckets(), Slots: x.Slots(), Dir: x.DirDesc()}
	}
	_ = ep.Send(clk, AMOSDescReply, EncodeOSDescReply(rep), nil, nil, req.ReplyCtr, nil)
}

// amDeleteComplete serves delete.
func (s *Server) amDeleteComplete(clk *simnet.VClock, ep *ucr.Endpoint, hdr, data []byte, _ ucr.CounterID) {
	w := s.workerFor(ep)
	req, err := DecodeKeyReqView(hdr)
	if err != nil {
		return
	}
	s.opCharge(clk, ep)
	s.OpsServed.Add(1)
	s.chargeLockBytes(clk, req.Key, 0)
	status := AMMiss
	if s.store.Delete(string(req.Key), clk.Now()) {
		status = AMOK
	}
	w.reply = AppendStatusReply(w.reply[:0], StatusReply{Status: status})
	_ = ep.Send(clk, AMDeleteReply, w.reply, nil, nil, req.ReplyCtr, nil)
}

// amNumComplete serves incr/decr.
func (s *Server) amNumComplete(incr bool) ucr.CompletionHandler {
	return func(clk *simnet.VClock, ep *ucr.Endpoint, hdr, data []byte, _ ucr.CounterID) {
		w := s.workerFor(ep)
		req, err := DecodeNumReq(hdr)
		if err != nil {
			return
		}
		s.opCharge(clk, ep)
		s.OpsServed.Add(1)
		s.chargeLock(clk, req.Key, 0)
		val, found, bad, oom := s.store.IncrDecr(req.Key, req.Delta, incr, clk.Now())
		status := AMOK
		switch {
		case !found:
			status = AMMiss
		case bad:
			status = AMBadValue
		case oom:
			status = AMError
		}
		w.reply = AppendNumReply(w.reply[:0], NumReply{Status: status, Value: val})
		_ = ep.Send(clk, AMNumReply, w.reply, nil, nil, req.ReplyCtr, nil)
	}
}

//go:build mut_get_skip_expiry

package memcached

func init() {
	mutGetSkipExpiry = true
	activeMutations = append(activeMutations, "mut_get_skip_expiry")
}

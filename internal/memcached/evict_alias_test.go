package memcached

import (
	"bytes"
	"strconv"
	"testing"
)

// These tests pin down the append/prepend and incr grow paths under
// eviction pressure: newItemLocked may evict LRU victims while the old
// item's value is still needed as the copy source. Without pinning the
// old item across the allocation, the victim can be the old item itself
// — its chunk is freed, immediately recycled as the new item's chunk,
// and the "copy old value" step then reads the buffer it is writing.

// topClassValueLen returns a value length that, with a 2-byte key, lands
// in the arena's largest (1 MB) class — one chunk per page, so eviction
// pressure is exact: one item per page, no free chunks.
func topClassValueLen(s *Store) int {
	a := s.Arena()
	sz2 := a.ClassSize(a.NumClasses() - 2)
	// n = keyLen + valueLen + itemOverhead must exceed the second-to-
	// largest class to select the top class.
	return sz2 + 1 - itemOverhead - 2
}

// patternValue builds a value whose bytes vary with position, so a
// shifted or self-overwritten copy is detectable.
func patternValue(n int) []byte {
	v := make([]byte, n)
	for i := range v {
		v[i] = byte('a' + i%26)
	}
	return v
}

// TestPrependEvictionAliasing fills a two-page arena with two top-class
// items and prepends to the LRU-tail one. The grown copy needs a fresh
// top-class chunk; the only way to get one is eviction. The old item
// must be pinned across that allocation — otherwise it is itself the
// LRU victim, its chunk is recycled as the destination, and the prepend
// writes over its own copy source (on the unfixed code the value comes
// back with the prefix duplicated where the old head bytes should be).
func TestPrependEvictionAliasing(t *testing.T) {
	s := NewStore(StoreConfig{MemoryLimit: 2 << 20, MaxItemSize: 1 << 20})
	vlen := topClassValueLen(s)
	oldVal := patternValue(vlen)

	if res := s.Set("aa", 0, 0, oldVal, 0); res != Stored {
		t.Fatalf("Set aa = %s", res)
	}
	if res := s.Set("bb", 0, 0, patternValue(vlen), 0); res != Stored {
		t.Fatalf("Set bb = %s", res)
	}
	// LRU within the top class is now head=bb, tail=aa: growing aa must
	// not pick aa itself as the victim.
	if res := s.Prepend("aa", []byte("XYZ"), 0); res != Stored {
		t.Fatalf("Prepend = %s", res)
	}

	got, _, _, ok := s.Get("aa", 0)
	if !ok {
		t.Fatal("aa lost after prepend")
	}
	want := append([]byte("XYZ"), oldVal...)
	if !bytes.Equal(got, want) {
		i := 0
		for i < len(got) && i < len(want) && got[i] == want[i] {
			i++
		}
		t.Fatalf("prepend corrupted value: len %d vs %d, first diff at byte %d (got %q... want %q...)",
			len(got), len(want), i, got[i:min(i+8, len(got))], want[i:min(i+8, len(want))])
	}
	// The pin redirects eviction to the other resident of the class.
	if _, _, _, ok := s.Get("bb", 0); ok {
		t.Fatal("bb should have been the eviction victim")
	}
	if ev := s.Stats().Evictions; ev != 1 {
		t.Fatalf("Evictions = %d, want 1", ev)
	}
}

// TestAppendEvictionAliasing is the append-side twin: same single-victim
// geometry, growing the tail item by appending. Byte-identical output
// can mask the aliasing on append (source and destination share their
// starting offset), so this asserts the pin semantics directly: the old
// item must survive as the copy source and the *other* item must be the
// victim.
func TestAppendEvictionAliasing(t *testing.T) {
	s := NewStore(StoreConfig{MemoryLimit: 2 << 20, MaxItemSize: 1 << 20})
	vlen := topClassValueLen(s)
	oldVal := patternValue(vlen)

	if res := s.Set("aa", 0, 0, oldVal, 0); res != Stored {
		t.Fatalf("Set aa = %s", res)
	}
	if res := s.Set("bb", 0, 0, patternValue(vlen), 0); res != Stored {
		t.Fatalf("Set bb = %s", res)
	}
	if res := s.Append("aa", []byte("XYZ"), 0); res != Stored {
		t.Fatalf("Append = %s", res)
	}
	got, _, _, ok := s.Get("aa", 0)
	if !ok {
		t.Fatal("aa lost after append")
	}
	if !bytes.Equal(got, append(append([]byte{}, oldVal...), []byte("XYZ")...)) {
		t.Fatal("append corrupted value")
	}
	if _, _, _, ok := s.Get("bb", 0); ok {
		t.Fatal("bb should have been the eviction victim")
	}
}

// TestPrependSinglePageOOM: with a one-page arena the old item is the
// only possible victim, and it is pinned — the grow must fail with OOM
// and leave the original value intact, not cannibalize the item being
// grown (which is what the unfixed code does: it "succeeds" by evicting
// the copy source).
func TestPrependSinglePageOOM(t *testing.T) {
	s := NewStore(StoreConfig{MemoryLimit: 1 << 20, MaxItemSize: 1 << 20})
	vlen := topClassValueLen(s)
	oldVal := patternValue(vlen)
	if res := s.Set("aa", 0, 0, oldVal, 0); res != Stored {
		t.Fatalf("Set aa = %s", res)
	}
	if res := s.Prepend("aa", []byte("XYZ"), 0); res != OOM {
		t.Fatalf("Prepend in full one-page arena = %s, want %s", res, OOM)
	}
	got, _, _, ok := s.Get("aa", 0)
	if !ok || !bytes.Equal(got, oldVal) {
		t.Fatal("failed prepend must leave the original value intact")
	}
}

// fillSmallClass sets filler items until the class holding n-byte
// allocations has no free chunks (incr values are uint64, so the grow
// path lives in the smallest class — fill that one exactly).
func fillSmallClass(t *testing.T, s *Store, n int) {
	t.Helper()
	a := s.Arena()
	ci, ok := a.ClassFor(n)
	if !ok {
		t.Fatalf("no class for %d bytes", n)
	}
	for i := 0; a.FreeChunks(ci) > 0; i++ {
		key := "f" + strconv.Itoa(100000+i)
		if res := s.Set(key, 0, 0, []byte("1"), 0); res != Stored {
			t.Fatalf("filler Set %s = %s", key, res)
		}
	}
}

// TestIncrGrowEvictsOtherItem: the incr realloc path under eviction
// pressure. The item being grown is pinned across the allocation, so
// the LRU victim is its oldest neighbour — not the item itself (the
// unfixed code recycles the grown item's own chunk, silently skipping
// the LRU-ordered victim).
func TestIncrGrowEvictsOtherItem(t *testing.T) {
	s := NewStore(StoreConfig{MemoryLimit: 1 << 20})
	if res := s.Set("nn", 0, 0, []byte("9"), 0); res != Stored {
		t.Fatal("Set nn failed")
	}
	fillSmallClass(t, s, len("nn")+len("10")+itemOverhead)

	// LRU tail of the class is nn (oldest, never touched since).
	val, found, bad, oom := s.IncrDecr("nn", 1, true, 0)
	if val != 10 || !found || bad || oom {
		t.Fatalf("IncrDecr = (%d, found=%v bad=%v oom=%v)", val, found, bad, oom)
	}
	if got, _, _, ok := s.Get("nn", 0); !ok || string(got) != "10" {
		t.Fatalf("nn after grow = %q, %v", got, ok)
	}
	if ev := s.Stats().Evictions; ev != 1 {
		t.Fatalf("Evictions = %d, want 1", ev)
	}
	// With nn pinned the victim is the second-oldest item, the first
	// filler; without the pin nn itself is evicted and f100000 survives.
	if _, _, _, ok := s.Get("f100000", 0); ok {
		t.Fatal("oldest filler should have been the eviction victim")
	}
}

// TestIncrGrowOOMIsServerError: when the grown value cannot be
// allocated, IncrDecr must report oom (protocol SERVER_ERROR) — a
// server failure — not badValue (CLIENT_ERROR), which blames the
// caller. Evictions are disabled so the full arena cannot make room,
// and the original value must survive the failed grow.
func TestIncrGrowOOMIsServerError(t *testing.T) {
	s := NewStore(StoreConfig{MemoryLimit: 1 << 20, DisableEvictions: true})
	if res := s.Set("nn", 0, 0, []byte("9"), 0); res != Stored {
		t.Fatal("Set nn failed")
	}
	fillSmallClass(t, s, len("nn")+len("10")+itemOverhead)

	val, found, bad, oom := s.IncrDecr("nn", 1, true, 0)
	if !found || bad || !oom {
		t.Fatalf("IncrDecr = (%d, found=%v bad=%v oom=%v), want oom", val, found, bad, oom)
	}
	if got, _, _, ok := s.Get("nn", 0); !ok || string(got) != "9" {
		t.Fatal("failed incr grow must leave the original value intact")
	}
}

//go:build mut_replica_skip

package memcached

import "repro/internal/ring"

// Drops the replica leg of the fleet write-through (the switch lives in
// the ring package so the fleet client can consult it without importing
// this package).
func init() {
	ring.MutReplicaSkip = true
	activeMutations = append(activeMutations, "mut_replica_skip")
}

//go:build mut_add_clobbers

package memcached

func init() {
	mutAddClobbers = true
	activeMutations = append(activeMutations, "mut_add_clobbers")
}

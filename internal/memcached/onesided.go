package memcached

import (
	"encoding/binary"
	"errors"
	"math/bits"
	"sync"

	"repro/internal/simnet"
	"repro/internal/ucr"
)

// errNoUCR rejects EnableOneSided on a server without a UCR frontend.
var errNoUCR = errors.New("memcached: one-sided GET requires a UCR runtime (call ServeUCR first)")

// One-sided GET index (the paper's §VII future direction: serve GETs
// with client-issued RDMA Reads so the server CPU never runs). The
// server publishes a remotely-readable hash-bucket directory window;
// each live item has a directory entry naming where its [key][value]
// bytes sit in slab memory ({addr, rkey, lengths}) plus a seqlock word
// derived from the item's CAS id. Clients resolve key → entry with one
// directory read, RDMA-READ the bytes, and re-read the entry: the
// seqlock must be even and unchanged across the value fetch, or the
// read raced an overwrite/eviction and the client falls back to the
// two-sided AM path.
//
// Every mutation of published memory — directory entries and slab chunk
// bytes — happens under idx.guard's write lock, which is also installed
// as the server HCA's memory guard so simulated DMA read-locks it. The
// guard makes each individual RDMA read atomic; the seqlock makes the
// three-read sequence (entry, value, entry again) safe end to end.

// osEntrySize is the encoded size of one directory entry:
// keyHash(8) seq(8) addr(8) expireAt(8) rkey(4) kvlen(4) flags(4) pad(4).
const osEntrySize = 48

// OSEntrySize exports the slot size for the client-side reader.
const OSEntrySize = osEntrySize

// Default directory geometry. 512×4 entries cover the working sets the
// benchmarks use; a full bucket displaces its oldest slot (the displaced
// key silently degrades to the AM path).
const (
	osDefaultBuckets = 512
	osDefaultSlots   = 4
)

// osMaxKeyLen and osMaxValLen bound what fits in the packed kvlen word
// (keyLen<<24 | valLen). Memcached keys cap at 250 bytes and items at
// one slab page, so nothing representable is excluded.
const (
	osMaxKeyLen = 1<<8 - 1
	osMaxValLen = 1<<24 - 1
)

// OSEntry is one decoded directory slot.
type OSEntry struct {
	KeyHash  uint64
	Seq      uint64 // 2×casID when stable; odd or 0 means invalid
	Addr     uint64 // RDMA address of [key][value] in a slab-page window
	ExpireAt simnet.Time
	RKey     uint32
	KeyLen   int
	ValLen   int
	Flags    uint32
}

// Live reports whether the slot holds a validatable entry.
func (e OSEntry) Live() bool { return e.KeyHash != 0 && e.Seq != 0 && e.Seq%2 == 0 }

// CAS recovers the item's CAS id from the seqlock word.
func (e OSEntry) CAS() uint64 { return e.Seq / 2 }

// DecodeOSEntry unpacks one slot.
func DecodeOSEntry(b []byte) OSEntry {
	le := binary.LittleEndian
	kv := le.Uint32(b[36:])
	return OSEntry{
		KeyHash:  le.Uint64(b),
		Seq:      le.Uint64(b[8:]),
		Addr:     le.Uint64(b[16:]),
		ExpireAt: simnet.Time(le.Uint64(b[24:])),
		RKey:     le.Uint32(b[32:]),
		KeyLen:   int(kv >> 24),
		ValLen:   int(kv & 0xffffff),
		Flags:    le.Uint32(b[40:]),
	}
}

// OSKeyHash is the hash both sides use to place a key in the directory.
func OSKeyHash(key string) uint64 {
	h := hashKey(key)
	if h == 0 {
		h = 1 // 0 marks an empty slot
	}
	return h
}

// OSBucketOf maps a key hash to a bucket. buckets must be a power of
// two; a Fibonacci spread keeps the directory independent of both the
// shard selector (high bits) and the hash-table buckets (low bits).
func OSBucketOf(h uint64, buckets int) int {
	shift := 64 - bits.TrailingZeros64(uint64(buckets))
	return int((h * 0x9e3779b97f4a7c15) >> shift)
}

// AM ids for the descriptor exchange: a client asks once per endpoint
// whether one-sided GET is on and where the directory lives.
const (
	AMOSDesc      uint8 = 0x17
	AMOSDescReply uint8 = 0x25
)

// OSDescReply answers AMOSDesc: whether one-sided GET is enabled and,
// if so, the directory geometry and window descriptor.
type OSDescReply struct {
	Enabled        bool
	Buckets, Slots int
	Dir            ucr.WindowDesc
}

// EncodeOSDescReply packs the reply header.
func EncodeOSDescReply(r OSDescReply) []byte {
	b := make([]byte, 9)
	if r.Enabled {
		b[0] = 1
	}
	le := binary.LittleEndian
	le.PutUint32(b[1:], uint32(r.Buckets))
	le.PutUint32(b[5:], uint32(r.Slots))
	return append(b, r.Dir.Encode()...)
}

// DecodeOSDescReply unpacks the reply header.
func DecodeOSDescReply(b []byte) (OSDescReply, error) {
	if len(b) < 9 {
		return OSDescReply{}, ErrShortAMHeader
	}
	le := binary.LittleEndian
	r := OSDescReply{
		Enabled: b[0] != 0,
		Buckets: int(le.Uint32(b[1:])),
		Slots:   int(le.Uint32(b[5:])),
	}
	if r.Enabled {
		d, ok := ucr.DecodeWindowDesc(b[9:])
		if !ok {
			return OSDescReply{}, ErrShortAMHeader
		}
		r.Dir = d
	}
	return r, nil
}

// osIndex is the server-side publisher.
type osIndex struct {
	rt             *ucr.Runtime
	arena          *SlabArena
	buckets, slots int

	// guard orders every write to published memory against simulated
	// DMA; it is installed as the server HCA's memory guard. Writers are
	// already serialized per key by the shard locks (taken first; the
	// guard is always innermost), so the write lock is short and final.
	guard sync.RWMutex

	dir    []byte
	dirWin *ucr.Window

	mu       sync.Mutex // guards pageWins growth
	pageWins []*ucr.Window

	published, displaced, unpublished uint64
}

func newOSIndex(rt *ucr.Runtime, arena *SlabArena, buckets, slots int) (*osIndex, error) {
	if buckets <= 0 {
		buckets = osDefaultBuckets
	}
	// Round buckets to a power of two for OSBucketOf.
	for buckets&(buckets-1) != 0 {
		buckets &= buckets - 1
	}
	if slots <= 0 {
		slots = osDefaultSlots
	}
	x := &osIndex{
		rt:      rt,
		arena:   arena,
		buckets: buckets,
		slots:   slots,
		dir:     make([]byte, buckets*slots*osEntrySize),
	}
	win, err := rt.CreateWindow(x.dir, nil)
	if err != nil {
		return nil, err
	}
	x.dirWin = win
	return x, nil
}

// pageWindow lazily registers slab page pi as an RDMA window.
// Registration happens off the virtual clock: pages register once, on
// first publish, and the paper's design amortizes pinning outside the
// data path. Returns nil if registration fails (the item then simply
// stays AM-only).
func (x *osIndex) pageWindow(pi int) *ucr.Window {
	x.mu.Lock()
	defer x.mu.Unlock()
	for len(x.pageWins) <= pi {
		x.pageWins = append(x.pageWins, nil)
	}
	if w := x.pageWins[pi]; w != nil {
		return w
	}
	w, err := x.rt.CreateWindow(x.arena.PageBytes(pi), nil)
	if err != nil {
		return nil
	}
	x.pageWins[pi] = w
	return w
}

// slotBytes returns the encoded bytes of bucket b, slot s.
func (x *osIndex) slotBytes(b, s int) []byte {
	base := (b*x.slots + s) * osEntrySize
	return x.dir[base : base+osEntrySize]
}

// publish writes (or rewrites) it's directory entry. Callers hold the
// item's shard lock; the guard is taken inside.
func (x *osIndex) publish(it *Item) {
	x.guard.Lock()
	x.publishLocked(it)
	x.guard.Unlock()
}

// publishLocked is publish for callers already holding the guard.
func (x *osIndex) publishLocked(it *Item) {
	if len(it.key) > osMaxKeyLen || len(it.value) > osMaxValLen {
		return
	}
	w := x.pageWindow(it.chunk.page)
	if w == nil {
		return
	}
	h := OSKeyHash(it.key)
	b := OSBucketOf(h, x.buckets)
	slot := -1
	for s := 0; s < x.slots; s++ {
		sb := x.slotBytes(b, s)
		kh := binary.LittleEndian.Uint64(sb)
		if kh == h {
			slot = s
			break
		}
		if kh == 0 && slot < 0 {
			slot = s
		}
	}
	reuse := slot >= 0 && binary.LittleEndian.Uint64(x.slotBytes(b, slot)) == h
	if slot < 0 {
		// Full bucket: displace a hash-chosen victim. The displaced key
		// falls back to the AM path on its next one-sided attempt.
		slot = int(h>>57) % x.slots
		x.displaced++
	}
	seq := 2 * it.casID
	if mutOneSidedStale && reuse {
		// Mutation: keep the old seqlock value on overwrite, so a client
		// validating against the directory accepts a stale pair.
		seq = binary.LittleEndian.Uint64(x.slotBytes(b, slot)[8:])
	}
	sb := x.slotBytes(b, slot)
	le := binary.LittleEndian
	le.PutUint64(sb, h)
	le.PutUint64(sb[8:], seq)
	le.PutUint64(sb[16:], w.Desc().Addr+uint64(it.chunk.off))
	le.PutUint64(sb[24:], uint64(it.expireAt))
	le.PutUint32(sb[32:], uint32(w.Desc().RKey))
	le.PutUint32(sb[36:], uint32(len(it.key))<<24|uint32(len(it.value)))
	le.PutUint32(sb[40:], it.flags)
	le.PutUint32(sb[44:], 0)
	x.published++
}

// unpublish invalidates it's entry (if it still owns one): the seqlock
// goes odd before the slot empties, so a client mid-read fails its
// re-validation instead of trusting a recycled chunk.
func (x *osIndex) unpublish(it *Item) {
	h := OSKeyHash(it.key)
	b := OSBucketOf(h, x.buckets)
	x.guard.Lock()
	for s := 0; s < x.slots; s++ {
		sb := x.slotBytes(b, s)
		le := binary.LittleEndian
		if le.Uint64(sb) != h {
			continue
		}
		le.PutUint64(sb[8:], le.Uint64(sb[8:])|1) // odd: invalid
		le.PutUint64(sb, 0)
		le.PutUint64(sb[16:], 0)
		le.PutUint32(sb[36:], 0)
		x.unpublished++
		break
	}
	x.guard.Unlock()
}

// wipe empties the whole directory (flush_all). Callers hold every
// shard lock, so no publisher can race the sweep.
func (x *osIndex) wipe() {
	x.guard.Lock()
	for i := range x.dir {
		x.dir[i] = 0
	}
	x.guard.Unlock()
}

// Buckets reports the directory's bucket count.
func (x *osIndex) Buckets() int { return x.buckets }

// Slots reports slots per bucket.
func (x *osIndex) Slots() int { return x.slots }

// DirDesc reports the directory window's descriptor.
func (x *osIndex) DirDesc() ucr.WindowDesc { return x.dirWin.Desc() }

// Guard exposes the memory guard to install as the HCA's.
func (x *osIndex) Guard() *sync.RWMutex { return &x.guard }

// Stats reports publish/displace/invalidate counts (tests, reporting).
func (x *osIndex) Stats() (published, displaced, unpublished uint64) {
	x.guard.RLock()
	defer x.guard.RUnlock()
	return x.published, x.displaced, x.unpublished
}

// close revokes the windows (server shutdown).
func (x *osIndex) close() {
	if x.dirWin != nil {
		x.dirWin.Close()
	}
	x.mu.Lock()
	wins := x.pageWins
	x.pageWins = nil
	x.mu.Unlock()
	for _, w := range wins {
		if w != nil {
			w.Close()
		}
	}
}

// --- Server integration ------------------------------------------------

// EnableOneSided arms the one-sided GET index on a UCR-serving server:
// the store starts publishing directory entries and the serving HCA
// gets the index's memory guard, so simulated DMA and the engine's
// writes to published memory are ordered. Call after ServeUCR, before
// traffic. buckets/slots ≤ 0 get defaults.
func (s *Server) EnableOneSided(buckets, slots int) error {
	if s.ucrRT == nil {
		return errNoUCR
	}
	x, err := s.store.EnableOneSided(s.ucrRT, buckets, slots)
	if err != nil {
		return err
	}
	s.ucrRT.HCA().SetMemGuard(x.Guard())
	return nil
}

// --- Store integration -------------------------------------------------

// EnableOneSided arms the store's one-sided index: every commit path
// publishes, every unlink path unpublishes, and the returned index's
// guard must be installed as the serving HCA's memory guard. buckets
// and slots ≤ 0 get defaults.
func (s *Store) EnableOneSided(rt *ucr.Runtime, buckets, slots int) (*osIndex, error) {
	x, err := newOSIndex(rt, s.arena, buckets, slots)
	if err != nil {
		return nil, err
	}
	s.pub.Store(x)
	return x, nil
}

// OneSidedIndex reports the armed index, or nil.
func (s *Store) OneSidedIndex() *osIndex { return s.pub.Load() }

// memWr runs fn — a writer of slab chunk bytes — under the one-sided
// memory guard when armed. Unarmed stores pay only a nil check.
func (s *Store) memWr(fn func()) {
	if x := s.pub.Load(); x != nil {
		x.guard.Lock()
		fn()
		x.guard.Unlock()
		return
	}
	fn()
}

// mutateInPlace runs fn (an in-place rewrite of it.value/casID) and
// republishes the item's entry in one guard critical section, so no
// reader can pair the new bytes with the old seqlock or vice versa.
func (s *Store) mutateInPlace(it *Item, fn func()) {
	x := s.pub.Load()
	if x == nil {
		fn()
		return
	}
	x.guard.Lock()
	fn()
	x.publishLocked(it)
	x.guard.Unlock()
}

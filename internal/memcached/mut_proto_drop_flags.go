//go:build mut_proto_drop_flags

package memcached

func init() {
	mutProtoDropFlags = true
	activeMutations = append(activeMutations, "mut_proto_drop_flags")
}

package memcached

import (
	"bytes"
	"fmt"
	"io"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/simnet"
)

// duplex is an in-memory io.ReadWriter for codec tests.
type duplex struct {
	in  *bytes.Reader
	out bytes.Buffer
}

func (d *duplex) Read(p []byte) (int, error)  { return d.in.Read(p) }
func (d *duplex) Write(p []byte) (int, error) { return d.out.Write(p) }

// serveScript feeds the protocol handler a scripted request stream and
// returns everything it wrote.
func serveScript(t *testing.T, store *Store, script string) string {
	t.Helper()
	d := &duplex{in: bytes.NewReader([]byte(script))}
	pc := NewProtoConn(d, store)
	clk := simnet.NewVClock(0)
	for {
		quit, err := pc.ServeOne(clk)
		if err == io.EOF || quit {
			break
		}
		if err != nil {
			t.Fatalf("ServeOne: %v", err)
		}
	}
	return d.out.String()
}

func TestProtocolSetGet(t *testing.T) {
	s := newTestStore()
	out := serveScript(t, s,
		"set greeting 42 0 5\r\nhello\r\n"+
			"get greeting\r\n"+
			"get nothing\r\n")
	want := "STORED\r\n" +
		"VALUE greeting 42 5\r\nhello\r\nEND\r\n" +
		"END\r\n"
	if out != want {
		t.Fatalf("out = %q, want %q", out, want)
	}
}

func TestProtocolGets(t *testing.T) {
	s := newTestStore()
	out := serveScript(t, s,
		"set k 0 0 1\r\nx\r\n"+
			"gets k\r\n")
	if !strings.Contains(out, "VALUE k 0 1 1\r\nx\r\nEND\r\n") {
		t.Fatalf("gets output = %q", out)
	}
}

func TestProtocolMultiGet(t *testing.T) {
	s := newTestStore()
	out := serveScript(t, s,
		"set a 0 0 1\r\n1\r\n"+
			"set b 0 0 1\r\n2\r\n"+
			"get a b c\r\n")
	if !strings.Contains(out, "VALUE a 0 1\r\n1\r\n") || !strings.Contains(out, "VALUE b 0 1\r\n2\r\n") {
		t.Fatalf("multiget output = %q", out)
	}
	if strings.Contains(out, "VALUE c") {
		t.Fatal("missing key produced a VALUE")
	}
}

func TestProtocolAddReplaceCas(t *testing.T) {
	s := newTestStore()
	out := serveScript(t, s,
		"add k 0 0 2\r\nv1\r\n"+
			"add k 0 0 2\r\nv2\r\n"+
			"replace k 0 0 2\r\nv3\r\n"+
			"cas k 0 0 2 999\r\nv4\r\n"+
			"cas missing 0 0 2 1\r\nv5\r\n")
	want := "STORED\r\nNOT_STORED\r\nSTORED\r\nEXISTS\r\nNOT_FOUND\r\n"
	if out != want {
		t.Fatalf("out = %q, want %q", out, want)
	}
}

func TestProtocolAppendPrepend(t *testing.T) {
	s := newTestStore()
	out := serveScript(t, s,
		"set k 0 0 3\r\nmid\r\n"+
			"append k 0 0 4\r\n-end\r\n"+
			"prepend k 0 0 6\r\nstart-\r\n"+
			"get k\r\n")
	if !strings.Contains(out, "VALUE k 0 13\r\nstart-mid-end\r\n") {
		t.Fatalf("out = %q", out)
	}
}

func TestProtocolDelete(t *testing.T) {
	s := newTestStore()
	out := serveScript(t, s,
		"set k 0 0 1\r\nx\r\n"+
			"delete k\r\n"+
			"delete k\r\n")
	if out != "STORED\r\nDELETED\r\nNOT_FOUND\r\n" {
		t.Fatalf("out = %q", out)
	}
}

func TestProtocolIncrDecr(t *testing.T) {
	s := newTestStore()
	out := serveScript(t, s,
		"set n 0 0 2\r\n10\r\n"+
			"incr n 5\r\n"+
			"decr n 100\r\n"+
			"incr missing 1\r\n"+
			"incr n bogus\r\n")
	want := "STORED\r\n15\r\n0\r\nNOT_FOUND\r\nCLIENT_ERROR invalid numeric delta argument\r\n"
	if out != want {
		t.Fatalf("out = %q, want %q", out, want)
	}
}

func TestProtocolTouchFlushVersion(t *testing.T) {
	s := newTestStore()
	out := serveScript(t, s,
		"set k 0 0 1\r\nx\r\n"+
			"touch k 100\r\n"+
			"touch missing 100\r\n"+
			"version\r\n"+
			"verbosity 1\r\n"+
			"flush_all\r\n"+
			"get k\r\n")
	want := "STORED\r\nTOUCHED\r\nNOT_FOUND\r\nVERSION " + Version + "\r\nOK\r\nOK\r\nEND\r\n"
	if out != want {
		t.Fatalf("out = %q, want %q", out, want)
	}
}

func TestProtocolNoreply(t *testing.T) {
	s := newTestStore()
	out := serveScript(t, s,
		"set k 0 0 1 noreply\r\nx\r\n"+
			"delete k noreply\r\n"+
			"incr k 1 noreply\r\n"+
			"get k\r\n")
	if out != "END\r\n" {
		t.Fatalf("noreply leaked output: %q", out)
	}
}

func TestProtocolErrors(t *testing.T) {
	s := newTestStore()
	out := serveScript(t, s,
		"bogus\r\n"+
			"get\r\n"+
			"set k notanumber 0 1\r\nx\r\n"+
			"incr\r\n")
	want := "ERROR\r\nERROR\r\nCLIENT_ERROR bad command line format\r\nERROR\r\n"
	if out != want {
		t.Fatalf("out = %q, want %q", out, want)
	}
}

func TestProtocolBadDataChunk(t *testing.T) {
	s := newTestStore()
	out := serveScript(t, s, "set k 0 0 1\r\nxQQ") // missing \r\n terminator
	if !strings.Contains(out, "CLIENT_ERROR bad data chunk") {
		t.Fatalf("out = %q", out)
	}
}

func TestProtocolQuit(t *testing.T) {
	s := newTestStore()
	d := &duplex{in: bytes.NewReader([]byte("quit\r\nset k 0 0 1\r\nx\r\n"))}
	pc := NewProtoConn(d, s)
	quit, err := pc.ServeOne(simnet.NewVClock(0))
	if err != nil || !quit {
		t.Fatalf("quit = (%v, %v)", quit, err)
	}
	if s.CurrItems() != 0 {
		t.Fatal("command after quit executed")
	}
}

func TestProtocolStats(t *testing.T) {
	s := newTestStore()
	out := serveScript(t, s,
		"set k 0 0 1\r\nx\r\n"+
			"get k\r\n"+
			"stats\r\n")
	if !strings.Contains(out, "STAT cmd_get 1\r\n") ||
		!strings.Contains(out, "STAT cmd_set 1\r\n") ||
		!strings.Contains(out, "STAT get_hits 1\r\n") ||
		!strings.Contains(out, "STAT curr_items 1\r\n") {
		t.Fatalf("stats output = %q", out)
	}
	if !strings.HasSuffix(out, "END\r\n") {
		t.Fatal("stats not terminated")
	}
}

func TestProtocolLargeValue(t *testing.T) {
	s := newTestStore()
	big := strings.Repeat("z", 100_000)
	out := serveScript(t, s,
		"set big 0 0 100000\r\n"+big+"\r\n"+
			"get big\r\n")
	if !strings.Contains(out, "VALUE big 0 100000\r\n"+big+"\r\n") {
		t.Fatal("large value mangled")
	}
}

func TestProtocolBinaryValue(t *testing.T) {
	s := newTestStore()
	val := []byte{0, 1, 2, '\r', '\n', 255, 254}
	script := append([]byte("set bin 0 0 7\r\n"), val...)
	script = append(script, []byte("\r\nget bin\r\n")...)
	out := serveScript(t, s, string(script))
	if !strings.Contains(out, "VALUE bin 0 7\r\n"+string(val)+"\r\n") {
		t.Fatalf("binary value mangled: %q", out)
	}
}

func TestProtocolStatsSlabs(t *testing.T) {
	s := newTestStore()
	out := serveScript(t, s,
		"set k 0 0 1000\r\n"+strings.Repeat("x", 1000)+"\r\n"+
			"stats slabs\r\n")
	if !strings.Contains(out, ":chunk_size ") ||
		!strings.Contains(out, ":total_pages 1\r\n") ||
		!strings.Contains(out, "STAT active_slabs 1\r\n") ||
		!strings.Contains(out, "STAT total_malloced 1048576\r\n") {
		t.Fatalf("stats slabs = %q", out)
	}
	if !strings.Contains(out, ":used_chunks 1\r\n") {
		t.Fatalf("one stored item should occupy one chunk: %q", out)
	}
}

func TestProtocolStatsItems(t *testing.T) {
	s := newTestStore()
	out := serveScript(t, s,
		"set small 0 0 10\r\n"+strings.Repeat("a", 10)+"\r\n"+
			"set large 0 0 5000\r\n"+strings.Repeat("b", 5000)+"\r\n"+
			"stats items\r\n")
	// Two different classes hold one item each.
	hits := strings.Count(out, ":number 1\r\n")
	if hits != 2 {
		t.Fatalf("stats items = %q (want two classes with one item)", out)
	}
}

func TestProtocolStatsSettings(t *testing.T) {
	s := newTestStore()
	out := serveScript(t, s, "stats settings\r\n")
	if !strings.Contains(out, "STAT maxbytes 16777216\r\n") ||
		!strings.Contains(out, "STAT evictions on\r\n") ||
		!strings.Contains(out, "STAT item_size_max 1048576\r\n") {
		t.Fatalf("stats settings = %q", out)
	}
	sM := NewStore(StoreConfig{MemoryLimit: 1 << 20, DisableEvictions: true})
	outM := serveScript(t, sM, "stats settings\r\n")
	if !strings.Contains(outM, "STAT evictions off\r\n") {
		t.Fatalf("-M stats settings = %q", outM)
	}
}

func TestProtocolStatsUnknownSub(t *testing.T) {
	s := newTestStore()
	if out := serveScript(t, s, "stats bogus\r\n"); out != "ERROR\r\n" {
		t.Fatalf("out = %q", out)
	}
}

func TestMGetProtoRoundtrip(t *testing.T) {
	req := MGetReq{ReplyCtr: 77, Keys: []string{"alpha", "beta", "a-much-longer-key-name"}}
	got, err := DecodeMGetReq(EncodeMGetReq(req))
	if err != nil || got.ReplyCtr != 77 || len(got.Keys) != 3 || got.Keys[2] != req.Keys[2] {
		t.Fatalf("req roundtrip = %+v, %v", got, err)
	}
	rep := MGetReply{Items: []MGetItem{
		{Key: "alpha", Flags: 1, CAS: 10, ValueLen: 100},
		{Key: "beta", Flags: 2, CAS: 20, ValueLen: 0},
	}}
	got2, err := DecodeMGetReply(EncodeMGetReply(rep))
	if err != nil || len(got2.Items) != 2 || got2.Items[0] != rep.Items[0] || got2.Items[1] != rep.Items[1] {
		t.Fatalf("reply roundtrip = %+v, %v", got2, err)
	}
	if _, err := DecodeMGetReq([]byte{1}); err == nil {
		t.Fatal("short mget req decoded")
	}
	if _, err := DecodeMGetReply([]byte{}); err == nil {
		t.Fatal("short mget reply decoded")
	}
}

func TestProtocolModelProperty(t *testing.T) {
	// Property: for random streams of set/add/get/delete over a small
	// keyspace, the full protocol output matches an independently
	// computed expectation from a map model.
	f := func(ops []uint16, blobs [][]byte) bool {
		s := NewStore(StoreConfig{MemoryLimit: 32 << 20})
		model := map[string][]byte{}
		var script, want strings.Builder
		for i, op := range ops {
			key := fmt.Sprintf("k%d", op%17)
			var val []byte
			if len(blobs) > 0 {
				val = blobs[i%len(blobs)]
			}
			if len(val) > 500 {
				val = val[:500]
			}
			switch op % 4 {
			case 0: // set
				fmt.Fprintf(&script, "set %s 0 0 %d\r\n%s\r\n", key, len(val), val)
				want.WriteString("STORED\r\n")
				model[key] = append([]byte(nil), val...)
			case 1: // add
				fmt.Fprintf(&script, "add %s 0 0 %d\r\n%s\r\n", key, len(val), val)
				if _, ok := model[key]; ok {
					want.WriteString("NOT_STORED\r\n")
				} else {
					want.WriteString("STORED\r\n")
					model[key] = append([]byte(nil), val...)
				}
			case 2: // get
				fmt.Fprintf(&script, "get %s\r\n", key)
				if v, ok := model[key]; ok {
					fmt.Fprintf(&want, "VALUE %s 0 %d\r\n%s\r\nEND\r\n", key, len(v), v)
				} else {
					want.WriteString("END\r\n")
				}
			case 3: // delete
				fmt.Fprintf(&script, "delete %s\r\n", key)
				if _, ok := model[key]; ok {
					want.WriteString("DELETED\r\n")
					delete(model, key)
				} else {
					want.WriteString("NOT_FOUND\r\n")
				}
			}
		}
		got := serveScript(t, s, script.String())
		return got == want.String()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

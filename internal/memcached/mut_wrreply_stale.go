//go:build mut_wrreply_stale

package memcached

func init() {
	mutWrReplyStale = true
	activeMutations = append(activeMutations, "mut_wrreply_stale")
}

package memcached

import (
	"testing"

	"repro/internal/simnet"
)

// TTL semantics under virtual time. The protocol exptime is seconds:
// values up to 30 days are relative to the set time, anything larger is
// an absolute unix-style timestamp, and 0 never expires — with the
// expiry boundary itself exclusive (an item is dead AT its expireAt
// tick, alive one nanosecond before).

const daySeconds = 60 * 60 * 24

func ttlStore() *Store {
	return NewStore(StoreConfig{MemoryLimit: 1 << 20, Stripes: 2})
}

func mustHit(t *testing.T, s *Store, key string, now simnet.Time) {
	t.Helper()
	if _, _, _, ok := s.Get(key, now); !ok {
		t.Fatalf("%s: miss at t=%d, want hit", key, int64(now))
	}
}

func mustMiss(t *testing.T, s *Store, key string, now simnet.Time) {
	t.Helper()
	if _, _, _, ok := s.Get(key, now); ok {
		t.Fatalf("%s: hit at t=%d, want miss", key, int64(now))
	}
}

func TestTTLRelativeBoundary(t *testing.T) {
	s := ttlStore()
	setAt := 50 * simnet.Second
	if res := s.Set("k", 0, 100, []byte("v"), setAt); res != Stored {
		t.Fatal(res)
	}
	expireAt := setAt + 100*simnet.Second
	mustHit(t, s, "k", setAt)
	mustHit(t, s, "k", expireAt-1) // one tick before the boundary
	mustMiss(t, s, "k", expireAt)  // dead exactly at expireAt
}

func TestTTLThirtyDayCutover(t *testing.T) {
	s := ttlStore()
	now := 1000 * simnet.Second

	// 2592000 (= 30 days exactly) is still RELATIVE: expiry at set+30d.
	if res := s.Set("rel", 0, 30*daySeconds, []byte("v"), now); res != Stored {
		t.Fatal(res)
	}
	relExpire := now + 30*daySeconds*simnet.Second
	mustHit(t, s, "rel", relExpire-1)
	mustMiss(t, s, "rel", relExpire)

	// 2592001 is one past the cutover: an ABSOLUTE timestamp, so the
	// set time no longer shifts the expiry.
	if res := s.Set("abs", 0, 30*daySeconds+1, []byte("v"), now); res != Stored {
		t.Fatal(res)
	}
	absExpire := (30*daySeconds + 1) * simnet.Second
	mustHit(t, s, "abs", absExpire-1)
	mustMiss(t, s, "abs", absExpire)

	// The same absolute exptime stored at a much later virtual time is
	// born expired.
	if res := s.Set("late", 0, 30*daySeconds+1, []byte("v"), absExpire+simnet.Second); res != Stored {
		t.Fatal(res)
	}
	mustMiss(t, s, "late", absExpire+simnet.Second)
}

func TestTTLZeroNeverExpires(t *testing.T) {
	s := ttlStore()
	if res := s.Set("k", 0, 0, []byte("v"), simnet.Second); res != Stored {
		t.Fatal(res)
	}
	mustHit(t, s, "k", 365*daySeconds*simnet.Second)
}

func TestTTLTouch(t *testing.T) {
	s := ttlStore()
	now := 10 * simnet.Second
	if res := s.Set("k", 0, 100, []byte("v"), now); res != Stored {
		t.Fatal(res)
	}

	// Shorten: the touch time, not the set time, anchors the new expiry.
	touchAt := now + simnet.Second
	if !s.Touch("k", 5, touchAt) {
		t.Fatal("touch missed")
	}
	newExpire := touchAt + 5*simnet.Second
	mustHit(t, s, "k", newExpire-1)
	mustMiss(t, s, "k", newExpire)

	// Touch on an expired item is a miss and does not resurrect it.
	if s.Touch("k", 1000, newExpire) {
		t.Fatal("touch resurrected an expired item")
	}
	mustMiss(t, s, "k", newExpire)

	// Touch to 0 clears the expiry entirely.
	if res := s.Set("k2", 0, 100, []byte("v"), now); res != Stored {
		t.Fatal(res)
	}
	if !s.Touch("k2", 0, now) {
		t.Fatal("touch missed")
	}
	mustHit(t, s, "k2", 365*daySeconds*simnet.Second)
}

func TestTTLFlushHorizon(t *testing.T) {
	s := ttlStore()
	if res := s.Set("old", 0, 0, []byte("v"), 5*simnet.Second); res != Stored {
		t.Fatal(res)
	}
	if res := s.Set("edge", 0, 0, []byte("v"), 10*simnet.Second); res != Stored {
		t.Fatal(res)
	}
	s.FlushAll(10 * simnet.Second)
	// FlushAll(t) kills everything set at or before t (the recorded
	// horizon is t+1, and setAt < horizon dies) — so an item stored at
	// the flush instant itself is flushed, and the first survivor is one
	// tick later.
	mustMiss(t, s, "old", 10*simnet.Second)
	mustMiss(t, s, "edge", 10*simnet.Second)

	if res := s.Set("new", 0, 0, []byte("v"), 10*simnet.Second+1); res != Stored {
		t.Fatal(res)
	}
	mustHit(t, s, "new", 10*simnet.Second+1)
}

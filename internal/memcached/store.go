package memcached

import (
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"

	"repro/internal/simnet"
)

// StoreResult is the outcome of a conditional storage command.
type StoreResult int

// Storage command outcomes, mapping 1:1 to protocol replies.
const (
	Stored StoreResult = iota
	NotStored
	Exists
	NotFound
	TooLarge
	OOM
)

func (r StoreResult) String() string {
	switch r {
	case Stored:
		return "STORED"
	case NotStored:
		return "NOT_STORED"
	case Exists:
		return "EXISTS"
	case NotFound:
		return "NOT_FOUND"
	case TooLarge:
		return "SERVER_ERROR object too large for cache"
	default:
		return "SERVER_ERROR out of memory storing object"
	}
}

// Stats is a snapshot of engine counters (a subset of `stats`).
type Stats struct {
	CmdGet, CmdSet                             uint64
	GetHits, GetMisses                         uint64
	DeleteHits, DeleteMisses                   uint64
	IncrHits, IncrMisses, DecrHits, DecrMisses uint64
	CasHits, CasMisses, CasBadval              uint64
	TouchHits, TouchMisses                     uint64
	Evictions, Expired                         uint64
	CurrItems, TotalItems                      uint64
	Bytes                                      uint64
	LimitMaxBytes                              uint64
}

// itemOverhead models memcached's per-item header in chunk sizing.
const itemOverhead = 48

// evictionTries bounds the LRU tail walk, like memcached's tries=50.
const evictionTries = 50

// maxRelativeExpiry matches memcached: expiry values up to 30 days are
// relative seconds; larger values are absolute (here: absolute virtual
// seconds since simulation start).
const maxRelativeExpiry = 60 * 60 * 24 * 30

// shardCounters are one shard's engine counters. Writers hold the shard
// lock; Stats() reads them lock-free, so every field is atomic.
type shardCounters struct {
	cmdGet, cmdSet                             atomic.Uint64
	getHits, getMisses                         atomic.Uint64
	deleteHits, deleteMisses                   atomic.Uint64
	incrHits, incrMisses, decrHits, decrMisses atomic.Uint64
	casHits, casMisses, casBadval              atomic.Uint64
	touchHits, touchMisses                     atomic.Uint64
	evictions, expired                         atomic.Uint64
	currItems, totalItems                      atomic.Uint64
	bytes                                      atomic.Uint64
}

// sub decrements an unsigned counter (two's-complement add).
func sub(c *atomic.Uint64, n uint64) { c.Add(^(n - 1)) }

// shard is one lock stripe: a hash-table segment, its per-class LRU
// chains, a CAS counter and stats, all under one mutex. res models that
// mutex in virtual time — workers queue their lock hold times on it, so
// contention shows up as measured latency (LockWait).
type shard struct {
	mu          sync.Mutex
	res         *simnet.Resource
	table       *hashTable
	lru         *lruTable
	flushBefore simnet.Time
	stats       shardCounters

	// freeItems recycles Item structs (under mu), so steady-state
	// set/delete churn does not allocate one header per store. Items are
	// pooled only where their chunk is freed — never while linked or
	// pinned.
	freeItems []*Item
}

// maxItemPool bounds each shard's retained Item-struct pool.
const maxItemPool = 256

// getItem pops a recycled Item (or allocates one). Caller holds sh.mu.
func (sh *shard) getItem() *Item {
	if n := len(sh.freeItems); n > 0 {
		it := sh.freeItems[n-1]
		sh.freeItems[n-1] = nil
		sh.freeItems = sh.freeItems[:n-1]
		return it
	}
	return &Item{}
}

// putItem recycles an unlinked, unpinned Item whose chunk has been
// freed. Caller holds sh.mu.
func (sh *shard) putItem(it *Item) {
	if len(sh.freeItems) >= maxItemPool {
		return
	}
	*it = Item{}
	sh.freeItems = append(sh.freeItems, it)
}

// Store is the cache engine: a shared slab arena plus N lock-striped
// shards (N=1 reproduces the global cache lock of the memcached
// generation the paper modified; N>1 is the §VII "exploiting
// multi-core" direction). A key's shard is picked from the high bits of
// the same FNV-1a hash the table buckets use, so striping never skews
// bucket occupancy within a shard.
type Store struct {
	arena     *SlabArena
	shards    []*shard
	shardMask uint64
	evictions bool
	limit     int64

	// nextCAS is global, not per-shard: memcached CAS IDs are one
	// process-wide sequence, and keeping it that way also keeps the
	// IDs — which travel in "gets" responses — independent of the
	// stripe count.
	nextCAS atomic.Uint64

	// rec, when armed, receives one OpRecord per state transition (see
	// record.go). nil in normal operation.
	rec atomic.Pointer[recorder]

	// pub, when armed, is the one-sided GET index (onesided.go): commit
	// paths publish directory entries, unlink paths invalidate them, and
	// chunk-byte writers take its memory guard. nil in normal operation.
	pub atomic.Pointer[osIndex]
}

// StoreConfig sizes a Store.
type StoreConfig struct {
	// MemoryLimit is the slab arena cap in bytes (memcached -m).
	MemoryLimit int64
	// MaxItemSize caps one item (memcached -I; default 1 MB).
	MaxItemSize int
	// Stripes is the lock-stripe count (rounded up to a power of two;
	// default 1 — the global-lock engine).
	Stripes int
	// DisableEvictions makes the store error instead of evicting
	// (memcached -M).
	DisableEvictions bool
}

// NewStore builds an engine with the given limits. A zero MemoryLimit
// gets memcached's default of 64 MB.
func NewStore(cfg StoreConfig) *Store {
	if cfg.MemoryLimit <= 0 {
		cfg.MemoryLimit = 64 << 20
	}
	n := 1
	for n < cfg.Stripes {
		n <<= 1
	}
	s := &Store{
		arena:     NewSlabArena(cfg.MemoryLimit, cfg.MaxItemSize),
		shards:    make([]*shard, n),
		shardMask: uint64(n - 1),
		evictions: !cfg.DisableEvictions,
		limit:     cfg.MemoryLimit,
	}
	for i := range s.shards {
		s.shards[i] = &shard{
			res:   simnet.NewResource(fmt.Sprintf("store-shard-%d", i)),
			table: newHashTable(),
			lru:   newLRUTable(s.arena.NumClasses()),
		}
	}
	return s
}

// NumStripes reports the shard count.
func (s *Store) NumStripes() int { return len(s.shards) }

// shardFor picks a key's stripe from a Fibonacci spread of the key
// hash: FNV-1a's raw high bits cluster badly for short sequential keys,
// and the low bits index buckets inside the shard's table, so the
// selector multiplies every input bit into fresh high bits instead of
// reusing either end directly.
func (s *Store) shardFor(key string) *shard {
	h := hashKey(key) * 0x9e3779b97f4a7c15
	return s.shards[(h>>32)&s.shardMask]
}

// shardForBytes is shardFor over a wire-decoded []byte key.
func (s *Store) shardForBytes(key []byte) *shard {
	h := hashKeyBytes(key) * 0x9e3779b97f4a7c15
	return s.shards[(h>>32)&s.shardMask]
}

// LockWait models taking the key's shard lock at now for hold: the
// acquisition is queued on the shard's resource behind other workers'
// in-flight holds, and the returned wait is the queueing delay the
// caller must add to its clock. The hold itself is the caller's
// existing per-op charges (OpCost, copy costs) — callers never charge
// it twice. Uncontended acquisitions (single worker, single client, or
// untouched stripes) return 0, leaving those runs bit-identical.
func (s *Store) LockWait(key string, now simnet.Time, hold simnet.Duration) simnet.Duration {
	sh := s.shardFor(key)
	start := sh.res.Acquire(now, hold)
	return simnet.Duration(start - now)
}

// LockWaitBytes is LockWait for a wire-decoded []byte key.
func (s *Store) LockWaitBytes(key []byte, now simnet.Time, hold simnet.Duration) simnet.Duration {
	sh := s.shardForBytes(key)
	start := sh.res.Acquire(now, hold)
	return simnet.Duration(start - now)
}

// LockStats sums lock occupancy across shards (busy virtual time and
// acquisition count) — the contention observability counterpart of
// Stats.
func (s *Store) LockStats() (busy simnet.Duration, uses int64) {
	for _, sh := range s.shards {
		b, u := sh.res.Stats()
		busy += b
		uses += u
	}
	return busy, uses
}

// expiryTime converts a protocol exptime to an absolute virtual time.
func expiryTime(exptime int64, now simnet.Time) simnet.Time {
	switch {
	case exptime == 0:
		return 0
	case exptime <= maxRelativeExpiry:
		return now + simnet.Time(exptime)*simnet.Second
	default:
		return simnet.Time(exptime) * simnet.Second
	}
}

// lookupLocked finds a live item, lazily reaping an expired one.
func (s *Store) lookupLocked(sh *shard, key string, now simnet.Time) *Item {
	return s.liveItem(sh, sh.table.Get(key), now)
}

// lookupLockedBytes is lookupLocked for a wire-decoded []byte key.
func (s *Store) lookupLockedBytes(sh *shard, key []byte, now simnet.Time) *Item {
	return s.liveItem(sh, sh.table.GetBytes(key), now)
}

// liveItem applies lazy expiry to a table hit.
func (s *Store) liveItem(sh *shard, it *Item, now simnet.Time) *Item {
	if it == nil {
		return nil
	}
	if it.expired(now, sh.flushBefore) && !mutGetSkipExpiry {
		sh.stats.expired.Add(1)
		if rc := s.rec.Load(); rc != nil {
			rc.emit(&OpRecord{Kind: RecExpire, Key: it.key, Now: now, OldCAS: it.casID})
		}
		s.unlinkLocked(sh, it)
		return nil
	}
	return it
}

// unlinkLocked removes an item from table and LRU, freeing its chunk
// unless a transfer still pins it (the chunk is then freed at Unpin).
func (s *Store) unlinkLocked(sh *shard, it *Item) {
	if x := s.pub.Load(); x != nil {
		x.unpublish(it)
	}
	if it.linked {
		sh.table.Delete(it.key)
	}
	sh.lru.remove(it)
	sub(&sh.stats.bytes, uint64(len(it.key)+len(it.value)))
	sub(&sh.stats.currItems, 1)
	if !it.pinned() {
		s.arena.Free(it.chunk)
		sh.putItem(it)
	}
}

// allocLocked grabs a chunk, evicting LRU victims as needed. Victims
// come only from the calling shard's own chains — its lock is the only
// one held, so items other shards own are untouchable here.
func (s *Store) allocLocked(sh *shard, n int, now simnet.Time) (chunk, StoreResult) {
	for {
		c, err := s.arena.Alloc(n)
		if err == nil {
			return c, Stored
		}
		if err != ErrNoMemory {
			return chunk{}, TooLarge
		}
		if !s.evictions {
			return chunk{}, OOM
		}
		ci, ok := s.arena.ClassFor(n)
		if !ok {
			return chunk{}, TooLarge
		}
		victim := sh.lru.victim(ci, evictionTries)
		if victim == nil {
			return chunk{}, OOM
		}
		sh.stats.evictions.Add(1)
		if rc := s.rec.Load(); rc != nil {
			rc.emit(&OpRecord{
				Kind: RecEvict, Key: victim.key, Now: now,
				OldCAS: victim.casID, OldValue: cloneBytes(victim.value),
			})
		}
		s.unlinkLocked(sh, victim)
	}
}

// newItemLocked allocates and fills an unlinked item.
func (s *Store) newItemLocked(sh *shard, key string, flags uint32, exptime int64, valueLen int, now simnet.Time) (*Item, StoreResult) {
	c, res := s.allocLocked(sh, len(key)+valueLen+itemOverhead, now)
	if res != Stored {
		return nil, res
	}
	s.memWr(func() { copy(c.buf, key) })
	it := sh.getItem()
	it.key = key
	it.value = c.buf[len(key) : len(key)+valueLen]
	it.chunk = c
	it.flags = flags
	it.expireAt = expiryTime(exptime, now)
	it.casID = s.nextCAS.Add(1)
	it.setAt = now
	it.exptimeRaw = exptime
	return it, Stored
}

// linkLocked commits an item, replacing any existing entry for the key.
func (s *Store) linkLocked(sh *shard, it *Item, now simnet.Time) {
	if old := sh.table.Get(it.key); old != nil {
		s.unlinkLocked(sh, old)
	}
	sh.table.Put(it)
	sh.lru.insert(it)
	sh.stats.bytes.Add(uint64(len(it.key) + len(it.value)))
	sh.stats.currItems.Add(1)
	sh.stats.totalItems.Add(1)
	if x := s.pub.Load(); x != nil {
		x.publish(it)
	}
}

// AllocateItem reserves an unlinked item whose value buffer the caller
// fills before CommitItem — the UCR Set path lands the client's RDMA-
// read value directly in this slab memory (§V-B).
func (s *Store) AllocateItem(key string, flags uint32, exptime int64, valueLen int, now simnet.Time) (*Item, StoreResult) {
	sh := s.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	it, res := s.newItemLocked(sh, key, flags, exptime, valueLen, now)
	if res == Stored {
		it.refcount++ // pinned until commit/abort
	} else {
		// Failed allocations are recorded here (the commit never runs),
		// so the history still shows one store attempt per request.
		s.recordStore(RecSet, key, nil, flags, exptime, 0, nil, res, now)
	}
	return it, res
}

// internKeyLocked resolves the stable string for a wire-decoded key:
// when the key is already resident (even expired — strings are
// immutable) its existing string is reused, so steady-state overwrites
// of a live keyspace never allocate. A first-seen key converts once.
func internKeyLocked(sh *shard, key []byte) string {
	if it := sh.table.GetBytes(key); it != nil {
		return it.key
	}
	return string(key)
}

// AllocateItemBytes is AllocateItem for a wire-decoded []byte key — the
// UCR hot path's entry, alloc-free for keys already resident.
func (s *Store) AllocateItemBytes(key []byte, flags uint32, exptime int64, valueLen int, now simnet.Time) (*Item, StoreResult) {
	sh := s.shardForBytes(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	it, res := s.newItemLocked(sh, internKeyLocked(sh, key), flags, exptime, valueLen, now)
	if res == Stored {
		it.refcount++ // pinned until commit/abort
	} else if s.rec.Load() != nil {
		s.recordStore(RecSet, string(key), nil, flags, exptime, 0, nil, res, now)
	}
	return it, res
}

// CommitItem links a previously allocated item.
func (s *Store) CommitItem(it *Item, now simnet.Time) {
	sh := s.shardFor(it.key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	it.refcount--
	sh.stats.cmdSet.Add(1)
	s.linkLocked(sh, it, now)
	if rc := s.rec.Load(); rc != nil {
		rc.emit(&OpRecord{
			Kind: RecSet, Key: it.key, Now: now, Res: Stored,
			Value: cloneBytes(it.value), Flags: it.flags,
			Exptime: it.exptimeRaw, NewCAS: it.casID,
			ExpireAt: it.expireAt, SetAt: it.setAt,
		})
	}
}

// AbortItem releases an allocated-but-uncommitted item.
func (s *Store) AbortItem(it *Item) {
	sh := s.shardFor(it.key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	it.refcount--
	if !it.pinned() {
		s.arena.Free(it.chunk)
		sh.putItem(it)
	}
}

// Set unconditionally stores key=value.
func (s *Store) Set(key string, flags uint32, exptime int64, value []byte, now simnet.Time) StoreResult {
	sh := s.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.stats.cmdSet.Add(1)
	it, res := s.newItemLocked(sh, key, flags, exptime, len(value), now)
	if res != Stored {
		s.recordStore(RecSet, key, nil, flags, exptime, 0, nil, res, now)
		return res
	}
	s.memWr(func() { copy(it.value, value) })
	s.linkLocked(sh, it, now)
	s.recordStore(RecSet, key, value, flags, exptime, 0, it, Stored, now)
	return Stored
}

// Add stores only if the key is absent.
func (s *Store) Add(key string, flags uint32, exptime int64, value []byte, now simnet.Time) StoreResult {
	sh := s.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.stats.cmdSet.Add(1)
	if !mutAddClobbers && s.lookupLocked(sh, key, now) != nil {
		s.recordStore(RecAdd, key, nil, flags, exptime, 0, nil, NotStored, now)
		return NotStored
	}
	it, res := s.setLocked(sh, key, flags, exptime, value, now)
	s.recordStore(RecAdd, key, value, flags, exptime, 0, it, res, now)
	return res
}

// Replace stores only if the key is present.
func (s *Store) Replace(key string, flags uint32, exptime int64, value []byte, now simnet.Time) StoreResult {
	sh := s.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.stats.cmdSet.Add(1)
	if s.lookupLocked(sh, key, now) == nil {
		s.recordStore(RecReplace, key, nil, flags, exptime, 0, nil, NotStored, now)
		return NotStored
	}
	it, res := s.setLocked(sh, key, flags, exptime, value, now)
	s.recordStore(RecReplace, key, value, flags, exptime, 0, it, res, now)
	return res
}

// Cas stores only if the entry's CAS id still matches.
func (s *Store) Cas(key string, flags uint32, exptime int64, value []byte, casID uint64, now simnet.Time) StoreResult {
	sh := s.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.stats.cmdSet.Add(1)
	it := s.lookupLocked(sh, key, now)
	if it == nil {
		sh.stats.casMisses.Add(1)
		s.recordStore(RecCas, key, nil, flags, exptime, casID, nil, NotFound, now)
		return NotFound
	}
	if it.casID != casID && !mutCasIgnoreID {
		sh.stats.casBadval.Add(1)
		s.recordStore(RecCas, key, nil, flags, exptime, casID, nil, Exists, now)
		return Exists
	}
	sh.stats.casHits.Add(1)
	nit, res := s.setLocked(sh, key, flags, exptime, value, now)
	s.recordStore(RecCas, key, value, flags, exptime, casID, nit, res, now)
	return res
}

// setLocked is the shared unconditional-store tail. The stored item is
// returned so callers can record the assigned CAS/expiry (nil on
// failure).
func (s *Store) setLocked(sh *shard, key string, flags uint32, exptime int64, value []byte, now simnet.Time) (*Item, StoreResult) {
	it, res := s.newItemLocked(sh, key, flags, exptime, len(value), now)
	if res != Stored {
		return nil, res
	}
	s.memWr(func() { copy(it.value, value) })
	s.linkLocked(sh, it, now)
	return it, Stored
}

// releasePin drops a refcount taken inside the lock, freeing the chunk
// (and recycling the header) if the item was unlinked
// (evicted/replaced) while pinned.
func (s *Store) releasePin(sh *shard, it *Item) {
	it.refcount--
	if !it.linked && !it.pinned() {
		s.arena.Free(it.chunk)
		sh.putItem(it)
	}
}

// concatLocked implements append/prepend.
//
// The old item must be pinned across the allocation: newItemLocked may
// evict LRU victims to make room, and without the pin the victim can be
// old itself — freeing the chunk old.value aliases, so the copy below
// would read (or, after the free list recycles the chunk into the new
// item, overwrite) freed slab memory.
func (s *Store) concatLocked(sh *shard, key string, add []byte, prepend bool, now simnet.Time) StoreResult {
	kind := RecAppend
	if prepend {
		kind = RecPrepend
	}
	old := s.lookupLocked(sh, key, now)
	if old == nil {
		if rc := s.rec.Load(); rc != nil {
			rc.emit(&OpRecord{Kind: kind, Key: key, Now: now, Res: NotStored, Arg: cloneBytes(add)})
		}
		return NotStored
	}
	old.refcount++
	oldCAS := old.casID
	var oldVal []byte
	if s.rec.Load() != nil {
		oldVal = cloneBytes(old.value)
	}
	it, res := s.newItemLocked(sh, key, old.flags, 0, len(old.value)+len(add), now)
	if res != Stored {
		s.releasePin(sh, old)
		if rc := s.rec.Load(); rc != nil {
			rc.emit(&OpRecord{
				Kind: kind, Key: key, Now: now, Res: res,
				Arg: cloneBytes(add), OldValue: oldVal, OldCAS: oldCAS,
			})
		}
		return res
	}
	it.expireAt = old.expireAt
	if mutAppendNoCAS {
		it.casID = oldCAS
	}
	s.memWr(func() {
		if prepend {
			copy(it.value, add)
			copy(it.value[len(add):], old.value)
		} else {
			copy(it.value, old.value)
			copy(it.value[len(old.value):], add)
		}
	})
	s.releasePin(sh, old)
	s.linkLocked(sh, it, now)
	if rc := s.rec.Load(); rc != nil {
		rc.emit(&OpRecord{
			Kind: kind, Key: key, Now: now, Res: Stored,
			Arg: cloneBytes(add), OldValue: oldVal, OldCAS: oldCAS,
			Value: cloneBytes(it.value), Flags: it.flags, NewCAS: it.casID,
			ExpireAt: it.expireAt, SetAt: it.setAt,
		})
	}
	return Stored
}

// Append adds bytes after an existing value.
func (s *Store) Append(key string, value []byte, now simnet.Time) StoreResult {
	sh := s.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.stats.cmdSet.Add(1)
	return s.concatLocked(sh, key, value, false, now)
}

// Prepend adds bytes before an existing value.
func (s *Store) Prepend(key string, value []byte, now simnet.Time) StoreResult {
	sh := s.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.stats.cmdSet.Add(1)
	return s.concatLocked(sh, key, value, true, now)
}

// Get copies out the value for key. ok=false is a miss.
func (s *Store) Get(key string, now simnet.Time) (value []byte, flags uint32, casID uint64, ok bool) {
	sh := s.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.stats.cmdGet.Add(1)
	it := s.lookupLocked(sh, key, now)
	if it == nil {
		sh.stats.getMisses.Add(1)
		s.recordGet(key, nil, now)
		return nil, 0, 0, false
	}
	sh.stats.getHits.Add(1)
	sh.lru.touch(it)
	s.recordGet(key, it, now)
	out := make([]byte, len(it.value))
	copy(out, it.value)
	return out, it.flags, it.casID, true
}

// GetPinned returns the live item with its refcount raised, so its slab
// memory stays valid while a reply transfer (possibly a client-issued
// RDMA read) is in flight. The caller must Unpin.
func (s *Store) GetPinned(key string, now simnet.Time) (*Item, bool) {
	sh := s.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.stats.cmdGet.Add(1)
	it := s.lookupLocked(sh, key, now)
	if it == nil {
		sh.stats.getMisses.Add(1)
		s.recordGet(key, nil, now)
		return nil, false
	}
	sh.stats.getHits.Add(1)
	sh.lru.touch(it)
	s.recordGet(key, it, now)
	it.refcount++
	return it, true
}

// Unpin releases a GetPinned reference, freeing the chunk if the item
// was unlinked (replaced/evicted/deleted) while pinned.
func (s *Store) Unpin(it *Item) {
	sh := s.shardFor(it.key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	s.releasePin(sh, it)
}

// GetPinnedBytes is GetPinned for a wire-decoded []byte key — the UCR
// hot path's entry, alloc-free end to end.
func (s *Store) GetPinnedBytes(key []byte, now simnet.Time) (*Item, bool) {
	sh := s.shardForBytes(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.stats.cmdGet.Add(1)
	it := s.lookupLockedBytes(sh, key, now)
	if it == nil {
		sh.stats.getMisses.Add(1)
		if s.rec.Load() != nil {
			s.recordGet(string(key), nil, now)
		}
		return nil, false
	}
	sh.stats.getHits.Add(1)
	sh.lru.touch(it)
	s.recordGet(it.key, it, now)
	it.refcount++
	return it, true
}

// Delete removes key. ok=false is a miss.
func (s *Store) Delete(key string, now simnet.Time) bool {
	sh := s.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	it := s.lookupLocked(sh, key, now)
	if it == nil {
		sh.stats.deleteMisses.Add(1)
		if rc := s.rec.Load(); rc != nil {
			rc.emit(&OpRecord{Kind: RecDelete, Key: key, Now: now})
		}
		return false
	}
	sh.stats.deleteHits.Add(1)
	if rc := s.rec.Load(); rc != nil {
		rc.emit(&OpRecord{Kind: RecDelete, Key: key, Now: now, Hit: true, OldCAS: it.casID})
	}
	if !mutDeleteNoop {
		s.unlinkLocked(sh, it)
	}
	return true
}

// IncrDecr adjusts a numeric value. badValue=true means the stored value
// is not an unsigned number (protocol CLIENT_ERROR); oom=true means the
// grown value could not be allocated (protocol SERVER_ERROR) — a server
// failure, distinct from the caller's mistake.
func (s *Store) IncrDecr(key string, delta uint64, incr bool, now simnet.Time) (newVal uint64, found, badValue, oom bool) {
	sh := s.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	kind := RecIncr
	if !incr {
		kind = RecDecr
	}
	it := s.lookupLocked(sh, key, now)
	if it == nil {
		if incr {
			sh.stats.incrMisses.Add(1)
		} else {
			sh.stats.decrMisses.Add(1)
		}
		if rc := s.rec.Load(); rc != nil {
			rc.emit(&OpRecord{Kind: kind, Key: key, Now: now, Delta: delta})
		}
		return 0, false, false, false
	}
	cur, err := strconv.ParseUint(string(it.value), 10, 64)
	if err != nil {
		if rc := s.rec.Load(); rc != nil {
			rc.emit(&OpRecord{Kind: kind, Key: key, Now: now, Delta: delta, Hit: true, Bad: true, OldCAS: it.casID})
		}
		return 0, true, true, false
	}
	if incr {
		sh.stats.incrHits.Add(1)
		cur += delta
	} else {
		sh.stats.decrHits.Add(1)
		if delta > cur {
			cur = 0
		} else {
			cur -= delta
		}
	}
	oldCAS := it.casID
	text := strconv.FormatUint(cur, 10)
	if len(text) <= len(it.value) {
		// Fits in place: memcached right-pads with spaces semantics are
		// emulated by shrinking the value slice to the new length. The
		// rewrite and the directory republish share one guard section so
		// a one-sided reader can never pair new bytes with the old seq.
		s.mutateInPlace(it, func() {
			copy(it.value, text)
			it.value = it.value[:len(text)]
			it.casID = s.nextCAS.Add(1)
		})
		if rc := s.rec.Load(); rc != nil {
			rc.emit(&OpRecord{
				Kind: kind, Key: key, Now: now, Delta: delta, Hit: true,
				NewNum: cur, Value: cloneBytes(it.value), Flags: it.flags,
				NewCAS: it.casID, OldCAS: oldCAS,
				ExpireAt: it.expireAt, SetAt: it.setAt,
			})
		}
	} else {
		// Pin the current item across the allocation: newItemLocked may
		// evict it to make room, and the pin keeps its chunk (and the
		// expiry we carry over) alive until the swap completes.
		flags, exp := it.flags, it.expireAt
		it.refcount++
		nit, res := s.newItemLocked(sh, key, flags, 0, len(text), now)
		s.releasePin(sh, it)
		if res != Stored {
			if rc := s.rec.Load(); rc != nil {
				rc.emit(&OpRecord{Kind: kind, Key: key, Now: now, Delta: delta, Hit: true, OOM: true, OldCAS: oldCAS})
			}
			return 0, true, false, true
		}
		nit.expireAt = exp
		s.memWr(func() { copy(nit.value, text) })
		s.linkLocked(sh, nit, now)
		if rc := s.rec.Load(); rc != nil {
			rc.emit(&OpRecord{
				Kind: kind, Key: key, Now: now, Delta: delta, Hit: true,
				NewNum: cur, Value: cloneBytes(nit.value), Flags: nit.flags,
				NewCAS: nit.casID, OldCAS: oldCAS,
				ExpireAt: nit.expireAt, SetAt: nit.setAt,
			})
		}
	}
	return cur, true, false, false
}

// Touch updates an item's expiry.
func (s *Store) Touch(key string, exptime int64, now simnet.Time) bool {
	sh := s.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	it := s.lookupLocked(sh, key, now)
	if it == nil {
		sh.stats.touchMisses.Add(1)
		if rc := s.rec.Load(); rc != nil {
			rc.emit(&OpRecord{Kind: RecTouch, Key: key, Now: now, Exptime: exptime})
		}
		return false
	}
	sh.stats.touchHits.Add(1)
	it.expireAt = expiryTime(exptime, now)
	if x := s.pub.Load(); x != nil {
		x.publish(it) // refresh the entry's expiry
	}
	if rc := s.rec.Load(); rc != nil {
		rc.emit(&OpRecord{
			Kind: RecTouch, Key: key, Now: now, Exptime: exptime, Hit: true,
			ExpireAt: it.expireAt, OldCAS: it.casID,
		})
	}
	return true
}

// FlushAll invalidates everything stored before now (lazy, like
// memcached: items vanish on next access).
func (s *Store) FlushAll(now simnet.Time) {
	horizon := now + 1
	// All shard locks at once (in index order; every other path takes
	// exactly one, so this cannot deadlock). Setting the horizons shard
	// by shard would let a concurrent op observe the new horizon and
	// emit an expiry record sequenced BEFORE the flush record — the
	// recorded history must show the flush as a single transition.
	for _, sh := range s.shards {
		sh.mu.Lock()
	}
	for _, sh := range s.shards {
		sh.flushBefore = horizon
	}
	if rc := s.rec.Load(); rc != nil {
		rc.emit(&OpRecord{Kind: RecFlushAll, Now: now, Horizon: horizon})
	}
	if x := s.pub.Load(); x != nil {
		x.wipe() // every published entry predates the horizon
	}
	for _, sh := range s.shards {
		sh.mu.Unlock()
	}
}

// Stats snapshots the counters: a lock-free sum over per-shard atomics
// — statistics never queue behind the data path.
func (s *Store) Stats() Stats {
	var st Stats
	for _, sh := range s.shards {
		c := &sh.stats
		st.CmdGet += c.cmdGet.Load()
		st.CmdSet += c.cmdSet.Load()
		st.GetHits += c.getHits.Load()
		st.GetMisses += c.getMisses.Load()
		st.DeleteHits += c.deleteHits.Load()
		st.DeleteMisses += c.deleteMisses.Load()
		st.IncrHits += c.incrHits.Load()
		st.IncrMisses += c.incrMisses.Load()
		st.DecrHits += c.decrHits.Load()
		st.DecrMisses += c.decrMisses.Load()
		st.CasHits += c.casHits.Load()
		st.CasMisses += c.casMisses.Load()
		st.CasBadval += c.casBadval.Load()
		st.TouchHits += c.touchHits.Load()
		st.TouchMisses += c.touchMisses.Load()
		st.Evictions += c.evictions.Load()
		st.Expired += c.expired.Load()
		st.CurrItems += c.currItems.Load()
		st.TotalItems += c.totalItems.Load()
		st.Bytes += c.bytes.Load()
	}
	st.LimitMaxBytes = uint64(s.limit)
	return st
}

// CurrItems reports the live item count (lock-free).
func (s *Store) CurrItems() uint64 {
	var n uint64
	for _, sh := range s.shards {
		n += sh.stats.currItems.Load()
	}
	return n
}

// Arena exposes the slab arena (tests, stats reporting).
func (s *Store) Arena() *SlabArena { return s.arena }

// ItemsPerClass counts linked items per slab class, summed across
// shards (the data behind `stats items`).
func (s *Store) ItemsPerClass() []int {
	counts := make([]int, s.arena.NumClasses())
	for _, sh := range s.shards {
		sh.mu.Lock()
		for i := range counts {
			counts[i] += sh.lru.classItems(i)
		}
		sh.mu.Unlock()
	}
	return counts
}

// SlabClassStat is one size class's occupancy snapshot.
type SlabClassStat struct {
	ClassID       int
	ChunkSize     int
	ChunksPerPage int
	TotalPages    int
	TotalChunks   int
	UsedChunks    int
	FreeChunks    int
	Items         int
}

// SlabStats snapshots per-class occupancy for classes holding pages
// (the data behind `stats slabs` and `stats items`).
func (s *Store) SlabStats() (classes []SlabClassStat, totalMalloced int64) {
	a := s.arena
	items := s.ItemsPerClass()
	for i := 0; i < a.NumClasses(); i++ {
		pages := a.ClassPages(i)
		if pages == 0 {
			continue
		}
		perPage := slabPageSize / a.ClassSize(i)
		total := pages * perPage
		free := a.FreeChunks(i)
		classes = append(classes, SlabClassStat{
			ClassID:       i + 1,
			ChunkSize:     a.ClassSize(i),
			ChunksPerPage: perPage,
			TotalPages:    pages,
			TotalChunks:   total,
			UsedChunks:    total - free,
			FreeChunks:    free,
			Items:         items[i],
		})
	}
	return classes, a.UsedBytes()
}

// EvictionsEnabled reports whether the store evicts under pressure.
func (s *Store) EvictionsEnabled() bool { return s.evictions }

// MaxItemSize reports the largest storable object.
func (s *Store) MaxItemSize() int { return s.arena.ClassSize(s.arena.NumClasses() - 1) }

// HashExpanding reports whether any shard's table is mid-expansion
// (tests).
func (s *Store) HashExpanding() bool {
	for _, sh := range s.shards {
		sh.mu.Lock()
		expanding := sh.table.Expanding()
		sh.mu.Unlock()
		if expanding {
			return true
		}
	}
	return false
}

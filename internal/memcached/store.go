package memcached

import (
	"strconv"
	"sync"

	"repro/internal/simnet"
)

// StoreResult is the outcome of a conditional storage command.
type StoreResult int

// Storage command outcomes, mapping 1:1 to protocol replies.
const (
	Stored StoreResult = iota
	NotStored
	Exists
	NotFound
	TooLarge
	OOM
)

func (r StoreResult) String() string {
	switch r {
	case Stored:
		return "STORED"
	case NotStored:
		return "NOT_STORED"
	case Exists:
		return "EXISTS"
	case NotFound:
		return "NOT_FOUND"
	case TooLarge:
		return "SERVER_ERROR object too large for cache"
	default:
		return "SERVER_ERROR out of memory storing object"
	}
}

// Stats is a snapshot of engine counters (a subset of `stats`).
type Stats struct {
	CmdGet, CmdSet                             uint64
	GetHits, GetMisses                         uint64
	DeleteHits, DeleteMisses                   uint64
	IncrHits, IncrMisses, DecrHits, DecrMisses uint64
	CasHits, CasMisses, CasBadval              uint64
	TouchHits, TouchMisses                     uint64
	Evictions, Expired                         uint64
	CurrItems, TotalItems                      uint64
	Bytes                                      uint64
	LimitMaxBytes                              uint64
}

// itemOverhead models memcached's per-item header in chunk sizing.
const itemOverhead = 48

// evictionTries bounds the LRU tail walk, like memcached's tries=50.
const evictionTries = 50

// maxRelativeExpiry matches memcached: expiry values up to 30 days are
// relative seconds; larger values are absolute (here: absolute virtual
// seconds since simulation start).
const maxRelativeExpiry = 60 * 60 * 24 * 30

// Store is the cache engine: slab arena + hash table + LRU + stats under
// one lock (the global cache lock of the memcached generation the paper
// modified).
type Store struct {
	mu          sync.Mutex
	arena       *SlabArena
	table       *hashTable
	casCounter  uint64
	flushBefore simnet.Time
	stats       Stats
	evictions   bool
}

// StoreConfig sizes a Store.
type StoreConfig struct {
	// MemoryLimit is the slab arena cap in bytes (memcached -m).
	MemoryLimit int64
	// MaxItemSize caps one item (memcached -I; default 1 MB).
	MaxItemSize int
	// DisableEvictions makes the store error instead of evicting
	// (memcached -M).
	DisableEvictions bool
}

// NewStore builds an engine with the given limits. A zero MemoryLimit
// gets memcached's default of 64 MB.
func NewStore(cfg StoreConfig) *Store {
	if cfg.MemoryLimit <= 0 {
		cfg.MemoryLimit = 64 << 20
	}
	s := &Store{
		arena:     NewSlabArena(cfg.MemoryLimit, cfg.MaxItemSize),
		table:     newHashTable(),
		evictions: !cfg.DisableEvictions,
	}
	s.stats.LimitMaxBytes = uint64(cfg.MemoryLimit)
	return s
}

// expiryTime converts a protocol exptime to an absolute virtual time.
func expiryTime(exptime int64, now simnet.Time) simnet.Time {
	switch {
	case exptime == 0:
		return 0
	case exptime <= maxRelativeExpiry:
		return now + simnet.Time(exptime)*simnet.Second
	default:
		return simnet.Time(exptime) * simnet.Second
	}
}

// lookupLocked finds a live item, lazily reaping an expired one.
func (s *Store) lookupLocked(key string, now simnet.Time) *Item {
	it := s.table.Get(key)
	if it == nil {
		return nil
	}
	if it.expired(now, s.flushBefore) {
		s.stats.Expired++
		s.unlinkLocked(it)
		return nil
	}
	return it
}

// unlinkLocked removes an item from table and LRU, freeing its chunk
// unless a transfer still pins it (the chunk is then freed at Unpin).
func (s *Store) unlinkLocked(it *Item) {
	if it.linked {
		s.table.Delete(it.key)
	}
	s.arena.lruRemove(it)
	s.stats.Bytes -= uint64(len(it.key) + len(it.value))
	s.stats.CurrItems--
	if !it.pinned() {
		s.arena.Free(it.chunk)
	}
}

// allocLocked grabs a chunk, evicting LRU victims as needed.
func (s *Store) allocLocked(n int) (chunk, StoreResult) {
	for {
		c, err := s.arena.Alloc(n)
		if err == nil {
			return c, Stored
		}
		if err != ErrNoMemory {
			return chunk{}, TooLarge
		}
		if !s.evictions {
			return chunk{}, OOM
		}
		victim := s.arena.lruVictim(n, evictionTries)
		if victim == nil {
			return chunk{}, OOM
		}
		s.stats.Evictions++
		s.unlinkLocked(victim)
	}
}

// newItemLocked allocates and fills an unlinked item.
func (s *Store) newItemLocked(key string, flags uint32, exptime int64, valueLen int, now simnet.Time) (*Item, StoreResult) {
	c, res := s.allocLocked(len(key) + valueLen + itemOverhead)
	if res != Stored {
		return nil, res
	}
	copy(c.buf, key)
	s.casCounter++
	it := &Item{
		key:      key,
		value:    c.buf[len(key) : len(key)+valueLen],
		chunk:    c,
		flags:    flags,
		expireAt: expiryTime(exptime, now),
		casID:    s.casCounter,
		setAt:    now,
	}
	return it, Stored
}

// linkLocked commits an item, replacing any existing entry for the key.
func (s *Store) linkLocked(it *Item, now simnet.Time) {
	if old := s.table.Get(it.key); old != nil {
		s.unlinkLocked(old)
	}
	s.table.Put(it)
	s.arena.lruInsert(it)
	s.stats.Bytes += uint64(len(it.key) + len(it.value))
	s.stats.CurrItems++
	s.stats.TotalItems++
}

// AllocateItem reserves an unlinked item whose value buffer the caller
// fills before CommitItem — the UCR Set path lands the client's RDMA-
// read value directly in this slab memory (§V-B).
func (s *Store) AllocateItem(key string, flags uint32, exptime int64, valueLen int, now simnet.Time) (*Item, StoreResult) {
	s.mu.Lock()
	defer s.mu.Unlock()
	it, res := s.newItemLocked(key, flags, exptime, valueLen, now)
	if res == Stored {
		it.refcount++ // pinned until commit/abort
	}
	return it, res
}

// CommitItem links a previously allocated item.
func (s *Store) CommitItem(it *Item, now simnet.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	it.refcount--
	s.stats.CmdSet++
	s.linkLocked(it, now)
}

// AbortItem releases an allocated-but-uncommitted item.
func (s *Store) AbortItem(it *Item) {
	s.mu.Lock()
	defer s.mu.Unlock()
	it.refcount--
	if !it.pinned() {
		s.arena.Free(it.chunk)
	}
}

// Set unconditionally stores key=value.
func (s *Store) Set(key string, flags uint32, exptime int64, value []byte, now simnet.Time) StoreResult {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats.CmdSet++
	it, res := s.newItemLocked(key, flags, exptime, len(value), now)
	if res != Stored {
		return res
	}
	copy(it.value, value)
	s.linkLocked(it, now)
	return Stored
}

// Add stores only if the key is absent.
func (s *Store) Add(key string, flags uint32, exptime int64, value []byte, now simnet.Time) StoreResult {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats.CmdSet++
	if s.lookupLocked(key, now) != nil {
		return NotStored
	}
	return s.setLocked(key, flags, exptime, value, now)
}

// Replace stores only if the key is present.
func (s *Store) Replace(key string, flags uint32, exptime int64, value []byte, now simnet.Time) StoreResult {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats.CmdSet++
	if s.lookupLocked(key, now) == nil {
		return NotStored
	}
	return s.setLocked(key, flags, exptime, value, now)
}

// Cas stores only if the entry's CAS id still matches.
func (s *Store) Cas(key string, flags uint32, exptime int64, value []byte, casID uint64, now simnet.Time) StoreResult {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats.CmdSet++
	it := s.lookupLocked(key, now)
	if it == nil {
		s.stats.CasMisses++
		return NotFound
	}
	if it.casID != casID {
		s.stats.CasBadval++
		return Exists
	}
	s.stats.CasHits++
	return s.setLocked(key, flags, exptime, value, now)
}

// setLocked is the shared unconditional-store tail.
func (s *Store) setLocked(key string, flags uint32, exptime int64, value []byte, now simnet.Time) StoreResult {
	it, res := s.newItemLocked(key, flags, exptime, len(value), now)
	if res != Stored {
		return res
	}
	copy(it.value, value)
	s.linkLocked(it, now)
	return Stored
}

// releasePin drops a refcount taken inside the lock, freeing the chunk
// if the item was unlinked (evicted/replaced) while pinned.
func (s *Store) releasePin(it *Item) {
	it.refcount--
	if !it.linked && !it.pinned() {
		s.arena.Free(it.chunk)
	}
}

// concatLocked implements append/prepend.
//
// The old item must be pinned across the allocation: newItemLocked may
// evict LRU victims to make room, and without the pin the victim can be
// old itself — freeing the chunk old.value aliases, so the copy below
// would read (or, after the free list recycles the chunk into the new
// item, overwrite) freed slab memory.
func (s *Store) concatLocked(key string, add []byte, prepend bool, now simnet.Time) StoreResult {
	old := s.lookupLocked(key, now)
	if old == nil {
		return NotStored
	}
	old.refcount++
	it, res := s.newItemLocked(key, old.flags, 0, len(old.value)+len(add), now)
	if res != Stored {
		s.releasePin(old)
		return res
	}
	it.expireAt = old.expireAt
	if prepend {
		copy(it.value, add)
		copy(it.value[len(add):], old.value)
	} else {
		copy(it.value, old.value)
		copy(it.value[len(old.value):], add)
	}
	s.releasePin(old)
	s.linkLocked(it, now)
	return Stored
}

// Append adds bytes after an existing value.
func (s *Store) Append(key string, value []byte, now simnet.Time) StoreResult {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats.CmdSet++
	return s.concatLocked(key, value, false, now)
}

// Prepend adds bytes before an existing value.
func (s *Store) Prepend(key string, value []byte, now simnet.Time) StoreResult {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats.CmdSet++
	return s.concatLocked(key, value, true, now)
}

// Get copies out the value for key. ok=false is a miss.
func (s *Store) Get(key string, now simnet.Time) (value []byte, flags uint32, casID uint64, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats.CmdGet++
	it := s.lookupLocked(key, now)
	if it == nil {
		s.stats.GetMisses++
		return nil, 0, 0, false
	}
	s.stats.GetHits++
	s.arena.lruTouch(it)
	out := make([]byte, len(it.value))
	copy(out, it.value)
	return out, it.flags, it.casID, true
}

// GetPinned returns the live item with its refcount raised, so its slab
// memory stays valid while a reply transfer (possibly a client-issued
// RDMA read) is in flight. The caller must Unpin.
func (s *Store) GetPinned(key string, now simnet.Time) (*Item, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats.CmdGet++
	it := s.lookupLocked(key, now)
	if it == nil {
		s.stats.GetMisses++
		return nil, false
	}
	s.stats.GetHits++
	s.arena.lruTouch(it)
	it.refcount++
	return it, true
}

// Unpin releases a GetPinned reference, freeing the chunk if the item
// was unlinked (replaced/evicted/deleted) while pinned.
func (s *Store) Unpin(it *Item) {
	s.mu.Lock()
	defer s.mu.Unlock()
	it.refcount--
	if !it.linked && !it.pinned() {
		s.arena.Free(it.chunk)
	}
}

// Delete removes key. ok=false is a miss.
func (s *Store) Delete(key string, now simnet.Time) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	it := s.lookupLocked(key, now)
	if it == nil {
		s.stats.DeleteMisses++
		return false
	}
	s.stats.DeleteHits++
	s.unlinkLocked(it)
	return true
}

// IncrDecr adjusts a numeric value. badValue=true means the stored value
// is not an unsigned number (protocol CLIENT_ERROR); oom=true means the
// grown value could not be allocated (protocol SERVER_ERROR) — a server
// failure, distinct from the caller's mistake.
func (s *Store) IncrDecr(key string, delta uint64, incr bool, now simnet.Time) (newVal uint64, found, badValue, oom bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	it := s.lookupLocked(key, now)
	if it == nil {
		if incr {
			s.stats.IncrMisses++
		} else {
			s.stats.DecrMisses++
		}
		return 0, false, false, false
	}
	cur, err := strconv.ParseUint(string(it.value), 10, 64)
	if err != nil {
		return 0, true, true, false
	}
	if incr {
		s.stats.IncrHits++
		cur += delta
	} else {
		s.stats.DecrHits++
		if delta > cur {
			cur = 0
		} else {
			cur -= delta
		}
	}
	text := strconv.FormatUint(cur, 10)
	if len(text) <= len(it.value) {
		// Fits in place: memcached right-pads with spaces semantics are
		// emulated by shrinking the value slice to the new length.
		copy(it.value, text)
		it.value = it.value[:len(text)]
		s.casCounter++
		it.casID = s.casCounter
	} else {
		// Pin the current item across the allocation: newItemLocked may
		// evict it to make room, and the pin keeps its chunk (and the
		// expiry we carry over) alive until the swap completes.
		flags, exp := it.flags, it.expireAt
		it.refcount++
		nit, res := s.newItemLocked(key, flags, 0, len(text), now)
		s.releasePin(it)
		if res != Stored {
			return 0, true, false, true
		}
		nit.expireAt = exp
		copy(nit.value, text)
		s.linkLocked(nit, now)
	}
	return cur, true, false, false
}

// Touch updates an item's expiry.
func (s *Store) Touch(key string, exptime int64, now simnet.Time) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	it := s.lookupLocked(key, now)
	if it == nil {
		s.stats.TouchMisses++
		return false
	}
	s.stats.TouchHits++
	it.expireAt = expiryTime(exptime, now)
	return true
}

// FlushAll invalidates everything stored before now (lazy, like
// memcached: items vanish on next access).
func (s *Store) FlushAll(now simnet.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.flushBefore = now + 1
}

// Stats snapshots the counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// CurrItems reports the live item count.
func (s *Store) CurrItems() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats.CurrItems
}

// Arena exposes the slab arena (tests, stats reporting).
func (s *Store) Arena() *SlabArena { return s.arena }

// SlabClassStat is one size class's occupancy snapshot.
type SlabClassStat struct {
	ClassID       int
	ChunkSize     int
	ChunksPerPage int
	TotalPages    int
	TotalChunks   int
	UsedChunks    int
	FreeChunks    int
	Items         int
}

// SlabStats snapshots per-class occupancy for classes holding pages
// (the data behind `stats slabs` and `stats items`).
func (s *Store) SlabStats() (classes []SlabClassStat, totalMalloced int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	a := s.arena
	for i := 0; i < a.NumClasses(); i++ {
		pages := a.ClassPages(i)
		if pages == 0 {
			continue
		}
		perPage := slabPageSize / a.ClassSize(i)
		total := pages * perPage
		free := a.FreeChunks(i)
		classes = append(classes, SlabClassStat{
			ClassID:       i + 1,
			ChunkSize:     a.ClassSize(i),
			ChunksPerPage: perPage,
			TotalPages:    pages,
			TotalChunks:   total,
			UsedChunks:    total - free,
			FreeChunks:    free,
			Items:         a.ClassItems(i),
		})
	}
	return classes, a.UsedBytes()
}

// EvictionsEnabled reports whether the store evicts under pressure.
func (s *Store) EvictionsEnabled() bool { return s.evictions }

// MaxItemSize reports the largest storable object.
func (s *Store) MaxItemSize() int { return s.arena.ClassSize(s.arena.NumClasses() - 1) }

// HashExpanding reports whether the table is mid-expansion (tests).
func (s *Store) HashExpanding() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.table.Expanding()
}

//go:build mut_onesided_stale

package memcached

func init() {
	mutOneSidedStale = true
	activeMutations = append(activeMutations, "mut_onesided_stale")
}

package memcached

import (
	"sync/atomic"

	"repro/internal/simnet"
)

// Operation recording: when armed (SetRecorder), the store emits one
// OpRecord per state transition, built and sequenced under the owning
// shard's lock. Because every mutation happens under exactly one shard
// lock and carries the worker's virtual timestamp, the emitted sequence
// IS a total order of the engine's history — the memcheck harness
// replays it against a reference model directly, with no interleaving
// search. Internal transitions (lazy expiry reaps, LRU evictions) are
// recorded too, so the model can mirror the engine exactly instead of
// tolerating unexplained misses.
//
// Recording is off by default (one atomic load per operation) and adds
// no virtual-time charges either way: the golden figure tables are
// unaffected.

// OpKind tags one recorded engine transition.
type OpKind uint8

// Record kinds: one per engine entry point, plus the two internal
// transitions (lazy expiry reap, LRU eviction).
const (
	RecGet OpKind = iota + 1
	RecSet
	RecAdd
	RecReplace
	RecAppend
	RecPrepend
	RecCas
	RecDelete
	RecIncr
	RecDecr
	RecTouch
	RecFlushAll
	RecEvict
	RecExpire
)

func (k OpKind) String() string {
	switch k {
	case RecGet:
		return "get"
	case RecSet:
		return "set"
	case RecAdd:
		return "add"
	case RecReplace:
		return "replace"
	case RecAppend:
		return "append"
	case RecPrepend:
		return "prepend"
	case RecCas:
		return "cas"
	case RecDelete:
		return "delete"
	case RecIncr:
		return "incr"
	case RecDecr:
		return "decr"
	case RecTouch:
		return "touch"
	case RecFlushAll:
		return "flush_all"
	case RecEvict:
		return "evict"
	case RecExpire:
		return "expire"
	default:
		return "unknown"
	}
}

// OpRecord is one totally-ordered engine transition. Fields beyond
// Seq/Kind/Key/Now are populated per kind; byte slices are copies, safe
// to retain.
type OpRecord struct {
	Seq  uint64
	Kind OpKind
	Key  string
	Now  simnet.Time

	// Store-class ops (set/add/replace/cas/append/prepend).
	Value    []byte      // resulting value (stores), returned value (get hit)
	Arg      []byte      // the appended/prepended bytes (concat ops)
	OldValue []byte      // pre-op value (concat ops); evicted value (evict)
	Flags    uint32      // item flags (stores, get hit)
	Exptime  int64       // raw protocol exptime (fresh stores, touch)
	ExpireAt simnet.Time // resulting absolute expiry
	SetAt    simnet.Time // resulting item setAt
	Res      StoreResult

	CasReq uint64 // cas: the id the caller presented
	NewCAS uint64 // id assigned by this op (0: none assigned)
	OldCAS uint64 // get hit / delete hit / evict / expire / concat old item

	Delta  uint64 // incr/decr
	NewNum uint64 // incr/decr result

	Hit bool // get/delete/touch/incr/decr: key was live
	Bad bool // incr/decr: stored value non-numeric
	OOM bool // incr/decr: grown value could not be allocated

	Horizon simnet.Time // flush_all: items with setAt < Horizon are dead
}

// recorder pairs the callback with the global record sequence.
type recorder struct {
	fn  func(*OpRecord)
	seq atomic.Uint64
}

func (rc *recorder) emit(r *OpRecord) {
	r.Seq = rc.seq.Add(1)
	rc.fn(r)
}

// SetRecorder arms (or, with nil, disarms) operation recording. fn is
// called synchronously under the owning shard's lock — it must be fast
// and must not call back into the Store. Each *OpRecord is freshly
// allocated and safe to retain.
func (s *Store) SetRecorder(fn func(*OpRecord)) {
	if fn == nil {
		s.rec.Store(nil)
		return
	}
	s.rec.Store(&recorder{fn: fn})
}

// Recording reports whether a recorder is armed.
func (s *Store) Recording() bool { return s.rec.Load() != nil }

func cloneBytes(b []byte) []byte {
	if len(b) == 0 {
		return nil
	}
	out := make([]byte, len(b))
	copy(out, b)
	return out
}

// recordGet emits a get record; it is nil on a miss.
func (s *Store) recordGet(key string, it *Item, now simnet.Time) {
	rc := s.rec.Load()
	if rc == nil {
		return
	}
	r := &OpRecord{Kind: RecGet, Key: key, Now: now}
	if it != nil {
		r.Hit = true
		r.Value = cloneBytes(it.value)
		r.Flags = it.flags
		r.OldCAS = it.casID
		r.ExpireAt = it.expireAt
		r.SetAt = it.setAt
	}
	rc.emit(r)
}

// recordStore emits a store-class record; it is nil when the op stored
// nothing (conditional failure, OOM, too large).
func (s *Store) recordStore(kind OpKind, key string, value []byte, flags uint32, exptime int64, casReq uint64, it *Item, res StoreResult, now simnet.Time) {
	rc := s.rec.Load()
	if rc == nil {
		return
	}
	r := &OpRecord{
		Kind: kind, Key: key, Now: now, Res: res,
		Flags: flags, Exptime: exptime, CasReq: casReq,
		Value: cloneBytes(value),
	}
	if it != nil {
		r.Flags = it.flags
		r.NewCAS = it.casID
		r.ExpireAt = it.expireAt
		r.SetAt = it.setAt
	}
	rc.emit(r)
}

//go:build mut_ring_stale

package memcached

import "repro/internal/ring"

// The stale-routing switch lives in the ring package (fleet clients
// consult it when they snapshot the ring); this package only registers
// the tag — ring imports nothing of ours, so no cycle.
func init() {
	ring.MutRingStale = true
	activeMutations = append(activeMutations, "mut_ring_stale")
}

package memcached

import (
	"encoding/binary"

	"repro/internal/ucr"
)

// AMStore carries the conditional storage commands (add, replace,
// append, prepend, cas) that the blocking AMSet fast path does not
// cover. One AM id with an op byte instead of five ids: the commands
// share a wire shape (header + value data block + StatusReply answer),
// and unlike AMSet the value cannot land in slab memory up front —
// whether a conditional store allocates at all is only known under the
// shard lock at execute time, so there is no per-op header handler to
// specialize.
const AMStore uint8 = 0x16

// Store op codes carried in StoreReq.Op.
const (
	StoreOpAdd uint8 = iota + 1
	StoreOpReplace
	StoreOpAppend
	StoreOpPrepend
	StoreOpCas
)

// StoreReq is the AM 1 header for a conditional store; the value
// travels as the AM data block.
type StoreReq struct {
	ReplyCtr ucr.CounterID
	Op       uint8
	Flags    uint32
	Exptime  int64
	CAS      uint64 // StoreOpCas only
	Key      string
}

// EncodeStoreReq packs the header.
func EncodeStoreReq(r StoreReq) []byte {
	b := make([]byte, 8+1+4+8+8+2+len(r.Key))
	le := binary.LittleEndian
	le.PutUint64(b, uint64(r.ReplyCtr))
	b[8] = r.Op
	le.PutUint32(b[9:], r.Flags)
	le.PutUint64(b[13:], uint64(r.Exptime))
	le.PutUint64(b[21:], r.CAS)
	le.PutUint16(b[29:], uint16(len(r.Key)))
	copy(b[31:], r.Key)
	return b
}

// AppendStoreReq packs the header onto dst.
func AppendStoreReq(dst []byte, r StoreReq) []byte {
	le := binary.LittleEndian
	dst = le.AppendUint64(dst, uint64(r.ReplyCtr))
	dst = append(dst, r.Op)
	dst = le.AppendUint32(dst, r.Flags)
	dst = le.AppendUint64(dst, uint64(r.Exptime))
	dst = le.AppendUint64(dst, r.CAS)
	dst = le.AppendUint16(dst, uint16(len(r.Key)))
	return append(dst, r.Key...)
}

// StoreReqView is a conditional-store header decoded in place: Key
// aliases the wire buffer.
type StoreReqView struct {
	ReplyCtr ucr.CounterID
	Op       uint8
	Flags    uint32
	Exptime  int64
	CAS      uint64
	Key      []byte
}

// DecodeStoreReqView unpacks the header without copying the key.
func DecodeStoreReqView(b []byte) (StoreReqView, error) {
	if len(b) < 31 {
		return StoreReqView{}, ErrShortAMHeader
	}
	le := binary.LittleEndian
	kl := int(le.Uint16(b[29:]))
	if len(b) < 31+kl {
		return StoreReqView{}, ErrShortAMHeader
	}
	return StoreReqView{
		ReplyCtr: ucr.CounterID(le.Uint64(b)),
		Op:       b[8],
		Flags:    le.Uint32(b[9:]),
		Exptime:  int64(le.Uint64(b[13:])),
		CAS:      le.Uint64(b[21:]),
		Key:      b[31 : 31+kl],
	}, nil
}

// DecodeStoreReq unpacks the header.
func DecodeStoreReq(b []byte) (StoreReq, error) {
	if len(b) < 31 {
		return StoreReq{}, ErrShortAMHeader
	}
	le := binary.LittleEndian
	kl := int(le.Uint16(b[29:]))
	if len(b) < 31+kl {
		return StoreReq{}, ErrShortAMHeader
	}
	return StoreReq{
		ReplyCtr: ucr.CounterID(le.Uint64(b)),
		Op:       b[8],
		Flags:    le.Uint32(b[9:]),
		Exptime:  int64(le.Uint64(b[13:])),
		CAS:      le.Uint64(b[21:]),
		Key:      string(b[31 : 31+kl]),
	}, nil
}

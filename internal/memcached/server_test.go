// Package memcached_test exercises the Server's dispatcher/worker
// machinery in-package-tree via the real transports (the engine and
// codec have their own unit tests in package memcached).
package memcached_test

import (
	"bufio"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/mcclient"
	"repro/internal/memcached"
	"repro/internal/simnet"
	"repro/internal/sockstream"
	"repro/internal/ucr"
	"repro/internal/verbs"
)

type env struct {
	nw      *simnet.Network
	fab     *simnet.Fabric
	cm      *verbs.CM
	prov    *sockstream.Provider
	srvNode *simnet.Node
	server  *memcached.Server
}

func hcaCfg() verbs.Config {
	return verbs.Config{PostOverhead: 50, SendProc: 300, RecvProc: 300, RDMAProc: 400, PollOverhead: 100}
}

func newEnv(t *testing.T, workers int) *env {
	t.Helper()
	e := &env{}
	e.nw = simnet.NewNetwork()
	e.srvNode = e.nw.AddNode("server")
	e.fab = e.nw.AddFabric(simnet.FabricSpec{Name: "ib", LinkBytesPerSec: 2e9, Propagation: 300})
	e.fab.Attach(e.srvNode)
	e.cm = verbs.NewCM(e.fab)
	e.prov = &sockstream.Provider{Name: "sock", Fabric: e.fab, SegmentSize: 8192}
	e.server = memcached.NewServer(memcached.ServerConfig{Workers: workers})
	lis, err := e.prov.Listen(e.srvNode, "mc")
	if err != nil {
		t.Fatal(err)
	}
	e.server.ServeSockets(lis)
	rt := ucr.New(verbs.NewHCA(e.srvNode, e.fab, hcaCfg()), e.cm, ucr.Config{})
	if err := e.server.ServeUCR(rt, "mc-ucr"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e.server.Close)
	return e
}

// rawConn opens a raw text-protocol connection.
func (e *env) rawConn(t *testing.T) (*sockstream.Conn, *bufio.Reader) {
	t.Helper()
	node := e.nw.AddNode(fmt.Sprintf("raw%d", len(e.nw.Nodes())))
	e.fab.Attach(node)
	conn, err := e.prov.Dial(node, e.srvNode, "mc", simnet.NewVClock(0), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	return conn, bufio.NewReader(conn)
}

func TestServerRawTextProtocol(t *testing.T) {
	e := newEnv(t, 2)
	conn, r := e.rawConn(t)
	defer conn.Close()

	fmt.Fprintf(conn, "set hello 0 0 5\r\nworld\r\n")
	if line, _ := r.ReadString('\n'); line != "STORED\r\n" {
		t.Fatalf("set reply = %q", line)
	}
	fmt.Fprintf(conn, "get hello\r\n")
	if line, _ := r.ReadString('\n'); line != "VALUE hello 0 5\r\n" {
		t.Fatalf("get header = %q", line)
	}
	if line, _ := r.ReadString('\n'); line != "world\r\n" {
		t.Fatalf("get body = %q", line)
	}
	if line, _ := r.ReadString('\n'); line != "END\r\n" {
		t.Fatalf("get trailer = %q", line)
	}
	if e.server.OpsServed.Load() != 2 {
		t.Fatalf("OpsServed = %d", e.server.OpsServed.Load())
	}
}

func TestServerPipelinedBurst(t *testing.T) {
	// Several commands in one segment: one readability event must drain
	// them all (the server's burst loop).
	e := newEnv(t, 1)
	conn, r := e.rawConn(t)
	defer conn.Close()

	var req strings.Builder
	for i := 0; i < 10; i++ {
		fmt.Fprintf(&req, "set k%d 0 0 2\r\nvv\r\n", i)
	}
	if _, err := conn.Write([]byte(req.String())); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if line, err := r.ReadString('\n'); err != nil || line != "STORED\r\n" {
			t.Fatalf("reply %d = (%q, %v)", i, line, err)
		}
	}
	if got := e.server.Store().CurrItems(); got != 10 {
		t.Fatalf("CurrItems = %d", got)
	}
}

func TestServerQuitClosesConn(t *testing.T) {
	e := newEnv(t, 1)
	conn, r := e.rawConn(t)
	fmt.Fprintf(conn, "quit\r\n")
	if _, err := r.ReadString('\n'); err == nil {
		t.Fatal("connection should be closed after quit")
	}
}

func TestServerManyConnsAcrossWorkers(t *testing.T) {
	e := newEnv(t, 3)
	for i := 0; i < 9; i++ {
		conn, r := e.rawConn(t)
		fmt.Fprintf(conn, "set key%d 0 0 1\r\nx\r\n", i)
		if line, _ := r.ReadString('\n'); line != "STORED\r\n" {
			t.Fatalf("conn %d reply %q", i, line)
		}
		conn.Close()
	}
	busy := 0
	for _, c := range e.server.WorkerClocks() {
		if c > 0 {
			busy++
		}
	}
	if busy != 3 {
		t.Fatalf("busy workers = %d, want 3 (round-robin)", busy)
	}
}

func TestServerCloseIdempotentAndProtocolError(t *testing.T) {
	e := newEnv(t, 1)
	conn, r := e.rawConn(t)
	fmt.Fprintf(conn, "gibberish\r\n")
	if line, _ := r.ReadString('\n'); line != "ERROR\r\n" {
		t.Fatalf("reply = %q", line)
	}
	e.server.Close()
	e.server.Close() // idempotent
}

func TestServerUCRSetGetViaClientLib(t *testing.T) {
	e := newEnv(t, 2)
	node := e.nw.AddNode("cli")
	rt := ucr.New(verbs.NewHCA(node, e.fab, hcaCfg()), e.cm, ucr.Config{})
	ctx := rt.NewContext()
	defer ctx.Destroy()
	clk := simnet.NewVClock(0)
	tr, err := mcclient.DialUCR(rt, ctx, e.srvNode, "mc-ucr", mcclient.DefaultBehaviors(), clk)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	if res, err := tr.Set(clk, "x", 0, 0, []byte("y")); err != nil || res != memcached.Stored {
		t.Fatalf("Set = (%v, %v)", res, err)
	}
	v, _, _, ok, err := tr.Get(clk, "x")
	if err != nil || !ok || string(v) != "y" {
		t.Fatalf("Get = (%q, %v, %v)", v, ok, err)
	}
	// Both frontends share the one store.
	conn, r := e.rawConn(t)
	defer conn.Close()
	fmt.Fprintf(conn, "get x\r\n")
	if line, _ := r.ReadString('\n'); line != "VALUE x 0 1\r\n" {
		t.Fatalf("cross-frontend get = %q", line)
	}
}

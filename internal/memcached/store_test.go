package memcached

import (
	"bytes"
	"fmt"
	"strconv"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/simnet"
)

func TestSlabClassGeometry(t *testing.T) {
	a := NewSlabArena(8<<20, 0)
	if a.NumClasses() < 10 {
		t.Fatalf("classes = %d, want a real ladder", a.NumClasses())
	}
	if a.ClassSize(0) != minChunkSize {
		t.Fatalf("first class = %d", a.ClassSize(0))
	}
	for i := 1; i < a.NumClasses(); i++ {
		prev, cur := a.ClassSize(i-1), a.ClassSize(i)
		if cur <= prev {
			t.Fatalf("class sizes not increasing: %d then %d", prev, cur)
		}
		if cur%chunkAlign != 0 && cur != slabPageSize {
			t.Fatalf("class %d size %d not aligned", i, cur)
		}
	}
	if a.ClassSize(a.NumClasses()-1) != slabPageSize {
		t.Fatalf("last class = %d, want %d", a.ClassSize(a.NumClasses()-1), slabPageSize)
	}
}

func TestSlabClassFor(t *testing.T) {
	a := NewSlabArena(8<<20, 0)
	for _, n := range []int{1, 95, 96, 97, 1000, 100_000, slabPageSize} {
		ci, ok := a.ClassFor(n)
		if !ok {
			t.Fatalf("ClassFor(%d) not ok", n)
		}
		if a.ClassSize(ci) < n {
			t.Fatalf("class %d (%d) cannot hold %d", ci, a.ClassSize(ci), n)
		}
		if ci > 0 && a.ClassSize(ci-1) >= n {
			t.Fatalf("ClassFor(%d) = %d not minimal", n, ci)
		}
	}
	if _, ok := a.ClassFor(slabPageSize + 1); ok {
		t.Fatal("oversized request should not fit")
	}
}

func TestSlabAllocFreeReuse(t *testing.T) {
	a := NewSlabArena(2<<20, 0)
	c1, err := a.Alloc(100)
	if err != nil {
		t.Fatal(err)
	}
	if len(c1.buf) < 100 {
		t.Fatalf("chunk len %d", len(c1.buf))
	}
	used := a.UsedBytes()
	if used != slabPageSize {
		t.Fatalf("used = %d, want one page", used)
	}
	a.Free(c1)
	c2, err := a.Alloc(100)
	if err != nil {
		t.Fatal(err)
	}
	if a.UsedBytes() != used {
		t.Fatal("re-alloc grabbed another page despite free chunk")
	}
	_ = c2
}

func TestSlabExhaustion(t *testing.T) {
	a := NewSlabArena(1<<20, 0) // exactly one page
	var got int
	for {
		if _, err := a.Alloc(1000); err != nil {
			if err != ErrNoMemory {
				t.Fatalf("err = %v", err)
			}
			break
		}
		got++
	}
	if got == 0 {
		t.Fatal("no chunks allocated before exhaustion")
	}
}

func TestSlabPropertyNoDoubleHandout(t *testing.T) {
	// Property: the arena never hands out the same chunk twice while
	// it is live, across random alloc/free sequences.
	f := func(ops []uint16) bool {
		a := NewSlabArena(4<<20, 0)
		type ref struct{ c chunk }
		live := map[*byte]*ref{}
		var order []*byte
		for _, op := range ops {
			if op%3 != 0 && len(live) > 0 { // alloc twice as often as free
				n := int(op%8000) + 1
				c, err := a.Alloc(n)
				if err != nil {
					continue
				}
				k := &c.buf[0]
				if _, dup := live[k]; dup {
					return false
				}
				live[k] = &ref{c}
				order = append(order, k)
			} else if len(order) > 0 {
				k := order[len(order)-1]
				order = order[:len(order)-1]
				if r, ok := live[k]; ok {
					a.Free(r.c)
					delete(live, k)
				}
			} else {
				n := int(op%8000) + 1
				c, err := a.Alloc(n)
				if err != nil {
					continue
				}
				k := &c.buf[0]
				if _, dup := live[k]; dup {
					return false
				}
				live[k] = &ref{c}
				order = append(order, k)
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestHashTableBasics(t *testing.T) {
	ht := newHashTable()
	items := make([]*Item, 0, 1000)
	for i := 0; i < 1000; i++ {
		it := &Item{key: fmt.Sprintf("key-%d", i)}
		ht.Put(it)
		items = append(items, it)
	}
	if ht.Len() != 1000 {
		t.Fatalf("Len = %d", ht.Len())
	}
	if ht.Buckets() <= 1<<hashInitialPower {
		t.Fatal("table never expanded")
	}
	for i, it := range items {
		got := ht.Get(it.key)
		if got != it {
			t.Fatalf("Get(%q) = %v", it.key, got)
		}
		if i%3 == 0 {
			if del := ht.Delete(it.key); del != it {
				t.Fatalf("Delete(%q) = %v", it.key, del)
			}
			if ht.Get(it.key) != nil {
				t.Fatal("deleted key still present")
			}
		}
	}
	if ht.Get("absent") != nil {
		t.Fatal("absent key returned an item")
	}
	if ht.Delete("absent") != nil {
		t.Fatal("deleting absent key returned an item")
	}
}

func TestHashTableIncrementalExpansion(t *testing.T) {
	ht := newHashTable()
	// Fill past the load factor in one burst; expansion must start.
	n := int(hashLoadFactor*float64(1<<hashInitialPower)) + 2
	for i := 0; i < n; i++ {
		ht.Put(&Item{key: fmt.Sprintf("k%d", i)})
	}
	if !ht.Expanding() {
		t.Fatal("expansion did not start")
	}
	// Every key remains reachable mid-expansion.
	for i := 0; i < n; i++ {
		if ht.Get(fmt.Sprintf("k%d", i)) == nil {
			t.Fatalf("k%d lost mid-expansion", i)
		}
	}
	// A few more operations finish the migration.
	for i := 0; ht.Expanding() && i < 10000; i++ {
		ht.Get("k0")
	}
	if ht.Expanding() {
		t.Fatal("expansion never finished")
	}
}

func TestHashTableModelProperty(t *testing.T) {
	// Property: the table behaves exactly like map[string]*Item under
	// random put/get/delete sequences.
	f := func(ops []uint16) bool {
		ht := newHashTable()
		model := map[string]*Item{}
		for _, op := range ops {
			key := "k" + strconv.Itoa(int(op%200))
			switch op % 3 {
			case 0:
				if model[key] == nil {
					it := &Item{key: key}
					ht.Put(it)
					model[key] = it
				}
			case 1:
				if ht.Get(key) != model[key] {
					return false
				}
			case 2:
				got := ht.Delete(key)
				if got != model[key] {
					return false
				}
				delete(model, key)
			}
		}
		if ht.Len() != len(model) {
			return false
		}
		for k, v := range model {
			if ht.Get(k) != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func newTestStore() *Store {
	return NewStore(StoreConfig{MemoryLimit: 16 << 20})
}

func TestStoreSetGet(t *testing.T) {
	s := newTestStore()
	if res := s.Set("alpha", 7, 0, []byte("value-1"), 0); res != Stored {
		t.Fatalf("Set = %v", res)
	}
	v, flags, cas, ok := s.Get("alpha", 1)
	if !ok || string(v) != "value-1" || flags != 7 || cas == 0 {
		t.Fatalf("Get = (%q, %d, %d, %v)", v, flags, cas, ok)
	}
	if _, _, _, ok := s.Get("missing", 1); ok {
		t.Fatal("missing key hit")
	}
	st := s.Stats()
	if st.CmdGet != 2 || st.GetHits != 1 || st.GetMisses != 1 || st.CmdSet != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestStoreOverwriteUpdatesBytes(t *testing.T) {
	s := newTestStore()
	s.Set("k", 0, 0, bytes.Repeat([]byte("a"), 100), 0)
	s.Set("k", 0, 0, bytes.Repeat([]byte("b"), 10), 0)
	st := s.Stats()
	if st.CurrItems != 1 {
		t.Fatalf("CurrItems = %d", st.CurrItems)
	}
	if st.Bytes != uint64(len("k")+10) {
		t.Fatalf("Bytes = %d", st.Bytes)
	}
	v, _, _, _ := s.Get("k", 0)
	if string(v) != "bbbbbbbbbb" {
		t.Fatalf("value = %q", v)
	}
}

func TestStoreAddReplace(t *testing.T) {
	s := newTestStore()
	if res := s.Replace("x", 0, 0, []byte("v"), 0); res != NotStored {
		t.Fatalf("Replace absent = %v", res)
	}
	if res := s.Add("x", 0, 0, []byte("v1"), 0); res != Stored {
		t.Fatalf("Add = %v", res)
	}
	if res := s.Add("x", 0, 0, []byte("v2"), 0); res != NotStored {
		t.Fatalf("Add present = %v", res)
	}
	if res := s.Replace("x", 0, 0, []byte("v3"), 0); res != Stored {
		t.Fatalf("Replace = %v", res)
	}
	v, _, _, _ := s.Get("x", 0)
	if string(v) != "v3" {
		t.Fatalf("value = %q", v)
	}
}

func TestStoreAppendPrepend(t *testing.T) {
	s := newTestStore()
	if res := s.Append("x", []byte("!"), 0); res != NotStored {
		t.Fatalf("Append absent = %v", res)
	}
	s.Set("x", 3, 0, []byte("mid"), 0)
	if res := s.Append("x", []byte("-end"), 0); res != Stored {
		t.Fatal("Append failed")
	}
	if res := s.Prepend("x", []byte("start-"), 0); res != Stored {
		t.Fatal("Prepend failed")
	}
	v, flags, _, _ := s.Get("x", 0)
	if string(v) != "start-mid-end" || flags != 3 {
		t.Fatalf("value = %q flags=%d", v, flags)
	}
}

func TestStoreCAS(t *testing.T) {
	s := newTestStore()
	s.Set("x", 0, 0, []byte("v1"), 0)
	_, _, cas, _ := s.Get("x", 0)
	if res := s.Cas("x", 0, 0, []byte("v2"), cas, 0); res != Stored {
		t.Fatalf("Cas fresh = %v", res)
	}
	// The old CAS id is now stale.
	if res := s.Cas("x", 0, 0, []byte("v3"), cas, 0); res != Exists {
		t.Fatalf("Cas stale = %v", res)
	}
	if res := s.Cas("nope", 0, 0, []byte("v"), 1, 0); res != NotFound {
		t.Fatalf("Cas missing = %v", res)
	}
	st := s.Stats()
	if st.CasHits != 1 || st.CasBadval != 1 || st.CasMisses != 1 {
		t.Fatalf("cas stats = %+v", st)
	}
}

func TestStoreDelete(t *testing.T) {
	s := newTestStore()
	s.Set("x", 0, 0, []byte("v"), 0)
	if !s.Delete("x", 0) {
		t.Fatal("Delete hit failed")
	}
	if s.Delete("x", 0) {
		t.Fatal("Delete after delete hit")
	}
	if _, _, _, ok := s.Get("x", 0); ok {
		t.Fatal("deleted key readable")
	}
}

func TestStoreExpiry(t *testing.T) {
	s := newTestStore()
	// Expire 10 virtual seconds after the set.
	s.Set("x", 0, 10, []byte("v"), 100*simnet.Second)
	if _, _, _, ok := s.Get("x", 105*simnet.Second); !ok {
		t.Fatal("not yet expired")
	}
	if _, _, _, ok := s.Get("x", 111*simnet.Second); ok {
		t.Fatal("expired item still served")
	}
	if s.Stats().Expired != 1 {
		t.Fatalf("Expired = %d", s.Stats().Expired)
	}
	// Absolute expiry (> 30 days) means "at that virtual second".
	abs := int64(maxRelativeExpiry + 100)
	s.Set("y", 0, abs, []byte("v"), 0)
	if _, _, _, ok := s.Get("y", simnet.Time(abs-1)*simnet.Second); !ok {
		t.Fatal("absolute expiry fired early")
	}
	if _, _, _, ok := s.Get("y", simnet.Time(abs+1)*simnet.Second); ok {
		t.Fatal("absolute expiry did not fire")
	}
}

func TestStoreTouch(t *testing.T) {
	s := newTestStore()
	s.Set("x", 0, 10, []byte("v"), 0)
	if !s.Touch("x", 1000, 5*simnet.Second) {
		t.Fatal("Touch failed")
	}
	if _, _, _, ok := s.Get("x", 500*simnet.Second); !ok {
		t.Fatal("touched item expired on old schedule")
	}
	if s.Touch("nope", 10, 0) {
		t.Fatal("Touch on absent key succeeded")
	}
}

func TestStoreFlushAll(t *testing.T) {
	s := newTestStore()
	s.Set("a", 0, 0, []byte("1"), 10)
	s.Set("b", 0, 0, []byte("2"), 20)
	s.FlushAll(50)
	if _, _, _, ok := s.Get("a", 60); ok {
		t.Fatal("flushed item served")
	}
	// Items set after the flush live on.
	s.Set("c", 0, 0, []byte("3"), 60)
	if _, _, _, ok := s.Get("c", 70); !ok {
		t.Fatal("post-flush item lost")
	}
}

func TestStoreIncrDecr(t *testing.T) {
	s := newTestStore()
	s.Set("n", 0, 0, []byte("10"), 0)
	if v, found, bad, _ := s.IncrDecr("n", 5, true, 0); v != 15 || !found || bad {
		t.Fatalf("Incr = (%d,%v,%v)", v, found, bad)
	}
	if v, _, _, _ := s.IncrDecr("n", 20, false, 0); v != 0 {
		t.Fatalf("Decr floor = %d, want 0", v)
	}
	if _, found, _, _ := s.IncrDecr("missing", 1, true, 0); found {
		t.Fatal("incr on missing key found")
	}
	s.Set("s", 0, 0, []byte("abc"), 0)
	if _, found, bad, oom := s.IncrDecr("s", 1, true, 0); !found || !bad || oom {
		t.Fatal("non-numeric incr should report badValue, not oom")
	}
	// Growth: 9 + 1 = 10 needs one more digit (realloc path).
	s.Set("g", 0, 0, []byte("9"), 0)
	if v, _, _, _ := s.IncrDecr("g", 1, true, 0); v != 10 {
		t.Fatalf("Incr growth = %d", v)
	}
	got, _, _, _ := s.Get("g", 0)
	if string(got) != "10" {
		t.Fatalf("stored grown value = %q", got)
	}
}

func TestStoreEviction(t *testing.T) {
	s := NewStore(StoreConfig{MemoryLimit: 2 << 20}) // two pages
	val := bytes.Repeat([]byte("x"), 8000)
	var n int
	for i := 0; ; i++ {
		res := s.Set(fmt.Sprintf("k%d", i), 0, 0, val, 0)
		if res != Stored {
			t.Fatalf("Set %d = %v (evictions should make room)", i, res)
		}
		n++
		if s.Stats().Evictions > 10 {
			break
		}
		if i > 10000 {
			t.Fatal("never evicted")
		}
	}
	// The most recent keys survive; the oldest were evicted.
	if _, _, _, ok := s.Get(fmt.Sprintf("k%d", n-1), 0); !ok {
		t.Fatal("most recent key evicted")
	}
	if _, _, _, ok := s.Get("k0", 0); ok {
		t.Fatal("oldest key survived heavy eviction")
	}
}

func TestStoreEvictionDisabled(t *testing.T) {
	s := NewStore(StoreConfig{MemoryLimit: 1 << 20, DisableEvictions: true})
	val := bytes.Repeat([]byte("x"), 8000)
	var sawOOM bool
	for i := 0; i < 1000; i++ {
		if res := s.Set(fmt.Sprintf("k%d", i), 0, 0, val, 0); res == OOM {
			sawOOM = true
			break
		}
	}
	if !sawOOM {
		t.Fatal("never returned OOM with evictions disabled")
	}
	if s.Stats().Evictions != 0 {
		t.Fatal("evictions happened despite -M")
	}
}

func TestStoreLRUOrder(t *testing.T) {
	s := NewStore(StoreConfig{MemoryLimit: 2 << 20})
	val := bytes.Repeat([]byte("x"), 8000)
	// Fill well under capacity (2 MB holds ~240 such chunks).
	for i := 0; i < 100; i++ {
		if s.Set(fmt.Sprintf("k%d", i), 0, 0, val, 0) != Stored {
			t.Fatalf("warm set %d failed", i)
		}
	}
	// Touch the oldest so it becomes MRU.
	if _, _, _, ok := s.Get("k0", 0); !ok {
		t.Fatal("k0 missing before pressure")
	}
	// Force evictions with a flood of new keys.
	for i := 0; i < 200; i++ {
		s.Set(fmt.Sprintf("new%d", i), 0, 0, val, 0)
	}
	if s.Stats().Evictions == 0 {
		t.Fatal("no eviction pressure generated")
	}
	if _, _, _, ok := s.Get("k0", 0); !ok {
		t.Fatal("recently used key was evicted before colder keys")
	}
	if _, _, _, ok := s.Get("k1", 0); ok {
		t.Fatal("coldest key survived while pressure evicted others")
	}
}

func TestStorePinBlocksEvictionAndDefersFree(t *testing.T) {
	s := NewStore(StoreConfig{MemoryLimit: 2 << 20})
	s.Set("pinned", 0, 0, []byte("precious"), 0)
	it, ok := s.GetPinned("pinned", 0)
	if !ok {
		t.Fatal("GetPinned miss")
	}
	// Deleting while pinned unlinks but must not recycle the chunk.
	free0 := s.arena.FreeChunks(it.chunk.class)
	if !s.Delete("pinned", 0) {
		t.Fatal("delete failed")
	}
	if s.arena.FreeChunks(it.chunk.class) != free0 {
		t.Fatal("pinned chunk recycled at delete")
	}
	if string(it.Value()) != "precious" {
		t.Fatal("pinned value corrupted")
	}
	s.Unpin(it)
	if s.arena.FreeChunks(it.chunk.class) != free0+1 {
		t.Fatal("chunk not freed after unpin")
	}
}

func TestStoreAllocateCommitAbort(t *testing.T) {
	s := newTestStore()
	it, res := s.AllocateItem("k", 5, 0, 8, 0)
	if res != Stored {
		t.Fatalf("AllocateItem = %v", res)
	}
	// Not yet visible.
	if _, _, _, ok := s.Get("k", 0); ok {
		t.Fatal("uncommitted item visible")
	}
	copy(it.Value(), "rdmaland")
	s.CommitItem(it, 0)
	v, flags, _, ok := s.Get("k", 0)
	if !ok || string(v) != "rdmaland" || flags != 5 {
		t.Fatalf("committed = (%q,%d,%v)", v, flags, ok)
	}
	// Abort path returns the chunk.
	it2, _ := s.AllocateItem("tmp", 0, 0, 8, 0)
	free0 := s.arena.FreeChunks(it2.chunk.class)
	s.AbortItem(it2)
	if s.arena.FreeChunks(it2.chunk.class) != free0+1 {
		t.Fatal("aborted chunk not freed")
	}
}

func TestStoreTooLarge(t *testing.T) {
	s := newTestStore()
	if res := s.Set("big", 0, 0, make([]byte, 2<<20), 0); res != TooLarge {
		t.Fatalf("Set huge = %v", res)
	}
}

func TestStoreModelProperty(t *testing.T) {
	// Property: with ample memory and no expiry, the store behaves like
	// map[string]string under random set/get/delete.
	f := func(ops []uint16, vals []byte) bool {
		s := NewStore(StoreConfig{MemoryLimit: 32 << 20})
		model := map[string]string{}
		for i, op := range ops {
			key := "k" + strconv.Itoa(int(op%50))
			switch op % 3 {
			case 0:
				v := []byte{byte(i), byte(op), byte(op >> 8)}
				if len(vals) > 0 {
					v = append(v, vals[i%len(vals)])
				}
				if s.Set(key, 0, 0, v, 0) != Stored {
					return false
				}
				model[key] = string(v)
			case 1:
				v, _, _, ok := s.Get(key, 0)
				want, exists := model[key]
				if ok != exists || (ok && string(v) != want) {
					return false
				}
			case 2:
				_, exists := model[key]
				if s.Delete(key, 0) != exists {
					return false
				}
				delete(model, key)
			}
		}
		return s.CurrItems() == uint64(len(model))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestStoreConcurrentWorkers(t *testing.T) {
	// The engine sits under one lock shared by all server workers; this
	// stress run (with -race) hunts for misuse around pinning, eviction
	// and expiry under contention.
	s := NewStore(StoreConfig{MemoryLimit: 4 << 20})
	const workers = 8
	const opsEach = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			val := bytes.Repeat([]byte{byte(w)}, 600)
			for i := 0; i < opsEach; i++ {
				key := fmt.Sprintf("k%d", (w*31+i)%97)
				switch i % 5 {
				case 0, 1:
					s.Set(key, uint32(w), 0, val, simnet.Time(i))
				case 2:
					if it, ok := s.GetPinned(key, simnet.Time(i)); ok {
						if len(it.Value()) != 600 {
							t.Errorf("pinned value len %d", len(it.Value()))
						}
						s.Unpin(it)
					}
				case 3:
					s.Get(key, simnet.Time(i))
				case 4:
					s.Delete(key, simnet.Time(i))
				}
			}
		}(w)
	}
	wg.Wait()
	st := s.Stats()
	if st.CmdSet == 0 || st.CmdGet == 0 {
		t.Fatalf("stats = %+v", st)
	}
	// Invariant: accounted bytes are consistent with the live items.
	var total uint64
	for _, key := range []string{} {
		_ = key
	}
	if st.CurrItems > 97 {
		t.Fatalf("CurrItems = %d > keyspace", st.CurrItems)
	}
	_ = total
}

package memcached

import (
	"repro/internal/simnet"
	"repro/internal/ucr"
)

// Server half of the write-based reply path: the client registers its
// reply arena once per connection (AMWrArm carries base/rkey/slot
// geometry), and AMGetW/AMMGetW are then AMGet/AMMGet with a 2-byte
// arena slot index riding the request header. A validated hit whose
// reply exceeds the crossover and fits the slot is answered by
// gather-writing [reply header ‖ value] into it — the GET value sourced
// directly from the pinned slab chunk, no pack copy — followed by a
// payload-free notify AM on the same QP (RC FIFO guarantees the data
// lands before the notify is delivered). Everything else — small
// values, oversize-vs-window, unregistered slots, unreliable endpoints,
// post failures — falls back to the ordinary eager/rendezvous reply
// ladder, which the client accepts on the same tag.

// wrTable is one connection's registered reply arena.
type wrTable struct {
	addr    uint64
	rkey    uint32
	slotLen int32
	slots   int32
}

// wrWin resolves a request's slot index against the endpoint's
// registered table. An unarmed connection or out-of-range index yields
// a zero-length window, which every write-band size check rejects — the
// reply then takes the copy ladder.
func (w *worker) wrWin(ep *ucr.Endpoint, slot uint16) ucr.WindowDesc {
	tab, ok := w.wrTabs[ep]
	if !ok || int32(slot) >= tab.slots {
		return ucr.WindowDesc{}
	}
	return ucr.WindowDesc{
		Addr: tab.addr + uint64(slot)*uint64(tab.slotLen),
		RKey: tab.rkey,
		Len:  int(tab.slotLen),
	}
}

// amWrArmComplete installs a connection's slot table. Reliable
// endpoints only — write replies never target a datagram peer.
func (s *Server) amWrArmComplete(clk *simnet.VClock, ep *ucr.Endpoint, hdr, data []byte, _ ucr.CounterID) {
	w := s.workerFor(ep)
	req, err := DecodeWrArmReq(hdr)
	if err != nil {
		return
	}
	s.opCharge(clk, ep)
	status := AMOK
	if req.SlotLen == 0 || req.Slots == 0 || ep.Reliability() != ucr.Reliable {
		status = AMError
	} else {
		if w.wrTabs == nil {
			w.wrTabs = make(map[*ucr.Endpoint]wrTable)
		}
		w.wrTabs[ep] = wrTable{
			addr:    req.Addr,
			rkey:    req.RKey,
			slotLen: int32(req.SlotLen),
			slots:   int32(req.Slots),
		}
	}
	w.reply = AppendStatusReply(w.reply[:0], StatusReply{Status: status})
	_ = ep.Send(clk, AMWrArmReply, w.reply, nil, nil, req.ReplyCtr, nil)
}

// writeReplyWin resolves which window a write reply targets. The
// mut_wrreply_stale mutation answers the CURRENT request into the
// PREVIOUS request's window on the same endpoint — the stale-slot bug
// class the per-request window advertisement exists to prevent.
func (w *worker) writeReplyWin(ep *ucr.Endpoint, cur ucr.WindowDesc) ucr.WindowDesc {
	if !mutWrReplyStale {
		return cur
	}
	if w.staleWins == nil {
		w.staleWins = make(map[*ucr.Endpoint]ucr.WindowDesc)
	}
	prev, ok := w.staleWins[ep]
	w.staleWins[ep] = cur
	if !ok {
		return cur
	}
	return prev
}

// amGetWComplete serves a window-advertising Get. The lookup and pin
// lifecycle mirror amGetComplete; only the reply transport differs.
func (s *Server) amGetWComplete(clk *simnet.VClock, ep *ucr.Endpoint, hdr, data []byte, _ ucr.CounterID) {
	w := s.workerFor(ep)
	req, err := DecodeGetWReqView(hdr)
	if err != nil {
		return
	}
	s.opCharge(clk, ep)
	s.OpsServed.Add(1)
	s.chargeLockBytes(clk, req.Key, 0)
	it, ok := s.store.GetPinnedBytes(req.Key, clk.Now())
	if !ok {
		w.reply = AppendGetReply(w.reply[:0], GetReply{Status: AMMiss})
		_ = ep.Send(clk, AMGetReply, w.reply, nil, nil, req.ReplyCtr, nil)
		return
	}
	w.reply = AppendGetReply(w.reply[:0], GetReply{Status: AMOK, Flags: it.Flags(), CAS: it.CAS()})
	total := len(w.reply) + len(it.Value())
	win := w.wrWin(ep, req.Slot)
	if ep.Reliability() == ucr.Reliable && total > s.cfg.WriteReplyEager && total <= win.Len {
		// Write path: gather-post header+value into the client's slot.
		// The value segment references the slab chunk in place, so the
		// item stays pinned until the write completion settles ctr —
		// WriteReply guarantees the counter fires on success AND failure,
		// so the pin sweep always releases it.
		ctr := s.ucrRT.NewCounter()
		if err := ep.WriteReply(clk, w.reply, it.Value(), w.writeReplyWin(ep, win), 0, ctr); err == nil {
			w.pendingPins = append(w.pendingPins, pendingPin{ctr: ctr, item: it})
			w.reply = AppendGetWNotify(w.reply[:0], GetWNotify{
				Status: AMOK, Flags: it.Flags(), CAS: it.CAS(), ValueLen: uint32(len(it.Value())),
			})
			_ = ep.Send(clk, AMGetWNotify, w.reply, nil, nil, req.ReplyCtr, nil)
			return
		}
		s.ucrRT.FreeCounter(ctr)
		// Fall through to the copy ladder (bounds rejection with the
		// stale-window mutation, or a failing endpoint — the sends below
		// then fail too, and the client times out and retries).
	}
	if total <= ep.MaxEager() {
		// Below the crossover (or the write post was refused): the plain
		// eager reply — packed copy, unpin immediately.
		_ = ep.Send(clk, AMGetReply, w.reply, it.Value(), nil, req.ReplyCtr, nil)
		s.store.Unpin(it)
		return
	}
	if ep.Reliability() == ucr.Unreliable {
		s.store.Unpin(it)
		w.reply = AppendGetReply(w.reply[:0], GetReply{Status: AMTooBig})
		_ = ep.Send(clk, AMGetReply, w.reply, nil, nil, req.ReplyCtr, nil)
		return
	}
	// Oversize-vs-window: rendezvous, the client RDMA-reads the chunk.
	ctr := s.ucrRT.NewCounter()
	if err := ep.Send(clk, AMGetReply, w.reply, it.Value(), ctr, req.ReplyCtr, nil); err != nil {
		s.store.Unpin(it)
		s.ucrRT.FreeCounter(ctr)
		return
	}
	w.pendingPins = append(w.pendingPins, pendingPin{ctr: ctr, item: it})
}

// amMGetWComplete serves a window-advertising multi-get. The gather WQE
// carries two segments (header + one value block), so the values are
// staged into one contiguous block first — the same pre-sized copy the
// eager path pays — and the write then skips the client-side receive
// copy and the oversize rendezvous round trip.
func (s *Server) amMGetWComplete(clk *simnet.VClock, ep *ucr.Endpoint, hdr, data []byte, _ ucr.CounterID) {
	w := s.workerFor(ep)
	replyCtr, slot, cur, err := NewMGetWCursor(hdr)
	if err != nil {
		return
	}
	win := w.wrWin(ep, slot)
	items := w.mgetItems[:0]
	w.reply = BeginMGetReply(w.reply[:0])
	total, found := 0, 0
	for {
		key, ok := cur.Next()
		if !ok {
			break
		}
		s.opCharge(clk, ep)
		s.OpsServed.Add(1)
		s.chargeLockBytes(clk, key, 0)
		it, hit := s.store.GetPinnedBytes(key, clk.Now())
		if !hit {
			continue
		}
		w.reply = AppendMGetReplyItem(w.reply, key, it.Flags(), it.CAS(), len(it.Value()))
		items = append(items, it)
		total += len(it.Value())
		found++
	}
	FinishMGetReply(w.reply, 0, found)
	release := func() {
		for i, it := range items {
			s.store.Unpin(it)
			items[i] = nil
		}
		w.mgetItems = items[:0]
	}
	if ep.Reliability() == ucr.Reliable && len(w.reply)+total > s.cfg.WriteReplyEager && len(w.reply)+total <= win.Len {
		// The staged block is written asynchronously, so it cannot live
		// in the worker's arena; pins release as soon as the copy is made.
		values := make([]byte, 0, total)
		for _, it := range items {
			values = append(values, it.Value()...)
		}
		release()
		clk.Advance(simnet.BytesDuration(total, s.ucrRT.Config().PackBytesPerSec))
		ctr := s.ucrRT.NewCounter()
		if err := ep.WriteReply(clk, w.reply, values, w.writeReplyWin(ep, win), 0, ctr); err == nil {
			hl := len(w.reply)
			w.pendingPins = append(w.pendingPins, pendingPin{ctr: ctr})
			w.reply = AppendMGetWNotify(w.reply[:0], MGetWNotify{
				Status: AMOK, HdrLen: uint32(hl), DataLen: uint32(total),
			})
			_ = ep.Send(clk, AMMGetWNotify, w.reply, nil, nil, replyCtr, nil)
			return
		}
		s.ucrRT.FreeCounter(ctr)
		// Copy ladder below; the values were already released, so it
		// re-reads nothing — the eager send packs the staged block.
		clk.Advance(simnet.BytesDuration(len(values), s.ucrRT.Config().PackBytesPerSec))
		_ = ep.Send(clk, AMMGetReply, w.reply, values, nil, replyCtr, nil)
		return
	}
	if ep.Reliability() == ucr.Unreliable && len(w.reply)+total > ep.MaxEager() {
		release()
		_ = ep.Send(clk, AMMGetRetry, nil, nil, nil, replyCtr, nil)
		return
	}
	var values []byte
	if len(w.reply)+total <= ep.MaxEager() {
		if cap(w.vals) < total {
			w.vals = make([]byte, 0, total)
		}
		values = w.vals[:0]
	} else {
		values = make([]byte, 0, total)
	}
	for _, it := range items {
		values = append(values, it.Value()...)
	}
	release()
	clk.Advance(simnet.BytesDuration(len(values), s.ucrRT.Config().PackBytesPerSec))
	_ = ep.Send(clk, AMMGetReply, w.reply, values, nil, replyCtr, nil)
}

// UCRWriteReplies totals the write-based replies posted across the
// workers' progress contexts — the vacuity guard for the write-reply
// datapath. Read it quiesced (after Close, or with clients drained).
func (s *Server) UCRWriteReplies() uint64 {
	var total uint64
	for _, ctx := range s.ctxs {
		total += ctx.WriteReplies()
	}
	return total
}

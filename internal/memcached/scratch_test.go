package memcached

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"repro/internal/simnet"
)

// Satellite: the per-connection and per-worker staging buffers are
// reused across operations but must not be pinned at a large size by
// one oversized request — retention is capped at scratchMax (64 KB).

// TestProtoConnValueBufferReuseAndCap: pipelined sets reuse one staging
// buffer; an oversized set uses a one-off buffer and leaves the small
// one in place.
func TestProtoConnValueBufferReuseAndCap(t *testing.T) {
	big := scratchMax + 4096 // over the cap, under MaxItemSize
	var in strings.Builder
	for i := 0; i < 4; i++ {
		v := strings.Repeat("x", 100+i)
		fmt.Fprintf(&in, "set k%d 0 0 %d\r\n%s\r\n", i, len(v), v)
	}
	fmt.Fprintf(&in, "set big 0 0 %d\r\n%s\r\n", big, strings.Repeat("y", big))
	fmt.Fprintf(&in, "set after 0 0 5\r\nhello\r\n")

	var out bytes.Buffer
	store := NewStore(StoreConfig{MemoryLimit: 4 << 20, Stripes: 2})
	pc := NewProtoConn(fuzzStream{strings.NewReader(in.String()), &out}, store)
	clk := simnet.NewVClock(0)

	for i := 0; i < 4; i++ {
		if _, err := pc.ServeOne(clk); err != nil {
			t.Fatalf("set %d: %v", i, err)
		}
	}
	if got := cap(pc.valBuf); got == 0 || got > scratchMax {
		t.Fatalf("after small sets: cap(valBuf) = %d, want (0, %d]", got, scratchMax)
	}
	small := cap(pc.valBuf)

	if _, err := pc.ServeOne(clk); err != nil {
		t.Fatalf("big set: %v", err)
	}
	if got := cap(pc.valBuf); got > scratchMax {
		t.Fatalf("after oversized set: cap(valBuf) = %d, want <= %d (one-off not retained)", got, scratchMax)
	}
	if got := cap(pc.valBuf); got != small {
		t.Fatalf("after oversized set: cap(valBuf) = %d, want untouched %d", got, small)
	}

	if _, err := pc.ServeOne(clk); err != nil {
		t.Fatalf("set after big: %v", err)
	}
	if v, _, _, ok := store.Get("after", 0); !ok || string(v) != "hello" {
		t.Fatalf("post-oversized set landed %q, ok=%v", v, ok)
	}
	if !strings.Contains(out.String(), "STORED") {
		t.Fatalf("no STORED in output: %q", out.String())
	}
}

// TestProtoConnReplyBufferCap: a multi-get whose response exceeds
// scratchMax is served from a one-off buffer; the retained reply
// staging buffer never exceeds the cap.
func TestProtoConnReplyBufferCap(t *testing.T) {
	store := NewStore(StoreConfig{MemoryLimit: 4 << 20, Stripes: 2})
	clk := simnet.NewVClock(0)
	val := bytes.Repeat([]byte("z"), 40<<10)
	store.Set("a", 0, 0, val, 0)
	store.Set("b", 0, 0, val, 0)

	var out bytes.Buffer
	in := "get a\r\nget a b\r\nget a\r\n"
	pc := NewProtoConn(fuzzStream{strings.NewReader(in), &out}, store)

	if _, err := pc.ServeOne(clk); err != nil { // 40 KB reply: retained
		t.Fatal(err)
	}
	if got := cap(pc.replyBuf); got == 0 || got > scratchMax {
		t.Fatalf("after small get: cap(replyBuf) = %d, want (0, %d]", got, scratchMax)
	}
	if _, err := pc.ServeOne(clk); err != nil { // 80 KB reply: one-off
		t.Fatal(err)
	}
	if got := cap(pc.replyBuf); got > scratchMax {
		t.Fatalf("after large multi-get: cap(replyBuf) = %d, want <= %d", got, scratchMax)
	}
	if _, err := pc.ServeOne(clk); err != nil {
		t.Fatal(err)
	}
	if got := bytes.Count(out.Bytes(), []byte("VALUE ")); got != 4 {
		t.Fatalf("VALUE lines = %d, want 4", got)
	}
}

// TestWorkerScratchCap: the UCR worker's landing/staging buffers follow
// the same rule — pooled up to scratchMax, one-off beyond it.
func TestWorkerScratchCap(t *testing.T) {
	w := &worker{}
	b := w.scratchBuf(1024)
	if len(b) != 1024 || cap(w.scratch) > scratchMax {
		t.Fatalf("small scratch: len=%d cap=%d", len(b), cap(w.scratch))
	}
	prev := cap(w.scratch)
	big := w.scratchBuf(scratchMax + 1)
	if len(big) != scratchMax+1 {
		t.Fatalf("big scratch len = %d", len(big))
	}
	if got := cap(w.scratch); got != prev {
		t.Fatalf("oversized request changed retained scratch: cap=%d, want %d", got, prev)
	}
	s := w.storeBuf(scratchMax)
	if len(s) != scratchMax || cap(w.storeScratch) != scratchMax {
		t.Fatalf("storeBuf at cap: len=%d cap=%d", len(s), cap(w.storeScratch))
	}
}

//go:build mut_ud_dup_ack

package memcached

func init() {
	MutUDDupAck = true
	activeMutations = append(activeMutations, "mut_ud_dup_ack")
}

//go:build mut_append_nocas

package memcached

func init() {
	mutAppendNoCAS = true
	activeMutations = append(activeMutations, "mut_append_nocas")
}

package memcached

// hashTable is memcached's associative array: power-of-two buckets with
// intrusive chaining and *incremental* expansion — when the load factor
// crosses the threshold the table doubles, but items migrate a few
// buckets per operation so no single request pays the full rehash.
type hashTable struct {
	primary   []*Item
	old       []*Item // non-nil while expanding
	expandPos int     // next old bucket to migrate
	count     int
}

const (
	hashInitialPower = 7   // 128 buckets, larger tables grow into place
	hashLoadFactor   = 1.5 // expand when count > factor × buckets
	hashMigratePerOp = 2   // old buckets migrated per table operation
	fnvOffset        = 14695981039346656037
	fnvPrime         = 1099511628211
)

func newHashTable() *hashTable {
	return &hashTable{primary: make([]*Item, 1<<hashInitialPower)}
}

// hashKey is FNV-1a, memcached-style string hashing.
func hashKey(key string) uint64 {
	h := uint64(fnvOffset)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= fnvPrime
	}
	return h
}

// hashKeyBytes is hashKey for a []byte key (same function, no
// conversion), so wire-decoded keys can be looked up without building a
// string.
func hashKeyBytes(key []byte) uint64 {
	h := uint64(fnvOffset)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= fnvPrime
	}
	return h
}

// Len reports linked items.
func (t *hashTable) Len() int { return t.count }

// Buckets reports the primary table size (for tests/stats).
func (t *hashTable) Buckets() int { return len(t.primary) }

// Expanding reports whether incremental migration is in progress.
func (t *hashTable) Expanding() bool { return t.old != nil }

// bucketFor picks the chain a key lives in, considering an in-progress
// expansion: buckets not yet migrated are still served from the old
// table.
func (t *hashTable) bucketFor(h uint64) (tbl []*Item, idx int) {
	if t.old != nil {
		oi := int(h & uint64(len(t.old)-1))
		if oi >= t.expandPos {
			return t.old, oi
		}
	}
	return t.primary, int(h & uint64(len(t.primary)-1))
}

// Get finds the item for key, or nil.
func (t *hashTable) Get(key string) *Item {
	t.migrate()
	h := hashKey(key)
	tbl, idx := t.bucketFor(h)
	for it := tbl[idx]; it != nil; it = it.hnext {
		if it.key == key {
			return it
		}
	}
	return nil
}

// GetBytes is Get for a wire-decoded []byte key. The string conversion
// in the comparison does not allocate (the compiler compares in place),
// so the AM hot path can look keys up straight out of receive buffers.
func (t *hashTable) GetBytes(key []byte) *Item {
	t.migrate()
	h := hashKeyBytes(key)
	tbl, idx := t.bucketFor(h)
	for it := tbl[idx]; it != nil; it = it.hnext {
		if it.key == string(key) {
			return it
		}
	}
	return nil
}

// Put links a new item; the caller guarantees the key is absent.
func (t *hashTable) Put(it *Item) {
	t.migrate()
	h := hashKey(it.key)
	tbl, idx := t.bucketFor(h)
	it.hnext = tbl[idx]
	tbl[idx] = it
	it.linked = true
	t.count++
	t.maybeExpand()
}

// Delete unlinks the item for key, returning it (or nil).
func (t *hashTable) Delete(key string) *Item {
	t.migrate()
	h := hashKey(key)
	tbl, idx := t.bucketFor(h)
	var prev *Item
	for it := tbl[idx]; it != nil; it = it.hnext {
		if it.key == key {
			if prev == nil {
				tbl[idx] = it.hnext
			} else {
				prev.hnext = it.hnext
			}
			it.hnext = nil
			it.linked = false
			t.count--
			return it
		}
		prev = it
	}
	return nil
}

// maybeExpand starts an expansion when the load factor is exceeded.
func (t *hashTable) maybeExpand() {
	if t.old != nil || float64(t.count) <= hashLoadFactor*float64(len(t.primary)) {
		return
	}
	t.old = t.primary
	t.primary = make([]*Item, len(t.old)*2)
	t.expandPos = 0
}

// migrate moves a few buckets from the old table (incremental rehash).
func (t *hashTable) migrate() {
	if t.old == nil {
		return
	}
	for n := 0; n < hashMigratePerOp && t.expandPos < len(t.old); n++ {
		for it := t.old[t.expandPos]; it != nil; {
			next := it.hnext
			h := hashKey(it.key)
			idx := int(h & uint64(len(t.primary)-1))
			it.hnext = t.primary[idx]
			t.primary[idx] = it
			it = next
		}
		t.old[t.expandPos] = nil
		t.expandPos++
	}
	if t.expandPos >= len(t.old) {
		t.old = nil
	}
}

// Package memcached implements the key-value cache engine and server:
// a slab allocator with per-class LRU eviction, a hash table with
// incremental expansion, lazy expiry, CAS, the memcached text protocol,
// and a server with a libevent-style dispatcher and worker threads.
//
// Two frontends serve the same engine, mirroring the paper's design goal
// of one server that speaks to both kinds of clients (§V-A):
//
//   - the sockets frontend: the unmodified text protocol over any
//     byte-stream transport (internal/sockstream or a real net.Conn);
//   - the UCR frontend: the paper's active-message protocol (§V-B/V-C),
//     where a Set's value is pulled from the client with RDMA Read
//     directly into slab memory, and a Get's reply carries the value
//     eagerly (≤ 8 KB) or exposes it for the client's RDMA Read.
package memcached

import (
	"repro/internal/simnet"
)

// Item is one cache entry. Its value bytes live in slab-allocated chunk
// memory; the struct itself carries the metadata plus the hash-chain and
// LRU links (intrusive, like memcached's _stritem).
type Item struct {
	key   string
	value []byte // sub-slice of chunk
	chunk chunk  // slab residency

	flags    uint32
	expireAt simnet.Time // 0: never
	casID    uint64
	setAt    simnet.Time
	// exptimeRaw is the protocol exptime the expiry was computed from;
	// kept so deferred-commit paths (UCR set) can emit a complete
	// OpRecord without re-plumbing the request through the pin.
	exptimeRaw int64

	refcount int32 // pins against eviction while a transfer is in flight
	linked   bool

	hnext *Item // hash chain

	lprev, lnext *Item // LRU list (per slab class)
}

// Key reports the item's key.
func (it *Item) Key() string { return it.key }

// Value exposes the item's value bytes (slab memory; do not retain
// across engine operations unless the item is pinned).
func (it *Item) Value() []byte { return it.value }

// Flags reports the client-opaque flags word.
func (it *Item) Flags() uint32 { return it.flags }

// CAS reports the item's unique CAS id.
func (it *Item) CAS() uint64 { return it.casID }

// expired reports whether the item is past its expiry, or was created
// before the last flush_all horizon.
func (it *Item) expired(now, flushBefore simnet.Time) bool {
	if it.expireAt != 0 && it.expireAt <= now {
		return true
	}
	return flushBefore != 0 && it.setAt < flushBefore
}

// pinned reports whether a transfer holds the item.
func (it *Item) pinned() bool { return it.refcount > 0 }

package memcached

// Checker-validation mutations: deliberately wrong engine/protocol
// behaviour behind build tags, used to prove the memcheck model checker
// actually detects bugs (mutation testing). Every switch defaults to
// false and has no branch cost worth modeling; a tagged build (e.g.
// `go test -tags mut_append_nocas`) flips exactly one of them via an
// init() in the matching mut_*.go file. CI runs the checker once per
// tag and requires a violation each time.
var (
	// mutAppendNoCAS: append/prepend reuse the old item's CAS id
	// instead of drawing a fresh one (breaks CAS sequencing).
	mutAppendNoCAS bool
	// mutGetSkipExpiry: lookups skip the lazy expiry check, serving
	// expired and flushed items as live.
	mutGetSkipExpiry bool
	// mutCasIgnoreID: cas stores without comparing the presented id
	// (stale CAS succeeds).
	mutCasIgnoreID bool
	// mutDeleteNoop: delete reports DELETED but leaves the item linked.
	mutDeleteNoop bool
	// mutAddClobbers: add overwrites a live entry like set.
	mutAddClobbers bool
	// mutProtoDropFlags: the text-protocol parser zeroes the flags field
	// of every storage command (a frontend bug the engine-level model
	// cannot see — caught by the client/server cross-check instead).
	mutProtoDropFlags bool
	// mutOneSidedStale: the one-sided index keeps the old seqlock value
	// when republishing a key, so clients validating an RDMA-read value
	// against the directory accept stale or torn reads (the bug class
	// the casid re-read exists to catch).
	mutOneSidedStale bool
	// mutWrReplyStale: the server answers a window-advertising GET/MGET
	// by RDMA-writing into the PREVIOUS request's window on the same
	// endpoint (the notify AM is unchanged), so the client reads stale
	// slot contents as the value — the stale-slot bug class the
	// per-request window advertisement prevents.
	mutWrReplyStale bool
	// MutUDDupAck: the client transport keeps a retired reply slot live,
	// so a late duplicate UD reply (from a retransmitted request whose
	// original answer also arrived) is accepted twice instead of landing
	// in scratch — the dup-suppression bug class of the tagged-counter
	// scheme. Exported because the switch is consulted by the mcclient
	// package, which imports this one; the mutation registry stays here.
	MutUDDupAck bool

	activeMutations []string
)

// ActiveMutations lists the mutation tags compiled into this binary
// (empty in a normal build).
func ActiveMutations() []string { return activeMutations }

package memcached

import (
	"encoding/binary"

	"repro/internal/ucr"
)

// Write-based replies: the client registers a slot-carved reply arena
// with the server once (AMWrArm — the one-time slot-table exchange),
// and each GET/MGET request then advertises just a 2-byte slot index.
// The server answers a validated hit by gather-writing [reply header ‖
// value(s)] straight from the pinned slab chunk into that slot,
// completing the client's future with a small payload-free notify AM.
// Requests without a slot keep the plain AMGet/AMMGet ids, so golden
// traffic is untouched unless the client opts in — and a slot-carrying
// request whose connection never armed (the table exchange was lost, or
// a foreign endpoint replays one) resolves to an empty window and falls
// back to the copy ladder.
const (
	// AMGetW is AMGet plus a reply-slot index.
	AMGetW uint8 = 0x18
	// AMMGetW is AMMGet plus a reply-slot index.
	AMMGetW uint8 = 0x19
	// AMWrArm registers the client's reply arena for this connection:
	// base address, rkey, slot length, slot count. Answered by
	// AMWrArmReply (a StatusReply) so arming rides the ordinary
	// request/retry machinery.
	AMWrArm uint8 = 0x1a
	// AMWrArmReply acknowledges AMWrArm.
	AMWrArmReply uint8 = 0x29
	// AMGetWNotify answers an AMGetW whose value was RDMA-written into
	// the advertised window: the metadata the client needs (status,
	// flags, CAS, value length), no payload. Ordinary AMGetReply answers
	// an AMGetW whenever the server fell back to the copy path.
	AMGetWNotify uint8 = 0x27
	// AMMGetWNotify answers an AMMGetW served through the window: the
	// written [mget header ‖ value block] extents.
	AMMGetWNotify uint8 = 0x28
)

// GetWSlotHdrLen is the encoded GetReply length the server writes at
// offset 0 of the client's reply slot, ahead of the value bytes.
const GetWSlotHdrLen = 13

// WrArmReq is the AM 1 header for the slot-table exchange: the reply
// arena's registered base descriptor plus its slot geometry. Wire
// layout: replyCtr(8) addr(8) rkey(4) slotLen(4) slots(4).
type WrArmReq struct {
	ReplyCtr ucr.CounterID
	Addr     uint64
	RKey     uint32
	SlotLen  uint32
	Slots    uint32
}

const wrArmFixed = 8 + 8 + 4 + 4 + 4

// AppendWrArmReq packs the header onto dst.
func AppendWrArmReq(dst []byte, r WrArmReq) []byte {
	le := binary.LittleEndian
	dst = le.AppendUint64(dst, uint64(r.ReplyCtr))
	dst = le.AppendUint64(dst, r.Addr)
	dst = le.AppendUint32(dst, r.RKey)
	dst = le.AppendUint32(dst, r.SlotLen)
	return le.AppendUint32(dst, r.Slots)
}

// DecodeWrArmReq unpacks the header. A geometry whose slots would
// exceed the one-sided window bound is rejected rather than truncated.
func DecodeWrArmReq(b []byte) (WrArmReq, error) {
	if len(b) < wrArmFixed {
		return WrArmReq{}, ErrShortAMHeader
	}
	le := binary.LittleEndian
	r := WrArmReq{
		ReplyCtr: ucr.CounterID(le.Uint64(b)),
		Addr:     le.Uint64(b[8:]),
		RKey:     le.Uint32(b[16:]),
		SlotLen:  le.Uint32(b[20:]),
		Slots:    le.Uint32(b[24:]),
	}
	if uint64(r.SlotLen) > ucr.MaxWindowLen {
		return WrArmReq{}, ErrShortAMHeader
	}
	return r, nil
}

// GetWReq is the AM 1 header for a slot-advertising Get: the KeyReq
// fields plus the arena slot index the reply may be written into. Wire
// layout: replyCtr(8) slot(2) klen(2) key.
type GetWReq struct {
	ReplyCtr ucr.CounterID
	Slot     uint16
	Key      string
}

// getWFixed is the fixed prefix of a GetWReq.
const getWFixed = 8 + 2 + 2

// AppendGetWReq packs the header onto dst.
func AppendGetWReq(dst []byte, r GetWReq) []byte {
	le := binary.LittleEndian
	dst = le.AppendUint64(dst, uint64(r.ReplyCtr))
	dst = le.AppendUint16(dst, r.Slot)
	dst = le.AppendUint16(dst, uint16(len(r.Key)))
	return append(dst, r.Key...)
}

// EncodeGetWReq packs the header.
func EncodeGetWReq(r GetWReq) []byte {
	return AppendGetWReq(make([]byte, 0, getWFixed+len(r.Key)), r)
}

// GetWReqView is a GetW header decoded in place: Key aliases the wire
// buffer.
type GetWReqView struct {
	ReplyCtr ucr.CounterID
	Slot     uint16
	Key      []byte
}

// DecodeGetWReqView unpacks the header without copying the key.
func DecodeGetWReqView(b []byte) (GetWReqView, error) {
	if len(b) < getWFixed {
		return GetWReqView{}, ErrShortAMHeader
	}
	le := binary.LittleEndian
	kl := int(le.Uint16(b[10:]))
	if len(b) < getWFixed+kl {
		return GetWReqView{}, ErrShortAMHeader
	}
	return GetWReqView{
		ReplyCtr: ucr.CounterID(le.Uint64(b)),
		Slot:     le.Uint16(b[8:]),
		Key:      b[getWFixed : getWFixed+kl],
	}, nil
}

// GetWNotify is the AM 2 header completing a write-served Get: the
// GetReply metadata plus the value length written into the slot (the
// value itself is already sitting at slot[GetWSlotHdrLen:]).
type GetWNotify struct {
	Status   uint8
	Flags    uint32
	CAS      uint64
	ValueLen uint32
}

// AppendGetWNotify packs the header onto dst.
func AppendGetWNotify(dst []byte, r GetWNotify) []byte {
	le := binary.LittleEndian
	dst = append(dst, r.Status)
	dst = le.AppendUint32(dst, r.Flags)
	dst = le.AppendUint64(dst, r.CAS)
	return le.AppendUint32(dst, r.ValueLen)
}

// EncodeGetWNotify packs the header.
func EncodeGetWNotify(r GetWNotify) []byte {
	return AppendGetWNotify(make([]byte, 0, 17), r)
}

// DecodeGetWNotify unpacks the header.
func DecodeGetWNotify(b []byte) (GetWNotify, error) {
	if len(b) < 17 {
		return GetWNotify{}, ErrShortAMHeader
	}
	le := binary.LittleEndian
	return GetWNotify{
		Status:   b[0],
		Flags:    le.Uint32(b[1:]),
		CAS:      le.Uint64(b[5:]),
		ValueLen: le.Uint32(b[13:]),
	}, nil
}

// mgetWFixed is the fixed prefix of an AMMGetW request: replyCtr(8)
// slot(2), followed by the standard mget key block nkeys(2)
// {klen(2) key}*.
const mgetWFixed = 8 + 2

// AppendMGetWReq packs a slot-advertising multi-get onto dst.
func AppendMGetWReq(dst []byte, ctr ucr.CounterID, slot uint16, keys []string) []byte {
	le := binary.LittleEndian
	dst = le.AppendUint64(dst, uint64(ctr))
	dst = le.AppendUint16(dst, slot)
	dst = le.AppendUint16(dst, uint16(len(keys)))
	for _, k := range keys {
		dst = le.AppendUint16(dst, uint16(len(k)))
		dst = append(dst, k...)
	}
	return dst
}

// NewMGetWCursor opens an in-place key cursor over an encoded AMMGetW
// request, returning the reply counter and the advertised slot index.
func NewMGetWCursor(b []byte) (ucr.CounterID, uint16, MGetKeyCursor, error) {
	if len(b) < mgetWFixed+2 {
		return 0, 0, MGetKeyCursor{}, ErrShortAMHeader
	}
	le := binary.LittleEndian
	slot := le.Uint16(b[8:])
	cur := MGetKeyCursor{b: b, off: mgetWFixed + 2, n: int(le.Uint16(b[mgetWFixed:]))}
	return ucr.CounterID(le.Uint64(b)), slot, cur, nil
}

// MGetWNotify is the AM 2 header completing a write-served multi-get:
// the extents of what the server wrote into the slot — the mget reply
// header occupies slot[:HdrLen] and the concatenated value block
// slot[HdrLen : HdrLen+DataLen].
type MGetWNotify struct {
	Status  uint8
	HdrLen  uint32
	DataLen uint32
}

// AppendMGetWNotify packs the header onto dst.
func AppendMGetWNotify(dst []byte, r MGetWNotify) []byte {
	le := binary.LittleEndian
	dst = append(dst, r.Status)
	dst = le.AppendUint32(dst, r.HdrLen)
	return le.AppendUint32(dst, r.DataLen)
}

// DecodeMGetWNotify unpacks the header.
func DecodeMGetWNotify(b []byte) (MGetWNotify, error) {
	if len(b) < 9 {
		return MGetWNotify{}, ErrShortAMHeader
	}
	le := binary.LittleEndian
	return MGetWNotify{Status: b[0], HdrLen: le.Uint32(b[1:]), DataLen: le.Uint32(b[5:])}, nil
}

//go:build mut_delete_noop

package memcached

func init() {
	mutDeleteNoop = true
	activeMutations = append(activeMutations, "mut_delete_noop")
}

package memcached

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/simnet"
)

// TestStripesRounding: the stripe count rounds up to a power of two,
// and zero keeps the global-lock engine.
func TestStripesRounding(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{0, 1}, {1, 1}, {2, 2}, {3, 4}, {5, 8}, {8, 8}, {9, 16},
	} {
		s := NewStore(StoreConfig{Stripes: tc.in})
		if got := s.NumStripes(); got != tc.want {
			t.Errorf("Stripes=%d: %d shards, want %d", tc.in, got, tc.want)
		}
	}
}

// TestStripedStatsAggregate: counters land on whichever shard served
// the op, and Stats()/CurrItems() sum them all.
func TestStripedStatsAggregate(t *testing.T) {
	s := NewStore(StoreConfig{Stripes: 8})
	const n = 200
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("key-%d", i)
		if res := s.Set(key, 0, 0, []byte("v"), 0); res != Stored {
			t.Fatalf("set %s: %v", key, res)
		}
	}
	hits, misses := 0, 0
	for i := 0; i < n*2; i++ {
		key := fmt.Sprintf("key-%d", i)
		if _, _, _, ok := s.Get(key, 0); ok {
			hits++
		} else {
			misses++
		}
	}
	st := s.Stats()
	if st.CurrItems != n || s.CurrItems() != n {
		t.Errorf("CurrItems = %d/%d, want %d", st.CurrItems, s.CurrItems(), n)
	}
	if st.GetHits != uint64(hits) || st.GetMisses != uint64(misses) {
		t.Errorf("hits/misses = %d/%d, want %d/%d", st.GetHits, st.GetMisses, hits, misses)
	}
	if st.CmdSet != n {
		t.Errorf("CmdSet = %d, want %d", st.CmdSet, n)
	}
	// The keys must actually spread: with 200 keys on 8 shards an empty
	// shard would mean the shard picker is broken (high-bit selection).
	perShard := make(map[*shard]int)
	for i := 0; i < n; i++ {
		perShard[s.shardFor(fmt.Sprintf("key-%d", i))]++
	}
	if len(perShard) != 8 {
		t.Errorf("200 keys landed on %d of 8 shards", len(perShard))
	}
}

// TestLockWaitQueueing: ops on one key queue behind each other in
// virtual time; ops on keys of different shards do not interact.
func TestLockWaitQueueing(t *testing.T) {
	s := NewStore(StoreConfig{Stripes: 8})
	const hold = 100 * simnet.Microsecond
	if w := s.LockWait("a", 0, hold); w != 0 {
		t.Errorf("first acquire waited %v", w)
	}
	if w := s.LockWait("a", 0, hold); w != hold {
		t.Errorf("second acquire waited %v, want %v", w, hold)
	}
	// A key on a different shard sees an idle resource.
	other := ""
	shA := s.shardFor("a")
	for i := 0; ; i++ {
		k := fmt.Sprintf("other-%d", i)
		if s.shardFor(k) != shA {
			other = k
			break
		}
	}
	if w := s.LockWait(other, 0, hold); w != 0 {
		t.Errorf("different shard waited %v", w)
	}
	// Same shard, later arrival: waits only for the remaining backlog.
	if w := s.LockWait("a", simnet.Time(hold), hold); w != hold {
		t.Errorf("backlogged acquire waited %v, want %v", w, hold)
	}
	busy, uses := s.LockStats()
	if uses != 4 || busy != 4*hold {
		t.Errorf("LockStats = (%v, %d), want (%v, 4)", busy, uses, 4*hold)
	}
}

// TestStripedStoreConcurrentStress hammers one striped store from many
// goroutines mixing every mutating op across shard boundaries. Run
// under -race (make tier2) it is the data-race guard for the striped
// engine; the invariants checked at the end catch lost updates.
func TestStripedStoreConcurrentStress(t *testing.T) {
	s := NewStore(StoreConfig{Stripes: 8, MemoryLimit: 8 << 20})
	const (
		goroutines = 12
		opsEach    = 400
		keySpace   = 64
	)
	var wg sync.WaitGroup
	sets := make([]uint64, goroutines) // per-goroutine cmd_set-bumping calls
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			now := simnet.Time(g)
			for i := 0; i < opsEach; i++ {
				key := fmt.Sprintf("k-%d", (g*opsEach+i)%keySpace)
				now += simnet.Duration(1)
				switch i % 8 {
				case 0:
					s.Set(key, uint32(g), 0, []byte("value"), now)
					sets[g]++
				case 1:
					if it, ok := s.GetPinned(key, now); ok {
						_ = it.Value()
						s.Unpin(it)
					}
				case 2:
					_, _, _, _ = s.Get(key, now)
				case 3:
					if _, _, cas, ok := s.Get(key, now); ok {
						s.Cas(key, 0, 0, []byte("casval"), cas, now)
						sets[g]++
					}
				case 4:
					s.Set(key, 0, 0, []byte("7"), now)
					s.IncrDecr(key, 3, true, now)
					sets[g]++
				case 5:
					s.Delete(key, now)
				case 6:
					s.Append(key, []byte("+tail"), now)
					sets[g]++
				case 7:
					// Exercise the virtual-time lock from racing actors.
					s.LockWait(key, now, simnet.Microsecond)
					if i == 7 && g == 0 {
						s.FlushAll(now)
					}
				}
			}
		}(g)
	}
	wg.Wait()

	st := s.Stats()
	want := uint64(0)
	for _, n := range sets {
		want += n
	}
	if st.CmdSet != want {
		t.Errorf("CmdSet = %d, want %d (dropped counter updates)", st.CmdSet, want)
	}
	if st.CurrItems != s.CurrItems() {
		t.Errorf("Stats.CurrItems %d != CurrItems() %d", st.CurrItems, s.CurrItems())
	}
	// Every surviving item must still be readable and intact.
	live := uint64(0)
	for i := 0; i < keySpace; i++ {
		if v, _, _, ok := s.Get(fmt.Sprintf("k-%d", i), 1<<40); ok {
			live++
			if len(v) == 0 {
				t.Errorf("k-%d: empty value", i)
			}
		}
	}
	if live != s.CurrItems() {
		t.Errorf("readable items %d != CurrItems %d", live, s.CurrItems())
	}
	// Flush invalidation is lazy; touching every key afterwards must
	// reclaim everything, proving no pin leaked from the stress run.
	s.FlushAll(1 << 41)
	for i := 0; i < keySpace; i++ {
		if _, _, _, ok := s.Get(fmt.Sprintf("k-%d", i), 1<<42); ok {
			t.Errorf("k-%d survived flush_all", i)
		}
	}
	if got := s.CurrItems(); got != 0 {
		t.Errorf("CurrItems after flush = %d, want 0", got)
	}
	// Arena pages are retained, but no live item bytes may remain.
	if b := s.Stats().Bytes; b != 0 {
		t.Errorf("%d live item bytes after flush", b)
	}
}

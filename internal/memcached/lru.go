package memcached

// lruTable is one shard's per-class LRU state: an intrusive
// doubly-linked list per slab class, ordered most- to least-recently
// used. The memcached generation the paper modified kept these lists
// global under the cache lock; the striped engine gives each shard its
// own so a get never touches another shard's chain, and eviction only
// considers items the evicting shard owns (its lock is the only one
// held).
type lruTable struct {
	classes []lruClass
}

// lruClass is one size class's list head and tail within a shard.
type lruClass struct {
	head, tail *Item
}

func newLRUTable(numClasses int) *lruTable {
	return &lruTable{classes: make([]lruClass, numClasses)}
}

// insert puts it at the head (most recent) of its class list.
func (l *lruTable) insert(it *Item) {
	cl := &l.classes[it.chunk.class]
	it.lprev = nil
	it.lnext = cl.head
	if cl.head != nil {
		cl.head.lprev = it
	}
	cl.head = it
	if cl.tail == nil {
		cl.tail = it
	}
}

// remove unlinks it from its class list.
func (l *lruTable) remove(it *Item) {
	cl := &l.classes[it.chunk.class]
	if it.lprev != nil {
		it.lprev.lnext = it.lnext
	} else if cl.head == it {
		cl.head = it.lnext
	}
	if it.lnext != nil {
		it.lnext.lprev = it.lprev
	} else if cl.tail == it {
		cl.tail = it.lprev
	}
	it.lprev, it.lnext = nil, nil
}

// touch moves it to the head of its class list.
func (l *lruTable) touch(it *Item) {
	l.remove(it)
	l.insert(it)
}

// victim walks up to maxTries items from the tail of class ci,
// returning the first unpinned candidate.
func (l *lruTable) victim(ci, maxTries int) *Item {
	it := l.classes[ci].tail
	for tries := 0; it != nil && tries < maxTries; tries++ {
		if !it.pinned() {
			return it
		}
		it = it.lprev
	}
	return nil
}

// classItems counts linked items in class ci (an LRU walk; stats path).
func (l *lruTable) classItems(ci int) int {
	n := 0
	for it := l.classes[ci].head; it != nil; it = it.lnext {
		n++
	}
	return n
}

package memcached

import (
	"encoding/binary"

	"repro/internal/ucr"
)

// Multi-get over UCR: one AM 1 carries the whole key batch, one AM 2
// returns every found item with the values concatenated as the AM data.
// The paper's §V notes mget follows from the same set/get principles —
// and it does: a small batch rides the eager path in one transaction,
// while a batch with large aggregate value size is pulled by the client
// with a single RDMA read.
const (
	AMMGet      uint8 = 0x15
	AMMGetReply uint8 = 0x23
	// AMMGetRetry answers a multi-get that arrived on an unreliable (UD)
	// endpoint whose aggregate reply does not fit one datagram. The reply
	// carries no payload (MGetReply has no status field and its wire
	// format is frozen); the client re-issues the batch over RC.
	AMMGetRetry uint8 = 0x26
)

// MGetReq is the AM 1 header for a multi-get.
type MGetReq struct {
	ReplyCtr ucr.CounterID
	Keys     []string
}

// EncodeMGetReq packs the header: replyCtr(8) nkeys(2) {klen(2) key}*.
func EncodeMGetReq(r MGetReq) []byte {
	n := 8 + 2
	for _, k := range r.Keys {
		n += 2 + len(k)
	}
	b := make([]byte, n)
	le := binary.LittleEndian
	le.PutUint64(b, uint64(r.ReplyCtr))
	le.PutUint16(b[8:], uint16(len(r.Keys)))
	off := 10
	for _, k := range r.Keys {
		le.PutUint16(b[off:], uint16(len(k)))
		off += 2
		off += copy(b[off:], k)
	}
	return b
}

// DecodeMGetReq unpacks the header.
func DecodeMGetReq(b []byte) (MGetReq, error) {
	if len(b) < 10 {
		return MGetReq{}, ErrShortAMHeader
	}
	le := binary.LittleEndian
	r := MGetReq{ReplyCtr: ucr.CounterID(le.Uint64(b))}
	nkeys := int(le.Uint16(b[8:]))
	off := 10
	r.Keys = make([]string, 0, nkeys)
	for i := 0; i < nkeys; i++ {
		if off+2 > len(b) {
			return MGetReq{}, ErrShortAMHeader
		}
		kl := int(le.Uint16(b[off:]))
		off += 2
		if off+kl > len(b) {
			return MGetReq{}, ErrShortAMHeader
		}
		r.Keys = append(r.Keys, string(b[off:off+kl]))
		off += kl
	}
	return r, nil
}

// AppendMGetReq packs the header onto dst.
func AppendMGetReq(dst []byte, ctr ucr.CounterID, keys []string) []byte {
	le := binary.LittleEndian
	dst = le.AppendUint64(dst, uint64(ctr))
	dst = le.AppendUint16(dst, uint16(len(keys)))
	for _, k := range keys {
		dst = le.AppendUint16(dst, uint16(len(k)))
		dst = append(dst, k...)
	}
	return dst
}

// MGetKeyCursor walks an encoded multi-get batch in place: each key it
// yields aliases the wire buffer, so the server can look keys up
// straight out of the receive buffer.
type MGetKeyCursor struct {
	b    []byte
	off  int
	n, i int
}

// NewMGetKeyCursor opens a cursor over an encoded MGetReq.
func NewMGetKeyCursor(b []byte) (ucr.CounterID, MGetKeyCursor, error) {
	if len(b) < 10 {
		return 0, MGetKeyCursor{}, ErrShortAMHeader
	}
	le := binary.LittleEndian
	return ucr.CounterID(le.Uint64(b)), MGetKeyCursor{
		b: b, off: 10, n: int(le.Uint16(b[8:])),
	}, nil
}

// Len reports the batch's key count.
func (c *MGetKeyCursor) Len() int { return c.n }

// Next yields the next key, or ok=false at the end (or on truncation).
func (c *MGetKeyCursor) Next() (key []byte, ok bool) {
	if c.i >= c.n || c.off+2 > len(c.b) {
		return nil, false
	}
	kl := int(binary.LittleEndian.Uint16(c.b[c.off:]))
	c.off += 2
	if c.off+kl > len(c.b) {
		return nil, false
	}
	key = c.b[c.off : c.off+kl]
	c.off += kl
	c.i++
	return key, true
}

// MGetItem describes one found item in a multi-get reply; its value is
// a slice of the reply's concatenated data block.
type MGetItem struct {
	Key      string
	Flags    uint32
	CAS      uint64
	ValueLen int
}

// MGetReply is the AM 2 header: the per-item metadata; the values are
// the AM data, concatenated in item order.
type MGetReply struct {
	Items []MGetItem
}

// EncodeMGetReply packs the header: nitems(2) {klen(2) flags(4) cas(8)
// vlen(4) key}*.
func EncodeMGetReply(r MGetReply) []byte {
	n := 2
	for _, it := range r.Items {
		n += 2 + 4 + 8 + 4 + len(it.Key)
	}
	b := make([]byte, n)
	le := binary.LittleEndian
	le.PutUint16(b, uint16(len(r.Items)))
	off := 2
	for _, it := range r.Items {
		le.PutUint16(b[off:], uint16(len(it.Key)))
		le.PutUint32(b[off+2:], it.Flags)
		le.PutUint64(b[off+6:], it.CAS)
		le.PutUint32(b[off+14:], uint32(it.ValueLen))
		off += 18
		off += copy(b[off:], it.Key)
	}
	return b
}

// BeginMGetReply starts an append-encoded reply header in dst with a
// zero item count; AppendMGetReplyItem adds items and FinishMGetReply
// patches the count, so a server can build the header in one pass
// without knowing how many keys will hit.
func BeginMGetReply(dst []byte) []byte {
	return append(dst, 0, 0)
}

// AppendMGetReplyItem packs one found item onto an open reply header.
// key aliases wire or slab memory; it is copied into dst here.
func AppendMGetReplyItem(dst []byte, key []byte, flags uint32, cas uint64, valueLen int) []byte {
	le := binary.LittleEndian
	dst = le.AppendUint16(dst, uint16(len(key)))
	dst = le.AppendUint32(dst, flags)
	dst = le.AppendUint64(dst, cas)
	dst = le.AppendUint32(dst, uint32(valueLen))
	return append(dst, key...)
}

// FinishMGetReply patches the item count into a header started at
// start (the offset BeginMGetReply was called at).
func FinishMGetReply(b []byte, start, nitems int) {
	binary.LittleEndian.PutUint16(b[start:], uint16(nitems))
}

// MGetReplyCursor walks an encoded multi-get reply header in place; the
// keys it yields alias the wire buffer.
type MGetReplyCursor struct {
	b    []byte
	off  int
	n, i int
}

// NewMGetReplyCursor opens a cursor over an encoded MGetReply header.
func NewMGetReplyCursor(b []byte) (MGetReplyCursor, error) {
	if len(b) < 2 {
		return MGetReplyCursor{}, ErrShortAMHeader
	}
	return MGetReplyCursor{b: b, off: 2, n: int(binary.LittleEndian.Uint16(b))}, nil
}

// Len reports the reply's item count.
func (c *MGetReplyCursor) Len() int { return c.n }

// Next yields the next item's metadata, or ok=false at the end.
func (c *MGetReplyCursor) Next() (key []byte, flags uint32, cas uint64, valueLen int, ok bool) {
	if c.i >= c.n || c.off+18 > len(c.b) {
		return nil, 0, 0, 0, false
	}
	le := binary.LittleEndian
	kl := int(le.Uint16(c.b[c.off:]))
	flags = le.Uint32(c.b[c.off+2:])
	cas = le.Uint64(c.b[c.off+6:])
	valueLen = int(le.Uint32(c.b[c.off+14:]))
	c.off += 18
	if c.off+kl > len(c.b) {
		return nil, 0, 0, 0, false
	}
	key = c.b[c.off : c.off+kl]
	c.off += kl
	c.i++
	return key, flags, cas, valueLen, true
}

// DecodeMGetReply unpacks the header.
func DecodeMGetReply(b []byte) (MGetReply, error) {
	if len(b) < 2 {
		return MGetReply{}, ErrShortAMHeader
	}
	le := binary.LittleEndian
	nitems := int(le.Uint16(b))
	off := 2
	r := MGetReply{Items: make([]MGetItem, 0, nitems)}
	for i := 0; i < nitems; i++ {
		if off+18 > len(b) {
			return MGetReply{}, ErrShortAMHeader
		}
		it := MGetItem{
			Flags:    le.Uint32(b[off+2:]),
			CAS:      le.Uint64(b[off+6:]),
			ValueLen: int(le.Uint32(b[off+14:])),
		}
		kl := int(le.Uint16(b[off:]))
		off += 18
		if off+kl > len(b) {
			return MGetReply{}, ErrShortAMHeader
		}
		it.Key = string(b[off : off+kl])
		off += kl
		r.Items = append(r.Items, it)
	}
	return r, nil
}

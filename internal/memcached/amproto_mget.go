package memcached

import (
	"encoding/binary"

	"repro/internal/ucr"
)

// Multi-get over UCR: one AM 1 carries the whole key batch, one AM 2
// returns every found item with the values concatenated as the AM data.
// The paper's §V notes mget follows from the same set/get principles —
// and it does: a small batch rides the eager path in one transaction,
// while a batch with large aggregate value size is pulled by the client
// with a single RDMA read.
const (
	AMMGet      uint8 = 0x15
	AMMGetReply uint8 = 0x23
	// AMMGetRetry answers a multi-get that arrived on an unreliable (UD)
	// endpoint whose aggregate reply does not fit one datagram. The reply
	// carries no payload (MGetReply has no status field and its wire
	// format is frozen); the client re-issues the batch over RC.
	AMMGetRetry uint8 = 0x26
)

// MGetReq is the AM 1 header for a multi-get.
type MGetReq struct {
	ReplyCtr ucr.CounterID
	Keys     []string
}

// EncodeMGetReq packs the header: replyCtr(8) nkeys(2) {klen(2) key}*.
func EncodeMGetReq(r MGetReq) []byte {
	n := 8 + 2
	for _, k := range r.Keys {
		n += 2 + len(k)
	}
	b := make([]byte, n)
	le := binary.LittleEndian
	le.PutUint64(b, uint64(r.ReplyCtr))
	le.PutUint16(b[8:], uint16(len(r.Keys)))
	off := 10
	for _, k := range r.Keys {
		le.PutUint16(b[off:], uint16(len(k)))
		off += 2
		off += copy(b[off:], k)
	}
	return b
}

// DecodeMGetReq unpacks the header.
func DecodeMGetReq(b []byte) (MGetReq, error) {
	if len(b) < 10 {
		return MGetReq{}, ErrShortAMHeader
	}
	le := binary.LittleEndian
	r := MGetReq{ReplyCtr: ucr.CounterID(le.Uint64(b))}
	nkeys := int(le.Uint16(b[8:]))
	off := 10
	r.Keys = make([]string, 0, nkeys)
	for i := 0; i < nkeys; i++ {
		if off+2 > len(b) {
			return MGetReq{}, ErrShortAMHeader
		}
		kl := int(le.Uint16(b[off:]))
		off += 2
		if off+kl > len(b) {
			return MGetReq{}, ErrShortAMHeader
		}
		r.Keys = append(r.Keys, string(b[off:off+kl]))
		off += kl
	}
	return r, nil
}

// MGetItem describes one found item in a multi-get reply; its value is
// a slice of the reply's concatenated data block.
type MGetItem struct {
	Key      string
	Flags    uint32
	CAS      uint64
	ValueLen int
}

// MGetReply is the AM 2 header: the per-item metadata; the values are
// the AM data, concatenated in item order.
type MGetReply struct {
	Items []MGetItem
}

// EncodeMGetReply packs the header: nitems(2) {klen(2) flags(4) cas(8)
// vlen(4) key}*.
func EncodeMGetReply(r MGetReply) []byte {
	n := 2
	for _, it := range r.Items {
		n += 2 + 4 + 8 + 4 + len(it.Key)
	}
	b := make([]byte, n)
	le := binary.LittleEndian
	le.PutUint16(b, uint16(len(r.Items)))
	off := 2
	for _, it := range r.Items {
		le.PutUint16(b[off:], uint16(len(it.Key)))
		le.PutUint32(b[off+2:], it.Flags)
		le.PutUint64(b[off+6:], it.CAS)
		le.PutUint32(b[off+14:], uint32(it.ValueLen))
		off += 18
		off += copy(b[off:], it.Key)
	}
	return b
}

// DecodeMGetReply unpacks the header.
func DecodeMGetReply(b []byte) (MGetReply, error) {
	if len(b) < 2 {
		return MGetReply{}, ErrShortAMHeader
	}
	le := binary.LittleEndian
	nitems := int(le.Uint16(b))
	off := 2
	r := MGetReply{Items: make([]MGetItem, 0, nitems)}
	for i := 0; i < nitems; i++ {
		if off+18 > len(b) {
			return MGetReply{}, ErrShortAMHeader
		}
		it := MGetItem{
			Flags:    le.Uint32(b[off+2:]),
			CAS:      le.Uint64(b[off+6:]),
			ValueLen: int(le.Uint32(b[off+14:])),
		}
		kl := int(le.Uint16(b[off:]))
		off += 18
		if off+kl > len(b) {
			return MGetReply{}, ErrShortAMHeader
		}
		it.Key = string(b[off : off+kl])
		off += kl
		r.Items = append(r.Items, it)
	}
	return r, nil
}

package memcached

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/simnet"
)

// runProto feeds a raw command stream through the text protocol against
// a fresh store and returns everything the server wrote back.
func runProto(t *testing.T, input string) string {
	t.Helper()
	var out bytes.Buffer
	pc := NewProtoConn(fuzzStream{strings.NewReader(input), &out}, NewStore(StoreConfig{MemoryLimit: 1 << 20, Stripes: 2}))
	clk := simnet.NewVClock(0)
	for {
		quit, err := pc.ServeOne(clk)
		if quit || err != nil {
			return out.String()
		}
		clk.Advance(simnet.Microsecond)
	}
}

// TestProtocolEdges is the table of boundary behaviors the text codec
// must hold: every reply stream is compared exactly, so a desynced
// stream (e.g. a data block left unconsumed after an error) shows up as
// garbled replies to the probe commands that follow.
func TestProtocolEdges(t *testing.T) {
	longKey := strings.Repeat("K", 251) // one past the 250-byte limit
	okKey := strings.Repeat("K", 250)
	tests := []struct {
		name string
		in   string
		want string
	}{
		{
			// The data block after a rejected set must be swallowed: the
			// version probe proves the stream resynced.
			name: "oversized key set resyncs",
			in:   "set " + longKey + " 0 0 3\r\nbar\r\nversion\r\n",
			want: "CLIENT_ERROR bad command line format\r\nVERSION " + Version + "\r\n",
		},
		{
			name: "max-length key works",
			in:   "set " + okKey + " 0 0 1\r\nx\r\nget " + okKey + "\r\n",
			want: "STORED\r\nVALUE " + okKey + " 0 1\r\nx\r\nEND\r\n",
		},
		{
			name: "oversized key get",
			in:   "get " + longKey + "\r\nversion\r\n",
			want: "CLIENT_ERROR bad command line format\r\nVERSION " + Version + "\r\n",
		},
		{
			name: "noreply on every storage command",
			in: "set a 1 0 1 noreply\r\nx\r\n" +
				"add b 2 0 1 noreply\r\ny\r\n" +
				"replace a 3 0 1 noreply\r\nz\r\n" +
				"append a 0 0 1 noreply\r\nw\r\n" +
				"prepend a 0 0 1 noreply\r\nv\r\n" +
				"gets a\r\n" +
				"get a b\r\n",
			want: "VALUE a 3 3 5\r\nvzw\r\nEND\r\n" +
				"VALUE a 3 3\r\nvzw\r\nVALUE b 2 1\r\ny\r\nEND\r\n",
		},
		{
			name: "noreply cas delete incr decr touch",
			in: "set n 0 0 1\r\n5\r\n" +
				"gets n\r\n" + // cas id 1
				"cas n 0 0 1 1 noreply\r\n7\r\n" +
				"incr n 2 noreply\r\n" +
				"decr n 1 noreply\r\n" +
				"touch n 100 noreply\r\n" +
				"get n\r\n" +
				"delete n noreply\r\n" +
				"get n\r\n",
			want: "STORED\r\nVALUE n 0 1 1\r\n5\r\nEND\r\n" +
				"VALUE n 0 1\r\n8\r\nEND\r\nEND\r\n",
		},
		{
			name: "bad flags parse",
			in:   "set a xx 0 3\r\nbar\r\nversion\r\n",
			want: "CLIENT_ERROR bad command line format\r\nVERSION " + Version + "\r\n",
		},
		{
			name: "flags out of uint32 range",
			in:   "set a 4294967296 0 3\r\nbar\r\nversion\r\n",
			want: "CLIENT_ERROR bad command line format\r\nVERSION " + Version + "\r\n",
		},
		{
			name: "bad exptime parse",
			in:   "set a 0 later 3\r\nbar\r\nversion\r\n",
			want: "CLIENT_ERROR bad command line format\r\nVERSION " + Version + "\r\n",
		},
		{
			name: "negative nbytes",
			in:   "set a 0 0 -3\r\nversion\r\n",
			want: "CLIENT_ERROR bad command line format\r\nVERSION " + Version + "\r\n",
		},
		{
			name: "bad cas id parse",
			in:   "cas a 0 0 3 zzz\r\nbar\r\nversion\r\n",
			want: "CLIENT_ERROR bad command line format\r\nVERSION " + Version + "\r\n",
		},
		{
			// Declared size past -I: reject without allocating, swallow the
			// (absent) block — EOF ends the run, but the error reply must be
			// intact first.
			name: "declared nbytes over max item size",
			in:   "set big 0 0 1048577\r\n",
			want: "SERVER_ERROR object too large for cache\r\n",
		},
		{
			name: "bad data chunk terminator",
			in:   "set a 0 0 3\r\nbarXY",
			want: "CLIENT_ERROR bad data chunk\r\n",
		},
		{
			name: "incr wraps at 2^64",
			in:   "set n 0 0 20\r\n18446744073709551615\r\nincr n 3\r\n",
			want: "STORED\r\n2\r\n",
		},
		{
			name: "decr floors at zero",
			in:   "set n 0 0 1\r\n5\r\ndecr n 9\r\nget n\r\n",
			want: "STORED\r\n0\r\nVALUE n 0 1\r\n0\r\nEND\r\n",
		},
		{
			name: "incr non-numeric value",
			in:   "set n 0 0 3\r\nabc\r\nincr n 1\r\n",
			want: "STORED\r\nCLIENT_ERROR cannot increment or decrement non-numeric value\r\n",
		},
		{
			name: "incr bad delta",
			in:   "set n 0 0 1\r\n1\r\nincr n 99999999999999999999\r\nincr n -1\r\n",
			want: "STORED\r\nCLIENT_ERROR invalid numeric delta argument\r\nCLIENT_ERROR invalid numeric delta argument\r\n",
		},
		{
			name: "incr missing key",
			in:   "incr ghost 1\r\ndecr ghost 1\r\n",
			want: "NOT_FOUND\r\nNOT_FOUND\r\n",
		},
		{
			name: "touch bad exptime and missing key",
			in:   "touch a xx\r\ntouch ghost 100\r\n",
			want: "CLIENT_ERROR bad command line format\r\nNOT_FOUND\r\n",
		},
		{
			name: "wrong arity",
			in:   "get\r\nset a 0 0\r\ndelete\r\nincr a\r\ntouch a\r\nunknowncmd\r\n\r\n",
			want: "ERROR\r\nERROR\r\nERROR\r\nERROR\r\nERROR\r\nERROR\r\nERROR\r\n",
		},
		{
			name: "trailing junk after noreply",
			in:   "set a 0 0 1 noreply extra\r\nx\r\nversion\r\n",
			want: "ERROR\r\nERROR\r\nVERSION " + Version + "\r\n",
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			got := runProto(t, tc.in)
			if got != tc.want {
				t.Errorf("reply stream mismatch\n in:  %q\n got: %q\n want:%q", tc.in, got, tc.want)
			}
		})
	}
}

package memcached

import (
	"bytes"
	"io"
	"testing"

	"repro/internal/simnet"
)

// fuzzStream is the protocol conn's transport for fuzzing: the fuzz
// input is the inbound byte stream, replies are discarded.
type fuzzStream struct {
	io.Reader
	io.Writer
}

// FuzzTextProtocol feeds arbitrary bytes to the text-protocol codec
// backed by a real store. The engine must never panic and must leave
// the stream either consumed or cleanly errored — whatever the input.
// (The early oversized-nbytes reject in cmdStore was found by this
// target: a huge declared length made discard() spin the connection.)
func FuzzTextProtocol(f *testing.F) {
	f.Add([]byte("get foo\r\n"))
	f.Add([]byte("set foo 7 0 3\r\nbar\r\nget foo\r\ngets foo\r\n"))
	f.Add([]byte("set foo 0 0 3 noreply\r\nbar\r\ndelete foo noreply\r\n"))
	f.Add([]byte("add a 1 2592001 1\r\nx\r\nreplace a 0 0 1\r\ny\r\n"))
	f.Add([]byte("append a 0 0 2\r\nzz\r\nprepend a 0 0 2\r\nqq\r\n"))
	f.Add([]byte("cas foo 0 0 3 1\r\nbar\r\ncas foo 0 0 3 abc\r\nbar\r\n"))
	f.Add([]byte("set n 0 0 20\r\n18446744073709551615\r\nincr n 1\r\ndecr n 2\r\n"))
	f.Add([]byte("incr missing 1\r\ndecr n 99999999999999999999\r\n"))
	f.Add([]byte("touch foo 100\r\ntouch foo -1\r\n"))
	f.Add([]byte("get " + string(bytes.Repeat([]byte("k"), 251)) + "\r\n"))
	f.Add([]byte("set k 4294967296 -1 99999999\r\n"))
	f.Add([]byte("stats\r\nstats slabs\r\nstats items\r\nstats settings\r\n"))
	f.Add([]byte("flush_all\r\nversion\r\nverbosity 1\r\nbogus cmd\r\nquit\r\n"))
	f.Add([]byte("set multi word key 0 0 1\r\nx\r\n"))
	f.Add([]byte("\r\n\x00\xff\r\nget\r\nset\r\ndelete\r\nincr\r\n"))

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<16 {
			return // bound one input's work, not the codec's reach
		}
		store := NewStore(StoreConfig{MemoryLimit: 1 << 20, Stripes: 2})
		pc := NewProtoConn(fuzzStream{bytes.NewReader(data), io.Discard}, store)
		clk := simnet.NewVClock(0)
		for i := 0; i < 1000; i++ {
			quit, err := pc.ServeOne(clk)
			if quit || err != nil {
				return
			}
			clk.Advance(simnet.Microsecond)
		}
	})
}

// FuzzAMCodecs round-trips every active-message header codec: any input
// the decoder accepts must survive encode→decode unchanged, and no
// input may panic a decoder. The first byte selects the codec so one
// corpus covers them all. (The uint16 key-count truncation that
// motivated mcclient's maxMGetKeys chunking was found by this target.)
func FuzzAMCodecs(f *testing.F) {
	f.Add([]byte{0x00})
	f.Add(append([]byte{0x00}, EncodeSetReq(SetReq{ReplyCtr: 7, Flags: 42, Exptime: 2592001, Key: "k01"})...))
	f.Add(append([]byte{0x01}, EncodeKeyReq(KeyReq{ReplyCtr: 9, Key: "some-key"})...))
	f.Add(append([]byte{0x02}, EncodeNumReq(NumReq{ReplyCtr: 3, Delta: 18446744073709551615, Key: "n0"})...))
	f.Add(append([]byte{0x03}, EncodeStoreReq(StoreReq{ReplyCtr: 1, Op: StoreOpCas, Flags: 5, Exptime: -1, CAS: 77, Key: "ck"})...))
	f.Add(append([]byte{0x04}, EncodeMGetReq(MGetReq{ReplyCtr: 2, Keys: []string{"a", "bb", ""}})...))
	f.Add(append([]byte{0x05}, EncodeStatusReply(StatusReply{Status: AMOK, Result: Stored})...))
	f.Add(append([]byte{0x06}, EncodeGetReply(GetReply{Status: AMMiss, Flags: 1, CAS: 2})...))
	f.Add(append([]byte{0x07}, EncodeNumReply(NumReply{Status: AMBadValue, Value: 99})...))
	f.Add(append([]byte{0x08}, EncodeMGetReply(MGetReply{Items: []MGetItem{
		{Key: "a", Flags: 1, CAS: 2, ValueLen: 3}, {Key: "", Flags: 0, CAS: 0, ValueLen: 0},
	}})...))

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		sel, b := data[0], data[1:]
		switch sel % 9 {
		case 0:
			if r, err := DecodeSetReq(b); err == nil {
				r2, err2 := DecodeSetReq(EncodeSetReq(r))
				if err2 != nil || r2 != r {
					t.Fatalf("SetReq round trip: %+v -> %+v (%v)", r, r2, err2)
				}
			}
		case 1:
			if r, err := DecodeKeyReq(b); err == nil {
				r2, err2 := DecodeKeyReq(EncodeKeyReq(r))
				if err2 != nil || r2 != r {
					t.Fatalf("KeyReq round trip: %+v -> %+v (%v)", r, r2, err2)
				}
			}
		case 2:
			if r, err := DecodeNumReq(b); err == nil {
				r2, err2 := DecodeNumReq(EncodeNumReq(r))
				if err2 != nil || r2 != r {
					t.Fatalf("NumReq round trip: %+v -> %+v (%v)", r, r2, err2)
				}
			}
		case 3:
			if r, err := DecodeStoreReq(b); err == nil {
				r2, err2 := DecodeStoreReq(EncodeStoreReq(r))
				if err2 != nil || r2 != r {
					t.Fatalf("StoreReq round trip: %+v -> %+v (%v)", r, r2, err2)
				}
			}
		case 4:
			if r, err := DecodeMGetReq(b); err == nil {
				r2, err2 := DecodeMGetReq(EncodeMGetReq(r))
				if err2 != nil || !mgetReqEqual(r, r2) {
					t.Fatalf("MGetReq round trip: %+v -> %+v (%v)", r, r2, err2)
				}
			}
		case 5:
			if r, err := DecodeStatusReply(b); err == nil {
				r2, err2 := DecodeStatusReply(EncodeStatusReply(r))
				if err2 != nil || r2 != r {
					t.Fatalf("StatusReply round trip: %+v -> %+v (%v)", r, r2, err2)
				}
			}
		case 6:
			if r, err := DecodeGetReply(b); err == nil {
				r2, err2 := DecodeGetReply(EncodeGetReply(r))
				if err2 != nil || r2 != r {
					t.Fatalf("GetReply round trip: %+v -> %+v (%v)", r, r2, err2)
				}
			}
		case 7:
			if r, err := DecodeNumReply(b); err == nil {
				r2, err2 := DecodeNumReply(EncodeNumReply(r))
				if err2 != nil || r2 != r {
					t.Fatalf("NumReply round trip: %+v -> %+v (%v)", r, r2, err2)
				}
			}
		case 8:
			if r, err := DecodeMGetReply(b); err == nil {
				r2, err2 := DecodeMGetReply(EncodeMGetReply(r))
				if err2 != nil || !mgetReplyEqual(r, r2) {
					t.Fatalf("MGetReply round trip: %+v -> %+v (%v)", r, r2, err2)
				}
			}
		}
	})
}

func mgetReqEqual(a, b MGetReq) bool {
	if a.ReplyCtr != b.ReplyCtr || len(a.Keys) != len(b.Keys) {
		return false
	}
	for i := range a.Keys {
		if a.Keys[i] != b.Keys[i] {
			return false
		}
	}
	return true
}

func mgetReplyEqual(a, b MGetReply) bool {
	if len(a.Items) != len(b.Items) {
		return false
	}
	for i := range a.Items {
		if a.Items[i] != b.Items[i] {
			return false
		}
	}
	return true
}

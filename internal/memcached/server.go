package memcached

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/simnet"
	"repro/internal/sockstream"
	"repro/internal/ucr"
	"repro/internal/verbs"
)

// ServerConfig tunes the server process.
type ServerConfig struct {
	// Workers is the number of worker threads (memcached -t; default 4).
	Workers int
	// Store sizes the cache engine.
	Store StoreConfig
	// DispatchCost is the libevent notification + thread wakeup charged
	// per sockets-path request event. The UCR path polls its CQ instead
	// and pays only the (cheaper) poll/handler costs — one of the
	// structural advantages the paper measures.
	DispatchCost simnet.Duration
	// OpCost is the command-processing cost (parse, hash, LRU) charged
	// per operation on both paths. It is also the baseline shard-lock
	// hold time in the engine's contention model.
	OpCost simnet.Duration
	// CopyBytesPerSec is the memory-copy bandwidth used to extend a
	// shard-lock hold by the bytes copied while the lock is held
	// (default 5 GB/s). Only the sockets path copies values under the
	// lock; UCR transfers land in or leave pinned slab memory outside
	// it (§V-B/§V-C).
	CopyBytesPerSec float64
	// UCREvents switches the UCR workers from CQ polling to interrupt-
	// style events (ablation: §II-A1 — polling gives the lowest latency).
	UCREvents bool
	// UCRDrainBatch is how many completions a UCR worker may harvest per
	// batched CQ drain (default 16): the first at the full poll cost,
	// the rest — only those already visible — at the coalesced cost.
	// With a single blocking client at most one completion is ever
	// visible at a time, so the batch never engages and per-op timing is
	// unchanged; it pays off under pipelined windows.
	UCRDrainBatch int
	// AcceptRealCap bounds listener waits in real time (shutdown knob).
	AcceptRealCap time.Duration
}

func (c ServerConfig) withDefaults() ServerConfig {
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.AcceptRealCap <= 0 {
		c.AcceptRealCap = 100 * time.Millisecond
	}
	if c.UCRDrainBatch <= 0 {
		c.UCRDrainBatch = 16
	}
	if c.CopyBytesPerSec <= 0 {
		c.CopyBytesPerSec = 5e9
	}
	return c
}

// Server is the memcached process: one engine, a dispatcher, and a set
// of worker threads that serve both sockets and UCR clients (§V-A keeps
// the server compatible with both kinds at once).
type Server struct {
	cfg   ServerConfig
	store *Store

	workers []*worker
	nextW   atomic.Uint64

	wg      sync.WaitGroup
	stopped atomic.Bool
	stopCh  chan struct{}

	connMu sync.Mutex
	conns  []*connState

	sockLis []*sockstream.Listener
	ucrLis  *ucr.Listener
	ucrRT   *ucr.Runtime
	// ctxOwner maps each worker's progress context back to its worker
	// for AM handler dispatch (read-only after ServeUCR).
	ctxOwner map[*ucr.Context]*worker

	// OpsServed counts completed requests across workers.
	OpsServed atomic.Uint64
}

// event kinds delivered to workers.
type eventKind uint8

const (
	evSockRequest eventKind = iota
	evSockClosed
	evUCRReady
	evUCRAccept
	evStop
)

type workEvent struct {
	kind eventKind
	cs   *connState
	req  any // *verbs.ConnRequest for evUCRAccept
	ack  chan struct{}
}

// connState is one sockets client connection.
type connState struct {
	conn   *sockstream.Conn
	proto  *ProtoConn
	worker *worker
	closed bool
	ack    chan struct{}
}

// worker is one server thread.
type worker struct {
	id     int
	srv    *Server
	clk    *simnet.VClock
	queue  *simnet.Mailbox[workEvent]
	ctx    *ucr.Context // non-nil when the UCR frontend is up
	ucrAck chan struct{}

	// pendingSets maps an endpoint to its in-flight Set states
	// (between the Set header handler and its completion handler).
	pendingSets map[*ucr.Endpoint][]setPending
	// pendingPins are pinned items whose reply transfer may still be in
	// flight; swept once the origin counter fires.
	pendingPins []pendingPin

	scratch []byte // fallback buffer when allocation fails
}

type pendingPin struct {
	ctr  *ucr.Counter
	item *Item
}

// NewServer builds a server with a fresh store.
func NewServer(cfg ServerConfig) *Server {
	cfg = cfg.withDefaults()
	s := &Server{cfg: cfg, store: NewStore(cfg.Store), stopCh: make(chan struct{})}
	for i := 0; i < cfg.Workers; i++ {
		w := &worker{
			id:          i,
			srv:         s,
			clk:         simnet.NewVClock(0),
			queue:       simnet.NewMailbox[workEvent](),
			ucrAck:      make(chan struct{}),
			pendingSets: make(map[*ucr.Endpoint][]setPending),
		}
		s.workers = append(s.workers, w)
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			w.run()
		}()
	}
	return s
}

// Store exposes the engine (stats, tests).
func (s *Server) Store() *Store { return s.store }

// Workers reports the worker count.
func (s *Server) Workers() int { return len(s.workers) }

// pickWorker assigns connections round-robin (§V-A).
func (s *Server) pickWorker() *worker {
	n := s.nextW.Add(1) - 1
	return s.workers[int(n)%len(s.workers)]
}

// UCRRecvBufferBytes totals the UCR receive-buffer memory across the
// workers' progress contexts (the §VII SRQ-vs-windows footprint).
func (s *Server) UCRRecvBufferBytes() int64 {
	var total int64
	for _, w := range s.workers {
		if w.ctx != nil {
			total += w.ctx.RecvBufferBytes()
		}
	}
	return total
}

// UCRSRQDemux totals how many arrivals the workers' progress contexts
// demultiplexed off their shared receive queues — zero unless the
// runtime was configured with UseSRQ. Tests use it as a vacuity guard
// for the shared-SRQ serving path.
func (s *Server) UCRSRQDemux() uint64 {
	var total uint64
	for _, w := range s.workers {
		if w.ctx != nil {
			total += w.ctx.SRQDemux()
		}
	}
	return total
}

// WorkerClocks reports each worker's current virtual time (benchmarks
// use the max as the server-side makespan).
func (s *Server) WorkerClocks() []simnet.Time {
	out := make([]simnet.Time, len(s.workers))
	for i, w := range s.workers {
		out[i] = w.clk.Now()
	}
	return out
}

// ServeSockets starts the sockets frontend on the given listener. The
// dispatcher goroutine owns the accept loop; each accepted connection
// is assigned to a worker and gets a waker goroutine that turns stream
// readability into worker events (the libevent model, §V-A).
func (s *Server) ServeSockets(lis *sockstream.Listener) {
	s.sockLis = append(s.sockLis, lis)
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		dispClk := simnet.NewVClock(0)
		for !s.stopped.Load() {
			conn, ok := lis.AcceptTimeout(dispClk, s.cfg.AcceptRealCap)
			if !ok {
				if s.stopped.Load() {
					return
				}
				continue
			}
			w := s.pickWorker()
			conn.NoDelay = true
			conn.SetClock(w.clk)
			proto := NewProtoConn(conn, s.store)
			proto.SetCostModel(s.cfg.OpCost, s.cfg.CopyBytesPerSec)
			cs := &connState{
				conn:   conn,
				proto:  proto,
				worker: w,
				ack:    make(chan struct{}),
			}
			s.connMu.Lock()
			s.conns = append(s.conns, cs)
			s.connMu.Unlock()
			s.wg.Add(1)
			go func() {
				defer s.wg.Done()
				s.connWaker(cs)
			}()
		}
	}()
}

// connWaker parks on readability and hands the connection to its worker
// one request burst at a time. Waker and worker are strictly sequenced
// through the ack channel, so the conn is never touched concurrently.
func (s *Server) connWaker(cs *connState) {
	for {
		if !cs.conn.WaitReadable() {
			cs.worker.queue.Put(workEvent{kind: evSockClosed, cs: cs})
			return
		}
		cs.worker.queue.Put(workEvent{kind: evSockRequest, cs: cs, ack: cs.ack})
		select {
		case <-cs.ack:
		case <-s.stopCh:
			return
		}
		if cs.closed {
			return
		}
	}
}

// ServeUCR starts the UCR frontend: handlers are registered on rt, each
// worker gets a progress context, and the dispatcher assigns inbound
// endpoints round-robin.
func (s *Server) ServeUCR(rt *ucr.Runtime, service string) error {
	s.ucrRT = rt
	s.registerAMHandlers(rt)
	s.ctxOwner = make(map[*ucr.Context]*worker, len(s.workers))
	for _, w := range s.workers {
		w.ctx = rt.NewContext()
		w.ctx.UseEvents(s.cfg.UCREvents)
		s.ctxOwner[w.ctx] = w
		// Per-worker CQ waker: turns completions into worker events.
		s.wg.Add(1)
		go func(w *worker) {
			defer s.wg.Done()
			for w.ctx.WaitIncoming() {
				w.queue.Put(workEvent{kind: evUCRReady, ack: w.ucrAck})
				select {
				case <-w.ucrAck:
				case <-s.stopCh:
					return
				}
			}
		}(w)
	}
	lis, err := rt.Listen(service)
	if err != nil {
		return err
	}
	s.ucrLis = lis
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		dispClk := simnet.NewVClock(0)
		for !s.stopped.Load() {
			req, ok := lis.Next(dispClk, s.cfg.AcceptRealCap)
			if !ok {
				if s.stopped.Load() {
					return
				}
				continue
			}
			w := s.pickWorker()
			ack := make(chan struct{})
			w.queue.Put(workEvent{kind: evUCRAccept, req: req, ack: ack})
			select {
			case <-ack:
			case <-s.stopCh:
				return
			}
		}
	}()
	return nil
}

// Close shuts the server down: listeners stop, connections close (waking
// their wakers), workers drain and exit (each destroying its own UCR
// context, which releases that context's CQ waker).
func (s *Server) Close() {
	if s.stopped.Swap(true) {
		return
	}
	close(s.stopCh)
	for _, lis := range s.sockLis {
		lis.Close()
	}
	if s.ucrLis != nil {
		s.ucrLis.Close()
	}
	s.connMu.Lock()
	conns := s.conns
	s.connMu.Unlock()
	for _, cs := range conns {
		cs.conn.Close()
	}
	for _, w := range s.workers {
		w.queue.Put(workEvent{kind: evStop})
	}
	s.wg.Wait()
}

// run is the worker main loop.
func (w *worker) run() {
	defer func() {
		if w.ctx != nil {
			w.ctx.Destroy()
		}
	}()
	for {
		ev, ok := w.queue.Recv()
		if !ok {
			return
		}
		switch ev.kind {
		case evStop:
			return
		case evSockRequest:
			w.handleSockRequest(ev)
		case evSockClosed:
			ev.cs.conn.Close()
		case evUCRAccept:
			w.handleUCRAccept(ev)
		case evUCRReady:
			w.handleUCRReady(ev)
		}
	}
}

// handleSockRequest serves every request already buffered on the
// connection (one event notification can harvest a pipelined burst).
func (w *worker) handleSockRequest(ev workEvent) {
	cs := ev.cs
	w.clk.Advance(w.srv.cfg.DispatchCost)
	for {
		quit, err := cs.proto.ServeOne(w.clk)
		if err != nil || quit {
			cs.closed = true
			cs.conn.Close()
			break
		}
		w.srv.OpsServed.Add(1)
		w.clk.Advance(w.srv.cfg.OpCost)
		if cs.proto.Buffered() == 0 && cs.conn.Buffered() == 0 {
			break
		}
	}
	w.ack(ev)
}

// handleUCRAccept completes an endpoint into this worker's context.
func (w *worker) handleUCRAccept(ev workEvent) {
	req := ev.req.(*verbs.ConnRequest)
	if _, err := w.ctx.Accept(req, w.clk); err != nil {
		req.Reject(err)
	}
	w.ack(ev)
}

// handleUCRReady drains the context's pending completions in batched
// sweeps (one full-cost poll per wake, coalesced harvests for whatever
// else is already visible), then sweeps finished reply pins.
func (w *worker) handleUCRReady(ev workEvent) {
	for w.ctx.TryProgressN(w.clk, w.srv.cfg.UCRDrainBatch) > 0 {
	}
	w.sweepPins()
	w.ack(ev)
}

// ack releases the waker that delivered ev, without deadlocking against
// a waker that already exited at shutdown.
func (w *worker) ack(ev workEvent) {
	select {
	case ev.ack <- struct{}{}:
	case <-w.srv.stopCh:
	}
}

// sweepPins unpins items whose reply transfer has completed.
func (w *worker) sweepPins() {
	keep := w.pendingPins[:0]
	for _, p := range w.pendingPins {
		if p.ctr.Value() > 0 {
			w.srv.store.Unpin(p.item)
			w.srv.ucrRT.FreeCounter(p.ctr)
		} else {
			keep = append(keep, p)
		}
	}
	w.pendingPins = keep
}

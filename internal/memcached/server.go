package memcached

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/simnet"
	"repro/internal/sockstream"
	"repro/internal/ucr"
	"repro/internal/verbs"
)

// ServerConfig tunes the server process.
type ServerConfig struct {
	// Workers is the number of worker threads (memcached -t; default 4).
	Workers int
	// Store sizes the cache engine.
	Store StoreConfig
	// DispatchCost is the libevent notification + thread wakeup charged
	// per sockets-path request event. The UCR path polls its CQ instead
	// and pays only the (cheaper) poll/handler costs — one of the
	// structural advantages the paper measures.
	DispatchCost simnet.Duration
	// OpCost is the command-processing cost (parse, hash, LRU) charged
	// per operation on both paths. It is also the baseline shard-lock
	// hold time in the engine's contention model.
	OpCost simnet.Duration
	// CoalescedOpCost is the command-processing cost charged for
	// operations harvested by a batched CQ drain while the worker is
	// hot — the 2nd..Nth completions of one sweep, and any op arriving
	// within the drain's spin window. When a worker carries requests
	// back to back, the *fixed* slice of the per-op cost amortizes: the
	// parse/reply arenas and dispatch branches stay cache-hot, the
	// striped-store buckets are touched in streaks, and the alloc-free
	// steady-state paths never call into the allocator. The default
	// therefore subtracts that fixed dispatch slice (825 ns, 11/12 of
	// the baseline 900 ns OpCost) and keeps the remainder: genuine
	// engine execution time — the part a 25 µs heavy-op configuration
	// is modeling — does not shrink because the previous request was
	// recent, so worker-count scaling economics survive batching. A
	// lone completion (any depth-1 client) arrives a full round trip
	// after the drain went cold and always pays full OpCost, which
	// keeps the golden figure tables bit-identical.
	CoalescedOpCost simnet.Duration
	// CopyBytesPerSec is the memory-copy bandwidth used to extend a
	// shard-lock hold by the bytes copied while the lock is held
	// (default 5 GB/s). Only the sockets path copies values under the
	// lock; UCR transfers land in or leave pinned slab memory outside
	// it (§V-B/§V-C).
	CopyBytesPerSec float64
	// UCREvents switches the UCR workers from CQ polling to interrupt-
	// style events (ablation: §II-A1 — polling gives the lowest latency).
	UCREvents bool
	// WriteReplyEager is the write-based reply crossover (bytes, reply
	// header included): an AMGetW/AMMGetW whose total reply is at or
	// below it keeps the eager copy path even though a window was
	// advertised — for small values the RDMA write's extra WQE beats
	// nothing, the pack copy is already cheaper. Above it (and within
	// the window) the server gather-writes the reply. Default 1 KB.
	WriteReplyEager int
	// UCRDrainBatch is how many completions a UCR worker may harvest per
	// batched CQ drain (default 16): the first at the full poll cost,
	// the rest — only those already visible — at the coalesced cost.
	// With a single blocking client at most one completion is ever
	// visible at a time, so the batch never engages and per-op timing is
	// unchanged; it pays off under pipelined windows.
	UCRDrainBatch int
	// AcceptRealCap bounds listener waits in real time (shutdown knob).
	AcceptRealCap time.Duration
}

func (c ServerConfig) withDefaults() ServerConfig {
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.AcceptRealCap <= 0 {
		c.AcceptRealCap = 100 * time.Millisecond
	}
	if c.UCRDrainBatch <= 0 {
		c.UCRDrainBatch = 16
	}
	if c.CopyBytesPerSec <= 0 {
		c.CopyBytesPerSec = 5e9
	}
	if c.WriteReplyEager <= 0 {
		c.WriteReplyEager = 1 << 10
	}
	if c.CoalescedOpCost <= 0 {
		// Amortize the fixed dispatch slice only (see the field doc):
		// execution-heavy configurations keep nearly the full cost.
		c.CoalescedOpCost = c.OpCost - 825
		if c.CoalescedOpCost < c.OpCost/12 {
			c.CoalescedOpCost = c.OpCost / 12
		}
	}
	return c
}

// Server is the memcached process: one engine, a dispatcher, and a set
// of worker threads that serve both sockets and UCR clients (§V-A keeps
// the server compatible with both kinds at once).
//
// Serving is batch-scheduled: each worker is a single event loop that
// parks on three edge-triggered signals (its control mailbox, its UCR
// CQ, its sockets ready list) and, once woken, drains each source to
// empty before parking again. A request is carried end to end — parse,
// striped-store operation, reply build, reply post — on the worker that
// picked it up; there are no per-connection goroutines, no CQ-waker
// goroutines, and no channel hand-offs on the hot path.
type Server struct {
	cfg   ServerConfig
	store *Store

	workers []*worker
	nextW   atomic.Uint64

	wg      sync.WaitGroup
	stopped atomic.Bool
	stopCh  chan struct{}

	connMu sync.Mutex
	conns  []*connState

	sockLis []*sockstream.Listener
	ucrLis  *ucr.Listener
	ucrRT   *ucr.Runtime
	// ctxs are the workers' progress contexts, in worker order
	// (read-only after ServeUCR; accessors use this list so they never
	// race the workers' own ctx hand-off events).
	ctxs []*ucr.Context
	// ctxOwner maps each worker's progress context back to its worker
	// for AM handler dispatch (read-only after ServeUCR).
	ctxOwner map[*ucr.Context]*worker

	// OpsServed counts completed requests across workers.
	OpsServed atomic.Uint64
}

// event kinds delivered to workers. All of these are control-plane
// only (accepts, frontend start, shutdown); data-plane readiness rides
// the edge-triggered notification channels instead.
type eventKind uint8

const (
	evSockAccept eventKind = iota
	evUCRStart
	evUCRAccept
	evStop
)

type workEvent struct {
	kind eventKind
	cs   *connState
	req  any // *verbs.ConnRequest for evUCRAccept, *ucr.Context for evUCRStart
}

// connState is one sockets client connection. The worker owns conn and
// proto exclusively; queued is the ready-list dedup flag, guarded by
// the worker's sockMu (the ready hook runs on the sender's goroutine).
type connState struct {
	conn   *sockstream.Conn
	proto  *ProtoConn
	worker *worker
	closed bool // worker-private: set once the conn is torn down
	queued bool // guarded by worker.sockMu
}

// worker is one server thread: a single goroutine event loop.
type worker struct {
	id    int
	srv   *Server
	clk   *simnet.VClock
	queue *simnet.Mailbox[workEvent]
	ctx   *ucr.Context // non-nil once evUCRStart delivered it

	// Sockets readiness: connection ready hooks (running on the
	// delivering client's goroutine) append here and poke the loop.
	sockMu    sync.Mutex
	sockReady []*connState
	sockPoke  chan struct{} // cap 1, edge-triggered
	sockRun   []*connState  // worker-private double buffer

	// pendingSets maps an endpoint to its in-flight Set states
	// (between the Set header handler and its completion handler).
	pendingSets map[*ucr.Endpoint]*setPendQ
	// pendingPins are pinned items whose reply transfer may still be in
	// flight; swept once the origin counter fires. A nil item tracks a
	// transfer with no pin to release (a staged mget write block) whose
	// counter still needs freeing.
	pendingPins []pendingPin
	// staleWins is mut_wrreply_stale state: the previous request's reply
	// window per endpoint. Nil in a normal build.
	staleWins map[*ucr.Endpoint]ucr.WindowDesc
	// wrTabs holds each armed connection's reply-arena geometry from its
	// one-time AMWrArm slot-table exchange; slot-advertising requests
	// resolve their write window here.
	wrTabs map[*ucr.Endpoint]wrTable

	// Per-worker arenas, reused across operations so the steady-state
	// AM hot path allocates nothing. Ownership rules are strict (see
	// DESIGN.md "Batch-scheduled serving"): reply holds AM reply
	// headers, which Send packs into the registered send buffer before
	// returning, so it is reusable on every path; vals stages eager
	// multi-get value blocks (eager sends also copy synchronously);
	// rendezvous payloads are NOT arena-backed — the peer reads them
	// asynchronously, so those paths allocate fresh buffers.
	reply        []byte
	vals         []byte
	mgetItems    []*Item
	scratch      []byte // landing buffer for sets whose allocation failed
	storeScratch []byte // eager conditional-store staging
}

type pendingPin struct {
	ctr  *ucr.Counter
	item *Item
}

// setPendQ is a per-endpoint FIFO of in-flight Set states with a
// reusable backing array: pops advance a head index instead of
// re-slicing, so steady-state traffic never re-allocates the queue.
type setPendQ struct {
	q    []setPending
	head int
}

func (q *setPendQ) push(p setPending) { q.q = append(q.q, p) }

func (q *setPendQ) pop() (setPending, bool) {
	if q.head >= len(q.q) {
		return setPending{}, false
	}
	p := q.q[q.head]
	q.q[q.head] = setPending{} // drop the item reference
	q.head++
	if q.head == len(q.q) {
		q.q = q.q[:0]
		q.head = 0
	}
	return p, true
}

// NewServer builds a server with a fresh store.
func NewServer(cfg ServerConfig) *Server {
	cfg = cfg.withDefaults()
	s := &Server{cfg: cfg, store: NewStore(cfg.Store), stopCh: make(chan struct{})}
	for i := 0; i < cfg.Workers; i++ {
		w := &worker{
			id:          i,
			srv:         s,
			clk:         simnet.NewVClock(0),
			queue:       simnet.NewMailbox[workEvent](),
			sockPoke:    make(chan struct{}, 1),
			pendingSets: make(map[*ucr.Endpoint]*setPendQ),
		}
		s.workers = append(s.workers, w)
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			w.run()
		}()
	}
	return s
}

// Store exposes the engine (stats, tests).
func (s *Server) Store() *Store { return s.store }

// Workers reports the worker count.
func (s *Server) Workers() int { return len(s.workers) }

// pickWorker assigns connections round-robin (§V-A).
func (s *Server) pickWorker() *worker {
	n := s.nextW.Add(1) - 1
	return s.workers[int(n)%len(s.workers)]
}

// UCRRecvBufferBytes totals the UCR receive-buffer memory across the
// workers' progress contexts (the §VII SRQ-vs-windows footprint).
func (s *Server) UCRRecvBufferBytes() int64 {
	var total int64
	for _, ctx := range s.ctxs {
		total += ctx.RecvBufferBytes()
	}
	return total
}

// UCRSRQDemux totals how many arrivals the workers' progress contexts
// demultiplexed off their shared receive queues — zero unless the
// runtime was configured with UseSRQ. Tests use it as a vacuity guard
// for the shared-SRQ serving path.
func (s *Server) UCRSRQDemux() uint64 {
	var total uint64
	for _, ctx := range s.ctxs {
		total += ctx.SRQDemux()
	}
	return total
}

// UCRBatchedDrains totals how many batched CQ drains harvested more
// than one completion across the workers' progress contexts. It is the
// vacuity guard for the batch-scheduled path: a pipelined workload that
// claims to exercise coalesced draining must observe this counter move.
// Read it quiesced (after Close, or with clients drained) — workers
// update it without synchronization.
func (s *Server) UCRBatchedDrains() uint64 {
	var total uint64
	for _, ctx := range s.ctxs {
		total += ctx.BatchedDrains()
	}
	return total
}

// WorkerClocks reports each worker's current virtual time (benchmarks
// use the max as the server-side makespan).
func (s *Server) WorkerClocks() []simnet.Time {
	out := make([]simnet.Time, len(s.workers))
	for i, w := range s.workers {
		out[i] = w.clk.Now()
	}
	return out
}

// ServeSockets starts the sockets frontend on the given listener. The
// dispatcher goroutine owns the accept loop; each accepted connection
// is assigned round-robin and handed to its worker, which installs an
// edge-triggered ready hook in place of the old per-connection waker
// goroutine.
func (s *Server) ServeSockets(lis *sockstream.Listener) {
	s.sockLis = append(s.sockLis, lis)
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		dispClk := simnet.NewVClock(0)
		for !s.stopped.Load() {
			conn, ok := lis.AcceptTimeout(dispClk, s.cfg.AcceptRealCap)
			if !ok {
				if s.stopped.Load() {
					return
				}
				continue
			}
			w := s.pickWorker()
			conn.NoDelay = true
			conn.SetClock(w.clk)
			proto := NewProtoConn(conn, s.store)
			proto.SetCostModel(s.cfg.OpCost, s.cfg.CopyBytesPerSec)
			cs := &connState{conn: conn, proto: proto, worker: w}
			s.connMu.Lock()
			if s.stopped.Load() {
				// Close() has (or may have) already snapshotted s.conns;
				// appending now would leak a live conn whose dialer blocks
				// forever waiting for a reply. Close it here instead so the
				// peer's pending reads wake with EOF. The stopped check must
				// happen under connMu: Close() sets the flag before taking
				// the lock, so a false reading guarantees our append lands
				// in the snapshot.
				s.connMu.Unlock()
				conn.Close()
				return
			}
			s.conns = append(s.conns, cs)
			s.connMu.Unlock()
			w.queue.Put(workEvent{kind: evSockAccept, cs: cs})
		}
	}()
}

// ServeUCR starts the UCR frontend: handlers are registered on rt, each
// worker is handed a progress context through its control mailbox, and
// the dispatcher assigns inbound endpoints round-robin. Completion
// readiness reaches the workers through their CQs' notification
// channels — there are no CQ-waker goroutines.
func (s *Server) ServeUCR(rt *ucr.Runtime, service string) error {
	s.ucrRT = rt
	s.registerAMHandlers(rt)
	s.ctxOwner = make(map[*ucr.Context]*worker, len(s.workers))
	for _, w := range s.workers {
		ctx := rt.NewContext()
		ctx.UseEvents(s.cfg.UCREvents)
		s.ctxs = append(s.ctxs, ctx)
		s.ctxOwner[ctx] = w
		w.queue.Put(workEvent{kind: evUCRStart, req: ctx})
	}
	lis, err := rt.Listen(service)
	if err != nil {
		return err
	}
	s.ucrLis = lis
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		dispClk := simnet.NewVClock(0)
		for !s.stopped.Load() {
			req, ok := lis.Next(dispClk, s.cfg.AcceptRealCap)
			if !ok {
				if s.stopped.Load() {
					return
				}
				continue
			}
			s.pickWorker().queue.Put(workEvent{kind: evUCRAccept, req: req})
		}
	}()
	return nil
}

// Close shuts the server down: listeners stop, connections close, and
// workers drain and exit (each destroying its own UCR context).
func (s *Server) Close() {
	if s.stopped.Swap(true) {
		return
	}
	close(s.stopCh)
	for _, lis := range s.sockLis {
		lis.Close()
	}
	if s.ucrLis != nil {
		s.ucrLis.Close()
	}
	s.connMu.Lock()
	conns := s.conns
	s.connMu.Unlock()
	for _, cs := range conns {
		cs.conn.Close()
	}
	for _, w := range s.workers {
		w.queue.Put(workEvent{kind: evStop})
	}
	s.wg.Wait()
}

// run is the worker event loop: drain the control mailbox, drain the
// UCR CQ in coalesced batches, serve every ready sockets connection,
// then park until any source signals again. Each drain runs to empty,
// so a stale wakeup token costs one no-op pass, never a lost event.
func (w *worker) run() {
	defer func() {
		if w.ctx != nil {
			w.ctx.Destroy()
		}
	}()
	var incoming <-chan struct{} // nil (blocks forever) until UCR starts
	for {
		for {
			ev, ok, _ := w.queue.TryRecv()
			if !ok {
				break
			}
			switch ev.kind {
			case evStop:
				return
			case evSockAccept:
				w.acceptSock(ev.cs)
			case evUCRStart:
				w.ctx = ev.req.(*ucr.Context)
				incoming = w.ctx.IncomingC()
			case evUCRAccept:
				w.handleUCRAccept(ev)
			}
		}
		w.drainUCR()
		w.drainSock()
		select {
		case <-w.queue.NotifyC():
		case <-incoming:
		case <-w.sockPoke:
		case <-w.srv.stopCh:
			return
		}
	}
}

// acceptSock seats a freshly accepted connection on this worker: the
// ready hook marks the connection runnable from the delivering
// goroutine and pokes the loop. Arrivals that landed before the hook
// was installed fire no notification, so the worker self-queues the
// connection if data (or a close) is already pending.
func (w *worker) acceptSock(cs *connState) {
	cs.conn.SetReadyHook(func() {
		w.sockMu.Lock()
		if !cs.queued {
			cs.queued = true
			w.sockReady = append(w.sockReady, cs)
		}
		w.sockMu.Unlock()
		select {
		case w.sockPoke <- struct{}{}:
		default:
		}
	})
	if cs.conn.Buffered() > 0 || cs.conn.StreamClosed() {
		w.sockMu.Lock()
		if !cs.queued {
			cs.queued = true
			w.sockReady = append(w.sockReady, cs)
		}
		w.sockMu.Unlock()
	}
}

// drainSock serves every connection on the ready list. The list is
// swapped against a worker-private double buffer so hooks can keep
// queueing while the worker serves.
func (w *worker) drainSock() {
	for {
		w.sockMu.Lock()
		if len(w.sockReady) == 0 {
			w.sockMu.Unlock()
			return
		}
		run := w.sockReady
		w.sockReady = w.sockRun[:0]
		for _, cs := range run {
			cs.queued = false
		}
		w.sockMu.Unlock()
		for i, cs := range run {
			w.serveConn(cs)
			run[i] = nil
		}
		w.sockRun = run[:0]
	}
}

// serveConn serves every request already buffered on the connection
// (one readiness edge can harvest a pipelined burst). DispatchCost is
// charged only when there is data to serve: a readiness edge whose
// bytes were already consumed by an earlier burst is a no-op with no
// virtual-time footprint, which keeps depth-1 timing identical to the
// old waker model.
func (w *worker) serveConn(cs *connState) {
	if cs.closed {
		return
	}
	if cs.proto.Buffered() == 0 && cs.conn.Buffered() == 0 {
		if cs.conn.StreamClosed() {
			cs.closed = true
			cs.conn.Close()
		}
		return
	}
	w.clk.Advance(w.srv.cfg.DispatchCost)
	for {
		quit, err := cs.proto.ServeOne(w.clk)
		if err != nil || quit {
			cs.closed = true
			cs.conn.Close()
			return
		}
		w.srv.OpsServed.Add(1)
		w.clk.Advance(w.srv.cfg.OpCost)
		if cs.proto.Buffered() == 0 && cs.conn.Buffered() == 0 {
			return
		}
	}
}

// handleUCRAccept completes an endpoint into this worker's context.
func (w *worker) handleUCRAccept(ev workEvent) {
	req := ev.req.(*verbs.ConnRequest)
	if _, err := w.ctx.Accept(req, w.clk); err != nil {
		req.Reject(err)
	}
}

// drainUCR sweeps the context's pending completions in batched drains
// (one full-cost poll per sweep, coalesced harvests for whatever else
// is already visible). Reply sends queued by the AM handlers during one
// sweep are flushed as a single doorbell-coalesced post burst; a sweep
// that harvested one completion posts a burst of one, which charges
// exactly what an inline post did — depth-1 timing is unchanged.
func (w *worker) drainUCR() {
	if w.ctx == nil {
		return
	}
	for {
		w.ctx.BeginPostBatch()
		n := w.ctx.TryProgressN(w.clk, w.srv.cfg.UCRDrainBatch)
		_ = w.ctx.FlushPosts(w.clk)
		if n == 0 {
			break
		}
	}
	if len(w.pendingPins) > 0 {
		w.sweepPins()
	}
}

// sweepPins unpins items whose reply transfer has completed.
func (w *worker) sweepPins() {
	keep := w.pendingPins[:0]
	for _, p := range w.pendingPins {
		if p.ctr.Value() > 0 {
			if p.item != nil {
				w.srv.store.Unpin(p.item)
			}
			w.srv.ucrRT.FreeCounter(p.ctr)
		} else {
			keep = append(keep, p)
		}
	}
	tail := w.pendingPins[len(keep):]
	for i := range tail {
		tail[i] = pendingPin{}
	}
	w.pendingPins = keep
}

//go:build mut_srq_misroute

package memcached

import "repro/internal/ucr"

// The misroute switch lives in the ucr package (the demux is there);
// this package only registers the tag — it imports ucr, never the other
// way around.
func init() {
	ucr.MutSRQMisroute = true
	activeMutations = append(activeMutations, "mut_srq_misroute")
}

//go:build mut_cas_ignore_id

package memcached

func init() {
	mutCasIgnoreID = true
	activeMutations = append(activeMutations, "mut_cas_ignore_id")
}

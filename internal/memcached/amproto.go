package memcached

import (
	"encoding/binary"
	"errors"

	"repro/internal/ucr"
)

// Active-message ids for the UCR frontend (paper §V). AM 1 carries the
// client's request (its header names the client counter C to target with
// the reply); AM 2 is the server's answer, targeting C.
const (
	AMSet      uint8 = 0x10
	AMGet      uint8 = 0x11
	AMDelete   uint8 = 0x12
	AMIncr     uint8 = 0x13
	AMDecr     uint8 = 0x14
	AMSetReply uint8 = 0x20
	AMGetReply uint8 = 0x21
	AMNumReply uint8 = 0x22 // incr/decr reply carrying the new value
	// AMDeleteReply is wire-identical to AMSetReply (a StatusReply) but
	// carries its own id so per-op trace/metrics counters can tell a
	// delete answer from a store answer.
	AMDeleteReply uint8 = 0x24
)

// AM reply status codes.
const (
	AMOK       uint8 = 0
	AMMiss     uint8 = 1
	AMError    uint8 = 2
	AMBadValue uint8 = 3
	// AMTooBig answers a GET that arrived on an unreliable (UD) endpoint
	// whose value does not fit one datagram: the reply carries the status
	// only and the client re-issues the request over its RC endpoint.
	// Never sent on reliable endpoints (those use eager or rendezvous).
	AMTooBig uint8 = 4
)

// ErrShortAMHeader reports a malformed active-message header.
var ErrShortAMHeader = errors.New("memcached: short active-message header")

// SetReq is the AM 1 header for a Set; the item value travels as the
// AM data (pulled by the server with RDMA Read when large).
type SetReq struct {
	ReplyCtr ucr.CounterID
	Flags    uint32
	Exptime  int64
	Key      string
}

// EncodeSetReq packs the header.
func EncodeSetReq(r SetReq) []byte {
	b := make([]byte, 8+4+8+2+len(r.Key))
	le := binary.LittleEndian
	le.PutUint64(b, uint64(r.ReplyCtr))
	le.PutUint32(b[8:], r.Flags)
	le.PutUint64(b[12:], uint64(r.Exptime))
	le.PutUint16(b[20:], uint16(len(r.Key)))
	copy(b[22:], r.Key)
	return b
}

// AppendSetReq packs the header onto dst (the alloc-free form: callers
// bring a pooled buffer).
func AppendSetReq(dst []byte, r SetReq) []byte {
	le := binary.LittleEndian
	dst = le.AppendUint64(dst, uint64(r.ReplyCtr))
	dst = le.AppendUint32(dst, r.Flags)
	dst = le.AppendUint64(dst, uint64(r.Exptime))
	dst = le.AppendUint16(dst, uint16(len(r.Key)))
	return append(dst, r.Key...)
}

// SetReqView is a Set header decoded in place: Key aliases the wire
// buffer and is valid only until the receive buffer is recycled.
type SetReqView struct {
	ReplyCtr ucr.CounterID
	Flags    uint32
	Exptime  int64
	Key      []byte
}

// DecodeSetReqView unpacks the header without copying the key.
func DecodeSetReqView(b []byte) (SetReqView, error) {
	if len(b) < 22 {
		return SetReqView{}, ErrShortAMHeader
	}
	le := binary.LittleEndian
	kl := int(le.Uint16(b[20:]))
	if len(b) < 22+kl {
		return SetReqView{}, ErrShortAMHeader
	}
	return SetReqView{
		ReplyCtr: ucr.CounterID(le.Uint64(b)),
		Flags:    le.Uint32(b[8:]),
		Exptime:  int64(le.Uint64(b[12:])),
		Key:      b[22 : 22+kl],
	}, nil
}

// DecodeSetReq unpacks the header.
func DecodeSetReq(b []byte) (SetReq, error) {
	if len(b) < 22 {
		return SetReq{}, ErrShortAMHeader
	}
	le := binary.LittleEndian
	kl := int(le.Uint16(b[20:]))
	if len(b) < 22+kl {
		return SetReq{}, ErrShortAMHeader
	}
	return SetReq{
		ReplyCtr: ucr.CounterID(le.Uint64(b)),
		Flags:    le.Uint32(b[8:]),
		Exptime:  int64(le.Uint64(b[12:])),
		Key:      string(b[22 : 22+kl]),
	}, nil
}

// KeyReq is the AM 1 header for Get and Delete.
type KeyReq struct {
	ReplyCtr ucr.CounterID
	Key      string
}

// EncodeKeyReq packs the header.
func EncodeKeyReq(r KeyReq) []byte {
	b := make([]byte, 8+2+len(r.Key))
	le := binary.LittleEndian
	le.PutUint64(b, uint64(r.ReplyCtr))
	le.PutUint16(b[8:], uint16(len(r.Key)))
	copy(b[10:], r.Key)
	return b
}

// AppendKeyReq packs the header onto dst.
func AppendKeyReq(dst []byte, r KeyReq) []byte {
	le := binary.LittleEndian
	dst = le.AppendUint64(dst, uint64(r.ReplyCtr))
	dst = le.AppendUint16(dst, uint16(len(r.Key)))
	return append(dst, r.Key...)
}

// KeyReqView is a Get/Delete header decoded in place: Key aliases the
// wire buffer.
type KeyReqView struct {
	ReplyCtr ucr.CounterID
	Key      []byte
}

// DecodeKeyReqView unpacks the header without copying the key.
func DecodeKeyReqView(b []byte) (KeyReqView, error) {
	if len(b) < 10 {
		return KeyReqView{}, ErrShortAMHeader
	}
	le := binary.LittleEndian
	kl := int(le.Uint16(b[8:]))
	if len(b) < 10+kl {
		return KeyReqView{}, ErrShortAMHeader
	}
	return KeyReqView{
		ReplyCtr: ucr.CounterID(le.Uint64(b)),
		Key:      b[10 : 10+kl],
	}, nil
}

// DecodeKeyReq unpacks the header.
func DecodeKeyReq(b []byte) (KeyReq, error) {
	if len(b) < 10 {
		return KeyReq{}, ErrShortAMHeader
	}
	le := binary.LittleEndian
	kl := int(le.Uint16(b[8:]))
	if len(b) < 10+kl {
		return KeyReq{}, ErrShortAMHeader
	}
	return KeyReq{
		ReplyCtr: ucr.CounterID(le.Uint64(b)),
		Key:      string(b[10 : 10+kl]),
	}, nil
}

// NumReq is the AM 1 header for Incr/Decr.
type NumReq struct {
	ReplyCtr ucr.CounterID
	Delta    uint64
	Key      string
}

// EncodeNumReq packs the header.
func EncodeNumReq(r NumReq) []byte {
	b := make([]byte, 8+8+2+len(r.Key))
	le := binary.LittleEndian
	le.PutUint64(b, uint64(r.ReplyCtr))
	le.PutUint64(b[8:], r.Delta)
	le.PutUint16(b[16:], uint16(len(r.Key)))
	copy(b[18:], r.Key)
	return b
}

// AppendNumReq packs the header onto dst.
func AppendNumReq(dst []byte, r NumReq) []byte {
	le := binary.LittleEndian
	dst = le.AppendUint64(dst, uint64(r.ReplyCtr))
	dst = le.AppendUint64(dst, r.Delta)
	dst = le.AppendUint16(dst, uint16(len(r.Key)))
	return append(dst, r.Key...)
}

// DecodeNumReq unpacks the header.
func DecodeNumReq(b []byte) (NumReq, error) {
	if len(b) < 18 {
		return NumReq{}, ErrShortAMHeader
	}
	le := binary.LittleEndian
	kl := int(le.Uint16(b[16:]))
	if len(b) < 18+kl {
		return NumReq{}, ErrShortAMHeader
	}
	return NumReq{
		ReplyCtr: ucr.CounterID(le.Uint64(b)),
		Delta:    le.Uint64(b[8:]),
		Key:      string(b[18 : 18+kl]),
	}, nil
}

// StatusReply is the AM 2 header for Set/Delete replies.
type StatusReply struct {
	Status uint8
	Result StoreResult // meaningful for Set
}

// EncodeStatusReply packs the header.
func EncodeStatusReply(r StatusReply) []byte {
	return []byte{r.Status, byte(r.Result)}
}

// AppendStatusReply packs the header onto dst.
func AppendStatusReply(dst []byte, r StatusReply) []byte {
	return append(dst, r.Status, byte(r.Result))
}

// DecodeStatusReply unpacks the header.
func DecodeStatusReply(b []byte) (StatusReply, error) {
	if len(b) < 2 {
		return StatusReply{}, ErrShortAMHeader
	}
	return StatusReply{Status: b[0], Result: StoreResult(b[1])}, nil
}

// GetReply is the AM 2 header for a Get; the value travels as AM data
// (eagerly ≤ the threshold, else the client RDMA-reads it from the
// server's slab memory). In the standard Memcached API the client does
// not know the item length beforehand — it learns it from this AM and
// allocates the destination buffer in its header handler (§V-C).
type GetReply struct {
	Status uint8
	Flags  uint32
	CAS    uint64
}

// EncodeGetReply packs the header.
func EncodeGetReply(r GetReply) []byte {
	b := make([]byte, 1+4+8)
	b[0] = r.Status
	le := binary.LittleEndian
	le.PutUint32(b[1:], r.Flags)
	le.PutUint64(b[5:], r.CAS)
	return b
}

// AppendGetReply packs the header onto dst.
func AppendGetReply(dst []byte, r GetReply) []byte {
	le := binary.LittleEndian
	dst = append(dst, r.Status)
	dst = le.AppendUint32(dst, r.Flags)
	return le.AppendUint64(dst, r.CAS)
}

// DecodeGetReply unpacks the header.
func DecodeGetReply(b []byte) (GetReply, error) {
	if len(b) < 13 {
		return GetReply{}, ErrShortAMHeader
	}
	le := binary.LittleEndian
	return GetReply{Status: b[0], Flags: le.Uint32(b[1:]), CAS: le.Uint64(b[5:])}, nil
}

// NumReply is the AM 2 header for Incr/Decr.
type NumReply struct {
	Status uint8
	Value  uint64
}

// EncodeNumReply packs the header.
func EncodeNumReply(r NumReply) []byte {
	b := make([]byte, 9)
	b[0] = r.Status
	binary.LittleEndian.PutUint64(b[1:], r.Value)
	return b
}

// AppendNumReply packs the header onto dst.
func AppendNumReply(dst []byte, r NumReply) []byte {
	dst = append(dst, r.Status)
	return binary.LittleEndian.AppendUint64(dst, r.Value)
}

// DecodeNumReply unpacks the header.
func DecodeNumReply(b []byte) (NumReply, error) {
	if len(b) < 9 {
		return NumReply{}, ErrShortAMHeader
	}
	return NumReply{Status: b[0], Value: binary.LittleEndian.Uint64(b[1:])}, nil
}

package memcached

import (
	"errors"
	"fmt"
	"sync"
)

// Slab allocation constants, matching memcached 1.4-era defaults.
const (
	// slabPageSize is the unit of memory the arena grabs at a time.
	slabPageSize = 1 << 20
	// minChunkSize is the smallest chunk class.
	minChunkSize = 96
	// growthFactor is the chunk-size ratio between adjacent classes.
	growthFactor = 1.25
	// chunkAlign keeps chunk sizes 8-byte aligned.
	chunkAlign = 8
)

// ErrNoMemory is returned when the arena is exhausted and eviction is
// disabled or found nothing evictable.
var ErrNoMemory = errors.New("memcached: out of memory storing object")

// chunk names one allocation: a byte range within a slab page. page/off
// locate it inside the arena's page list so the one-sided index can
// compute its RDMA-visible address (the capped buf slice hides the page
// offset from capacity arithmetic).
type chunk struct {
	class int
	buf   []byte // full chunk capacity
	page  int    // index into the arena's page list
	off   int    // byte offset of buf within that page
}

func (c chunk) valid() bool { return c.buf != nil }

// slabClass is one size class: its chunk size and free list.
type slabClass struct {
	size  int
	free  []chunk
	pages int
}

// SlabArena is the memcached slab allocator: memory is grabbed in 1 MB
// pages, each page is assigned to a size class and carved into equal
// chunks. Freed chunks return to their class's free list — classes never
// shrink (the fragmentation behaviour the paper's related-work section
// points out makes client-side address caching unsafe).
//
// The arena is shared by every store shard and guards its free lists
// with its own short mutex; the class geometry (count and sizes) is
// immutable after construction and read without it. LRU ordering lives
// with the shards (lruTable), not here — eviction policy is the store
// layer's.
type SlabArena struct {
	classes    []slabClass
	limitBytes int64

	mu        sync.Mutex // guards free lists, pages, usedBytes
	usedBytes int64
	pages     [][]byte // every page ever grabbed, indexed by chunk.page
}

// NewSlabArena builds an arena with the given memory limit and the
// default class geometry. maxItemSize bounds the largest chunk class
// (memcached's 1 MB item limit).
func NewSlabArena(limitBytes int64, maxItemSize int) *SlabArena {
	if maxItemSize <= 0 || maxItemSize > slabPageSize {
		maxItemSize = slabPageSize
	}
	a := &SlabArena{limitBytes: limitBytes}
	size := minChunkSize
	for size < maxItemSize {
		a.classes = append(a.classes, slabClass{size: size})
		next := int(float64(size) * growthFactor)
		next = (next + chunkAlign - 1) / chunkAlign * chunkAlign
		if next <= size {
			next = size + chunkAlign
		}
		size = next
	}
	a.classes = append(a.classes, slabClass{size: maxItemSize})
	return a
}

// NumClasses reports the number of size classes.
func (a *SlabArena) NumClasses() int { return len(a.classes) }

// ClassSize reports the chunk size of class i.
func (a *SlabArena) ClassSize(i int) int { return a.classes[i].size }

// ClassFor picks the smallest class whose chunks fit n bytes.
// ok=false means n exceeds the largest class (item too large).
func (a *SlabArena) ClassFor(n int) (int, bool) {
	// Classes grow geometrically; binary search.
	lo, hi := 0, len(a.classes)-1
	if n > a.classes[hi].size {
		return 0, false
	}
	for lo < hi {
		mid := (lo + hi) / 2
		if a.classes[mid].size < n {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, true
}

// UsedBytes reports bytes of pages grabbed from the limit.
func (a *SlabArena) UsedBytes() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.usedBytes
}

// LimitBytes reports the configured cap.
func (a *SlabArena) LimitBytes() int64 { return a.limitBytes }

// Alloc takes a chunk that fits n bytes. It does not evict; the store
// layer owns eviction policy. ErrNoMemory means "free a chunk first".
func (a *SlabArena) Alloc(n int) (chunk, error) {
	ci, ok := a.ClassFor(n)
	if !ok {
		return chunk{}, fmt.Errorf("memcached: object too large for cache (%d bytes)", n)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	cl := &a.classes[ci]
	if len(cl.free) == 0 {
		if err := a.growClassLocked(ci); err != nil {
			return chunk{}, err
		}
	}
	c := cl.free[len(cl.free)-1]
	cl.free = cl.free[:len(cl.free)-1]
	return c, nil
}

// growClassLocked grabs a page for class ci and carves it.
func (a *SlabArena) growClassLocked(ci int) error {
	if a.usedBytes+slabPageSize > a.limitBytes {
		return ErrNoMemory
	}
	a.usedBytes += slabPageSize
	cl := &a.classes[ci]
	cl.pages++
	page := make([]byte, slabPageSize)
	pi := len(a.pages)
	a.pages = append(a.pages, page)
	for off := 0; off+cl.size <= slabPageSize; off += cl.size {
		cl.free = append(cl.free, chunk{class: ci, buf: page[off : off+cl.size : off+cl.size], page: pi, off: off})
	}
	return nil
}

// NumPages reports how many pages the arena has grabbed.
func (a *SlabArena) NumPages() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.pages)
}

// PageBytes exposes page i's full backing slice (the one-sided index
// registers whole pages as RDMA windows).
func (a *SlabArena) PageBytes(i int) []byte {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.pages[i]
}

// Free returns a chunk to its class.
func (a *SlabArena) Free(c chunk) {
	if !c.valid() {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	cl := &a.classes[c.class]
	cl.free = append(cl.free, c)
}

// FreeChunks reports free chunks in class i (for tests/stats).
func (a *SlabArena) FreeChunks(i int) int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.classes[i].free)
}

// ClassPages reports pages assigned to class i.
func (a *SlabArena) ClassPages(i int) int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.classes[i].pages
}

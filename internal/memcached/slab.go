package memcached

import (
	"errors"
	"fmt"
)

// Slab allocation constants, matching memcached 1.4-era defaults.
const (
	// slabPageSize is the unit of memory the arena grabs at a time.
	slabPageSize = 1 << 20
	// minChunkSize is the smallest chunk class.
	minChunkSize = 96
	// growthFactor is the chunk-size ratio between adjacent classes.
	growthFactor = 1.25
	// chunkAlign keeps chunk sizes 8-byte aligned.
	chunkAlign = 8
)

// ErrNoMemory is returned when the arena is exhausted and eviction is
// disabled or found nothing evictable.
var ErrNoMemory = errors.New("memcached: out of memory storing object")

// chunk names one allocation: a byte range within a slab page.
type chunk struct {
	class int
	buf   []byte // full chunk capacity
}

func (c chunk) valid() bool { return c.buf != nil }

// slabClass is one size class: its chunk size and free list.
type slabClass struct {
	size  int
	free  []chunk
	pages int

	// lruHead/lruTail: most/least recently used items of this class.
	lruHead, lruTail *Item
}

// SlabArena is the memcached slab allocator: memory is grabbed in 1 MB
// pages, each page is assigned to a size class and carved into equal
// chunks. Freed chunks return to their class's free list — classes never
// shrink (the fragmentation behaviour the paper's related-work section
// points out makes client-side address caching unsafe).
type SlabArena struct {
	classes    []slabClass
	limitBytes int64
	usedBytes  int64
}

// NewSlabArena builds an arena with the given memory limit and the
// default class geometry. maxItemSize bounds the largest chunk class
// (memcached's 1 MB item limit).
func NewSlabArena(limitBytes int64, maxItemSize int) *SlabArena {
	if maxItemSize <= 0 || maxItemSize > slabPageSize {
		maxItemSize = slabPageSize
	}
	a := &SlabArena{limitBytes: limitBytes}
	size := minChunkSize
	for size < maxItemSize {
		a.classes = append(a.classes, slabClass{size: size})
		next := int(float64(size) * growthFactor)
		next = (next + chunkAlign - 1) / chunkAlign * chunkAlign
		if next <= size {
			next = size + chunkAlign
		}
		size = next
	}
	a.classes = append(a.classes, slabClass{size: maxItemSize})
	return a
}

// NumClasses reports the number of size classes.
func (a *SlabArena) NumClasses() int { return len(a.classes) }

// ClassSize reports the chunk size of class i.
func (a *SlabArena) ClassSize(i int) int { return a.classes[i].size }

// ClassFor picks the smallest class whose chunks fit n bytes.
// ok=false means n exceeds the largest class (item too large).
func (a *SlabArena) ClassFor(n int) (int, bool) {
	// Classes grow geometrically; binary search.
	lo, hi := 0, len(a.classes)-1
	if n > a.classes[hi].size {
		return 0, false
	}
	for lo < hi {
		mid := (lo + hi) / 2
		if a.classes[mid].size < n {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, true
}

// UsedBytes reports bytes of pages grabbed from the limit.
func (a *SlabArena) UsedBytes() int64 { return a.usedBytes }

// LimitBytes reports the configured cap.
func (a *SlabArena) LimitBytes() int64 { return a.limitBytes }

// Alloc takes a chunk that fits n bytes. It does not evict; the store
// layer owns eviction policy. ErrNoMemory means "free a chunk first".
func (a *SlabArena) Alloc(n int) (chunk, error) {
	ci, ok := a.ClassFor(n)
	if !ok {
		return chunk{}, fmt.Errorf("memcached: object too large for cache (%d bytes)", n)
	}
	cl := &a.classes[ci]
	if len(cl.free) == 0 {
		if err := a.growClass(ci); err != nil {
			return chunk{}, err
		}
	}
	c := cl.free[len(cl.free)-1]
	cl.free = cl.free[:len(cl.free)-1]
	return c, nil
}

// growClass grabs a page for class ci and carves it.
func (a *SlabArena) growClass(ci int) error {
	if a.usedBytes+slabPageSize > a.limitBytes {
		return ErrNoMemory
	}
	a.usedBytes += slabPageSize
	cl := &a.classes[ci]
	cl.pages++
	page := make([]byte, slabPageSize)
	for off := 0; off+cl.size <= slabPageSize; off += cl.size {
		cl.free = append(cl.free, chunk{class: ci, buf: page[off : off+cl.size : off+cl.size]})
	}
	return nil
}

// Free returns a chunk to its class.
func (a *SlabArena) Free(c chunk) {
	if !c.valid() {
		return
	}
	cl := &a.classes[c.class]
	cl.free = append(cl.free, c)
}

// FreeChunks reports free chunks in class i (for tests/stats).
func (a *SlabArena) FreeChunks(i int) int { return len(a.classes[i].free) }

// ClassPages reports pages assigned to class i.
func (a *SlabArena) ClassPages(i int) int { return a.classes[i].pages }

// ClassItems reports linked items in class i (an LRU walk; stats path).
func (a *SlabArena) ClassItems(i int) int {
	n := 0
	for it := a.classes[i].lruHead; it != nil; it = it.lnext {
		n++
	}
	return n
}

// lruInsert puts it at the head (most recent) of its class list.
func (a *SlabArena) lruInsert(it *Item) {
	cl := &a.classes[it.chunk.class]
	it.lprev = nil
	it.lnext = cl.lruHead
	if cl.lruHead != nil {
		cl.lruHead.lprev = it
	}
	cl.lruHead = it
	if cl.lruTail == nil {
		cl.lruTail = it
	}
}

// lruRemove unlinks it from its class list.
func (a *SlabArena) lruRemove(it *Item) {
	cl := &a.classes[it.chunk.class]
	if it.lprev != nil {
		it.lprev.lnext = it.lnext
	} else if cl.lruHead == it {
		cl.lruHead = it.lnext
	}
	if it.lnext != nil {
		it.lnext.lprev = it.lprev
	} else if cl.lruTail == it {
		cl.lruTail = it.lprev
	}
	it.lprev, it.lnext = nil, nil
}

// lruTouch moves it to the head of its class list.
func (a *SlabArena) lruTouch(it *Item) {
	a.lruRemove(it)
	a.lruInsert(it)
}

// lruVictim walks up to maxTries items from the tail of the class that
// would hold n bytes, returning the first unpinned candidate.
func (a *SlabArena) lruVictim(n, maxTries int) *Item {
	ci, ok := a.ClassFor(n)
	if !ok {
		return nil
	}
	it := a.classes[ci].lruTail
	for tries := 0; it != nil && tries < maxTries; tries++ {
		if !it.pinned() {
			return it
		}
		it = it.lprev
	}
	return nil
}

package cluster

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/mcclient"
	"repro/internal/memcached"
)

// newOneSidedClient deploys a cluster with the one-sided GET path armed
// and connects one reliable UCR client.
func newOneSidedClient(t *testing.T, opts Options) (*Deployment, *Client) {
	t.Helper()
	opts.OneSidedGet = true
	d := New(ClusterA(), opts)
	t.Cleanup(d.Close)
	c, err := d.NewClient(UCRIB, mcclient.DefaultBehaviors())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return d, c
}

// TestOneSidedGetServesHits proves the fast path end to end: with the
// index armed, GET hits come back correct — value, flags, and CAS — and
// are actually served by client-issued RDMA reads, not server AMs.
func TestOneSidedGetServesHits(t *testing.T) {
	_, c := newOneSidedClient(t, Options{})

	var oneSided, twoSided int
	c.MC.SetObserver(func(op mcclient.ObservedOp) {
		if op.Kind != memcached.RecGet || !op.Hit {
			return
		}
		if op.OneSided {
			oneSided++
		} else {
			twoSided++
		}
	})

	for _, size := range []int{1, 64, 1024, 4096, 65536} {
		key := fmt.Sprintf("os-key-%d", size)
		val := make([]byte, size)
		for i := range val {
			val[i] = byte(i*13 + size)
		}
		if err := c.MC.Set(key, val, uint32(size), 0); err != nil {
			t.Fatalf("Set %d: %v", size, err)
		}
		got, flags, cas, err := c.MC.Get(key)
		if err != nil {
			t.Fatalf("Get %d: %v", size, err)
		}
		if !bytes.Equal(got, val) {
			t.Fatalf("size %d: one-sided value mismatch", size)
		}
		if flags != uint32(size) {
			t.Fatalf("size %d: flags %d", size, flags)
		}
		if cas == 0 {
			t.Fatalf("size %d: zero CAS from one-sided read", size)
		}
		// Repeat read exercises the client's cached directory entry.
		if got2, _, cas2, err := c.MC.Get(key); err != nil || !bytes.Equal(got2, val) || cas2 != cas {
			t.Fatalf("size %d: cached-entry reread wrong (err %v)", size, err)
		}
	}
	if oneSided == 0 {
		t.Fatalf("no GET took the one-sided path (two-sided hits: %d)", twoSided)
	}
	if twoSided != 0 {
		t.Fatalf("%d hits fell back to the AM path unexpectedly", twoSided)
	}
}

// TestOneSidedGetSeesMutations checks the seqlock never serves a stale
// pairing: every overwrite must be visible to the next one-sided read,
// with the matching CAS.
func TestOneSidedGetSeesMutations(t *testing.T) {
	_, c := newOneSidedClient(t, Options{})

	key := "os-mutating"
	var lastCAS uint64
	for round := 0; round < 20; round++ {
		val := bytes.Repeat([]byte{byte(round + 1)}, 128+round)
		if err := c.MC.Set(key, val, uint32(round), 0); err != nil {
			t.Fatalf("round %d Set: %v", round, err)
		}
		got, flags, cas, err := c.MC.Get(key)
		if err != nil {
			t.Fatalf("round %d Get: %v", round, err)
		}
		if !bytes.Equal(got, val) {
			t.Fatalf("round %d: stale or torn value", round)
		}
		if flags != uint32(round) {
			t.Fatalf("round %d: stale flags %d", round, flags)
		}
		if cas <= lastCAS {
			t.Fatalf("round %d: CAS went backwards (%d after %d)", round, cas, lastCAS)
		}
		lastCAS = cas

		// Delete → the directory entry dies; the next get must miss.
		if round%5 == 4 {
			if err := c.MC.Delete(key); err != nil {
				t.Fatalf("round %d Delete: %v", round, err)
			}
			if _, _, _, err := c.MC.Get(key); err != mcclient.ErrCacheMiss {
				t.Fatalf("round %d: get after delete: %v", round, err)
			}
		}
	}
}

// TestOneSidedFallbackPaths drives the ladder's AM exits: misses,
// oversized values, and a flushed store all answer correctly.
func TestOneSidedFallbackPaths(t *testing.T) {
	d, c := newOneSidedClient(t, Options{})

	if _, _, _, err := c.MC.Get("never-set"); err != mcclient.ErrCacheMiss {
		t.Fatalf("miss: %v", err)
	}

	// Overflow the directory: more keys than it has slots guarantees
	// displacement, and displaced keys must be served — correctly — by
	// the AM fallback while the rest stay one-sided.
	sx := d.Server.Store().OneSidedIndex()
	n := sx.Buckets()*sx.Slots() + 64
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("os-spill-%d", i)
		if err := c.MC.Set(key, []byte(key), uint32(i), 0); err != nil {
			t.Fatalf("Set %s: %v", key, err)
		}
	}
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("os-spill-%d", i)
		got, flags, _, err := c.MC.Get(key)
		if err != nil || string(got) != key || flags != uint32(i) {
			t.Fatalf("spill get %s: %v %q", key, err, got)
		}
	}
	if _, displaced, _ := sx.Stats(); displaced == 0 {
		t.Fatal("directory overflow displaced nothing; test is vacuous")
	}

	if err := c.MC.Set("os-flushed", []byte("gone"), 0, 0); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := c.MC.Get("os-flushed"); err != nil {
		t.Fatal(err)
	}
	d.Server.Store().FlushAll(c.Clock.Now())
	if _, _, _, err := c.MC.Get("os-flushed"); err != mcclient.ErrCacheMiss {
		t.Fatalf("get after flush: %v", err)
	}
}

// TestOneSidedUDClientFallsBack proves a UD client against a one-sided
// server keeps working over the AM path (one-sided needs reliable).
func TestOneSidedUDClientFallsBack(t *testing.T) {
	d := New(ClusterA(), Options{OneSidedGet: true})
	defer d.Close()
	c, err := d.NewClientUD(mcclient.DefaultBehaviors())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if err := c.MC.Set("ud-key", []byte("ud-val"), 3, 0); err != nil {
		t.Fatal(err)
	}
	got, _, _, err := c.MC.Get("ud-key")
	if err != nil || string(got) != "ud-val" {
		t.Fatalf("UD fallback get: %v %q", err, got)
	}
}

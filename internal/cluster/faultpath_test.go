package cluster

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/mcclient"
	"repro/internal/memcached"
	"repro/internal/simnet"
)

// TestSRQCreditExhaustionBackpressure: a pipelined window far deeper
// than the shared pool runs the server's SRQ dry mid-burst. The RC
// sender must absorb that as RNR retries (visible on the client HCA's
// retransmit counter), every future must settle in bounded time —
// Stored when a repost won the race, ErrServerDown when the RNR budget
// ran out — and the server itself must come through unharmed: a fresh
// client's blocking workload completes normally afterwards. Exhaustion
// is backpressure plus clean per-op failure, never a hang or a wedged
// server.
func TestSRQCreditExhaustionBackpressure(t *testing.T) {
	d := New(ClusterB(), Options{UseSRQ: true, SRQBuffers: 4})
	defer d.Close()

	c, err := d.NewClient(UCRIB, mcclient.DefaultBehaviors())
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	defer c.Close()

	pr, ok := c.MC.Transport(0).(mcclient.Pipeliner)
	if !ok {
		t.Fatalf("transport cannot pipeline")
	}
	const n = 48
	pl := pr.Pipeline(16)
	clk := c.Clock
	var sets []*mcclient.SetFuture
	for i := 0; i < n; i++ {
		sets = append(sets, pl.StartSet(clk, fmt.Sprintf("srq%d", i), 0, 0, []byte(fmt.Sprintf("burst-val-%d", i))))
	}
	if err := pl.Wait(clk); err != nil && !errors.Is(err, mcclient.ErrServerDown) {
		t.Fatalf("pipeline through starved SRQ: %v", err)
	}
	stored := 0
	for i, f := range sets {
		res, err := f.Wait(clk)
		switch {
		case err == nil && res == memcached.Stored:
			stored++
		case errors.Is(err, mcclient.ErrServerDown):
			// RNR budget exceeded for this send: clean failure.
		default:
			t.Fatalf("set %d = (%v, %v), want Stored or ErrServerDown", i, res, err)
		}
	}
	if rtx := c.Runtime().HCA().Retransmits(); rtx == 0 {
		t.Fatal("SRQBuffers=4 under a 16-deep window never triggered an RNR retry; exhaustion untested")
	}

	// The starved SRQ must not wedge the server: a fresh client's
	// blocking ops (one in flight, never past the pool) all succeed,
	// and whatever the burst stored is intact.
	c2, err := d.NewClient(UCRIB, mcclient.DefaultBehaviors())
	if err != nil {
		t.Fatalf("post-burst NewClient: %v", err)
	}
	defer c2.Close()
	for i := 0; i < 20; i++ {
		key := fmt.Sprintf("post%d", i)
		if err := c2.MC.Set(key, []byte("recovered"), 0, 0); err != nil {
			t.Fatalf("post-burst set %d: %v", i, err)
		}
		if v, _, _, err := c2.MC.Get(key); err != nil || string(v) != "recovered" {
			t.Fatalf("post-burst get %d = (%q, %v)", i, v, err)
		}
	}
	recovered := 0
	for i := 0; i < n; i++ {
		v, _, _, err := c2.MC.Get(fmt.Sprintf("srq%d", i))
		if err == nil && string(v) == fmt.Sprintf("burst-val-%d", i) {
			recovered++
		}
	}
	if recovered < stored {
		t.Fatalf("burst reported %d Stored but only %d readable", stored, recovered)
	}
	if d.Server.UCRSRQDemux() == 0 {
		t.Fatal("no completion was demuxed off the shared SRQ")
	}
}

// TestServerCloseMidBurst: killing the server while a pipelined window
// is outstanding must settle every future in bounded time — success for
// whatever was already served, ErrServerDown for the rest — and a
// subsequent blocking op must fail fast with ErrServerDown, not hang.
func TestServerCloseMidBurst(t *testing.T) {
	d := New(ClusterB(), Options{})
	defer d.Close()

	b := mcclient.DefaultBehaviors()
	b.OpTimeout = 2 * simnet.Millisecond
	c, err := d.NewClient(UCRIB, b)
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	defer c.Close()

	if err := c.MC.Set("warm", []byte("up"), 0, 0); err != nil {
		t.Fatalf("warmup set: %v", err)
	}

	pr := c.MC.Transport(0).(mcclient.Pipeliner)
	pl := pr.Pipeline(8)
	clk := c.Clock
	var futs []*mcclient.SetFuture
	for i := 0; i < 8; i++ {
		futs = append(futs, pl.StartSet(clk, fmt.Sprintf("mid%d", i), 0, 0, []byte("x")))
	}
	d.Server.Close()
	if err := pl.Wait(clk); err != nil && !errors.Is(err, mcclient.ErrServerDown) {
		t.Fatalf("pipeline wait after server close: %v", err)
	}
	for i, f := range futs {
		if _, err := f.Wait(clk); err != nil && !errors.Is(err, mcclient.ErrServerDown) {
			t.Fatalf("future %d settled with %v, want nil or ErrServerDown", i, err)
		}
	}
	if err := c.MC.Set("after", []byte("y"), 0, 0); !errors.Is(err, mcclient.ErrServerDown) {
		t.Fatalf("post-close set err = %v, want ErrServerDown", err)
	}
}

// TestUDPartitionRetransmission: a dropped UD datagram is recovered by
// the client-side retransmission timer; a partition spanning the whole
// retransmission window surfaces as a clean ErrServerDown (no hang),
// and after healing the data is still there for a fresh client.
func TestUDPartitionRetransmission(t *testing.T) {
	d := New(ClusterB(), Options{UDGets: true, Faults: LossyFaults(0, 7)})
	defer d.Close()

	b := mcclient.DefaultBehaviors()
	b.OpTimeout = 4 * simnet.Millisecond
	c, err := d.NewClient(UCRIB, b)
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	defer c.Close()

	want := []byte("survives-the-partition")
	if err := c.MC.Set("k", want, 0, 0); err != nil {
		t.Fatalf("set: %v", err)
	}

	if len(d.Injectors) == 0 {
		t.Fatal("no fault injector installed")
	}
	fi := d.Injectors[0] // the IB fabric's injector

	// One lost datagram: the get request vanishes, the per-attempt
	// deadline fires, the retransmission succeeds.
	fi.DropNext(c.Node, d.ServerNode, 1)
	v, _, _, err := c.MC.Get("k")
	if err != nil || !bytes.Equal(v, want) {
		t.Fatalf("get through one drop = (%q, %v)", v, err)
	}
	ut := clientUCRTransport(t, c)
	_, retx, _ := ut.UDStats()
	if retx == 0 {
		t.Fatal("dropped UD request did not trigger a retransmission")
	}

	// Partition across the whole retransmission window: every attempt
	// is swallowed; the op must fail cleanly rather than hang.
	fi.Partition(c.Node, d.ServerNode)
	if _, _, _, err := c.MC.Get("k"); !errors.Is(err, mcclient.ErrServerDown) {
		t.Fatalf("partitioned get err = %v, want ErrServerDown", err)
	}
	_, retx2, _ := ut.UDStats()
	if retx2 <= retx {
		t.Fatalf("no retransmissions attempted into the partition (%d -> %d)", retx, retx2)
	}
	fi.Heal(c.Node, d.ServerNode)

	// The server kept the item; a fresh client reads it post-heal.
	c2, err := d.NewClient(UCRIB, b)
	if err != nil {
		t.Fatalf("post-heal NewClient: %v", err)
	}
	defer c2.Close()
	v, _, _, err = c2.MC.Get("k")
	if err != nil || !bytes.Equal(v, want) {
		t.Fatalf("post-heal get = (%q, %v)", v, err)
	}
}

// TestConcentratorRaceStress drives every session of two shared RC
// trunks from its own goroutine with a mixed workload (run it with
// -race). Each session must observe its own writes in order — the
// concentrator serializes the shared QP but may never cross-deliver a
// sibling's reply.
func TestConcentratorRaceStress(t *testing.T) {
	const k = 4
	d := New(ClusterB(), Options{SessionsPerQP: k})
	defer d.Close()

	var clients []*Client
	for i := 0; i < 2*k; i++ {
		c, err := d.NewClient(UCRIB, mcclient.DefaultBehaviors())
		if err != nil {
			t.Fatalf("NewClient %d: %v", i, err)
		}
		clients = append(clients, c)
	}
	if d.Trunks() != 2 {
		t.Fatalf("Trunks() = %d, want 2", d.Trunks())
	}

	var wg sync.WaitGroup
	for i, c := range clients {
		wg.Add(1)
		go func(sess int, c *Client) {
			defer wg.Done()
			last := map[string][]byte{}
			for j := 0; j < 60; j++ {
				key := fmt.Sprintf("s%d-k%d", sess, j%5)
				switch j % 6 {
				case 0, 1, 3:
					val := []byte(fmt.Sprintf("sess%d-op%d", sess, j))
					if err := c.MC.Set(key, val, uint32(sess), 0); err != nil {
						t.Errorf("session %d set %s: %v", sess, key, err)
						return
					}
					last[key] = val
				case 2:
					v, fl, _, err := c.MC.Get(key)
					wantV, wrote := last[key]
					if !wrote {
						if err != mcclient.ErrCacheMiss {
							t.Errorf("session %d get %s (never written) = %v", sess, key, err)
							return
						}
						continue
					}
					if err != nil || !bytes.Equal(v, wantV) || fl != uint32(sess) {
						t.Errorf("session %d get %s = (%q, fl=%d, %v), want (%q, fl=%d) — FIFO broken or cross-delivery",
							sess, key, v, fl, err, wantV, sess)
						return
					}
				case 4:
					keys := []string{
						fmt.Sprintf("s%d-k0", sess),
						fmt.Sprintf("s%d-k1", sess),
					}
					got, err := c.MC.GetMulti(keys)
					if err != nil {
						t.Errorf("session %d mget: %v", sess, err)
						return
					}
					for _, kk := range keys {
						if wantV, wrote := last[kk]; wrote && !bytes.Equal(got[kk], wantV) {
							t.Errorf("session %d mget[%s] = %q, want %q", sess, kk, got[kk], wantV)
							return
						}
					}
				case 5:
					if err := c.MC.Delete(key); err != nil && err != mcclient.ErrCacheMiss {
						t.Errorf("session %d delete %s: %v", sess, key, err)
						return
					}
					delete(last, key)
				}
			}
		}(i, c)
	}
	wg.Wait()
	for _, c := range clients {
		c.Close()
	}
}

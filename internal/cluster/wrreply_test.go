package cluster

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"repro/internal/mcclient"
	"repro/internal/simnet"
)

// wrVal builds a deterministic value whose bytes encode their position,
// so a reply landing in the wrong slot (or a torn write) is caught by
// the equality check, not just by length.
func wrVal(size, seed int) []byte {
	v := make([]byte, size)
	for i := range v {
		v[i] = byte(i*13 + seed)
	}
	return v
}

// TestWriteRepliesServeGets: with the write-based reply path armed,
// GETs across the crossover ladder still round-trip intact — small
// values over the eager fallback, mid-size values via RDMA writes into
// the client's reply window, oversize values (beyond the 64 KB slot)
// via the rendezvous fallback — and both ends' vacuity counters prove
// the write path actually carried traffic.
func TestWriteRepliesServeGets(t *testing.T) {
	d := New(ClusterB(), Options{WriteReplies: true})
	defer d.Close()
	c, err := d.NewClient(UCRIB, mcclient.DefaultBehaviors())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ut := clientUCRTransport(t, c)

	// 64 B sits below the 1 KB crossover (eager fallback), 4 KB and
	// 64 KB ride the write path (64 KB + header exactly fills a slot),
	// 128 KB exceeds the slot and falls back to rendezvous.
	writeSized := map[int]bool{4096: true, 64 << 10: true}
	for _, size := range []int{64, 4096, 64 << 10, 128 << 10} {
		key := fmt.Sprintf("wr-%d", size)
		val := wrVal(size, size)
		if err := c.MC.Set(key, val, uint32(size), 0); err != nil {
			t.Fatalf("Set %d: %v", size, err)
		}
		before := ut.WriteReplyHits()
		got, flags, _, err := c.MC.Get(key)
		if err != nil {
			t.Fatalf("Get %d: %v", size, err)
		}
		if !bytes.Equal(got, val) {
			t.Fatalf("size %d: value corrupted through the write-reply path", size)
		}
		if flags != uint32(size) {
			t.Fatalf("size %d: flags = %d", size, flags)
		}
		hit := ut.WriteReplyHits() > before
		if hit != writeSized[size] {
			t.Fatalf("size %d: write-path used = %v, want %v (crossover misrouted)", size, hit, writeSized[size])
		}
	}
	// Misses and overwrites still behave with the arena armed.
	if _, _, _, err := c.MC.Get("wr-never-set"); err != mcclient.ErrCacheMiss {
		t.Fatalf("miss err = %v", err)
	}
	upd := wrVal(4096, 99)
	if err := c.MC.Set("wr-4096", upd, 7, 0); err != nil {
		t.Fatal(err)
	}
	if got, _, _, err := c.MC.Get("wr-4096"); err != nil || !bytes.Equal(got, upd) {
		t.Fatalf("overwrite read-back = (%d bytes, %v)", len(got), err)
	}

	if ut.WriteReplyHits() == 0 {
		t.Fatal("client saw no write-based replies (vacuous test)")
	}
	if d.Server.UCRWriteReplies() == 0 {
		t.Fatal("server posted no write-based replies (vacuous test)")
	}
}

// TestWriteRepliesGetMulti: a batch whose reply exceeds the crossover
// is answered with one gather write of [headers ‖ values] into the
// client's slot instead of an eager pack or a rendezvous read.
func TestWriteRepliesGetMulti(t *testing.T) {
	d := New(ClusterB(), Options{WriteReplies: true})
	defer d.Close()
	c, err := d.NewClient(UCRIB, mcclient.DefaultBehaviors())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ut := clientUCRTransport(t, c)

	keys := make([]string, 8)
	for i := range keys {
		keys[i] = fmt.Sprintf("mw-%d", i)
		if err := c.MC.Set(keys[i], wrVal(4096, i), uint32(i), 0); err != nil {
			t.Fatal(err)
		}
	}
	got, err := c.MC.GetMulti(append(keys, "mw-missing")) // 32 KB aggregate: write path
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(keys) {
		t.Fatalf("GetMulti returned %d of %d", len(got), len(keys))
	}
	for i, k := range keys {
		if !bytes.Equal(got[k], wrVal(4096, i)) {
			t.Fatalf("mget value for %s corrupted", k)
		}
	}
	if ut.WriteReplyHits() == 0 {
		t.Fatal("mget batch never used the write path")
	}
	// A batch past the slot (> 64 KB aggregate) must still come back
	// intact over the rendezvous fallback.
	bigKeys := make([]string, 5)
	for i := range bigKeys {
		bigKeys[i] = fmt.Sprintf("mwbig-%d", i)
		if err := c.MC.Set(bigKeys[i], wrVal(32<<10, i), 0, 0); err != nil {
			t.Fatal(err)
		}
	}
	before := ut.WriteReplyHits()
	gotBig, err := c.MC.GetMulti(bigKeys) // 160 KB aggregate: exceeds the slot
	if err != nil {
		t.Fatal(err)
	}
	for i, k := range bigKeys {
		if !bytes.Equal(gotBig[k], wrVal(32<<10, i)) {
			t.Fatalf("oversize mget corrupted %s", k)
		}
	}
	if ut.WriteReplyHits() != before {
		t.Fatal("oversize mget should have fallen back past the write path")
	}
}

// TestWriteRepliesPipelined: a pipelined GET window over write-sized
// values posts its replies as doorbell-coalesced write bursts; every
// future lands its own slot's bytes.
func TestWriteRepliesPipelined(t *testing.T) {
	d := New(ClusterB(), Options{WriteReplies: true})
	defer d.Close()
	c, err := d.NewClient(UCRIB, mcclient.DefaultBehaviors())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ut := clientUCRTransport(t, c)

	const n = 24
	for i := 0; i < n; i++ {
		if err := c.MC.Set(fmt.Sprintf("pw-%d", i), wrVal(4096, i), uint32(i), 0); err != nil {
			t.Fatal(err)
		}
	}
	pl := ut.Pipeline(8)
	clk := c.Clock
	futs := make([]*mcclient.GetFuture, n)
	for i := 0; i < n; i++ {
		futs[i] = pl.StartGet(clk, fmt.Sprintf("pw-%d", i))
	}
	if err := pl.Wait(clk); err != nil {
		t.Fatalf("pipeline wait: %v", err)
	}
	for i, f := range futs {
		v, fl, _, hit, err := f.Wait(clk)
		if err != nil || !hit {
			t.Fatalf("future %d = (hit=%v, %v)", i, hit, err)
		}
		if fl != uint32(i) || !bytes.Equal(v, wrVal(4096, i)) {
			t.Fatalf("future %d landed the wrong slot's bytes (flags=%d)", i, fl)
		}
	}
	if hits := ut.WriteReplyHits(); hits < n {
		t.Fatalf("WriteReplyHits = %d, want ≥ %d (pipelined window fell off the write path)", hits, n)
	}
}

// TestWriteRepliesServerCloseMidBurst: killing the server while a
// pipelined window of write-path GETs is outstanding must settle every
// future in bounded time — the item pinned for each in-flight RDMA
// write is released by the counter sweep whether the write completed or
// flushed, so nothing hangs and nothing leaks. A settled success must
// carry intact bytes (the data write is FIFO-ordered before its
// notify); everything else fails cleanly with ErrServerDown.
func TestWriteRepliesServerCloseMidBurst(t *testing.T) {
	d := New(ClusterB(), Options{WriteReplies: true})
	defer d.Close()

	b := mcclient.DefaultBehaviors()
	b.OpTimeout = 2 * simnet.Millisecond
	c, err := d.NewClient(UCRIB, b)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ut := clientUCRTransport(t, c)

	const n = 8
	for i := 0; i < n; i++ {
		if err := c.MC.Set(fmt.Sprintf("cb-%d", i), wrVal(4096, i), 0, 0); err != nil {
			t.Fatalf("warm set %d: %v", i, err)
		}
	}

	pl := ut.Pipeline(n)
	clk := c.Clock
	futs := make([]*mcclient.GetFuture, n)
	for i := 0; i < n; i++ {
		futs[i] = pl.StartGet(clk, fmt.Sprintf("cb-%d", i))
	}
	d.Server.Close()
	if err := pl.Wait(clk); err != nil && !errors.Is(err, mcclient.ErrServerDown) {
		t.Fatalf("pipeline wait after server close: %v", err)
	}
	for i, f := range futs {
		v, _, _, hit, err := f.Wait(clk)
		switch {
		case err == nil && hit:
			if !bytes.Equal(v, wrVal(4096, i)) {
				t.Fatalf("future %d settled OK with corrupt bytes after mid-burst close", i)
			}
		case err == nil:
			// A miss reply that raced the shutdown: clean settle.
		case errors.Is(err, mcclient.ErrServerDown):
			// Request or reply died with the server: clean settle.
		default:
			t.Fatalf("future %d settled with %v, want nil or ErrServerDown", i, err)
		}
	}
	if _, _, _, err := c.MC.Get("cb-0"); !errors.Is(err, mcclient.ErrServerDown) {
		t.Fatalf("post-close get err = %v, want ErrServerDown", err)
	}
}

package cluster

import (
	"fmt"
	"sync"

	"repro/internal/mcclient"
	"repro/internal/memcached"
	"repro/internal/ring"
	"repro/internal/simnet"
	"repro/internal/verbs"

	ucrpkg "repro/internal/ucr"
)

// Fleet layers churn-capable membership and R-way replication over a
// Deployment: the O(1000)-server / O(10k)-client tier the ROADMAP's
// "millions of users" north star needs above PR 7's per-server fan-in
// work. Placement is the shared ketama ring (internal/ring); every
// fleet client routes each key to its R current owners (primary + ring
// successors), writes through to all of them, and falls through to the
// replica on a primary miss with an asynchronous-style read repair
// (store-if-absent, result ignored) patching the primary back up.
//
// Churn comes in three scripted flavors:
//
//	Join  — a fresh, empty server starts and takes over its arcs.
//	Leave — a member departs gracefully: unpublished first, closed after.
//	Crash — the member is partitioned from every client on every fabric
//	        (PR 2's FaultInjector) and then killed; in-flight requests
//	        either already made it or surface clean ErrServerDown after
//	        the RC retransmission budget burns down in virtual time.
//
// The ring update is atomic under f.mu in all three cases, so a client
// never routes to a member it can also observe as departed.

// FleetOptions configures NewFleet.
type FleetOptions struct {
	// Transport is the client transport (UCRIB or a socket transport the
	// profile offers).
	Transport Transport
	// Servers is the initial member count (minimum 2: R=2 needs a
	// distinct successor).
	Servers int
	// Replicas is the ownership factor R (default 2).
	Replicas int
	// VNodes is the ring's per-server digest count (default 40, the
	// libmemcached layout).
	VNodes int
	// Behaviors apply to every fleet client's transports.
	Behaviors mcclient.Behaviors
	// Seed seeds the drop-free fault injectors installed when Opts.Faults
	// is nil (Crash needs injectors for its partitions even in clean
	// runs).
	Seed uint64
	// Opts is the underlying deployment configuration. Opts.Servers is
	// overridden by FleetOptions.Servers.
	Opts Options
}

// Fleet is a churn-capable server group over one Deployment.
type Fleet struct {
	D         *Deployment
	transport Transport
	behaviors mcclient.Behaviors
	replicas  int

	mu          sync.Mutex
	ring        *ring.Ring
	members     map[string]*fleetMember
	clientNodes []*simnet.Node
	nextServer  int
	nextClient  int
	joins       int
	leaves      int
	crashes     int
}

type fleetMember struct {
	name    string
	idx     int // Deployment server index (fixed; slots are never reused)
	node    *simnet.Node
	srv     *memcached.Server
	service string // UCR CM service name for this slot
}

// NewFleet builds a fleet of opts.Servers initial members.
func NewFleet(p *Profile, opts FleetOptions) (*Fleet, error) {
	if opts.Servers < 2 {
		opts.Servers = 2
	}
	if opts.Replicas <= 0 {
		opts.Replicas = 2
	}
	if opts.Transport == "" {
		opts.Transport = UCRIB
	}
	if opts.Opts.Faults == nil {
		// Drop-free injector: Crash's partitions need one installed even
		// when the run is otherwise lossless.
		opts.Opts.Faults = LossyFaults(0, opts.Seed)
	}
	opts.Opts.Servers = opts.Servers
	if opts.Transport != UCRIB && !p.HasTransport(opts.Transport) {
		return nil, fmt.Errorf("cluster %s has no %s", p.Name, opts.Transport)
	}
	d := New(p, opts.Opts)
	f := &Fleet{
		D:          d,
		transport:  opts.Transport,
		behaviors:  opts.Behaviors,
		replicas:   opts.Replicas,
		ring:       ring.New(opts.VNodes),
		members:    make(map[string]*fleetMember),
		nextServer: opts.Servers,
	}
	for i, node := range d.ServerNodes {
		name := node.Name()
		f.members[name] = &fleetMember{
			name: name, idx: i, node: node, srv: d.Servers[i],
			service: ucrServiceFor(i),
		}
		f.ring.AddServer(name)
	}
	return f, nil
}

// Replicas reports the ownership factor R.
func (f *Fleet) Replicas() int { return f.replicas }

// Size reports the live member count.
func (f *Fleet) Size() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.members)
}

// Members lists live member names (sorted).
func (f *Fleet) Members() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.ring.Members()
}

// RingSnapshot returns an independent copy of the current ring — the
// key-movement accounting input (compare snapshots across churn with
// Ring.MovedFraction).
func (f *Fleet) RingSnapshot() *ring.Ring {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.ring.Clone()
}

// Owners reports the R current owners of key, primary first.
func (f *Fleet) Owners(key string) []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.ring.Owners(key, f.replicas)
}

// ChurnCounts reports how many joins/leaves/crashes have run (vacuity
// guards).
func (f *Fleet) ChurnCounts() (joins, leaves, crashes int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.joins, f.leaves, f.crashes
}

// Join starts one fresh, empty server and publishes it on the ring. The
// server is fully reachable before any client can route to it. Returns
// the new member's name.
func (f *Fleet) Join() string {
	f.mu.Lock()
	name := fmt.Sprintf("server%d", f.nextServer)
	f.nextServer++
	f.mu.Unlock()

	// Bring the server up outside f.mu: AddServer synchronizes on the
	// deployment and the network, and holding f.mu across it would stall
	// every concurrent routing decision.
	idx := f.D.AddServer(name)

	f.mu.Lock()
	defer f.mu.Unlock()
	f.members[name] = &fleetMember{
		name: name, idx: idx, node: f.D.ServerNodes[idx],
		srv: f.D.Servers[idx], service: ucrServiceFor(idx),
	}
	f.ring.AddServer(name)
	f.joins++
	return name
}

// Leave removes a member gracefully: it is unpublished from the ring
// first (no new traffic routes to it), then shut down. No-op on an
// unknown name. Returns whether the member existed.
func (f *Fleet) Leave(name string) bool {
	f.mu.Lock()
	m, ok := f.members[name]
	if !ok {
		f.mu.Unlock()
		return false
	}
	delete(f.members, name)
	f.ring.RemoveServer(name)
	f.leaves++
	f.mu.Unlock()

	m.srv.Close()
	return true
}

// Crash kills a member abruptly: every client node is partitioned from
// it on every fabric, the ring drops it, and the server process dies.
// In-flight requests settle with a value (already served) or clean
// ErrServerDown (RC retransmission budget exhausted in virtual time, or
// the closed endpoint failing the op locally). No-op on an unknown
// name. Returns whether the member existed.
func (f *Fleet) Crash(name string) bool {
	f.mu.Lock()
	m, ok := f.members[name]
	if !ok {
		f.mu.Unlock()
		return false
	}
	delete(f.members, name)
	f.ring.RemoveServer(name)
	f.crashes++
	clients := append([]*simnet.Node(nil), f.clientNodes...)
	f.mu.Unlock()

	for _, fi := range f.D.Injectors {
		for _, cn := range clients {
			fi.Partition(cn, m.node)
		}
	}
	m.srv.Close()
	return true
}

// member returns the live member named name, or nil.
func (f *Fleet) member(name string) *fleetMember {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.members[name]
}

// FleetClientStats counts one client's replication-path events.
type FleetClientStats struct {
	Ops          uint64 // fleet-level operations issued
	PrimaryHits  uint64 // gets answered by the primary
	ReplicaHits  uint64 // gets answered by the replica after a primary miss
	Fallthroughs uint64 // primary misses/faults that consulted the replica
	Repairs      uint64 // read-repair store-if-absent attempts issued
	Downs        uint64 // transport ops that returned ErrServerDown
}

// FleetClient is one client actor: its own node, clock, and a lazy
// per-owner connection cache. Unlike Deployment.NewClient it never
// dials the whole fleet — at 1000 servers × 10k clients an eager mesh
// would be 10M RC endpoints; a fleet client only connects to servers
// that actually own one of its keys. Not safe for concurrent use
// (one per goroutine, like mcclient.Client).
type FleetClient struct {
	f         *Fleet
	Node      *simnet.Node
	Clock     *simnet.VClock
	behaviors mcclient.Behaviors

	rt    *ucrpkg.Runtime
	ctx   *ucrpkg.Context
	conns map[string]mcclient.Transport

	// staleRing is the construction-time snapshot MutRingStale routes
	// by; nil in correct builds.
	staleRing *ring.Ring

	Stats FleetClientStats
}

// NewClient adds one fleet client.
func (f *Fleet) NewClient() (*FleetClient, error) {
	f.mu.Lock()
	f.nextClient++
	n := f.nextClient
	f.mu.Unlock()

	node := f.D.Network.AddNode(fmt.Sprintf("fclient%d", n))
	clk := simnet.NewVClock(0)
	c := &FleetClient{
		f: f, Node: node, Clock: clk, behaviors: f.behaviors,
		conns: make(map[string]mcclient.Transport),
	}
	if f.transport == UCRIB {
		hca := verbs.NewHCA(node, f.D.IB, f.D.Profile.HCA)
		c.rt = ucrpkg.New(hca, f.D.CM, f.D.clientUCRConfig())
		c.ctx = c.rt.NewContext()
	} else {
		switch f.transport {
		case IPoIB, SDP:
			f.D.IB.Attach(node)
		case TOE10G:
			f.D.Eth10G.Attach(node)
		case TCP1G:
			f.D.Eth1G.Attach(node)
		}
	}
	if ring.MutRingStale {
		c.staleRing = f.RingSnapshot()
	}
	f.mu.Lock()
	f.clientNodes = append(f.clientNodes, node)
	f.mu.Unlock()
	return c, nil
}

// owners resolves the key's R owners by the CURRENT ring (or, under the
// seeded MutRingStale bug, the construction-time snapshot).
func (c *FleetClient) owners(key string) []string {
	if c.staleRing != nil {
		return c.staleRing.Owners(key, c.f.replicas)
	}
	return c.f.Owners(key)
}

// conn returns the (lazily dialed) transport for a member. Departed or
// unreachable members yield ErrServerDown.
func (c *FleetClient) conn(name string) (mcclient.Transport, error) {
	if tr, ok := c.conns[name]; ok {
		return tr, nil
	}
	m := c.f.member(name)
	if m == nil {
		return nil, mcclient.ErrServerDown
	}
	var tr mcclient.Transport
	var err error
	if c.f.transport == UCRIB {
		tr, err = mcclient.DialUCR(c.rt, c.ctx, m.node, m.service, c.behaviors, c.Clock)
	} else {
		tr, err = mcclient.DialSock(c.f.D.providers[c.f.transport], c.Node, m.node,
			serviceFor(c.f.transport), c.behaviors, c.Clock)
	}
	if err != nil {
		// Dial raced a crash/partition; surface it like any dead server.
		return nil, mcclient.ErrServerDown
	}
	c.conns[name] = tr
	return tr, nil
}

// dropConn forgets a cached transport after it reported the server
// down, so a later re-join of the same slot re-dials.
func (c *FleetClient) dropConn(name string) {
	if tr, ok := c.conns[name]; ok {
		tr.Close()
		delete(c.conns, name)
	}
}

// retry mirrors mcclient's opWithRetry: ErrServerDown is retried
// Behaviors.Retries times with exponential virtual-time backoff (lossy
// fleets heal transient drops inside the window).
func (c *FleetClient) retry(op func() error) error {
	err := op()
	if err != mcclient.ErrServerDown || c.behaviors.Retries <= 0 {
		return err
	}
	backoff := c.behaviors.RetryBackoff
	if backoff <= 0 {
		backoff = 100 * simnet.Microsecond
	}
	for r := 0; r < c.behaviors.Retries && err == mcclient.ErrServerDown; r++ {
		c.Clock.Advance(backoff)
		backoff *= 2
		err = op()
	}
	return err
}

// Set writes through to all R owners, primary first. The first error is
// surfaced after every owner has been attempted, so a replica outage
// never blocks the primary write (and vice versa).
func (c *FleetClient) Set(key string, value []byte, flags uint32, exptime int64) error {
	c.Stats.Ops++
	owners := c.owners(key)
	if len(owners) == 0 {
		return mcclient.ErrNoServers
	}
	if ring.MutReplicaSkip && len(owners) > 1 {
		owners = owners[:1]
	}
	var firstErr error
	for _, o := range owners {
		err := c.storeTo(o, 0, key, flags, exptime, value, false)
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// storeTo runs one store op against one owner with retry; op 0 is a
// plain Set, anything else a conditional memcached.StoreOp* (read
// repair uses StoreOpAdd).
func (c *FleetClient) storeTo(owner string, op uint8, key string, flags uint32, exptime int64, value []byte, ignoreResult bool) error {
	tr, err := c.conn(owner)
	if err != nil {
		c.Stats.Downs++
		return err
	}
	err = c.retry(func() error {
		var e error
		if op == 0 {
			_, e = tr.Set(c.Clock, key, flags, exptime, value)
		} else {
			cs, ok := tr.(mcclient.CondStorer)
			if !ok {
				return fmt.Errorf("fleet: transport %s cannot %d", tr.Name(), op)
			}
			_, e = cs.StoreOp(c.Clock, op, key, flags, exptime, value, 0)
		}
		return e
	})
	if err == mcclient.ErrServerDown {
		c.Stats.Downs++
		c.dropConn(owner)
	}
	if ignoreResult {
		return nil
	}
	return err
}

// Get reads the key: primary first; a miss (or dead primary) falls
// through to the replica, and a replica hit triggers an asynchronous-
// style read repair — a store-if-absent on the primary whose outcome is
// ignored, so it can neither change the returned value nor clobber a
// newer concurrent write.
func (c *FleetClient) Get(key string) (value []byte, flags uint32, err error) {
	c.Stats.Ops++
	owners := c.owners(key)
	if len(owners) == 0 {
		return nil, 0, mcclient.ErrNoServers
	}
	primary := owners[0]
	v, fl, hit, perr := c.getFrom(primary, key)
	if perr == nil && hit {
		c.Stats.PrimaryHits++
		return v, fl, nil
	}
	if len(owners) < 2 {
		if perr != nil {
			return nil, 0, perr
		}
		return nil, 0, mcclient.ErrCacheMiss
	}
	c.Stats.Fallthroughs++
	rv, rfl, rhit, rerr := c.getFrom(owners[1], key)
	if rerr != nil {
		if perr != nil {
			return nil, 0, perr
		}
		return nil, 0, rerr
	}
	if !rhit {
		if perr != nil {
			return nil, 0, perr
		}
		return nil, 0, mcclient.ErrCacheMiss
	}
	c.Stats.ReplicaHits++
	if perr == nil {
		// Primary is alive but missed: repair it. Add (store-if-absent)
		// keeps a concurrent newer Set from being overwritten.
		c.Stats.Repairs++
		c.storeTo(primary, memcached.StoreOpAdd, key, rfl, 0, rv, true)
	}
	return rv, rfl, nil
}

// getFrom runs one get against one owner with retry.
func (c *FleetClient) getFrom(owner, key string) (value []byte, flags uint32, hit bool, err error) {
	tr, cerr := c.conn(owner)
	if cerr != nil {
		c.Stats.Downs++
		return nil, 0, false, cerr
	}
	err = c.retry(func() error {
		var e error
		value, flags, _, hit, e = tr.Get(c.Clock, key)
		return e
	})
	if err == mcclient.ErrServerDown {
		c.Stats.Downs++
		c.dropConn(owner)
	}
	return value, flags, hit, err
}

// Delete removes the key from all R owners. Found if any owner had it.
func (c *FleetClient) Delete(key string) (bool, error) {
	c.Stats.Ops++
	owners := c.owners(key)
	if len(owners) == 0 {
		return false, mcclient.ErrNoServers
	}
	var found bool
	var firstErr error
	for _, o := range owners {
		tr, err := c.conn(o)
		if err != nil {
			c.Stats.Downs++
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		var ok bool
		err = c.retry(func() error {
			var e error
			ok, e = tr.Delete(c.Clock, key)
			return e
		})
		if err != nil {
			if err == mcclient.ErrServerDown {
				c.Stats.Downs++
				c.dropConn(o)
			}
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		found = found || ok
	}
	return found, firstErr
}

// FleetGetResult is one key's outcome from GetBurst.
type FleetGetResult struct {
	Value []byte
	Hit   bool
	Err   error
}

// GetBurst pipelines gets for a key batch: keys are grouped by primary
// owner, each group travels through one pipelined window, and primary
// misses/failures take the blocking replica fallthrough (with read
// repair) afterwards. Results align with keys.
func (c *FleetClient) GetBurst(keys []string, window int) []FleetGetResult {
	out := make([]FleetGetResult, len(keys))
	groups := make(map[string][]int)
	var order []string
	for i, k := range keys {
		c.Stats.Ops++
		owners := c.owners(k)
		if len(owners) == 0 {
			out[i] = FleetGetResult{Err: mcclient.ErrNoServers}
			continue
		}
		p := owners[0]
		if _, seen := groups[p]; !seen {
			order = append(order, p)
		}
		groups[p] = append(groups[p], i)
	}
	for _, primary := range order {
		idxs := groups[primary]
		tr, err := c.conn(primary)
		switch {
		case err != nil:
			// Dead primary: every key takes the fallthrough path below.
			c.Stats.Downs++
			for _, i := range idxs {
				out[i] = FleetGetResult{Err: mcclient.ErrServerDown}
			}
		default:
			pl, can := tr.(mcclient.Pipeliner)
			if !can {
				// Unpipelined transport: blocking primary reads.
				for _, i := range idxs {
					v, _, hit, e := c.getFrom(primary, keys[i])
					out[i] = FleetGetResult{Value: v, Hit: hit, Err: e}
				}
				break
			}
			p := pl.Pipeline(window)
			futs := make([]*mcclient.GetFuture, len(idxs))
			for j, i := range idxs {
				futs[j] = p.StartGet(c.Clock, keys[i])
			}
			// Wait settles every future even if the server dies mid-burst
			// (already-served replies keep their values; the rest fail
			// with ErrServerDown).
			_ = p.Wait(c.Clock)
			for j, i := range idxs {
				v, _, _, ok, e := futs[j].Wait(c.Clock)
				out[i] = FleetGetResult{Value: v, Hit: ok, Err: e}
				if e == mcclient.ErrServerDown {
					c.Stats.Downs++
				}
			}
			if anyDown(out, idxs) {
				c.dropConn(primary)
			}
		}
		// Fallthrough pass: primary miss or failure consults the replica
		// via the blocking path (which also repairs).
		for _, i := range idxs {
			if out[i].Err == nil && out[i].Hit {
				c.Stats.PrimaryHits++
				continue
			}
			v, _, e := c.fallthroughGet(keys[i], out[i].Err)
			if e == nil {
				out[i] = FleetGetResult{Value: v, Hit: true}
			} else {
				out[i] = FleetGetResult{Err: e}
			}
		}
	}
	return out
}

func anyDown(out []FleetGetResult, idxs []int) bool {
	for _, i := range idxs {
		if out[i].Err == mcclient.ErrServerDown {
			return true
		}
	}
	return false
}

// fallthroughGet consults the replica after a primary miss/failure
// (perr is the primary's error, nil for a plain miss) and repairs a
// live primary on a replica hit.
func (c *FleetClient) fallthroughGet(key string, perr error) (value []byte, flags uint32, err error) {
	owners := c.owners(key)
	if len(owners) < 2 {
		if perr != nil {
			return nil, 0, perr
		}
		return nil, 0, mcclient.ErrCacheMiss
	}
	c.Stats.Fallthroughs++
	rv, rfl, rhit, rerr := c.getFrom(owners[1], key)
	if rerr != nil || !rhit {
		if perr != nil {
			return nil, 0, perr
		}
		if rerr != nil {
			return nil, 0, rerr
		}
		return nil, 0, mcclient.ErrCacheMiss
	}
	c.Stats.ReplicaHits++
	if perr == nil {
		c.Stats.Repairs++
		c.storeTo(owners[0], memcached.StoreOpAdd, key, rfl, 0, rv, true)
	}
	return rv, rfl, nil
}

// DirectGet reads a key from one named member, bypassing the ring —
// the memcheck fleet epilogue probes every live server's actual
// holdings this way to compare against the per-server reference model.
func (c *FleetClient) DirectGet(server, key string) (value []byte, hit bool, err error) {
	tr, cerr := c.conn(server)
	if cerr != nil {
		return nil, false, cerr
	}
	err = c.retry(func() error {
		var e error
		value, _, _, hit, e = tr.Get(c.Clock, key)
		return e
	})
	return value, hit, err
}

// Close tears the client's connections down.
func (c *FleetClient) Close() {
	for _, tr := range c.conns {
		tr.Close()
	}
	c.conns = nil
	if c.ctx != nil {
		c.ctx.Destroy()
	}
}

// Close shuts every live member down.
func (f *Fleet) Close() {
	f.mu.Lock()
	members := make([]*fleetMember, 0, len(f.members))
	for _, m := range f.members {
		members = append(members, m)
	}
	f.members = make(map[string]*fleetMember)
	f.mu.Unlock()
	for _, m := range members {
		m.srv.Close()
	}
}

package cluster

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/mcclient"
	"repro/internal/simnet"
)

func newTestFleet(t *testing.T, tr Transport, servers int) *Fleet {
	t.Helper()
	f, err := NewFleet(ClusterB(), FleetOptions{
		Transport: tr,
		Servers:   servers,
		Seed:      11,
		Opts: Options{
			ServerWorkers: 2,
			Stripes:       4,
			MemoryLimit:   32 << 20,
		},
	})
	if err != nil {
		t.Fatalf("NewFleet: %v", err)
	}
	return f
}

// R=2 write-through: both owners hold every set; a graceful primary
// departure leaves the replica serving; a join taking over the primary
// arc gets read-repaired on the first fallthrough.
func TestFleetReplicationAndRepair(t *testing.T) {
	f := newTestFleet(t, UCRIB, 4)
	defer f.Close()
	fc, err := f.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	defer fc.Close()

	keys := make([]string, 12)
	for i := range keys {
		keys[i] = fmt.Sprintf("rep-key-%d", i)
		if err := fc.Set(keys[i], []byte("v-"+keys[i]), 0, 0); err != nil {
			t.Fatalf("Set %s: %v", keys[i], err)
		}
	}
	// Both owners hold every key.
	for _, k := range keys {
		owners := f.Owners(k)
		if len(owners) != 2 {
			t.Fatalf("Owners(%s) = %v", k, owners)
		}
		for _, o := range owners {
			v, hit, err := fc.DirectGet(o, k)
			if err != nil || !hit || string(v) != "v-"+k {
				t.Fatalf("owner %s of %s: v=%q hit=%v err=%v", o, k, v, hit, err)
			}
		}
	}

	// Graceful leave of one key's primary: the replica answers.
	victimKey := keys[0]
	before := f.Owners(victimKey)
	if !f.Leave(before[0]) {
		t.Fatalf("Leave(%s) found nothing", before[0])
	}
	v, _, err := fc.Get(victimKey)
	if err != nil || string(v) != "v-"+victimKey {
		t.Fatalf("get after primary leave: v=%q err=%v", v, err)
	}
	// No fallthrough needed: the old replica is the new primary and
	// already holds the key from the write-through — that's the R=2
	// design working, not a gap in the test.
	if fc.Stats.Fallthroughs != 0 {
		t.Fatalf("unexpected fallthroughs after graceful leave: %d", fc.Stats.Fallthroughs)
	}

	// Join: a fresh server takes over some arcs; keys whose primary
	// moved miss on it, fall through to the old primary (now successor),
	// and get repaired.
	pre := f.RingSnapshot()
	joined := f.Join()
	post := f.RingSnapshot()
	if frac := post.MovedFraction(pre); frac <= 0 {
		t.Fatalf("join moved no keyspace (%v)", frac)
	}
	repairsBefore := fc.Stats.Repairs
	var movedKey string
	for _, k := range keys[1:] {
		if f.Owners(k)[0] == joined {
			movedKey = k
			break
		}
	}
	if movedKey == "" {
		t.Skip("no test key landed on the joiner (layout-dependent); movement verified by arc fraction")
	}
	v, _, err = fc.Get(movedKey)
	if err != nil || string(v) != "v-"+movedKey {
		t.Fatalf("get of moved key: v=%q err=%v", v, err)
	}
	if fc.Stats.Repairs != repairsBefore+1 {
		t.Fatalf("expected one read repair, repairs %d → %d", repairsBefore, fc.Stats.Repairs)
	}
	// The repair landed: the joiner now holds the key.
	if v, hit, err := fc.DirectGet(joined, movedKey); err != nil || !hit || string(v) != "v-"+movedKey {
		t.Fatalf("joiner after repair: v=%q hit=%v err=%v", v, hit, err)
	}
}

// A crash mid-pipelined-burst during a rebalance must settle every
// future — a served value or a clean ErrServerDown, nothing hangs — and
// the replica (the post-crash primary) must then serve every key.
func TestFleetCrashMidBurst(t *testing.T) {
	f := newTestFleet(t, UCRIB, 4)
	defer f.Close()
	fc, err := f.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	defer fc.Close()

	// Find a batch of keys sharing one primary so a single pipelined
	// window covers them all.
	victim := f.Members()[0]
	var keys []string
	for i := 0; len(keys) < 8 && i < 4096; i++ {
		k := fmt.Sprintf("burst-key-%d", i)
		if f.Owners(k)[0] == victim {
			keys = append(keys, k)
		}
	}
	if len(keys) < 8 {
		t.Fatalf("could not find 8 keys owned by %s", victim)
	}
	for _, k := range keys {
		if err := fc.Set(k, []byte("v-"+k), 0, 0); err != nil {
			t.Fatalf("warm %s: %v", k, err)
		}
	}

	// Open a pipelined window against the primary, then crash it with
	// the burst outstanding.
	tr, err := fc.conn(victim)
	if err != nil {
		t.Fatal(err)
	}
	pl := tr.(mcclient.Pipeliner).Pipeline(len(keys))
	futs := make([]*mcclient.GetFuture, len(keys))
	for i, k := range keys {
		futs[i] = pl.StartGet(fc.Clock, k)
	}
	if !f.Crash(victim) {
		t.Fatalf("Crash(%s) found nothing", victim)
	}
	_ = pl.Wait(fc.Clock) // must return, not hang
	for i, fu := range futs {
		v, _, _, ok, err := fu.Wait(fc.Clock)
		switch {
		case err == nil && ok && string(v) == "v-"+keys[i]:
		case err == mcclient.ErrServerDown:
		case err == nil && !ok:
			// Served before the store vanished underneath: treat like a
			// down primary; the fallthrough below recovers it.
		default:
			t.Fatalf("future %d: v=%q ok=%v err=%v", i, v, ok, err)
		}
	}
	fc.dropConn(victim)

	// Rebalance happened atomically with the crash: every key's new
	// primary is the old replica and serves the value.
	for _, k := range keys {
		if f.Owners(k)[0] == victim {
			t.Fatalf("crashed server still owns %s", k)
		}
		v, _, err := fc.Get(k)
		if err != nil || string(v) != "v-"+k {
			t.Fatalf("get %s after crash: v=%q err=%v", k, v, err)
		}
	}
}

// GetBurst's own mid-flight behavior: results align with keys and every
// entry is value-or-clean-error even when churn lands between bursts.
func TestFleetGetBurst(t *testing.T) {
	f := newTestFleet(t, UCRIB, 4)
	defer f.Close()
	fc, err := f.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	defer fc.Close()

	var keys []string
	for i := 0; i < 24; i++ {
		k := fmt.Sprintf("gb-key-%d", i)
		keys = append(keys, k)
		if err := fc.Set(k, []byte("v-"+k), 0, 0); err != nil {
			t.Fatal(err)
		}
	}
	res := fc.GetBurst(keys, 8)
	for i, r := range res {
		if r.Err != nil || !r.Hit || string(r.Value) != "v-"+keys[i] {
			t.Fatalf("burst[%d]: %+v", i, r)
		}
	}
	// Leave one server; the burst still answers everything (replica
	// fallthrough + repair for moved keys).
	f.Leave(f.Members()[0])
	res = fc.GetBurst(keys, 8)
	for i, r := range res {
		if r.Err != nil || !r.Hit || string(r.Value) != "v-"+keys[i] {
			t.Fatalf("post-leave burst[%d]: %+v", i, r)
		}
	}
}

// Race stress: concurrent churn (join, leave, crash) against live
// traffic on both transports. Every op must settle with a value or a
// tolerated error; run under -race this also proves the fleet's locking
// story (ring swaps, Deployment.AddServer mid-traffic, lazy dials racing
// partitions).
func TestFleetChurnRaceStress(t *testing.T) {
	for _, tr := range []Transport{UCRIB, IPoIB} {
		tr := tr
		t.Run(string(tr), func(t *testing.T) {
			f, err := NewFleet(ClusterB(), FleetOptions{
				Transport: tr,
				Servers:   5,
				Seed:      23,
				Behaviors: mcclient.Behaviors{
					// Bounded ops even when a partition eats a request
					// that the RC retry budget alone would not settle
					// quickly: churn makes ErrServerDown a tolerated
					// outcome here, unlike the clean single-server suites.
					OpTimeout: 20 * simnet.Millisecond,
					Retries:   1,
				},
				Opts: Options{ServerWorkers: 2, Stripes: 4, MemoryLimit: 32 << 20},
			})
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()

			const clients = 6
			const opsPerClient = 40
			var ok64, down64 uint64
			var wg sync.WaitGroup
			for ci := 0; ci < clients; ci++ {
				fc, err := f.NewClient()
				if err != nil {
					t.Fatal(err)
				}
				wg.Add(1)
				go func(ci int, fc *FleetClient) {
					defer wg.Done()
					defer fc.Close()
					for op := 0; op < opsPerClient; op++ {
						k := fmt.Sprintf("rs-%d-%d", ci, op%7)
						v := []byte(fmt.Sprintf("v-%d-%d", ci, op))
						if err := fc.Set(k, v, 0, 0); err != nil {
							if err != mcclient.ErrServerDown {
								t.Errorf("client %d set: %v", ci, err)
								return
							}
							atomic.AddUint64(&down64, 1)
							continue
						}
						got, _, err := fc.Get(k)
						switch err {
						case nil:
							// A concurrent crash can strand the freshest
							// write on the dead primary, so an older value
							// of OUR OWN key is acceptable; foreign data is
							// not.
							if len(got) < 3 || string(got[:2]) != "v-" {
								t.Errorf("client %d got foreign value %q for %s", ci, got, k)
								return
							}
							atomic.AddUint64(&ok64, 1)
						case mcclient.ErrServerDown, mcclient.ErrCacheMiss:
							atomic.AddUint64(&down64, 1)
						default:
							t.Errorf("client %d get: %v", ci, err)
							return
						}
					}
				}(ci, fc)
			}

			// Churn driver: joins, graceful leaves, and crashes while the
			// traffic runs.
			wg.Add(1)
			go func() {
				defer wg.Done()
				for round := 0; round < 6; round++ {
					switch round % 3 {
					case 0:
						f.Join()
					case 1:
						if ms := f.Members(); len(ms) > 3 {
							f.Leave(ms[round%len(ms)])
						}
					case 2:
						if ms := f.Members(); len(ms) > 3 {
							f.Crash(ms[round%len(ms)])
						}
					}
				}
			}()
			wg.Wait()

			if ok64 == 0 {
				t.Fatal("no operation succeeded under churn")
			}
			joins, leaves, crashes := f.ChurnCounts()
			if joins == 0 || leaves+crashes == 0 {
				t.Fatalf("churn did not run: joins=%d leaves=%d crashes=%d", joins, leaves, crashes)
			}
			t.Logf("%s: ok=%d tolerated=%d joins=%d leaves=%d crashes=%d",
				tr, ok64, down64, joins, leaves, crashes)
		})
	}
}

// Package cluster assembles simulated deployments that mirror the
// paper's two testbeds and wires Memcached servers and clients over any
// of the evaluated transports.
//
//   - Cluster A — Intel Clovertown: ConnectX DDR HCAs (16 Gb/s data
//     rate) on a Silverstorm DDR switch, Chelsio T320 10GigE with TOE on
//     a Fulcrum switch, plus 1GigE.
//   - Cluster B — Intel Westmere: ConnectX QDR HCAs (32 Gb/s data rate)
//     on a Mellanox QDR switch. No 10GigE cards (§VI-B).
//
// All cost-model constants for the verbs layer, the socket providers
// and the server live here, so calibration against the paper's figures
// is a single-file affair.
package cluster

import (
	"repro/internal/simnet"
	"repro/internal/sockstream"
	"repro/internal/ucr"
	"repro/internal/verbs"
)

// Transport names one evaluated network path, in the paper's legend.
type Transport string

// The paper's transport legend.
const (
	// UCRIB is the paper's design: Memcached over UCR over IB verbs.
	UCRIB Transport = "UCR-IB"
	// IPoIB is sockets over the IP-over-InfiniBand driver (connected
	// mode), no OS bypass (§II-A2).
	IPoIB Transport = "IPoIB"
	// SDP is the Sockets Direct Protocol, buffered (bcopy) mode — the
	// paper turns zero-copy off because it breaks non-blocking sockets
	// (§VI).
	SDP Transport = "SDP"
	// TOE10G is 10 Gigabit Ethernet with hardware TCP offload.
	TOE10G Transport = "10GigE-TOE"
	// TCP1G is plain kernel TCP over 1 Gigabit Ethernet.
	TCP1G Transport = "1GigE"
)

// Profile is one testbed's parameter set.
type Profile struct {
	// Name is "A" or "B".
	Name string
	// Transports lists the paths available on this cluster.
	Transports []Transport

	// IB fabric (always present).
	IB simnet.FabricSpec
	// HCA is the ConnectX generation's cost model.
	HCA verbs.Config
	// UCR tunes the runtime on this cluster.
	UCR ucr.Config

	// Eth10G / Eth1G are present when the cluster has those NICs.
	Eth10G *simnet.FabricSpec
	Eth1G  *simnet.FabricSpec

	// Socket provider cost models (nil when absent on the cluster).
	IPoIBModel  *sockstream.Provider
	SDPModel    *sockstream.Provider
	TOE10GModel *sockstream.Provider
	TCP1GModel  *sockstream.Provider
}

// HasTransport reports whether the profile supports t.
func (p *Profile) HasTransport(t Transport) bool {
	for _, x := range p.Transports {
		if x == t {
			return true
		}
	}
	return false
}

// us is shorthand for microseconds in the parameter tables.
const us = simnet.Microsecond

// ClusterA is the Intel Clovertown testbed: ConnectX DDR + 10GigE TOE +
// 1GigE (§VI-A).
func ClusterA() *Profile {
	p := &Profile{
		Name:       "A",
		Transports: []Transport{UCRIB, IPoIB, SDP, TOE10G, TCP1G},
		IB: simnet.FabricSpec{
			Name:            "ib",
			LinkBytesPerSec: 2.0e9, // DDR: 16 Gb/s data rate
			Propagation:     300,
			SwitchDelay:     200,
			MTU:             2048,
		},
		HCA: verbs.Config{
			PostOverhead:      120,
			SendProc:          1200,
			RecvProc:          1200,
			RDMAProc:          1300,
			PollOverhead:      400,
			InterruptOverhead: 4 * us,
			RegBase:           1500,
			RegPerByte:        0.05,
			HeaderBytes:       30,
			MTU:               2048,
			InlineMax:         128,
			RetryCount:        7,
			AckTimeout:        12 * us,
			RNRRetry:          6,
			RNRTimer:          20 * us,
		},
		UCR: ucr.Config{
			EagerThreshold:  8192,
			Credits:         64,
			PackBytesPerSec: 4e9,
			HandlerOverhead: 400,
			AMRetries:       3,
		},
	}
	eth10 := simnet.FabricSpec{
		Name:            "eth10g",
		LinkBytesPerSec: 1.25e9, // 10 Gb/s
		Propagation:     500,
		SwitchDelay:     800,
		MTU:             9000,
	}
	eth1 := simnet.FabricSpec{
		Name:            "eth1g",
		LinkBytesPerSec: 0.125e9, // 1 Gb/s
		Propagation:     2 * us,
		SwitchDelay:     5 * us,
		MTU:             1500,
	}
	p.Eth10G, p.Eth1G = &eth10, &eth1

	p.IPoIBModel = &sockstream.Provider{
		Name:            string(IPoIB),
		RTOMin:          200 * simnet.Millisecond,
		SendSyscall:     9 * us,
		SendDeferred:    7 * us,
		RecvSyscall:     13 * us,
		RecvDeferred:    11 * us,
		SendCopies:      2,
		RecvCopies:      2,
		CopyBytesPerSec: 0.8e9,
		SegmentSize:     16384, // IPoIB-CM large MTU
		PerSegment:      3 * us,
		WireHeader:      58,
		ConnSetup:       30 * us,
		NagleDelay:      40 * us,
	}
	p.SDPModel = &sockstream.Provider{
		Name:            string(SDP),
		RTOMin:          2 * simnet.Millisecond,
		SendSyscall:     8 * us,
		SendDeferred:    6 * us,
		RecvSyscall:     12 * us,
		RecvDeferred:    10 * us,
		SendCopies:      1, // bcopy mode: one private-buffer copy per side
		RecvCopies:      1,
		CopyBytesPerSec: 0.6e9,
		SegmentSize:     8192, // SDP private buffer size
		PerSegment:      4 * us,
		WireHeader:      50,
		ConnSetup:       50 * us,
		NagleDelay:      40 * us,
	}
	p.TOE10GModel = &sockstream.Provider{
		Name:            string(TOE10G),
		RTOMin:          50 * simnet.Millisecond,
		SendSyscall:     7 * us,
		SendDeferred:    2 * us,
		RecvSyscall:     10 * us,
		RecvDeferred:    3 * us,
		SendCopies:      1,
		RecvCopies:      1,
		CopyBytesPerSec: 0.5e9,
		SegmentSize:     8948,
		PerSegment:      4 * us,
		WireHeader:      66,
		ConnSetup:       40 * us,
		NagleDelay:      40 * us,
	}
	p.TCP1GModel = &sockstream.Provider{
		Name:            string(TCP1G),
		RTOMin:          200 * simnet.Millisecond,
		SendSyscall:     9 * us,
		SendDeferred:    4 * us,
		RecvSyscall:     14 * us,
		RecvDeferred:    6 * us,
		SendCopies:      2,
		RecvCopies:      2,
		CopyBytesPerSec: 2.5e9,
		SegmentSize:     1460,
		PerSegment:      1500,
		WireHeader:      66,
		ConnSetup:       60 * us,
		NagleDelay:      40 * us,
	}
	return p
}

// ClusterB is the Intel Westmere testbed: ConnectX QDR only (§VI-A).
// The paper observed unexplained jitter with SDP on these adapters
// ("an implementation artifact of SDP on QDR"); the SDP model includes
// a matching deterministic jitter source.
func ClusterB() *Profile {
	p := &Profile{
		Name:       "B",
		Transports: []Transport{UCRIB, IPoIB, SDP},
		IB: simnet.FabricSpec{
			Name:            "ib",
			LinkBytesPerSec: 4.0e9, // QDR: 32 Gb/s data rate
			Propagation:     250,
			SwitchDelay:     100,
			MTU:             2048,
		},
		HCA: verbs.Config{
			PostOverhead:      100,
			SendProc:          550,
			RecvProc:          550,
			RDMAProc:          650,
			PollOverhead:      250,
			InterruptOverhead: 3 * us,
			RegBase:           1200,
			RegPerByte:        0.04,
			HeaderBytes:       30,
			MTU:               2048,
			InlineMax:         128,
			RetryCount:        7,
			AckTimeout:        8 * us,
			RNRRetry:          6,
			RNRTimer:          16 * us,
		},
		UCR: ucr.Config{
			EagerThreshold:  8192,
			Credits:         64,
			PackBytesPerSec: 5e9,
			HandlerOverhead: 300,
			AMRetries:       3,
		},
	}
	p.IPoIBModel = &sockstream.Provider{
		Name:            string(IPoIB),
		RTOMin:          200 * simnet.Millisecond,
		SendSyscall:     4 * us,
		SendDeferred:    6 * us,
		RecvSyscall:     5 * us,
		RecvDeferred:    9 * us,
		SendCopies:      2,
		RecvCopies:      2,
		CopyBytesPerSec: 2e9,
		SegmentSize:     16384,
		PerSegment:      3 * us,
		WireHeader:      58,
		ConnSetup:       30 * us,
		NagleDelay:      40 * us,
	}
	p.SDPModel = &sockstream.Provider{
		Name:            string(SDP),
		RTOMin:          2 * simnet.Millisecond,
		SendSyscall:     3 * us,
		SendDeferred:    6 * us,
		RecvSyscall:     5 * us,
		RecvDeferred:    9 * us,
		SendCopies:      1,
		RecvCopies:      1,
		CopyBytesPerSec: 1.0e9,
		SegmentSize:     8192,
		PerSegment:      4 * us,
		WireHeader:      50,
		ConnSetup:       50 * us,
		NagleDelay:      40 * us,
		// The QDR-SDP jitter the paper could not eliminate even with
		// 10,000-sample runs (§VI-B): occasional multi-10µs stalls.
		Jitter: func(r *simnet.Rand) simnet.Duration {
			if r.Intn(8) == 0 {
				return r.Duration(60 * us)
			}
			return r.Duration(3 * us)
		},
	}
	return p
}

// ProfileByName returns the profile for "A" or "B".
func ProfileByName(name string) *Profile {
	if name == "B" {
		return ClusterB()
	}
	return ClusterA()
}

// LossyFaults builds the fault-sweep injector configuration: a seeded,
// per-pair deterministic drop stream at dropPct percent loss. The same
// (dropPct, seed) always yields the same verdict sequence, so sweeps
// are reproducible run to run.
func LossyFaults(dropPct float64, seed uint64) *simnet.FaultConfig {
	return &simnet.FaultConfig{Seed: seed, DropRate: dropPct / 100}
}

package cluster

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/mcclient"
	"repro/internal/simnet"
)

// allTransports runs f once per transport available on the profile.
func allTransports(t *testing.T, p *Profile, f func(t *testing.T, d *Deployment, c *Client)) {
	t.Helper()
	for _, tr := range p.Transports {
		tr := tr
		t.Run(string(tr), func(t *testing.T) {
			d := New(p, Options{})
			defer d.Close()
			c, err := d.NewClient(tr, mcclient.DefaultBehaviors())
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			f(t, d, c)
		})
	}
}

func TestSetGetAllTransportsClusterA(t *testing.T) {
	allTransports(t, ClusterA(), func(t *testing.T, d *Deployment, c *Client) {
		testSetGetRoundtrip(t, c)
	})
}

func TestSetGetAllTransportsClusterB(t *testing.T) {
	allTransports(t, ClusterB(), func(t *testing.T, d *Deployment, c *Client) {
		testSetGetRoundtrip(t, c)
	})
}

func testSetGetRoundtrip(t *testing.T, c *Client) {
	t.Helper()
	for _, size := range []int{1, 64, 4096, 8192, 65536} {
		key := fmt.Sprintf("key-%d", size)
		val := bytes.Repeat([]byte{byte(size)}, size)
		for i := range val {
			val[i] = byte(i*7 + size)
		}
		if err := c.MC.Set(key, val, uint32(size), 0); err != nil {
			t.Fatalf("Set %d: %v", size, err)
		}
		got, flags, _, err := c.MC.Get(key)
		if err != nil {
			t.Fatalf("Get %d: %v", size, err)
		}
		if !bytes.Equal(got, val) {
			t.Fatalf("size %d: value corrupted in transit", size)
		}
		if flags != uint32(size) {
			t.Fatalf("size %d: flags = %d", size, flags)
		}
	}
	if _, _, _, err := c.MC.Get("never-set"); err != mcclient.ErrCacheMiss {
		t.Fatalf("miss err = %v", err)
	}
	if c.Clock.Now() == 0 {
		t.Fatal("client clock never advanced")
	}
}

func TestDeleteIncrDecrOverUCRAndSockets(t *testing.T) {
	for _, tr := range []Transport{UCRIB, IPoIB} {
		tr := tr
		t.Run(string(tr), func(t *testing.T) {
			d := New(ClusterA(), Options{})
			defer d.Close()
			c, err := d.NewClient(tr, mcclient.DefaultBehaviors())
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()

			if err := c.MC.Set("counter", []byte("100"), 0, 0); err != nil {
				t.Fatal(err)
			}
			if v, err := c.MC.Incr("counter", 20); err != nil || v != 120 {
				t.Fatalf("Incr = (%d, %v)", v, err)
			}
			if v, err := c.MC.Decr("counter", 1000); err != nil || v != 0 {
				t.Fatalf("Decr = (%d, %v)", v, err)
			}
			if _, err := c.MC.Incr("missing", 1); err != mcclient.ErrCacheMiss {
				t.Fatalf("Incr missing = %v", err)
			}
			if err := c.MC.Set("text", []byte("abc"), 0, 0); err != nil {
				t.Fatal(err)
			}
			if _, err := c.MC.Incr("text", 1); err != mcclient.ErrBadValue {
				t.Fatalf("Incr non-numeric = %v", err)
			}
			if err := c.MC.Delete("counter"); err != nil {
				t.Fatal(err)
			}
			if err := c.MC.Delete("counter"); err != mcclient.ErrCacheMiss {
				t.Fatalf("double delete = %v", err)
			}
		})
	}
}

func TestUCRLargeValuesUseRDMA(t *testing.T) {
	d := New(ClusterA(), Options{})
	defer d.Close()
	c, err := d.NewClient(UCRIB, mcclient.DefaultBehaviors())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	val := make([]byte, 512*1024)
	for i := range val {
		val[i] = byte(i % 251)
	}
	if err := c.MC.Set("big", val, 0, 0); err != nil {
		t.Fatal(err)
	}
	got, _, _, err := c.MC.Get("big")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, val) {
		t.Fatal("512 KB value corrupted")
	}
}

func TestMultipleClientsSharedServer(t *testing.T) {
	d := New(ClusterB(), Options{})
	defer d.Close()
	const n = 8
	clients := make([]*Client, n)
	for i := range clients {
		c, err := d.NewClient(UCRIB, mcclient.DefaultBehaviors())
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		clients[i] = c
	}
	// Concurrent closed-loop traffic from all clients.
	done := make(chan error, n)
	for i, c := range clients {
		go func(i int, c *Client) {
			for op := 0; op < 50; op++ {
				key := fmt.Sprintf("c%d-k%d", i, op)
				if err := c.MC.Set(key, []byte(key), 0, 0); err != nil {
					done <- err
					return
				}
				v, _, _, err := c.MC.Get(key)
				if err != nil {
					done <- err
					return
				}
				if string(v) != key {
					done <- fmt.Errorf("value mismatch for %s", key)
					return
				}
			}
			done <- nil
		}(i, c)
	}
	for range clients {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if got := d.Server.OpsServed.Load(); got != n*100 {
		t.Fatalf("OpsServed = %d, want %d", got, n*100)
	}
}

func TestMixedTransportsOneServer(t *testing.T) {
	// The paper's compatibility goal (§V-A): sockets clients and UCR
	// clients served by the same process, seeing the same data.
	d := New(ClusterA(), Options{})
	defer d.Close()
	ucrCli, err := d.NewClient(UCRIB, mcclient.DefaultBehaviors())
	if err != nil {
		t.Fatal(err)
	}
	defer ucrCli.Close()
	sockCli, err := d.NewClient(TOE10G, mcclient.DefaultBehaviors())
	if err != nil {
		t.Fatal(err)
	}
	defer sockCli.Close()

	if err := ucrCli.MC.Set("shared", []byte("written-via-ucr"), 0, 0); err != nil {
		t.Fatal(err)
	}
	v, _, _, err := sockCli.MC.Get("shared")
	if err != nil || string(v) != "written-via-ucr" {
		t.Fatalf("sockets client read = (%q, %v)", v, err)
	}
	if err := sockCli.MC.Set("shared", []byte("updated-via-sockets"), 0, 0); err != nil {
		t.Fatal(err)
	}
	v2, _, _, err := ucrCli.MC.Get("shared")
	if err != nil || string(v2) != "updated-via-sockets" {
		t.Fatalf("ucr client read = (%q, %v)", v2, err)
	}
}

func TestUCRFasterThanSockets(t *testing.T) {
	// The paper's headline: the UCR design beats every sockets path.
	// Run the same closed loop per transport and compare mean latency.
	lat := map[Transport]simnet.Time{}
	for _, tr := range []Transport{UCRIB, IPoIB, SDP, TOE10G} {
		d := New(ClusterA(), Options{})
		c, err := d.NewClient(tr, mcclient.DefaultBehaviors())
		if err != nil {
			t.Fatal(err)
		}
		val := bytes.Repeat([]byte("v"), 4096)
		if err := c.MC.Set("k", val, 0, 0); err != nil {
			t.Fatal(err)
		}
		start := c.Clock.Now()
		const ops = 50
		for i := 0; i < ops; i++ {
			if _, _, _, err := c.MC.Get("k"); err != nil {
				t.Fatal(err)
			}
		}
		lat[tr] = (c.Clock.Now() - start) / ops
		c.Close()
		d.Close()
	}
	for _, tr := range []Transport{IPoIB, SDP, TOE10G} {
		if lat[UCRIB] >= lat[tr] {
			t.Errorf("UCR (%v) not faster than %s (%v)", lat[UCRIB], tr, lat[tr])
		}
	}
	t.Logf("4KB get latency: UCR=%v IPoIB=%v SDP=%v TOE=%v",
		lat[UCRIB], lat[IPoIB], lat[SDP], lat[TOE10G])
}

func TestExpiryAcrossTransport(t *testing.T) {
	d := New(ClusterA(), Options{})
	defer d.Close()
	c, err := d.NewClient(UCRIB, mcclient.DefaultBehaviors())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// 1-second expiry; virtual clocks move in µs here, so jump ahead.
	if err := c.MC.Set("ephemeral", []byte("v"), 0, 1); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := c.MC.Get("ephemeral"); err != nil {
		t.Fatalf("fresh item missing: %v", err)
	}
	c.Clock.Advance(2 * simnet.Second)
	if _, _, _, err := c.MC.Get("ephemeral"); err != mcclient.ErrCacheMiss {
		t.Fatalf("expired item: err = %v", err)
	}
}

func TestProfileShape(t *testing.T) {
	a, b := ClusterA(), ClusterB()
	if !a.HasTransport(TOE10G) || b.HasTransport(TOE10G) {
		t.Fatal("10GigE present on wrong cluster (paper: no 10GigE on B)")
	}
	if b.IB.LinkBytesPerSec <= a.IB.LinkBytesPerSec {
		t.Fatal("QDR should be faster than DDR")
	}
	if b.SDPModel.Jitter == nil || (a.SDPModel.Jitter != nil) {
		t.Fatal("SDP jitter belongs to cluster B only")
	}
	if ProfileByName("A").Name != "A" || ProfileByName("B").Name != "B" {
		t.Fatal("ProfileByName")
	}
}

func TestClientRejectsUnavailableTransport(t *testing.T) {
	d := New(ClusterB(), Options{})
	defer d.Close()
	if _, err := d.NewClient(TOE10G, mcclient.DefaultBehaviors()); err == nil {
		t.Fatal("cluster B should not offer 10GigE")
	}
}

func TestWorkerRoundRobin(t *testing.T) {
	d := New(ClusterA(), Options{ServerWorkers: 4})
	defer d.Close()
	// More clients than workers; every worker should see traffic.
	var clients []*Client
	for i := 0; i < 8; i++ {
		c, err := d.NewClient(UCRIB, mcclient.DefaultBehaviors())
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		clients = append(clients, c)
	}
	for i, c := range clients {
		if err := c.MC.Set(fmt.Sprintf("k%d", i), []byte("v"), 0, 0); err != nil {
			t.Fatal(err)
		}
	}
	busy := 0
	for _, clk := range d.Server.WorkerClocks() {
		if clk > 0 {
			busy++
		}
	}
	if busy != 4 {
		t.Fatalf("busy workers = %d, want 4 (round-robin)", busy)
	}
}

func TestGetMultiBatchedOverUCRAndSockets(t *testing.T) {
	for _, tr := range []Transport{UCRIB, TOE10G} {
		tr := tr
		t.Run(string(tr), func(t *testing.T) {
			d := New(ClusterA(), Options{})
			defer d.Close()
			c, err := d.NewClient(tr, mcclient.DefaultBehaviors())
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			keys := make([]string, 20)
			for i := range keys {
				keys[i] = fmt.Sprintf("batch-%02d", i)
				val := bytes.Repeat([]byte{byte(i)}, 100+i)
				if err := c.MC.Set(keys[i], val, uint32(i), 0); err != nil {
					t.Fatal(err)
				}
			}
			got, err := c.MC.GetMulti(append(keys, "not-there"))
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(keys) {
				t.Fatalf("GetMulti returned %d of %d", len(got), len(keys))
			}
			for i, k := range keys {
				want := bytes.Repeat([]byte{byte(i)}, 100+i)
				if !bytes.Equal(got[k], want) {
					t.Fatalf("value for %s corrupted", k)
				}
			}
			if _, hit := got["not-there"]; hit {
				t.Fatal("missing key present in result")
			}
		})
	}
}

func TestGetMultiLargeAggregateUCR(t *testing.T) {
	// A batch whose concatenated values exceed the eager threshold must
	// come back via one client RDMA read (rendezvous) and stay intact.
	d := New(ClusterB(), Options{})
	defer d.Close()
	c, err := d.NewClient(UCRIB, mcclient.DefaultBehaviors())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	keys := make([]string, 8)
	for i := range keys {
		keys[i] = fmt.Sprintf("big-%d", i)
		val := bytes.Repeat([]byte{byte(i + 1)}, 4096)
		if err := c.MC.Set(keys[i], val, 0, 0); err != nil {
			t.Fatal(err)
		}
	}
	got, err := c.MC.GetMulti(keys) // 32 KB aggregate > 8 KB threshold
	if err != nil {
		t.Fatal(err)
	}
	for i, k := range keys {
		if !bytes.Equal(got[k], bytes.Repeat([]byte{byte(i + 1)}, 4096)) {
			t.Fatalf("large mget corrupted %s", k)
		}
	}
}

func TestMultiServerSharding(t *testing.T) {
	d := New(ClusterB(), Options{Servers: 4})
	defer d.Close()
	if len(d.Servers) != 4 || len(d.ServerNodes) != 4 {
		t.Fatalf("servers = %d", len(d.Servers))
	}
	b := mcclient.DefaultBehaviors()
	b.Distribution = mcclient.DistKetama
	c, err := d.NewClient(UCRIB, b)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 200; i++ {
		k := fmt.Sprintf("shard-%d", i)
		if err := c.MC.Set(k, []byte(k), 0, 0); err != nil {
			t.Fatal(err)
		}
		v, _, _, err := c.MC.Get(k)
		if err != nil || string(v) != k {
			t.Fatalf("Get %s = (%q, %v)", k, v, err)
		}
	}
	// Every server holds a share of the keyspace.
	for i, srv := range d.Servers {
		if srv.Store().CurrItems() == 0 {
			t.Errorf("server %d received no items (hashing not spreading)", i)
		}
	}
	// And the client can batch across shards.
	keys := []string{"shard-1", "shard-50", "shard-100", "shard-150"}
	got, err := c.MC.GetMulti(keys)
	if err != nil || len(got) != len(keys) {
		t.Fatalf("cross-shard GetMulti = (%d, %v)", len(got), err)
	}
}

func TestMultiServerFailover(t *testing.T) {
	// A server node dies; with AutoEject the client re-hashes onto the
	// survivors and keeps working (§IV-A corrective action, end to end).
	d := New(ClusterB(), Options{Servers: 3})
	defer d.Close()
	b := mcclient.DefaultBehaviors()
	b.Distribution = mcclient.DistKetama
	b.AutoEject = true
	b.OpTimeout = 200 * simnet.Microsecond
	c, err := d.NewClient(UCRIB, b)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	for i := 0; i < 60; i++ {
		if err := c.MC.Set(fmt.Sprintf("fk-%d", i), []byte("v"), 0, 0); err != nil {
			t.Fatal(err)
		}
	}
	d.ServerNodes[1].Fail()
	// Every key remains settable: ops on the dead shard eject it and
	// land on survivors.
	for i := 0; i < 60; i++ {
		if err := c.MC.Set(fmt.Sprintf("fk-%d", i), []byte("v2"), 0, 0); err != nil {
			t.Fatalf("set after server death: %v", err)
		}
	}
	if got := c.MC.Ejected(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("Ejected = %v", got)
	}
	if c.MC.LiveServers() != 2 {
		t.Fatalf("LiveServers = %d", c.MC.LiveServers())
	}
}

func TestSingleClientDeterminism(t *testing.T) {
	// Closed-loop single-client runs are exactly reproducible: same
	// seed, same workload, same virtual timestamps. This is what makes
	// the latency figures stable across machines.
	run := func() []simnet.Time {
		d := New(ClusterB(), Options{})
		defer d.Close()
		c, err := d.NewClient(UCRIB, mcclient.DefaultBehaviors())
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		var stamps []simnet.Time
		for i := 0; i < 30; i++ {
			key := fmt.Sprintf("det-%d", i%5)
			if i%3 == 0 {
				if err := c.MC.Set(key, bytes.Repeat([]byte("v"), 100+i), 0, 0); err != nil {
					t.Fatal(err)
				}
			} else if _, _, _, err := c.MC.Get(key); err != nil && err != mcclient.ErrCacheMiss {
				t.Fatal(err)
			}
			stamps = append(stamps, c.Clock.Now())
		}
		return stamps
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run diverged at op %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestSDPJitterObservable(t *testing.T) {
	// The QDR-SDP jitter must be visible as latency spread, and absent
	// from the other transports (§VI-B).
	spread := func(tr Transport) simnet.Duration {
		d := New(ClusterB(), Options{})
		defer d.Close()
		c, err := d.NewClient(tr, mcclient.DefaultBehaviors())
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		if err := c.MC.Set("j", []byte("v"), 0, 0); err != nil {
			t.Fatal(err)
		}
		var min, max simnet.Duration
		for i := 0; i < 60; i++ {
			start := c.Clock.Now()
			if _, _, _, err := c.MC.Get("j"); err != nil {
				t.Fatal(err)
			}
			el := c.Clock.Now() - start
			if i == 0 || el < min {
				min = el
			}
			if el > max {
				max = el
			}
		}
		return max - min
	}
	sdp := spread(SDP)
	ipoib := spread(IPoIB)
	if sdp < 10*simnet.Microsecond {
		t.Fatalf("SDP spread = %v, want visible jitter", sdp)
	}
	if ipoib > sdp/3 {
		t.Fatalf("IPoIB spread %v not much smaller than SDP %v", ipoib, sdp)
	}
}

func TestUCRSetTooLargeForCache(t *testing.T) {
	// A value that exceeds the server's memory limit travels the full
	// rendezvous path into a scratch buffer and is answered with an
	// error instead of corrupting the cache (§V-B error handling).
	d := New(ClusterB(), Options{MemoryLimit: 1 << 20})
	defer d.Close()
	c, err := d.NewClient(UCRIB, mcclient.DefaultBehaviors())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// Larger than the whole cache.
	if err := c.MC.Set("huge", make([]byte, 2<<20), 0, 0); err == nil {
		t.Fatal("oversized set should fail")
	}
	// The cache is still healthy.
	if err := c.MC.Set("ok", []byte("fine"), 0, 0); err != nil {
		t.Fatal(err)
	}
	v, _, _, err := c.MC.Get("ok")
	if err != nil || string(v) != "fine" {
		t.Fatalf("post-error get = (%q, %v)", v, err)
	}
	if d.Server.Store().CurrItems() != 1 {
		t.Fatalf("CurrItems = %d", d.Server.Store().CurrItems())
	}
}

func TestServerSRQOptionEndToEnd(t *testing.T) {
	d := New(ClusterB(), Options{UseSRQ: true})
	defer d.Close()
	c, err := d.NewClient(UCRIB, mcclient.DefaultBehaviors())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 30; i++ {
		k := fmt.Sprintf("srq-%d", i)
		if err := c.MC.Set(k, []byte(k), 0, 0); err != nil {
			t.Fatal(err)
		}
		v, _, _, err := c.MC.Get(k)
		if err != nil || string(v) != k {
			t.Fatalf("srq get = (%q, %v)", v, err)
		}
	}
	if d.Server.UCRRecvBufferBytes() == 0 {
		t.Fatal("no SRQ buffers accounted")
	}
}

func TestNoReplySetsPipeline(t *testing.T) {
	// libmemcached's NOREPLY behaviour: sets are fire-and-forget on
	// both protocols — much cheaper per op — and a subsequent get (a
	// natural barrier on the ordered connection) observes every one.
	for _, tr := range []Transport{UCRIB, TOE10G} {
		tr := tr
		t.Run(string(tr), func(t *testing.T) {
			d := New(ClusterA(), Options{})
			defer d.Close()

			normal, err := d.NewClient(tr, mcclient.DefaultBehaviors())
			if err != nil {
				t.Fatal(err)
			}
			defer normal.Close()
			quietB := mcclient.DefaultBehaviors()
			quietB.NoReply = true
			quiet, err := d.NewClient(tr, quietB)
			if err != nil {
				t.Fatal(err)
			}
			defer quiet.Close()

			const n = 40
			val := []byte("v")
			start := normal.Clock.Now()
			for i := 0; i < n; i++ {
				if err := normal.MC.Set(fmt.Sprintf("n-%d", i), val, 0, 0); err != nil {
					t.Fatal(err)
				}
			}
			normalCost := normal.Clock.Now() - start

			start = quiet.Clock.Now()
			for i := 0; i < n; i++ {
				if err := quiet.MC.Set(fmt.Sprintf("q-%d", i), val, 0, 0); err != nil {
					t.Fatal(err)
				}
			}
			quietCost := quiet.Clock.Now() - start

			if quietCost*2 >= normalCost {
				t.Fatalf("%s: noreply sets (%v) not much cheaper than replied (%v)", tr, quietCost, normalCost)
			}
			// Barrier + visibility: every quiet set landed.
			for i := 0; i < n; i++ {
				v, _, _, err := quiet.MC.Get(fmt.Sprintf("q-%d", i))
				if err != nil || string(v) != "v" {
					t.Fatalf("quiet set %d lost: (%q, %v)", i, v, err)
				}
			}
		})
	}
}

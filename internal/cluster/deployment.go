package cluster

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/mcclient"
	"repro/internal/memcached"
	"repro/internal/simnet"
	"repro/internal/sockstream"
	"repro/internal/ucr"
	"repro/internal/verbs"
)

// Options tunes a deployment beyond the cluster profile.
type Options struct {
	// Servers is the number of memcached server processes, each on its
	// own node (the paper's deployment sketch, Fig 1b, aggregates spare
	// memory across many servers; default 1).
	Servers int
	// ServerWorkers is the memcached worker-thread count (default 4).
	ServerWorkers int
	// Stripes is the cache-engine lock-stripe count (power of two;
	// default 8 — the multi-core engine). 1 restores the global cache
	// lock of the memcached generation the paper modified, with the
	// serialization it causes modeled in virtual time.
	Stripes int
	// MemoryLimit is the server cache size (default 512 MB).
	MemoryLimit int64
	// EagerThreshold overrides the UCR eager cut-over (default 8 KB,
	// used by the ablation bench).
	EagerThreshold int
	// UCRCredits overrides the per-endpoint flow-control credit window
	// on both sides (default from the profile, 64 on B). Each credit
	// pins a real receive buffer of roughly EagerThreshold bytes, so
	// fleet-scale deployments (1000 servers × lazy client fan-out) dial
	// this down to keep tens of thousands of endpoints affordable.
	UCRCredits int
	// DispatchCost / OpCost override the server cost model (defaults
	// below when zero).
	DispatchCost simnet.Duration
	OpCost       simnet.Duration
	// CoalescedOpCost overrides the reduced per-op software cost the
	// server pays for 2nd..Nth requests served inside one batched CQ
	// drain (defaults amortize only the fixed dispatch slice; see
	// memcached.ServerConfig.CoalescedOpCost).
	CoalescedOpCost simnet.Duration
	// UCREvents switches the server's UCR completion detection from
	// polling to interrupt-style events (ablation).
	UCREvents bool
	// UseSRQ makes server UCR endpoints draw receives from one shared
	// pool per worker (§VII scalability; ablation).
	UseSRQ bool
	// SRQBuffers overrides the shared receive pool depth per server
	// worker (default 4× the credit window; only meaningful with
	// UseSRQ). Small values force RNR backpressure under bursts.
	SRQBuffers int
	// UDGets arms the hybrid UD small-get mode on every reliable UCR
	// client: alongside the RC endpoint, the client dials an unreliable
	// datagram endpoint and serves GET/MGET requests that fit one
	// datagram over it, with client-side retransmission covering losses
	// and an AMTooBig/AMMGetRetry reply punting oversized values back to
	// RC. Mutating ops always stay on RC.
	UDGets bool
	// SessionsPerQP concentrates that many client sessions onto one RC
	// queue pair: UCR clients are grouped so each group shares a single
	// trunk endpoint (one QP, one progress context) with per-session
	// request tags demultiplexing the replies. Values ≤ 1 keep one QP
	// per client. Concentrated sessions use the plain two-sided RC path
	// (no one-sided or UD fast paths).
	SessionsPerQP int
	// OneSidedGet arms the one-sided GET data path: every server
	// publishes its remotely-readable directory and every reliable UCR
	// client serves validated GET hits with RDMA reads, falling back to
	// the AM path on miss/conflict. Strictly opt-in so the two-sided
	// benchmarks keep their timing.
	OneSidedGet bool
	// WriteReplies arms the write-based zero-copy reply path: every
	// reliable UCR client registers a reply-slot window arena and
	// advertises a slot with each GET/MGET, and the server answers
	// crossover-sized hits by gather-writing [header ‖ value] straight
	// from the pinned slab chunk into the slot, completing the future
	// with a payload-free notify AM. Small values, oversize-vs-window,
	// UD endpoints, and exhausted arenas all fall back to the ordinary
	// eager/rendezvous ladder. Strictly opt-in so the depth-1 golden
	// figure tables stay bit-identical. Concentrated (SessionsPerQP)
	// clients skip it, like the other fast paths.
	WriteReplies bool
	// WriteReplyEager is the write-reply crossover in bytes (reply
	// header included): totals at or below it keep the eager copy path
	// even when a window was advertised. Default 1 KB.
	WriteReplyEager int
	// Faults, when non-nil, installs a deterministic fault injector on
	// every fabric (same config, one independent verdict stream per
	// fabric and node pair). Nil leaves delivery lossless and the
	// figure benchmarks bit-identical.
	Faults *simnet.FaultConfig
}

func (o Options) withDefaults(p *Profile) Options {
	if o.Servers <= 0 {
		o.Servers = 1
	}
	if o.ServerWorkers <= 0 {
		o.ServerWorkers = 4
	}
	if o.Stripes <= 0 {
		o.Stripes = 8
	}
	if o.MemoryLimit <= 0 {
		o.MemoryLimit = 512 << 20
	}
	if o.DispatchCost <= 0 {
		o.DispatchCost = 3 * us
	}
	if o.OpCost <= 0 {
		if p.Name == "B" {
			o.OpCost = 900
		} else {
			o.OpCost = 2200
		}
	}
	return o
}

// serviceFor names the sockets service for a transport.
func serviceFor(t Transport) string { return "memcached-" + string(t) }

// ucrServiceFor names the UCR frontend's service for server i (CM
// service names are fabric-wide, so each server gets its own).
func ucrServiceFor(i int) string {
	if i == 0 {
		return "memcached-ucr"
	}
	return fmt.Sprintf("memcached-ucr-%d", i)
}

// Deployment is one simulated testbed: a network, one memcached server
// node serving every transport the profile offers, and any number of
// client nodes.
type Deployment struct {
	Profile *Profile
	Opts    Options

	Network *simnet.Network
	IB      *simnet.Fabric
	Eth10G  *simnet.Fabric
	Eth1G   *simnet.Fabric
	CM      *verbs.CM

	// ServerNode/Server/ServerHCA/ServerRT are the first server (the
	// common single-server case); ServerNodes et al. list all of them.
	ServerNode *simnet.Node
	Server     *memcached.Server
	ServerHCA  *verbs.HCA
	ServerRT   *ucr.Runtime

	ServerNodes []*simnet.Node
	Servers     []*memcached.Server
	ServerHCAs  []*verbs.HCA
	ServerRTs   []*ucr.Runtime

	// Injectors are the per-fabric fault injectors (empty when
	// Opts.Faults is nil), in the order the fabrics were added.
	Injectors []*simnet.FaultInjector

	providers map[Transport]*sockstream.Provider
	clients   int
	trunks    []*trunk

	// mu guards the server slices and client counter for runtime
	// membership changes (Fleet.Join adds servers mid-traffic while
	// other goroutines drive load; the historical slice sizing assumed
	// the fixed Options.Servers count set at New time).
	mu     sync.Mutex
	ucrCfg ucr.Config
}

// trunk is one connection-concentrator queue-pair group
// (Options.SessionsPerQP): a node with a single RC endpoint per server,
// shared by up to k logical sessions.
type trunk struct {
	node  *simnet.Node
	rt    *ucr.Runtime
	ctx   *ucr.Context
	muxes []*mcclient.SessionMux // one per server
	used  int                    // sessions handed out
}

// New builds a deployment on the given profile.
func New(p *Profile, opts Options) *Deployment {
	opts = opts.withDefaults(p)
	d := &Deployment{
		Profile:   p,
		Opts:      opts,
		Network:   simnet.NewNetwork(),
		providers: make(map[Transport]*sockstream.Provider),
	}
	d.IB = d.Network.AddFabric(p.IB)
	if p.Eth10G != nil {
		d.Eth10G = d.Network.AddFabric(*p.Eth10G)
	}
	if p.Eth1G != nil {
		d.Eth1G = d.Network.AddFabric(*p.Eth1G)
	}
	d.CM = verbs.NewCM(d.IB)

	if opts.Faults != nil {
		for _, fab := range []*simnet.Fabric{d.IB, d.Eth10G, d.Eth1G} {
			if fab == nil {
				continue
			}
			fi := simnet.NewFaultInjector(*opts.Faults)
			fab.SetFaults(fi)
			d.Injectors = append(d.Injectors, fi)
		}
	}

	// Socket providers, seated on their fabrics.
	seat := func(t Transport, model *sockstream.Provider, fab *simnet.Fabric) {
		if model == nil || fab == nil {
			return
		}
		d.providers[t] = model.Clone(fab)
	}
	seat(IPoIB, p.IPoIBModel, d.IB)
	seat(SDP, p.SDPModel, d.IB)
	seat(TOE10G, p.TOE10GModel, d.Eth10G)
	seat(TCP1G, p.TCP1GModel, d.Eth1G)

	d.ucrCfg = p.UCR
	if opts.EagerThreshold > 0 {
		d.ucrCfg.EagerThreshold = opts.EagerThreshold
	}
	if opts.UCRCredits > 0 {
		d.ucrCfg.Credits = opts.UCRCredits
	}
	d.ucrCfg.UseSRQ = opts.UseSRQ
	if opts.SRQBuffers > 0 {
		d.ucrCfg.SRQBuffers = opts.SRQBuffers
	}
	for i := 0; i < opts.Servers; i++ {
		name := "server"
		if opts.Servers > 1 {
			name = fmt.Sprintf("server%d", i)
		}
		d.AddServer(name)
	}
	return d
}

// AddServer brings up one more memcached server at runtime — node,
// fabric attachments, socket listeners, UCR frontend — and returns its
// index. The fleet layer calls this for churn joins while traffic is
// running; Network.AddNode and Fabric.Attach are lock-guarded, so the
// new server becomes reachable without quiescing anything. Panics on
// listener setup failure, like New.
func (d *Deployment) AddServer(name string) int {
	d.mu.Lock()
	defer d.mu.Unlock()
	i := len(d.Servers)
	node := d.Network.AddNode(name)
	d.IB.Attach(node)
	if d.Eth10G != nil {
		d.Eth10G.Attach(node)
	}
	if d.Eth1G != nil {
		d.Eth1G.Attach(node)
	}
	srv := memcached.NewServer(memcached.ServerConfig{
		Workers: d.Opts.ServerWorkers,
		Store: memcached.StoreConfig{
			MemoryLimit: d.Opts.MemoryLimit,
			Stripes:     d.Opts.Stripes,
		},
		DispatchCost:    d.Opts.DispatchCost,
		OpCost:          d.Opts.OpCost,
		CoalescedOpCost: d.Opts.CoalescedOpCost,
		WriteReplyEager: d.Opts.WriteReplyEager,
		// Lock-held copies run at the cluster's memory pack rate.
		CopyBytesPerSec: d.Profile.UCR.PackBytesPerSec,
		UCREvents:       d.Opts.UCREvents,
	})
	for t, prov := range d.providers {
		lis, err := prov.Listen(node, serviceFor(t))
		if err != nil {
			panic(fmt.Sprintf("cluster: listen %s: %v", t, err))
		}
		srv.ServeSockets(lis)
	}
	hca := verbs.NewHCA(node, d.IB, d.Profile.HCA)
	rt := ucr.New(hca, d.CM, d.ucrCfg)
	if err := srv.ServeUCR(rt, ucrServiceFor(i)); err != nil {
		panic(fmt.Sprintf("cluster: serve ucr: %v", err))
	}
	if d.Opts.OneSidedGet {
		if err := srv.EnableOneSided(0, 0); err != nil {
			panic(fmt.Sprintf("cluster: enable one-sided: %v", err))
		}
	}
	d.ServerNodes = append(d.ServerNodes, node)
	d.Servers = append(d.Servers, srv)
	d.ServerHCAs = append(d.ServerHCAs, hca)
	d.ServerRTs = append(d.ServerRTs, rt)
	if i == 0 {
		d.ServerNode, d.Server = node, srv
		d.ServerHCA, d.ServerRT = hca, rt
	}
	return i
}

// Client is one benchmark client: a node, a clock, and a connected
// memcached client handle over one transport.
type Client struct {
	Node      *simnet.Node
	Clock     *simnet.VClock
	MC        *mcclient.Client
	Transport Transport

	rt  *ucr.Runtime
	ctx *ucr.Context
}

// NewClient adds a client node (its own machine, like the paper's
// client placement) and connects it to the server over transport t.
func (d *Deployment) NewClient(t Transport, behaviors mcclient.Behaviors) (*Client, error) {
	return d.newClient(t, behaviors, false)
}

// NewClientUD connects a UCR client over an unreliable (UD) endpoint —
// the paper's §VII extension for scaling client counts (ablation bench).
func (d *Deployment) NewClientUD(behaviors mcclient.Behaviors) (*Client, error) {
	return d.newClient(UCRIB, behaviors, true)
}

func (d *Deployment) newClient(t Transport, behaviors mcclient.Behaviors, unreliable bool) (*Client, error) {
	if !d.Profile.HasTransport(t) {
		return nil, fmt.Errorf("cluster %s has no %s", d.Profile.Name, t)
	}
	if t == UCRIB && !unreliable && d.Opts.SessionsPerQP > 1 {
		return d.newMuxClient(behaviors)
	}
	d.clients++
	node := d.Network.AddNode(fmt.Sprintf("client%d", d.clients))
	clk := simnet.NewVClock(0)
	c := &Client{Node: node, Clock: clk, Transport: t}

	var trs []mcclient.Transport
	if t == UCRIB {
		hca := verbs.NewHCA(node, d.IB, d.Profile.HCA)
		c.rt = ucr.New(hca, d.CM, d.clientUCRConfig())
		c.ctx = c.rt.NewContext()
		for i, srvNode := range d.ServerNodes {
			var tr mcclient.Transport
			var err error
			if unreliable {
				tr, err = mcclient.DialUCRUnreliable(c.rt, c.ctx, srvNode, ucrServiceFor(i), behaviors, clk)
			} else {
				tr, err = mcclient.DialUCR(c.rt, c.ctx, srvNode, ucrServiceFor(i), behaviors, clk)
			}
			if err != nil {
				return nil, err
			}
			if d.Opts.OneSidedGet && !unreliable {
				if ost, ok := tr.(*mcclient.UCRTransport); ok {
					ost.EnableOneSided()
				}
			}
			if d.Opts.WriteReplies && !unreliable {
				if wt, ok := tr.(*mcclient.UCRTransport); ok {
					if err := wt.EnableWriteReplies(clk, 0, 0); err != nil {
						return nil, err
					}
				}
			}
			if d.Opts.UDGets && !unreliable {
				if ut, ok := tr.(*mcclient.UCRTransport); ok {
					udep, err := c.rt.Dial(c.ctx, srvNode, ucrServiceFor(i), ucr.Unreliable, clk, 5*time.Second)
					if err != nil {
						return nil, err
					}
					ut.EnableUD(udep)
				}
			}
			trs = append(trs, tr)
		}
	} else {
		prov := d.providers[t]
		switch t {
		case IPoIB, SDP:
			d.IB.Attach(node)
		case TOE10G:
			d.Eth10G.Attach(node)
		case TCP1G:
			d.Eth1G.Attach(node)
		}
		for _, srvNode := range d.ServerNodes {
			tr, err := mcclient.DialSock(prov, node, srvNode, serviceFor(t), behaviors, clk)
			if err != nil {
				return nil, err
			}
			trs = append(trs, tr)
		}
	}
	var err error
	c.MC, err = mcclient.New(clk, behaviors, trs)
	if err != nil {
		return nil, err
	}
	return c, nil
}

// newMuxClient hands out one concentrated session (Options.SessionsPerQP):
// the first client of each group dials the trunk — one node, one RC QP
// per server — and the next k-1 clients ride the same QPs as tagged
// sessions. Each session client still gets its own virtual clock.
func (d *Deployment) newMuxClient(behaviors mcclient.Behaviors) (*Client, error) {
	k := d.Opts.SessionsPerQP
	d.clients++
	clk := simnet.NewVClock(0)
	var tr *trunk
	if n := len(d.trunks); n > 0 && d.trunks[n-1].used < k {
		tr = d.trunks[n-1]
	} else {
		node := d.Network.AddNode(fmt.Sprintf("client%d", d.clients))
		hca := verbs.NewHCA(node, d.IB, d.Profile.HCA)
		rt := ucr.New(hca, d.CM, d.clientUCRConfig())
		ctx := rt.NewContext()
		tr = &trunk{node: node, rt: rt, ctx: ctx}
		for i, srvNode := range d.ServerNodes {
			ut, err := mcclient.DialUCR(rt, ctx, srvNode, ucrServiceFor(i), behaviors, clk)
			if err != nil {
				return nil, err
			}
			tr.muxes = append(tr.muxes, mcclient.NewSessionMux(ut, k))
		}
		d.trunks = append(d.trunks, tr)
	}
	c := &Client{Node: tr.node, Clock: clk, Transport: UCRIB}
	trs := make([]mcclient.Transport, 0, len(tr.muxes))
	for _, m := range tr.muxes {
		trs = append(trs, m.Session(tr.used))
	}
	tr.used++
	var err error
	c.MC, err = mcclient.New(clk, behaviors, trs)
	if err != nil {
		return nil, err
	}
	return c, nil
}

// clientUCRConfig is the UCR config client endpoints dial with: the
// profile's, with the deployment's eager-threshold and credit overrides
// but without the server-side SRQ knobs.
func (d *Deployment) clientUCRConfig() ucr.Config {
	cfg := d.Profile.UCR
	if d.Opts.EagerThreshold > 0 {
		cfg.EagerThreshold = d.Opts.EagerThreshold
	}
	if d.Opts.UCRCredits > 0 {
		cfg.Credits = d.Opts.UCRCredits
	}
	return cfg
}

// Trunks reports the concentrator QP-group count (0 unless
// Options.SessionsPerQP > 1) — the number of RC QPs actually dialed for
// however many session clients exist.
func (d *Deployment) Trunks() int { return len(d.trunks) }

// TrunkMuxes exposes the i'th trunk's per-server session muxes (tests).
func (d *Deployment) TrunkMuxes(i int) []*mcclient.SessionMux { return d.trunks[i].muxes }

// FaultStats sums delivery verdicts across every fabric's injector.
func (d *Deployment) FaultStats() (delivered, dropped, corrupted uint64) {
	for _, fi := range d.Injectors {
		del, drop, corr := fi.Stats()
		delivered += del
		dropped += drop
		corrupted += corr
	}
	return delivered, dropped, corrupted
}

// Provider exposes the seated socket provider for a transport (nil for
// UCRIB or transports absent from the profile) — benches read its
// retransmission counter.
func (d *Deployment) Provider(t Transport) *sockstream.Provider { return d.providers[t] }

// Runtime exposes the client's UCR runtime (nil on socket transports) —
// benches read its HCA retransmission counter.
func (c *Client) Runtime() *ucr.Runtime { return c.rt }

// Close tears the client down.
func (c *Client) Close() {
	c.MC.Close()
	if c.ctx != nil {
		c.ctx.Destroy()
	}
}

// Close stops every server and tears down any concentrator trunks
// (session clients must be quiescent by then).
func (d *Deployment) Close() {
	for _, tr := range d.trunks {
		for _, m := range tr.muxes {
			m.Close()
		}
		tr.ctx.Destroy()
	}
	d.trunks = nil
	for _, srv := range d.Servers {
		srv.Close()
	}
}

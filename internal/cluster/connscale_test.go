package cluster

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/mcclient"
)

// TestUDGetsHybrid: with Options.UDGets, small GETs ride the UD endpoint
// (udGets counts them) and values beyond one datagram transparently punt
// back to RC (udFallbacks), returning correct bytes either way.
func TestUDGetsHybrid(t *testing.T) {
	d := New(ClusterB(), Options{UDGets: true})
	defer d.Close()

	c, err := d.NewClient(UCRIB, mcclient.DefaultBehaviors())
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	defer c.Close()

	small := []byte("small-value")
	big := make([]byte, 64<<10) // far beyond one datagram
	for i := range big {
		big[i] = byte(i % 251)
	}
	if err := c.MC.Set("k-small", small, 0, 0); err != nil {
		t.Fatalf("set small: %v", err)
	}
	if err := c.MC.Set("k-big", big, 0, 0); err != nil {
		t.Fatalf("set big: %v", err)
	}

	v, _, _, err := c.MC.Get("k-small")
	if err != nil || !bytes.Equal(v, small) {
		t.Fatalf("get small = (%q, %v)", v, err)
	}
	v, _, _, err = c.MC.Get("k-big")
	if err != nil || !bytes.Equal(v, big) {
		t.Fatalf("get big = (%d bytes, %v)", len(v), err)
	}

	ut := clientUCRTransport(t, c)
	if ut.UDEndpoint() == nil {
		t.Fatal("UD endpoint not armed")
	}
	gets, _, fallbacks := ut.UDStats()
	if gets < 2 {
		t.Fatalf("udGets = %d, want >= 2 (UD path not exercised)", gets)
	}
	if fallbacks < 1 {
		t.Fatalf("udFallbacks = %d, want >= 1 (AMTooBig punt not exercised)", fallbacks)
	}
	// A miss also rides UD (status-only reply fits a datagram).
	if _, _, _, err := c.MC.Get("never-set"); err != mcclient.ErrCacheMiss {
		t.Fatalf("miss err = %v", err)
	}
}

// TestUDGetsMultiFallback: an mget whose aggregate reply exceeds one
// datagram comes back as AMMGetRetry and re-issues over RC.
func TestUDGetsMultiFallback(t *testing.T) {
	d := New(ClusterB(), Options{UDGets: true})
	defer d.Close()

	c, err := d.NewClient(UCRIB, mcclient.DefaultBehaviors())
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	defer c.Close()

	val := bytes.Repeat([]byte("x"), 1500) // several exceed one datagram
	keys := make([]string, 6)
	for i := range keys {
		keys[i] = fmt.Sprintf("mk%d", i)
		if err := c.MC.Set(keys[i], val, 0, 0); err != nil {
			t.Fatalf("set %s: %v", keys[i], err)
		}
	}
	got, err := c.MC.GetMulti(keys)
	if err != nil {
		t.Fatalf("GetMulti: %v", err)
	}
	for _, k := range keys {
		if !bytes.Equal(got[k], val) {
			t.Fatalf("GetMulti[%s] = %d bytes, want %d", k, len(got[k]), len(val))
		}
	}
	ut := clientUCRTransport(t, c)
	if _, _, fallbacks := ut.UDStats(); fallbacks < 1 {
		t.Fatalf("udFallbacks = %d, want >= 1 (AMMGetRetry punt not exercised)", fallbacks)
	}
	// Small aggregate rides UD end to end: no further fallback.
	if err := c.MC.Set("tiny", []byte("t"), 0, 0); err != nil {
		t.Fatal(err)
	}
	gets0, _, fb0 := ut.UDStats()
	if small, err := c.MC.GetMulti([]string{"tiny"}); err != nil || string(small["tiny"]) != "t" {
		t.Fatalf("small mget = (%v, %v)", small, err)
	}
	gets1, _, fb1 := ut.UDStats()
	if gets1 <= gets0 || fb1 != fb0 {
		t.Fatalf("small mget should ride UD without fallback (gets %d->%d, fallbacks %d->%d)",
			gets0, gets1, fb0, fb1)
	}
}

// TestSessionsPerQP: 2k session clients over SessionsPerQP=k share 2 RC
// trunks, and every session's operations stay correct and isolated.
func TestSessionsPerQP(t *testing.T) {
	const k = 4
	d := New(ClusterB(), Options{SessionsPerQP: k})
	defer d.Close()

	var clients []*Client
	for i := 0; i < 2*k; i++ {
		c, err := d.NewClient(UCRIB, mcclient.DefaultBehaviors())
		if err != nil {
			t.Fatalf("NewClient %d: %v", i, err)
		}
		clients = append(clients, c)
	}
	if d.Trunks() != 2 {
		t.Fatalf("Trunks() = %d, want 2 (%d sessions / k=%d)", d.Trunks(), 2*k, k)
	}
	for i, c := range clients {
		key := fmt.Sprintf("sess%d", i)
		want := fmt.Sprintf("value-of-%d", i)
		if err := c.MC.Set(key, []byte(want), uint32(i), 0); err != nil {
			t.Fatalf("session %d set: %v", i, err)
		}
	}
	for i, c := range clients {
		key := fmt.Sprintf("sess%d", i)
		want := fmt.Sprintf("value-of-%d", i)
		v, fl, _, err := c.MC.Get(key)
		if err != nil || string(v) != want || fl != uint32(i) {
			t.Fatalf("session %d get = (%q, %d, %v), want %q", i, v, fl, err, want)
		}
		if err := c.MC.Delete(key); err != nil {
			t.Fatalf("session %d delete: %v", i, err)
		}
		if _, _, _, err := c.MC.Get(key); err != mcclient.ErrCacheMiss {
			t.Fatalf("session %d post-delete get err = %v", i, err)
		}
	}
	// Counters work through sessions too.
	c := clients[0]
	if err := c.MC.Set("ctr", []byte("10"), 0, 0); err != nil {
		t.Fatal(err)
	}
	if v, err := c.MC.Incr("ctr", 5); err != nil || v != 15 {
		t.Fatalf("session incr = (%d, %v)", v, err)
	}
	for _, c := range clients {
		c.Close()
	}
}

// clientUCRTransport digs the first server's UCRTransport out of a
// client handle.
func clientUCRTransport(t *testing.T, c *Client) *mcclient.UCRTransport {
	t.Helper()
	ut, ok := c.MC.Transport(0).(*mcclient.UCRTransport)
	if !ok {
		t.Fatalf("transport is %T, not *UCRTransport", c.MC.Transport(0))
	}
	return ut
}

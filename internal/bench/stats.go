// Package bench is the measurement suite: the paper's §VI benchmarks,
// rebuilt against the standard client API. The authors note that the
// stock memslap tool bypasses libmemcached and speaks raw sockets, so —
// like them — we measure through the client library itself.
package bench

import (
	"fmt"
	"sort"

	"repro/internal/simnet"
)

// LatencyRecorder accumulates per-operation virtual-time samples.
type LatencyRecorder struct {
	samples []simnet.Duration
	sum     simnet.Duration
}

// Record adds one sample.
func (r *LatencyRecorder) Record(d simnet.Duration) {
	r.samples = append(r.samples, d)
	r.sum += d
}

// Count reports the number of samples.
func (r *LatencyRecorder) Count() int { return len(r.samples) }

// Mean reports the average sample in microseconds.
func (r *LatencyRecorder) Mean() float64 {
	if len(r.samples) == 0 {
		return 0
	}
	return float64(r.sum) / float64(len(r.samples)) / 1e3
}

// Min reports the smallest sample in microseconds.
func (r *LatencyRecorder) Min() float64 {
	if len(r.samples) == 0 {
		return 0
	}
	min := r.samples[0]
	for _, s := range r.samples[1:] {
		if s < min {
			min = s
		}
	}
	return s2us(min)
}

// Max reports the largest sample in microseconds.
func (r *LatencyRecorder) Max() float64 {
	if len(r.samples) == 0 {
		return 0
	}
	max := r.samples[0]
	for _, s := range r.samples[1:] {
		if s > max {
			max = s
		}
	}
	return s2us(max)
}

// Percentile reports the p-th percentile (0 < p <= 100) in microseconds.
func (r *LatencyRecorder) Percentile(p float64) float64 {
	if len(r.samples) == 0 {
		return 0
	}
	sorted := make([]simnet.Duration, len(r.samples))
	copy(sorted, r.samples)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(p/100*float64(len(sorted))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return s2us(sorted[idx])
}

// Jitter reports max-min in microseconds (the paper's QDR-SDP
// observation is about exactly this spread).
func (r *LatencyRecorder) Jitter() float64 { return r.Max() - r.Min() }

func s2us(d simnet.Duration) float64 { return float64(d) / 1e3 }

// SizeLabel formats a message size the way the paper's axes do.
func SizeLabel(n int) string {
	switch {
	case n >= 1<<20 && n%(1<<20) == 0:
		return fmt.Sprintf("%dM", n>>20)
	case n >= 1024 && n%1024 == 0:
		return fmt.Sprintf("%dK", n>>10)
	default:
		return fmt.Sprintf("%d", n)
	}
}

// SmallSizes are the paper's small-message sweep (Figs 3a/3c, 4a/4c, 5).
var SmallSizes = []int{1, 4, 16, 64, 256, 1024, 2048, 4096}

// LargeSizes are the paper's large-message sweep (Figs 3b/3d, 4b/4d).
var LargeSizes = []int{8192, 16384, 32768, 65536, 131072, 262144, 524288}

package bench

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/mcclient"
	"repro/internal/simnet"
)

// RunConfig tunes a measurement run.
type RunConfig struct {
	// OpsPerPoint is the measured operation count per (size, transport).
	OpsPerPoint int
	// KeySpace is the number of distinct keys.
	KeySpace int
	// Seed feeds workload generation.
	Seed uint64
	// Deploy overrides deployment options (worker count etc.).
	Deploy cluster.Options
}

func (c RunConfig) withDefaults() RunConfig {
	if c.OpsPerPoint <= 0 {
		c.OpsPerPoint = 50
	}
	if c.KeySpace <= 0 {
		c.KeySpace = 16
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	return c
}

// LatencyPoint measures the mean latency of one (transport, size, mix)
// combination on a fresh single-client deployment — the paper's
// single-client experiment (§VI-B).
func LatencyPoint(p *cluster.Profile, t cluster.Transport, mix Mix, size int, cfg RunConfig) (*LatencyRecorder, error) {
	cfg = cfg.withDefaults()
	d := cluster.New(p, cfg.Deploy)
	defer d.Close()
	c, err := d.NewClient(t, mcclient.DefaultBehaviors())
	if err != nil {
		return nil, err
	}
	defer c.Close()
	w := NewWorkload(cfg.Seed, cfg.KeySpace, size)
	rec := &LatencyRecorder{}
	if err := runClient(c, w, mix, cfg.OpsPerPoint, rec); err != nil {
		return nil, fmt.Errorf("bench: %s/%s size %d: %w", t, mix, size, err)
	}
	return rec, nil
}

// LatencySweep runs LatencyPoint over sizes for every transport,
// returning mean microseconds, indexed series[transport][sizeIdx].
func LatencySweep(p *cluster.Profile, transports []cluster.Transport, mix Mix, sizes []int, cfg RunConfig) (map[cluster.Transport][]float64, error) {
	out := make(map[cluster.Transport][]float64, len(transports))
	for _, t := range transports {
		vals := make([]float64, 0, len(sizes))
		for _, size := range sizes {
			rec, err := LatencyPoint(p, t, mix, size, cfg)
			if err != nil {
				return nil, err
			}
			vals = append(vals, rec.Mean())
		}
		out[t] = vals
	}
	return out, nil
}

// JitterPoint runs many single-client gets on one transport and
// returns the latency distribution — the experiment behind the paper's
// §VI-B jitter investigation (they pushed samples to 10,000 trying to
// smooth SDP on QDR and could not).
func JitterPoint(p *cluster.Profile, t cluster.Transport, size, samples int, cfg RunConfig) (*LatencyRecorder, error) {
	cfg = cfg.withDefaults()
	cfg.OpsPerPoint = samples
	return LatencyPoint(p, t, MixGet, size, cfg)
}

// TPSPoint measures aggregate transactions per second with nClients
// closed-loop clients on distinct nodes doing 100% Gets of the given
// value size — the paper's multi-client experiment (§VI-D).
func TPSPoint(p *cluster.Profile, t cluster.Transport, nClients, size int, cfg RunConfig) (tps float64, err error) {
	cfg = cfg.withDefaults()
	d := cluster.New(p, cfg.Deploy)
	defer d.Close()

	clients := make([]*cluster.Client, nClients)
	for i := range clients {
		c, cerr := d.NewClient(t, mcclient.DefaultBehaviors())
		if cerr != nil {
			return 0, cerr
		}
		defer c.Close()
		clients[i] = c
	}
	// One client populates the shared keyspace.
	w0 := NewWorkload(cfg.Seed, cfg.KeySpace, size)
	for _, k := range w0.Keys() {
		if err := clients[0].MC.Set(k, w0.Value(), 0, 0); err != nil {
			return 0, err
		}
	}
	// Align clocks at a common virtual start.
	var start simnet.Time
	for _, c := range clients {
		if c.Clock.Now() > start {
			start = c.Clock.Now()
		}
	}
	for _, c := range clients {
		c.Clock.AdvanceTo(start)
	}

	type result struct {
		end simnet.Time
		err error
	}
	results := make(chan result, nClients)
	opsPerClient := cfg.OpsPerPoint
	for i, c := range clients {
		go func(i int, c *cluster.Client) {
			// Same keyspace as the populator, staggered start offsets.
			w := NewWorkload(cfg.Seed, cfg.KeySpace, size)
			w.nextKey = i
			for n := 0; n < opsPerClient; n++ {
				if _, _, _, err := c.MC.Get(w.Key()); err != nil {
					results <- result{err: err}
					return
				}
			}
			results <- result{end: c.Clock.Now()}
		}(i, c)
	}
	var makespan simnet.Duration
	for range clients {
		r := <-results
		if r.err != nil {
			return 0, r.err
		}
		if d := r.end - start; d > makespan {
			makespan = d
		}
	}
	totalOps := float64(nClients * opsPerClient)
	return totalOps / makespan.Seconds(), nil
}

// TPSSweep runs TPSPoint across client counts for every transport,
// returning thousands-of-TPS series, indexed series[transport][countIdx]
// (the unit the paper's Fig 6 y-axis uses).
func TPSSweep(p *cluster.Profile, transports []cluster.Transport, clientCounts []int, size int, cfg RunConfig) (map[cluster.Transport][]float64, error) {
	out := make(map[cluster.Transport][]float64, len(transports))
	for _, t := range transports {
		vals := make([]float64, 0, len(clientCounts))
		for _, n := range clientCounts {
			tps, err := TPSPoint(p, t, n, size, cfg)
			if err != nil {
				return nil, err
			}
			vals = append(vals, tps/1e3)
		}
		out[t] = vals
	}
	return out, nil
}

package bench

import (
	"encoding/binary"
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/mcclient"
	"repro/internal/simnet"
	"repro/internal/ucr"
	"repro/internal/verbs"
)

// This file measures the design choices DESIGN.md calls out, beyond the
// paper's figures: the 8 KB eager threshold (§V), worker-thread count
// (§V-A), CQ polling vs events (§II-A1), counter-ack suppression
// (§IV-C), and RC vs UD endpoints (§VII).

// AblationEagerThreshold measures mean get latency for one value size
// under different eager cut-overs. Below the threshold a reply is one
// packed transaction; above it the client RDMA-reads the value.
func AblationEagerThreshold(valueSize int, thresholds []int, cfg RunConfig) (map[int]float64, error) {
	cfg = cfg.withDefaults()
	out := make(map[int]float64, len(thresholds))
	for _, th := range thresholds {
		deploy := cfg.Deploy
		deploy.EagerThreshold = th
		rec, err := LatencyPoint(cluster.ClusterB(), cluster.UCRIB, MixGet, valueSize,
			RunConfig{OpsPerPoint: cfg.OpsPerPoint, KeySpace: cfg.KeySpace, Seed: cfg.Seed, Deploy: deploy})
		if err != nil {
			return nil, err
		}
		out[th] = rec.Mean()
	}
	return out, nil
}

// AblationWorkerCount measures aggregate 4-byte get TPS with nClients
// for each worker-thread count (the §V-A round-robin pool's width).
func AblationWorkerCount(workerCounts []int, nClients int, cfg RunConfig) (map[int]float64, error) {
	cfg = cfg.withDefaults()
	out := make(map[int]float64, len(workerCounts))
	for _, wc := range workerCounts {
		deploy := cfg.Deploy
		deploy.ServerWorkers = wc
		tps, err := TPSPoint(cluster.ClusterB(), cluster.UCRIB, nClients, 4,
			RunConfig{OpsPerPoint: cfg.OpsPerPoint, KeySpace: cfg.KeySpace, Seed: cfg.Seed, Deploy: deploy})
		if err != nil {
			return nil, err
		}
		out[wc] = tps / 1e3
	}
	return out, nil
}

// AblationPollingVsEvents measures small-get latency with the server's
// UCR completion detection in polling vs interrupt mode.
func AblationPollingVsEvents(cfg RunConfig) (pollingUs, eventsUs float64, err error) {
	cfg = cfg.withDefaults()
	run := func(events bool) (float64, error) {
		deploy := cfg.Deploy
		deploy.UCREvents = events
		rec, err := LatencyPoint(cluster.ClusterB(), cluster.UCRIB, MixGet, 64,
			RunConfig{OpsPerPoint: cfg.OpsPerPoint, KeySpace: cfg.KeySpace, Seed: cfg.Seed, Deploy: deploy})
		if err != nil {
			return 0, err
		}
		return rec.Mean(), nil
	}
	if pollingUs, err = run(false); err != nil {
		return 0, 0, err
	}
	if eventsUs, err = run(true); err != nil {
		return 0, 0, err
	}
	return pollingUs, eventsUs, nil
}

// AblationRCvsUD measures small-get latency over reliable (RC) vs
// unreliable (UD) UCR endpoints.
func AblationRCvsUD(cfg RunConfig) (rcUs, udUs float64, err error) {
	cfg = cfg.withDefaults()
	run := func(ud bool) (float64, error) {
		d := cluster.New(cluster.ClusterB(), cfg.Deploy)
		defer d.Close()
		var c *cluster.Client
		var cerr error
		if ud {
			c, cerr = d.NewClientUD(mcclient.DefaultBehaviors())
		} else {
			c, cerr = d.NewClient(cluster.UCRIB, mcclient.DefaultBehaviors())
		}
		if cerr != nil {
			return 0, cerr
		}
		defer c.Close()
		w := NewWorkload(cfg.Seed, cfg.KeySpace, 64)
		rec := &LatencyRecorder{}
		if err := runClient(c, w, MixGet, cfg.OpsPerPoint, rec); err != nil {
			return 0, err
		}
		return rec.Mean(), nil
	}
	if rcUs, err = run(false); err != nil {
		return 0, 0, err
	}
	if udUs, err = run(true); err != nil {
		return 0, 0, err
	}
	return rcUs, udUs, nil
}

// AblationCounterAcks measures, at the UCR level, the round-trip cost
// of an eager echo exchange with NULL counters (no internal messages,
// §IV-C) versus with a completion counter (which requires the optional
// ack). It returns mean microseconds for both modes and the ack counts
// observed on the origin.
func AblationCounterAcks(ops int) (nullUs, complUs float64, acksNull, acksCompl uint64, err error) {
	if ops <= 0 {
		ops = 50
	}
	const (
		midReq   = 1
		midReply = 2
	)
	p := cluster.ClusterB()
	nw := simnet.NewNetwork()
	cliNode := nw.AddNode("client")
	srvNode := nw.AddNode("server")
	fab := nw.AddFabric(p.IB)
	cm := verbs.NewCM(fab)
	cliRT := ucr.New(verbs.NewHCA(cliNode, fab, p.HCA), cm, p.UCR)
	srvRT := ucr.New(verbs.NewHCA(srvNode, fab, p.HCA), cm, p.UCR)

	// Server: echo the 8-byte header's counter id back via midReply.
	srvCtx := srvRT.NewContext()
	srvClk := simnet.NewVClock(0)
	srvRT.RegisterHandler(midReq, ucr.Handler{
		Header: func(clk *simnet.VClock, ep *ucr.Endpoint, hdr []byte, dataLen int, _ ucr.CounterID) []byte {
			return make([]byte, dataLen)
		},
		Completion: func(clk *simnet.VClock, ep *ucr.Endpoint, hdr, data []byte, _ ucr.CounterID) {
			replyCtr := ucr.CounterID(binary.LittleEndian.Uint64(hdr))
			_ = ep.Send(clk, midReply, nil, data, nil, replyCtr, nil)
		},
	})
	cliRT.RegisterHandler(midReply, ucr.Handler{
		Header: func(clk *simnet.VClock, ep *ucr.Endpoint, hdr []byte, dataLen int, _ ucr.CounterID) []byte {
			return make([]byte, dataLen)
		},
	})

	lis, lerr := srvRT.Listen("ablate")
	if lerr != nil {
		return 0, 0, 0, 0, lerr
	}
	stop := make(chan struct{})
	go func() {
		for {
			req, ok := lis.Next(simnet.NewVClock(0), 50*time.Millisecond)
			if !ok {
				select {
				case <-stop:
					return
				default:
					continue
				}
			}
			// Single-threaded toy server: accept then progress inline.
			if _, err := srvCtx.Accept(req, srvClk); err != nil {
				req.Reject(err)
			}
			for srvCtx.Progress(srvClk) {
			}
		}
	}()
	defer func() {
		close(stop)
		lis.Close()
		srvCtx.Destroy()
	}()

	cliCtx := cliRT.NewContext()
	cliClk := simnet.NewVClock(0)
	ep, derr := cliRT.Dial(cliCtx, srvNode, "ablate", ucr.Reliable, cliClk, 5*time.Second)
	if derr != nil {
		return 0, 0, 0, 0, derr
	}
	defer ep.Close()

	payload := make([]byte, 64)
	hdr := make([]byte, 8)
	replyCtr := cliRT.NewCounter()

	measure := func(withCompl bool) (float64, error) {
		rec := &LatencyRecorder{}
		for i := 0; i < ops; i++ {
			binary.LittleEndian.PutUint64(hdr, uint64(replyCtr.ID()))
			var compl *ucr.Counter
			if withCompl {
				compl = cliRT.NewCounter()
			}
			start := cliClk.Now()
			if err := ep.Send(cliClk, midReq, hdr, payload, nil, 0, compl); err != nil {
				return 0, err
			}
			if err := cliCtx.WaitCounter(cliClk, replyCtr, replyCtr.Value()+1, 0); err != nil {
				return 0, err
			}
			if withCompl {
				if err := cliCtx.WaitCounter(cliClk, compl, 1, 0); err != nil {
					return 0, err
				}
				cliRT.FreeCounter(compl)
			}
			rec.Record(cliClk.Now() - start)
		}
		return rec.Mean(), nil
	}

	if nullUs, err = measure(false); err != nil {
		return 0, 0, 0, 0, err
	}
	_, _, acksNull, _, _ = cliCtx.Stats()
	if complUs, err = measure(true); err != nil {
		return 0, 0, 0, 0, err
	}
	_, _, acksCompl, _, _ = cliCtx.Stats()
	return nullUs, complUs, acksNull, acksCompl - acksNull, nil
}

// AblationResultString renders a simple id→value table.
func AblationResultString(title string, rows map[int]float64, unit string) string {
	out := "# " + title + "\n"
	keys := make([]int, 0, len(rows))
	for k := range rows {
		keys = append(keys, k)
	}
	for i := 0; i < len(keys); i++ {
		for j := i + 1; j < len(keys); j++ {
			if keys[j] < keys[i] {
				keys[i], keys[j] = keys[j], keys[i]
			}
		}
	}
	for _, k := range keys {
		out += fmt.Sprintf("%-8d %.2f %s\n", k, rows[k], unit)
	}
	return out
}

package bench

import (
	"reflect"
	"testing"

	"repro/internal/cluster"
)

func faultSweepConfig() RunConfig {
	return RunConfig{OpsPerPoint: 15, KeySpace: 8, Seed: 7}
}

// TestFaultSweepDeterministic: the whole sweep — seeded drop verdicts,
// retransmission timings, retry backoffs — must be bit-identical across
// two invocations.
func TestFaultSweepDeterministic(t *testing.T) {
	p := cluster.ClusterB()
	transports := []cluster.Transport{cluster.UCRIB, cluster.IPoIB}
	drops := []float64{0, 5}
	a, err := FaultSweep(p, transports, drops, 64, faultSweepConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := FaultSweep(p, transports, drops, 64, faultSweepConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("fault sweep not deterministic:\n%s\nvs\n%s", FaultSweepString(a), FaultSweepString(b))
	}
}

// TestFaultSweepRecovery: at 5% drop UCR must complete every operation
// (RC retransmission + AM retry absorb the loss) and the socket path
// must show wire-level retransmissions inflating latency over the
// lossless baseline.
func TestFaultSweepRecovery(t *testing.T) {
	p := cluster.ClusterB()
	cells, err := FaultSweep(p, []cluster.Transport{cluster.UCRIB, cluster.IPoIB}, []float64{0, 5}, 64, faultSweepConfig())
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[string]FaultCell{}
	for _, c := range cells {
		byKey[string(c.Transport)+"@"+itoa(int(c.DropPct))] = c
	}
	ucr0, ucr5 := byKey["UCR-IB@0"], byKey["UCR-IB@5"]
	ip0, ip5 := byKey["IPoIB@0"], byKey["IPoIB@5"]

	if ucr5.Failed != 0 {
		t.Fatalf("UCR at 5%% drop failed %d ops", ucr5.Failed)
	}
	if ucr5.Retransmits == 0 {
		t.Fatal("UCR at 5% drop shows no RC retransmissions")
	}
	if ucr0.Retransmits != 0 || ip0.Retransmits != 0 {
		t.Fatalf("lossless runs retransmitted (ucr=%d ip=%d)", ucr0.Retransmits, ip0.Retransmits)
	}
	if ip5.Retransmits == 0 {
		t.Fatal("IPoIB at 5% drop shows no RTO retransmissions")
	}
	if ip5.MeanUs <= ip0.MeanUs {
		t.Fatalf("IPoIB latency not inflated by loss: %.2f vs %.2f us", ip5.MeanUs, ip0.MeanUs)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}

package bench

import (
	"fmt"
	"strings"

	"repro/internal/cluster"
	"repro/internal/simnet"
)

// This file is the fleet-scale study: aggregate throughput, the miss
// storm a membership change sets off, and measured-vs-theoretical key
// movement, at server counts far beyond what one cache ever serves —
// the regime the ketama ring and R=2 replication exist for. Every cell
// spins up a live cluster.Fleet (N servers, 10·N pipelined clients) in
// virtual time; nothing is extrapolated.

// fleetKeysPerClient is each client's private working set. Small on
// purpose: a fleet client lazily dials only its keys' owners, so the
// endpoint mesh stays O(clients · keys), not O(clients · servers).
const fleetKeysPerClient = 2

// fleetValueSize is the stored value size (small-get regime).
const fleetValueSize = 32

// fleetRounds is how many measured get-burst rounds each client drives.
const fleetRounds = 2

// fleetStormCap bounds the post-join sweeps counted toward the miss
// storm (the storm ends the first sweep with zero primary misses).
const fleetStormCap = 5

// FleetCounts are the sweep's server counts; quick trims to the CI
// smoke cell (which is also the cell the perf gate compares, so it must
// stay a subset of the full axis).
func FleetCounts(quick bool) []int {
	if quick {
		return []int{10}
	}
	return []int{10, 100, 1000}
}

// FleetPoint is one fleet cell: N servers, 10·N clients.
type FleetPoint struct {
	Servers int `json:"servers"`
	Clients int `json:"clients"`
	// KTPS is aggregate fleet throughput over the measured rounds
	// (pipelined replicated gets, closed loop, virtual time).
	KTPS float64 `json:"ktps"`
	// Movement accounting for one join at size N: the exact ring-arc
	// fraction, the fraction of live keys whose primary changed, and the
	// theoretical share 1/(N+1).
	MovedArc      float64 `json:"moved_arc"`
	MovedMeasured float64 `json:"moved_measured"`
	MovedTheory   float64 `json:"moved_theory"`
	// Miss storm after the join: primary misses in the first sweep
	// (depth), sweeps until a clean one (duration in sweeps), and the
	// virtual time the storm occupied.
	MissStormDepth  int     `json:"miss_storm_depth"`
	MissStormSweeps int     `json:"miss_storm_sweeps"`
	MissStormUs     float64 `json:"miss_storm_us"`
	// Repairs is the total read-repair count the storm triggered
	// (vacuity: a storm that repaired nothing measured nothing).
	Repairs uint64 `json:"repairs"`
}

// fleetCell measures one server count.
func fleetCell(p *cluster.Profile, servers int, cfg RunConfig) (FleetPoint, error) {
	pt := FleetPoint{Servers: servers, Clients: 10 * servers}
	opts := cluster.Options{
		// Lean per-server shape: the cell's subject is fleet behavior,
		// not per-server parallelism, and 1000 fat servers would not fit.
		ServerWorkers:  1,
		Stripes:        1,
		MemoryLimit:    1 << 20,
		UseSRQ:         true,
		EagerThreshold: 512,
		// Two credits per endpoint: every credit pins a real eager
		// buffer on both sides of every lazily dialed connection.
		UCRCredits: 2,
	}
	f, err := cluster.NewFleet(p, cluster.FleetOptions{
		Transport: cluster.UCRIB,
		Servers:   servers,
		Seed:      cfg.Seed,
		Opts:      opts,
	})
	if err != nil {
		return pt, err
	}
	defer f.Close()

	clients := make([]*cluster.FleetClient, pt.Clients)
	keys := make([][]string, pt.Clients)
	for i := range clients {
		c, err := f.NewClient()
		if err != nil {
			return pt, fmt.Errorf("client %d: %w", i, err)
		}
		defer c.Close()
		clients[i] = c
		ks := make([]string, fleetKeysPerClient)
		for j := range ks {
			ks[j] = fmt.Sprintf("fleet-%d-%d", i, j)
		}
		keys[i] = ks
	}
	value := make([]byte, fleetValueSize)
	for i := range value {
		value[i] = byte('a' + i%26)
	}
	for i, c := range clients {
		for _, k := range keys[i] {
			if err := c.Set(k, value, 0, 0); err != nil {
				return pt, fmt.Errorf("warm %s: %w", k, err)
			}
		}
	}

	// Align every clock at a common virtual start, then drive the
	// measured rounds from ONE goroutine, round-robin — the same
	// determinism argument as the connection-scaling TPS driver: shared
	// server structures would otherwise let the real-time goroutine
	// interleaving pick the virtual service order.
	sweep := func() error {
		for i, c := range clients {
			res := c.GetBurst(keys[i], fleetKeysPerClient)
			for j, r := range res {
				if r.Err != nil || !r.Hit {
					return fmt.Errorf("client %d key %s: hit=%v err=%v", i, keys[i][j], r.Hit, r.Err)
				}
			}
		}
		return nil
	}
	maxClock := func() simnet.Time {
		var m simnet.Time
		for _, c := range clients {
			if t := c.Clock.Now(); t > m {
				m = t
			}
		}
		return m
	}
	start := maxClock()
	for _, c := range clients {
		c.Clock.AdvanceTo(start)
	}
	for r := 0; r < fleetRounds; r++ {
		if err := sweep(); err != nil {
			return pt, err
		}
	}
	makespan := maxClock() - start
	totalOps := float64(pt.Clients * fleetKeysPerClient * fleetRounds)
	pt.KTPS = totalOps / makespan.Seconds() / 1e3

	// One join at size N: movement accounting from ring snapshots plus a
	// census over every live key.
	pre := f.RingSnapshot()
	f.Join()
	post := f.RingSnapshot()
	pt.MovedArc = post.MovedFraction(pre)
	pt.MovedTheory = 1 / float64(servers+1)
	var moved, total int
	for i := range clients {
		for _, k := range keys[i] {
			total++
			if pre.Lookup(k) != post.Lookup(k) {
				moved++
			}
		}
	}
	pt.MovedMeasured = float64(moved) / float64(total)

	// Miss storm: keys now owned by the joiner miss on it and fall
	// through to the old primary (read repair heals them). Depth is the
	// first sweep's primary-miss count; the storm is over at the first
	// sweep with zero misses.
	fallthroughs := func() uint64 {
		var n uint64
		for _, c := range clients {
			n += c.Stats.Fallthroughs
		}
		return n
	}
	repairs := func() uint64 {
		var n uint64
		for _, c := range clients {
			n += c.Stats.Repairs
		}
		return n
	}
	stormStart := maxClock()
	rp0 := repairs()
	for s := 0; s < fleetStormCap; s++ {
		before := fallthroughs()
		if err := sweep(); err != nil {
			return pt, fmt.Errorf("storm sweep %d: %w", s, err)
		}
		delta := fallthroughs() - before
		pt.MissStormSweeps++
		if s == 0 {
			pt.MissStormDepth = int(delta)
		}
		if delta == 0 {
			break
		}
	}
	pt.MissStormUs = (maxClock() - stormStart).Seconds() * 1e6
	pt.Repairs = repairs() - rp0
	return pt, nil
}

// FleetSweep runs the fleet cells for every server count.
func FleetSweep(p *cluster.Profile, counts []int, cfg RunConfig) ([]FleetPoint, error) {
	cfg = cfg.withDefaults()
	var out []FleetPoint
	for _, n := range counts {
		pt, err := fleetCell(p, n, cfg)
		if err != nil {
			return nil, fmt.Errorf("bench: fleet n=%d: %w", n, err)
		}
		out = append(out, pt)
	}
	return out, nil
}

// FleetTable renders the sweep.
func FleetTable(pts []FleetPoint) string {
	var sb strings.Builder
	sb.WriteString("# fleet sweep: N servers, 10N pipelined clients, R=2, one join at size N\n")
	sb.WriteString("servers  clients     ktps   moved(arc)  moved(meas)  theory(1/N+1)  storm-depth  storm-sweeps  storm-us  repairs\n")
	for _, pt := range pts {
		fmt.Fprintf(&sb, "%-8d %-8d %8.1f   %.4f      %.4f       %.4f         %-12d %-13d %8.1f  %d\n",
			pt.Servers, pt.Clients, pt.KTPS, pt.MovedArc, pt.MovedMeasured, pt.MovedTheory,
			pt.MissStormDepth, pt.MissStormSweeps, pt.MissStormUs, pt.Repairs)
	}
	return sb.String()
}

package bench

import (
	"testing"

	"repro/internal/cluster"
)

// TestPipelineSpeedup is the PR's acceptance bar: on a single UCR
// connection, a window of 8 must beat the blocking client by at least
// 3x in virtual time — the per-op doorbell, CQ-wakeup and round-trip
// costs overlap instead of serializing.
func TestPipelineSpeedup(t *testing.T) {
	cfg := RunConfig{OpsPerPoint: 200, KeySpace: 16}
	pts, err := PipelineSweep(cluster.ClusterB(), []cluster.Transport{cluster.UCRIB},
		[]int{1, 8}, []int{64}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	byDepth := map[int]float64{}
	for _, pt := range pts {
		byDepth[pt.Depth] = pt.KTPS
	}
	if byDepth[1] <= 0 || byDepth[8] <= 0 {
		t.Fatalf("bad sweep: %+v", pts)
	}
	speedup := byDepth[8] / byDepth[1]
	t.Logf("UCR-IB 64B: depth1=%.2f KTPS depth8=%.2f KTPS speedup=%.2fx",
		byDepth[1], byDepth[8], speedup)
	if speedup < 3.0 {
		t.Fatalf("depth-8 speedup %.2fx < 3x (depth1=%.2f depth8=%.2f KTPS)",
			speedup, byDepth[1], byDepth[8])
	}
}

// TestPipelineDepthMonotonic sanity-checks that deepening the window
// never hurts on either transport (single connection, small values).
func TestPipelineDepthMonotonic(t *testing.T) {
	cfg := RunConfig{OpsPerPoint: 120, KeySpace: 16}
	pts, err := PipelineSweep(cluster.ClusterB(),
		[]cluster.Transport{cluster.UCRIB, cluster.IPoIB},
		[]int{1, 4, 16}, []int{64}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	last := map[string]float64{}
	for _, pt := range pts {
		if prev, ok := last[pt.Transport]; ok && pt.KTPS < prev*0.95 {
			t.Errorf("%s depth=%d: %.2f KTPS regressed below depth-shallower %.2f",
				pt.Transport, pt.Depth, pt.KTPS, prev)
		}
		last[pt.Transport] = pt.KTPS
	}
}

package bench

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/simnet"
)

// Mix is an instruction mix from §VI.
type Mix int

// The paper's four workloads.
const (
	// MixSet is 100% Set (Figs 3a/3b, 4a/4b).
	MixSet Mix = iota
	// MixGet is 100% Get (Figs 3c/3d, 4c/4d, 6).
	MixGet
	// MixNonInterleaved is 10% Set / 90% Get as 10 sets then 90 gets
	// (Fig 5a/5b).
	MixNonInterleaved
	// MixInterleaved is 50% Set / 50% Get, alternating (Fig 5c/5d).
	MixInterleaved
)

func (m Mix) String() string {
	switch m {
	case MixSet:
		return "set"
	case MixGet:
		return "get"
	case MixNonInterleaved:
		return "set10-get90"
	default:
		return "set50-get50"
	}
}

// ops expands the mix into a cycle of operations (true = set).
func (m Mix) ops() []bool {
	switch m {
	case MixSet:
		return []bool{true}
	case MixGet:
		return []bool{false}
	case MixNonInterleaved:
		cycle := make([]bool, 100)
		for i := 0; i < 10; i++ {
			cycle[i] = true
		}
		return cycle
	default:
		return []bool{true, false}
	}
}

// Workload generates keys and values, memslap-style: fixed-length keys
// drawn from a seeded keyspace and incompressible values of the swept
// size.
type Workload struct {
	rng     *simnet.Rand
	keys    []string
	value   []byte
	nextKey int
}

// NewWorkload builds a workload over nKeys keys with size-byte values.
func NewWorkload(seed uint64, nKeys, size int) *Workload {
	w := &Workload{rng: simnet.NewRand(seed)}
	w.keys = make([]string, nKeys)
	for i := range w.keys {
		w.keys[i] = fmt.Sprintf("memslap-%016x-%04d", w.rng.Uint64(), i)
	}
	w.value = make([]byte, size)
	for i := range w.value {
		w.value[i] = byte(w.rng.Uint64())
	}
	return w
}

// Key returns the next key round-robin.
func (w *Workload) Key() string {
	k := w.keys[w.nextKey%len(w.keys)]
	w.nextKey++
	return k
}

// Keys returns the whole keyspace.
func (w *Workload) Keys() []string { return w.keys }

// Value returns the payload.
func (w *Workload) Value() []byte { return w.value }

// runClient executes n operations of the mix on one client, recording
// per-op latency. The keyspace is pre-populated so gets always hit.
func runClient(c *cluster.Client, w *Workload, mix Mix, n int, rec *LatencyRecorder) error {
	// Populate, so gets hit and sets overwrite (steady-state behaviour).
	for _, k := range w.Keys() {
		if err := c.MC.Set(k, w.Value(), 0, 0); err != nil {
			return err
		}
	}
	cycle := mix.ops()
	for i := 0; i < n; i++ {
		key := w.Key()
		start := c.Clock.Now()
		if cycle[i%len(cycle)] {
			if err := c.MC.Set(key, w.Value(), 0, 0); err != nil {
				return err
			}
		} else {
			if _, _, _, err := c.MC.Get(key); err != nil {
				return err
			}
		}
		if rec != nil {
			rec.Record(c.Clock.Now() - start)
		}
	}
	return nil
}

package bench

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/cluster"
	"repro/internal/mcclient"
	"repro/internal/simnet"
)

// Trace support: production memcached traces (the Facebook workloads
// the paper describes) are not publicly available, so this package can
// *generate* synthetic traces with the published shape — Zipfian key
// popularity, read-mostly mixes, small values — and *replay* any trace
// in the same simple text format against a simulated deployment.
//
// Format, one operation per line (comments start with '#'):
//
//	get <key>
//	set <key> <valueSize>
//	delete <key>

// TraceOp is one replayable operation.
type TraceOp struct {
	// Op is "get", "set" or "delete".
	Op string
	// Key is the item key.
	Key string
	// Size is the value size for sets.
	Size int
}

// TraceSpec parameterizes synthetic trace generation.
type TraceSpec struct {
	// Ops is the number of operations.
	Ops int
	// Keys is the keyspace size.
	Keys int
	// ZipfS is the popularity exponent (0: uniform).
	ZipfS float64
	// GetFraction is the share of gets (rest split 90/10 set/delete).
	GetFraction float64
	// ValueSize is the set payload size.
	ValueSize int
	// Seed drives generation.
	Seed uint64
}

func (ts TraceSpec) withDefaults() TraceSpec {
	if ts.Ops <= 0 {
		ts.Ops = 10000
	}
	if ts.Keys <= 0 {
		ts.Keys = 1024
	}
	if ts.GetFraction <= 0 || ts.GetFraction > 1 {
		ts.GetFraction = 0.9
	}
	if ts.ValueSize <= 0 {
		ts.ValueSize = 128
	}
	if ts.Seed == 0 {
		ts.Seed = 42
	}
	return ts
}

// GenerateTrace writes a synthetic trace to w.
func GenerateTrace(w io.Writer, spec TraceSpec) error {
	spec = spec.withDefaults()
	rng := simnet.NewRand(spec.Seed)
	var zipf *Zipf
	if spec.ZipfS > 0 {
		zipf = NewZipf(simnet.NewRand(spec.Seed^0xace), spec.ZipfS, spec.Keys)
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# synthetic memcached trace: ops=%d keys=%d zipf=%.2f gets=%.2f value=%dB seed=%d\n",
		spec.Ops, spec.Keys, spec.ZipfS, spec.GetFraction, spec.ValueSize, spec.Seed)
	for i := 0; i < spec.Ops; i++ {
		var rank int
		if zipf != nil {
			rank = zipf.Next()
		} else {
			rank = rng.Intn(spec.Keys)
		}
		key := fmt.Sprintf("obj:%06d", rank)
		r := rng.Float64()
		switch {
		case r < spec.GetFraction:
			fmt.Fprintf(bw, "get %s\n", key)
		case r < spec.GetFraction+(1-spec.GetFraction)*0.9:
			fmt.Fprintf(bw, "set %s %d\n", key, spec.ValueSize)
		default:
			fmt.Fprintf(bw, "delete %s\n", key)
		}
	}
	return bw.Flush()
}

// ParseTrace reads a trace from r.
func ParseTrace(r io.Reader) ([]TraceOp, error) {
	var ops []TraceOp
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		op := TraceOp{Op: fields[0]}
		switch op.Op {
		case "get", "delete":
			if len(fields) != 2 {
				return nil, fmt.Errorf("trace line %d: %q", lineNo, line)
			}
			op.Key = fields[1]
		case "set":
			if len(fields) != 3 {
				return nil, fmt.Errorf("trace line %d: %q", lineNo, line)
			}
			op.Key = fields[1]
			n, err := strconv.Atoi(fields[2])
			if err != nil || n < 0 {
				return nil, fmt.Errorf("trace line %d: bad size %q", lineNo, fields[2])
			}
			op.Size = n
		default:
			return nil, fmt.Errorf("trace line %d: unknown op %q", lineNo, fields[0])
		}
		ops = append(ops, op)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return ops, nil
}

// TraceResult summarizes a replay.
type TraceResult struct {
	Ops               int
	Gets, Sets, Dels  int
	Hits, Misses      int
	MeanUs, P99Us     float64
	Makespan          simnet.Duration
	TPS               float64
	ServerEvictions   uint64
	ServerCurrItems   uint64
	ServerBytesStored uint64
}

// ReplayTrace runs the operations through one client on a fresh
// deployment and reports cache behaviour plus timing.
func ReplayTrace(p *cluster.Profile, t cluster.Transport, ops []TraceOp, deploy cluster.Options) (*TraceResult, error) {
	d := cluster.New(p, deploy)
	defer d.Close()
	c, err := d.NewClient(t, mcclient.DefaultBehaviors())
	if err != nil {
		return nil, err
	}
	defer c.Close()

	res := &TraceResult{Ops: len(ops)}
	rec := &LatencyRecorder{}
	payload := make([]byte, 1<<20)
	start := c.Clock.Now()
	for _, op := range ops {
		opStart := c.Clock.Now()
		switch op.Op {
		case "get":
			res.Gets++
			if _, _, _, err := c.MC.Get(op.Key); err == nil {
				res.Hits++
			} else if err == mcclient.ErrCacheMiss {
				res.Misses++
			} else {
				return nil, err
			}
		case "set":
			res.Sets++
			size := op.Size
			if size > len(payload) {
				size = len(payload)
			}
			if err := c.MC.Set(op.Key, payload[:size], 0, 0); err != nil {
				return nil, err
			}
		case "delete":
			res.Dels++
			if err := c.MC.Delete(op.Key); err != nil && err != mcclient.ErrCacheMiss {
				return nil, err
			}
		}
		rec.Record(c.Clock.Now() - opStart)
	}
	res.Makespan = c.Clock.Now() - start
	res.MeanUs = rec.Mean()
	res.P99Us = rec.Percentile(99)
	if res.Makespan > 0 {
		res.TPS = float64(res.Ops) / res.Makespan.Seconds()
	}
	st := d.Server.Store().Stats()
	res.ServerEvictions = st.Evictions
	res.ServerCurrItems = st.CurrItems
	res.ServerBytesStored = st.Bytes
	return res, nil
}

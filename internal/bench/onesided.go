package bench

import (
	"fmt"
	"strings"

	"repro/internal/cluster"
)

// One-sided GET study: the same 100%-get workload measured with the
// server-bypassing RDMA-read path on and off. Small values favor
// one-sided — the client trades the server's dispatch + op cost plus the
// reply AM for two short RDMA reads (bucket, entry re-read) pipelined
// around the value read. Large values favor the AM rendezvous, which
// lands the value with a zero-copy RDMA read anyway while the one-sided
// client still pays a [key||value] copy-out; wherever the curves cross
// is the size above which clients should stop going one-sided.

// OneSidedPoint is one value size measured both ways.
type OneSidedPoint struct {
	ValueSize  int     `json:"value_size"`
	OneSidedUs float64 `json:"onesided_us"`
	AMUs       float64 `json:"am_us"`
	// Speedup is AM÷one-sided mean latency: >1 means one-sided wins.
	Speedup float64 `json:"speedup"`
}

// OneSidedTPSPoint compares aggregate closed-loop throughput at one
// client count (TPSValueSize-byte gets).
type OneSidedTPSPoint struct {
	Clients     int     `json:"clients"`
	OneSidedTPS float64 `json:"onesided_tps"`
	AMTPS       float64 `json:"am_tps"`
}

// OneSidedReport is the sweep plus the aggregate numbers BENCH_6.json
// records.
type OneSidedReport struct {
	Points []OneSidedPoint `json:"points"`
	// CrossoverBytes is the smallest swept size where the AM path is at
	// least as fast (0: one-sided won at every swept size).
	CrossoverBytes int `json:"crossover_bytes"`
	// TPS sweeps client counts at TPSValueSize-byte gets. One-sided wins
	// alone (no server CPU in the path) but does not scale with clients
	// here: each get makes 2-3 dependent trips through the responder
	// HCA's engine, and that engine is a forward-only busy-until
	// Resource stamped directly from each client's clock — when one
	// closed loop runs ahead in virtual time it ratchets the engine's
	// free pointer and every other client's reads queue behind it, so
	// cross-client one-sided gets serialize at whole-op granularity (a
	// conservative property of the simulator's Resource model; the AM
	// path is immune because reply timestamps come from the server
	// goroutine's own monotone clock). CrossoverClients is the first
	// count where AM wins (0: never).
	TPSValueSize     int                `json:"tps_value_size"`
	TPS              []OneSidedTPSPoint `json:"tps"`
	CrossoverClients int                `json:"crossover_clients"`
}

// OneSidedSizes is the default value-size axis.
func OneSidedSizes() []int { return []int{4, 64, 256, 1024, 4096, 16384, 65536} }

// OneSidedLatencyPoint measures mean get latency at one size with the
// one-sided path on or off (cluster B, UCR-IB, single client).
func OneSidedLatencyPoint(size int, oneSided bool, cfg RunConfig) (float64, error) {
	deploy := cfg.Deploy
	deploy.OneSidedGet = oneSided
	rec, err := LatencyPoint(cluster.ClusterB(), cluster.UCRIB, MixGet, size,
		RunConfig{OpsPerPoint: cfg.OpsPerPoint, KeySpace: cfg.KeySpace, Seed: cfg.Seed, Deploy: deploy})
	if err != nil {
		return 0, err
	}
	return rec.Mean(), nil
}

// OneSidedSweep runs the full study: the latency axis both ways, the
// crossover, and the aggregate-TPS comparison.
func OneSidedSweep(sizes []int, cfg RunConfig) (*OneSidedReport, error) {
	cfg = cfg.withDefaults()
	if len(sizes) == 0 {
		sizes = OneSidedSizes()
	}
	rep := &OneSidedReport{TPSValueSize: 64}
	for _, size := range sizes {
		osUs, err := OneSidedLatencyPoint(size, true, cfg)
		if err != nil {
			return nil, fmt.Errorf("bench: onesided size %d: %w", size, err)
		}
		amUs, err := OneSidedLatencyPoint(size, false, cfg)
		if err != nil {
			return nil, fmt.Errorf("bench: am size %d: %w", size, err)
		}
		pt := OneSidedPoint{ValueSize: size, OneSidedUs: osUs, AMUs: amUs}
		if osUs > 0 {
			pt.Speedup = amUs / osUs
		}
		rep.Points = append(rep.Points, pt)
		if rep.CrossoverBytes == 0 && amUs <= osUs {
			rep.CrossoverBytes = size
		}
	}

	tps := func(oneSided bool, clients int) (float64, error) {
		deploy := cfg.Deploy
		deploy.OneSidedGet = oneSided
		return TPSPoint(cluster.ClusterB(), cluster.UCRIB, clients, rep.TPSValueSize,
			RunConfig{OpsPerPoint: cfg.OpsPerPoint, KeySpace: cfg.KeySpace, Seed: cfg.Seed, Deploy: deploy})
	}
	for _, n := range []int{1, 2, 4, 8} {
		osTPS, err := tps(true, n)
		if err != nil {
			return nil, err
		}
		amTPS, err := tps(false, n)
		if err != nil {
			return nil, err
		}
		rep.TPS = append(rep.TPS, OneSidedTPSPoint{Clients: n, OneSidedTPS: osTPS, AMTPS: amTPS})
		if rep.CrossoverClients == 0 && amTPS >= osTPS {
			rep.CrossoverClients = n
		}
	}
	return rep, nil
}

// OneSidedTable renders the report for the terminal.
func OneSidedTable(rep *OneSidedReport) string {
	var b strings.Builder
	b.WriteString("# one-sided GET vs AM GET: 100% gets, cluster B, UCR-IB (mean latency)\n")
	fmt.Fprintf(&b, "%-10s %12s %12s %9s\n", "value", "one-sided us", "AM us", "speedup")
	for _, pt := range rep.Points {
		fmt.Fprintf(&b, "%-10d %12.2f %12.2f %8.2fx\n", pt.ValueSize, pt.OneSidedUs, pt.AMUs, pt.Speedup)
	}
	if rep.CrossoverBytes > 0 {
		fmt.Fprintf(&b, "latency crossover: AM wins from %d-byte values\n", rep.CrossoverBytes)
	} else {
		b.WriteString("latency crossover: none in swept range (one-sided won every size)\n")
	}
	fmt.Fprintf(&b, "# aggregate TPS, %dB gets\n", rep.TPSValueSize)
	fmt.Fprintf(&b, "%-10s %12s %12s\n", "clients", "one-sided", "AM")
	for _, pt := range rep.TPS {
		fmt.Fprintf(&b, "%-10d %12.0f %12.0f\n", pt.Clients, pt.OneSidedTPS, pt.AMTPS)
	}
	if rep.CrossoverClients > 0 {
		fmt.Fprintf(&b, "TPS crossover: AM wins from %d clients\n", rep.CrossoverClients)
	} else {
		b.WriteString("TPS crossover: none in swept range (one-sided won every count)\n")
	}
	return b.String()
}

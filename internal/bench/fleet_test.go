package bench

import (
	"testing"

	"repro/internal/cluster"
)

// checkFleetPoint asserts the invariants every fleet cell must satisfy:
// throughput measured, both movement measures within 2x the theoretical
// 1/(N+1) share (and nonzero), and a miss storm that actually happened
// and then quiesced.
func checkFleetPoint(t *testing.T, pt FleetPoint) {
	t.Helper()
	if pt.KTPS <= 0 {
		t.Errorf("n=%d: no throughput measured", pt.Servers)
	}
	for name, frac := range map[string]float64{"arc": pt.MovedArc, "census": pt.MovedMeasured} {
		if frac <= 0 || frac > 2*pt.MovedTheory {
			t.Errorf("n=%d: %s movement %.5f outside (0, 2x%.5f]", pt.Servers, name, frac, pt.MovedTheory)
		}
	}
	if pt.MissStormDepth <= 0 || pt.Repairs == 0 {
		t.Errorf("n=%d: join caused no miss storm (depth=%d repairs=%d)", pt.Servers, pt.MissStormDepth, pt.Repairs)
	}
	if pt.MissStormSweeps >= fleetStormCap {
		t.Errorf("n=%d: miss storm never quiesced (%d sweeps)", pt.Servers, pt.MissStormSweeps)
	}
	if pt.MissStormUs <= 0 {
		t.Errorf("n=%d: storm has no measured duration", pt.Servers)
	}
}

// The CI smoke cell (also the perf-gate cell).
func TestFleetSweepQuick(t *testing.T) {
	pts, err := FleetSweep(cluster.ClusterB(), FleetCounts(true), RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for _, pt := range pts {
		checkFleetPoint(t, pt)
	}
	t.Log("\n" + FleetTable(pts))
}

// The headline acceptance cell: 1000 servers, 10,000 pipelined clients,
// live in virtual time — churn, replication, and read repair all real.
// The measured key movement must sit within 2x the theoretical 1/N.
func TestFleetSweep1000(t *testing.T) {
	if testing.Short() {
		t.Skip("1000-server cell takes ~25s; skipped under -short")
	}
	pts, err := FleetSweep(cluster.ClusterB(), []int{1000}, RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for _, pt := range pts {
		checkFleetPoint(t, pt)
		if pt.Clients != 10000 {
			t.Errorf("expected 10000 clients, ran %d", pt.Clients)
		}
	}
	t.Log("\n" + FleetTable(pts))
}

package bench

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/cluster"
	"repro/internal/mcclient"
	"repro/internal/simnet"
)

// This file is the multi-core scaling study the paper's §VII points at:
// aggregate throughput over (server workers × lock stripes), contrasting
// the global-cache-lock engine (Stripes=1) with the striped one.

// ScalingOpCost is the per-op engine cost the sweep charges when the
// caller doesn't override Deploy.OpCost: a CPU-bound command-processing
// regime (hash + LRU + bookkeeping dominating the HCA poll path), which
// is exactly where lock scaling is visible. With the stock sub-µs
// OpCost the HCA pipeline, not the cache lock, is the bottleneck and
// every engine looks the same.
const ScalingOpCost = 25 * simnet.Microsecond

// scalingKeySpace spreads keys across stripes evenly enough that one
// hot shard doesn't mask worker scaling.
const scalingKeySpace = 128

// scalingValueSize is the small-Get payload (§VI's "small message"
// regime).
const scalingValueSize = 64

// ScalingPoint is one cell of the workers × stripes × mix grid.
type ScalingPoint struct {
	Workers int     `json:"workers"`
	Stripes int     `json:"stripes"`
	Clients int     `json:"clients"`
	Mix     string  `json:"mix"`
	KTPS    float64 `json:"ktps"`
}

// ScalingSweep measures aggregate TPS for every (workers, stripes, mix)
// combination with nClients closed-loop clients on transport t. Unless
// cfg.Deploy.OpCost is set it charges ScalingOpCost per op, so the
// engine — not the fabric — is the bottleneck under test.
func ScalingSweep(p *cluster.Profile, t cluster.Transport, workerCounts, stripeCounts []int, nClients int, mixes []Mix, cfg RunConfig) ([]ScalingPoint, error) {
	cfg = cfg.withDefaults()
	if cfg.Deploy.OpCost == 0 {
		cfg.Deploy.OpCost = ScalingOpCost
	}
	cfg.KeySpace = scalingKeySpace
	var out []ScalingPoint
	for _, mix := range mixes {
		for _, st := range stripeCounts {
			for _, w := range workerCounts {
				c := cfg
				c.Deploy.ServerWorkers = w
				c.Deploy.Stripes = st
				tps, err := mixTPSPoint(p, t, nClients, scalingValueSize, mix, c)
				if err != nil {
					return nil, fmt.Errorf("bench: scaling %s w=%d s=%d: %w", mix, w, st, err)
				}
				out = append(out, ScalingPoint{
					Workers: w, Stripes: st, Clients: nClients,
					Mix: mix.String(), KTPS: tps / 1e3,
				})
			}
		}
	}
	return out, nil
}

// mixTPSPoint is TPSPoint generalized to an instruction mix: nClients
// closed-loop clients over a shared pre-populated keyspace, makespan-
// based aggregate TPS.
func mixTPSPoint(p *cluster.Profile, t cluster.Transport, nClients, size int, mix Mix, cfg RunConfig) (tps float64, err error) {
	cfg = cfg.withDefaults()
	d := cluster.New(p, cfg.Deploy)
	defer d.Close()

	clients := make([]*cluster.Client, nClients)
	for i := range clients {
		c, cerr := d.NewClient(t, mcclient.DefaultBehaviors())
		if cerr != nil {
			return 0, cerr
		}
		defer c.Close()
		clients[i] = c
	}
	w0 := NewWorkload(cfg.Seed, cfg.KeySpace, size)
	for _, k := range w0.Keys() {
		if err := clients[0].MC.Set(k, w0.Value(), 0, 0); err != nil {
			return 0, err
		}
	}
	var start simnet.Time
	for _, c := range clients {
		if c.Clock.Now() > start {
			start = c.Clock.Now()
		}
	}
	for _, c := range clients {
		c.Clock.AdvanceTo(start)
	}

	type result struct {
		end simnet.Time
		err error
	}
	results := make(chan result, nClients)
	cycle := mix.ops()
	opsPerClient := cfg.OpsPerPoint
	for i, c := range clients {
		go func(i int, c *cluster.Client) {
			w := NewWorkload(cfg.Seed, cfg.KeySpace, size)
			w.nextKey = i
			for n := 0; n < opsPerClient; n++ {
				key := w.Key()
				if cycle[n%len(cycle)] {
					if err := c.MC.Set(key, w.Value(), 0, 0); err != nil {
						results <- result{err: err}
						return
					}
				} else if _, _, _, err := c.MC.Get(key); err != nil {
					results <- result{err: err}
					return
				}
			}
			results <- result{end: c.Clock.Now()}
		}(i, c)
	}
	var makespan simnet.Duration
	for range clients {
		r := <-results
		if r.err != nil {
			return 0, r.err
		}
		if d := r.end - start; d > makespan {
			makespan = d
		}
	}
	totalOps := float64(nClients * opsPerClient)
	return totalOps / makespan.Seconds(), nil
}

// ScalingTable renders the sweep as one pivot table per mix: rows are
// worker counts, columns stripe counts.
func ScalingTable(points []ScalingPoint) string {
	byMix := make(map[string][]ScalingPoint)
	var mixOrder []string
	for _, pt := range points {
		if _, seen := byMix[pt.Mix]; !seen {
			mixOrder = append(mixOrder, pt.Mix)
		}
		byMix[pt.Mix] = append(byMix[pt.Mix], pt)
	}
	var sb strings.Builder
	for _, mix := range mixOrder {
		pts := byMix[mix]
		workers, stripes := axes(pts)
		cell := make(map[[2]int]float64, len(pts))
		clients := 0
		for _, pt := range pts {
			cell[[2]int{pt.Workers, pt.Stripes}] = pt.KTPS
			clients = pt.Clients
		}
		fmt.Fprintf(&sb, "# scaling: %s, %d clients (KTPS)\n", mix, clients)
		sb.WriteString("workers")
		for _, st := range stripes {
			fmt.Fprintf(&sb, "  stripes=%-3d", st)
		}
		sb.WriteString("\n")
		for _, w := range workers {
			fmt.Fprintf(&sb, "%-7d", w)
			for _, st := range stripes {
				fmt.Fprintf(&sb, "  %-11.2f", cell[[2]int{w, st}])
			}
			sb.WriteString("\n")
		}
	}
	return sb.String()
}

// axes extracts the sorted distinct worker and stripe counts.
func axes(pts []ScalingPoint) (workers, stripes []int) {
	ws := make(map[int]bool)
	ss := make(map[int]bool)
	for _, pt := range pts {
		ws[pt.Workers] = true
		ss[pt.Stripes] = true
	}
	for w := range ws {
		workers = append(workers, w)
	}
	for s := range ss {
		stripes = append(stripes, s)
	}
	sort.Ints(workers)
	sort.Ints(stripes)
	return workers, stripes
}

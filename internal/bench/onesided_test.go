package bench

import "testing"

// TestOneSidedBeatsAMSmallValues is the PR's acceptance bar: for small
// values on a single client, the RDMA-read GET must have lower mean
// latency than the AM GET — the client trades the server's dispatch +
// op cost plus the reply AM for reads its own HCA drives.
func TestOneSidedBeatsAMSmallValues(t *testing.T) {
	cfg := RunConfig{OpsPerPoint: 40, KeySpace: 8}
	for _, size := range []int{4, 64, 1024} {
		osUs, err := OneSidedLatencyPoint(size, true, cfg)
		if err != nil {
			t.Fatal(err)
		}
		amUs, err := OneSidedLatencyPoint(size, false, cfg)
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("%dB: one-sided %.2f us, AM %.2f us (%.2fx)", size, osUs, amUs, amUs/osUs)
		if osUs <= 0 || amUs <= 0 {
			t.Fatalf("%dB: degenerate latencies: one-sided %v, AM %v", size, osUs, amUs)
		}
		if osUs >= amUs {
			t.Errorf("%dB: one-sided GET (%.2f us) did not beat AM GET (%.2f us)", size, osUs, amUs)
		}
	}
}

// TestOneSidedSweepShape runs a trimmed sweep end to end and checks the
// report invariants the JSON consumers rely on.
func TestOneSidedSweepShape(t *testing.T) {
	rep, err := OneSidedSweep([]int{64, 65536}, RunConfig{OpsPerPoint: 10, KeySpace: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Points) != 2 {
		t.Fatalf("points = %+v", rep.Points)
	}
	for _, pt := range rep.Points {
		if pt.OneSidedUs <= 0 || pt.AMUs <= 0 || pt.Speedup <= 0 {
			t.Fatalf("degenerate point: %+v", pt)
		}
	}
	if len(rep.TPS) == 0 {
		t.Fatal("no TPS points")
	}
	for _, pt := range rep.TPS {
		if pt.OneSidedTPS <= 0 || pt.AMTPS <= 0 {
			t.Fatalf("degenerate TPS point: %+v", pt)
		}
	}
	out := OneSidedTable(rep)
	if out == "" {
		t.Fatal("empty table")
	}
}

package bench

import (
	"strings"
	"testing"

	"repro/internal/cluster"
)

func TestAblationEagerThreshold(t *testing.T) {
	cfg := RunConfig{OpsPerPoint: 8, KeySpace: 4}
	// 16 KB values: below an 8 KB threshold they rendezvous; with a
	// 64 KB threshold they pack eagerly.
	res, err := AblationEagerThreshold(16*1024, []int{1024, 8192, 65536}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 {
		t.Fatalf("res = %v", res)
	}
	for th, us := range res {
		if us <= 0 {
			t.Fatalf("threshold %d: %v us", th, us)
		}
	}
	t.Logf("eager threshold sweep (16KB gets): %v", res)
}

func TestAblationWorkerCount(t *testing.T) {
	cfg := RunConfig{OpsPerPoint: 30, KeySpace: 8}
	res, err := AblationWorkerCount([]int{1, 4}, 8, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res[4] <= res[1] {
		t.Fatalf("more workers did not help: %v", res)
	}
	out := AblationResultString("workers", res, "KTPS")
	if !strings.Contains(out, "KTPS") {
		t.Fatal("bad table")
	}
}

func TestAblationPollingVsEvents(t *testing.T) {
	cfg := RunConfig{OpsPerPoint: 10, KeySpace: 4}
	poll, ev, err := AblationPollingVsEvents(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// §II-A1: polling yields the lowest latency.
	if ev <= poll {
		t.Fatalf("events (%v us) should be slower than polling (%v us)", ev, poll)
	}
}

func TestAblationRCvsUD(t *testing.T) {
	cfg := RunConfig{OpsPerPoint: 10, KeySpace: 4}
	rc, ud, err := AblationRCvsUD(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rc <= 0 || ud <= 0 {
		t.Fatalf("rc=%v ud=%v", rc, ud)
	}
	t.Logf("RC=%v us, UD=%v us", rc, ud)
}

func TestAblationCounterAcks(t *testing.T) {
	nullUs, complUs, acksNull, acksCompl, err := AblationCounterAcks(20)
	if err != nil {
		t.Fatal(err)
	}
	// §IV-C: NULL counters suppress the optional internal message.
	if acksNull != 0 {
		t.Fatalf("NULL-counter exchange produced %d acks", acksNull)
	}
	if acksCompl == 0 {
		t.Fatal("completion counter produced no acks")
	}
	if complUs <= nullUs {
		t.Fatalf("completion-counter round trip (%v) should cost more than NULL (%v)", complUs, nullUs)
	}
}

func TestMGetSweepBatchingWins(t *testing.T) {
	p := cluster.ClusterB()
	res, err := MGetSweep(p, []cluster.Transport{cluster.UCRIB, cluster.IPoIB}, 16, 64, RunConfig{OpsPerPoint: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("res = %+v", res)
	}
	for _, r := range res {
		if r.BatchedUs >= r.SinglesUs {
			t.Errorf("%s: batched mget (%v us) not faster than %v us of singles", r.Transport, r.BatchedUs, r.SinglesUs)
		}
		if r.Improvement < 2 {
			t.Errorf("%s: batching improvement only %.1fx", r.Transport, r.Improvement)
		}
		t.Logf("%s: 16 singles %.1f us vs one mget %.1f us (%.1fx)", r.Transport, r.SinglesUs, r.BatchedUs, r.Improvement)
	}
}

func TestClientScaling(t *testing.T) {
	p := cluster.ClusterB()
	res, err := ClientScaling(p, cluster.UCRIB, []int{4, 16}, RunConfig{OpsPerPoint: 30})
	if err != nil {
		t.Fatal(err)
	}
	if res[16] <= res[4] {
		t.Fatalf("TPS did not grow with clients: %v", res)
	}
}

func TestSRQFootprintAblation(t *testing.T) {
	// Per-endpoint windows grow linearly with clients; the SRQ pool is
	// fixed, so it wins past a crossover (§VII's scalability argument).
	p := cluster.ClusterB()
	perEPSmall, srqSmall, err := SRQFootprint(p, 4, RunConfig{OpsPerPoint: 1})
	if err != nil {
		t.Fatal(err)
	}
	perEPBig, srqBig, err := SRQFootprint(p, 32, RunConfig{OpsPerPoint: 1})
	if err != nil {
		t.Fatal(err)
	}
	if perEPBig <= perEPSmall {
		t.Fatalf("per-endpoint footprint should grow: %d then %d", perEPSmall, perEPBig)
	}
	if srqBig != srqSmall {
		t.Fatalf("SRQ footprint should stay flat: %d then %d", srqSmall, srqBig)
	}
	if srqBig >= perEPBig {
		t.Fatalf("at 32 clients SRQ (%d) should undercut windows (%d)", srqBig, perEPBig)
	}
	t.Logf("4 clients: windows %d vs SRQ %d; 32 clients: windows %d vs SRQ %d",
		perEPSmall, srqSmall, perEPBig, srqBig)
}

package bench

import (
	"fmt"
	"strings"

	"repro/internal/cluster"
	"repro/internal/mcclient"
	"repro/internal/simnet"
)

// FaultCell is one (transport, drop%) measurement of the fault sweep:
// a closed-loop get run over a lossy fabric, with every recovery layer
// active — RC retransmission under UCR, RTO retransmission under the
// socket transports, and client retry+backoff above both.
type FaultCell struct {
	Transport cluster.Transport
	DropPct   float64
	// Ops is the attempted operation count; Failed counts operations
	// that still errored after every retry layer gave up.
	Ops    int
	Failed int
	// MeanUs/P99Us are latencies over the completed operations.
	MeanUs float64
	P99Us  float64
	// Retransmits counts wire-level resends: HCA retransmissions for
	// UCR, provider RTO retransmissions for socket transports.
	Retransmits uint64
}

// faultBehaviors is the client configuration for lossy runs: bounded
// retry with backoff (no ejection — the server is healthy, the fabric
// is not) and, over UCR, an op timeout so the AM retry budget engages.
func faultBehaviors(t cluster.Transport) mcclient.Behaviors {
	b := mcclient.DefaultBehaviors()
	b.Retries = 3
	b.RetryBackoff = 200 * simnet.Microsecond
	if t == cluster.UCRIB {
		b.OpTimeout = 4 * simnet.Millisecond
	}
	return b
}

// FaultSweep measures every transport at every drop percentage, one
// fresh deployment per cell so fault streams never leak across cells.
// With the same RunConfig the sweep is deterministic: per-pair verdict
// streams are seeded, so two invocations return identical cells.
func FaultSweep(p *cluster.Profile, transports []cluster.Transport, dropPcts []float64, size int, cfg RunConfig) ([]FaultCell, error) {
	cfg = cfg.withDefaults()
	var out []FaultCell
	for _, t := range transports {
		for _, drop := range dropPcts {
			cell, err := faultPoint(p, t, drop, size, cfg)
			if err != nil {
				return nil, fmt.Errorf("bench: fault sweep %s at %.0f%%: %w", t, drop, err)
			}
			out = append(out, cell)
		}
	}
	return out, nil
}

func faultPoint(p *cluster.Profile, t cluster.Transport, dropPct float64, size int, cfg RunConfig) (FaultCell, error) {
	deploy := cfg.Deploy
	if dropPct > 0 {
		deploy.Faults = cluster.LossyFaults(dropPct, cfg.Seed)
	}
	d := cluster.New(p, deploy)
	defer d.Close()
	c, err := d.NewClient(t, faultBehaviors(t))
	if err != nil {
		return FaultCell{}, err
	}
	defer c.Close()

	cell := FaultCell{Transport: t, DropPct: dropPct, Ops: cfg.OpsPerPoint}
	w := NewWorkload(cfg.Seed, cfg.KeySpace, size)
	for _, k := range w.Keys() {
		if err := c.MC.Set(k, w.Value(), 0, 0); err != nil {
			cell.Failed++
		}
	}
	rec := &LatencyRecorder{}
	for n := 0; n < cfg.OpsPerPoint; n++ {
		start := c.Clock.Now()
		_, _, _, err := c.MC.Get(w.Key())
		if err != nil && err != mcclient.ErrCacheMiss {
			cell.Failed++
			continue
		}
		rec.Record(c.Clock.Now() - start)
	}
	cell.MeanUs = rec.Mean()
	cell.P99Us = rec.Percentile(99)

	if t == cluster.UCRIB {
		if rt := c.Runtime(); rt != nil {
			cell.Retransmits += rt.HCA().Retransmits()
		}
		for _, hca := range d.ServerHCAs {
			cell.Retransmits += hca.Retransmits()
		}
	} else if prov := d.Provider(t); prov != nil {
		cell.Retransmits = prov.Retransmits()
	}
	return cell, nil
}

// FaultSweepString renders the sweep as a fixed-width table.
func FaultSweepString(cells []FaultCell) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %6s %6s %7s %12s %12s %12s\n",
		"transport", "drop%", "ops", "failed", "mean(us)", "p99(us)", "retransmits")
	for _, c := range cells {
		fmt.Fprintf(&b, "%-10s %6.1f %6d %7d %12.2f %12.2f %12d\n",
			c.Transport, c.DropPct, c.Ops, c.Failed, c.MeanUs, c.P99Us, c.Retransmits)
	}
	return b.String()
}

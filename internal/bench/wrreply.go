package bench

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/memcached"
)

// The write-reply study (BENCH_9): the same pipelined closed-loop GET
// sweep as BENCH_4/BENCH_8, run twice per cell — once on the plain AM
// reply path and once with the write-based reply path armed — so the
// table locates the eager/rendezvous crossover empirically. Below the
// server's 1 KB crossover the two columns coincide (the armed client
// still advertises windows, the server still answers eagerly); between
// the crossover and the client's 64 KB reply slot the armed column is
// served by RDMA writes sourced straight from the slab chunk; past the
// slot both columns fall back to the rendezvous read.

// WriteReplyTransport labels the armed column in tables, reports and
// mcgate baselines (the plain column keeps the UCR-IB label, so its
// cells gate against the BENCH_4/BENCH_8 trajectory too).
const WriteReplyTransport = "UCR-IB+WR"

// WriteReplySizes is the value-size axis: one point below the server
// crossover, the 4 KB regression cell from BENCH_8, the largest
// slot-resident value, and one far past the slot (rendezvous fallback;
// 512 KB is the largest value the default slab classes can store).
func WriteReplySizes(quick bool) []int {
	if quick {
		return []int{64, 4096}
	}
	return []int{64, 1024, 4096, 64 << 10, 512 << 10}
}

// WriteReplySweep measures every (depth, size) cell in both modes on
// UCR-IB, each on a fresh single-server deployment. Cells whose reply
// lands inside the write band (past the server crossover, within the
// client slot) are vacuity-checked: an armed run that never posted a
// write reply measured the wrong path.
func WriteReplySweep(p *cluster.Profile, depths, sizes []int, cfg RunConfig) ([]PipelinePoint, error) {
	var out []PipelinePoint
	for _, size := range sizes {
		for _, armed := range []bool{false, true} {
			for _, depth := range depths {
				c := cfg
				c.Deploy.WriteReplies = armed
				pt, err := pipelinePoint(p, cluster.UCRIB, depth, size, c)
				if err != nil {
					return nil, fmt.Errorf("bench: wrreply armed=%v depth=%d size=%d: %w", armed, depth, size, err)
				}
				if armed {
					pt.Transport = WriteReplyTransport
					if inWriteBand(size) && pt.WriteReplies == 0 {
						return nil, fmt.Errorf("bench: wrreply depth=%d size=%d: armed sweep never posted a write reply (vacuous cell)", depth, size)
					}
				}
				out = append(out, pt)
			}
		}
	}
	return out, nil
}

// inWriteBand reports whether a GET reply for a value of this size is
// eligible for the write path under the default server crossover (1 KB,
// reply header included) and the default 64 KB client reply slot.
func inWriteBand(size int) bool {
	return memcached.GetWSlotHdrLen+size > 1<<10 && size <= 64<<10
}

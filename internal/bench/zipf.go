package bench

import (
	"math"

	"repro/internal/simnet"
)

// Zipf is a Zipfian key-popularity sampler. The paper's motivation is
// exactly this traffic: social-network reads where a small hot set
// dominates (Facebook's memcached fleet, §I). Production traces are not
// available, so skewed synthetic popularity is the standard stand-in.
//
// The sampler precomputes the CDF over n ranks with exponent s>0
// (s≈0.99 matches the classical web/memcached measurements) and draws
// by binary search, so sampling is O(log n) with no rejection loop and
// fully deterministic given the Rand.
type Zipf struct {
	cdf []float64
	rng *simnet.Rand
}

// NewZipf builds a sampler over ranks [0, n) with exponent s.
func NewZipf(rng *simnet.Rand, s float64, n int) *Zipf {
	if n < 1 {
		n = 1
	}
	z := &Zipf{cdf: make([]float64, n), rng: rng}
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), s)
		z.cdf[i] = sum
	}
	for i := range z.cdf {
		z.cdf[i] /= sum
	}
	return z
}

// Next draws a rank: 0 is the hottest key.
func (z *Zipf) Next() int {
	u := z.rng.Float64()
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// HotFraction reports the probability mass of the top-k ranks (used by
// tests and for reporting workload skew).
func (z *Zipf) HotFraction(k int) float64 {
	if k <= 0 {
		return 0
	}
	if k > len(z.cdf) {
		k = len(z.cdf)
	}
	return z.cdf[k-1]
}

// ZipfWorkload couples the sampler with a Workload's keyspace: Key()
// draws by popularity instead of round-robin.
type ZipfWorkload struct {
	*Workload
	z *Zipf
}

// NewZipfWorkload builds a skewed workload over nKeys keys of the given
// value size. keySeed fixes the keyspace (share it across clients so a
// populated cache hits); samplerSeed varies each client's draw order.
func NewZipfWorkload(keySeed, samplerSeed uint64, nKeys, size int, s float64) *ZipfWorkload {
	w := NewWorkload(keySeed, nKeys, size)
	return &ZipfWorkload{
		Workload: w,
		z:        NewZipf(simnet.NewRand(samplerSeed^0x5eed), s, nKeys),
	}
}

// Key draws a key with Zipfian popularity.
func (w *ZipfWorkload) Key() string {
	return w.Keys()[w.z.Next()]
}

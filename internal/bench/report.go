package bench

import (
	"fmt"
	"io"
	"strings"
)

// WriteTable renders a figure as an aligned text table (the rows the
// paper's plots are drawn from).
func WriteTable(w io.Writer, f *Figure) error {
	cols := append([]string{f.XLabel}, f.SeriesOrder...)
	widths := make([]int, len(cols))
	for i, c := range cols {
		widths[i] = len(c)
	}
	rows := make([][]string, len(f.XTicks))
	for r, tick := range f.XTicks {
		row := make([]string, len(cols))
		row[0] = tick
		for c, name := range f.SeriesOrder {
			vals := f.Series[name]
			if r < len(vals) {
				row[c+1] = fmt.Sprintf("%.2f", vals[r])
			} else {
				row[c+1] = "-"
			}
		}
		rows[r] = row
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	if _, err := fmt.Fprintf(w, "# %s: %s (%s)\n", f.ID, f.Title, f.Unit); err != nil {
		return err
	}
	writeRow := func(cells []string) error {
		parts := make([]string, len(cells))
		for i, cell := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], cell)
		}
		_, err := fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
		return err
	}
	if err := writeRow(cols); err != nil {
		return err
	}
	for _, row := range rows {
		if err := writeRow(row); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSV renders a figure as CSV.
func WriteCSV(w io.Writer, f *Figure) error {
	if _, err := fmt.Fprintf(w, "%s,%s\n", f.XLabel, strings.Join(f.SeriesOrder, ",")); err != nil {
		return err
	}
	for r, tick := range f.XTicks {
		cells := []string{tick}
		for _, name := range f.SeriesOrder {
			vals := f.Series[name]
			if r < len(vals) {
				cells = append(cells, fmt.Sprintf("%.3f", vals[r]))
			} else {
				cells = append(cells, "")
			}
		}
		if _, err := fmt.Fprintln(w, strings.Join(cells, ",")); err != nil {
			return err
		}
	}
	return nil
}

// SpeedupOver reports, per x-tick, how many times larger the named
// baseline series is than the reference series (the paper quotes its
// results as "factor of N" improvements of UCR over each sockets path).
func (f *Figure) SpeedupOver(reference, baseline string) []float64 {
	ref, ok1 := f.Series[reference]
	base, ok2 := f.Series[baseline]
	if !ok1 || !ok2 {
		return nil
	}
	n := len(ref)
	if len(base) < n {
		n = len(base)
	}
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		if ref[i] > 0 {
			out[i] = base[i] / ref[i]
		}
	}
	return out
}

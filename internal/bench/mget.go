package bench

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/mcclient"
)

// MGetComparison measures fetching batchSize items of valueSize bytes
// as individual Gets versus one batched GetMulti, per transport. The
// paper (§V) notes mget follows from the same active-message
// principles; this quantifies what the batching buys on each path.
type MGetComparison struct {
	Transport   cluster.Transport
	SinglesUs   float64 // total virtual µs for batchSize single gets
	BatchedUs   float64 // virtual µs for one GetMulti of the same keys
	Improvement float64
}

// MGetSweep runs the comparison on the given profile.
func MGetSweep(p *cluster.Profile, transports []cluster.Transport, batchSize, valueSize int, cfg RunConfig) ([]MGetComparison, error) {
	cfg = cfg.withDefaults()
	var out []MGetComparison
	for _, tr := range transports {
		d := cluster.New(p, cfg.Deploy)
		c, err := d.NewClient(tr, mcclient.DefaultBehaviors())
		if err != nil {
			d.Close()
			return nil, err
		}
		keys := make([]string, batchSize)
		w := NewWorkload(cfg.Seed, 1, valueSize)
		for i := range keys {
			keys[i] = fmt.Sprintf("mget-%04d", i)
			if err := c.MC.Set(keys[i], w.Value(), 0, 0); err != nil {
				c.Close()
				d.Close()
				return nil, err
			}
		}
		// Warm once each way.
		for _, k := range keys[:1] {
			if _, _, _, err := c.MC.Get(k); err != nil {
				c.Close()
				d.Close()
				return nil, err
			}
		}
		if _, err := c.MC.GetMulti(keys); err != nil {
			c.Close()
			d.Close()
			return nil, err
		}

		const rounds = 10
		start := c.Clock.Now()
		for r := 0; r < rounds; r++ {
			for _, k := range keys {
				if _, _, _, err := c.MC.Get(k); err != nil {
					c.Close()
					d.Close()
					return nil, err
				}
			}
		}
		singles := float64(c.Clock.Now()-start) / rounds / 1e3

		start = c.Clock.Now()
		for r := 0; r < rounds; r++ {
			got, err := c.MC.GetMulti(keys)
			if err != nil || len(got) != batchSize {
				c.Close()
				d.Close()
				return nil, fmt.Errorf("bench: mget on %s: %d items, %v", tr, len(got), err)
			}
		}
		batched := float64(c.Clock.Now()-start) / rounds / 1e3

		out = append(out, MGetComparison{
			Transport:   tr,
			SinglesUs:   singles,
			BatchedUs:   batched,
			Improvement: singles / batched,
		})
		c.Close()
		d.Close()
	}
	return out, nil
}

// SRQFootprint compares the server's per-worker receive-buffer memory
// with per-endpoint credit windows versus one shared receive queue
// (§VII: the SRQ/UD direction keeps buffer memory flat as clients
// grow). It returns total server receive-buffer bytes for both modes
// after nClients connect and trade one op each.
func SRQFootprint(p *cluster.Profile, nClients int, cfg RunConfig) (perEndpointBytes, srqBytes int64, err error) {
	cfg = cfg.withDefaults()
	run := func(useSRQ bool) (int64, error) {
		deploy := cfg.Deploy
		deploy.UseSRQ = useSRQ
		d := cluster.New(p, deploy)
		defer d.Close()
		for i := 0; i < nClients; i++ {
			c, cerr := d.NewClient(cluster.UCRIB, mcclient.DefaultBehaviors())
			if cerr != nil {
				return 0, cerr
			}
			defer c.Close()
			if err := c.MC.Set(fmt.Sprintf("warm-%d", i), []byte("x"), 0, 0); err != nil {
				return 0, err
			}
		}
		return d.Server.UCRRecvBufferBytes(), nil
	}
	if perEndpointBytes, err = run(false); err != nil {
		return 0, 0, err
	}
	if srqBytes, err = run(true); err != nil {
		return 0, 0, err
	}
	return perEndpointBytes, srqBytes, nil
}

// ClientScaling measures aggregate 4-byte-get TPS as the client count
// grows — extending the paper's Fig 6 beyond 16 clients toward the
// regime §VII's UD work targets.
func ClientScaling(p *cluster.Profile, t cluster.Transport, counts []int, cfg RunConfig) (map[int]float64, error) {
	cfg = cfg.withDefaults()
	out := make(map[int]float64, len(counts))
	for _, n := range counts {
		tps, err := TPSPoint(p, t, n, 4, cfg)
		if err != nil {
			return nil, err
		}
		out[n] = tps / 1e3
	}
	return out, nil
}

package bench

import (
	"fmt"
	"os"
	"os/exec"
	"sort"
	"strings"
	"testing"

	"repro/internal/cluster"
)

// Golden Workers=1 figure tables (ops=40), captured from the engine
// before lock striping landed. Latency panels are single-client and
// closed-loop, so the striped engine — whose lock model only ever
// charges *queueing* — must reproduce them bit-for-bit at any stripe
// count. Values are the %.2f renderings WriteTable emits, matching
// EXPERIMENTS.md.
var goldenFigures = map[string]map[string][]string{
	"fig3a": {
		"UCR-IB":     {"10.08", "10.08", "10.10", "10.17", "10.46", "11.61", "13.18", "16.28"},
		"IPoIB":      {"87.43", "87.44", "87.52", "87.81", "88.97", "93.58", "99.73", "112.02"},
		"SDP":        {"81.32", "81.34", "81.39", "81.60", "82.44", "85.77", "90.21", "99.08"},
		"10GigE-TOE": {"55.10", "55.12", "55.19", "55.46", "56.54", "60.85", "66.58", "78.05"},
		"1GigE":      {"86.03", "86.08", "86.31", "87.15", "90.55", "104.08", "111.96", "135.41"},
	},
	"fig4c": {
		"UCR-IB": {"5.22", "5.22", "5.23", "5.28", "5.45", "6.14", "7.08", "8.94"},
		"IPoIB":  {"54.97", "54.98", "55.01", "55.13", "55.62", "57.54", "60.10", "65.22"},
		"SDP":    {"65.80", "69.18", "63.64", "62.31", "60.73", "65.91", "66.15", "76.07"},
	},
	"fig5b": {
		"UCR-IB": {"5.22", "5.22", "5.23", "5.28", "5.45", "6.14", "7.08", "8.94"},
		"IPoIB":  {"54.95", "54.96", "54.99", "55.11", "55.60", "57.52", "60.08", "65.20"},
		"SDP":    {"66.42", "63.52", "62.14", "63.83", "61.12", "68.67", "69.68", "75.00"},
	},
}

const goldenChildEnv = "BENCH_GOLDEN_CHILD"

// goldenFigureIDs is the fixed figure order — Cluster B's SDP jitter
// streams draw from per-endpoint RNGs seeded by a process-global
// counter, so reproducing the goldens requires replaying the exact
// endpoint-creation history they were captured with.
func goldenFigureIDs() []string {
	ids := make([]string, 0, len(goldenFigures))
	for id := range goldenFigures {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// TestFigureTablesBitIdentical regenerates representative latency
// panels (both clusters, set/get/mixed) with Workers=1 and asserts
// every cell matches the pre-striping goldens exactly. The figures run
// in a re-exec'd copy of the test binary: other tests in this package
// also create endpoints, and the goldens are only reproducible from a
// process with pristine endpoint-seed state.
func TestFigureTablesBitIdentical(t *testing.T) {
	out, err := exec.Command(os.Args[0],
		"-test.run", "^TestFigureTablesBitIdentical$").CombinedOutput()
	if err != nil {
		t.Fatalf("golden child: %v\n%s", err, out)
	}
	got := make(map[string][]string)
	for _, line := range strings.Split(string(out), "\n") {
		cell, ok := strings.CutPrefix(line, "golden ")
		if !ok {
			continue
		}
		fields := strings.Fields(cell)
		got[fields[0]] = fields[1:]
	}
	for _, id := range goldenFigureIDs() {
		for series, cells := range goldenFigures[id] {
			rendered := got[id+"/"+series]
			if len(rendered) != len(cells) {
				t.Errorf("%s/%s: %d cells, want %d", id, series, len(rendered), len(cells))
				continue
			}
			for i, cell := range cells {
				if rendered[i] != cell {
					t.Errorf("%s/%s[%d] = %s, want %s (bit-identity broken)",
						id, series, i, rendered[i], cell)
				}
			}
		}
	}
}

// runGoldenChild computes the figure tables from pristine process state
// and prints one "golden <id>/<series> <cells...>" line per series.
// Called from TestMain before any test (and any endpoint) exists.
func runGoldenChild() {
	for _, id := range goldenFigureIDs() {
		spec, ok := FigureByID(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown figure %s\n", id)
			os.Exit(1)
		}
		fig, err := spec.Run(RunConfig{
			OpsPerPoint: 40,
			Deploy:      cluster.Options{ServerWorkers: 1},
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		for series := range goldenFigures[id] {
			cells := make([]string, len(fig.Series[series]))
			for i, v := range fig.Series[series] {
				cells[i] = fmt.Sprintf("%.2f", v)
			}
			fmt.Printf("golden %s/%s %s\n", id, series, strings.Join(cells, " "))
		}
	}
	os.Exit(0)
}

// isGoldenChild is read at package init, before TestMain marks the
// environment for re-exec'd children.
var isGoldenChild = os.Getenv(goldenChildEnv) == "1"

func TestMain(m *testing.M) {
	if isGoldenChild {
		runGoldenChild()
	}
	os.Setenv(goldenChildEnv, "1")
	os.Exit(m.Run())
}

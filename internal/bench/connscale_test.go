package bench

import (
	"strings"
	"testing"

	"repro/internal/cluster"
)

// TestConnScaleAcceptance pins the §VII scalability claims end to end:
// at 10⁴ simulated clients the shared-SRQ server's per-connection
// receive-buffer bytes sit at least 10× below the RC-per-client
// baseline, while at 10² live clients shared-SRQ aggregate TPS gives up
// no more than 10% against RC.
func TestConnScaleAcceptance(t *testing.T) {
	rep, err := ConnScaleSweep(cluster.ClusterB(), 100, RunConfig{OpsPerPoint: 10})
	if err != nil {
		t.Fatalf("ConnScaleSweep: %v", err)
	}

	rcPer := rep.PerClientAt("rc", 10_000)
	srqPer := rep.PerClientAt("srq", 10_000)
	if rcPer <= 0 || srqPer <= 0 {
		t.Fatalf("degenerate memory models: rc=%.1f srq=%.1f B/client", rcPer, srqPer)
	}
	if srqPer*10 > rcPer {
		t.Errorf("per-connection bytes at 10^4 clients: srq=%.1f rc=%.1f, want >=10x gap",
			srqPer, rcPer)
	}

	rcTPS, srqTPS := rep.TPS["rc"], rep.TPS["srq"]
	if rcTPS <= 0 || srqTPS <= 0 {
		t.Fatalf("degenerate TPS: rc=%.0f srq=%.0f", rcTPS, srqTPS)
	}
	if srqTPS < 0.9*rcTPS {
		t.Errorf("TPS at 100 clients: srq=%.0f rc=%.0f, srq gives up >10%%", srqTPS, rcTPS)
	}

	// The other modes at least function and help the memory picture.
	for _, mode := range []string{"ud", "mux"} {
		if rep.TPS[mode] <= 0 {
			t.Errorf("%s mode TPS = %.0f", mode, rep.TPS[mode])
		}
		if per := rep.PerClientAt(mode, 10_000); per >= rcPer {
			t.Errorf("%s per-client bytes at 10^4 = %.1f, not below rc %.1f", mode, per, rcPer)
		}
	}

	// Every mode reports both measured and extrapolated points.
	measured := map[string]int{}
	for _, pt := range rep.Points {
		if pt.Measured {
			measured[pt.Mode]++
		}
	}
	for _, mode := range []string{"rc", "srq", "ud", "mux"} {
		if measured[mode] != len(connScaleFitCounts) {
			t.Errorf("%s: %d measured points, want %d", mode, measured[mode], len(connScaleFitCounts))
		}
	}

	table := ConnScaleTable(rep)
	if !strings.Contains(table, "rc") || !strings.Contains(table, "10000") {
		t.Fatalf("table missing rows:\n%s", table)
	}
	t.Logf("\n%s", table)
}

//go:build race

package bench

// raceEnabled reports that this test binary carries race-detector
// instrumentation (see scaling_test.go).
const raceEnabled = true

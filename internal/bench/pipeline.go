package bench

import (
	"fmt"
	"runtime"
	"sort"
	"strings"

	"repro/internal/cluster"
	"repro/internal/mcclient"
)

// This file is the pipelining study: single connection, closed loop,
// window of N requests in flight. Depth 1 is the blocking client the
// figure benchmarks use; deeper windows overlap the per-op fixed costs
// (doorbell, CQ wakeup, round trip) that serialize the blocking path,
// and batch posts/polls at the coalesced rates.

// PipelinePoint is one cell of the depth × transport × size sweep.
// KTPS and NsPerOp are virtual-time measures (the modeled hardware);
// AllocsPerOp is a real process-wide malloc count per operation over
// the measured loop — the perf gate's handle on the serving loop's
// allocation discipline (0 for the steady-state UCR GET path).
type PipelinePoint struct {
	Transport   string  `json:"transport"`
	Depth       int     `json:"depth"`
	ValueSize   int     `json:"value_size"`
	KTPS        float64 `json:"ktps"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	// WriteReplies counts the replies that landed through the client's
	// reply window over the whole connection (warmup included) — the
	// write-reply sweep's vacuity evidence. Zero (and omitted) whenever
	// the deployment doesn't arm the path.
	WriteReplies uint64 `json:"write_replies,omitempty"`
}

// pipelinePoint measures closed-loop Get throughput on one connection
// at the given window depth: cfg.OpsPerPoint gets are issued through a
// Pipeline over a pre-populated keyspace, KTPS from the makespan.
func pipelinePoint(p *cluster.Profile, t cluster.Transport, depth, size int, cfg RunConfig) (PipelinePoint, error) {
	pt := PipelinePoint{Transport: string(t), Depth: depth, ValueSize: size}
	cfg = cfg.withDefaults()
	d := cluster.New(p, cfg.Deploy)
	defer d.Close()
	c, err := d.NewClient(t, mcclient.DefaultBehaviors())
	if err != nil {
		return pt, err
	}
	defer c.Close()
	w := NewWorkload(cfg.Seed, cfg.KeySpace, size)
	for _, k := range w.Keys() {
		if err := c.MC.Set(k, w.Value(), 0, 0); err != nil {
			return pt, err
		}
	}
	pl, ok := c.MC.Transport(0).(mcclient.Pipeliner)
	if !ok {
		return pt, fmt.Errorf("bench: transport %s is not pipelinable", t)
	}
	pipe := pl.Pipeline(depth)
	clk := c.Clock
	// Steady-state warmup: two full windows prime the transport's op and
	// buffer pools, the server's per-worker staging and the reply slabs,
	// so the measured loop sees only the per-op costs. Without it the
	// one-time pool growth lands inside the measurement and allocs/op
	// depends on OpsPerPoint, which would make runs at different -ops
	// incomparable under the perf gate.
	warm := make([]*mcclient.GetFuture, 0, 2*depth)
	for n := 0; n < 2*depth; n++ {
		warm = append(warm, pipe.StartGet(clk, w.Key()))
	}
	if err := pipe.Wait(clk); err != nil {
		return pt, err
	}
	for _, f := range warm {
		if _, _, _, hit, ferr := f.Wait(clk); ferr != nil || !hit {
			return pt, fmt.Errorf("bench: pipeline warmup get = (%v, %v)", hit, ferr)
		}
	}
	futures := make([]*mcclient.GetFuture, 0, cfg.OpsPerPoint)
	start := clk.Now()
	var ms0, ms1 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	for n := 0; n < cfg.OpsPerPoint; n++ {
		futures = append(futures, pipe.StartGet(clk, w.Key()))
	}
	if err := pipe.Wait(clk); err != nil {
		return pt, err
	}
	for _, f := range futures {
		if _, _, _, hit, ferr := f.Wait(clk); ferr != nil {
			return pt, ferr
		} else if !hit {
			return pt, fmt.Errorf("bench: pipeline get missed")
		}
	}
	runtime.ReadMemStats(&ms1)
	makespan := clk.Now() - start
	pt.KTPS = float64(cfg.OpsPerPoint) / makespan.Seconds() / 1e3
	pt.NsPerOp = float64(makespan) / float64(cfg.OpsPerPoint)
	if ut, ok := c.MC.Transport(0).(*mcclient.UCRTransport); ok {
		pt.WriteReplies = ut.WriteReplyHits()
	}
	// Mallocs is cumulative and process-wide, so this delta includes the
	// in-process server's workers — exactly the surface the gate guards.
	// The futures slice itself and its growth are the loop's own fixed
	// bookkeeping; they amortize toward 0 with OpsPerPoint.
	pt.AllocsPerOp = float64(ms1.Mallocs-ms0.Mallocs) / float64(cfg.OpsPerPoint)
	return pt, nil
}

// PipelineSweep measures pipelinePoint for every (transport, depth,
// size) combination, each on a fresh single-server deployment.
func PipelineSweep(p *cluster.Profile, transports []cluster.Transport, depths, sizes []int, cfg RunConfig) ([]PipelinePoint, error) {
	var out []PipelinePoint
	for _, size := range sizes {
		for _, t := range transports {
			for _, depth := range depths {
				pt, err := pipelinePoint(p, t, depth, size, cfg)
				if err != nil {
					return nil, fmt.Errorf("bench: pipeline %s depth=%d size=%d: %w", t, depth, size, err)
				}
				out = append(out, pt)
			}
		}
	}
	return out, nil
}

// PipelineTable renders the sweep as one pivot table per value size:
// rows are window depths, columns transports.
func PipelineTable(points []PipelinePoint) string {
	bySize := make(map[int][]PipelinePoint)
	var sizeOrder []int
	for _, pt := range points {
		if _, seen := bySize[pt.ValueSize]; !seen {
			sizeOrder = append(sizeOrder, pt.ValueSize)
		}
		bySize[pt.ValueSize] = append(bySize[pt.ValueSize], pt)
	}
	var sb strings.Builder
	for _, size := range sizeOrder {
		pts := bySize[size]
		var depths []int
		var transports []string
		seenD := make(map[int]bool)
		seenT := make(map[string]bool)
		cell := make(map[string]float64, len(pts))
		for _, pt := range pts {
			if !seenD[pt.Depth] {
				seenD[pt.Depth] = true
				depths = append(depths, pt.Depth)
			}
			if !seenT[pt.Transport] {
				seenT[pt.Transport] = true
				transports = append(transports, pt.Transport)
			}
			cell[fmt.Sprintf("%s/%d", pt.Transport, pt.Depth)] = pt.KTPS
		}
		sort.Ints(depths)
		fmt.Fprintf(&sb, "# pipeline: %dB values, 1 connection (KTPS)\n", size)
		sb.WriteString("depth")
		for _, t := range transports {
			fmt.Fprintf(&sb, "  %-10s", t)
		}
		sb.WriteString("\n")
		for _, depth := range depths {
			fmt.Fprintf(&sb, "%-5d", depth)
			for _, t := range transports {
				fmt.Fprintf(&sb, "  %-10.2f", cell[fmt.Sprintf("%s/%d", t, depth)])
			}
			sb.WriteString("\n")
		}
	}
	return sb.String()
}

// pipelineDepths is the default window-depth axis (BENCH_4 sweep).
var pipelineDepths = []int{1, 2, 4, 8, 16, 32}

// PipelineDepths returns the default depth axis for the sweep.
func PipelineDepths(quick bool) []int {
	if quick {
		return []int{1, 8}
	}
	return append([]int(nil), pipelineDepths...)
}

// PipelineSizes returns the default value-size axis for the sweep.
func PipelineSizes(quick bool) []int {
	if quick {
		return []int{64}
	}
	return []int{64, 4096}
}

package bench

import (
	"fmt"

	"repro/internal/cluster"
)

// Figure is one reproduced panel: named series over an x-axis.
type Figure struct {
	// ID is the paper's panel id, e.g. "fig3a".
	ID string `json:"id"`
	// Title describes the panel.
	Title string `json:"title"`
	// XLabel and XTicks define the x-axis.
	XLabel string   `json:"x_label"`
	XTicks []string `json:"x_ticks"`
	// Unit is the y-axis unit.
	Unit string `json:"unit"`
	// SeriesOrder fixes legend order; Series holds the values.
	SeriesOrder []string             `json:"series_order"`
	Series      map[string][]float64 `json:"series"`
}

// FigureSpec describes how to regenerate one panel.
type FigureSpec struct {
	ID      string
	Title   string
	Cluster string // "A" or "B"
	Run     func(cfg RunConfig) (*Figure, error)
}

// latencyFigure builds a latency-sweep panel.
func latencyFigure(id, title string, profileName string, mix Mix, sizes []int) FigureSpec {
	return FigureSpec{
		ID: id, Title: title, Cluster: profileName,
		Run: func(cfg RunConfig) (*Figure, error) {
			p := cluster.ProfileByName(profileName)
			series, err := LatencySweep(p, p.Transports, mix, sizes, cfg)
			if err != nil {
				return nil, err
			}
			return assemble(id, title, "message size", "us", sizeTicks(sizes), p.Transports, series), nil
		},
	}
}

// tpsFigure builds a multi-client throughput panel.
func tpsFigure(id, title string, profileName string, size int, counts []int) FigureSpec {
	return FigureSpec{
		ID: id, Title: title, Cluster: profileName,
		Run: func(cfg RunConfig) (*Figure, error) {
			p := cluster.ProfileByName(profileName)
			series, err := TPSSweep(p, p.Transports, counts, size, cfg)
			if err != nil {
				return nil, err
			}
			ticks := make([]string, len(counts))
			for i, n := range counts {
				ticks[i] = fmt.Sprintf("%d", n)
			}
			return assemble(id, title, "number of clients", "KTPS", ticks, p.Transports, series), nil
		},
	}
}

func sizeTicks(sizes []int) []string {
	out := make([]string, len(sizes))
	for i, s := range sizes {
		out[i] = SizeLabel(s)
	}
	return out
}

func assemble(id, title, xlabel, unit string, ticks []string, order []cluster.Transport, series map[cluster.Transport][]float64) *Figure {
	f := &Figure{
		ID: id, Title: title, XLabel: xlabel, Unit: unit, XTicks: ticks,
		Series: make(map[string][]float64, len(series)),
	}
	for _, t := range order {
		if vals, ok := series[t]; ok {
			f.SeriesOrder = append(f.SeriesOrder, string(t))
			f.Series[string(t)] = vals
		}
	}
	return f
}

// Figures is the full per-experiment index: every panel of the paper's
// evaluation (Figs 3–6), regenerable by ID.
var Figures = []FigureSpec{
	// Fig 3: Set/Get latency, cluster A (DDR + 10GigE TOE + 1GigE).
	latencyFigure("fig3a", "Set latency, small messages, Cluster A", "A", MixSet, SmallSizes),
	latencyFigure("fig3b", "Set latency, large messages, Cluster A", "A", MixSet, LargeSizes),
	latencyFigure("fig3c", "Get latency, small messages, Cluster A", "A", MixGet, SmallSizes),
	latencyFigure("fig3d", "Get latency, large messages, Cluster A", "A", MixGet, LargeSizes),
	// Fig 4: Set/Get latency, cluster B (QDR).
	latencyFigure("fig4a", "Set latency, small messages, Cluster B", "B", MixSet, SmallSizes),
	latencyFigure("fig4b", "Set latency, large messages, Cluster B", "B", MixSet, LargeSizes),
	latencyFigure("fig4c", "Get latency, small messages, Cluster B", "B", MixGet, SmallSizes),
	latencyFigure("fig4d", "Get latency, large messages, Cluster B", "B", MixGet, LargeSizes),
	// Fig 5: mixed workloads, small messages.
	latencyFigure("fig5a", "Non-interleaved mix (10% set / 90% get), Cluster A", "A", MixNonInterleaved, SmallSizes),
	latencyFigure("fig5b", "Non-interleaved mix (10% set / 90% get), Cluster B", "B", MixNonInterleaved, SmallSizes),
	latencyFigure("fig5c", "Interleaved mix (50% set / 50% get), Cluster A", "A", MixInterleaved, SmallSizes),
	latencyFigure("fig5d", "Interleaved mix (50% set / 50% get), Cluster B", "B", MixInterleaved, SmallSizes),
	// Fig 6: Get TPS vs client count.
	tpsFigure("fig6a", "Get TPS, 4-byte messages, Cluster A", "A", 4, []int{8, 16}),
	tpsFigure("fig6b", "Get TPS, 4KB messages, Cluster A", "A", 4096, []int{8, 16}),
	tpsFigure("fig6c", "Get TPS, 4-byte messages, Cluster B", "B", 4, []int{8, 16}),
	tpsFigure("fig6d", "Get TPS, 4KB messages, Cluster B", "B", 4096, []int{8, 16}),
}

// FigureByID finds a panel spec.
func FigureByID(id string) (FigureSpec, bool) {
	for _, f := range Figures {
		if f.ID == id {
			return f, true
		}
	}
	return FigureSpec{}, false
}

package bench

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/simnet"
)

func TestLatencyRecorder(t *testing.T) {
	r := &LatencyRecorder{}
	for _, v := range []simnet.Duration{1000, 2000, 3000, 4000, 5000} {
		r.Record(v)
	}
	if r.Count() != 5 {
		t.Fatalf("Count = %d", r.Count())
	}
	if r.Mean() != 3.0 {
		t.Fatalf("Mean = %v, want 3.0 us", r.Mean())
	}
	if r.Min() != 1.0 || r.Max() != 5.0 {
		t.Fatalf("Min/Max = %v/%v", r.Min(), r.Max())
	}
	if got := r.Percentile(50); got != 2.0 && got != 3.0 {
		t.Fatalf("P50 = %v", got)
	}
	if got := r.Percentile(100); got != 5.0 {
		t.Fatalf("P100 = %v", got)
	}
	if r.Jitter() != 4.0 {
		t.Fatalf("Jitter = %v", r.Jitter())
	}
	empty := &LatencyRecorder{}
	if empty.Mean() != 0 || empty.Min() != 0 || empty.Max() != 0 || empty.Percentile(99) != 0 {
		t.Fatal("empty recorder should report zeros")
	}
}

func TestSizeLabel(t *testing.T) {
	cases := map[int]string{1: "1", 512: "512", 1024: "1K", 8192: "8K", 524288: "512K", 1 << 20: "1M"}
	for n, want := range cases {
		if got := SizeLabel(n); got != want {
			t.Errorf("SizeLabel(%d) = %q, want %q", n, got, want)
		}
	}
}

func TestMixCycles(t *testing.T) {
	if ops := MixSet.ops(); len(ops) != 1 || !ops[0] {
		t.Fatal("MixSet cycle")
	}
	if ops := MixGet.ops(); len(ops) != 1 || ops[0] {
		t.Fatal("MixGet cycle")
	}
	non := MixNonInterleaved.ops()
	if len(non) != 100 {
		t.Fatalf("non-interleaved cycle len = %d", len(non))
	}
	sets := 0
	for _, s := range non {
		if s {
			sets++
		}
	}
	if sets != 10 {
		t.Fatalf("non-interleaved sets = %d, want 10 (paper: 10 sets then 90 gets)", sets)
	}
	// Non-interleaved means the sets come first, contiguously.
	for i := 0; i < 10; i++ {
		if !non[i] {
			t.Fatal("sets are not contiguous at the front")
		}
	}
	inter := MixInterleaved.ops()
	if len(inter) != 2 || !inter[0] || inter[1] {
		t.Fatalf("interleaved cycle = %v, want [set get]", inter)
	}
	for _, m := range []Mix{MixSet, MixGet, MixNonInterleaved, MixInterleaved} {
		if m.String() == "" {
			t.Fatal("empty mix name")
		}
	}
}

func TestWorkloadDeterminism(t *testing.T) {
	a := NewWorkload(7, 10, 64)
	b := NewWorkload(7, 10, 64)
	if !bytes.Equal(a.Value(), b.Value()) {
		t.Fatal("same seed, different values")
	}
	for i := range a.Keys() {
		if a.Keys()[i] != b.Keys()[i] {
			t.Fatal("same seed, different keys")
		}
	}
	c := NewWorkload(8, 10, 64)
	if a.Keys()[0] == c.Keys()[0] {
		t.Fatal("different seeds, same keys")
	}
	// Round-robin key cursor.
	first := a.Key()
	for i := 1; i < 10; i++ {
		a.Key()
	}
	if a.Key() != first {
		t.Fatal("key cursor did not wrap")
	}
}

func TestLatencyPointProducesSaneNumbers(t *testing.T) {
	p := cluster.ClusterB()
	cfg := RunConfig{OpsPerPoint: 10, KeySpace: 4}
	rec, err := LatencyPoint(p, cluster.UCRIB, MixGet, 64, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Count() != 10 {
		t.Fatalf("samples = %d", rec.Count())
	}
	mean := rec.Mean()
	if mean < 1 || mean > 100 {
		t.Fatalf("UCR small-get mean = %v us, implausible", mean)
	}
}

func TestLatencySweepOrdering(t *testing.T) {
	// Latency must be non-decreasing with size for every transport.
	p := cluster.ClusterB()
	cfg := RunConfig{OpsPerPoint: 8, KeySpace: 4}
	sizes := []int{64, 4096, 65536}
	series, err := LatencySweep(p, []cluster.Transport{cluster.UCRIB, cluster.IPoIB}, MixGet, sizes, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for tr, vals := range series {
		if len(vals) != len(sizes) {
			t.Fatalf("%s: %d points", tr, len(vals))
		}
		for i := 1; i < len(vals); i++ {
			if vals[i] < vals[i-1] {
				t.Errorf("%s: latency decreased with size: %v", tr, vals)
			}
		}
	}
	// And the headline: UCR beats IPoIB at every size.
	for i := range sizes {
		if series[cluster.UCRIB][i] >= series[cluster.IPoIB][i] {
			t.Errorf("size %d: UCR (%v) not faster than IPoIB (%v)",
				sizes[i], series[cluster.UCRIB][i], series[cluster.IPoIB][i])
		}
	}
}

func TestTPSPointScalesWithClients(t *testing.T) {
	p := cluster.ClusterB()
	cfg := RunConfig{OpsPerPoint: 40, KeySpace: 8}
	tps2, err := TPSPoint(p, cluster.UCRIB, 2, 4, cfg)
	if err != nil {
		t.Fatal(err)
	}
	tps8, err := TPSPoint(p, cluster.UCRIB, 8, 4, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if tps8 <= tps2 {
		t.Fatalf("TPS did not scale: 2 clients %v, 8 clients %v", tps2, tps8)
	}
	// Millions-per-second territory on QDR (paper's headline).
	if tps8 < 200_000 {
		t.Fatalf("8-client UCR TPS = %v, implausibly low", tps8)
	}
}

func TestFigureRegistryComplete(t *testing.T) {
	// Every panel of Figs 3-6 must be present: 16 panels.
	if len(Figures) != 16 {
		t.Fatalf("figure count = %d, want 16", len(Figures))
	}
	want := []string{
		"fig3a", "fig3b", "fig3c", "fig3d",
		"fig4a", "fig4b", "fig4c", "fig4d",
		"fig5a", "fig5b", "fig5c", "fig5d",
		"fig6a", "fig6b", "fig6c", "fig6d",
	}
	for _, id := range want {
		spec, ok := FigureByID(id)
		if !ok {
			t.Errorf("missing %s", id)
			continue
		}
		if spec.Cluster != "A" && spec.Cluster != "B" {
			t.Errorf("%s: bad cluster %q", id, spec.Cluster)
		}
	}
	if _, ok := FigureByID("fig9z"); ok {
		t.Fatal("unknown id resolved")
	}
}

func TestFigureRunAndReport(t *testing.T) {
	spec, _ := FigureByID("fig5b") // mixed workload, cluster B
	cfg := RunConfig{OpsPerPoint: 6, KeySpace: 4}
	// Shrink the sweep via a custom run to keep the test fast: use the
	// spec as-is but with few ops; fig5b sweeps 8 sizes × 3 transports.
	fig, err := spec.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if fig.ID != "fig5b" || len(fig.SeriesOrder) != 3 {
		t.Fatalf("fig = %+v", fig)
	}
	for name, vals := range fig.Series {
		if len(vals) != len(fig.XTicks) {
			t.Fatalf("%s: %d values for %d ticks", name, len(vals), len(fig.XTicks))
		}
	}

	var tbl bytes.Buffer
	if err := WriteTable(&tbl, fig); err != nil {
		t.Fatal(err)
	}
	out := tbl.String()
	if !strings.Contains(out, "fig5b") || !strings.Contains(out, "UCR-IB") {
		t.Fatalf("table output:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 2+len(fig.XTicks) {
		t.Fatalf("table rows = %d", len(lines))
	}

	var csv bytes.Buffer
	if err := WriteCSV(&csv, fig); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(csv.String(), "message size,UCR-IB,IPoIB,SDP") {
		t.Fatalf("csv header: %q", strings.SplitN(csv.String(), "\n", 2)[0])
	}

	factors := fig.SpeedupOver("UCR-IB", "IPoIB")
	if len(factors) != len(fig.XTicks) {
		t.Fatalf("speedup points = %d", len(factors))
	}
	for _, f := range factors {
		if f <= 1 {
			t.Errorf("UCR not faster in mixed workload: factor %v", f)
		}
	}
	if fig.SpeedupOver("UCR-IB", "nope") != nil {
		t.Fatal("unknown series should yield nil")
	}
}

func TestZipfSkew(t *testing.T) {
	rng := simnet.NewRand(99)
	z := NewZipf(rng, 0.99, 1000)
	counts := make([]int, 1000)
	const draws = 50_000
	for i := 0; i < draws; i++ {
		counts[z.Next()]++
	}
	// Rank 0 must dominate and ranks must be roughly ordered.
	if counts[0] < counts[10] || counts[10] < counts[500] {
		t.Fatalf("popularity not skewed: c0=%d c10=%d c500=%d", counts[0], counts[10], counts[500])
	}
	// Classical property: with s≈1 the top 10% of keys carry well over
	// half the mass.
	top := 0
	for i := 0; i < 100; i++ {
		top += counts[i]
	}
	if frac := float64(top) / draws; frac < 0.5 {
		t.Fatalf("top-10%% mass = %.2f, want > 0.5", frac)
	}
	// HotFraction agrees with the empirical mass within a few points.
	if hf := z.HotFraction(100); math.Abs(hf-float64(top)/draws) > 0.05 {
		t.Fatalf("HotFraction(100) = %.3f vs empirical %.3f", hf, float64(top)/draws)
	}
	// Degenerate cases.
	if NewZipf(rng, 1, 0).Next() != 0 {
		t.Fatal("n=0 should clamp to a single rank")
	}
	if z.HotFraction(0) != 0 || z.HotFraction(5000) != 1 {
		t.Fatal("HotFraction bounds")
	}
}

func TestZipfWorkloadDraws(t *testing.T) {
	w := NewZipfWorkload(42, 1, 64, 8, 0.99)
	seen := map[string]int{}
	for i := 0; i < 5000; i++ {
		k := w.Key()
		seen[k]++
	}
	if len(seen) < 10 {
		t.Fatalf("only %d distinct keys drawn", len(seen))
	}
	// The hottest key appears far more often than the uniform share.
	max := 0
	for _, n := range seen {
		if n > max {
			max = n
		}
	}
	if max < 3*5000/64 {
		t.Fatalf("hottest key drawn %d times, want strong skew", max)
	}
	// Determinism.
	w2 := NewZipfWorkload(42, 1, 64, 8, 0.99)
	for i := 0; i < 100; i++ {
		if w2.Key() == "" {
			t.Fatal("empty key")
		}
	}
}

func TestTraceGenerateParseRoundtrip(t *testing.T) {
	var buf bytes.Buffer
	spec := TraceSpec{Ops: 500, Keys: 64, ZipfS: 0.99, GetFraction: 0.8, ValueSize: 99, Seed: 7}
	if err := GenerateTrace(&buf, spec); err != nil {
		t.Fatal(err)
	}
	ops, err := ParseTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(ops) != 500 {
		t.Fatalf("parsed %d ops", len(ops))
	}
	gets, sets, dels := 0, 0, 0
	for _, op := range ops {
		switch op.Op {
		case "get":
			gets++
		case "set":
			sets++
			if op.Size != 99 {
				t.Fatalf("set size = %d", op.Size)
			}
		case "delete":
			dels++
		}
		if op.Key == "" {
			t.Fatal("empty key")
		}
	}
	if gets < 300 || sets == 0 || dels == 0 {
		t.Fatalf("mix = %d/%d/%d", gets, sets, dels)
	}
	// Determinism.
	var buf2 bytes.Buffer
	if err := GenerateTrace(&buf2, spec); err != nil {
		t.Fatal(err)
	}
	ops2, _ := ParseTrace(&buf2)
	for i := range ops {
		if ops[i] != ops2[i] {
			t.Fatalf("generation not deterministic at op %d", i)
		}
	}
}

func TestTraceParseErrors(t *testing.T) {
	cases := []string{
		"put k 1\n",          // unknown op
		"get\n",              // missing key
		"set k\n",            // missing size
		"set k notanumber\n", // bad size
		"set k -1\n",         // negative size
	}
	for _, c := range cases {
		if _, err := ParseTrace(strings.NewReader(c)); err == nil {
			t.Errorf("trace %q parsed without error", c)
		}
	}
	// Comments and blank lines are fine.
	ops, err := ParseTrace(strings.NewReader("# header\n\nget k\n"))
	if err != nil || len(ops) != 1 {
		t.Fatalf("comment handling: %v, %d ops", err, len(ops))
	}
}

func TestTraceReplayEndToEnd(t *testing.T) {
	var buf bytes.Buffer
	if err := GenerateTrace(&buf, TraceSpec{Ops: 400, Keys: 32, ZipfS: 0.99}); err != nil {
		t.Fatal(err)
	}
	ops, err := ParseTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ReplayTrace(cluster.ClusterB(), cluster.UCRIB, ops, cluster.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops != 400 || res.Gets+res.Sets+res.Dels != 400 {
		t.Fatalf("res = %+v", res)
	}
	// A Zipfian read-mostly trace warms up: hits must appear.
	if res.Hits == 0 {
		t.Fatal("no cache hits on a skewed trace")
	}
	if res.TPS <= 0 || res.MeanUs <= 0 {
		t.Fatalf("timing: %+v", res)
	}
}

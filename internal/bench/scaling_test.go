package bench

import (
	"testing"

	"repro/internal/cluster"
)

// TestScalingSweepPlateauAndStriping is the PR's acceptance experiment:
// with the modeled global lock (Stripes=1) small-Get TPS stays flat
// (±10%) from 1 to 8 workers, and the striped engine (Stripes=8) beats
// that plateau by ≥3× at 16 clients.
func TestScalingSweepPlateauAndStriping(t *testing.T) {
	if raceEnabled {
		// Shard-lock queueing resolves in goroutine arrival order, and
		// race instrumentation serializes the clients enough to distort
		// the measured plateau/speedup. The thresholds are asserted in
		// the uninstrumented tier-1 run; race coverage of the striped
		// engine lives in TestStripedStoreConcurrentStress.
		t.Skip("scaling thresholds are scheduling-sensitive under -race")
	}
	p := cluster.ClusterB()
	pts, err := ScalingSweep(p, cluster.UCRIB, []int{1, 2, 4, 8}, []int{1, 8}, 16,
		[]Mix{MixGet}, RunConfig{OpsPerPoint: 30})
	if err != nil {
		t.Fatal(err)
	}
	cell := make(map[[2]int]float64, len(pts))
	for _, pt := range pts {
		cell[[2]int{pt.Workers, pt.Stripes}] = pt.KTPS
		t.Logf("workers=%d stripes=%d: %.1f KTPS", pt.Workers, pt.Stripes, pt.KTPS)
	}

	// Global lock: flat within ±10% across worker counts.
	lo, hi := cell[[2]int{1, 1}], cell[[2]int{1, 1}]
	for _, w := range []int{2, 4, 8} {
		v := cell[[2]int{w, 1}]
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if hi > lo*1.10 {
		t.Errorf("stripes=1 should plateau: min %.1f max %.1f KTPS (>10%% spread)", lo, hi)
	}

	// Striped engine: ≥3× the global-lock plateau at 8 workers.
	if striped, global := cell[[2]int{8, 8}], cell[[2]int{8, 1}]; striped < 3*global {
		t.Errorf("stripes=8 at 8 workers = %.1f KTPS, want >= 3x the %.1f KTPS global-lock plateau",
			striped, global)
	}

	// And it must actually scale with workers, not just sidestep the lock.
	if cell[[2]int{8, 8}] < 2*cell[[2]int{1, 8}] {
		t.Errorf("stripes=8 should scale with workers: 1w %.1f vs 8w %.1f KTPS",
			cell[[2]int{1, 8}], cell[[2]int{8, 8}])
	}
}

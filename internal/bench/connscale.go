package bench

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/cluster"
	"repro/internal/mcclient"
	"repro/internal/simnet"
)

// This file is the §VII connection-scalability study: how much server
// receive-buffer memory one more client costs, per datapath mode, and
// what that implies at client counts far beyond what the testbed (or
// this simulator) can host as live endpoints. Dedicated RC resources
// are the scaling limit the paper names; the SRQ, UD, and concentrator
// modes each attack a different term of it.

// connScaleModes are the datapaths compared, in report order.
//
//	rc  — baseline: one RC QP per client, per-endpoint credit windows
//	srq — one shared receive pool per server worker (Options.UseSRQ)
//	ud  — SRQ plus the hybrid UD small-get endpoint (Options.UDGets)
//	mux — connection concentrator: connScaleMuxK sessions per RC QP
var connScaleModes = []string{"rc", "srq", "ud", "mux"}

// connScaleMuxK is the concentrator fan-in used by the mux mode.
const connScaleMuxK = 16

// connScaleFitCounts are the live client counts the footprint is
// actually measured at; the linear fit through them extrapolates to the
// counts no simulation could host.
var connScaleFitCounts = []int{8, 48}

// connScaleExtrapCounts are the projected client counts (the paper's
// "very large number of connections" regime).
var connScaleExtrapCounts = []int{100, 1_000, 10_000, 100_000}

// ConnScalePoint is the server receive-buffer footprint at one client
// count. Measured=false rows come from the fixed+slope fit, not a run.
type ConnScalePoint struct {
	Mode            string  `json:"mode"`
	Clients         int     `json:"clients"`
	ServerRecvBytes float64 `json:"server_recv_bytes"`
	PerClientBytes  float64 `json:"per_client_bytes"`
	Measured        bool    `json:"measured"`
}

// ConnScaleModel is the per-mode linear memory model fitted from the
// measured counts: ServerRecvBytes(n) ≈ Fixed + Slope·n.
type ConnScaleModel struct {
	Mode                string  `json:"mode"`
	FixedBytes          float64 `json:"fixed_bytes"`
	SlopeBytesPerClient float64 `json:"slope_bytes_per_client"`
}

// ConnScaleReport is the full sweep: memory models and points for every
// mode, plus aggregate small-get TPS at TPSClients live clients.
type ConnScaleReport struct {
	Models     []ConnScaleModel   `json:"models"`
	Points     []ConnScalePoint   `json:"points"`
	TPSClients int                `json:"tps_clients"`
	TPS        map[string]float64 `json:"tps"`
}

// connScaleDeploy maps a mode name onto deployment options.
func connScaleDeploy(mode string, o cluster.Options) cluster.Options {
	switch mode {
	case "srq":
		o.UseSRQ = true
	case "ud":
		o.UseSRQ = true
		o.UDGets = true
	case "mux":
		o.SessionsPerQP = connScaleMuxK
	}
	return o
}

// connScaleFootprint measures total server receive-buffer bytes after
// nClients connect and trade one op each (the SRQFootprint protocol,
// per mode).
func connScaleFootprint(p *cluster.Profile, mode string, nClients int, cfg RunConfig) (int64, error) {
	d := cluster.New(p, connScaleDeploy(mode, cfg.Deploy))
	defer d.Close()
	for i := 0; i < nClients; i++ {
		c, err := d.NewClient(cluster.UCRIB, mcclient.DefaultBehaviors())
		if err != nil {
			return 0, err
		}
		defer c.Close()
		if err := c.MC.Set(fmt.Sprintf("warm-%d", i), []byte("x"), 0, 0); err != nil {
			return 0, err
		}
	}
	return d.Server.UCRRecvBufferBytes(), nil
}

// connScaleTPS measures aggregate closed-loop small-get TPS with
// nClients live clients, each running cfg.OpsPerPoint gets against the
// shared keyspace. Unlike TPSPoint it drives every client from ONE
// goroutine, round-robin: the srq/ud/mux datapaths funnel many clients
// through shared server structures (one receive pool, one UD QP, one
// trunk lock), so with concurrent drivers the real-time goroutine
// interleaving would pick the virtual-time service order and the number
// would change run to run. Round-robin fixes the event order while
// keeping the closed-loop semantics — each client's virtual clock still
// advances only by its own op latencies.
func connScaleTPS(p *cluster.Profile, mode string, nClients int, cfg RunConfig) (float64, error) {
	d := cluster.New(p, connScaleDeploy(mode, cfg.Deploy))
	defer d.Close()

	clients := make([]*cluster.Client, nClients)
	for i := range clients {
		c, err := d.NewClient(cluster.UCRIB, mcclient.DefaultBehaviors())
		if err != nil {
			return 0, err
		}
		defer c.Close()
		clients[i] = c
	}
	w0 := NewWorkload(cfg.Seed, cfg.KeySpace, scalingValueSize)
	for _, k := range w0.Keys() {
		if err := clients[0].MC.Set(k, w0.Value(), 0, 0); err != nil {
			return 0, err
		}
	}
	var start simnet.Time
	for _, c := range clients {
		if c.Clock.Now() > start {
			start = c.Clock.Now()
		}
	}
	for _, c := range clients {
		c.Clock.AdvanceTo(start)
	}

	workloads := make([]*Workload, nClients)
	for i := range workloads {
		workloads[i] = NewWorkload(cfg.Seed, cfg.KeySpace, scalingValueSize)
		workloads[i].nextKey = i
	}
	for n := 0; n < cfg.OpsPerPoint; n++ {
		for i, c := range clients {
			if _, _, _, err := c.MC.Get(workloads[i].Key()); err != nil {
				return 0, fmt.Errorf("client %d op %d: %w", i, n, err)
			}
		}
	}
	var makespan simnet.Duration
	for _, c := range clients {
		if d := c.Clock.Now() - start; d > makespan {
			makespan = d
		}
	}
	totalOps := float64(nClients * cfg.OpsPerPoint)
	return totalOps / makespan.Seconds(), nil
}

// ConnScaleSweep runs the connection-scalability study on profile p:
// for every mode it measures the server footprint at the fit counts,
// fits the linear memory model, projects it across the extrapolation
// counts, and measures aggregate small-get TPS with tpsClients live
// closed-loop clients (tpsClients <= 0 defaults to 100, the 10² point
// the acceptance ratio is pinned at).
func ConnScaleSweep(p *cluster.Profile, tpsClients int, cfg RunConfig) (*ConnScaleReport, error) {
	cfg = cfg.withDefaults()
	if tpsClients <= 0 {
		tpsClients = 100
	}
	rep := &ConnScaleReport{
		TPSClients: tpsClients,
		TPS:        make(map[string]float64, len(connScaleModes)),
	}
	for _, mode := range connScaleModes {
		var bytesAt []float64
		for _, n := range connScaleFitCounts {
			b, err := connScaleFootprint(p, mode, n, cfg)
			if err != nil {
				return nil, fmt.Errorf("bench: connscale %s n=%d: %w", mode, n, err)
			}
			bytesAt = append(bytesAt, float64(b))
			rep.Points = append(rep.Points, ConnScalePoint{
				Mode: mode, Clients: n,
				ServerRecvBytes: float64(b),
				PerClientBytes:  float64(b) / float64(n),
				Measured:        true,
			})
		}
		n1, n2 := float64(connScaleFitCounts[0]), float64(connScaleFitCounts[1])
		slope := (bytesAt[1] - bytesAt[0]) / (n2 - n1)
		fixed := bytesAt[0] - slope*n1
		rep.Models = append(rep.Models, ConnScaleModel{
			Mode: mode, FixedBytes: fixed, SlopeBytesPerClient: slope,
		})
		for _, n := range connScaleExtrapCounts {
			total := fixed + slope*float64(n)
			rep.Points = append(rep.Points, ConnScalePoint{
				Mode: mode, Clients: n,
				ServerRecvBytes: total,
				PerClientBytes:  total / float64(n),
			})
		}
		tps, err := connScaleTPS(p, mode, tpsClients, cfg)
		if err != nil {
			return nil, fmt.Errorf("bench: connscale %s tps: %w", mode, err)
		}
		rep.TPS[mode] = tps
	}
	return rep, nil
}

// PerClientAt evaluates a mode's memory model at n clients.
func (r *ConnScaleReport) PerClientAt(mode string, n int) float64 {
	for _, m := range r.Models {
		if m.Mode == mode {
			return (m.FixedBytes + m.SlopeBytesPerClient*float64(n)) / float64(n)
		}
	}
	return 0
}

// ConnScaleTable renders the report: one footprint table (rows =
// client counts, columns = modes, cells = per-client bytes) and the
// TPS line.
func ConnScaleTable(r *ConnScaleReport) string {
	counts := map[int]bool{}
	cell := map[[2]interface{}]ConnScalePoint{}
	for _, pt := range r.Points {
		counts[pt.Clients] = true
		cell[[2]interface{}{pt.Mode, pt.Clients}] = pt
	}
	var ns []int
	for n := range counts {
		ns = append(ns, n)
	}
	sort.Ints(ns)
	var sb strings.Builder
	sb.WriteString("# connection scalability: per-client server recv bytes (* = measured)\n")
	sb.WriteString("clients ")
	for _, m := range connScaleModes {
		fmt.Fprintf(&sb, " %12s", m)
	}
	sb.WriteString("\n")
	for _, n := range ns {
		fmt.Fprintf(&sb, "%-8d", n)
		for _, m := range connScaleModes {
			pt, ok := cell[[2]interface{}{m, n}]
			if !ok {
				fmt.Fprintf(&sb, " %12s", "-")
				continue
			}
			mark := " "
			if pt.Measured {
				mark = "*"
			}
			fmt.Fprintf(&sb, " %11.1f%s", pt.PerClientBytes, mark)
		}
		sb.WriteString("\n")
	}
	fmt.Fprintf(&sb, "# TPS at %d clients:", r.TPSClients)
	for _, m := range connScaleModes {
		fmt.Fprintf(&sb, "  %s=%.0f", m, r.TPS[m])
	}
	sb.WriteString("\n")
	return sb.String()
}

// Package ring is the shared ketama consistent-hash ring: the key→server
// mapping the client library uses for DistKetama and the fleet layer uses
// for churn-stable placement and R-way replication. The layout matches
// libmemcached's ketama (40 md5 digests per server, 4 little-endian
// uint32 points per digest), so promoting the ring out of mcclient did
// not move a single key.
//
// Unlike the original client-internal ring, membership changes here are
// incremental: AddServer computes and sorts only the joining server's
// points and merges them into the sorted point list in one O(n) pass;
// RemoveServer is a single filter pass. Neither ever re-hashes or
// re-sorts the surviving servers' points, which is what makes O(1000)
// membership churn affordable — and what makes the movement guarantee
// auditable: the only arcs that change owners are the ones the joining
// or leaving server's own points delimit.
//
// Points are ordered by (hash, owner): the owner-name tiebreak matters at
// fleet scale, where ~160k uint32 points make birthday collisions likely.
// Without it, two servers hashing onto the same point would be ordered by
// insertion history and AddServer/RemoveServer would not round-trip.
package ring

import (
	"crypto/md5"
	"encoding/binary"
	"fmt"
	"sort"
)

// DefaultVNodes is libmemcached's ketama replica count: 40 md5 digests
// per server, each contributing 4 ring points (160 points per server).
const DefaultVNodes = 40

// Checker-validation mutation switches (see internal/memcached/mut_*.go
// for the registry pattern). They live here because the fleet client
// consults them and this package is imported by both mcclient/cluster
// and memcached without forming a cycle. Both default to false; a tagged
// build flips exactly one via an init() in internal/memcached.
var (
	// MutRingStale makes fleet clients route by the ring snapshot taken
	// at client construction, ignoring every later membership change —
	// the stale-routing bug class the fleet memcheck mode exists to
	// catch (ops land on pre-churn owners, including closed servers).
	MutRingStale bool
	// MutReplicaSkip makes fleet clients silently drop the replica leg
	// of a write-through store, so a primary departure loses the only
	// copy — the replication bug class read-repair cannot mask forever.
	MutReplicaSkip bool
)

// point is one ring position and the server owning the arc ending at it.
type point struct {
	h     uint32
	owner string
}

// pointLess orders points by (hash, owner) — the owner tiebreak keeps
// the ring history-independent when two servers collide on a hash.
func pointLess(a, b point) bool {
	if a.h != b.h {
		return a.h < b.h
	}
	return a.owner < b.owner
}

// Ring is a ketama ring over named servers. Not safe for concurrent use;
// callers that share one (the fleet layer) guard it externally.
type Ring struct {
	vnodes  int
	points  []point // sorted by (h, owner)
	members map[string]struct{}
}

// New returns an empty ring with the given virtual-node count (md5
// digests per server; each digest yields 4 points). vnodes <= 0 takes
// DefaultVNodes.
func New(vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	return &Ring{vnodes: vnodes, members: make(map[string]struct{})}
}

// pointsFor computes a server's sorted ring points.
func pointsFor(name string, vnodes int) []point {
	pts := make([]point, 0, vnodes*4)
	for rep := 0; rep < vnodes; rep++ {
		sum := md5.Sum([]byte(fmt.Sprintf("%s-%d", name, rep)))
		for part := 0; part < 4; part++ {
			pts = append(pts, point{binary.LittleEndian.Uint32(sum[part*4:]), name})
		}
	}
	sort.Slice(pts, func(i, j int) bool { return pointLess(pts[i], pts[j]) })
	return pts
}

// AddServer inserts a server's points. Only the new points are hashed
// and sorted; the existing arcs are merged through untouched. Adding a
// present member is a no-op.
func (r *Ring) AddServer(name string) {
	if _, ok := r.members[name]; ok {
		return
	}
	r.members[name] = struct{}{}
	add := pointsFor(name, r.vnodes)
	merged := make([]point, 0, len(r.points)+len(add))
	i, j := 0, 0
	for i < len(r.points) && j < len(add) {
		if pointLess(add[j], r.points[i]) {
			merged = append(merged, add[j])
			j++
		} else {
			merged = append(merged, r.points[i])
			i++
		}
	}
	merged = append(merged, r.points[i:]...)
	merged = append(merged, add[j:]...)
	r.points = merged
}

// RemoveServer filters a server's points out in one pass. Removing an
// absent member is a no-op.
func (r *Ring) RemoveServer(name string) {
	if _, ok := r.members[name]; !ok {
		return
	}
	delete(r.members, name)
	// Filter into a fresh slice: Clone hands out rings sharing the
	// backing array, so in-place compaction would corrupt snapshots.
	out := make([]point, 0, len(r.points)-r.vnodes*4)
	for _, p := range r.points {
		if p.owner != name {
			out = append(out, p)
		}
	}
	r.points = out
}

// Size reports the member count.
func (r *Ring) Size() int { return len(r.members) }

// NumPoints reports the total ring point count (tests).
func (r *Ring) NumPoints() int { return len(r.points) }

// Has reports membership.
func (r *Ring) Has(name string) bool {
	_, ok := r.members[name]
	return ok
}

// Members lists the servers in sorted order.
func (r *Ring) Members() []string {
	out := make([]string, 0, len(r.members))
	for m := range r.members {
		out = append(out, m)
	}
	sort.Strings(out)
	return out
}

// KeyPoint is the ketama key hash: the first 4 bytes of md5(key),
// little-endian — identical to the original mcclient lookup.
func KeyPoint(key string) uint32 {
	sum := md5.Sum([]byte(key))
	return binary.LittleEndian.Uint32(sum[:])
}

// search returns the index of the first point at or after h, wrapped.
func (r *Ring) search(h uint32) int {
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].h >= h })
	if i == len(r.points) {
		i = 0
	}
	return i
}

// Lookup maps a key to its owning server ("" on an empty ring).
func (r *Ring) Lookup(key string) string {
	return r.LookupPoint(KeyPoint(key))
}

// LookupPoint maps a raw hash point to its owning server ("" on an
// empty ring).
func (r *Ring) LookupPoint(h uint32) string {
	if len(r.points) == 0 {
		return ""
	}
	return r.points[r.search(h)].owner
}

// Owners returns the first n distinct servers walking clockwise from the
// key's point: Owners(key, 1)[0] is the primary, the rest are the
// replica successors. Fewer than n members yields fewer owners.
func (r *Ring) Owners(key string, n int) []string {
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.members) {
		n = len(r.members)
	}
	out := make([]string, 0, n)
	seen := make(map[string]struct{}, n)
	start := r.search(KeyPoint(key))
	for i := 0; i < len(r.points) && len(out) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if _, dup := seen[p.owner]; dup {
			continue
		}
		seen[p.owner] = struct{}{}
		out = append(out, p.owner)
	}
	return out
}

// Clone returns an independent snapshot (the fleet's stale-routing
// mutation and the movement accounting both compare against one).
func (r *Ring) Clone() *Ring {
	c := &Ring{
		vnodes:  r.vnodes,
		points:  append([]point(nil), r.points...),
		members: make(map[string]struct{}, len(r.members)),
	}
	for m := range r.members {
		c.members[m] = struct{}{}
	}
	return c
}

// Equal reports whether two rings have identical points and membership
// (the AddServer/RemoveServer round-trip property).
func (r *Ring) Equal(o *Ring) bool {
	if len(r.points) != len(o.points) || len(r.members) != len(o.members) {
		return false
	}
	for i := range r.points {
		if r.points[i] != o.points[i] {
			return false
		}
	}
	for m := range r.members {
		if _, ok := o.members[m]; !ok {
			return false
		}
	}
	return true
}

// MovedFraction measures exactly what fraction of the 2^32 hash space
// maps to a different primary owner in r than in prev — the key-movement
// accounting API. It walks the union of both rings' boundary points:
// between consecutive boundaries neither ring changes owner, so one
// lookup per segment suffices, O((n+m) log(n+m)) total. Two empty rings
// move nothing; empty↔non-empty moves everything.
func (r *Ring) MovedFraction(prev *Ring) float64 {
	if len(r.points) == 0 && len(prev.points) == 0 {
		return 0
	}
	if len(r.points) == 0 || len(prev.points) == 0 {
		return 1
	}
	bounds := make([]uint32, 0, len(r.points)+len(prev.points))
	for _, p := range r.points {
		bounds = append(bounds, p.h)
	}
	for _, p := range prev.points {
		bounds = append(bounds, p.h)
	}
	sort.Slice(bounds, func(i, j int) bool { return bounds[i] < bounds[j] })
	// Dedup in place.
	uniq := bounds[:1]
	for _, b := range bounds[1:] {
		if b != uniq[len(uniq)-1] {
			uniq = append(uniq, b)
		}
	}
	const space = float64(1 << 32)
	moved := 0.0
	// Interior segments (b[i-1], b[i]]: owner decided at b[i].
	for i := 1; i < len(uniq); i++ {
		if r.LookupPoint(uniq[i]) != prev.LookupPoint(uniq[i]) {
			moved += float64(uniq[i] - uniq[i-1])
		}
	}
	// Wrap segment (b[last], 2^32) ∪ [0, b[0]]: every hash here maps to
	// each ring's first point, which is also what b[0] maps to (b[0] is
	// the global minimum boundary).
	if r.LookupPoint(uniq[0]) != prev.LookupPoint(uniq[0]) {
		moved += space - float64(uniq[len(uniq)-1]) + float64(uniq[0])
	}
	return moved / space
}

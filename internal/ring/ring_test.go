package ring

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

func names(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("server%d", i)
	}
	return out
}

func build(vnodes int, members []string) *Ring {
	r := New(vnodes)
	for _, m := range members {
		r.AddServer(m)
	}
	return r
}

func checkSorted(t *testing.T, r *Ring) {
	t.Helper()
	for i := 1; i < len(r.points); i++ {
		if !pointLess(r.points[i-1], r.points[i]) && r.points[i-1] != r.points[i] {
			t.Fatalf("points out of order at %d: %+v !< %+v", i, r.points[i-1], r.points[i])
		}
	}
}

// Add then Remove must restore the identical ring — points and
// membership — regardless of how many other members are present.
func TestAddRemoveRoundTrip(t *testing.T) {
	for _, n := range []int{1, 4, 100} {
		base := build(0, names(n))
		before := base.Clone()
		base.AddServer("joiner")
		checkSorted(t, base)
		if base.Size() != n+1 {
			t.Fatalf("n=%d: size after add = %d", n, base.Size())
		}
		base.RemoveServer("joiner")
		checkSorted(t, base)
		if !base.Equal(before) {
			t.Fatalf("n=%d: add+remove did not round-trip", n)
		}
		// And the inverse direction: remove an original member, re-add it.
		base.RemoveServer("server0")
		base.AddServer("server0")
		if !base.Equal(before) {
			t.Fatalf("n=%d: remove+add did not round-trip", n)
		}
	}
}

// Incremental construction must be insertion-order independent and
// identical to any other construction order (the (hash, owner) tiebreak
// is what guarantees this when points collide).
func TestConstructionOrderIndependent(t *testing.T) {
	ns := names(50)
	a := build(0, ns)
	shuffled := append([]string(nil), ns...)
	rng := rand.New(rand.NewSource(42))
	rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
	b := build(0, shuffled)
	if !a.Equal(b) {
		t.Fatal("rings built in different orders differ")
	}
}

// Ring layout must match the historical mcclient ketama exactly: spot
// check a few known md5-derived points so refactors can't silently move
// keys. (Values computed from the original hash.go layout.)
func TestLayoutStable(t *testing.T) {
	r := build(0, []string{"server"})
	if got := r.NumPoints(); got != 160 {
		t.Fatalf("points for one server = %d, want 160", got)
	}
	// A ring with one server owns every key.
	for _, k := range []string{"", "a", "key-17", "zzzzzz"} {
		if got := r.Lookup(k); got != "server" {
			t.Fatalf("Lookup(%q) = %q, want server", k, got)
		}
	}
}

// Key movement on a single join/leave must stay within 2× of the 1/N
// theoretical fraction, measured two ways: the exact arc measure
// (MovedFraction) and a sampled key census.
func TestMovementWithinTwiceTheoretical(t *testing.T) {
	for _, n := range []int{4, 100, 1000} {
		n := n
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			before := build(0, names(n))
			after := before.Clone()
			after.AddServer("joiner")

			theory := 1.0 / float64(n+1) // joiner owns ~1/(N+1) of the space
			arc := after.MovedFraction(before)
			if arc <= 0 || arc > 2*theory {
				t.Fatalf("join arc movement %.5f outside (0, %.5f]", arc, 2*theory)
			}
			// Sampled census agrees with the arc measure.
			keys := 20000
			moved := 0
			for i := 0; i < keys; i++ {
				k := fmt.Sprintf("key-%d", i)
				if before.Lookup(k) != after.Lookup(k) {
					moved++
				}
			}
			frac := float64(moved) / float64(keys)
			if frac > 2*theory {
				t.Fatalf("join sampled movement %.5f > %.5f", frac, 2*theory)
			}
			// Every moved key must have moved TO the joiner.
			for i := 0; i < keys; i++ {
				k := fmt.Sprintf("key-%d", i)
				if before.Lookup(k) != after.Lookup(k) && after.Lookup(k) != "joiner" {
					t.Fatalf("key %q moved to %q, not the joiner", k, after.Lookup(k))
				}
			}

			// Leave: removing one of N original members moves ~1/N.
			leaver := build(0, names(n))
			prev := leaver.Clone()
			leaver.RemoveServer("server0")
			theory = 1.0 / float64(n)
			arc = leaver.MovedFraction(prev)
			if arc <= 0 || arc > 2*theory {
				t.Fatalf("leave arc movement %.5f outside (0, %.5f]", arc, 2*theory)
			}
		})
	}
}

// Owners walks distinct successors with wraparound.
func TestOwners(t *testing.T) {
	r := build(0, names(5))
	for i := 0; i < 50; i++ {
		k := fmt.Sprintf("key-%d", i)
		owners := r.Owners(k, 2)
		if len(owners) != 2 {
			t.Fatalf("Owners(%q, 2) = %v", k, owners)
		}
		if owners[0] == owners[1] {
			t.Fatalf("duplicate owners for %q: %v", k, owners)
		}
		if owners[0] != r.Lookup(k) {
			t.Fatalf("primary mismatch for %q: %s vs %s", k, owners[0], r.Lookup(k))
		}
	}
	// Requesting more owners than members truncates.
	if got := len(r.Owners("k", 9)); got != 5 {
		t.Fatalf("Owners with n>members returned %d", got)
	}
	one := build(0, []string{"solo"})
	if got := one.Owners("k", 2); len(got) != 1 || got[0] != "solo" {
		t.Fatalf("one-server Owners = %v", got)
	}
	empty := New(0)
	if got := empty.Owners("k", 2); got != nil {
		t.Fatalf("empty-ring Owners = %v", got)
	}
}

func TestEmptyAndSingleLookup(t *testing.T) {
	r := New(0)
	if got := r.Lookup("k"); got != "" {
		t.Fatalf("empty Lookup = %q", got)
	}
	if frac := r.MovedFraction(New(0)); frac != 0 {
		t.Fatalf("empty vs empty moved = %v", frac)
	}
	r.AddServer("only")
	if frac := r.MovedFraction(New(0)); frac != 1 {
		t.Fatalf("empty→one moved = %v", frac)
	}
}

// Configurable vnode counts scale the point total and still balance.
func TestVNodesConfigurable(t *testing.T) {
	r := build(8, names(3))
	if got := r.NumPoints(); got != 3*8*4 {
		t.Fatalf("points = %d, want %d", got, 3*8*4)
	}
	counts := map[string]int{}
	for i := 0; i < 3000; i++ {
		counts[r.Lookup(fmt.Sprintf("key-%d", i))]++
	}
	if len(counts) != 3 {
		t.Fatalf("only %d servers own keys: %v", len(counts), counts)
	}
}

// FuzzKetamaRing drives arbitrary add/remove/lookup sequences: points
// must stay sorted, membership bookkeeping must stay consistent, and
// lookup must never panic — including on the empty and one-server ring.
func FuzzKetamaRing(f *testing.F) {
	f.Add([]byte{0, 1, 2, 0x80, 3}, "key")
	f.Add([]byte{}, "")
	f.Add([]byte{0x81, 0x81, 1, 1}, "zz")
	f.Fuzz(func(t *testing.T, ops []byte, key string) {
		r := New(4)
		live := map[string]bool{}
		for _, b := range ops {
			name := fmt.Sprintf("s%d", b&0x7f)
			if b&0x80 == 0 {
				r.AddServer(name)
				live[name] = true
			} else {
				r.RemoveServer(name)
				delete(live, name)
			}
			// Lookups must not panic at any intermediate size.
			owner := r.Lookup(key)
			if len(live) == 0 && owner != "" {
				t.Fatalf("empty ring returned owner %q", owner)
			}
			if len(live) > 0 && !live[owner] {
				t.Fatalf("lookup returned non-member %q", owner)
			}
			r.Owners(key, 2)
		}
		if r.Size() != len(live) {
			t.Fatalf("size %d != live %d", r.Size(), len(live))
		}
		if got := r.Members(); len(got) != len(live) || !sort.StringsAreSorted(got) {
			t.Fatalf("members inconsistent: %v vs %v", got, live)
		}
		for i := 1; i < r.NumPoints(); i++ {
			if !pointLess(r.points[i-1], r.points[i]) && r.points[i-1] != r.points[i] {
				t.Fatalf("points unsorted at %d", i)
			}
		}
	})
}

package mcclient

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/simnet"
	"repro/internal/ucr"
	"repro/internal/verbs"
)

// TestWorkerPoolStressMidBurstClose hammers the server's worker-pool
// serving loop from concurrent pipelined clients on both transports,
// then closes the server in the middle of the traffic. The contract
// under test: every started future settles — success before the close,
// an error after it, never a hang — and nothing races (run this under
// -race; each client goroutine owns its transport and clock, the
// worker pool is the shared side).
func TestWorkerPoolStressMidBurstClose(t *testing.T) {
	st := newStack(t)

	const (
		clients  = 4 // 2 UCR + 2 sockets
		bursts   = 6
		burstOps = 24
		window   = 8
		closeAt  = 2 // worker 0 triggers the close after this many bursts
	)

	behav := DefaultBehaviors()
	behav.OpTimeout = simnet.Second

	// Dial every transport up front: the stack's dial helpers and the
	// shared fabric topology are not goroutine-safe, only serving is.
	transports := make([]interface {
		Pipeliner
		Close()
	}, clients)
	for i := 0; i < clients; i++ {
		node := st.nw.AddNode(fmt.Sprintf("stress%d", i))
		st.fab.Attach(node)
		if i%2 == 0 {
			transports[i] = dialStressUCR(t, st, node, behav)
		} else {
			tr, err := DialSock(st.prov, node, st.srvNode, "mc", behav, simnet.NewVClock(0))
			if err != nil {
				t.Fatal(err)
			}
			transports[i] = tr
		}
	}

	closeNow := make(chan struct{})
	var closeOnce sync.Once
	var closerWG sync.WaitGroup
	closerWG.Add(1)
	go func() {
		defer closerWG.Done()
		<-closeNow
		st.server.Close()
	}()

	type outcome struct {
		settled, failed int
	}
	results := make([]outcome, clients)
	var wg sync.WaitGroup
	for ci := 0; ci < clients; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			clk := simnet.NewVClock(0)
			pl := transports[ci].Pipeline(window)
			val := []byte("stress-value-0123456789")
			for b := 0; b < bursts; b++ {
				var gets []*GetFuture
				var sets []*SetFuture
				var dels []*BoolFuture
				for i := 0; i < burstOps; i++ {
					key := fmt.Sprintf("s%d-%d", ci, i%7)
					switch i % 4 {
					case 0, 1:
						gets = append(gets, pl.StartGet(clk, key))
					case 2:
						sets = append(sets, pl.StartSet(clk, key, 0, 0, val))
					default:
						dels = append(dels, pl.StartDelete(clk, key))
					}
					if ci == 0 && b == closeAt && i == burstOps/2 {
						closeOnce.Do(func() { close(closeNow) })
					}
				}
				pl.Wait(clk)
				for _, f := range gets {
					if _, _, _, _, err := f.Wait(clk); err != nil {
						results[ci].failed++
					}
					if !f.done {
						t.Errorf("client %d burst %d: get future did not settle", ci, b)
					}
					results[ci].settled++
				}
				for _, f := range sets {
					if _, err := f.Wait(clk); err != nil {
						results[ci].failed++
					}
					if !f.done {
						t.Errorf("client %d burst %d: set future did not settle", ci, b)
					}
					results[ci].settled++
				}
				for _, f := range dels {
					if _, err := f.Wait(clk); err != nil {
						results[ci].failed++
					}
					if !f.done {
						t.Errorf("client %d burst %d: delete future did not settle", ci, b)
					}
					results[ci].settled++
				}
			}
			transports[ci].Close()
		}(ci)
	}
	wg.Wait()
	closeOnce.Do(func() { close(closeNow) }) // in case no worker reached closeAt
	closerWG.Wait()

	total, failed := 0, 0
	for ci, r := range results {
		if r.settled != bursts*burstOps {
			t.Errorf("client %d: settled %d of %d futures", ci, r.settled, bursts*burstOps)
		}
		total += r.settled
		failed += r.failed
	}
	t.Logf("futures settled: %d (failed after close: %d)", total, failed)
	// The close lands mid-traffic, so at least one op must have seen a
	// live server and at least the closer's own later ops must fail —
	// both zero would mean the scenario went vacuous.
	if failed == 0 {
		t.Errorf("server close was a no-op: all %d futures succeeded", total)
	}
	if failed == total {
		t.Errorf("no future succeeded before the close (server never served)")
	}
}

// dialStressUCR dials a UCR transport from a caller-provided node (the
// stack's ucrClient helper hardcodes DefaultBehaviors; the stress test
// needs an op timeout so waits against the closed server settle).
func dialStressUCR(t *testing.T, st *stack, node *simnet.Node, behav Behaviors) *UCRTransport {
	t.Helper()
	hca := verbs.NewHCA(node, st.fab, verbs.Config{
		PostOverhead: 50, SendProc: 300, RecvProc: 300, RDMAProc: 400, PollOverhead: 100,
	})
	rt := ucr.New(hca, st.cm, ucr.Config{})
	ctx := rt.NewContext()
	tr, err := DialUCR(rt, ctx, st.srvNode, "mc-ucr", behav, simnet.NewVClock(0))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ctx.Destroy)
	return tr
}

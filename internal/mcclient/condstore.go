package mcclient

import (
	"fmt"

	"repro/internal/memcached"
	"repro/internal/simnet"
)

// CondStorer is the optional transport extension carrying the
// conditional storage commands (add, replace, append, prepend, cas).
// Both built-in transports implement it: the sockets transport with the
// matching text-protocol verbs, the UCR transport with the AMStore
// active message. op is one of memcached.StoreOp*; casID is only
// meaningful for StoreOpCas.
type CondStorer interface {
	StoreOp(clk *simnet.VClock, op uint8, key string, flags uint32, exptime int64, value []byte, casID uint64) (memcached.StoreResult, error)
}

var (
	_ CondStorer = (*UCRTransport)(nil)
	_ CondStorer = (*SockTransport)(nil)
)

// StoreOp implements CondStorer over one AMStore round trip.
func (t *UCRTransport) StoreOp(clk *simnet.VClock, op uint8, key string, flags uint32, exptime int64, value []byte, casID uint64) (memcached.StoreResult, error) {
	o := t.newOp()
	hdr := memcached.EncodeStoreReq(memcached.StoreReq{
		ReplyCtr: o.tag, Op: op, Flags: flags, Exptime: exptime, CAS: casID, Key: key,
	})
	o.send = func() error {
		return t.ep.Send(clk, memcached.AMStore, hdr, value, nil, 0, nil)
	}
	if err := t.do(clk, o); err != nil {
		return 0, err
	}
	defer t.finishOp(o)
	return o.status.Result, nil
}

// storeOpVerbs maps memcached.StoreOp* codes to text-protocol verbs.
var storeOpVerbs = map[uint8]string{
	memcached.StoreOpAdd:     "add",
	memcached.StoreOpReplace: "replace",
	memcached.StoreOpAppend:  "append",
	memcached.StoreOpPrepend: "prepend",
	memcached.StoreOpCas:     "cas",
}

// StoreOp implements CondStorer with the matching text-protocol verb.
func (t *SockTransport) StoreOp(clk *simnet.VClock, op uint8, key string, flags uint32, exptime int64, value []byte, casID uint64) (memcached.StoreResult, error) {
	verb, ok := storeOpVerbs[op]
	if !ok {
		return 0, fmt.Errorf("mcclient: unknown store op %d", op)
	}
	t.conn.SetClock(clk)
	var req string
	if op == memcached.StoreOpCas {
		req = fmt.Sprintf("cas %s %d %d %d %d\r\n", key, flags, exptime, len(value), casID)
	} else {
		req = fmt.Sprintf("%s %s %d %d %d\r\n", verb, key, flags, exptime, len(value))
	}
	buf := make([]byte, 0, len(req)+len(value)+2)
	buf = append(buf, req...)
	buf = append(buf, value...)
	buf = append(buf, '\r', '\n')
	if _, err := t.conn.Write(buf); err != nil {
		return 0, ErrServerDown
	}
	return t.readSetReply()
}

// storeOp routes a conditional store through the key's owner.
func (c *Client) storeOp(op uint8, key string, value []byte, flags uint32, exptime int64, casID uint64) error {
	if err := checkKey(key); err != nil {
		return err
	}
	var res memcached.StoreResult
	err := c.withTransport(key, func(t Transport) error {
		cs, ok := t.(CondStorer)
		if !ok {
			return fmt.Errorf("mcclient: transport %s: conditional stores unsupported", t.Name())
		}
		var err error
		res, err = cs.StoreOp(c.clk, op, key, flags, exptime, value, casID)
		return err
	})
	kind := memcached.RecAdd
	switch op {
	case memcached.StoreOpReplace:
		kind = memcached.RecReplace
	case memcached.StoreOpAppend:
		kind = memcached.RecAppend
	case memcached.StoreOpPrepend:
		kind = memcached.RecPrepend
	case memcached.StoreOpCas:
		kind = memcached.RecCas
	}
	c.observe(ObservedOp{
		Kind: kind, Key: key, Value: value, Flags: flags, Exptime: exptime,
		CasReq: casID, Res: res, Err: err,
	})
	if err != nil {
		return err
	}
	switch res {
	case memcached.Stored:
		return nil
	case memcached.Exists:
		return ErrCASExists
	case memcached.NotFound:
		return ErrCacheMiss
	case memcached.NotStored:
		return ErrNotStored
	default:
		// TooLarge / OOM: server-side failure, same classification as
		// Client.Set's.
		return fmt.Errorf("%w: %s failed: %s", ErrServerError, storeOpVerbs[op], res)
	}
}

// Add stores key=value only if the key is absent.
func (c *Client) Add(key string, value []byte, flags uint32, exptime int64) error {
	return c.storeOp(memcached.StoreOpAdd, key, value, flags, exptime, 0)
}

// Replace stores key=value only if the key is present.
func (c *Client) Replace(key string, value []byte, flags uint32, exptime int64) error {
	return c.storeOp(memcached.StoreOpReplace, key, value, flags, exptime, 0)
}

// Append adds value after the existing value for key.
func (c *Client) Append(key string, value []byte) error {
	return c.storeOp(memcached.StoreOpAppend, key, value, 0, 0, 0)
}

// Prepend adds value before the existing value for key.
func (c *Client) Prepend(key string, value []byte) error {
	return c.storeOp(memcached.StoreOpPrepend, key, value, 0, 0, 0)
}

// Cas stores key=value only if the entry's CAS id (from a prior Get)
// still matches.
func (c *Client) Cas(key string, value []byte, flags uint32, exptime int64, casID uint64) error {
	return c.storeOp(memcached.StoreOpCas, key, value, flags, exptime, casID)
}

package mcclient

import (
	"fmt"
	"sync"

	"repro/internal/memcached"
	"repro/internal/simnet"
)

// SessionMux is the connection concentrator: k logical client sessions
// multiplexed over one RC queue pair (one UCRTransport). The paper
// names RC's dedicated per-connection resources as the client-count
// scaling limit; concentrating sessions divides that footprint by k at
// the cost of sharing one wire and one progress context.
//
// Every session's requests ride the shared transport's tagged reply
// slots — the per-request counter id is the session's demultiplex key,
// so replies land in the issuing session's op no matter how sessions
// interleave on the QP. Sessions may be driven from different
// goroutines: a mutex serializes every touch of the shared transport,
// released between progress steps so one session waiting for its reply
// never starves the others. FIFO per session holds because each session
// issues at most one op at a time and blocks for it; the interleaving
// across sessions on the shared QP is invisible to each session's
// program order.
type SessionMux struct {
	mu sync.Mutex
	t  *UCRTransport
	n  int
}

// NewSessionMux concentrates k sessions over t. The caller must not use
// t directly afterwards (sessions own its slot table).
func NewSessionMux(t *UCRTransport, k int) *SessionMux {
	if k < 1 {
		k = 1
	}
	return &SessionMux{t: t, n: k}
}

// Sessions reports the concentration factor k.
func (m *SessionMux) Sessions() int { return m.n }

// Transport exposes the shared trunk transport (stats, tests).
func (m *SessionMux) Transport() *UCRTransport { return m.t }

// Session returns the i'th logical session (0 ≤ i < k). Each session
// implements Transport and is safe to drive from its own goroutine.
func (m *SessionMux) Session(i int) *Session {
	return &Session{mux: m, id: i, name: fmt.Sprintf("%s#%d", m.t.Name(), i)}
}

// Close tears down the shared transport. Call once, after every session
// is quiescent.
func (m *SessionMux) Close() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.t.Close()
}

// Session is one multiplexed logical client over the shared QP.
type Session struct {
	mux  *SessionMux
	id   int
	name string
}

// ID reports the session index within its mux.
func (s *Session) ID() int { return s.id }

// Name implements Transport.
func (s *Session) Name() string { return s.name }

// Close implements Transport. Closing a session is a no-op — the shared
// QP stays up for its siblings; use SessionMux.Close to tear down.
func (s *Session) Close() {}

// doShared opens an op under the mux lock (build must create it via
// t.newOp and set op.send), sends it, and waits for its counter with
// the lock released between progress steps: whichever session holds the
// lock drives the shared CQ, and a completion for any sibling lands in
// that sibling's slot before the lock is handed on.
func (m *SessionMux) doShared(clk *simnet.VClock, build func(t *UCRTransport) *amOp) (*amOp, error) {
	t := m.t
	m.mu.Lock()
	op := build(t)
	sendErr := op.sendAM()
	m.mu.Unlock()
	if sendErr != nil {
		m.retire(op)
		return nil, ErrServerDown
	}
	attempts := 1 + t.rt.Config().AMRetries
	per := t.perAttempt(attempts)
	for a := 0; a < attempts; a++ {
		deadline := simnet.Time(1) << 50
		if per > 0 {
			deadline = clk.Now() + per
		}
		for {
			m.mu.Lock()
			if op.ctr.Value() >= 1 {
				m.mu.Unlock()
				return op, nil
			}
			if op.ep.Failed() {
				m.mu.Unlock()
				m.retire(op)
				return nil, ErrServerDown
			}
			ok, timedOut := t.ctx.ProgressDeadline(clk, deadline, t.rt.Config().RealSilenceCap)
			m.mu.Unlock()
			if timedOut {
				break
			}
			if !ok {
				m.retire(op)
				return nil, ErrServerDown
			}
		}
		if a+1 < attempts {
			m.mu.Lock()
			sendErr = op.sendAM()
			m.mu.Unlock()
			if sendErr != nil {
				m.retire(op)
				return nil, ErrServerDown
			}
		}
	}
	m.mu.Lock()
	ep := op.ep
	m.mu.Unlock()
	ep.MarkFailed()
	m.retire(op)
	return nil, ErrServerDown
}

// retire finishes an op under the lock.
func (m *SessionMux) retire(op *amOp) {
	m.mu.Lock()
	m.t.finishOp(op)
	m.mu.Unlock()
}

// Set implements Transport.
func (s *Session) Set(clk *simnet.VClock, key string, flags uint32, exptime int64, value []byte) (memcached.StoreResult, error) {
	m := s.mux
	op, err := m.doShared(clk, func(t *UCRTransport) *amOp {
		op := t.newOp()
		hdr := memcached.EncodeSetReq(memcached.SetReq{
			ReplyCtr: op.tag, Flags: flags, Exptime: exptime, Key: key,
		})
		op.send = func() error {
			return t.ep.Send(clk, memcached.AMSet, hdr, value, nil, 0, nil)
		}
		return op
	})
	if err != nil {
		return 0, err
	}
	defer m.retire(op)
	if op.status.Status != memcached.AMOK {
		return op.status.Result, nil
	}
	return memcached.Stored, nil
}

// Get implements Transport.
func (s *Session) Get(clk *simnet.VClock, key string) ([]byte, uint32, uint64, bool, error) {
	m := s.mux
	op, err := m.doShared(clk, func(t *UCRTransport) *amOp {
		op := t.newOp()
		hdr := memcached.EncodeKeyReq(memcached.KeyReq{ReplyCtr: op.tag, Key: key})
		op.send = func() error {
			return t.ep.Send(clk, memcached.AMGet, hdr, nil, nil, 0, nil)
		}
		return op
	})
	if err != nil {
		return nil, 0, 0, false, err
	}
	defer m.retire(op)
	if op.get.Status != memcached.AMOK {
		return nil, 0, 0, false, nil
	}
	m.mu.Lock()
	out := make([]byte, len(op.data))
	copy(out, op.data)
	fl, cas := op.get.Flags, op.get.CAS
	m.mu.Unlock()
	return out, fl, cas, true, nil
}

// GetMulti implements Transport.
func (s *Session) GetMulti(clk *simnet.VClock, keys []string) (map[string][]byte, error) {
	if len(keys) == 0 {
		return map[string][]byte{}, nil
	}
	m := s.mux
	op, err := m.doShared(clk, func(t *UCRTransport) *amOp {
		op := t.newOp()
		hdr := memcached.EncodeMGetReq(memcached.MGetReq{ReplyCtr: op.tag, Keys: keys})
		op.send = func() error {
			return t.ep.Send(clk, memcached.AMMGet, hdr, nil, nil, 0, nil)
		}
		return op
	})
	if err != nil {
		return nil, err
	}
	defer m.retire(op)
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string][]byte, len(op.mget.Items))
	off := 0
	for _, it := range op.mget.Items {
		if off+it.ValueLen > len(op.data) {
			return nil, memcached.ErrShortAMHeader
		}
		v := make([]byte, it.ValueLen)
		copy(v, op.data[off:off+it.ValueLen])
		out[it.Key] = v
		off += it.ValueLen
	}
	return out, nil
}

// Delete implements Transport.
func (s *Session) Delete(clk *simnet.VClock, key string) (bool, error) {
	m := s.mux
	op, err := m.doShared(clk, func(t *UCRTransport) *amOp {
		op := t.newOp()
		hdr := memcached.EncodeKeyReq(memcached.KeyReq{ReplyCtr: op.tag, Key: key})
		op.send = func() error {
			return t.ep.Send(clk, memcached.AMDelete, hdr, nil, nil, 0, nil)
		}
		return op
	})
	if err != nil {
		return false, err
	}
	defer m.retire(op)
	return op.status.Status == memcached.AMOK, nil
}

// IncrDecr implements Transport.
func (s *Session) IncrDecr(clk *simnet.VClock, key string, delta uint64, incr bool) (uint64, bool, bool, error) {
	amID := memcached.AMIncr
	if !incr {
		amID = memcached.AMDecr
	}
	m := s.mux
	op, err := m.doShared(clk, func(t *UCRTransport) *amOp {
		op := t.newOp()
		hdr := memcached.EncodeNumReq(memcached.NumReq{ReplyCtr: op.tag, Delta: delta, Key: key})
		op.send = func() error {
			return t.ep.Send(clk, amID, hdr, nil, nil, 0, nil)
		}
		return op
	})
	if err != nil {
		return 0, false, false, err
	}
	defer m.retire(op)
	switch op.num.Status {
	case memcached.AMOK:
		return op.num.Value, true, false, nil
	case memcached.AMBadValue:
		return 0, true, true, nil
	case memcached.AMError:
		return 0, true, false, ErrServerError
	default:
		return 0, false, false, nil
	}
}

// interface conformance
var _ Transport = (*Session)(nil)

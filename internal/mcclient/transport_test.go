package mcclient

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/memcached"
	"repro/internal/simnet"
	"repro/internal/sockstream"
	"repro/internal/ucr"
	"repro/internal/verbs"
)

// stack is an in-package test deployment: one memcached server process
// serving both a socket provider and a UCR runtime.
type stack struct {
	nw      *simnet.Network
	fab     *simnet.Fabric
	cm      *verbs.CM
	prov    *sockstream.Provider
	srvNode *simnet.Node
	server  *memcached.Server
}

func newStack(t testing.TB) *stack {
	t.Helper()
	st := &stack{}
	st.nw = simnet.NewNetwork()
	st.srvNode = st.nw.AddNode("server")
	st.fab = st.nw.AddFabric(simnet.FabricSpec{
		Name:            "ib",
		LinkBytesPerSec: 2e9,
		Propagation:     300,
		SwitchDelay:     100,
	})
	st.fab.Attach(st.srvNode)
	st.cm = verbs.NewCM(st.fab)
	st.prov = &sockstream.Provider{
		Name:        "test-sock",
		Fabric:      st.fab,
		SendSyscall: 2000,
		RecvSyscall: 3000,
		SegmentSize: 8192,
	}
	st.server = memcached.NewServer(memcached.ServerConfig{Workers: 2})
	lis, err := st.prov.Listen(st.srvNode, "mc")
	if err != nil {
		t.Fatal(err)
	}
	st.server.ServeSockets(lis)
	hca := verbs.NewHCA(st.srvNode, st.fab, verbs.Config{
		PostOverhead: 50, SendProc: 300, RecvProc: 300, RDMAProc: 400, PollOverhead: 100,
	})
	rt := ucr.New(hca, st.cm, ucr.Config{})
	if err := st.server.ServeUCR(rt, "mc-ucr"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(st.server.Close)
	return st
}

// sockClient dials a socket transport from a fresh node.
func (st *stack) sockClient(t testing.TB) *SockTransport {
	t.Helper()
	node := st.nw.AddNode(fmt.Sprintf("sockcli%d", len(st.nw.Nodes())))
	st.fab.Attach(node)
	tr, err := DialSock(st.prov, node, st.srvNode, "mc", DefaultBehaviors(), simnet.NewVClock(0))
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// ucrClient dials a UCR transport from a fresh node.
func (st *stack) ucrClient(t testing.TB) (*UCRTransport, *ucr.Context) {
	t.Helper()
	node := st.nw.AddNode(fmt.Sprintf("ucrcli%d", len(st.nw.Nodes())))
	hca := verbs.NewHCA(node, st.fab, verbs.Config{
		PostOverhead: 50, SendProc: 300, RecvProc: 300, RDMAProc: 400, PollOverhead: 100,
	})
	rt := ucr.New(hca, st.cm, ucr.Config{})
	ctx := rt.NewContext()
	tr, err := DialUCR(rt, ctx, st.srvNode, "mc-ucr", DefaultBehaviors(), simnet.NewVClock(0))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ctx.Destroy)
	return tr, ctx
}

func TestSockTransportFullOps(t *testing.T) {
	st := newStack(t)
	tr := st.sockClient(t)
	defer tr.Close()
	clk := simnet.NewVClock(0)

	if res, err := tr.Set(clk, "k", 7, 0, []byte("value")); err != nil || res != memcached.Stored {
		t.Fatalf("Set = (%v, %v)", res, err)
	}
	v, flags, cas, ok, err := tr.Get(clk, "k")
	if err != nil || !ok || string(v) != "value" || flags != 7 || cas == 0 {
		t.Fatalf("Get = (%q, %d, %d, %v, %v)", v, flags, cas, ok, err)
	}
	if _, _, _, ok, err := tr.Get(clk, "absent"); err != nil || ok {
		t.Fatalf("miss = (%v, %v)", ok, err)
	}

	// Batched multi-get over the text protocol.
	tr.Set(clk, "a", 0, 0, []byte("1"))
	tr.Set(clk, "b", 0, 0, []byte("22"))
	got, err := tr.GetMulti(clk, []string{"a", "b", "zzz"})
	if err != nil || len(got) != 2 || string(got["b"]) != "22" {
		t.Fatalf("GetMulti = (%v, %v)", got, err)
	}
	if empty, err := tr.GetMulti(clk, nil); err != nil || len(empty) != 0 {
		t.Fatalf("empty GetMulti = (%v, %v)", empty, err)
	}

	if ok, err := tr.Delete(clk, "a"); err != nil || !ok {
		t.Fatalf("Delete = (%v, %v)", ok, err)
	}
	if ok, err := tr.Delete(clk, "a"); err != nil || ok {
		t.Fatalf("double Delete = (%v, %v)", ok, err)
	}

	tr.Set(clk, "n", 0, 0, []byte("5"))
	if val, found, bad, err := tr.IncrDecr(clk, "n", 10, true); err != nil || !found || bad || val != 15 {
		t.Fatalf("Incr = (%d, %v, %v, %v)", val, found, bad, err)
	}
	if val, found, bad, err := tr.IncrDecr(clk, "n", 100, false); err != nil || !found || bad || val != 0 {
		t.Fatalf("Decr = (%d, %v, %v, %v)", val, found, bad, err)
	}
	if _, found, _, err := tr.IncrDecr(clk, "absent", 1, true); err != nil || found {
		t.Fatalf("Incr miss = (%v, %v)", found, err)
	}
	tr.Set(clk, "txt", 0, 0, []byte("abc"))
	if _, found, bad, err := tr.IncrDecr(clk, "txt", 1, true); err != nil || !found || !bad {
		t.Fatalf("Incr non-numeric = (%v, %v, %v)", found, bad, err)
	}

	// Server stats over the wire.
	stats, err := tr.Stats(clk)
	if err != nil || stats["cmd_set"] == 0 {
		t.Fatalf("Stats = (%v, %v)", stats, err)
	}
	if tr.Name() == "" {
		t.Fatal("empty transport name")
	}
}

func TestUCRTransportFullOps(t *testing.T) {
	st := newStack(t)
	tr, _ := st.ucrClient(t)
	defer tr.Close()
	clk := simnet.NewVClock(0)

	if res, err := tr.Set(clk, "k", 3, 0, []byte("ucr-value")); err != nil || res != memcached.Stored {
		t.Fatalf("Set = (%v, %v)", res, err)
	}
	v, flags, _, ok, err := tr.Get(clk, "k")
	if err != nil || !ok || string(v) != "ucr-value" || flags != 3 {
		t.Fatalf("Get = (%q, %d, %v, %v)", v, flags, ok, err)
	}
	if _, _, _, ok, err := tr.Get(clk, "absent"); err != nil || ok {
		t.Fatalf("miss = (%v, %v)", ok, err)
	}

	// Large value: rendezvous both directions.
	big := bytes.Repeat([]byte{0xAB}, 100_000)
	if res, err := tr.Set(clk, "big", 0, 0, big); err != nil || res != memcached.Stored {
		t.Fatalf("big Set = (%v, %v)", res, err)
	}
	bv, _, _, ok, err := tr.Get(clk, "big")
	if err != nil || !ok || !bytes.Equal(bv, big) {
		t.Fatalf("big Get corrupted (%d bytes, %v, %v)", len(bv), ok, err)
	}

	// Batched mget as one active message.
	tr.Set(clk, "m1", 0, 0, []byte("one"))
	tr.Set(clk, "m2", 0, 0, []byte("two"))
	got, err := tr.GetMulti(clk, []string{"m1", "m2", "m3"})
	if err != nil || len(got) != 2 || string(got["m1"]) != "one" {
		t.Fatalf("GetMulti = (%v, %v)", got, err)
	}

	if ok, err := tr.Delete(clk, "m1"); err != nil || !ok {
		t.Fatalf("Delete = (%v, %v)", ok, err)
	}
	tr.Set(clk, "n", 0, 0, []byte("41"))
	if val, found, bad, err := tr.IncrDecr(clk, "n", 1, true); err != nil || !found || bad || val != 42 {
		t.Fatalf("Incr = (%d, %v, %v, %v)", val, found, bad, err)
	}
	if _, found, _, err := tr.IncrDecr(clk, "absent", 1, false); err != nil || found {
		t.Fatalf("Decr miss = (%v, %v)", found, err)
	}
	tr.Set(clk, "txt", 0, 0, []byte("xyz"))
	if _, found, bad, err := tr.IncrDecr(clk, "txt", 1, false); err != nil || !found || !bad {
		t.Fatalf("Decr non-numeric = (%v, %v, %v)", found, bad, err)
	}
	if tr.Endpoint() == nil {
		t.Fatal("nil endpoint")
	}
}

func TestMixedTransportsShareEngine(t *testing.T) {
	st := newStack(t)
	sock := st.sockClient(t)
	defer sock.Close()
	ucrTr, _ := st.ucrClient(t)
	defer ucrTr.Close()
	clk := simnet.NewVClock(0)

	if _, err := ucrTr.Set(clk, "shared", 0, 0, []byte("via-ucr")); err != nil {
		t.Fatal(err)
	}
	v, _, _, ok, err := sock.Get(clk, "shared")
	if err != nil || !ok || string(v) != "via-ucr" {
		t.Fatalf("sock read = (%q, %v, %v)", v, ok, err)
	}
}

func TestUCRTransportTimeout(t *testing.T) {
	st := newStack(t)
	b := DefaultBehaviors()
	b.OpTimeout = 100 * simnet.Microsecond
	node := st.nw.AddNode("timeout-cli")
	hca := verbs.NewHCA(node, st.fab, verbs.Config{PostOverhead: 50, SendProc: 300, RecvProc: 300, PollOverhead: 100})
	rt := ucr.New(hca, st.cm, ucr.Config{})
	ctx := rt.NewContext()
	defer ctx.Destroy()
	clk := simnet.NewVClock(0)
	tr, err := DialUCR(rt, ctx, st.srvNode, "mc-ucr", b, clk)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	if _, err := tr.Set(clk, "warm", 0, 0, []byte("v")); err != nil {
		t.Fatal(err)
	}
	st.srvNode.Fail()
	if _, err := tr.Set(clk, "dead", 0, 0, []byte("v")); err != ErrServerDown {
		t.Fatalf("err = %v, want ErrServerDown", err)
	}
}

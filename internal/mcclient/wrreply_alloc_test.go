package mcclient

import (
	"testing"

	"repro/internal/simnet"
)

// wrAllocStack is serverBenchStack with the write-based reply path
// armed and a crossover-sized value, so the steady state under
// measurement is the RDMA-write serve path: request parse, pinned
// lookup, gather write into the client's slot, notify, slot landing.
func wrAllocStack(t testing.TB, valSize int) (*UCRTransport, *simnet.VClock, []byte) {
	tr, clk := benchStack(t)
	if err := tr.EnableWriteReplies(clk, 0, 0); err != nil {
		t.Fatal(err)
	}
	val := make([]byte, valSize)
	for i := 0; i < 8; i++ {
		if _, err := tr.Set(clk, "bench", 0, 0, val); err != nil {
			t.Fatal(err)
		}
		if _, _, _, ok, err := tr.GetInto(clk, "bench", val[:0]); err != nil || !ok {
			t.Fatalf("warmup get = (%v, %v)", ok, err)
		}
	}
	return tr, clk, val
}

// TestServerGetZeroAllocWriteReplies holds the zero-alloc gate with the
// write path engaged: a 4 KB value (past the 1 KB crossover) must serve
// via RDMA write — pin, gather post, notify, slot land — without a
// single allocation on either side of the wire.
func TestServerGetZeroAllocWriteReplies(t *testing.T) {
	tr, clk, val := wrAllocStack(t, 4096)
	base := tr.WriteReplyHits()
	allocs := testing.AllocsPerRun(200, func() {
		v, _, _, ok, err := tr.GetInto(clk, "bench", val[:0])
		if err != nil || !ok || len(v) != 4096 {
			t.Fatalf("GetInto = (%d, %v, %v)", len(v), ok, err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state write-reply GET path: %v allocs/op, want 0", allocs)
	}
	if tr.WriteReplyHits() == base {
		t.Fatal("measured loop never took the write path (vacuous test)")
	}
}

// TestServerGetZeroAllocWriteRepliesEagerFallback: with the arena armed
// but the value below the crossover, the request still advertises a
// window (AMGetW) and the server answers with the plain eager reply —
// that fallback lane must stay zero-alloc too.
func TestServerGetZeroAllocWriteRepliesEagerFallback(t *testing.T) {
	tr, clk, val := wrAllocStack(t, benchValSize)
	base := tr.WriteReplyHits()
	allocs := testing.AllocsPerRun(200, func() {
		v, _, _, ok, err := tr.GetInto(clk, "bench", val[:0])
		if err != nil || !ok || len(v) != benchValSize {
			t.Fatalf("GetInto = (%d, %v, %v)", len(v), ok, err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state eager fallback under armed arena: %v allocs/op, want 0", allocs)
	}
	if tr.WriteReplyHits() != base {
		t.Fatal("sub-crossover value unexpectedly took the write path")
	}
}

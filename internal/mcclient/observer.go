package mcclient

import "repro/internal/memcached"

// ObservedOp is one client-visible operation outcome: what the caller
// asked for and what the server answered, as seen from this client.
// The memcheck harness collects these and cross-checks them against the
// server's own recorded history — catching frontend/transport bugs
// (dropped fields, misrouted replies) that an engine-level record can
// never show.
type ObservedOp struct {
	Kind    memcached.OpKind
	Key     string
	Value   []byte // stores: value sent; get hit: value received
	Flags   uint32
	Exptime int64
	CasReq  uint64
	Delta   uint64

	Res memcached.StoreResult // store-class ops
	Hit bool                  // get/delete/incr/decr
	Bad bool                  // incr/decr: non-numeric value
	Num uint64                // incr/decr result
	CAS uint64                // get hit: item CAS id

	Err error // transport-level failure (timeouts, dead server)

	// OneSided marks a get served by the client's RDMA-read fast path:
	// no server AM ran, so the hit never reached the server's record
	// stream and checkers must validate it against item history instead.
	OneSided bool
}

// SetObserver arms (or, with nil, disarms) per-operation observation.
// fn is called synchronously on the client's goroutine after each
// operation completes; byte slices are copies, safe to retain.
func (c *Client) SetObserver(fn func(ObservedOp)) { c.observer = fn }

func (c *Client) observe(o ObservedOp) {
	if c.observer == nil {
		return
	}
	if len(o.Value) > 0 {
		o.Value = append([]byte(nil), o.Value...)
	}
	c.observer(o)
}

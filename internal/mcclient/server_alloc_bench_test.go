package mcclient

import (
	"testing"

	"repro/internal/simnet"
)

// Server-path allocation benchmarks (companion to alloc_bench_test.go,
// which covers the client's lending variants). These drive the full
// stack — client issue, UCR wire, worker-pool serve, reply land — and
// the zero-alloc tests below hard-assert that the steady state GET and
// SET paths allocate nothing anywhere in the process: the measurement
// is a process-wide malloc delta, so a regression on the server's
// parse → store → reply path fails the suite even though the server
// runs on its own goroutines.
//
//	go test -bench 'Server(Get|Set)' -benchmem ./internal/mcclient/

const benchValSize = 512

func serverBenchStack(b testing.TB) (*UCRTransport, *simnet.VClock, []byte) {
	tr, clk := benchStack(b)
	val := make([]byte, benchValSize)
	// Warm the server's per-worker staging and the transport's op/buffer
	// pools: steady state is what the assertions are about.
	for i := 0; i < 8; i++ {
		if _, err := tr.Set(clk, "bench", 0, 0, val); err != nil {
			b.Fatal(err)
		}
		if _, _, _, ok, err := tr.GetInto(clk, "bench", val[:0]); err != nil || !ok {
			b.Fatalf("warmup get = (%v, %v)", ok, err)
		}
	}
	return tr, clk, val
}

func BenchmarkServerGet(b *testing.B) {
	tr, clk, val := serverBenchStack(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v, _, _, ok, err := tr.GetInto(clk, "bench", val[:0])
		if err != nil || !ok || len(v) != benchValSize {
			b.Fatalf("GetInto = (%d, %v, %v)", len(v), ok, err)
		}
	}
}

func BenchmarkServerSet(b *testing.B) {
	tr, clk, val := serverBenchStack(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tr.Set(clk, "bench", 0, 0, val); err != nil {
			b.Fatal(err)
		}
	}
}

// TestServerGetZeroAlloc is the hard gate for the GET serve path: one
// steady-state GetInto round trip — request parse, striped-store read,
// reply build and land — must not allocate on either side of the wire.
func TestServerGetZeroAlloc(t *testing.T) {
	tr, clk, val := serverBenchStack(t)
	allocs := testing.AllocsPerRun(200, func() {
		v, _, _, ok, err := tr.GetInto(clk, "bench", val[:0])
		if err != nil || !ok || len(v) != benchValSize {
			t.Fatalf("GetInto = (%d, %v, %v)", len(v), ok, err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state GET path: %v allocs/op, want 0", allocs)
	}
}

// TestServerSetZeroAlloc is the hard gate for the SET serve path: a
// same-sized overwrite must reuse the item in place on the server and
// the op slot on the client.
func TestServerSetZeroAlloc(t *testing.T) {
	tr, clk, val := serverBenchStack(t)
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := tr.Set(clk, "bench", 0, 0, val); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state SET path: %v allocs/op, want 0", allocs)
	}
}

package mcclient

import (
	"repro/internal/memcached"
	"repro/internal/simnet"
	"repro/internal/ucr"
)

// Client half of the one-sided GET path: resolve key → directory entry
// with an RDMA read of the entry's bucket, RDMA-read the [key][value]
// bytes straight out of the server's slab memory, and validate with a
// seqlock re-read of the entry — the seq must be even and unchanged
// across the value fetch, and the key bytes must match. Anything else
// (miss, displaced entry, oversize, expiry, conflict, UD endpoint)
// falls back to the two-sided AM path, which is always correct.
//
// The fallback ladder, cheapest exit first:
//  1. one-sided disabled or descriptor says no      → AM
//  2. bucket read finds no entry for the key        → AM (miss or displaced)
//  3. entry expired by the client's clock           → AM
//  4. seqlock conflict after one bucket-refresh retry → AM
//  5. validated                                     → serve locally, hit

// osConflictRetries is how many times a conflicting read refreshes the
// bucket and tries again before giving up on the fast path.
const osConflictRetries = 1

// osState is the transport's one-sided view of one server.
type osState struct {
	want    bool // user asked for the fast path
	checked bool // descriptor exchange done
	enabled bool // server says the index is armed
	desc    memcached.OSDescReply

	// cache maps key → (entry, slot) from earlier bucket reads; stale
	// entries fail validation and are refreshed, so it is only a
	// round-trip saver, never a correctness input.
	cache map[string]osCached

	kvBuf     []byte // landing space for [key][value] reads
	bucketBuf []byte // landing space for bucket/entry reads

	hits, fallbacks, conflicts uint64
}

type osCached struct {
	ent  memcached.OSEntry
	slot int
}

// EnableOneSided turns the one-sided GET fast path on for this
// transport. The descriptor exchange happens lazily on the first Get.
func (t *UCRTransport) EnableOneSided() { t.os.want = true }

// TookOneSided reports whether the transport's most recent Get was
// served by the one-sided path (observer tagging).
func (t *UCRTransport) TookOneSided() bool { return t.lastOneSided }

// OneSidedStats reports fast-path outcomes.
func (t *UCRTransport) OneSidedStats() (hits, fallbacks, conflicts uint64) {
	return t.os.hits, t.os.fallbacks, t.os.conflicts
}

// fetchOSDesc runs the AMOSDesc exchange once per transport.
func (t *UCRTransport) fetchOSDesc(clk *simnet.VClock) {
	t.os.checked = true
	op := t.newOp()
	hdr := memcached.EncodeKeyReq(memcached.KeyReq{ReplyCtr: op.tag})
	op.send = func() error {
		return t.ep.Send(clk, memcached.AMOSDesc, hdr, nil, nil, 0, nil)
	}
	if err := t.do(clk, op); err != nil {
		return
	}
	defer t.finishOp(op)
	if !op.osd.Enabled || op.osd.Buckets <= 0 || op.osd.Slots <= 0 {
		return
	}
	t.os.desc = op.osd
	t.os.enabled = true
	t.os.cache = make(map[string]osCached)
	t.os.bucketBuf = make([]byte, op.osd.Slots*memcached.OSEntrySize)
}

// readDir RDMA-reads n bytes of the directory window at off into buf.
func (t *UCRTransport) readDir(clk *simnet.VClock, buf []byte, off int, ctr *ucr.Counter, target uint64) bool {
	if err := t.ep.Get(clk, buf, t.os.desc.Dir, off, ctr); err != nil {
		return false
	}
	return t.ctx.WaitCounter(clk, ctr, target, t.timeout) == nil
}

// findEntry reads the key's bucket and scans it. ok=false: no entry.
func (t *UCRTransport) findEntry(clk *simnet.VClock, h uint64, bucket int, ctr *ucr.Counter, waited *uint64) (memcached.OSEntry, int, bool) {
	base := bucket * t.os.desc.Slots * memcached.OSEntrySize
	*waited++
	if !t.readDir(clk, t.os.bucketBuf, base, ctr, *waited) {
		return memcached.OSEntry{}, 0, false
	}
	for s := 0; s < t.os.desc.Slots; s++ {
		e := memcached.DecodeOSEntry(t.os.bucketBuf[s*memcached.OSEntrySize:])
		if e.KeyHash == h {
			return e, s, true
		}
	}
	return memcached.OSEntry{}, 0, false
}

// oneSidedGet attempts the fast path. ok=true means a validated hit was
// served (value aliases a transport buffer only if copied — it is always
// an owned copy here). ok=false means the caller must run the AM path.
func (t *UCRTransport) oneSidedGet(clk *simnet.VClock, key string, lend []byte) (value []byte, flags uint32, cas uint64, ok bool) {
	if !t.os.want {
		return nil, 0, 0, false
	}
	if !t.os.checked {
		t.fetchOSDesc(clk)
	}
	if !t.os.enabled || len(key) == 0 {
		return nil, 0, 0, false
	}

	h := memcached.OSKeyHash(key)
	bucket := memcached.OSBucketOf(h, t.os.desc.Buckets)
	ctr := t.rt.NewCounter()
	defer t.rt.FreeCounter(ctr)
	var waited uint64 // running wait target on ctr

	ent, slot, have := memcached.OSEntry{}, 0, false
	if c, hit := t.os.cache[key]; hit {
		ent, slot, have = c.ent, c.slot, true
	}
	for attempt := 0; ; attempt++ {
		if !have {
			ent, slot, have = t.findEntry(clk, h, bucket, ctr, &waited)
			if !have {
				delete(t.os.cache, key)
				t.os.fallbacks++
				return nil, 0, 0, false // miss or displaced: AM decides
			}
		}
		if !ent.Live() || ent.KeyLen != len(key) ||
			(ent.ExpireAt != 0 && clk.Now() >= ent.ExpireAt) {
			// Dead, mismatched, or expired by the client's own clock.
			// Accepting only when now < ExpireAt keeps the read
			// linearizable: the hit happened while the item was live.
			delete(t.os.cache, key)
			t.os.fallbacks++
			return nil, 0, 0, false
		}

		// Value fetch + entry re-read, posted back to back: the simulated
		// HCA executes reads in post order, so the re-read observes the
		// directory at-or-after the value bytes were taken.
		kvLen := ent.KeyLen + ent.ValLen
		if cap(t.os.kvBuf) < kvLen {
			t.os.kvBuf = make([]byte, kvLen)
		}
		kv := t.os.kvBuf[:kvLen]
		chunkDesc := ucr.WindowDesc{Addr: ent.Addr, RKey: ent.RKey, Len: kvLen}
		if err := t.ep.Get(clk, kv, chunkDesc, 0, ctr); err != nil {
			t.os.fallbacks++
			return nil, 0, 0, false
		}
		waited++
		slotOff := (bucket*t.os.desc.Slots + slot) * memcached.OSEntrySize
		entBuf := t.os.bucketBuf[:memcached.OSEntrySize]
		waited++
		if !t.readDir(clk, entBuf, slotOff, ctr, waited) {
			t.os.fallbacks++
			return nil, 0, 0, false
		}
		reread := memcached.DecodeOSEntry(entBuf)
		if reread.Seq == ent.Seq && reread.Live() &&
			reread.Addr == ent.Addr && reread.KeyLen == ent.KeyLen &&
			reread.ValLen == ent.ValLen && string(kv[:ent.KeyLen]) == key {
			// Validated: copy the value out of the landing buffer (the
			// client-side memcpy the AM eager path also pays).
			out := lend
			if cap(out) < ent.ValLen {
				out = make([]byte, ent.ValLen)
			}
			out = out[:ent.ValLen]
			copy(out, kv[ent.KeyLen:])
			clk.Advance(simnet.BytesDuration(ent.ValLen, t.rt.Config().PackBytesPerSec))
			t.os.cache[key] = osCached{ent: ent, slot: slot}
			t.os.hits++
			t.lastOneSided = true
			return out, ent.Flags, reread.CAS(), true
		}
		// Conflict: the entry moved under us (overwrite, delete,
		// eviction, or a stale cache hit). Refresh the bucket and retry
		// once; then let the AM path settle it.
		t.os.conflicts++
		delete(t.os.cache, key)
		have = false
		if attempt >= osConflictRetries {
			t.os.fallbacks++
			return nil, 0, 0, false
		}
	}
}

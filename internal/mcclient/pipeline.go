package mcclient

import (
	"repro/internal/memcached"
	"repro/internal/simnet"
)

// Pipelined transports: issue and completion split apart so one
// connection can keep a window of N requests in flight. The blocking
// Transport methods pay every per-op fixed cost (doorbell, CQ wakeup,
// full round trip) serially; a Pipeline overlaps them — requests in a
// window are posted as one doorbell burst, and a wait for one reply
// drains whatever other replies are already visible at the coalesced
// CQ cost. Tagged reply slots (see UCRTransport) route each reply to
// its own request regardless of arrival order.
//
// A Pipeline borrows its transport's connection: while a window is
// outstanding, do not interleave blocking Transport calls on the same
// transport. Futures may be waited in any order (or dropped — Wait
// settles everything).

// Pipeliner is implemented by transports that support windowed
// pipelining.
type Pipeliner interface {
	// Pipeline opens a pipelined issue path with a window of at most
	// `window` in-flight requests (minimum 1).
	Pipeline(window int) Pipeline
}

// Pipeline is the windowed asynchronous issue API. Start* calls return
// immediately with a Future; once the window is full the oldest request
// is completed to make room. Flush forces queued requests onto the
// wire; Wait flushes and settles every outstanding future.
type Pipeline interface {
	StartGet(clk *simnet.VClock, key string) *GetFuture
	// StartGetInto is StartGet with a caller-lent value buffer (see
	// UCRTransport.GetInto); the future's value aliases buf when it fit.
	StartGetInto(clk *simnet.VClock, key string, buf []byte) *GetFuture
	// StartSet issues a set; value must stay untouched until the future
	// settles (large values are exposed for rendezvous reads in place).
	StartSet(clk *simnet.VClock, key string, flags uint32, exptime int64, value []byte) *SetFuture
	StartDelete(clk *simnet.VClock, key string) *BoolFuture
	// Flush pushes every queued request onto the wire in one batch.
	Flush(clk *simnet.VClock) error
	// Wait flushes and settles all outstanding futures, returning the
	// first transport-level error (per-op outcomes live on the futures).
	Wait(clk *simnet.VClock) error
	// Window reports the configured depth.
	Window() int
}

// GetFuture is the pending result of StartGet.
type GetFuture struct {
	value []byte
	flags uint32
	cas   uint64
	hit   bool
	err   error
	done  bool
	wait  func(clk *simnet.VClock)
}

// Wait settles the future (driving the pipeline as needed) and returns
// the get outcome, mirroring Transport.Get.
func (f *GetFuture) Wait(clk *simnet.VClock) ([]byte, uint32, uint64, bool, error) {
	if !f.done {
		f.wait(clk)
	}
	return f.value, f.flags, f.cas, f.hit, f.err
}

// SetFuture is the pending result of StartSet.
type SetFuture struct {
	res  memcached.StoreResult
	err  error
	done bool
	wait func(clk *simnet.VClock)
}

// Wait settles the future and returns the store outcome.
func (f *SetFuture) Wait(clk *simnet.VClock) (memcached.StoreResult, error) {
	if !f.done {
		f.wait(clk)
	}
	return f.res, f.err
}

// BoolFuture is the pending result of StartDelete.
type BoolFuture struct {
	ok   bool
	err  error
	done bool
	wait func(clk *simnet.VClock)
}

// Wait settles the future and returns the outcome.
func (f *BoolFuture) Wait(clk *simnet.VClock) (bool, error) {
	if !f.done {
		f.wait(clk)
	}
	return f.ok, f.err
}

// pipeOp is one pipelined request: the tagged op, whether its send hit
// the wire yet, and how to record its outcome into the future.
type pipeOp struct {
	op     *amOp
	sent   bool
	failed bool // send never reached the wire: settle ErrServerDown
	done   bool
	settle func(err error)
	// land is non-nil while a write-reply landing is deferred: the value
	// still sits in the op's reply slot and this materializes the
	// copy-out into the future (then retires the op). The pipeline runs
	// pending landings just before each blocking CQ wait, so the copy
	// overlaps the wire instead of delaying the next request.
	land func(clk *simnet.VClock)
}

// Pipeline implements Pipeliner: the returned pipeline issues AM
// requests without waiting, posts each full window as one doorbell
// burst (Context post batching → verbs.PostSendN), and waits with
// window-sized CQ drains (WaitCounterBatch).
func (t *UCRTransport) Pipeline(window int) Pipeline {
	if window < 1 {
		window = 1
	}
	return &ucrPipeline{t: t, window: window}
}

type ucrPipeline struct {
	t      *UCRTransport
	window int
	q      []*pipeOp // outstanding, issue order
	pend   []*pipeOp // trailing entries whose sends are still queued
	landq  []*pipeOp // settled entries with a deferred write-reply landing
	err    error     // first transport-level error (sticky)
}

func (p *ucrPipeline) Window() int { return p.window }

// push admits e into the window — completing the oldest request when
// the window is full — and flushes every half window. Flushing only on
// a full window would batch-synchronize the pipe (drain all, then
// repost all, wire idle in between); half-window bursts keep at least
// window/2 requests on the wire through the refill while still
// coalescing doorbells — and arriving in bursts is what lets the
// server's batched CQ drain engage its coalesced costs. Queued sends
// are additionally flushed before blocking for window room: holding
// them through a wait would drain the wire exactly when it most needs
// feeding and degrade serving to a per-window relay.
func (p *ucrPipeline) push(clk *simnet.VClock, e *pipeOp) {
	if len(p.q) >= p.window && len(p.pend) > 0 {
		p.Flush(clk)
	}
	for len(p.q) >= p.window {
		p.waitFor(clk, p.q[0])
	}
	p.q = append(p.q, e)
	p.pend = append(p.pend, e)
	if len(p.pend) >= (p.window+1)/2 {
		p.Flush(clk)
	}
}

// Flush sends every queued request in one post batch: packets are
// encoded and charged as usual, their work requests posted with a
// single doorbell (PostSendN).
func (p *ucrPipeline) Flush(clk *simnet.VClock) error {
	if len(p.pend) == 0 {
		return nil
	}
	t := p.t
	t.ctx.BeginPostBatch()
	var sendErr error
	for _, e := range p.pend {
		if sendErr == nil {
			sendErr = e.op.sendAM()
		}
		if sendErr != nil {
			e.failed = true
		}
		e.sent = true
	}
	if err := t.ctx.FlushPosts(clk); err != nil && sendErr == nil {
		sendErr = err
		for _, e := range p.pend {
			e.failed = true
		}
	}
	p.pend = p.pend[:0]
	if sendErr != nil {
		p.fail(ErrServerDown)
		return ErrServerDown
	}
	return nil
}

func (p *ucrPipeline) fail(err error) {
	if p.err == nil {
		p.err = err
	}
}

// drainLandings materializes every deferred write-reply copy-out. Run
// just before a blocking CQ wait, the copies are charged while the
// awaited reply is still on the wire; the forward-only sync to its
// arrival then swallows them (see wrLand).
func (p *ucrPipeline) drainLandings(clk *simnet.VClock) {
	for i, e := range p.landq {
		if e.land != nil {
			e.land(clk)
		}
		p.landq[i] = nil
	}
	p.landq = p.landq[:0]
}

// waitFor settles one outstanding entry (in any order — tagged slots
// let replies land while a different tag is being waited on).
func (p *ucrPipeline) waitFor(clk *simnet.VClock, e *pipeOp) {
	if e.done {
		if e.land != nil {
			e.land(clk)
		}
		return
	}
	if !e.sent {
		p.Flush(clk)
	}
	var err error
	if e.failed {
		err = ErrServerDown
	} else {
		p.drainLandings(clk)
		err = p.t.waitDone(clk, e.op, p.window)
	}
	if err != nil {
		p.fail(err)
	}
	e.settle(err)
	e.done = true
	p.remove(e)
	if e.land != nil {
		// Deferred write-reply landing: the op keeps its reply slot until
		// the copy-out materializes at the next blocking wait (or on the
		// future's own Wait, whichever comes first).
		p.landq = append(p.landq, e)
	} else {
		p.t.finishOp(e.op)
	}
}

func (p *ucrPipeline) remove(e *pipeOp) {
	for i, x := range p.q {
		if x == e {
			p.q = append(p.q[:i], p.q[i+1:]...)
			return
		}
	}
}

// Wait flushes and settles everything outstanding.
func (p *ucrPipeline) Wait(clk *simnet.VClock) error {
	p.Flush(clk)
	for len(p.q) > 0 {
		p.waitFor(clk, p.q[0])
	}
	p.drainLandings(clk)
	return p.err
}

func (p *ucrPipeline) StartGet(clk *simnet.VClock, key string) *GetFuture {
	return p.startGet(clk, key, nil)
}

func (p *ucrPipeline) StartGetInto(clk *simnet.VClock, key string, buf []byte) *GetFuture {
	return p.startGet(clk, key, buf)
}

func (p *ucrPipeline) startGet(clk *simnet.VClock, key string, lend []byte) *GetFuture {
	t := p.t
	f := &GetFuture{}
	op := t.newOp()
	op.lend = lend
	var hdr []byte
	msg := memcached.AMGet
	if i, ok := t.wrAcquire(); ok {
		op.wrSlot = i + 1
		hdr = memcached.EncodeGetWReq(memcached.GetWReq{ReplyCtr: op.tag, Slot: uint16(i), Key: key})
		msg = memcached.AMGetW
	} else {
		hdr = memcached.EncodeKeyReq(memcached.KeyReq{ReplyCtr: op.tag, Key: key})
	}
	op.send = func() error {
		return t.ep.Send(clk, msg, hdr, nil, nil, 0, nil)
	}
	e := &pipeOp{op: op}
	e.settle = func(err error) {
		if err != nil {
			f.done = true
			f.err = err
			return
		}
		if op.get.Status != memcached.AMOK {
			f.done = true
			return
		}
		f.hit = true
		f.flags, f.cas = op.get.Flags, op.get.CAS
		if op.wrPend {
			// Value still sits in the reply slot: defer the copy-out so
			// it lands under the next wait's wire time.
			e.land = func(clk *simnet.VClock) {
				f.value = t.wrTake(clk, op)
				f.done = true
				e.land = nil
				t.finishOp(op)
			}
			return
		}
		f.done = true
		v := op.data
		if op.pooled {
			v = append([]byte(nil), op.data...)
		}
		f.value = v
	}
	f.wait = func(clk *simnet.VClock) { p.waitFor(clk, e) }
	p.push(clk, e)
	return f
}

func (p *ucrPipeline) StartSet(clk *simnet.VClock, key string, flags uint32, exptime int64, value []byte) *SetFuture {
	t := p.t
	f := &SetFuture{}
	op := t.newOp()
	hdr := memcached.EncodeSetReq(memcached.SetReq{
		ReplyCtr: op.tag, Flags: flags, Exptime: exptime, Key: key,
	})
	op.send = func() error {
		return t.ep.Send(clk, memcached.AMSet, hdr, value, nil, 0, nil)
	}
	e := &pipeOp{op: op}
	e.settle = func(err error) {
		f.done = true
		if err != nil {
			f.err = err
			return
		}
		if op.status.Status != memcached.AMOK {
			f.res = op.status.Result
			return
		}
		f.res = memcached.Stored
	}
	f.wait = func(clk *simnet.VClock) { p.waitFor(clk, e) }
	p.push(clk, e)
	return f
}

func (p *ucrPipeline) StartDelete(clk *simnet.VClock, key string) *BoolFuture {
	t := p.t
	f := &BoolFuture{}
	op := t.newOp()
	hdr := memcached.EncodeKeyReq(memcached.KeyReq{ReplyCtr: op.tag, Key: key})
	op.send = func() error {
		return t.ep.Send(clk, memcached.AMDelete, hdr, nil, nil, 0, nil)
	}
	e := &pipeOp{op: op}
	e.settle = func(err error) {
		f.done = true
		if err != nil {
			f.err = err
			return
		}
		f.ok = op.status.Status == memcached.AMOK
	}
	f.wait = func(clk *simnet.VClock) { p.waitFor(clk, e) }
	p.push(clk, e)
	return f
}

// interface conformance
var (
	_ Pipeliner = (*UCRTransport)(nil)
	_ Pipeline  = (*ucrPipeline)(nil)
)

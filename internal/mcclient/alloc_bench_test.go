package mcclient

import (
	"testing"

	"repro/internal/simnet"
)

// Benchmarks for the buffer-lending Get variants: GetInto lands the
// value in a caller-owned buffer (and the transport's reply pool
// absorbs the wire-side landing), so the steady-state hit path stops
// allocating per op. Compare allocs/op:
//
//	go test -bench 'UCRGet' -benchmem ./internal/mcclient/

func benchStack(b testing.TB) (*UCRTransport, *simnet.VClock) {
	st := newStack(b)
	tr, _ := st.ucrClient(b)
	b.Cleanup(tr.Close)
	clk := simnet.NewVClock(0)
	if _, err := tr.Set(clk, "bench", 0, 0, make([]byte, 512)); err != nil {
		b.Fatal(err)
	}
	// Warm the transport's buffer pool before measuring.
	if _, _, _, ok, err := tr.Get(clk, "bench"); err != nil || !ok {
		b.Fatalf("warmup = (%v, %v)", ok, err)
	}
	return tr, clk
}

func BenchmarkUCRGet(b *testing.B) {
	tr, clk := benchStack(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v, _, _, ok, err := tr.Get(clk, "bench")
		if err != nil || !ok || len(v) != 512 {
			b.Fatalf("Get = (%d, %v, %v)", len(v), ok, err)
		}
	}
}

func BenchmarkUCRGetInto(b *testing.B) {
	tr, clk := benchStack(b)
	buf := make([]byte, 0, 1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v, _, _, ok, err := tr.GetInto(clk, "bench", buf)
		if err != nil || !ok || len(v) != 512 {
			b.Fatalf("GetInto = (%d, %v, %v)", len(v), ok, err)
		}
	}
}

func BenchmarkUCRGetMulti(b *testing.B) {
	tr, clk := benchStack(b)
	keys := []string{"bench"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		got, err := tr.GetMulti(clk, keys)
		if err != nil || len(got) != 1 {
			b.Fatalf("GetMulti = (%v, %v)", got, err)
		}
	}
}

func BenchmarkUCRGetMultiInto(b *testing.B) {
	tr, clk := benchStack(b)
	keys := []string{"bench"}
	block := make([]byte, 0, 1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		got, err := tr.GetMultiInto(clk, keys, block)
		if err != nil || len(got) != 1 {
			b.Fatalf("GetMultiInto = (%v, %v)", got, err)
		}
	}
}

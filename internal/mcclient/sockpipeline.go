package mcclient

import (
	"fmt"

	"repro/internal/simnet"
)

// Pipeline implements Pipeliner for the text protocol: queued requests
// are accumulated into one write buffer and hit the stream as a single
// Write (the socket analog of a doorbell burst — one syscall/segment
// charge instead of one per request), and replies are drained strictly
// FIFO off the shared bufio.Reader. Pipelined sets never use "noreply":
// every request has exactly one reply, keeping the stream in lockstep
// with the op queue.
func (t *SockTransport) Pipeline(window int) Pipeline {
	if window < 1 {
		window = 1
	}
	return &sockPipeline{t: t, window: window}
}

// sockOp is one pipelined text request awaiting its reply.
type sockOp struct {
	read   func() error // parse this op's reply off the stream and settle
	settle func(err error)
	sent   bool
	failed bool
	done   bool
}

type sockPipeline struct {
	t      *SockTransport
	window int
	wbuf   []byte    // request bytes queued since the last Flush
	q      []*sockOp // outstanding, reply order == issue order
	pend   []*sockOp // trailing entries whose bytes sit in wbuf
	err    error     // first transport-level error (sticky)
}

func (p *sockPipeline) Window() int { return p.window }

// push admits e, completing the oldest request when the window is full,
// and flushes once a full window of unwritten requests has accumulated.
func (p *sockPipeline) push(clk *simnet.VClock, e *sockOp) {
	for len(p.q) >= p.window {
		p.settleHead(clk)
	}
	p.q = append(p.q, e)
	p.pend = append(p.pend, e)
	if len(p.pend) >= p.window {
		p.Flush(clk)
	}
}

// Flush writes every queued request in one Write call.
func (p *sockPipeline) Flush(clk *simnet.VClock) error {
	if len(p.pend) == 0 {
		return nil
	}
	p.t.conn.SetClock(clk)
	_, werr := p.t.conn.Write(p.wbuf)
	p.wbuf = p.wbuf[:0]
	for _, e := range p.pend {
		e.sent = true
		if werr != nil {
			e.failed = true
		}
	}
	p.pend = p.pend[:0]
	if werr != nil {
		p.fail(ErrServerDown)
		return ErrServerDown
	}
	return nil
}

func (p *sockPipeline) fail(err error) {
	if p.err == nil {
		p.err = err
	}
}

// settleHead completes the oldest outstanding request: its reply is the
// next one on the stream.
func (p *sockPipeline) settleHead(clk *simnet.VClock) {
	e := p.q[0]
	p.q = p.q[1:]
	if !e.sent {
		p.Flush(clk)
	}
	if e.failed || p.err != nil {
		e.settle(ErrServerDown)
		e.done = true
		return
	}
	p.t.conn.SetClock(clk)
	if err := e.read(); err != nil {
		p.fail(err)
		e.settle(err)
	}
	e.done = true
}

// waitFor settles FIFO heads until e completes (stream replies cannot
// be reordered, so waiting on a later future drains the earlier ones).
func (p *sockPipeline) waitFor(clk *simnet.VClock, e *sockOp) {
	for !e.done && len(p.q) > 0 {
		p.settleHead(clk)
	}
	if !e.done { // not in q: send never happened (flush marked it failed)
		e.settle(ErrServerDown)
		e.done = true
	}
}

// Wait flushes and settles everything outstanding.
func (p *sockPipeline) Wait(clk *simnet.VClock) error {
	p.Flush(clk)
	for len(p.q) > 0 {
		p.settleHead(clk)
	}
	return p.err
}

func (p *sockPipeline) StartGet(clk *simnet.VClock, key string) *GetFuture {
	return p.startGet(clk, key, nil)
}

func (p *sockPipeline) StartGetInto(clk *simnet.VClock, key string, buf []byte) *GetFuture {
	return p.startGet(clk, key, buf)
}

func (p *sockPipeline) startGet(clk *simnet.VClock, key string, lend []byte) *GetFuture {
	f := &GetFuture{}
	p.wbuf = append(p.wbuf, "gets "+key+"\r\n"...)
	e := &sockOp{}
	e.read = func() error {
		value, flags, cas, hit, err := p.t.readGetReply(lend)
		if err != nil {
			return err
		}
		f.done = true
		f.value, f.flags, f.cas, f.hit = value, flags, cas, hit
		return nil
	}
	e.settle = func(err error) {
		f.done = true
		f.err = err
	}
	f.wait = func(clk *simnet.VClock) { p.waitFor(clk, e) }
	p.push(clk, e)
	return f
}

func (p *sockPipeline) StartSet(clk *simnet.VClock, key string, flags uint32, exptime int64, value []byte) *SetFuture {
	f := &SetFuture{}
	p.wbuf = append(p.wbuf, fmt.Sprintf("set %s %d %d %d\r\n", key, flags, exptime, len(value))...)
	p.wbuf = append(p.wbuf, value...)
	p.wbuf = append(p.wbuf, '\r', '\n')
	e := &sockOp{}
	e.read = func() error {
		res, err := p.t.readSetReply()
		if err != nil {
			return err
		}
		f.done = true
		f.res = res
		return nil
	}
	e.settle = func(err error) {
		f.done = true
		f.err = err
	}
	f.wait = func(clk *simnet.VClock) { p.waitFor(clk, e) }
	p.push(clk, e)
	return f
}

func (p *sockPipeline) StartDelete(clk *simnet.VClock, key string) *BoolFuture {
	f := &BoolFuture{}
	p.wbuf = append(p.wbuf, "delete "+key+"\r\n"...)
	e := &sockOp{}
	e.read = func() error {
		ok, err := p.t.readDeleteReply()
		if err != nil {
			return err
		}
		f.done = true
		f.ok = ok
		return nil
	}
	e.settle = func(err error) {
		f.done = true
		f.err = err
	}
	f.wait = func(clk *simnet.VClock) { p.waitFor(clk, e) }
	p.push(clk, e)
	return f
}

// interface conformance
var (
	_ Pipeliner = (*SockTransport)(nil)
	_ Pipeline  = (*sockPipeline)(nil)
)

package mcclient

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"

	"repro/internal/memcached"
	"repro/internal/simnet"
	"repro/internal/sockstream"
)

// SockTransport speaks the memcached text protocol over a simulated
// socket — the unmodified-client path the paper benchmarks on 1GigE,
// 10GigE-TOE, IPoIB and SDP.
type SockTransport struct {
	name    string
	conn    *sockstream.Conn
	r       *bufio.Reader
	noReply bool
}

// DialSock connects a socket transport. The handshake cost lands on clk.
func DialSock(p *sockstream.Provider, from, to *simnet.Node, service string, behaviors Behaviors, clk *simnet.VClock) (*SockTransport, error) {
	conn, err := p.Dial(from, to, service, clk, 5*time.Second)
	if err != nil {
		return nil, err
	}
	conn.NoDelay = behaviors.NoDelay
	return &SockTransport{
		name:    to.Name() + "/" + service,
		conn:    conn,
		r:       bufio.NewReaderSize(conn, 16*1024),
		noReply: behaviors.NoReply,
	}, nil
}

// Name identifies the server.
func (t *SockTransport) Name() string { return t.name }

// Conn exposes the stream (tests).
func (t *SockTransport) Conn() *sockstream.Conn { return t.conn }

func (t *SockTransport) readLine() (string, error) {
	line, err := t.r.ReadString('\n')
	if err != nil {
		return "", ErrServerDown
	}
	return strings.TrimRight(line, "\r\n"), nil
}

// Set implements Transport. With the NoReply behaviour the command is
// pipelined with the protocol's "noreply" flag and assumed stored.
func (t *SockTransport) Set(clk *simnet.VClock, key string, flags uint32, exptime int64, value []byte) (memcached.StoreResult, error) {
	t.conn.SetClock(clk)
	suffix := ""
	if t.noReply {
		suffix = " noreply"
	}
	req := fmt.Sprintf("set %s %d %d %d%s\r\n", key, flags, exptime, len(value), suffix)
	buf := make([]byte, 0, len(req)+len(value)+2)
	buf = append(buf, req...)
	buf = append(buf, value...)
	buf = append(buf, '\r', '\n')
	if _, err := t.conn.Write(buf); err != nil {
		return 0, ErrServerDown
	}
	if t.noReply {
		return memcached.Stored, nil
	}
	return t.readSetReply()
}

// readSetReply parses one storage-command answer off the stream.
func (t *SockTransport) readSetReply() (memcached.StoreResult, error) {
	line, err := t.readLine()
	if err != nil {
		return 0, err
	}
	switch line {
	case "STORED":
		return memcached.Stored, nil
	case "NOT_STORED":
		return memcached.NotStored, nil
	case "EXISTS":
		return memcached.Exists, nil
	case "NOT_FOUND":
		return memcached.NotFound, nil
	case memcached.TooLarge.String():
		return memcached.TooLarge, nil
	case memcached.OOM.String():
		return memcached.OOM, nil
	default:
		return 0, fmt.Errorf("mcclient: set: %s", line)
	}
}

// Get implements Transport.
func (t *SockTransport) Get(clk *simnet.VClock, key string) ([]byte, uint32, uint64, bool, error) {
	t.conn.SetClock(clk)
	if _, err := t.conn.Write([]byte("gets " + key + "\r\n")); err != nil {
		return nil, 0, 0, false, ErrServerDown
	}
	return t.readGetReply(nil)
}

// readGetReply parses one "gets" answer off the stream. A non-nil lend
// buffer receives the value when it fits (the returned slice aliases
// it); otherwise the value is freshly allocated.
func (t *SockTransport) readGetReply(lend []byte) ([]byte, uint32, uint64, bool, error) {
	line, err := t.readLine()
	if err != nil {
		return nil, 0, 0, false, err
	}
	if line == "END" {
		return nil, 0, 0, false, nil
	}
	var rkey string
	var flags uint32
	var n int
	var cas uint64
	if _, err := fmt.Sscanf(line, "VALUE %s %d %d %d", &rkey, &flags, &n, &cas); err != nil {
		return nil, 0, 0, false, fmt.Errorf("mcclient: get: %q", line)
	}
	value := lend
	if cap(value) >= n {
		value = value[:n]
	} else {
		value = make([]byte, n)
	}
	if _, err := io.ReadFull(t.r, value); err != nil {
		return nil, 0, 0, false, ErrServerDown
	}
	// Trailing \r\n and END\r\n.
	if _, err := t.readLine(); err != nil {
		return nil, 0, 0, false, err
	}
	if end, err := t.readLine(); err != nil || end != "END" {
		return nil, 0, 0, false, fmt.Errorf("mcclient: get: missing END (%q, %v)", end, err)
	}
	return value, flags, cas, true, nil
}

// GetMulti implements Transport with the text protocol's native
// multi-key get: one request line, one VALUE block per hit.
func (t *SockTransport) GetMulti(clk *simnet.VClock, keys []string) (map[string][]byte, error) {
	if len(keys) == 0 {
		return map[string][]byte{}, nil
	}
	t.conn.SetClock(clk)
	cmd := "get " + strings.Join(keys, " ") + "\r\n"
	if _, err := t.conn.Write([]byte(cmd)); err != nil {
		return nil, ErrServerDown
	}
	out := make(map[string][]byte, len(keys))
	for {
		line, err := t.readLine()
		if err != nil {
			return nil, err
		}
		if line == "END" {
			return out, nil
		}
		var rkey string
		var flags uint32
		var n int
		if _, err := fmt.Sscanf(line, "VALUE %s %d %d", &rkey, &flags, &n); err != nil {
			return nil, fmt.Errorf("mcclient: mget: %q", line)
		}
		value := make([]byte, n)
		if _, err := io.ReadFull(t.r, value); err != nil {
			return nil, ErrServerDown
		}
		if _, err := t.readLine(); err != nil { // trailing \r\n
			return nil, err
		}
		out[rkey] = value
	}
}

// Delete implements Transport.
func (t *SockTransport) Delete(clk *simnet.VClock, key string) (bool, error) {
	t.conn.SetClock(clk)
	if _, err := t.conn.Write([]byte("delete " + key + "\r\n")); err != nil {
		return false, ErrServerDown
	}
	return t.readDeleteReply()
}

// readDeleteReply parses one delete answer off the stream.
func (t *SockTransport) readDeleteReply() (bool, error) {
	line, err := t.readLine()
	if err != nil {
		return false, err
	}
	return line == "DELETED", nil
}

// IncrDecr implements Transport.
func (t *SockTransport) IncrDecr(clk *simnet.VClock, key string, delta uint64, incr bool) (uint64, bool, bool, error) {
	t.conn.SetClock(clk)
	op := "incr"
	if !incr {
		op = "decr"
	}
	cmd := fmt.Sprintf("%s %s %d\r\n", op, key, delta)
	if _, err := t.conn.Write([]byte(cmd)); err != nil {
		return 0, false, false, ErrServerDown
	}
	line, err := t.readLine()
	if err != nil {
		return 0, false, false, err
	}
	switch {
	case line == "NOT_FOUND":
		return 0, false, false, nil
	case strings.HasPrefix(line, "CLIENT_ERROR"):
		return 0, true, true, nil
	case strings.HasPrefix(line, "SERVER_ERROR"):
		return 0, true, false, ErrServerError
	default:
		val, perr := strconv.ParseUint(line, 10, 64)
		if perr != nil {
			return 0, false, false, fmt.Errorf("mcclient: %s: %q", op, line)
		}
		return val, true, false, nil
	}
}

// Stats fetches the server's stats block.
func (t *SockTransport) Stats(clk *simnet.VClock) (map[string]uint64, error) {
	t.conn.SetClock(clk)
	if _, err := t.conn.Write([]byte("stats\r\n")); err != nil {
		return nil, ErrServerDown
	}
	out := make(map[string]uint64)
	for {
		line, err := t.readLine()
		if err != nil {
			return nil, err
		}
		if line == "END" {
			return out, nil
		}
		var name string
		var val uint64
		if _, err := fmt.Sscanf(line, "STAT %s %d", &name, &val); err == nil {
			out[name] = val
		}
	}
}

// Close implements Transport.
func (t *SockTransport) Close() { t.conn.Close() }

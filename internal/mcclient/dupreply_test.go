package mcclient

import (
	"testing"

	"repro/internal/simnet"
	"repro/internal/ucr"
	"repro/internal/verbs"
)

// TestUCRDuplicateReplyIsolation is the regression test for the tagged
// reply slots: an AM retry can produce two replies for one logical
// request, and the late duplicate lands while a *different* request is
// waiting. With a single shared reply slot and counter the duplicate
// bumps the waiter's counter and overwrites its slot, so the second Get
// returns the first Get's payload. Tagged slots route the duplicate to
// its (long freed) request tag, where it is dropped.
//
// The timeout is chosen so attempt 1 expires just before its reply
// arrives: the retry generates the duplicate, attempt 2 consumes the
// original reply, and the duplicate reaches the client while the next
// Get is blocked.
func TestUCRDuplicateReplyIsolation(t *testing.T) {
	st := newStack(t)
	node := st.nw.AddNode("dup-cli")
	hca := verbs.NewHCA(node, st.fab, verbs.Config{
		PostOverhead: 50, SendProc: 300, RecvProc: 300, RDMAProc: 400, PollOverhead: 100,
	})
	rt := ucr.New(hca, st.cm, ucr.Config{AMRetries: 1})
	ctx := rt.NewContext()
	defer ctx.Destroy()
	clk := simnet.NewVClock(0)

	// A patient transport on the same runtime: populate the keys and
	// measure the steady-state Get round trip.
	warm, err := DialUCR(rt, ctx, st.srvNode, "mc-ucr", DefaultBehaviors(), clk)
	if err != nil {
		t.Fatal(err)
	}
	defer warm.Close()
	if _, err := warm.Set(clk, "a", 0, 0, []byte("payload-A")); err != nil {
		t.Fatal(err)
	}
	if _, err := warm.Set(clk, "b", 0, 0, []byte("payload-B")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ { // warm the path before timing it
		if _, _, _, ok, err := warm.Get(clk, "a"); err != nil || !ok {
			t.Fatalf("warmup get = (%v, %v)", ok, err)
		}
	}
	t0 := clk.Now()
	if _, _, _, _, err := warm.Get(clk, "a"); err != nil {
		t.Fatal(err)
	}
	rtt := clk.Now() - t0
	if rtt <= 0 {
		t.Fatalf("bad rtt %v", rtt)
	}

	// Victim transport: OpTimeout 1.5x RTT over 2 attempts gives a
	// per-attempt budget of 0.75x RTT — attempt 1 always times out,
	// attempt 2 always sees the original reply.
	b := DefaultBehaviors()
	b.OpTimeout = 3 * rtt / 2
	victim, err := DialUCR(rt, ctx, st.srvNode, "mc-ucr", b, clk)
	if err != nil {
		t.Fatal(err)
	}
	defer victim.Close()

	va, _, _, ok, err := victim.Get(clk, "a")
	if err != nil || !ok {
		t.Fatalf("Get a = (%v, %v), want retried success", ok, err)
	}
	if string(va) != "payload-A" {
		t.Fatalf("Get a = %q", va)
	}
	// The duplicate reply for "a" is still in flight and arrives during
	// this wait.
	vb, _, _, ok, err := victim.Get(clk, "b")
	if err != nil || !ok {
		t.Fatalf("Get b = (%v, %v)", ok, err)
	}
	if string(vb) != "payload-B" {
		t.Fatalf("Get b returned %q: a duplicate reply for \"a\" was delivered to \"b\"'s slot", vb)
	}
}

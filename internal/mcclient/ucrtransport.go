package mcclient

import (
	"time"

	"repro/internal/memcached"
	"repro/internal/simnet"
	"repro/internal/ucr"
)

// UCRTransport speaks the paper's active-message protocol (§V): every
// request is AM 1 carrying the client's counter C; the client then
// blocks on C with a timeout while driving its progress context, and
// the server's AM 2 reply targets C. Get replies land in a client-local
// buffer pool, sized on demand when the header handler learns the item
// length (§V-C).
//
// Every request gets a fresh counter, whose id doubles as the request
// tag: the reply AM targets that counter, so the reply handlers route
// by tag into a slot table. With one request in flight this changes
// nothing; with a pipelined window it lets any number of replies land
// out of order, and a late duplicate from a timed-out attempt (its tag
// no longer in the table) is dropped instead of clobbering the slot of
// whatever request happens to be waiting.
type UCRTransport struct {
	name    string
	rt      *ucr.Runtime
	ctx     *ucr.Context
	ep      *ucr.Endpoint
	timeout simnet.Duration
	noReply bool

	// UD small-get mode (§VII): an optional unreliable endpoint to the
	// same server. GET/MGET requests whose request and reply both fit one
	// datagram ride it; a lost datagram is recovered by the same AM-level
	// retransmission budget the RC path uses for lossy fabrics, and a
	// too-large reply comes back as a status-only AMTooBig/AMMGetRetry
	// that re-issues the op over the RC endpoint. Mutating ops never use
	// it.
	udEP          *ucr.Endpoint
	udGets        uint64 // requests issued on the UD endpoint
	udRetransmits uint64 // AM-level re-sends on the UD endpoint
	udFallbacks   uint64 // UD replies that punted the op back to RC

	// Tagged reply slots, written by the AM handlers while this
	// transport's owner drives progress.
	slots    map[ucr.CounterID]*amOp
	scratch  []byte   // landing space for replies whose tag matches no slot
	freeBufs [][]byte // pooled landing buffers for get/mget values
	freeOps  []*amOp

	// One-sided GET fast path (see onesided.go).
	os           osState
	lastOneSided bool // most recent Get was served one-sided

	// Write-based reply arena (see wrreply.go).
	wr wrState
}

// amOp is one in-flight request: its tag (= reply counter id), the
// endpoint it rides, where the reply landed, and how to (re-)send it.
type amOp struct {
	tag    ucr.CounterID
	ctr    *ucr.Counter
	ep     *ucr.Endpoint // endpoint the request (and any re-send) uses
	lend   []byte        // caller-lent value buffer (GetInto); nil = pool
	pooled bool          // data came from the transport pool: recycle on finish
	wrSlot int32         // write-reply slot index + 1; 0 = none
	// Deferred write-reply landing: the notify recorded wrPendLen slot
	// bytes pending copy-out (see wrMaterialize/wrTake). The slot stays
	// busy until the landing materializes and the op is finished.
	wrPend    bool
	wrPendLen int
	data   []byte        // landed value bytes
	tooBig bool          // UD reply punted: value exceeds one datagram
	status memcached.StatusReply
	get    memcached.GetReply
	mget   memcached.MGetReply
	num    memcached.NumReply
	osd    memcached.OSDescReply
	send   func() error // exotic issue paths; nil = field-driven sendAM
	// Field-driven send for the hot GET/SET paths: a closure per op
	// would allocate, so the blocking fast paths park the arguments on
	// the (pooled) op instead and sendAM replays them. hdrBuf is the
	// reusable header-encode buffer; it survives pool recycling.
	sendMsg uint8
	sendHdr []byte
	sendVal []byte
	sendClk *simnet.VClock
	hdrBuf  []byte
}

// sendAM issues the op: the closure when one was installed, otherwise
// the field-driven form (endpoint, message id, header, value).
func (op *amOp) sendAM() error {
	if op.send != nil {
		return op.send()
	}
	return op.ep.Send(op.sendClk, op.sendMsg, op.sendHdr, op.sendVal, nil, 0, nil)
}

// DialUCR establishes a reliable UCR endpoint to a memcached server and
// installs the reply handlers on the client runtime (idempotent).
func DialUCR(rt *ucr.Runtime, ctx *ucr.Context, to *simnet.Node, service string, behaviors Behaviors, clk *simnet.VClock) (*UCRTransport, error) {
	return dialUCR(rt, ctx, to, service, behaviors, clk, ucr.Reliable)
}

// DialUCRUnreliable uses a UD-backed endpoint (§VII future work: the
// datagram transport for scaling client counts). Values beyond one MTU
// cannot be carried.
func DialUCRUnreliable(rt *ucr.Runtime, ctx *ucr.Context, to *simnet.Node, service string, behaviors Behaviors, clk *simnet.VClock) (*UCRTransport, error) {
	return dialUCR(rt, ctx, to, service, behaviors, clk, ucr.Unreliable)
}

func dialUCR(rt *ucr.Runtime, ctx *ucr.Context, to *simnet.Node, service string, behaviors Behaviors, clk *simnet.VClock, rel ucr.Reliability) (*UCRTransport, error) {
	RegisterClientHandlers(rt)
	ep, err := rt.Dial(ctx, to, service, rel, clk, 5*time.Second)
	if err != nil {
		return nil, err
	}
	t := &UCRTransport{
		name:    to.Name() + "/" + service,
		rt:      rt,
		ctx:     ctx,
		ep:      ep,
		timeout: behaviors.OpTimeout,
		noReply: behaviors.NoReply,
		slots:   make(map[ucr.CounterID]*amOp),
	}
	ep.UserData = t
	return t, nil
}

// RegisterClientHandlers installs the AM 2 reply handlers on a client
// runtime. Safe to call repeatedly.
func RegisterClientHandlers(rt *ucr.Runtime) {
	nilHeader := func(*simnet.VClock, *ucr.Endpoint, []byte, int, ucr.CounterID) []byte { return nil }
	statusCompletion := func(clk *simnet.VClock, ep *ucr.Endpoint, hdr, data []byte, tag ucr.CounterID) {
		t, ok := ep.UserData.(*UCRTransport)
		if !ok {
			return
		}
		if op := t.slots[tag]; op != nil {
			op.status, _ = memcached.DecodeStatusReply(hdr)
		}
	}
	rt.RegisterHandler(memcached.AMSetReply, ucr.Handler{Header: nilHeader, Completion: statusCompletion})
	rt.RegisterHandler(memcached.AMDeleteReply, ucr.Handler{Header: nilHeader, Completion: statusCompletion})
	rt.RegisterHandler(memcached.AMGetReply, ucr.Handler{
		Header: func(clk *simnet.VClock, ep *ucr.Endpoint, hdr []byte, dataLen int, tag ucr.CounterID) []byte {
			t, ok := ep.UserData.(*UCRTransport)
			if !ok {
				return nil
			}
			// §V-C: the client learns the item size here and picks the
			// destination — the request's lent or pooled buffer.
			return t.landingBuf(tag, dataLen)
		},
		Completion: func(clk *simnet.VClock, ep *ucr.Endpoint, hdr, data []byte, tag ucr.CounterID) {
			t, ok := ep.UserData.(*UCRTransport)
			if !ok {
				return
			}
			op := t.slots[tag]
			if op == nil {
				// Late duplicate: its tag was retired, suppress. The
				// mutation build accepts it into a live slot instead —
				// the bug class this scheme exists to prevent. Accepting
				// means the whole completion event lands on the victim:
				// payload AND counter fire, so the victim's waiter
				// returns this stale reply as its own.
				if v := t.dupVictim(ep); v != nil {
					v.get, _ = memcached.DecodeGetReply(hdr)
					v.data = data
					v.ctr.MutBump()
				}
				return
			}
			op.get, _ = memcached.DecodeGetReply(hdr)
			op.data = data
		},
	})
	rt.RegisterHandler(memcached.AMMGetRetry, ucr.Handler{
		Header: nilHeader,
		Completion: func(clk *simnet.VClock, ep *ucr.Endpoint, hdr, data []byte, tag ucr.CounterID) {
			t, ok := ep.UserData.(*UCRTransport)
			if !ok {
				return
			}
			if op := t.slots[tag]; op != nil {
				op.tooBig = true
			}
		},
	})
	rt.RegisterHandler(memcached.AMMGetReply, ucr.Handler{
		Header: func(clk *simnet.VClock, ep *ucr.Endpoint, hdr []byte, dataLen int, tag ucr.CounterID) []byte {
			t, ok := ep.UserData.(*UCRTransport)
			if !ok {
				return nil
			}
			return t.landingBuf(tag, dataLen)
		},
		Completion: func(clk *simnet.VClock, ep *ucr.Endpoint, hdr, data []byte, tag ucr.CounterID) {
			t, ok := ep.UserData.(*UCRTransport)
			if !ok {
				return
			}
			if op := t.slots[tag]; op != nil {
				op.mget, _ = memcached.DecodeMGetReply(hdr)
				op.data = data
			}
		},
	})
	rt.RegisterHandler(memcached.AMOSDescReply, ucr.Handler{
		Header: nilHeader,
		Completion: func(clk *simnet.VClock, ep *ucr.Endpoint, hdr, data []byte, tag ucr.CounterID) {
			t, ok := ep.UserData.(*UCRTransport)
			if !ok {
				return
			}
			if op := t.slots[tag]; op != nil {
				op.osd, _ = memcached.DecodeOSDescReply(hdr)
			}
		},
	})
	rt.RegisterHandler(memcached.AMNumReply, ucr.Handler{
		Header: nilHeader,
		Completion: func(clk *simnet.VClock, ep *ucr.Endpoint, hdr, data []byte, tag ucr.CounterID) {
			t, ok := ep.UserData.(*UCRTransport)
			if !ok {
				return
			}
			if op := t.slots[tag]; op != nil {
				op.num, _ = memcached.DecodeNumReply(hdr)
			}
		},
	})
	registerWrReplyHandlers(rt)
}

// landingBuf picks where a reply value lands: the tagged request's lent
// buffer when it fits, a pooled buffer otherwise — or the transport's
// scratch space when the tag matches no slot (a late duplicate from a
// timed-out attempt), which lands there and is dropped without touching
// any live request.
func (t *UCRTransport) landingBuf(tag ucr.CounterID, dataLen int) []byte {
	if dataLen == 0 {
		return nil
	}
	op := t.slots[tag]
	if op == nil {
		if v := t.dupVictim(t.udEP); v != nil {
			op = v // mutation build: clobber a live slot (see dupVictim)
		} else {
			return t.scratchFor(dataLen)
		}
	}
	if op.lend != nil && cap(op.lend) >= dataLen {
		op.pooled = false
		op.data = op.lend[:dataLen]
	} else {
		op.pooled = true
		op.data = t.takeBuf(dataLen)
	}
	return op.data
}

// dupVictim is the mut_ud_dup_ack seeded bug: instead of suppressing a
// reply whose tag matches no slot (a late duplicate from a retransmitted
// UD request whose original answer also arrived), it "accepts it twice"
// by routing it into whichever live slot has the lowest tag — exactly
// the clobbering the tagged-counter scheme prevents. Always nil in a
// normal build; only meaningful when a UD endpoint exists (ep non-nil).
func (t *UCRTransport) dupVictim(ep *ucr.Endpoint) *amOp {
	if !memcached.MutUDDupAck || ep == nil {
		return nil
	}
	var victim *amOp
	for tag, op := range t.slots {
		if victim == nil || tag < victim.tag {
			victim = op
		}
	}
	return victim
}

// scratchCap bounds the retained stale-reply landing buffer.
const scratchCap = 64 << 10

func (t *UCRTransport) scratchFor(n int) []byte {
	if n > scratchCap {
		return make([]byte, n)
	}
	if cap(t.scratch) < n {
		t.scratch = make([]byte, n, scratchCap)
	}
	return t.scratch[:n]
}

// takeBuf pops a pooled landing buffer (growing it if undersized).
func (t *UCRTransport) takeBuf(n int) []byte {
	if k := len(t.freeBufs); k > 0 {
		b := t.freeBufs[k-1]
		t.freeBufs = t.freeBufs[:k-1]
		if cap(b) >= n {
			return b[:n]
		}
	}
	return make([]byte, n)
}

func (t *UCRTransport) recycleBuf(b []byte) {
	if cap(b) > 0 && len(t.freeBufs) < 16 {
		t.freeBufs = append(t.freeBufs, b[:cap(b)])
	}
}

// newOp opens a tagged request slot around a fresh counter. Counter ids
// are never reused by the runtime, so a tag uniquely names one request
// for the transport's lifetime.
func (t *UCRTransport) newOp() *amOp {
	var op *amOp
	if k := len(t.freeOps); k > 0 {
		op = t.freeOps[k-1]
		t.freeOps = t.freeOps[:k-1]
		hdr := op.hdrBuf
		*op = amOp{}
		op.hdrBuf = hdr[:0]
	} else {
		op = &amOp{}
	}
	op.ctr = t.rt.NewCounter()
	op.tag = op.ctr.ID()
	op.ep = t.ep
	t.slots[op.tag] = op
	return op
}

// finishOp retires a request: the tag leaves the slot table (late
// duplicates now land in scratch), the counter is freed (their bumps
// become no-ops), and the pooled landing buffer is recycled. A
// write-reply slot is released unconditionally — RC FIFO on the
// transport's one QP orders any late write to it before a later
// request's write, so recycling can never expose stale data.
func (t *UCRTransport) finishOp(op *amOp) {
	delete(t.slots, op.tag)
	t.rt.FreeCounter(op.ctr)
	if op.pooled {
		t.recycleBuf(op.data)
	}
	if op.wrSlot != 0 {
		t.wrRelease(op.wrSlot - 1)
	}
	hdr := op.hdrBuf
	*op = amOp{}
	op.hdrBuf = hdr[:0]
	t.freeOps = append(t.freeOps, op)
}

// Name identifies the server.
func (t *UCRTransport) Name() string { return t.name }

// Endpoint exposes the UCR endpoint (tests).
func (t *UCRTransport) Endpoint() *ucr.Endpoint { return t.ep }

// EnableUD arms the UD small-get mode with an unreliable endpoint to the
// same server, dialed in the same progress context (one CQ drives both).
// GETs and MGETs whose request fits a datagram ride it from now on.
func (t *UCRTransport) EnableUD(ep *ucr.Endpoint) {
	ep.UserData = t
	t.udEP = ep
}

// UDEndpoint exposes the UD endpoint, nil unless EnableUD was called.
func (t *UCRTransport) UDEndpoint() *ucr.Endpoint { return t.udEP }

// UDStats reports the UD small-get path's counters: requests issued on
// the UD endpoint, AM-level retransmissions on it, and replies that
// punted the op back to RC (AMTooBig / AMMGetRetry). Tests use gets and
// retransmits as vacuity guards for the UD datapath.
func (t *UCRTransport) UDStats() (gets, retransmits, fallbacks uint64) {
	return t.udGets, t.udRetransmits, t.udFallbacks
}

// do sends op and blocks on its counter (§V-B: "a blocking call with
// client specified timeout"). With the runtime's AMRetries knob set, a
// timed-out request is re-sent — the per-attempt wait is the op timeout
// split across attempts, so the overall deadline holds — and only after
// the budget is exhausted is the endpoint marked failed (§IV-A: the
// client decides the server has gone down, isolating this endpoint
// without touching the runtime). On error the op is retired; on success
// the caller reads the slot and retires it.
func (t *UCRTransport) do(clk *simnet.VClock, op *amOp) error {
	attempts := 1 + t.rt.Config().AMRetries
	per := t.perAttempt(attempts)
	for a := 0; a < attempts; a++ {
		if a > 0 && op.ep == t.udEP {
			// Client-side UD retransmission: datagram loss is silent, so
			// the timed-out request is simply re-offered (the tag routes
			// the reply; a late duplicate lands in scratch).
			t.udRetransmits++
		}
		if err := op.sendAM(); err != nil {
			t.finishOp(op)
			return ErrServerDown
		}
		err := t.ctx.WaitCounter(clk, op.ctr, 1, per)
		if err == nil {
			return nil
		}
		if err != ucr.ErrTimeout {
			t.finishOp(op)
			return ErrServerDown
		}
	}
	ep := op.ep
	t.finishOp(op)
	ep.MarkFailed()
	return ErrServerDown
}

// perAttempt splits the op timeout across the retry budget.
func (t *UCRTransport) perAttempt(attempts int) simnet.Duration {
	if t.timeout <= 0 {
		return 0
	}
	per := t.timeout / simnet.Duration(attempts)
	if per <= 0 {
		per = 1
	}
	return per
}

// waitDone is the pipelined-wait half of do: the op was already sent
// when its window flushed, so this only drives progress — draining the
// CQ in batches sized to the window — and re-sends after per-attempt
// timeouts. The caller owns retiring the op.
func (t *UCRTransport) waitDone(clk *simnet.VClock, op *amOp, batch int) error {
	if op.ctr.Value() >= 1 {
		return nil
	}
	if op.ep.Failed() {
		return ErrServerDown
	}
	attempts := 1 + t.rt.Config().AMRetries
	per := t.perAttempt(attempts)
	for a := 0; a < attempts; a++ {
		err := t.ctx.WaitCounterBatch(clk, op.ctr, 1, per, batch)
		if err == nil {
			return nil
		}
		if err != ucr.ErrTimeout {
			return ErrServerDown
		}
		if a+1 < attempts {
			if op.ep == t.udEP && t.udEP != nil {
				t.udRetransmits++
			}
			if serr := op.sendAM(); serr != nil {
				return ErrServerDown
			}
		}
	}
	op.ep.MarkFailed()
	return ErrServerDown
}

// Set implements Transport. With the NoReply behaviour the request
// carries no reply counter — the server stores the item and answers
// nothing (§V-B's reply is driven entirely by the client's counter C) —
// and the client only waits for local completion (origin counter,
// §IV-C), which is when its buffer is reusable.
func (t *UCRTransport) Set(clk *simnet.VClock, key string, flags uint32, exptime int64, value []byte) (memcached.StoreResult, error) {
	if t.noReply {
		hdr := memcached.EncodeSetReq(memcached.SetReq{
			ReplyCtr: 0, Flags: flags, Exptime: exptime, Key: key,
		})
		origin := t.rt.NewCounter()
		defer t.rt.FreeCounter(origin)
		if err := t.ep.Send(clk, memcached.AMSet, hdr, value, origin, 0, nil); err != nil {
			return 0, ErrServerDown
		}
		if err := t.ctx.WaitCounter(clk, origin, 1, t.timeout); err != nil {
			return 0, ErrServerDown
		}
		return memcached.Stored, nil
	}
	op := t.newOp()
	op.hdrBuf = memcached.AppendSetReq(op.hdrBuf[:0], memcached.SetReq{
		ReplyCtr: op.tag, Flags: flags, Exptime: exptime, Key: key,
	})
	op.sendMsg = memcached.AMSet
	op.sendHdr = op.hdrBuf
	op.sendVal = value
	op.sendClk = clk
	if err := t.do(clk, op); err != nil {
		return 0, err
	}
	defer t.finishOp(op)
	if op.status.Status != memcached.AMOK {
		return op.status.Result, nil
	}
	return memcached.Stored, nil
}

// getOp issues one get request and blocks for its reply; the caller
// reads the slot and retires it. With UD small-get mode armed, the
// request rides the unreliable endpoint first and transparently
// re-issues over RC when the server answers AMTooBig (value exceeds one
// datagram) or the UD endpoint has been isolated.
func (t *UCRTransport) getOp(clk *simnet.VClock, key string, lend []byte) (*amOp, error) {
	if t.udEP != nil && !t.udEP.Failed() {
		op := t.newOp()
		op.lend = lend
		op.ep = t.udEP
		op.hdrBuf = memcached.AppendKeyReq(op.hdrBuf[:0], memcached.KeyReq{ReplyCtr: op.tag, Key: key})
		if len(op.hdrBuf) <= t.udEP.MaxEager() {
			op.sendMsg = memcached.AMGet
			op.sendHdr = op.hdrBuf
			op.sendClk = clk
			t.udGets++
			err := t.do(clk, op)
			if err == nil && op.get.Status != memcached.AMTooBig {
				return op, nil
			}
			if err == nil {
				// Server punted: the value outgrew the datagram.
				t.udFallbacks++
				t.finishOp(op)
			}
			// A hard UD failure (retry budget exhausted) isolates only the
			// UD endpoint; the RC path below still serves the op.
		} else {
			t.finishOp(op)
		}
	}
	op := t.newOp()
	op.lend = lend
	if i, ok := t.wrAcquire(); ok {
		op.wrSlot = i + 1
		op.hdrBuf = memcached.AppendGetWReq(op.hdrBuf[:0], memcached.GetWReq{
			ReplyCtr: op.tag, Slot: uint16(i), Key: key,
		})
		op.sendMsg = memcached.AMGetW
	} else {
		op.hdrBuf = memcached.AppendKeyReq(op.hdrBuf[:0], memcached.KeyReq{ReplyCtr: op.tag, Key: key})
		op.sendMsg = memcached.AMGet
	}
	op.sendHdr = op.hdrBuf
	op.sendClk = clk
	if err := t.do(clk, op); err != nil {
		return nil, err
	}
	// A blocking caller reads op.data next: land any deferred write
	// reply now (no later wait to hide the copy under).
	t.wrMaterialize(clk, op)
	return op, nil
}

// Get implements Transport. With the one-sided path enabled, a
// validated RDMA read serves the hit without any server AM; everything
// else falls through to the two-sided protocol.
func (t *UCRTransport) Get(clk *simnet.VClock, key string) ([]byte, uint32, uint64, bool, error) {
	t.lastOneSided = false
	if v, fl, cas, ok := t.oneSidedGet(clk, key, nil); ok {
		return v, fl, cas, true, nil
	}
	op, err := t.getOp(clk, key, nil)
	if err != nil {
		return nil, 0, 0, false, err
	}
	defer t.finishOp(op)
	if op.get.Status != memcached.AMOK {
		return nil, 0, 0, false, nil
	}
	out := make([]byte, len(op.data))
	copy(out, op.data)
	return out, op.get.Flags, op.get.CAS, true, nil
}

// GetInto is Get with a caller-lent value buffer: when the value fits
// in cap(buf), the reply header handler lands it directly there and the
// returned slice aliases buf — no allocation and no copy on the hot
// path. A value too large for buf is returned in a fresh allocation.
func (t *UCRTransport) GetInto(clk *simnet.VClock, key string, buf []byte) ([]byte, uint32, uint64, bool, error) {
	t.lastOneSided = false
	if v, fl, cas, ok := t.oneSidedGet(clk, key, buf); ok {
		return v, fl, cas, true, nil
	}
	op, err := t.getOp(clk, key, buf)
	if err != nil {
		return nil, 0, 0, false, err
	}
	defer t.finishOp(op)
	if op.get.Status != memcached.AMOK {
		return nil, 0, 0, false, nil
	}
	v := op.data
	if op.pooled {
		v = append([]byte(nil), op.data...)
	}
	return v, op.get.Flags, op.get.CAS, true, nil
}

// maxMGetKeys bounds one mget AM's key batch, well under the header's
// uint16 key-count field.
const maxMGetKeys = 4096

// mgetOp issues one multi-get AM and blocks for its reply. Under UD
// small-get mode a batch whose request fits one datagram is tried there
// first; an AMMGetRetry answer (aggregate reply too large) re-issues the
// whole batch over RC.
func (t *UCRTransport) mgetOp(clk *simnet.VClock, keys []string, lend []byte) (*amOp, error) {
	hdr := memcached.EncodeMGetReq(memcached.MGetReq{ReplyCtr: 0, Keys: keys})
	if t.udEP != nil && !t.udEP.Failed() && len(hdr) <= t.udEP.MaxEager() {
		op := t.newOp()
		op.lend = lend
		op.ep = t.udEP
		udHdr := memcached.EncodeMGetReq(memcached.MGetReq{ReplyCtr: op.tag, Keys: keys})
		op.send = func() error {
			return t.udEP.Send(clk, memcached.AMMGet, udHdr, nil, nil, 0, nil)
		}
		t.udGets++
		err := t.do(clk, op)
		if err == nil && !op.tooBig {
			return op, nil
		}
		if err == nil {
			t.udFallbacks++
			t.finishOp(op)
		}
	}
	op := t.newOp()
	op.lend = lend
	if i, ok := t.wrAcquire(); ok {
		op.wrSlot = i + 1
		rcHdr := memcached.AppendMGetWReq(nil, op.tag, uint16(i), keys)
		op.send = func() error {
			return t.ep.Send(clk, memcached.AMMGetW, rcHdr, nil, nil, 0, nil)
		}
	} else {
		rcHdr := memcached.EncodeMGetReq(memcached.MGetReq{ReplyCtr: op.tag, Keys: keys})
		op.send = func() error {
			return t.ep.Send(clk, memcached.AMMGet, rcHdr, nil, nil, 0, nil)
		}
	}
	if err := t.do(clk, op); err != nil {
		return nil, err
	}
	return op, nil
}

// GetMulti implements Transport with a single mget active message: the
// reply carries all metadata in its header and the values concatenated
// as the AM data (one transaction if small, one RDMA read if large).
func (t *UCRTransport) GetMulti(clk *simnet.VClock, keys []string) (map[string][]byte, error) {
	if len(keys) == 0 {
		return map[string][]byte{}, nil
	}
	if len(keys) > maxMGetKeys {
		// The mget header carries the key count as a uint16: batches past
		// the cap would silently truncate on the wire (found by
		// FuzzAMCodecs), so oversized batches go out as several AMs.
		out := make(map[string][]byte, len(keys))
		for start := 0; start < len(keys); start += maxMGetKeys {
			part, err := t.GetMulti(clk, keys[start:min(start+maxMGetKeys, len(keys))])
			if err != nil {
				return nil, err
			}
			for k, v := range part {
				out[k] = v
			}
		}
		return out, nil
	}
	op, err := t.mgetOp(clk, keys, nil)
	if err != nil {
		return nil, err
	}
	defer t.finishOp(op)
	out := make(map[string][]byte, len(op.mget.Items))
	off := 0
	for _, it := range op.mget.Items {
		if off+it.ValueLen > len(op.data) {
			return nil, memcached.ErrShortAMHeader
		}
		v := make([]byte, it.ValueLen)
		copy(v, op.data[off:off+it.ValueLen])
		out[it.Key] = v
		off += it.ValueLen
	}
	return out, nil
}

// GetMultiInto is GetMulti with a caller-lent buffer for the
// concatenated value block: when it fits in cap(buf), the returned map
// values are subslices of buf — zero copies. The caller must consume
// them before reusing buf.
func (t *UCRTransport) GetMultiInto(clk *simnet.VClock, keys []string, buf []byte) (map[string][]byte, error) {
	if len(keys) == 0 {
		return map[string][]byte{}, nil
	}
	op, err := t.mgetOp(clk, keys, buf)
	if err != nil {
		return nil, err
	}
	defer t.finishOp(op)
	block := op.data
	if op.pooled {
		block = append([]byte(nil), op.data...)
	}
	out := make(map[string][]byte, len(op.mget.Items))
	off := 0
	for _, it := range op.mget.Items {
		if off+it.ValueLen > len(block) {
			return nil, memcached.ErrShortAMHeader
		}
		out[it.Key] = block[off : off+it.ValueLen : off+it.ValueLen]
		off += it.ValueLen
	}
	return out, nil
}

// Delete implements Transport.
func (t *UCRTransport) Delete(clk *simnet.VClock, key string) (bool, error) {
	op := t.newOp()
	hdr := memcached.EncodeKeyReq(memcached.KeyReq{ReplyCtr: op.tag, Key: key})
	op.send = func() error {
		return t.ep.Send(clk, memcached.AMDelete, hdr, nil, nil, 0, nil)
	}
	if err := t.do(clk, op); err != nil {
		return false, err
	}
	defer t.finishOp(op)
	return op.status.Status == memcached.AMOK, nil
}

// IncrDecr implements Transport.
func (t *UCRTransport) IncrDecr(clk *simnet.VClock, key string, delta uint64, incr bool) (uint64, bool, bool, error) {
	amID := memcached.AMIncr
	if !incr {
		amID = memcached.AMDecr
	}
	op := t.newOp()
	hdr := memcached.EncodeNumReq(memcached.NumReq{ReplyCtr: op.tag, Delta: delta, Key: key})
	op.send = func() error {
		return t.ep.Send(clk, amID, hdr, nil, nil, 0, nil)
	}
	if err := t.do(clk, op); err != nil {
		return 0, false, false, err
	}
	defer t.finishOp(op)
	switch op.num.Status {
	case memcached.AMOK:
		return op.num.Value, true, false, nil
	case memcached.AMBadValue:
		return 0, true, true, nil
	case memcached.AMError:
		// Server-side failure (e.g. OOM growing the value): distinct
		// from a miss and from a non-numeric value.
		return 0, true, false, ErrServerError
	default:
		return 0, false, false, nil
	}
}

// Close implements Transport.
func (t *UCRTransport) Close() {
	for tag, op := range t.slots {
		delete(t.slots, tag)
		t.rt.FreeCounter(op.ctr)
	}
	if t.wr.win != nil {
		t.wr.armed = false
		t.wr.win.Close()
	}
	t.ep.Close()
}

package mcclient

import (
	"time"

	"repro/internal/memcached"
	"repro/internal/simnet"
	"repro/internal/ucr"
)

// UCRTransport speaks the paper's active-message protocol (§V): every
// request is AM 1 carrying the client's counter C; the client then
// blocks on C with a timeout while driving its progress context, and
// the server's AM 2 reply targets C. Get replies land in a client-local
// buffer pool, sized on demand when the header handler learns the item
// length (§V-C).
type UCRTransport struct {
	name    string
	rt      *ucr.Runtime
	ctx     *ucr.Context
	ep      *ucr.Endpoint
	ctr     *ucr.Counter
	replies uint64
	timeout simnet.Duration
	noReply bool

	// Reply slots, written by the AM handlers while this transport's
	// owner drives progress.
	valueBuf  []byte // local buffer pool for get replies
	gotStatus memcached.StatusReply
	gotGet    memcached.GetReply
	gotMGet   memcached.MGetReply
	gotNum    memcached.NumReply
	gotValue  []byte
}

// DialUCR establishes a reliable UCR endpoint to a memcached server and
// installs the reply handlers on the client runtime (idempotent).
func DialUCR(rt *ucr.Runtime, ctx *ucr.Context, to *simnet.Node, service string, behaviors Behaviors, clk *simnet.VClock) (*UCRTransport, error) {
	return dialUCR(rt, ctx, to, service, behaviors, clk, ucr.Reliable)
}

// DialUCRUnreliable uses a UD-backed endpoint (§VII future work: the
// datagram transport for scaling client counts). Values beyond one MTU
// cannot be carried.
func DialUCRUnreliable(rt *ucr.Runtime, ctx *ucr.Context, to *simnet.Node, service string, behaviors Behaviors, clk *simnet.VClock) (*UCRTransport, error) {
	return dialUCR(rt, ctx, to, service, behaviors, clk, ucr.Unreliable)
}

func dialUCR(rt *ucr.Runtime, ctx *ucr.Context, to *simnet.Node, service string, behaviors Behaviors, clk *simnet.VClock, rel ucr.Reliability) (*UCRTransport, error) {
	RegisterClientHandlers(rt)
	ep, err := rt.Dial(ctx, to, service, rel, clk, 5*time.Second)
	if err != nil {
		return nil, err
	}
	t := &UCRTransport{
		name:    to.Name() + "/" + service,
		rt:      rt,
		ctx:     ctx,
		ep:      ep,
		ctr:     rt.NewCounter(),
		timeout: behaviors.OpTimeout,
		noReply: behaviors.NoReply,
	}
	ep.UserData = t
	return t, nil
}

// RegisterClientHandlers installs the AM 2 reply handlers on a client
// runtime. Safe to call repeatedly.
func RegisterClientHandlers(rt *ucr.Runtime) {
	rt.RegisterHandler(memcached.AMSetReply, ucr.Handler{
		Header: func(clk *simnet.VClock, ep *ucr.Endpoint, hdr []byte, dataLen int) []byte { return nil },
		Completion: func(clk *simnet.VClock, ep *ucr.Endpoint, hdr, data []byte) {
			t, ok := ep.UserData.(*UCRTransport)
			if !ok {
				return
			}
			t.gotStatus, _ = memcached.DecodeStatusReply(hdr)
		},
	})
	rt.RegisterHandler(memcached.AMGetReply, ucr.Handler{
		Header: func(clk *simnet.VClock, ep *ucr.Endpoint, hdr []byte, dataLen int) []byte {
			t, ok := ep.UserData.(*UCRTransport)
			if !ok {
				return nil
			}
			// §V-C: the client learns the item size here and allocates
			// the destination from its local buffer pool.
			if cap(t.valueBuf) < dataLen {
				t.valueBuf = make([]byte, dataLen)
			}
			return t.valueBuf[:dataLen]
		},
		Completion: func(clk *simnet.VClock, ep *ucr.Endpoint, hdr, data []byte) {
			t, ok := ep.UserData.(*UCRTransport)
			if !ok {
				return
			}
			t.gotGet, _ = memcached.DecodeGetReply(hdr)
			t.gotValue = data
		},
	})
	rt.RegisterHandler(memcached.AMMGetReply, ucr.Handler{
		Header: func(clk *simnet.VClock, ep *ucr.Endpoint, hdr []byte, dataLen int) []byte {
			t, ok := ep.UserData.(*UCRTransport)
			if !ok {
				return nil
			}
			if cap(t.valueBuf) < dataLen {
				t.valueBuf = make([]byte, dataLen)
			}
			return t.valueBuf[:dataLen]
		},
		Completion: func(clk *simnet.VClock, ep *ucr.Endpoint, hdr, data []byte) {
			t, ok := ep.UserData.(*UCRTransport)
			if !ok {
				return
			}
			t.gotMGet, _ = memcached.DecodeMGetReply(hdr)
			t.gotValue = data
		},
	})
	rt.RegisterHandler(memcached.AMNumReply, ucr.Handler{
		Header: func(clk *simnet.VClock, ep *ucr.Endpoint, hdr []byte, dataLen int) []byte { return nil },
		Completion: func(clk *simnet.VClock, ep *ucr.Endpoint, hdr, data []byte) {
			t, ok := ep.UserData.(*UCRTransport)
			if !ok {
				return
			}
			t.gotNum, _ = memcached.DecodeNumReply(hdr)
		},
	})
}

// Name identifies the server.
func (t *UCRTransport) Name() string { return t.name }

// Endpoint exposes the UCR endpoint (tests).
func (t *UCRTransport) Endpoint() *ucr.Endpoint { return t.ep }

// request issues a request AM via send and blocks on counter C (§V-B:
// "a blocking call with client specified timeout"). With the runtime's
// AMRetries knob set, a timed-out request is re-sent — the per-attempt
// wait is the op timeout split across attempts, so the overall deadline
// holds — and only after the budget is exhausted is the endpoint marked
// failed (§IV-A: the client decides the server has gone down, isolating
// this endpoint without touching the runtime).
//
// Retried requests are idempotent at this protocol level: a duplicate
// reply only bumps counter C again, which the resync below absorbs.
func (t *UCRTransport) request(clk *simnet.VClock, send func() error) error {
	target := t.replies + 1
	attempts := 1 + t.rt.Config().AMRetries
	var per simnet.Duration
	if t.timeout > 0 {
		per = t.timeout / simnet.Duration(attempts)
		if per <= 0 {
			per = 1
		}
	}
	for a := 0; a < attempts; a++ {
		if err := send(); err != nil {
			t.replies = target
			return ErrServerDown
		}
		err := t.ctx.WaitCounter(clk, t.ctr, target, per)
		if err == nil {
			// A retried request can produce duplicate replies; resync so
			// the next wait targets the true counter position.
			if v := t.ctr.Value(); v > target {
				target = v
			}
			t.replies = target
			return nil
		}
		if err != ucr.ErrTimeout {
			t.replies = target
			return ErrServerDown
		}
	}
	t.replies = target
	t.ep.MarkFailed()
	return ErrServerDown
}

// Set implements Transport. With the NoReply behaviour the request
// carries no reply counter — the server stores the item and answers
// nothing (§V-B's reply is driven entirely by the client's counter C) —
// and the client only waits for local completion (origin counter,
// §IV-C), which is when its buffer is reusable.
func (t *UCRTransport) Set(clk *simnet.VClock, key string, flags uint32, exptime int64, value []byte) (memcached.StoreResult, error) {
	if t.noReply {
		hdr := memcached.EncodeSetReq(memcached.SetReq{
			ReplyCtr: 0, Flags: flags, Exptime: exptime, Key: key,
		})
		origin := t.rt.NewCounter()
		defer t.rt.FreeCounter(origin)
		if err := t.ep.Send(clk, memcached.AMSet, hdr, value, origin, 0, nil); err != nil {
			return 0, ErrServerDown
		}
		if err := t.ctx.WaitCounter(clk, origin, 1, t.timeout); err != nil {
			return 0, ErrServerDown
		}
		return memcached.Stored, nil
	}
	hdr := memcached.EncodeSetReq(memcached.SetReq{
		ReplyCtr: t.ctr.ID(), Flags: flags, Exptime: exptime, Key: key,
	})
	if err := t.request(clk, func() error {
		return t.ep.Send(clk, memcached.AMSet, hdr, value, nil, 0, nil)
	}); err != nil {
		return 0, err
	}
	if t.gotStatus.Status != memcached.AMOK {
		return t.gotStatus.Result, nil
	}
	return memcached.Stored, nil
}

// Get implements Transport.
func (t *UCRTransport) Get(clk *simnet.VClock, key string) ([]byte, uint32, uint64, bool, error) {
	hdr := memcached.EncodeKeyReq(memcached.KeyReq{ReplyCtr: t.ctr.ID(), Key: key})
	if err := t.request(clk, func() error {
		return t.ep.Send(clk, memcached.AMGet, hdr, nil, nil, 0, nil)
	}); err != nil {
		return nil, 0, 0, false, err
	}
	if t.gotGet.Status != memcached.AMOK {
		return nil, 0, 0, false, nil
	}
	out := make([]byte, len(t.gotValue))
	copy(out, t.gotValue)
	return out, t.gotGet.Flags, t.gotGet.CAS, true, nil
}

// GetMulti implements Transport with a single mget active message: the
// reply carries all metadata in its header and the values concatenated
// as the AM data (one transaction if small, one RDMA read if large).
func (t *UCRTransport) GetMulti(clk *simnet.VClock, keys []string) (map[string][]byte, error) {
	if len(keys) == 0 {
		return map[string][]byte{}, nil
	}
	hdr := memcached.EncodeMGetReq(memcached.MGetReq{ReplyCtr: uint64(t.ctr.ID()), Keys: keys})
	if err := t.request(clk, func() error {
		return t.ep.Send(clk, memcached.AMMGet, hdr, nil, nil, 0, nil)
	}); err != nil {
		return nil, err
	}
	out := make(map[string][]byte, len(t.gotMGet.Items))
	off := 0
	for _, it := range t.gotMGet.Items {
		if off+it.ValueLen > len(t.gotValue) {
			return nil, memcached.ErrShortAMHeader
		}
		v := make([]byte, it.ValueLen)
		copy(v, t.gotValue[off:off+it.ValueLen])
		out[it.Key] = v
		off += it.ValueLen
	}
	return out, nil
}

// Delete implements Transport.
func (t *UCRTransport) Delete(clk *simnet.VClock, key string) (bool, error) {
	hdr := memcached.EncodeKeyReq(memcached.KeyReq{ReplyCtr: t.ctr.ID(), Key: key})
	if err := t.request(clk, func() error {
		return t.ep.Send(clk, memcached.AMDelete, hdr, nil, nil, 0, nil)
	}); err != nil {
		return false, err
	}
	return t.gotStatus.Status == memcached.AMOK, nil
}

// IncrDecr implements Transport.
func (t *UCRTransport) IncrDecr(clk *simnet.VClock, key string, delta uint64, incr bool) (uint64, bool, bool, error) {
	op := memcached.AMIncr
	if !incr {
		op = memcached.AMDecr
	}
	hdr := memcached.EncodeNumReq(memcached.NumReq{ReplyCtr: t.ctr.ID(), Delta: delta, Key: key})
	if err := t.request(clk, func() error {
		return t.ep.Send(clk, op, hdr, nil, nil, 0, nil)
	}); err != nil {
		return 0, false, false, err
	}
	switch t.gotNum.Status {
	case memcached.AMOK:
		return t.gotNum.Value, true, false, nil
	case memcached.AMBadValue:
		return 0, true, true, nil
	case memcached.AMError:
		// Server-side failure (e.g. OOM growing the value): distinct
		// from a miss and from a non-numeric value.
		return 0, true, false, ErrServerError
	default:
		return 0, false, false, nil
	}
}

// Close implements Transport.
func (t *UCRTransport) Close() {
	t.rt.FreeCounter(t.ctr)
	t.ep.Close()
}

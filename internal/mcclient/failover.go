package mcclient

// Server failover: with Behaviors.AutoEject set (libmemcached's
// AUTO_EJECT_HOSTS), a server whose transport reports ErrServerDown is
// removed from the pool and the keyspace re-hashes over the survivors —
// the "corrective action" the paper's §IV-A timeout design exists to
// enable. With ketama distribution only the dead server's arc moves.

// eject marks server idx dead and rebuilds the live mapping.
func (c *Client) eject(idx int) {
	if c.dead == nil {
		c.dead = make([]bool, len(c.servers))
	}
	if c.dead[idx] {
		return
	}
	c.dead[idx] = true
	c.rebuildLive()
}

// Ejected reports which servers have been ejected.
func (c *Client) Ejected() []int {
	var out []int
	for i, d := range c.dead {
		if d {
			out = append(out, i)
		}
	}
	return out
}

// LiveServers reports how many servers remain in the pool.
func (c *Client) LiveServers() int {
	if c.liveIdx == nil {
		return len(c.servers)
	}
	return len(c.liveIdx)
}

// rebuildLive recomputes the live index list and, for ketama, the ring.
func (c *Client) rebuildLive() {
	c.liveIdx = c.liveIdx[:0]
	var names []string
	for i, s := range c.servers {
		if c.dead == nil || !c.dead[i] {
			c.liveIdx = append(c.liveIdx, i)
			names = append(names, s.Name())
		}
	}
	if c.behaviors.Distribution == DistKetama {
		if len(names) > 0 {
			c.ring = newKetamaRing(names)
		} else {
			c.ring = nil
		}
	}
}

// liveServerFor maps a key to a live server index, or -1 if the pool is
// empty.
func (c *Client) liveServerFor(key string) int {
	if c.liveIdx == nil {
		// No ejections yet: the full pool is live.
		return c.serverForFull(key)
	}
	if len(c.liveIdx) == 0 {
		return -1
	}
	if c.ring != nil {
		return c.liveIdx[c.ring.lookup(key)]
	}
	return c.liveIdx[int(keyHash(key)%uint64(len(c.liveIdx)))]
}

// serverForFull is the mapping over the full pool (no ejections).
func (c *Client) serverForFull(key string) int {
	if c.ring != nil {
		return c.ring.lookup(key)
	}
	return int(keyHash(key) % uint64(len(c.servers)))
}

// withTransport runs op against the key's server, ejecting and
// re-hashing on ErrServerDown when AutoEject is enabled. Each retry
// targets the key's new owner; the loop is bounded by the pool size.
func (c *Client) withTransport(key string, op func(Transport) error) error {
	for attempt := 0; attempt <= len(c.servers); attempt++ {
		idx := c.liveServerFor(key)
		if idx < 0 {
			return ErrNoServers
		}
		err := op(c.servers[idx])
		if err == ErrServerDown && c.behaviors.AutoEject {
			c.eject(idx)
			continue
		}
		return err
	}
	return ErrServerDown
}

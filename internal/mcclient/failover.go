package mcclient

import "repro/internal/simnet"

// Server failover: with Behaviors.AutoEject set (libmemcached's
// AUTO_EJECT_HOSTS), a server whose transport reports ErrServerDown is
// removed from the pool and the keyspace re-hashes over the survivors —
// the "corrective action" the paper's §IV-A timeout design exists to
// enable. With ketama distribution only the dead server's arc moves.
//
// All pool state (dead, liveIdx, ring) is guarded by c.failMu: the
// operating actor mutates it during ejection while monitoring
// goroutines read it concurrently.

// eject marks server idx dead and rebuilds the live mapping. The ketama
// ring is updated incrementally — RemoveServer filters the dead
// server's points out in one pass instead of re-hashing and re-sorting
// the whole ring, so ejection cost no longer scales with pool size.
func (c *Client) eject(idx int) {
	c.failMu.Lock()
	defer c.failMu.Unlock()
	if c.dead == nil {
		c.dead = make([]bool, len(c.servers))
	}
	if c.dead[idx] {
		return
	}
	c.dead[idx] = true
	c.liveIdx = c.liveIdx[:0]
	for i := range c.servers {
		if !c.dead[i] {
			c.liveIdx = append(c.liveIdx, i)
		}
	}
	if c.ring != nil {
		c.ring.RemoveServer(c.servers[idx].Name())
	}
}

// Ejected reports which servers have been ejected.
func (c *Client) Ejected() []int {
	c.failMu.Lock()
	defer c.failMu.Unlock()
	var out []int
	for i, d := range c.dead {
		if d {
			out = append(out, i)
		}
	}
	return out
}

// LiveServers reports how many servers remain in the pool.
func (c *Client) LiveServers() int {
	c.failMu.Lock()
	defer c.failMu.Unlock()
	if c.liveIdx == nil {
		return len(c.servers)
	}
	return len(c.liveIdx)
}

// liveServerFor maps a key to a live server index, or -1 if the pool is
// empty. For ketama the ring already holds only live members (eject
// removes them), so one lookup resolves the owner; modula hashes over
// the live index list.
func (c *Client) liveServerFor(key string) int {
	c.failMu.Lock()
	defer c.failMu.Unlock()
	if c.ring != nil {
		owner := c.ring.Lookup(key)
		if owner == "" {
			return -1
		}
		return c.byName[owner]
	}
	if c.liveIdx == nil {
		// No ejections yet: the full pool is live.
		return int(keyHash(key) % uint64(len(c.servers)))
	}
	if len(c.liveIdx) == 0 {
		return -1
	}
	return c.liveIdx[int(keyHash(key)%uint64(len(c.liveIdx)))]
}

// opWithRetry runs op against t, retrying ErrServerDown failures up to
// Behaviors.Retries times with exponential virtual-time backoff. A
// transient fault (lossy fabric, momentary partition) heals inside the
// backoff window and the server stays in the pool; only a persistently
// dead server escapes to the eject path.
func (c *Client) opWithRetry(t Transport, op func(Transport) error) error {
	err := op(t)
	if err != ErrServerDown || c.behaviors.Retries <= 0 {
		return err
	}
	backoff := c.behaviors.RetryBackoff
	if backoff <= 0 {
		backoff = 100 * simnet.Microsecond
	}
	for r := 0; r < c.behaviors.Retries && err == ErrServerDown; r++ {
		c.clk.Advance(backoff)
		backoff *= 2
		err = op(t)
	}
	return err
}

// withTransport runs op against the key's server, with bounded
// retry+backoff on the owner, then ejecting and re-hashing on
// ErrServerDown when AutoEject is enabled. Each eject retry targets the
// key's new owner; the loop is bounded by the pool size.
func (c *Client) withTransport(key string, op func(Transport) error) error {
	for attempt := 0; attempt <= len(c.servers); attempt++ {
		idx := c.liveServerFor(key)
		if idx < 0 {
			return ErrNoServers
		}
		err := c.opWithRetry(c.servers[idx], op)
		if err == ErrServerDown && c.behaviors.AutoEject {
			c.eject(idx)
			continue
		}
		return err
	}
	return ErrServerDown
}

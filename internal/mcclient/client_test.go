package mcclient

import (
	"fmt"
	"strconv"
	"testing"
	"testing/quick"

	"repro/internal/memcached"
	"repro/internal/ring"
	"repro/internal/simnet"
)

// fakeTransport is an in-memory Transport for client-logic tests.
type fakeTransport struct {
	name   string
	store  map[string]fakeItem
	calls  int
	broken bool
	closed bool

	// healAfter, when positive, clears broken after that many failed
	// calls — a transient fault for retry tests.
	healAfter int
}

// failing reports whether this call should fail, ticking the transient-
// fault countdown.
func (f *fakeTransport) failing() bool {
	if !f.broken {
		return false
	}
	if f.healAfter > 0 {
		f.healAfter--
		if f.healAfter == 0 {
			f.broken = false
		}
	}
	return true
}

type fakeItem struct {
	value []byte
	flags uint32
	cas   uint64
}

func newFake(name string) *fakeTransport {
	return &fakeTransport{name: name, store: map[string]fakeItem{}}
}

func (f *fakeTransport) Name() string { return f.name }

func (f *fakeTransport) Set(clk *simnet.VClock, key string, flags uint32, exptime int64, value []byte) (memcached.StoreResult, error) {
	f.calls++
	if f.failing() {
		return 0, ErrServerDown
	}
	v := make([]byte, len(value))
	copy(v, value)
	f.store[key] = fakeItem{value: v, flags: flags, cas: uint64(f.calls)}
	return memcached.Stored, nil
}

func (f *fakeTransport) Get(clk *simnet.VClock, key string) ([]byte, uint32, uint64, bool, error) {
	f.calls++
	if f.failing() {
		return nil, 0, 0, false, ErrServerDown
	}
	it, ok := f.store[key]
	if !ok {
		return nil, 0, 0, false, nil
	}
	return it.value, it.flags, it.cas, true, nil
}

func (f *fakeTransport) GetMulti(clk *simnet.VClock, keys []string) (map[string][]byte, error) {
	f.calls++
	if f.failing() {
		return nil, ErrServerDown
	}
	out := make(map[string][]byte, len(keys))
	for _, k := range keys {
		if it, ok := f.store[k]; ok {
			out[k] = it.value
		}
	}
	return out, nil
}

func (f *fakeTransport) Delete(clk *simnet.VClock, key string) (bool, error) {
	f.calls++
	if f.failing() {
		return false, ErrServerDown
	}
	_, ok := f.store[key]
	delete(f.store, key)
	return ok, nil
}

func (f *fakeTransport) IncrDecr(clk *simnet.VClock, key string, delta uint64, incr bool) (uint64, bool, bool, error) {
	f.calls++
	it, ok := f.store[key]
	if !ok {
		return 0, false, false, nil
	}
	cur, err := strconv.ParseUint(string(it.value), 10, 64)
	if err != nil {
		return 0, true, true, nil
	}
	if incr {
		cur += delta
	} else if delta > cur {
		cur = 0
	} else {
		cur -= delta
	}
	it.value = []byte(strconv.FormatUint(cur, 10))
	f.store[key] = it
	return cur, true, false, nil
}

func (f *fakeTransport) Close() { f.closed = true }

func newFakeClient(t *testing.T, n int, dist Distribution) (*Client, []*fakeTransport) {
	t.Helper()
	fakes := make([]*fakeTransport, n)
	trs := make([]Transport, n)
	for i := range fakes {
		fakes[i] = newFake(fmt.Sprintf("server%d", i))
		trs[i] = fakes[i]
	}
	b := DefaultBehaviors()
	b.Distribution = dist
	c, err := New(simnet.NewVClock(0), b, trs)
	if err != nil {
		t.Fatal(err)
	}
	return c, fakes
}

func TestClientNoServers(t *testing.T) {
	if _, err := New(simnet.NewVClock(0), DefaultBehaviors(), nil); err != ErrNoServers {
		t.Fatalf("err = %v, want ErrNoServers", err)
	}
}

func TestClientBasicOps(t *testing.T) {
	c, _ := newFakeClient(t, 1, DistModula)
	if err := c.Set("k", []byte("v"), 3, 0); err != nil {
		t.Fatal(err)
	}
	v, flags, cas, err := c.Get("k")
	if err != nil || string(v) != "v" || flags != 3 || cas == 0 {
		t.Fatalf("Get = (%q,%d,%d,%v)", v, flags, cas, err)
	}
	if _, _, _, err := c.Get("missing"); err != ErrCacheMiss {
		t.Fatalf("miss = %v", err)
	}
	if err := c.Delete("k"); err != nil {
		t.Fatal(err)
	}
	if err := c.Delete("k"); err != ErrCacheMiss {
		t.Fatalf("double delete = %v", err)
	}
	c.Set("n", []byte("41"), 0, 0)
	if v, err := c.Incr("n", 1); err != nil || v != 42 {
		t.Fatalf("Incr = (%d,%v)", v, err)
	}
	if v, err := c.Decr("n", 100); err != nil || v != 0 {
		t.Fatalf("Decr = (%d,%v)", v, err)
	}
	c.Set("s", []byte("abc"), 0, 0)
	if _, err := c.Incr("s", 1); err != ErrBadValue {
		t.Fatalf("Incr non-numeric = %v", err)
	}
	if _, err := c.Incr("gone", 1); err != ErrCacheMiss {
		t.Fatalf("Incr miss = %v", err)
	}
}

func TestClientGetMulti(t *testing.T) {
	c, _ := newFakeClient(t, 3, DistModula)
	keys := []string{"a", "b", "c", "d", "e"}
	for _, k := range keys {
		if err := c.Set(k, []byte("v-"+k), 0, 0); err != nil {
			t.Fatal(err)
		}
	}
	got, err := c.GetMulti(append(keys, "missing"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(keys) {
		t.Fatalf("GetMulti returned %d entries", len(got))
	}
	for _, k := range keys {
		if string(got[k]) != "v-"+k {
			t.Fatalf("got[%q] = %q", k, got[k])
		}
	}
}

func TestClientDistributionSpread(t *testing.T) {
	// With several servers, keys must spread across all of them — the
	// paper's §II-C point: placement is a client-side hash, no central
	// directory.
	for _, dist := range []Distribution{DistModula, DistKetama} {
		c, fakes := newFakeClient(t, 4, dist)
		for i := 0; i < 400; i++ {
			if err := c.Set(fmt.Sprintf("key-%d", i), []byte("v"), 0, 0); err != nil {
				t.Fatal(err)
			}
		}
		for i, f := range fakes {
			if f.calls == 0 {
				t.Errorf("dist %v: server %d received nothing", dist, i)
			}
		}
	}
}

func TestClientMappingStable(t *testing.T) {
	c, _ := newFakeClient(t, 5, DistKetama)
	f := func(key string) bool {
		return c.ServerFor(key) == c.ServerFor(key)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestClientSetThenGetSameServer(t *testing.T) {
	// A value set must be retrievable: set and get route identically.
	for _, dist := range []Distribution{DistModula, DistKetama} {
		c, _ := newFakeClient(t, 7, dist)
		f := func(key string, val []byte) bool {
			if checkKey(key) != nil {
				// Keys the text protocol cannot carry are rejected
				// client-side before routing (ErrBadKey).
				return true
			}
			if err := c.Set(key, val, 0, 0); err != nil {
				return false
			}
			v, _, _, err := c.Get(key)
			if err != nil {
				return false
			}
			return string(v) == string(val)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
			t.Fatalf("dist %v: %v", dist, err)
		}
	}
}

func TestKetamaMinimalRemapping(t *testing.T) {
	// Consistent hashing: removing one server reassigns only that
	// server's keys. Compare mappings over 6 vs 5 servers where the
	// first five keep their names.
	names6 := []string{"s0", "s1", "s2", "s3", "s4", "s5"}
	r6 := ring.New(0)
	r5 := ring.New(0)
	for i, n := range names6 {
		r6.AddServer(n)
		if i < 5 {
			r5.AddServer(n)
		}
	}
	moved, total := 0, 2000
	for i := 0; i < total; i++ {
		key := fmt.Sprintf("object-%d", i)
		a := r6.Lookup(key)
		b := r5.Lookup(key)
		if a == "s5" {
			continue // owned by the removed server: must move
		}
		if a != b {
			moved++
		}
	}
	// Modula would remap ~5/6 of keys; ketama should move only a small
	// fraction of keys that did not belong to the removed server.
	if float64(moved)/float64(total) > 0.05 {
		t.Fatalf("ketama moved %d/%d keys not owned by the removed server", moved, total)
	}
}

func TestModulaVsKetamaDiffer(t *testing.T) {
	cModula, _ := newFakeClient(t, 8, DistModula)
	cKetama, _ := newFakeClient(t, 8, DistKetama)
	same := true
	for i := 0; i < 100; i++ {
		k := fmt.Sprintf("key%d", i)
		if cModula.ServerFor(k) != cKetama.ServerFor(k) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("modula and ketama produced identical mappings (suspicious)")
	}
}

func TestClientErrorPropagation(t *testing.T) {
	c, fakes := newFakeClient(t, 1, DistModula)
	fakes[0].broken = true
	if err := c.Set("k", []byte("v"), 0, 0); err != ErrServerDown {
		t.Fatalf("Set on broken = %v", err)
	}
	if _, _, _, err := c.Get("k"); err != ErrServerDown {
		t.Fatalf("Get on broken = %v", err)
	}
}

func TestClientClose(t *testing.T) {
	c, fakes := newFakeClient(t, 3, DistModula)
	c.Close()
	for i, f := range fakes {
		if !f.closed {
			t.Fatalf("server %d not closed", i)
		}
	}
}

func TestKeyHashMatchesEngine(t *testing.T) {
	// The client's modula hash must be deterministic and well spread.
	seen := map[uint64]bool{}
	for i := 0; i < 1000; i++ {
		h := keyHash(fmt.Sprintf("key-%d", i))
		seen[h] = true
	}
	if len(seen) < 999 {
		t.Fatalf("hash collisions: %d distinct of 1000", len(seen))
	}
	if keyHash("abc") != keyHash("abc") {
		t.Fatal("hash not deterministic")
	}
}

// newTestClock is a shared helper for failover tests.
func newTestClock() *simnet.VClock { return simnet.NewVClock(0) }

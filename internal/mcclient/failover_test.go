package mcclient

import (
	"fmt"
	"testing"
)

func newEjectClient(t *testing.T, n int, dist Distribution) (*Client, []*fakeTransport) {
	t.Helper()
	fakes := make([]*fakeTransport, n)
	trs := make([]Transport, n)
	for i := range fakes {
		fakes[i] = newFake(fmt.Sprintf("server%d", i))
		trs[i] = fakes[i]
	}
	b := DefaultBehaviors()
	b.Distribution = dist
	b.AutoEject = true
	c, err := New(newTestClock(), b, trs)
	if err != nil {
		t.Fatal(err)
	}
	return c, fakes
}

func TestAutoEjectRehashes(t *testing.T) {
	for _, dist := range []Distribution{DistModula, DistKetama} {
		t.Run(fmt.Sprint(dist), func(t *testing.T) {
			c, fakes := newEjectClient(t, 4, dist)
			// Find a key owned by server 2, then kill server 2.
			var key string
			for i := 0; ; i++ {
				key = fmt.Sprintf("probe-%d", i)
				if c.ServerFor(key) == 2 {
					break
				}
			}
			fakes[2].broken = true
			// The op transparently ejects and lands on a survivor.
			if err := c.Set(key, []byte("v"), 0, 0); err != nil {
				t.Fatalf("Set with auto-eject = %v", err)
			}
			if got := c.Ejected(); len(got) != 1 || got[0] != 2 {
				t.Fatalf("Ejected = %v", got)
			}
			if c.LiveServers() != 3 {
				t.Fatalf("LiveServers = %d", c.LiveServers())
			}
			// The key now consistently maps to a live server and reads back.
			if idx := c.ServerFor(key); idx == 2 || idx < 0 {
				t.Fatalf("key still maps to dead server: %d", idx)
			}
			v, _, _, err := c.Get(key)
			if err != nil || string(v) != "v" {
				t.Fatalf("Get after eject = (%q, %v)", v, err)
			}
		})
	}
}

func TestAutoEjectDisabledPropagatesError(t *testing.T) {
	c, fakes := newFakeClient(t, 3, DistModula) // AutoEject off
	for _, f := range fakes {
		f.broken = true
	}
	if err := c.Set("k", []byte("v"), 0, 0); err != ErrServerDown {
		t.Fatalf("err = %v, want ErrServerDown", err)
	}
	if len(c.Ejected()) != 0 {
		t.Fatal("ejection happened with AutoEject disabled")
	}
}

func TestAutoEjectAllDead(t *testing.T) {
	c, fakes := newEjectClient(t, 3, DistModula)
	for _, f := range fakes {
		f.broken = true
	}
	err := c.Set("k", []byte("v"), 0, 0)
	if err != ErrNoServers && err != ErrServerDown {
		t.Fatalf("err = %v, want pool-exhausted error", err)
	}
	if c.LiveServers() != 0 {
		t.Fatalf("LiveServers = %d, want 0", c.LiveServers())
	}
}

func TestAutoEjectKetamaMinimalMovement(t *testing.T) {
	// With ketama, ejecting one server must leave most other keys on
	// their original owners.
	c, fakes := newEjectClient(t, 5, DistKetama)
	before := map[string]int{}
	for i := 0; i < 500; i++ {
		k := fmt.Sprintf("key-%d", i)
		before[k] = c.ServerFor(k)
	}
	fakes[1].broken = true
	// Trigger ejection with a key owned by server 1.
	for i := 0; ; i++ {
		k := fmt.Sprintf("trigger-%d", i)
		if c.ServerFor(k) == 1 {
			if err := c.Set(k, []byte("v"), 0, 0); err != nil {
				t.Fatal(err)
			}
			break
		}
	}
	moved := 0
	for k, owner := range before {
		if owner == 1 {
			continue // must move
		}
		if c.ServerFor(k) != owner {
			moved++
		}
	}
	if float64(moved)/float64(len(before)) > 0.05 {
		t.Fatalf("ketama ejection moved %d/%d unaffected keys", moved, len(before))
	}
}

func TestGetMultiWithEjection(t *testing.T) {
	c, fakes := newEjectClient(t, 3, DistModula)
	keys := make([]string, 30)
	for i := range keys {
		keys[i] = fmt.Sprintf("mk-%d", i)
		if err := c.Set(keys[i], []byte("v"), 0, 0); err != nil {
			t.Fatal(err)
		}
	}
	fakes[0].broken = true
	got, err := c.GetMulti(keys)
	if err != nil {
		t.Fatalf("GetMulti with ejection = %v", err)
	}
	// Keys that lived only on the dead server are lost (cache semantics:
	// misses, not errors); the rest must be present.
	if len(got) == 0 {
		t.Fatal("all keys lost")
	}
	if len(c.Ejected()) != 1 {
		t.Fatalf("Ejected = %v", c.Ejected())
	}
}

package mcclient

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/memcached"
	"repro/internal/simnet"
)

func newEjectClient(t *testing.T, n int, dist Distribution) (*Client, []*fakeTransport) {
	t.Helper()
	fakes := make([]*fakeTransport, n)
	trs := make([]Transport, n)
	for i := range fakes {
		fakes[i] = newFake(fmt.Sprintf("server%d", i))
		trs[i] = fakes[i]
	}
	b := DefaultBehaviors()
	b.Distribution = dist
	b.AutoEject = true
	c, err := New(newTestClock(), b, trs)
	if err != nil {
		t.Fatal(err)
	}
	return c, fakes
}

func TestAutoEjectRehashes(t *testing.T) {
	for _, dist := range []Distribution{DistModula, DistKetama} {
		t.Run(fmt.Sprint(dist), func(t *testing.T) {
			c, fakes := newEjectClient(t, 4, dist)
			// Find a key owned by server 2, then kill server 2.
			var key string
			for i := 0; ; i++ {
				key = fmt.Sprintf("probe-%d", i)
				if c.ServerFor(key) == 2 {
					break
				}
			}
			fakes[2].broken = true
			// The op transparently ejects and lands on a survivor.
			if err := c.Set(key, []byte("v"), 0, 0); err != nil {
				t.Fatalf("Set with auto-eject = %v", err)
			}
			if got := c.Ejected(); len(got) != 1 || got[0] != 2 {
				t.Fatalf("Ejected = %v", got)
			}
			if c.LiveServers() != 3 {
				t.Fatalf("LiveServers = %d", c.LiveServers())
			}
			// The key now consistently maps to a live server and reads back.
			if idx := c.ServerFor(key); idx == 2 || idx < 0 {
				t.Fatalf("key still maps to dead server: %d", idx)
			}
			v, _, _, err := c.Get(key)
			if err != nil || string(v) != "v" {
				t.Fatalf("Get after eject = (%q, %v)", v, err)
			}
		})
	}
}

func TestAutoEjectDisabledPropagatesError(t *testing.T) {
	c, fakes := newFakeClient(t, 3, DistModula) // AutoEject off
	for _, f := range fakes {
		f.broken = true
	}
	if err := c.Set("k", []byte("v"), 0, 0); err != ErrServerDown {
		t.Fatalf("err = %v, want ErrServerDown", err)
	}
	if len(c.Ejected()) != 0 {
		t.Fatal("ejection happened with AutoEject disabled")
	}
}

func TestAutoEjectAllDead(t *testing.T) {
	c, fakes := newEjectClient(t, 3, DistModula)
	for _, f := range fakes {
		f.broken = true
	}
	err := c.Set("k", []byte("v"), 0, 0)
	if err != ErrNoServers && err != ErrServerDown {
		t.Fatalf("err = %v, want pool-exhausted error", err)
	}
	if c.LiveServers() != 0 {
		t.Fatalf("LiveServers = %d, want 0", c.LiveServers())
	}
}

func TestAutoEjectKetamaMinimalMovement(t *testing.T) {
	// With ketama, ejecting one server must leave most other keys on
	// their original owners.
	c, fakes := newEjectClient(t, 5, DistKetama)
	before := map[string]int{}
	for i := 0; i < 500; i++ {
		k := fmt.Sprintf("key-%d", i)
		before[k] = c.ServerFor(k)
	}
	fakes[1].broken = true
	// Trigger ejection with a key owned by server 1.
	for i := 0; ; i++ {
		k := fmt.Sprintf("trigger-%d", i)
		if c.ServerFor(k) == 1 {
			if err := c.Set(k, []byte("v"), 0, 0); err != nil {
				t.Fatal(err)
			}
			break
		}
	}
	moved := 0
	for k, owner := range before {
		if owner == 1 {
			continue // must move
		}
		if c.ServerFor(k) != owner {
			moved++
		}
	}
	if float64(moved)/float64(len(before)) > 0.05 {
		t.Fatalf("ketama ejection moved %d/%d unaffected keys", moved, len(before))
	}
}

func TestGetMultiWithEjection(t *testing.T) {
	c, fakes := newEjectClient(t, 3, DistModula)
	keys := make([]string, 30)
	for i := range keys {
		keys[i] = fmt.Sprintf("mk-%d", i)
		if err := c.Set(keys[i], []byte("v"), 0, 0); err != nil {
			t.Fatal(err)
		}
	}
	fakes[0].broken = true
	got, err := c.GetMulti(keys)
	if err != nil {
		t.Fatalf("GetMulti with ejection = %v", err)
	}
	// Keys that lived only on the dead server are lost (cache semantics:
	// misses, not errors); the rest must be present.
	if len(got) == 0 {
		t.Fatal("all keys lost")
	}
	if len(c.Ejected()) != 1 {
		t.Fatalf("Ejected = %v", c.Ejected())
	}
}

// raceTransport is a fakeTransport that is safe for concurrent use, so
// ejection can be exercised from several goroutines under -race: the
// transport is guarded here, and the client's pool state (dead, liveIdx,
// ring) must be guarded by the client itself.
type raceTransport struct {
	name string
	mu   sync.Mutex
	st   map[string][]byte
	dead bool
}

func (r *raceTransport) setDead(v bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.dead = v
}

func (r *raceTransport) Name() string { return r.name }

func (r *raceTransport) Set(clk *simnet.VClock, key string, flags uint32, exptime int64, value []byte) (memcached.StoreResult, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.dead {
		return 0, ErrServerDown
	}
	v := make([]byte, len(value))
	copy(v, value)
	r.st[key] = v
	return memcached.Stored, nil
}

func (r *raceTransport) Get(clk *simnet.VClock, key string) ([]byte, uint32, uint64, bool, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.dead {
		return nil, 0, 0, false, ErrServerDown
	}
	v, ok := r.st[key]
	return v, 0, 0, ok, nil
}

func (r *raceTransport) GetMulti(clk *simnet.VClock, keys []string) (map[string][]byte, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.dead {
		return nil, ErrServerDown
	}
	out := map[string][]byte{}
	for _, k := range keys {
		if v, ok := r.st[k]; ok {
			out[k] = v
		}
	}
	return out, nil
}

func (r *raceTransport) Delete(clk *simnet.VClock, key string) (bool, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.dead {
		return false, ErrServerDown
	}
	_, ok := r.st[key]
	delete(r.st, key)
	return ok, nil
}

func (r *raceTransport) IncrDecr(clk *simnet.VClock, key string, delta uint64, incr bool) (uint64, bool, bool, error) {
	return 0, false, false, nil
}

func (r *raceTransport) Close() {}

// TestConcurrentEjection hammers Get from several goroutines while a
// server dies mid-stream: every goroutine that hits the dead server
// races to eject it and rebuild the ring. Run under -race this covers
// the failMu guarding of dead/liveIdx/ring against concurrent readers
// (ServerFor, Ejected, LiveServers) and writers (eject).
func TestConcurrentEjection(t *testing.T) {
	const n = 4
	rts := make([]*raceTransport, n)
	trs := make([]Transport, n)
	for i := range rts {
		rts[i] = &raceTransport{name: fmt.Sprintf("server%d", i), st: map[string][]byte{}}
		trs[i] = rts[i]
	}
	b := DefaultBehaviors()
	b.Distribution = DistKetama
	b.AutoEject = true
	c, err := New(newTestClock(), b, trs)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		if err := c.Set(fmt.Sprintf("key-%d", i), []byte("v"), 0, 0); err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	start := make(chan struct{})
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			<-start
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("key-%d", (g*37+i)%200)
				_, _, _, err := c.Get(key)
				if err != nil && err != ErrCacheMiss {
					t.Errorf("Get(%s) = %v", key, err)
					return
				}
				// Monitoring reads race the eject writers.
				c.ServerFor(key)
				c.Ejected()
				c.LiveServers()
			}
		}(g)
	}
	close(start)
	rts[1].setDead(true)
	wg.Wait()

	for _, idx := range c.Ejected() {
		if idx != 1 {
			t.Fatalf("ejected healthy server %d", idx)
		}
	}
	if c.LiveServers() < n-1 {
		t.Fatalf("LiveServers = %d", c.LiveServers())
	}
}

// TestRetryBackoffEjectsDeadServer: with Retries set, a dead owner is
// retried with exponential virtual-time backoff before the eject path
// fires; the key then re-hashes to a survivor.
func TestRetryBackoffEjectsDeadServer(t *testing.T) {
	c, fakes := newEjectClient(t, 3, DistModula)
	c.behaviors.Retries = 2
	c.behaviors.RetryBackoff = 100 * simnet.Microsecond

	var key string
	for i := 0; ; i++ {
		key = fmt.Sprintf("probe-%d", i)
		if c.ServerFor(key) == 1 {
			break
		}
	}
	fakes[1].broken = true
	before := c.Clock().Now()
	if err := c.Set(key, []byte("v"), 0, 0); err != nil {
		t.Fatalf("Set with retry+eject = %v", err)
	}
	// 1 try + 2 retries against the dead owner before ejecting.
	if fakes[1].calls != 3 {
		t.Fatalf("dead server saw %d calls, want 3", fakes[1].calls)
	}
	// Backoff doubles: 100 µs + 200 µs of virtual time.
	if advanced := c.Clock().Now() - before; advanced < 300*simnet.Microsecond {
		t.Fatalf("clock advanced %v, want >= 300 µs of backoff", advanced)
	}
	if got := c.Ejected(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("Ejected = %v", got)
	}
	if v, _, _, err := c.Get(key); err != nil || string(v) != "v" {
		t.Fatalf("Get after retry+eject = (%q, %v)", v, err)
	}
}

// TestRetryHealsTransientFault: a fault that clears within the backoff
// window must not eject the server.
func TestRetryHealsTransientFault(t *testing.T) {
	c, fakes := newEjectClient(t, 3, DistModula)
	c.behaviors.Retries = 3
	var key string
	for i := 0; ; i++ {
		key = fmt.Sprintf("probe-%d", i)
		if c.ServerFor(key) == 0 {
			break
		}
	}
	fakes[0].broken = true
	fakes[0].healAfter = 2 // two failures, then recover
	if err := c.Set(key, []byte("v"), 0, 0); err != nil {
		t.Fatalf("Set through transient fault = %v", err)
	}
	if len(c.Ejected()) != 0 {
		t.Fatalf("transient fault ejected a healthy server: %v", c.Ejected())
	}
}

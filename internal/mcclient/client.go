// Package mcclient is the client library — the role libmemcached 0.45
// plays in the paper (§V): a server pool, key→server selection by
// hashing (no central directory, §II-C), client behaviours, and the
// full operation set, over either the text protocol on sockets or the
// UCR active-message protocol.
package mcclient

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/memcached"
	"repro/internal/ring"
	"repro/internal/simnet"
)

// Client errors.
var (
	ErrCacheMiss  = errors.New("mcclient: cache miss")
	ErrNoServers  = errors.New("mcclient: no servers configured")
	ErrNotStored  = errors.New("mcclient: item not stored")
	ErrCASExists  = errors.New("mcclient: CAS id mismatch")
	ErrBadValue   = errors.New("mcclient: non-numeric value for incr/decr")
	ErrServerDown = errors.New("mcclient: server unreachable")
	// ErrServerError is a server-side failure distinct from a miss or a
	// caller mistake (e.g. SERVER_ERROR out of memory growing a value).
	ErrServerError = errors.New("mcclient: server error")
	// ErrBadKey rejects a key the text protocol cannot carry: empty,
	// longer than 250 bytes, or containing whitespace/control bytes.
	// Validated client-side (like libmemcached's VERIFY_KEY) because a
	// bad key would desync the connection, not just fail one op.
	ErrBadKey = errors.New("mcclient: invalid key")
)

// checkKey enforces the protocol's key rules.
func checkKey(key string) error {
	if len(key) == 0 || len(key) > 250 {
		return ErrBadKey
	}
	for i := 0; i < len(key); i++ {
		if key[i] <= ' ' || key[i] == 0x7f {
			return ErrBadKey
		}
	}
	return nil
}

// Distribution selects the key→server mapping.
type Distribution int

// Distributions, mirroring libmemcached's MEMCACHED_DISTRIBUTION_*.
const (
	// DistModula hashes the key modulo the server count.
	DistModula Distribution = iota
	// DistKetama uses consistent hashing (stable under pool changes).
	DistKetama
)

// Behaviors mirrors memcached_behavior_set knobs used in the paper
// (the evaluation sets TCP_NODELAY for predictable latency, §VI).
type Behaviors struct {
	// NoDelay sets TCP_NODELAY on socket transports.
	NoDelay bool
	// Distribution picks the key→server mapping.
	Distribution Distribution
	// OpTimeout bounds each operation in virtual time (0: none); on
	// expiry the operation returns ErrServerDown, letting the caller
	// take corrective action (§IV-A).
	OpTimeout simnet.Duration
	// AutoEject removes a server from the pool when an operation
	// reports it unreachable, re-hashing the keyspace over the
	// survivors (libmemcached's AUTO_EJECT_HOSTS).
	AutoEject bool
	// NoReply makes Set fire-and-forget (libmemcached's NOREPLY
	// behaviour): the text protocol's "noreply" flag, or a UCR AM with
	// no reply counter. Sets pipeline without waiting on the server;
	// storage failures (OOM with -M, oversized items) are not reported.
	NoReply bool
	// Retries is how many times an operation that fails with
	// ErrServerDown is retried against the same owner (with exponential
	// backoff) before failover/auto-eject kicks in. Zero disables
	// retrying (libmemcached's MEMCACHED_BEHAVIOR_RETRY_TIMEOUT spirit:
	// transient faults shouldn't eject a healthy server).
	Retries int
	// RetryBackoff is the first retry's virtual-time backoff; it
	// doubles per attempt. Zero gets a 100 µs default when Retries > 0.
	RetryBackoff simnet.Duration
}

// DefaultBehaviors returns the paper's client configuration.
func DefaultBehaviors() Behaviors {
	return Behaviors{NoDelay: true, Distribution: DistModula}
}

// Transport is one server connection, in either protocol.
type Transport interface {
	// Name identifies the server for diagnostics.
	Name() string
	// Set stores key=value.
	Set(clk *simnet.VClock, key string, flags uint32, exptime int64, value []byte) (memcached.StoreResult, error)
	// Get fetches key. ok=false is a miss.
	Get(clk *simnet.VClock, key string) (value []byte, flags uint32, cas uint64, ok bool, err error)
	// GetMulti fetches a key batch in one round trip (text-protocol
	// multi-key get, or the UCR mget AM). Missing keys are absent from
	// the result.
	GetMulti(clk *simnet.VClock, keys []string) (map[string][]byte, error)
	// Delete removes key. ok=false is a miss.
	Delete(clk *simnet.VClock, key string) (ok bool, err error)
	// IncrDecr adjusts a numeric value.
	IncrDecr(clk *simnet.VClock, key string, delta uint64, incr bool) (val uint64, found, bad bool, err error)
	// Close releases the connection.
	Close()
}

// Client is a memcached client handle bound to one actor (one virtual
// clock). It is not safe for concurrent use — create one per goroutine,
// as with memcached_st in libmemcached.
type Client struct {
	behaviors Behaviors
	servers   []Transport
	clk       *simnet.VClock
	observer  func(ObservedOp) // see observer.go; nil when disarmed

	// Failover state (see failover.go). A Client is single-actor for
	// operations, but Ejected/LiveServers/ServerFor are read from other
	// goroutines in tests and monitoring, so the state is mutex-guarded.
	failMu  sync.Mutex
	ring    *ring.Ring     // non-nil for DistKetama; holds the LIVE pool
	byName  map[string]int // server name → index, for ring owner lookups
	dead    []bool
	liveIdx []int
}

// New builds a client over the given server transports.
func New(clk *simnet.VClock, behaviors Behaviors, servers []Transport) (*Client, error) {
	if len(servers) == 0 {
		return nil, ErrNoServers
	}
	c := &Client{behaviors: behaviors, servers: servers, clk: clk}
	if behaviors.Distribution == DistKetama {
		c.ring = ring.New(0)
		c.byName = make(map[string]int, len(servers))
		for i, s := range servers {
			c.ring.AddServer(s.Name())
			c.byName[s.Name()] = i
		}
	}
	return c, nil
}

// Clock reports the client's virtual clock.
func (c *Client) Clock() *simnet.VClock { return c.clk }

// Transport exposes server i's connection — for pipelined access
// (assert to Pipeliner) and diagnostics. Panics on a bad index.
func (c *Client) Transport(i int) Transport { return c.servers[i] }

// ServerFor reports which live server index a key maps to (§II-C: the
// destination is computed client-side with a hash on the key; ejected
// servers are skipped). -1 means the pool is empty.
func (c *Client) ServerFor(key string) int {
	return c.liveServerFor(key)
}

// Set stores key=value with the given flags and expiry (seconds).
func (c *Client) Set(key string, value []byte, flags uint32, exptime int64) error {
	if err := checkKey(key); err != nil {
		return err
	}
	var res memcached.StoreResult
	err := c.withTransport(key, func(t Transport) error {
		var err error
		res, err = t.Set(c.clk, key, flags, exptime, value)
		return err
	})
	c.observe(ObservedOp{
		Kind: memcached.RecSet, Key: key, Value: value, Flags: flags,
		Exptime: exptime, Res: res, Err: err,
	})
	if err != nil {
		return err
	}
	switch res {
	case memcached.Stored:
		return nil
	case memcached.Exists:
		return ErrCASExists
	case memcached.NotStored, memcached.NotFound:
		return ErrNotStored
	default:
		// TooLarge / OOM: server-side storage failure, not a caller
		// mistake — classify under ErrServerError so callers can branch
		// on the error kind.
		return fmt.Errorf("%w: set failed: %s", ErrServerError, res)
	}
}

// Get fetches the value for key.
func (c *Client) Get(key string) (value []byte, flags uint32, cas uint64, err error) {
	if err := checkKey(key); err != nil {
		return nil, 0, 0, err
	}
	var ok, oneSided bool
	err = c.withTransport(key, func(t Transport) error {
		var err error
		value, flags, cas, ok, err = t.Get(c.clk, key)
		if os, can := t.(interface{ TookOneSided() bool }); can {
			oneSided = os.TookOneSided()
		}
		return err
	})
	c.observe(ObservedOp{
		Kind: memcached.RecGet, Key: key, Value: value, Flags: flags,
		CAS: cas, Hit: ok, Err: err, OneSided: oneSided,
	})
	if err != nil {
		return nil, 0, 0, err
	}
	if !ok {
		return nil, 0, 0, ErrCacheMiss
	}
	return value, flags, cas, nil
}

// GetMulti fetches several keys (libmemcached's mget): keys are grouped
// by owning server and each group travels as one batched request — a
// single multi-key get line over sockets, a single mget active message
// over UCR.
func (c *Client) GetMulti(keys []string) (map[string][]byte, error) {
	groups := make(map[int][]string)
	for _, key := range keys {
		if err := checkKey(key); err != nil {
			return nil, err
		}
		idx := c.ServerFor(key)
		groups[idx] = append(groups[idx], key)
	}
	out := make(map[string][]byte, len(keys))
	for idx, group := range groups {
		if idx < 0 {
			return out, ErrNoServers
		}
		var part map[string][]byte
		err := c.opWithRetry(c.servers[idx], func(t Transport) error {
			var err error
			part, err = t.GetMulti(c.clk, group)
			return err
		})
		if err == ErrServerDown && c.behaviors.AutoEject {
			// Eject and refetch this group via the new owners.
			c.eject(idx)
			part, err = c.GetMulti(group)
		}
		if err != nil {
			return out, err
		}
		for k, v := range part {
			out[k] = v
		}
	}
	if c.observer != nil {
		// One observation per requested key, hit or miss, so the
		// cross-check sees mget misses too.
		for _, key := range keys {
			v, hit := out[key]
			c.observe(ObservedOp{Kind: memcached.RecGet, Key: key, Value: v, Hit: hit})
		}
	}
	return out, nil
}

// Delete removes key.
func (c *Client) Delete(key string) error {
	if err := checkKey(key); err != nil {
		return err
	}
	var ok bool
	err := c.withTransport(key, func(t Transport) error {
		var err error
		ok, err = t.Delete(c.clk, key)
		return err
	})
	c.observe(ObservedOp{Kind: memcached.RecDelete, Key: key, Hit: ok, Err: err})
	if err != nil {
		return err
	}
	if !ok {
		return ErrCacheMiss
	}
	return nil
}

// Incr adds delta to a numeric value.
func (c *Client) Incr(key string, delta uint64) (uint64, error) {
	return c.incrDecr(key, delta, true)
}

// Decr subtracts delta from a numeric value (floored at zero).
func (c *Client) Decr(key string, delta uint64) (uint64, error) {
	return c.incrDecr(key, delta, false)
}

func (c *Client) incrDecr(key string, delta uint64, incr bool) (uint64, error) {
	if err := checkKey(key); err != nil {
		return 0, err
	}
	var val uint64
	var found, bad bool
	err := c.withTransport(key, func(t Transport) error {
		var err error
		val, found, bad, err = t.IncrDecr(c.clk, key, delta, incr)
		return err
	})
	kind := memcached.RecIncr
	if !incr {
		kind = memcached.RecDecr
	}
	c.observe(ObservedOp{Kind: kind, Key: key, Delta: delta, Num: val, Hit: found, Bad: bad, Err: err})
	if err != nil {
		return 0, err
	}
	if !found {
		return 0, ErrCacheMiss
	}
	if bad {
		return 0, ErrBadValue
	}
	return val, nil
}

// Close releases all server connections.
func (c *Client) Close() {
	for _, s := range c.servers {
		s.Close()
	}
}

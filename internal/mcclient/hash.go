package mcclient

import (
	"crypto/md5"
	"encoding/binary"
	"fmt"
	"sort"
)

// keyHash is the default (modula) key hash: FNV-1a, matching the
// engine's string hashing.
func keyHash(key string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime
	}
	return h
}

// ketamaPointsPerServer matches libmemcached's ketama layout: 40 md5
// digests per server, 4 points per digest.
const ketamaPointsPerServer = 40

// ketamaRing is a consistent-hash ring: server changes remap only the
// keys owned by the affected arc, not the whole keyspace.
type ketamaRing struct {
	points  []uint32
	servers []int // parallel to points: owning server index
}

func newKetamaRing(names []string) *ketamaRing {
	r := &ketamaRing{}
	for idx, name := range names {
		for rep := 0; rep < ketamaPointsPerServer; rep++ {
			sum := md5.Sum([]byte(fmt.Sprintf("%s-%d", name, rep)))
			for part := 0; part < 4; part++ {
				r.points = append(r.points, binary.LittleEndian.Uint32(sum[part*4:]))
				r.servers = append(r.servers, idx)
			}
		}
	}
	// Sort points and servers together.
	idx := make([]int, len(r.points))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return r.points[idx[a]] < r.points[idx[b]] })
	pts := make([]uint32, len(idx))
	srv := make([]int, len(idx))
	for i, j := range idx {
		pts[i], srv[i] = r.points[j], r.servers[j]
	}
	r.points, r.servers = pts, srv
	return r
}

// lookup finds the first ring point at or after the key's hash.
func (r *ketamaRing) lookup(key string) int {
	sum := md5.Sum([]byte(key))
	h := binary.LittleEndian.Uint32(sum[:])
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i] >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.servers[i]
}

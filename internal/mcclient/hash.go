package mcclient

// keyHash is the default (modula) key hash: FNV-1a, matching the
// engine's string hashing.
func keyHash(key string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime
	}
	return h
}

// The ketama consistent-hash ring lives in internal/ring now, shared
// with the fleet layer; the Client keeps a name-keyed ring over the live
// pool and maps owners back to transport indexes (see client.go,
// failover.go). The layout is unchanged — the same 40-digest md5 scheme
// — so the promotion moved zero keys.

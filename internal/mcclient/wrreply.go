package mcclient

import (
	"repro/internal/memcached"
	"repro/internal/simnet"
	"repro/internal/ucr"
)

// Client half of the write-based reply path: the transport registers
// one window arena carved into fixed-size reply slots and teaches the
// server its geometry once (the AMWrArm slot-table exchange); a
// GET/MGET that secures a slot then advertises just its 2-byte index
// with the request (AMGetW/AMMGetW), keeping the armed request header
// within a couple of bytes of the plain one. The server answers a
// crossover-sized hit by gather-writing [reply header ‖ value] into the
// slot and completing the future with a payload-free notify AM;
// anything else comes back as an ordinary AMGetReply/AMMGetReply on the
// same tag, which the existing handlers consume — the slot simply goes
// unused. When no slot is free (window deeper than the arena, or leaked
// to a failed endpoint) the request falls back to the plain AMs.
//
// Slot recycling leans on RC FIFO ordering: all writes into this
// transport's slots ride its one QP, so a late write from a timed-out
// attempt is ordered BEFORE any later request's write to the same slot
// and can never clobber fresher data; its notify lands on a retired tag
// and is suppressed. finishOp therefore always releases the slot.

// wrDefaultSlots and wrDefaultSlotLen size the arena when the caller
// passes zeros: 64 slots of 64 KB + header — a full 32-deep pipeline
// window in flight plus one deferred landing per window entry (a
// pipelined GET's slot stays busy from the request until its copy-out
// materializes, one wait later — see the deferred-landing notes below).
const (
	wrDefaultSlots   = 64
	wrDefaultSlotLen = 64<<10 + memcached.GetWSlotHdrLen
)

// wrState is the transport's write-reply arena.
type wrState struct {
	armed   bool
	win     *ucr.Window
	slotLen int
	free    []int32

	hits uint64 // replies that landed via RDMA write
}

// EnableWriteReplies arms the write-based reply path with an arena of
// `slots` reply slots of `slotLen` bytes each (zeros pick the
// defaults). The arena is registered locally and its slot table taught
// to the server in one blocking AMWrArm exchange — the ordinary op
// machinery carries it, so lossy fabrics retry it like any request.
// RC endpoints only.
func (t *UCRTransport) EnableWriteReplies(clk *simnet.VClock, slots, slotLen int) error {
	if slots <= 0 {
		slots = wrDefaultSlots
	}
	if slotLen <= 0 {
		slotLen = wrDefaultSlotLen
	}
	win, err := t.rt.CreateWindow(make([]byte, slots*slotLen), nil)
	if err != nil {
		return err
	}
	op := t.newOp()
	op.hdrBuf = memcached.AppendWrArmReq(op.hdrBuf[:0], memcached.WrArmReq{
		ReplyCtr: op.tag,
		Addr:     win.Desc().Addr,
		RKey:     win.Desc().RKey,
		SlotLen:  uint32(slotLen),
		Slots:    uint32(slots),
	})
	op.sendMsg = memcached.AMWrArm
	op.sendHdr = op.hdrBuf
	op.sendClk = clk
	if err := t.do(clk, op); err != nil {
		return err
	}
	status := op.status.Status
	t.finishOp(op)
	if status != memcached.AMOK {
		return ErrServerDown
	}
	t.wr.win = win
	t.wr.slotLen = slotLen
	t.wr.free = make([]int32, 0, slots)
	for i := slots - 1; i >= 0; i-- {
		t.wr.free = append(t.wr.free, int32(i))
	}
	t.wr.armed = true
	return nil
}

// WriteReplyHits reports how many replies landed through the window
// (the client-side vacuity guard for the write path).
func (t *UCRTransport) WriteReplyHits() uint64 { return t.wr.hits }

// wrAcquire pops a free reply slot; ok=false falls back to plain AMs.
func (t *UCRTransport) wrAcquire() (int32, bool) {
	k := len(t.wr.free)
	if !t.wr.armed || k == 0 {
		return 0, false
	}
	i := t.wr.free[k-1]
	t.wr.free = t.wr.free[:k-1]
	return i, true
}

func (t *UCRTransport) wrRelease(i int32) { t.wr.free = append(t.wr.free, i) }

func (t *UCRTransport) wrSlotBytes(i int32) []byte {
	off := int(i) * t.wr.slotLen
	return t.wr.win.Bytes()[off : off+t.wr.slotLen]
}

// wrLand copies n slot bytes into the op's landing discipline (lent
// buffer when it fits, pooled otherwise) — the one client-side copy the
// write path pays, charged like the one-sided path's validated copy.
//
// For single GETs the copy is DEFERRED: the notify completion only
// records the landing (wrPend) and the copy-out is charged when the
// consumer materializes it — immediately for the blocking paths, but
// just before the next blocking CQ wait for pipelined ones. A pipelined
// client therefore issues its next request first and copies while the
// server turns the following reply around; whenever that reply is still
// in flight the forward-only clock sync to its arrival swallows the
// copy entirely (double-buffering the landing against the wire).
func (t *UCRTransport) wrLand(clk *simnet.VClock, op *amOp, src []byte) {
	n := len(src)
	clk.Advance(simnet.BytesDuration(n, t.rt.Config().PackBytesPerSec))
	if op.lend != nil && cap(op.lend) >= n {
		op.pooled = false
		op.data = op.lend[:n]
	} else {
		op.pooled = true
		op.data = t.takeBuf(n)
	}
	copy(op.data, src)
}

// wrMaterialize completes a deferred landing through the op's normal
// landing discipline (lend/pooled); the blocking paths call it right
// after their wait so op.data reads exactly as it always did. A no-op
// unless a notify recorded a pending slot landing.
func (t *UCRTransport) wrMaterialize(clk *simnet.VClock, op *amOp) {
	if !op.wrPend {
		return
	}
	n := op.wrPendLen
	op.wrPend = false
	slot := t.wrSlotBytes(op.wrSlot - 1)
	t.wrLand(clk, op, slot[memcached.GetWSlotHdrLen:memcached.GetWSlotHdrLen+n])
}

// wrTake completes a deferred landing straight into a caller-owned
// buffer — the pipelined future path, which hands the bytes out rather
// than reading them back through op.data. The value lands in the op's
// lent buffer when it fits (aliasing it, like GetInto) or in a fresh
// allocation, charged exactly like wrLand.
func (t *UCRTransport) wrTake(clk *simnet.VClock, op *amOp) []byte {
	n := op.wrPendLen
	op.wrPend = false
	slot := t.wrSlotBytes(op.wrSlot - 1)
	src := slot[memcached.GetWSlotHdrLen : memcached.GetWSlotHdrLen+n]
	clk.Advance(simnet.BytesDuration(n, t.rt.Config().PackBytesPerSec))
	var dst []byte
	if op.lend != nil && cap(op.lend) >= n {
		dst = op.lend[:n]
	} else {
		dst = make([]byte, n)
	}
	copy(dst, src)
	return dst
}

// registerWrReplyHandlers installs the notify handlers (called from
// RegisterClientHandlers).
func registerWrReplyHandlers(rt *ucr.Runtime) {
	nh := func(*simnet.VClock, *ucr.Endpoint, []byte, int, ucr.CounterID) []byte { return nil }
	rt.RegisterHandler(memcached.AMWrArmReply, ucr.Handler{
		Header: nh,
		Completion: func(clk *simnet.VClock, ep *ucr.Endpoint, hdr, data []byte, tag ucr.CounterID) {
			t, ok := ep.UserData.(*UCRTransport)
			if !ok {
				return
			}
			if op := t.slots[tag]; op != nil {
				op.status, _ = memcached.DecodeStatusReply(hdr)
			}
		},
	})
	rt.RegisterHandler(memcached.AMGetWNotify, ucr.Handler{
		Header: nh,
		Completion: func(clk *simnet.VClock, ep *ucr.Endpoint, hdr, data []byte, tag ucr.CounterID) {
			t, ok := ep.UserData.(*UCRTransport)
			if !ok {
				return
			}
			op := t.slots[tag]
			if op == nil {
				return // late duplicate: tag retired, the slot write is inert
			}
			n, err := memcached.DecodeGetWNotify(hdr)
			if err != nil {
				return
			}
			op.get = memcached.GetReply{Status: n.Status, Flags: n.Flags, CAS: n.CAS}
			if n.Status != memcached.AMOK || op.wrSlot == 0 {
				return
			}
			vl := int(n.ValueLen)
			slot := t.wrSlotBytes(op.wrSlot - 1)
			if memcached.GetWSlotHdrLen+vl > len(slot) {
				// A healthy server never writes past the window it was
				// handed; refuse to read out of the arena's lane.
				op.get.Status = memcached.AMError
				return
			}
			// Record the landing; the consumer materializes the copy-out
			// (wrMaterialize / wrTake) where it can overlap the wire.
			op.wrPend = true
			op.wrPendLen = vl
			t.wr.hits++
		},
	})
	rt.RegisterHandler(memcached.AMMGetWNotify, ucr.Handler{
		Header: nh,
		Completion: func(clk *simnet.VClock, ep *ucr.Endpoint, hdr, data []byte, tag ucr.CounterID) {
			t, ok := ep.UserData.(*UCRTransport)
			if !ok {
				return
			}
			op := t.slots[tag]
			if op == nil {
				return
			}
			n, err := memcached.DecodeMGetWNotify(hdr)
			if err != nil || op.wrSlot == 0 {
				return
			}
			hl, dl := int(n.HdrLen), int(n.DataLen)
			slot := t.wrSlotBytes(op.wrSlot - 1)
			if n.Status != memcached.AMOK || hl+dl > len(slot) {
				return // settles as an empty reply
			}
			mr, err := memcached.DecodeMGetReply(slot[:hl])
			if err != nil {
				return
			}
			op.mget = mr
			t.wrLand(clk, op, slot[hl:hl+dl])
			t.wr.hits++
		},
	})
}

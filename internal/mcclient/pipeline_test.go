package mcclient

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/memcached"
	"repro/internal/simnet"
	"repro/internal/ucr"
	"repro/internal/verbs"
)

// pipelineScript drives ~100 mixed Set/Get/Delete requests over 16 keys
// through a window-4 pipeline and checks every future against a model
// that assumes FIFO execution (one connection; both protocols deliver
// and serve requests in issue order). Values are key- and op-derived so
// a reply landing in the wrong slot is caught by content, not just by
// status.
func pipelineScript(t *testing.T, pl Pipeliner, clk *simnet.VClock) {
	t.Helper()
	pipe := pl.Pipeline(4)
	if pipe.Window() != 4 {
		t.Fatalf("Window = %d", pipe.Window())
	}
	model := map[string][]byte{}
	type getExp struct {
		f    *GetFuture
		want []byte
		hit  bool
	}
	type delExp struct {
		f    *BoolFuture
		want bool
	}
	var gets []getExp
	var sets []*SetFuture
	var dels []delExp
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("k%02d", i%16)
		switch i % 5 {
		case 0, 3:
			v := []byte(fmt.Sprintf("%s#%03d#%032d", key, i, i))
			sets = append(sets, pipe.StartSet(clk, key, uint32(i), 0, v))
			model[key] = v
		case 2:
			_, had := model[key]
			dels = append(dels, delExp{f: pipe.StartDelete(clk, key), want: had})
			delete(model, key)
		default:
			want, hit := model[key]
			var f *GetFuture
			if i%2 == 0 {
				f = pipe.StartGetInto(clk, key, make([]byte, 0, 64))
			} else {
				f = pipe.StartGet(clk, key)
			}
			gets = append(gets, getExp{f: f, want: want, hit: hit})
		}
	}
	if err := pipe.Wait(clk); err != nil {
		t.Fatalf("Wait: %v", err)
	}
	for i, s := range sets {
		if res, err := s.Wait(clk); err != nil || res != memcached.Stored {
			t.Fatalf("set %d = (%v, %v)", i, res, err)
		}
	}
	for i, d := range dels {
		if ok, err := d.f.Wait(clk); err != nil || ok != d.want {
			t.Fatalf("delete %d = (%v, %v), want %v", i, ok, err, d.want)
		}
	}
	for i, g := range gets {
		v, _, _, hit, err := g.f.Wait(clk)
		if err != nil {
			t.Fatalf("get %d: %v", i, err)
		}
		if hit != g.hit {
			t.Fatalf("get %d hit = %v, want %v", i, hit, g.hit)
		}
		if hit && !bytes.Equal(v, g.want) {
			t.Fatalf("get %d = %q, want %q (reply landed in wrong slot?)", i, v, g.want)
		}
	}
}

func TestPipelineMixedOpsUCR(t *testing.T) {
	st := newStack(t)
	tr, _ := st.ucrClient(t)
	defer tr.Close()
	pipelineScript(t, tr, simnet.NewVClock(0))
}

func TestPipelineMixedOpsSock(t *testing.T) {
	st := newStack(t)
	tr := st.sockClient(t)
	defer tr.Close()
	pipelineScript(t, tr, simnet.NewVClock(0))
}

// TestPipelineFaultDropsUCR reruns the mixed script over a lossy fabric
// with an operation timeout armed: RC retransmission recovers the
// drops, AM retries cover anything slower than the per-attempt budget,
// and tagged slots keep any duplicate replies from corrupting later
// requests in the window.
func TestPipelineFaultDropsUCR(t *testing.T) {
	st := newStack(t)
	node := st.nw.AddNode("faulty-cli")
	hca := verbs.NewHCA(node, st.fab, verbs.Config{
		PostOverhead: 50, SendProc: 300, RecvProc: 300, RDMAProc: 400, PollOverhead: 100,
	})
	rt := ucr.New(hca, st.cm, ucr.Config{AMRetries: 2})
	ctx := rt.NewContext()
	defer ctx.Destroy()
	clk := simnet.NewVClock(0)
	b := DefaultBehaviors()
	b.OpTimeout = 200 * simnet.Millisecond
	tr, err := DialUCR(rt, ctx, st.srvNode, "mc-ucr", b, clk)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()

	st.fab.SetFaults(simnet.NewFaultInjector(simnet.FaultConfig{Seed: 11, DropRate: 0.05}))
	defer st.fab.SetFaults(nil)
	pipelineScript(t, tr, clk)
}

// TestPipelineWaitOutOfOrder settles futures in reverse issue order on
// UCR — tagged slots let a later future be waited first without
// disturbing earlier in-flight requests.
func TestPipelineWaitOutOfOrder(t *testing.T) {
	st := newStack(t)
	tr, _ := st.ucrClient(t)
	defer tr.Close()
	clk := simnet.NewVClock(0)
	for i := 0; i < 8; i++ {
		if _, err := tr.Set(clk, fmt.Sprintf("o%d", i), 0, 0, []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	pipe := tr.Pipeline(8)
	futures := make([]*GetFuture, 8)
	for i := range futures {
		futures[i] = pipe.StartGet(clk, fmt.Sprintf("o%d", i))
	}
	if err := pipe.Flush(clk); err != nil {
		t.Fatal(err)
	}
	for i := 7; i >= 0; i-- {
		v, _, _, hit, err := futures[i].Wait(clk)
		if err != nil || !hit || string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("future %d = (%q, %v, %v)", i, v, hit, err)
		}
	}
	if err := pipe.Wait(clk); err != nil {
		t.Fatal(err)
	}
}

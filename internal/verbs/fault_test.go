package verbs

import (
	"bytes"
	"testing"

	"repro/internal/simnet"
)

// An RC SEND through a one-shot drop succeeds after retransmission, with
// the arrival inflated by at least one AckTimeout.
func TestRCRetransmitsThroughLoss(t *testing.T) {
	// Baseline: lossless send, record completion times.
	base := newPair(t, 4, 256)
	if err := base.cliQP.PostSend(base.cliClock, SendWR{ID: 1, Op: OpSend, Local: []byte("hello")}); err != nil {
		t.Fatal(err)
	}
	baseWC, ok := base.srvRecv.TryPollWith(base.srvClock)
	if !ok || baseWC.Status != StatusSuccess {
		t.Fatalf("baseline recv: ok=%v wc=%+v", ok, baseWC)
	}

	// Same topology, but the first packet is dropped.
	p := newPair(t, 4, 256)
	fi := simnet.NewFaultInjector(simnet.FaultConfig{Seed: 1})
	p.fab.SetFaults(fi)
	fi.DropNext(p.cliNode, p.srvNode, 1)

	if err := p.cliQP.PostSend(p.cliClock, SendWR{ID: 1, Op: OpSend, Local: []byte("hello")}); err != nil {
		t.Fatal(err)
	}
	swc, ok := p.cliSend.TryPollWith(p.cliClock)
	if !ok || swc.Status != StatusSuccess {
		t.Fatalf("send completion after retransmit: ok=%v wc=%+v", ok, swc)
	}
	rwc, ok := p.srvRecv.TryPollWith(p.srvClock)
	if !ok || rwc.Status != StatusSuccess {
		t.Fatalf("recv after retransmit: ok=%v wc=%+v", ok, rwc)
	}
	if got := p.cliHCA.Retransmits(); got != 1 {
		t.Fatalf("Retransmits() = %d, want 1", got)
	}
	ackTimeout := p.cliHCA.Config().AckTimeout
	if rwc.Time < baseWC.Time+ackTimeout {
		t.Fatalf("retransmitted arrival %d not inflated over baseline %d by AckTimeout %d",
			rwc.Time, baseWC.Time, ackTimeout)
	}
}

// With 100% loss the RC sender exhausts its retry budget: the WR
// completes with StatusRetryExceeded and the QP transitions to ERR.
func TestRCRetryExhaustion(t *testing.T) {
	p := newPair(t, 4, 256)
	p.fab.SetFaults(simnet.NewFaultInjector(simnet.FaultConfig{Seed: 1, DropRate: 1.0}))

	if err := p.cliQP.PostSend(p.cliClock, SendWR{ID: 9, Op: OpSend, Local: []byte("doomed")}); err != nil {
		t.Fatal(err)
	}
	wc, ok := p.cliSend.TryPollWith(p.cliClock)
	if !ok {
		t.Fatal("no completion after retry exhaustion")
	}
	if wc.Status != StatusRetryExceeded {
		t.Fatalf("status = %v, want retry-exceeded", wc.Status)
	}
	if st := p.cliQP.State(); st != StateErr {
		t.Fatalf("QP state after retry exhaustion = %v, want ERR", st)
	}
	want := uint64(p.cliHCA.Config().RetryCount)
	if got := p.cliHCA.Retransmits(); got != want {
		t.Fatalf("Retransmits() = %d, want RetryCount = %d", got, want)
	}
	// The connection is dead: further sends are rejected at post time.
	if err := p.cliQP.PostSend(p.cliClock, SendWR{ID: 10, Op: OpSend, Local: []byte("x")}); err != ErrBadState {
		t.Fatalf("PostSend on errored QP = %v, want ErrBadState", err)
	}
}

// A corrupted packet is also retransmitted (it consumed the wire but
// failed its checksum at the receiver).
func TestRCRetransmitsThroughCorruption(t *testing.T) {
	p := newPair(t, 4, 256)
	fi := simnet.NewFaultInjector(simnet.FaultConfig{Seed: 5, CorruptRate: 0.3})
	p.fab.SetFaults(fi)

	payload := []byte("checksummed payload")
	for i := 0; i < 20; i++ {
		if err := p.cliQP.PostSend(p.cliClock, SendWR{ID: uint64(i), Op: OpSend, Local: payload}); err != nil {
			t.Fatal(err)
		}
		wc, ok := p.srvRecv.TryPollWith(p.srvClock)
		if !ok || wc.Status != StatusSuccess {
			t.Fatalf("send %d: recv ok=%v wc=%+v", i, ok, wc)
		}
		if err := p.srvQP.PostRecv(RecvWR{ID: uint64(5000 + i), Buf: make([]byte, 256)}); err != nil {
			t.Fatal(err)
		}
		if _, ok := p.cliSend.TryPollWith(p.cliClock); !ok {
			t.Fatalf("send %d: no local completion", i)
		}
	}
	if p.cliHCA.Retransmits() == 0 {
		t.Fatal("CorruptRate 0.3 over 20 sends caused zero retransmissions")
	}
	_, _, corrupted := fi.Stats()
	if corrupted == 0 {
		t.Fatal("injector recorded no corruptions")
	}
}

// RDMA READ retransmits on both legs and still moves correct bytes.
func TestRDMAReadThroughLoss(t *testing.T) {
	p := newPair(t, 2, 256)
	srvBuf := make([]byte, 1024)
	copy(srvBuf, []byte("remote data"))
	srvMR, err := p.srvHCA.RegisterMR(p.srvPD, srvBuf, nil)
	if err != nil {
		t.Fatal(err)
	}
	cliBuf := make([]byte, 11)
	if _, err := p.cliHCA.RegisterMR(p.cliPD, cliBuf, nil); err != nil {
		t.Fatal(err)
	}

	fi := simnet.NewFaultInjector(simnet.FaultConfig{Seed: 2})
	p.fab.SetFaults(fi)
	fi.DropNext(p.cliNode, p.srvNode, 1) // lose the read request once
	fi.DropNext(p.srvNode, p.cliNode, 1) // lose the response once

	err = p.cliQP.PostSend(p.cliClock, SendWR{
		ID: 1, Op: OpRDMARead, Local: cliBuf,
		RemoteAddr: srvMR.VA(), RKey: srvMR.RKey(),
	})
	if err != nil {
		t.Fatal(err)
	}
	wc, ok := p.cliSend.TryPollWith(p.cliClock)
	if !ok || wc.Status != StatusSuccess {
		t.Fatalf("RDMA read through loss: ok=%v wc=%+v", ok, wc)
	}
	if !bytes.Equal(cliBuf, []byte("remote data")) {
		t.Fatalf("read bytes = %q, want %q", cliBuf, "remote data")
	}
	if got := p.cliHCA.Retransmits(); got != 2 {
		t.Fatalf("Retransmits() = %d, want 2 (one per leg)", got)
	}
}

// RNR retry: with RNRRetry configured, a SEND into a QP with no posted
// buffer burns the configured retries (counted as retransmissions) but
// does NOT error the QP, so traffic flows again once a buffer appears.
func TestRNRRetryExhaustionIsNonFatal(t *testing.T) {
	p := newPair(t, 0, 0) // no receive buffers posted
	p.cliQP.hca.cfg.RNRRetry = 3

	if err := p.cliQP.PostSend(p.cliClock, SendWR{ID: 1, Op: OpSend, Local: []byte("x")}); err != nil {
		t.Fatal(err)
	}
	wc, ok := p.cliSend.TryPollWith(p.cliClock)
	if !ok || wc.Status != StatusRNRRetryExceeded {
		t.Fatalf("send with no receiver buffer: ok=%v status=%v, want rnr-retry-exceeded", ok, wc.Status)
	}
	if got := p.cliHCA.Retransmits(); got != 3 {
		t.Fatalf("Retransmits() = %d, want RNRRetry = 3", got)
	}
	// QP must NOT be errored by RNR exhaustion (only transport retry
	// exhaustion kills it); a buffer arriving later lets traffic flow.
	if st := p.cliQP.State(); st != StateRTS {
		t.Fatalf("QP state after RNR exhaustion = %v, want RTS", st)
	}
	if err := p.srvQP.PostRecv(RecvWR{ID: 1, Buf: make([]byte, 16)}); err != nil {
		t.Fatal(err)
	}
	if err := p.cliQP.PostSend(p.cliClock, SendWR{ID: 2, Op: OpSend, Local: []byte("y")}); err != nil {
		t.Fatal(err)
	}
	wc, ok = p.cliSend.TryPollWith(p.cliClock)
	if !ok || wc.Status != StatusSuccess {
		t.Fatalf("send after buffer posted: ok=%v status=%v", ok, wc.Status)
	}
}

// UD loss is silent: the sender sees success, the receiver sees nothing.
func TestUDLossIsSilent(t *testing.T) {
	nw := simnet.NewNetwork()
	a := nw.AddNode("a")
	b := nw.AddNode("b")
	fab := nw.AddFabric(simnet.FabricSpec{Name: "ib", LinkBytesPerSec: 1e9, Propagation: 200, SwitchDelay: 100})
	ha := NewHCA(a, fab, testConfig())
	hb := NewHCA(b, fab, testConfig())
	clk := simnet.NewVClock(0)

	sendCQ, recvCQ := ha.CreateCQ(), ha.CreateCQ()
	qa := ha.NewQP(UD, sendCQ, recvCQ)
	bSend, bRecv := hb.CreateCQ(), hb.CreateCQ()
	qb := hb.NewQP(UD, bSend, bRecv)
	for _, q := range []*QP{qa, qb} {
		if err := q.Modify(StateInit); err != nil {
			t.Fatal(err)
		}
		if err := q.Modify(StateRTR); err != nil {
			t.Fatal(err)
		}
		if err := q.Modify(StateRTS); err != nil {
			t.Fatal(err)
		}
	}
	if err := qb.PostRecv(RecvWR{ID: 1, Buf: make([]byte, 64)}); err != nil {
		t.Fatal(err)
	}

	fi := simnet.NewFaultInjector(simnet.FaultConfig{Seed: 1})
	fab.SetFaults(fi)
	fi.DropNext(a, b, 1)

	err := qa.PostSend(clk, SendWR{ID: 1, Op: OpSend, Local: []byte("dgram"), Dest: &AddressHandle{Target: hb, QPN: qb.QPN()}})
	if err != nil {
		t.Fatal(err)
	}
	wc, ok := sendCQ.TryPollWith(clk)
	if !ok || wc.Status != StatusSuccess {
		t.Fatalf("UD send over loss: ok=%v status=%v, want silent success", ok, wc.Status)
	}
	if ha.Retransmits() != 0 {
		t.Fatal("UD must not retransmit")
	}
	if _, ok := bRecv.TryPollWith(simnet.NewVClock(0)); ok {
		t.Fatal("dropped datagram was delivered")
	}
}

package verbs

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/simnet"
)

// HCA is a host channel adapter: one node's port on one fabric. It owns
// the key and QP-number spaces and the send/receive pipeline resources
// whose serialization caps a single node's message rate.
type HCA struct {
	node   *simnet.Node
	fabric *simnet.Fabric
	cfg    Config

	sendEngine   *simnet.Resource
	recvEngine   *simnet.Resource
	atomicEngine *simnet.Resource
	atomicMu     sync.Mutex // serializes atomicApply, like the HCA does

	retransmits atomic.Uint64

	mu      sync.Mutex
	nextQPN uint32
	nextKey uint32
	nextVA  uint64
	qps     map[uint32]*QP
	mrs     map[uint32]*MR // rkey → MR
	closed  bool

	// memGuard, when set, is taken around every RDMA byte copy that
	// touches this adapter's registered memory: read-locked while remote
	// peers read it, write-locked while bytes land in it. A host that
	// mutates registered memory concurrently with remote access (the
	// Memcached one-sided GET index) installs a guard and write-locks it
	// around its own stores, making the simulated DMA race-free for Go
	// while modeling real hardware's do-not-tear-under-DMA contract at
	// zero cost to unguarded paths.
	memGuard atomic.Pointer[sync.RWMutex]
}

// NewHCA installs an adapter for node on fabric with the given cost
// model. The node is attached to the fabric if it is not already.
func NewHCA(node *simnet.Node, fabric *simnet.Fabric, cfg Config) *HCA {
	fabric.Attach(node)
	return &HCA{
		node:         node,
		fabric:       fabric,
		cfg:          cfg.withDefaults(),
		sendEngine:   simnet.NewResource("hca/" + node.Name() + "/send"),
		recvEngine:   simnet.NewResource("hca/" + node.Name() + "/recv"),
		atomicEngine: simnet.NewResource("hca/" + node.Name() + "/atomic"),
		nextQPN:      1,
		nextKey:      1,
		nextVA:       0x1000, // never hand out 0: it reads as "no address"
		qps:          make(map[uint32]*QP),
		mrs:          make(map[uint32]*MR),
	}
}

// Node reports the host this adapter is installed in.
func (h *HCA) Node() *simnet.Node { return h.node }

// Fabric reports the fabric this adapter is cabled to.
func (h *HCA) Fabric() *simnet.Fabric { return h.fabric }

// Config reports the adapter's cost model.
func (h *HCA) Config() Config { return h.cfg }

// AllocPD creates a protection domain. QPs and MRs from different PDs
// cannot be mixed, mirroring the IB access-control model.
type PD struct {
	hca *HCA
	id  int
}

var pdCounter struct {
	sync.Mutex
	n int
}

// AllocPD creates a protection domain on this adapter.
func (h *HCA) AllocPD() *PD {
	pdCounter.Lock()
	pdCounter.n++
	id := pdCounter.n
	pdCounter.Unlock()
	return &PD{hca: h, id: id}
}

// HCA reports the adapter owning this PD.
func (p *PD) HCA() *HCA { return p.hca }

// MR is a registered (pinned) memory region. Registration assigns a
// local key, a remote key, and a stable virtual base address usable in
// RDMA work requests from peers.
type MR struct {
	pd   *PD
	buf  []byte
	lkey uint32
	rkey uint32
	va   uint64

	mu        sync.Mutex
	destroyed bool
}

// RegisterMR registers buf in the protection domain. If clk is non-nil
// the registration (pinning) cost is charged to it; pass nil during
// setup when registration time is off the critical path.
func (h *HCA) RegisterMR(pd *PD, buf []byte, clk *simnet.VClock) (*MR, error) {
	if pd == nil || pd.hca != h {
		return nil, ErrPDMismatch
	}
	h.mu.Lock()
	lkey := h.nextKey
	h.nextKey++
	rkey := h.nextKey
	h.nextKey++
	va := h.nextVA
	h.nextVA += uint64(len(buf)) + 4096 // guard gap
	mr := &MR{pd: pd, buf: buf, lkey: lkey, rkey: rkey, va: va}
	h.mrs[rkey] = mr
	h.mu.Unlock()
	if clk != nil {
		clk.Advance(h.cfg.RegBase + simnet.Duration(float64(len(buf))*h.cfg.RegPerByte))
	}
	return mr, nil
}

// DeregisterMR removes the registration; later remote RDMA against it
// fails with ErrBadKey.
func (h *HCA) DeregisterMR(mr *MR) {
	mr.mu.Lock()
	mr.destroyed = true
	mr.mu.Unlock()
	h.mu.Lock()
	delete(h.mrs, mr.rkey)
	h.mu.Unlock()
}

// LKey reports the local key.
func (m *MR) LKey() uint32 { return m.lkey }

// RKey reports the remote key peers use for RDMA.
func (m *MR) RKey() uint32 { return m.rkey }

// VA reports the region's virtual base address.
func (m *MR) VA() uint64 { return m.va }

// Len reports the region length.
func (m *MR) Len() int { return len(m.buf) }

// Bytes exposes the registered memory.
func (m *MR) Bytes() []byte { return m.buf }

// Addr computes the RDMA-visible address of buf, which must be a
// sub-slice of the registered region.
func (m *MR) Addr(buf []byte) (uint64, error) {
	off, err := m.offsetOf(buf)
	if err != nil {
		return 0, err
	}
	return m.va + uint64(off), nil
}

// offsetOf locates buf inside the region in O(1): a sub-slice keeps the
// backing array's tail capacity, so the offset is the capacity delta.
// Pointer identity of the first element verifies the aliasing.
func (m *MR) offsetOf(buf []byte) (int, error) {
	if len(buf) == 0 {
		return 0, nil
	}
	if len(m.buf) == 0 {
		return 0, ErrOutOfBounds
	}
	off := cap(m.buf) - cap(buf)
	if off < 0 || off+len(buf) > len(m.buf) || &m.buf[off] != &buf[0] {
		return 0, ErrOutOfBounds
	}
	return off, nil
}

// lookupMR resolves an rkey to a live MR.
func (h *HCA) lookupMR(rkey uint32) (*MR, bool) {
	h.mu.Lock()
	mr, ok := h.mrs[rkey]
	h.mu.Unlock()
	if !ok {
		return nil, false
	}
	mr.mu.Lock()
	dead := mr.destroyed
	mr.mu.Unlock()
	return mr, !dead
}

// rdmaRange returns the sub-slice of mr covering [addr, addr+n).
func (m *MR) rdmaRange(addr uint64, n int) ([]byte, error) {
	if addr < m.va {
		return nil, ErrOutOfBounds
	}
	off := addr - m.va
	if off > uint64(len(m.buf)) || uint64(n) > uint64(len(m.buf))-off {
		return nil, ErrOutOfBounds
	}
	return m.buf[off : off+uint64(n)], nil
}

// registerQP assigns a QP number and indexes the QP for incoming traffic.
func (h *HCA) registerQP(qp *QP) uint32 {
	h.mu.Lock()
	defer h.mu.Unlock()
	qpn := h.nextQPN
	h.nextQPN++
	h.qps[qpn] = qp
	return qpn
}

func (h *HCA) unregisterQP(qpn uint32) {
	h.mu.Lock()
	delete(h.qps, qpn)
	h.mu.Unlock()
}

// lookupQP resolves a QP number on this adapter.
func (h *HCA) lookupQP(qpn uint32) (*QP, bool) {
	h.mu.Lock()
	qp, ok := h.qps[qpn]
	h.mu.Unlock()
	return qp, ok
}

// SetMemGuard installs (or clears, with nil) the adapter's registered-
// memory guard. See the memGuard field for semantics. Guards are only
// expected on hosts whose registered memory is mutated while remotely
// readable — in this repo, Memcached servers publishing a one-sided
// index; RDMA between two guarded adapters in opposite directions
// concurrently is not supported (lock order is read-side then write-
// side).
func (h *HCA) SetMemGuard(mu *sync.RWMutex) { h.memGuard.Store(mu) }

// MemGuard reports the installed guard, or nil.
func (h *HCA) MemGuard() *sync.RWMutex { return h.memGuard.Load() }

// guardedCopy copies src into dst, honoring the destination adapter's
// guard (write-locked) and the source adapter's guard (read-locked).
// Nil guards cost nothing — the common unguarded path is a plain copy.
func guardedCopy(dst, src []byte, wguard, rguard *sync.RWMutex) int {
	if rguard != nil && rguard != wguard {
		rguard.RLock()
		defer rguard.RUnlock()
	}
	if wguard != nil {
		wguard.Lock()
		defer wguard.Unlock()
	}
	return copy(dst, src)
}

// noteRetransmit counts one RC retransmission attempt on this adapter.
func (h *HCA) noteRetransmit() { h.retransmits.Add(1) }

// Retransmits reports how many RC retransmissions this adapter's QPs
// have performed (loss and RNR retries combined).
func (h *HCA) Retransmits() uint64 { return h.retransmits.Load() }

// Utilization reports the busy time of the send and receive pipelines.
func (h *HCA) Utilization() (send, recv simnet.Duration) {
	send, _ = h.sendEngine.Stats()
	recv, _ = h.recvEngine.Stats()
	return send, recv
}

func (h *HCA) String() string {
	return fmt.Sprintf("HCA(%s on %s)", h.node.Name(), h.fabric.Spec().Name)
}

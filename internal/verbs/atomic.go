package verbs

import (
	"encoding/binary"

	"repro/internal/simnet"
)

// InfiniBand atomic operations: 64-bit fetch-and-add and compare-and-
// swap executed by the target HCA on registered memory with no remote
// software involvement. The paper's related work (§III, Vaidyanathan et
// al.) builds data-center services — distributed lock management among
// them — on exactly these verbs; they complete the substrate here.
//
// Atomicity is per target HCA: the HCA serializes atomics against each
// other (as the hardware does), and the verbs layer performs the memory
// update under that serialization. Concurrent plain RDMA to the same
// location is, like on real hardware, the caller's problem.

// Atomic opcodes extend the work-request set.
const (
	OpAtomicFetchAdd Opcode = 0x10
	OpAtomicCmpSwap  Opcode = 0x11
)

// AtomicWR is an atomic work request. The 8-byte result (the prior
// value at the remote address) lands in Result after the completion is
// harvested from the send CQ.
type AtomicWR struct {
	// ID is echoed in the completion.
	ID uint64
	// Op is OpAtomicFetchAdd or OpAtomicCmpSwap.
	Op Opcode
	// RemoteAddr names an 8-byte-aligned location in a remote MR.
	RemoteAddr uint64
	RKey       uint32
	// Add is the addend for fetch-and-add.
	Add uint64
	// Compare and Swap drive compare-and-swap: if the remote value
	// equals Compare it becomes Swap.
	Compare uint64
	Swap    uint64
	// Result receives the prior remote value (written before the WC is
	// posted; read it only after harvesting the completion).
	Result *uint64
}

// atomicWireBytes is the request/response size on the wire.
const atomicWireBytes = 28

// PostAtomic posts an atomic work request on a connected RC queue pair.
// The outcome arrives on the send CQ with the request's ID.
func (q *QP) PostAtomic(clk *simnet.VClock, wr AtomicWR) error {
	q.mu.Lock()
	state := q.state
	remote := q.remote
	q.mu.Unlock()
	if state != StateRTS {
		return ErrBadState
	}
	if wr.Op != OpAtomicFetchAdd && wr.Op != OpAtomicCmpSwap {
		return ErrBadState
	}
	clk.Advance(q.hca.cfg.PostOverhead)
	dst, err := q.rdmaPeer(remote)
	if err != nil {
		return err
	}
	cfg := q.hca.cfg

	start := q.hca.sendEngine.Acquire(clk.Now(), cfg.SendProc)
	depart := start + cfg.SendProc
	reqArrive, derr := q.hca.fabric.Deliver(q.hca.node, dst.hca.node, depart, atomicWireBytes)
	if derr != nil {
		q.sendCQ.post(WC{ID: wr.ID, Op: wr.Op, Status: StatusTransportError, QPN: q.qpn, Time: depart})
		return nil
	}

	mr, ok := dst.hca.lookupMR(wr.RKey)
	if !ok {
		q.sendCQ.post(WC{ID: wr.ID, Op: wr.Op, Status: StatusRemoteError, QPN: q.qpn, Time: reqArrive})
		return nil
	}
	cell, rerr := mr.rdmaRange(wr.RemoteAddr, 8)
	if rerr != nil || wr.RemoteAddr%8 != 0 {
		q.sendCQ.post(WC{ID: wr.ID, Op: wr.Op, Status: StatusRemoteError, QPN: q.qpn, Time: reqArrive})
		return nil
	}

	// The target HCA serializes atomics: the update happens inside the
	// engine's reserved slot.
	opStart := dst.hca.atomicEngine.Acquire(reqArrive, cfg.RDMAProc)
	prior := dst.hca.atomicApply(cell, wr)
	respDepart := opStart + cfg.RDMAProc
	respArrive, derr := dst.hca.fabric.Deliver(dst.hca.node, q.hca.node, respDepart, atomicWireBytes)
	if derr != nil {
		q.sendCQ.post(WC{ID: wr.ID, Op: wr.Op, Status: StatusTransportError, QPN: q.qpn, Time: respDepart})
		return nil
	}
	if wr.Result != nil {
		*wr.Result = prior
	}
	done := q.hca.recvEngine.Acquire(respArrive, cfg.RecvProc) + cfg.RecvProc
	q.sendCQ.post(WC{ID: wr.ID, Op: wr.Op, Status: StatusSuccess, ByteLen: 8, QPN: q.qpn, Time: done})
	return nil
}

// atomicApply performs the update under the HCA's atomic lock and
// returns the prior value.
func (h *HCA) atomicApply(cell []byte, wr AtomicWR) uint64 {
	h.atomicMu.Lock()
	defer h.atomicMu.Unlock()
	if g := h.MemGuard(); g != nil {
		g.Lock()
		defer g.Unlock()
	}
	le := binary.LittleEndian
	prior := le.Uint64(cell)
	switch wr.Op {
	case OpAtomicFetchAdd:
		le.PutUint64(cell, prior+wr.Add)
	case OpAtomicCmpSwap:
		if prior == wr.Compare {
			le.PutUint64(cell, wr.Swap)
		}
	}
	return prior
}

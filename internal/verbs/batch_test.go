package verbs

import (
	"testing"

	"repro/internal/simnet"
)

// TestPostSendNChargeDegenerate: a batch of one must cost exactly what
// PostSend costs — the coalesced rate only applies from the second WR on.
func TestPostSendNChargeDegenerate(t *testing.T) {
	p1 := newPair(t, 4, 256)
	before := p1.cliClock.Now()
	if err := p1.cliQP.PostSend(p1.cliClock, SendWR{ID: 1, Op: OpSend, Local: []byte("x")}); err != nil {
		t.Fatal(err)
	}
	single := p1.cliClock.Now() - before

	p2 := newPair(t, 4, 256)
	before = p2.cliClock.Now()
	if err := p2.cliQP.PostSendN(p2.cliClock, []SendWR{{ID: 1, Op: OpSend, Local: []byte("x")}}); err != nil {
		t.Fatal(err)
	}
	if batched := p2.cliClock.Now() - before; batched != single {
		t.Fatalf("PostSendN(1) advanced %v, PostSend advanced %v", batched, single)
	}
}

// TestPostSendNChargeCoalesced: n WRs ring one doorbell — one full
// PostOverhead plus n-1 coalesced charges, strictly cheaper than n
// separate posts.
func TestPostSendNChargeCoalesced(t *testing.T) {
	p := newPair(t, 8, 256)
	cfg := testConfig().withDefaults()
	wrs := []SendWR{
		{ID: 1, Op: OpSend, Local: []byte("a")},
		{ID: 2, Op: OpSend, Local: []byte("b")},
		{ID: 3, Op: OpSend, Local: []byte("c")},
	}
	before := p.cliClock.Now()
	if err := p.cliQP.PostSendN(p.cliClock, wrs); err != nil {
		t.Fatal(err)
	}
	elapsed := p.cliClock.Now() - before
	want := cfg.PostOverhead + 2*cfg.CoalescedPostOverhead
	if elapsed != want {
		t.Fatalf("PostSendN(3) advanced %v, want %v", elapsed, want)
	}
	if want >= 3*cfg.PostOverhead {
		t.Fatalf("coalesced post %v not cheaper than 3 doorbells %v", want, 3*cfg.PostOverhead)
	}
	// All three land and complete.
	for i := 0; i < 3; i++ {
		if _, ok := p.cliSend.Wait(p.cliClock); !ok {
			t.Fatalf("send completion %d missing", i)
		}
	}
}

// TestPostSendNEmptyAndBadState covers the edges: an empty batch is a
// free no-op, and a QP outside RTS refuses the batch up front.
func TestPostSendNEmptyAndBadState(t *testing.T) {
	p := newPair(t, 4, 256)
	before := p.cliClock.Now()
	if err := p.cliQP.PostSendN(p.cliClock, nil); err != nil {
		t.Fatal(err)
	}
	if p.cliClock.Now() != before {
		t.Fatal("empty batch advanced the clock")
	}

	nw := simnet.NewNetwork()
	n := nw.AddNode("n")
	f := nw.AddFabric(simnet.FabricSpec{Name: "ib", LinkBytesPerSec: 1e9})
	h := NewHCA(n, f, testConfig())
	cq := h.CreateCQ()
	qp := h.NewQP(RC, cq, cq)
	if err := qp.PostSendN(simnet.NewVClock(0), []SendWR{{ID: 1, Op: OpSend, Local: []byte("x")}}); err != ErrBadState {
		t.Fatalf("PostSendN in RESET = %v, want ErrBadState", err)
	}
}

// TestTryPollReadyVisibility: TryPollReady harvests only completions
// whose HCA-side timestamp has already passed, at the coalesced rate; a
// future completion is put back untouched for a later (full-cost) poll.
func TestTryPollReadyVisibility(t *testing.T) {
	p := newPair(t, 4, 256)
	cfg := testConfig().withDefaults()
	if err := p.cliQP.PostSend(p.cliClock, SendWR{ID: 7, Op: OpSend, Local: []byte("x")}); err != nil {
		t.Fatal(err)
	}
	// The send completion's Time is in this clock's future: refuse.
	if _, ok := p.cliSend.TryPollReady(p.cliClock); ok {
		t.Fatal("TryPollReady harvested a completion from the future")
	}
	// A full-cost blocking poll advances to it.
	wc, ok := p.cliSend.Wait(p.cliClock)
	if !ok || wc.ID != 7 {
		t.Fatalf("Poll = (%+v, %v)", wc, ok)
	}
	// Now a second, already-visible completion drains at the coalesced
	// rate.
	if err := p.cliQP.PostSend(p.cliClock, SendWR{ID: 8, Op: OpSend, Local: []byte("y")}); err != nil {
		t.Fatal(err)
	}
	p.cliClock.Advance(10 * simnet.Millisecond)
	before := p.cliClock.Now()
	wc, ok = p.cliSend.TryPollReady(p.cliClock)
	if !ok || wc.ID != 8 {
		t.Fatalf("TryPollReady = (%+v, %v)", wc, ok)
	}
	if got := p.cliClock.Now() - before; got != cfg.CoalescedPollOverhead {
		t.Fatalf("TryPollReady charged %v, want %v", got, cfg.CoalescedPollOverhead)
	}
	// Empty CQ: refusal is free.
	before = p.cliClock.Now()
	if _, ok := p.cliSend.TryPollReady(p.cliClock); ok {
		t.Fatal("TryPollReady on empty CQ succeeded")
	}
	if p.cliClock.Now() != before {
		t.Fatal("refusal advanced the clock")
	}
}

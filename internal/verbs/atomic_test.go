package verbs

import (
	"encoding/binary"
	"sync"
	"testing"
	"testing/quick"
)

func TestAtomicFetchAdd(t *testing.T) {
	p := newPair(t, 1, 64)
	buf := make([]byte, 64)
	binary.LittleEndian.PutUint64(buf[8:], 100)
	mr, err := p.srvHCA.RegisterMR(p.srvPD, buf, nil)
	if err != nil {
		t.Fatal(err)
	}
	var prior uint64
	err = p.cliQP.PostAtomic(p.cliClock, AtomicWR{
		ID: 1, Op: OpAtomicFetchAdd,
		RemoteAddr: mr.VA() + 8, RKey: mr.RKey(),
		Add: 42, Result: &prior,
	})
	if err != nil {
		t.Fatal(err)
	}
	wc, ok := p.cliSend.Wait(p.cliClock)
	if !ok || wc.Status != StatusSuccess || wc.Op != OpAtomicFetchAdd {
		t.Fatalf("wc = %+v", wc)
	}
	if prior != 100 {
		t.Fatalf("prior = %d, want 100", prior)
	}
	if got := binary.LittleEndian.Uint64(buf[8:]); got != 142 {
		t.Fatalf("cell = %d, want 142", got)
	}
	// No remote software involvement.
	if p.srvRecv.Len() != 0 {
		t.Fatal("atomic generated a remote completion")
	}
}

func TestAtomicCmpSwap(t *testing.T) {
	p := newPair(t, 1, 64)
	buf := make([]byte, 16)
	binary.LittleEndian.PutUint64(buf, 7)
	mr, _ := p.srvHCA.RegisterMR(p.srvPD, buf, nil)

	// Matching compare: swaps.
	var prior uint64
	if err := p.cliQP.PostAtomic(p.cliClock, AtomicWR{
		Op: OpAtomicCmpSwap, RemoteAddr: mr.VA(), RKey: mr.RKey(),
		Compare: 7, Swap: 99, Result: &prior,
	}); err != nil {
		t.Fatal(err)
	}
	if wc, _ := p.cliSend.Wait(p.cliClock); wc.Status != StatusSuccess {
		t.Fatalf("wc = %+v", wc)
	}
	if prior != 7 || binary.LittleEndian.Uint64(buf) != 99 {
		t.Fatalf("prior=%d cell=%d", prior, binary.LittleEndian.Uint64(buf))
	}

	// Mismatching compare: no swap, prior still returned.
	if err := p.cliQP.PostAtomic(p.cliClock, AtomicWR{
		Op: OpAtomicCmpSwap, RemoteAddr: mr.VA(), RKey: mr.RKey(),
		Compare: 7, Swap: 1, Result: &prior,
	}); err != nil {
		t.Fatal(err)
	}
	if wc, _ := p.cliSend.Wait(p.cliClock); wc.Status != StatusSuccess {
		t.Fatalf("wc = %+v", wc)
	}
	if prior != 99 || binary.LittleEndian.Uint64(buf) != 99 {
		t.Fatalf("prior=%d cell=%d after failed CAS", prior, binary.LittleEndian.Uint64(buf))
	}
}

func TestAtomicErrors(t *testing.T) {
	p := newPair(t, 1, 64)
	buf := make([]byte, 16)
	mr, _ := p.srvHCA.RegisterMR(p.srvPD, buf, nil)

	// Unaligned address.
	if err := p.cliQP.PostAtomic(p.cliClock, AtomicWR{
		Op: OpAtomicFetchAdd, RemoteAddr: mr.VA() + 3, RKey: mr.RKey(), Add: 1,
	}); err != nil {
		t.Fatal(err)
	}
	if wc, _ := p.cliSend.Wait(p.cliClock); wc.Status != StatusRemoteError {
		t.Fatalf("unaligned: %+v", wc)
	}
	// Bad rkey.
	if err := p.cliQP.PostAtomic(p.cliClock, AtomicWR{
		Op: OpAtomicFetchAdd, RemoteAddr: mr.VA(), RKey: 999999, Add: 1,
	}); err != nil {
		t.Fatal(err)
	}
	if wc, _ := p.cliSend.Wait(p.cliClock); wc.Status != StatusRemoteError {
		t.Fatalf("bad rkey: %+v", wc)
	}
	// Non-atomic opcode rejected at post time.
	if err := p.cliQP.PostAtomic(p.cliClock, AtomicWR{Op: OpSend}); err != ErrBadState {
		t.Fatalf("bad op err = %v", err)
	}
	// Dead peer.
	p.srvNode.Fail()
	if err := p.cliQP.PostAtomic(p.cliClock, AtomicWR{
		Op: OpAtomicFetchAdd, RemoteAddr: mr.VA(), RKey: mr.RKey(), Add: 1,
	}); err != nil {
		t.Fatal(err)
	}
	if wc, _ := p.cliSend.Wait(p.cliClock); wc.Status != StatusTransportError {
		t.Fatalf("dead peer: %+v", wc)
	}
}

func TestAtomicConcurrentFetchAdd(t *testing.T) {
	// Two client QPs hammer one counter; every increment must land
	// (the lock-manager use case from the paper's related work).
	p := newPair(t, 1, 64)
	buf := make([]byte, 8)
	mr, _ := p.srvHCA.RegisterMR(p.srvPD, buf, nil)

	// Second independent connection.
	p2 := struct {
		qp *QP
		cq *CQ
	}{}
	p2.cq = p.cliHCA.CreateCQ()
	p2.qp = p.cliHCA.NewQP(RC, p2.cq, p2.cq)
	if err := p2.qp.Modify(StateInit); err != nil {
		t.Fatal(err)
	}
	lis, err := p.cm.Listen("second")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	go func() {
		clk := simnetClock()
		req, ok := lis.Accept(clk)
		if !ok {
			return
		}
		srvQP := p.srvHCA.NewQP(RC, p.srvSend, p.srvRecv)
		if err := srvQP.Modify(StateInit); err != nil {
			return
		}
		_ = req.Accept(srvQP, clk)
	}()
	if _, err := p.cm.Connect(p2.qp, p.srvNode, "second", simnetClock(), testRealCap); err != nil {
		t.Fatal(err)
	}

	const perClient = 100
	var wg sync.WaitGroup
	run := func(qp *QP, cq *CQ) {
		defer wg.Done()
		clk := simnetClock()
		for i := 0; i < perClient; i++ {
			if err := qp.PostAtomic(clk, AtomicWR{
				Op: OpAtomicFetchAdd, RemoteAddr: mr.VA(), RKey: mr.RKey(), Add: 1,
			}); err != nil {
				t.Error(err)
				return
			}
			if wc, ok := cq.Wait(clk); !ok || wc.Status != StatusSuccess {
				t.Errorf("wc = %+v", wc)
				return
			}
		}
	}
	wg.Add(2)
	go run(p.cliQP, p.cliSend)
	go run(p2.qp, p2.cq)
	wg.Wait()
	if got := binary.LittleEndian.Uint64(buf); got != 2*perClient {
		t.Fatalf("counter = %d, want %d (lost updates)", got, 2*perClient)
	}
}

func TestRDMANeverEscapesRegionProperty(t *testing.T) {
	// Property: no (addr, len) combination lets an RDMA read touch
	// bytes outside the registered region — out-of-bounds requests fail
	// with a remote error and move no data.
	p := newPair(t, 1, 64)
	region := make([]byte, 4096)
	for i := range region {
		region[i] = 0xEE
	}
	mr, err := p.srvHCA.RegisterMR(p.srvPD, region, nil)
	if err != nil {
		t.Fatal(err)
	}
	f := func(off uint32, n uint16) bool {
		length := int(n)%8192 + 1
		addr := mr.VA() + uint64(off%8192)
		local := make([]byte, length)
		cliMR, err := p.cliHCA.RegisterMR(p.cliPD, local, nil)
		if err != nil {
			return false
		}
		defer p.cliHCA.DeregisterMR(cliMR)
		if err := p.cliQP.PostSend(p.cliClock, SendWR{
			Op: OpRDMARead, Local: local, LocalMR: cliMR,
			RemoteAddr: addr, RKey: mr.RKey(),
		}); err != nil {
			return false
		}
		wc, ok := p.cliSend.Wait(p.cliClock)
		if !ok {
			return false
		}
		inBounds := addr >= mr.VA() && addr-mr.VA()+uint64(length) <= uint64(len(region))
		if inBounds {
			if wc.Status != StatusSuccess {
				return false
			}
			for _, b := range local {
				if b != 0xEE {
					return false
				}
			}
			return true
		}
		// Out of bounds: remote error, destination untouched.
		if wc.Status != StatusRemoteError {
			return false
		}
		for _, b := range local {
			if b != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

package verbs

import "sync"

// registry is a small typed concurrent map used by the connection
// manager for service lookup.
type registry[K comparable, V any] struct {
	mu sync.Mutex
	m  map[K]V
}

func newRegistry[K comparable, V any]() *registry[K, V] {
	return &registry[K, V]{m: make(map[K]V)}
}

func (r *registry[K, V]) get(k K) (V, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	v, ok := r.m[k]
	return v, ok
}

// putIfAbsent stores v under k and reports true, or reports false if the
// key already exists.
func (r *registry[K, V]) putIfAbsent(k K, v V) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.m[k]; dup {
		return false
	}
	r.m[k] = v
	return true
}

func (r *registry[K, V]) delete(k K) {
	r.mu.Lock()
	delete(r.m, k)
	r.mu.Unlock()
}
